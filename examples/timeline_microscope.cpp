// DOMINO under the microscope (the Figure 10 view): runs the Figure 7
// four-cell network with saturated bidirectional traffic and prints the
// slot-by-slot timeline — real transmissions, fake packets keeping chains
// triggered, ROP polling slots, and per-slot misalignment.
//
// Usage: timeline_microscope [first_slot [last_slot]]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "api/experiment.h"
#include "topo/topology.h"

using namespace dmn;

namespace {

topo::Topology fig7_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap1 = b.add_ap();
  const auto ap2 = b.add_ap();
  const auto ap3 = b.add_ap();
  const auto ap4 = b.add_ap();
  b.add_client(ap1);  // 4
  b.add_client(ap2);  // 5
  b.add_client(ap3);  // 6
  b.add_client(ap4);  // 7
  b.interfere(ap1, 5).interfere(ap2, 4);
  b.interfere(ap3, 7).interfere(ap4, 6);
  b.sense(ap1, ap2).sense(ap3, ap4).sense(4, 5).sense(6, 7);
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t from = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 40;
  const std::uint64_t to =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : from + 11;

  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDomino;
  cfg.duration = msec(120);
  cfg.seed = 3;
  cfg.traffic.saturate_downlink = true;
  cfg.traffic.saturate_uplink = true;
  cfg.record_timeline = true;

  const auto topo = fig7_topology();
  const auto r = api::run_experiment(topo, cfg);

  std::printf("Figure-7 network, all flows saturated, DOMINO\n");
  std::printf("aggregate %.2f Mbps | fairness %.3f | %zu polls | "
              "%llu self-starts | %llu missed rows\n\n",
              r.throughput_mbps(), r.jain_fairness,
              r.timeline->polls().size(),
              static_cast<unsigned long long>(r.domino_self_starts),
              static_cast<unsigned long long>(r.domino_missed_rows));
  std::printf("legend: [fake] = fake-link header keeping the chain "
              "triggered;\n        ROP poll = AP polling client queues in "
              "an inserted ROP slot\n\n");
  r.timeline->print(std::cout, from, to);
  return 0;
}
