// Rapid OFDM Polling walk-through: builds the Table-1 control symbol for a
// full cell of clients, pushes it through the impaired channel (residual
// CFO, timing skew within the CP, transmitter noise floor, receiver AWGN,
// ADC clipping) and decodes the queue reports at the AP — then shows what
// a 40 dB near/far mismatch does with and without the subchannel allocator.

#include <cstdio>
#include <vector>

#include "rop/rop_phy.h"
#include "rop/rop_protocol.h"

using namespace dmn;

int main() {
  rop::RopParams params;  // Table 1
  rop::RopPhy phy(params);
  rop::RopImpairments imp;
  Rng rng(11);

  std::printf("ROP symbol: %zu subcarriers, %zu subchannels of %zu data + "
              "%zu guard bins, CP %zu samples, symbol %.1f us\n\n",
              params.fft_size, params.num_subchannels,
              params.data_per_subchannel, params.guard_per_subchannel,
              params.cp_samples, to_usec(params.symbol_duration()));

  // A cell of 12 clients with assorted queue depths and impairments.
  std::vector<rop::ClientSignal> clients;
  for (std::size_t i = 0; i < 12; ++i) {
    rop::ClientSignal cs;
    cs.subchannel = i;
    cs.queue_report = static_cast<unsigned>((5 + i * 11) % 64);
    cs.rss_dbm = -52.0 - static_cast<double>(i);
    cs.freq_offset_subcarriers = rng.normal(0.0, imp.cfo_sigma_subcarriers);
    cs.timing_offset_samples = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(params.cp_samples / 2)));
    clients.push_back(cs);
  }
  const auto rx = phy.synthesize(clients, imp, rng);
  const auto dec = phy.decode(rx, imp);

  std::printf("one polling round, 12 clients:\n");
  int ok = 0;
  for (const auto& cs : clients) {
    const auto got = dec.values[cs.subchannel];
    const bool good = got.has_value() && *got == cs.queue_report;
    ok += good;
    std::printf("  subchannel %2zu: sent %2u -> %s\n", cs.subchannel,
                cs.queue_report,
                got.has_value()
                    ? (good ? "decoded OK" : "decoded WRONG")
                    : "silent");
  }
  std::printf("%d/12 reports decoded in ONE OFDM symbol (vs 12 polling "
              "exchanges)\n\n", ok);

  // Near/far: a 40 dB stronger neighbour on the adjacent subchannel.
  std::printf("near/far mismatch (40 dB) on adjacent subchannels:\n");
  std::vector<rop::ClientSignal> nf = {
      {0, 63, -25.0, 0.01, 0}, {1, 21, -65.0, -0.01, 3}};
  int bad = 0;
  for (int t = 0; t < 50; ++t) {
    if (!phy.round_trip_ok(nf, imp, rng)) ++bad;
  }
  std::printf("  adjacent subchannels: %d/50 rounds corrupted\n", bad);

  // The allocator's answer: assign them non-adjacent subchannels.
  rop::SubchannelAllocator alloc(params);
  const auto assign = alloc.assign({100, 101}, {-25.0, -65.0});
  nf[0].subchannel = assign[0].subchannel;
  nf[1].subchannel = assign[1].subchannel;
  bad = 0;
  for (int t = 0; t < 50; ++t) {
    if (!phy.round_trip_ok(nf, imp, rng)) ++bad;
  }
  std::printf("  allocator-separated (subchannels %zu and %zu): %d/50 "
              "corrupted\n",
              assign[0].subchannel, assign[1].subchannel, bad);
  return 0;
}
