// Random-network comparison (the Figure 14 setting): place m APs with n
// clients each in a square area using the default log-distance model, then
// run all registered channel-access schemes on rate-limited UDP — as one
// parallel sweep — and report throughput, delay and fairness plus the
// hidden/exposed census.
//
// Usage: random_network [m] [n] [side_metres] [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/experiment.h"
#include "api/sweep.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"

using namespace dmn;

int main(int argc, char** argv) {
  const std::size_t m = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const double side = argc > 3 ? std::atof(argv[3]) : 500.0;
  const std::uint64_t seed =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1;

  Rng rng(seed);
  topo::LogDistanceModel model;
  const auto topo =
      topo::Topology::random_network(m, n, side, model, {}, rng);

  const auto links = topo.make_links(true, true);
  const auto census = topo::classify_pairs(topo, links);
  std::printf("random T(%zu,%zu) in %.0fx%.0f m (seed %llu): %zu nodes, "
              "%zu hidden / %zu exposed of %zu link pairs\n\n",
              m, n, side, side, static_cast<unsigned long long>(seed),
              topo.num_nodes(), census.hidden, census.exposed, census.total);

  // One sweep point per scheme, fanned across cores. Order matches the
  // seed example: DCF, CENTAUR, DOMINO, Omniscient.
  std::vector<api::SweepPoint> points;
  for (api::Scheme s : {api::Scheme::kDcf, api::Scheme::kCentaur,
                        api::Scheme::kDomino, api::Scheme::kOmniscient}) {
    api::ExperimentConfig cfg;
    cfg.scheme = s;
    cfg.duration = sec(3);
    cfg.seed = seed;
    cfg.traffic.downlink_bps = 8e6;
    cfg.traffic.uplink_bps = 2e6;
    points.push_back({topo, cfg, api::to_string(s)});
  }
  api::SweepOptions options = api::sweep_options_from_env();
  options.sweep_name = "random_network";
  api::SweepRunner runner(options);
  const auto report = runner.run_outcomes(points);

  std::printf("%-11s %10s %11s %10s\n", "scheme", "Mbps", "delay ms",
              "fairness");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& o = report.outcomes[i];
    if (!o.ok()) {
      std::printf("%-11s %10s (%s%s%s)\n", points[i].label.c_str(), "-",
                  api::to_string(o.status),
                  o.error_message.empty() ? "" : ": ",
                  o.error_message.c_str());
      continue;
    }
    const auto& r = o.result;
    std::printf("%-11s %10.2f %11.2f %10.3f\n", points[i].label.c_str(),
                r.throughput_mbps(), r.mean_delay_us / 1000.0,
                r.jain_fairness);
  }
  return report.all_ok() ? 0 : 1;
}
