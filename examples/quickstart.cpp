// Quickstart: build the paper's Figure 1 topology (three AP-client pairs
// with one hidden and one exposed relationship), run all four channel-access
// schemes on saturated traffic, and print per-link and aggregate throughput
// — a miniature of the paper's Figure 2.
//
//   AP1 -> C1   (downlink; AP1 is hidden to AP3, exposed to C2)
//   C2  -> AP2  (uplink; exposed to AP1)
//   AP3 -> C3   (downlink; suffers AP1's hidden interference under DCF)

#include <cstdio>

#include "api/experiment.h"
#include "topo/topology.h"

using namespace dmn;

namespace {

/// Figure 1: dashed lines (can hear each other) become interference edges.
topo::Topology make_fig1_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap1 = b.add_ap();
  const auto ap2 = b.add_ap();
  const auto ap3 = b.add_ap();
  const auto c1 = b.add_client(ap1);
  const auto c2 = b.add_client(ap2);
  const auto c3 = b.add_client(ap3);

  // Figure 1 dashed links: AP1 and C2 hear each other (exposed pair);
  // AP1's signal corrupts C3's reception while AP1 and AP3 cannot hear
  // each other (hidden pair); C1 also hears the middle cell.
  b.sense(ap1, c2);       // exposed: senses, does not corrupt
  b.interfere(ap1, c3);   // hidden-terminal collision at C3
  b.sense(ap2, c1);       // symmetry of the middle cell
  return b.build();
}

void run_scheme(const topo::Topology& topo, api::Scheme scheme) {
  api::ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.duration = sec(5);
  cfg.seed = 7;

  // The paper's three saturated flows: AP1->C1, C2->AP2, AP3->C3
  // (node ids: APs 0,1,2; clients 3,4,5).
  cfg.traffic.custom = {
      api::FlowSpec{0, 3},  // AP1 -> C1
      api::FlowSpec{4, 1},  // C2 -> AP2
      api::FlowSpec{2, 5},  // AP3 -> C3
  };

  const api::ExperimentResult r = api::run_experiment(topo, cfg);
  std::printf("%-10s  aggregate %6.2f Mbps  fairness %.3f\n",
              api::to_string(scheme), r.throughput_mbps(), r.jain_fairness);
  for (const api::LinkResult& l : r.links) {
    std::printf("    %s %d->%d  %6.2f Mbps\n", l.uplink ? "UL" : "DL",
                l.flow.src, l.flow.dst, l.throughput_bps / 1e6);
  }
}

}  // namespace

int main() {
  const topo::Topology topo = make_fig1_topology();
  std::printf("Figure-1 topology: %zu nodes\n", topo.num_nodes());
  run_scheme(topo, api::Scheme::kDcf);
  run_scheme(topo, api::Scheme::kCentaur);
  run_scheme(topo, api::Scheme::kDomino);
  run_scheme(topo, api::Scheme::kOmniscient);
  return 0;
}
