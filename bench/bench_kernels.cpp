// Kernel microbenchmarks for the three per-slot hot paths, each measured
// against the pre-optimization reference implementation (copied verbatim
// from the tree as it was before the fast-path rewrite, trimmed only of
// trace logging):
//
//   medium_churn      TX start/end interference + carrier-sense accounting.
//                     Reference: O(nodes x active) scratch recompute with a
//                     pow()-based dBm->mW conversion per term and a
//                     shared_ptr per transmission. Fast: incremental
//                     linear-power sums over precomputed audible lists.
//   correlator_batch  Batched signature detection over a burst. Reference:
//                     per-call template rebuild + per-lag complex loops.
//                     Fast: CorrelatorBank::detect_many one-pass kernel.
//   event_loop        Self-rescheduling event churn. Reference:
//                     std::function + shared_ptr handle state per event.
//                     Fast: SBO callable + handle-free post_in.
//
// Each kernel first runs both implementations on the identical workload and
// checks the observable results agree (decoded counts, detection verdicts,
// event counts); only then is wall-clock measured (best of DMN_BENCH_RUNS).
// Speedups land in BENCH_kernels.json via DMN_BENCH_JSON.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <span>
#include <vector>

#include "bench_util.h"
#include "gold/correlator.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "util/units.h"

namespace {

using dmn::Rng;
using dmn::TimeNs;

// ---- reference implementations (pre-PR tree) -------------------------------

namespace refk {

/// The event kernel as it was: type-erased std::function storage (heap for
/// captures beyond ~16 bytes) plus a shared_ptr cancellation state allocated
/// for every event, pending or not.
class RefSimulator {
 public:
  struct State {
    bool cancelled = false;
    bool done = false;
  };

  TimeNs now() const { return now_; }

  std::shared_ptr<State> schedule_at(TimeNs at, std::function<void()> fn) {
    auto state = std::make_shared<State>();
    queue_.push(Entry{at, next_seq_++, std::move(fn), state});
    return state;
  }
  std::shared_ptr<State> schedule_in(TimeNs delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  void run() {
    while (!queue_.empty()) {
      Entry entry = queue_.top();
      queue_.pop();
      if (entry.state->cancelled) continue;
      now_ = entry.at;
      entry.state->done = true;
      ++executed_;
      entry.fn();
    }
  }

  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// The medium's interference accounting as it was: every refresh walks all
/// active transmissions for every node and converts dBm to mW (one pow())
/// per term; active transmissions live behind shared_ptr.
class RefMedium {
 public:
  RefMedium(dmn::sim::Simulator& sim, const dmn::topo::Topology& topo)
      : sim_(sim),
        topo_(topo),
        clients_(topo.num_nodes(), nullptr),
        cs_busy_(topo.num_nodes(), false),
        nav_until_(topo.num_nodes(), 0) {}

  void attach(dmn::topo::NodeId node, dmn::phy::MediumClient* client) {
    clients_.at(static_cast<std::size_t>(node)) = client;
  }

  void transmit(const dmn::phy::Frame& frame) {
    auto tx = std::make_shared<ActiveTx>();
    tx->frame = frame;
    tx->start = sim_.now();
    tx->end = sim_.now() + frame.duration;
    ++sent_[frame.type];

    for (std::size_t n = 0; n < clients_.size(); ++n) {
      const auto id = static_cast<dmn::topo::NodeId>(n);
      if (id == frame.src || clients_[n] == nullptr) continue;
      const double rss = topo_.rss(frame.src, id);
      if (rss < topo_.thresholds().min_rss_dbm) continue;
      RxAttempt rx;
      rx.node = id;
      rx.rss_mw = dmn::dbm_to_mw(rss);
      rx.max_intf_mw = 0.0;
      rx.half_duplex_loss = transmitting(id);
      tx->rx.push_back(rx);
    }

    if (frame.nav > 0) {
      for (const RxAttempt& rx : tx->rx) {
        nav_until_[static_cast<std::size_t>(rx.node)] =
            std::max(nav_until_[static_cast<std::size_t>(rx.node)],
                     tx->end + frame.nav);
      }
    }

    active_.push_back(tx);
    refresh_interference_and_cs();
    sim_.schedule_at(tx->end, [this, tx] { on_tx_end(tx); });
  }

  bool transmitting(dmn::topo::NodeId node) const {
    for (const auto& tx : active_) {
      if (tx->frame.src == node) return true;
    }
    return false;
  }

  std::uint64_t frames_sent(dmn::phy::FrameType t) const {
    const auto it = sent_.find(t);
    return it == sent_.end() ? 0 : it->second;
  }

  void set_external_interference_mw(double mw) {
    if (mw == external_intf_mw_) return;
    external_intf_mw_ = mw;
    refresh_interference_and_cs();
  }

 private:
  struct RxAttempt {
    dmn::topo::NodeId node;
    double rss_mw;
    double max_intf_mw;
    bool half_duplex_loss;
  };
  struct ActiveTx {
    dmn::phy::Frame frame;
    TimeNs start;
    TimeNs end;
    std::vector<RxAttempt> rx;
  };

  double decode_threshold_db(dmn::phy::FrameType t) const {
    using dmn::phy::FrameType;
    switch (t) {
      case FrameType::kData:
        return topo_.thresholds().sinr_data_db;
      case FrameType::kAck:
      case FrameType::kFakeHeader:
      case FrameType::kPoll:
      case FrameType::kRopResponse:
        return topo_.thresholds().sinr_control_db;
      case FrameType::kSignature:
        return -21.0;
    }
    return topo_.thresholds().sinr_data_db;
  }

  static bool rop_orthogonal(const dmn::phy::Frame& a,
                             const dmn::phy::Frame& b) {
    return a.type == dmn::phy::FrameType::kRopResponse &&
           b.type == dmn::phy::FrameType::kRopResponse;
  }

  double rx_power_sum_mw(dmn::topo::NodeId node) const {
    double acc = external_intf_mw_;
    for (const auto& tx : active_) {
      if (tx->frame.src == node) continue;
      acc += dmn::dbm_to_mw(topo_.rss(tx->frame.src, node));
    }
    return acc;
  }

  double interference_at(dmn::topo::NodeId node, const ActiveTx& victim) const {
    double acc = external_intf_mw_;
    for (const auto& tx : active_) {
      if (tx.get() == &victim) continue;
      if (tx->frame.src == node) continue;
      if (rop_orthogonal(tx->frame, victim.frame)) continue;
      acc += dmn::dbm_to_mw(topo_.rss(tx->frame.src, node));
    }
    return acc;
  }

  void refresh_interference_and_cs() {
    for (const auto& tx : active_) {
      for (RxAttempt& rx : tx->rx) {
        const double intf = interference_at(rx.node, *tx);
        rx.max_intf_mw = std::max(rx.max_intf_mw, intf);
        if (transmitting(rx.node)) rx.half_duplex_loss = true;
      }
    }
    for (std::size_t n = 0; n < clients_.size(); ++n) {
      const auto id = static_cast<dmn::topo::NodeId>(n);
      const bool busy = transmitting(id) ||
                        dmn::mw_to_dbm(rx_power_sum_mw(id)) >=
                            topo_.thresholds().cs_threshold_dbm;
      if (busy != cs_busy_[n]) {
        cs_busy_[n] = busy;
        if (clients_[n] != nullptr) clients_[n]->on_cs_change(busy);
      }
    }
  }

  void on_tx_end(std::shared_ptr<ActiveTx> tx) {
    for (RxAttempt& rx : tx->rx) {
      rx.max_intf_mw = std::max(rx.max_intf_mw, interference_at(rx.node, *tx));
      if (transmitting(rx.node)) rx.half_duplex_loss = true;
    }
    active_.erase(std::remove(active_.begin(), active_.end(), tx),
                  active_.end());
    refresh_interference_and_cs();

    const double noise_mw = dmn::dbm_to_mw(topo_.thresholds().noise_floor_dbm);
    const double th = decode_threshold_db(tx->frame.type);
    for (const RxAttempt& rx : tx->rx) {
      dmn::phy::MediumClient* client =
          clients_.at(static_cast<std::size_t>(rx.node));
      if (client == nullptr) continue;
      dmn::phy::RxInfo info;
      info.rss_dbm = dmn::mw_to_dbm(rx.rss_mw);
      info.min_sinr_db =
          dmn::ratio_to_db(rx.rss_mw / (noise_mw + rx.max_intf_mw));
      info.half_duplex_loss = rx.half_duplex_loss;
      info.decoded = !rx.half_duplex_loss && info.min_sinr_db >= th;
      client->on_frame_rx(tx->frame, info);
    }
  }

  dmn::sim::Simulator& sim_;
  const dmn::topo::Topology& topo_;
  std::vector<dmn::phy::MediumClient*> clients_;
  std::vector<std::shared_ptr<ActiveTx>> active_;
  std::vector<bool> cs_busy_;
  std::vector<TimeNs> nav_until_;
  std::map<dmn::phy::FrameType, std::uint64_t> sent_;
  double external_intf_mw_ = 0.0;
};

/// The sliding correlator as it was: chip template rebuilt from the code
/// set on every call, per-lag complex accumulation, fresh mags/rest vectors
/// per detection, RMS recomputed per code.
dmn::gold::DetectionResult ref_detect(const dmn::gold::GoldCodeSet& set,
                                      std::span<const dmn::dsp::Cplx> rx,
                                      std::size_t code_index,
                                      double cfar_factor,
                                      std::size_t max_lag) {
  const auto chips = set.code(code_index);
  const std::size_t len = chips.size();
  dmn::gold::DetectionResult result;
  if (rx.size() < len) return result;

  const std::size_t lags = std::min(max_lag + 1, rx.size() - len + 1);
  std::vector<double> mags(lags);
  for (std::size_t lag = 0; lag < lags; ++lag) {
    dmn::dsp::Cplx acc(0.0, 0.0);
    for (std::size_t n = 0; n < len; ++n) {
      acc += rx[lag + n] * static_cast<double>(chips[n]);
    }
    mags[lag] = std::abs(acc) / static_cast<double>(len);
  }

  const auto peak_it = std::max_element(mags.begin(), mags.end());
  result.peak_metric = *peak_it;
  result.lag = static_cast<std::size_t>(peak_it - mags.begin());

  std::vector<double> rest;
  rest.reserve(mags.size());
  for (std::size_t i = 0; i < mags.size(); ++i) {
    if (i != result.lag) rest.push_back(mags[i]);
  }
  if (rest.empty()) {
    double rms = std::sqrt(dmn::dsp::mean_power(rx.subspan(0, len)));
    result.floor_metric = rms / std::sqrt(static_cast<double>(len));
  } else {
    std::nth_element(rest.begin(), rest.begin() + rest.size() / 2, rest.end());
    result.floor_metric = rest[rest.size() / 2];
  }

  const double rms = std::sqrt(dmn::dsp::mean_power(rx.subspan(0, len)));
  result.detected = result.peak_metric >
                        cfar_factor * std::max(result.floor_metric, 1e-12) &&
                    result.peak_metric > 0.25 * rms;
  return result;
}

}  // namespace refk

// ---- harness ---------------------------------------------------------------

template <class F>
double time_best_ms(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

[[noreturn]] void die(const char* kernel, const char* what) {
  std::fprintf(stderr, "FAIL %s: reference/fast mismatch (%s)\n", kernel,
               what);
  std::exit(1);
}

// ---- kernel 1: medium TX churn ---------------------------------------------

struct MediumStats {
  std::uint64_t rx = 0;
  std::uint64_t decoded = 0;
  std::uint64_t cs_flips = 0;
  std::uint64_t data_sent = 0;
  double sinr_sum = 0.0;

  bool agrees_with(const MediumStats& o) const {
    return rx == o.rx && decoded == o.decoded && cs_flips == o.cs_flips &&
           data_sent == o.data_sent &&
           std::abs(sinr_sum - o.sinr_sum) <=
               1e-6 * std::max(1.0, std::abs(sinr_sum));
  }
};

class CountingClient : public dmn::phy::MediumClient {
 public:
  void on_frame_rx(const dmn::phy::Frame&,
                   const dmn::phy::RxInfo& info) override {
    ++rx_;
    if (info.decoded) ++decoded_;
    sinr_sum_ += info.min_sinr_db;
  }
  void on_cs_change(bool) override { ++cs_flips_; }

  std::uint64_t rx_ = 0, decoded_ = 0, cs_flips_ = 0;
  double sinr_sum_ = 0.0;
};

/// Drives `frames` overlapping transmissions (mixed data/ACK/ROP, some with
/// NAV, a few external-interference edges) through a Medium implementation
/// and collects the observable outcomes.
template <class M>
MediumStats run_medium_workload(const dmn::topo::Topology& topo, int frames) {
  dmn::sim::Simulator sim;
  M medium(sim, topo);
  const int n = static_cast<int>(topo.num_nodes());
  std::vector<CountingClient> clients(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    medium.attach(static_cast<dmn::topo::NodeId>(i), &clients[i]);
  }

  using dmn::phy::FrameType;
  int prev_src = 0;
  for (int k = 0; k < frames; ++k) {
    dmn::phy::Frame f;
    // Wandering source, with every 13th frame re-using the previous source
    // while its frame is still in flight (exercises half-duplex loss).
    f.src = (k % 13 == 0 && k > 0) ? prev_src : (k * 7 + k / 64) % n;
    prev_src = f.src;
    f.dst = (f.src + 1) % n;
    f.type = (k % 11 == 0) ? FrameType::kRopResponse
             : (k % 7 == 0) ? FrameType::kAck
                            : FrameType::kData;
    f.duration = 8000 + (k % 5) * 1700;  // 8.0 .. 14.8 us, ~6-7 concurrent
    if (k % 5 == 0) f.nav = 4000;
    sim.post_at(static_cast<TimeNs>(k) * 1500,
                [&medium, f] { medium.transmit(f); });
  }
  // External interference edges: each one refreshes every in-flight rx.
  for (int p = 0; p < 8; ++p) {
    const TimeNs at = static_cast<TimeNs>(p) * frames * 1500 / 8 + 777;
    const double mw = (p % 2 == 0) ? 4e-9 : 0.0;
    sim.post_at(at, [&medium, mw] { medium.set_external_interference_mw(mw); });
  }
  sim.run();

  MediumStats s;
  for (const CountingClient& c : clients) {
    s.rx += c.rx_;
    s.decoded += c.decoded_;
    s.cs_flips += c.cs_flips_;
    s.sinr_sum += c.sinr_sum_;
  }
  s.data_sent = medium.frames_sent(FrameType::kData);
  return s;
}

// ---- kernel 2: batched correlator detection --------------------------------

struct CorrWorkload {
  dmn::gold::GoldCodeSet set{7};
  std::vector<std::vector<dmn::dsp::Cplx>> bursts;
  std::vector<std::vector<std::size_t>> candidates;
};

CorrWorkload make_corr_workload(int bursts) {
  CorrWorkload w;
  Rng rng(20260807);
  for (int b = 0; b < bursts; ++b) {
    std::vector<dmn::gold::BurstSender> senders;
    const int nsenders = 1 + b % 3;
    std::vector<std::size_t> cand;
    for (int s = 0; s < nsenders; ++s) {
      dmn::gold::BurstSender sender;
      const int ncodes = 1 + (b + s) % 4;
      for (int c = 0; c < ncodes; ++c) {
        sender.codes.push_back((b * 17 + s * 31 + c * 7) % 100);
      }
      sender.amplitude = 0.8 + 0.2 * rng.uniform();
      sender.chip_offset = static_cast<std::size_t>(b + s) % 5;
      sender.phase_rad = rng.uniform(0.0, 6.28318);
      cand.insert(cand.end(), sender.codes.begin(), sender.codes.end());
      senders.push_back(std::move(sender));
    }
    // Pad the candidate list to 16 codes: a receiver probes for its own
    // signature among absent ones.
    while (cand.size() < 16) {
      cand.push_back((b * 3 + cand.size() * 5) % 100 + 1);
    }
    cand.resize(16);
    w.bursts.push_back(
        dmn::gold::synthesize_burst(w.set, senders, 0.05, 16, rng));
    w.candidates.push_back(std::move(cand));
  }
  return w;
}

// ---- kernel 3: event-loop churn --------------------------------------------

struct EventPayload {
  std::uint64_t a, b, c;
};

template <class Sim>
struct ChainRunner {
  Sim& sim;
  std::uint64_t& acc;
  TimeNs step;
  TimeNs horizon;

  void tick(EventPayload p) {
    acc += p.a ^ (p.b << 1) ^ (p.c << 2);
    if (sim.now() + step <= horizon) {
      // ~40-byte capture: fits the fast path's inline storage, forces a
      // heap allocation in std::function.
      sim.schedule_in(step, [this, p] {
        tick(EventPayload{p.a + 1, p.b + 3, p.c + 5});
      });
    }
  }
};

template <class Sim>
std::pair<std::uint64_t, std::uint64_t> run_event_workload(int chains,
                                                           TimeNs horizon) {
  Sim sim;
  std::uint64_t acc = 0;
  std::vector<std::unique_ptr<ChainRunner<Sim>>> runners;
  for (int c = 0; c < chains; ++c) {
    auto r = std::make_unique<ChainRunner<Sim>>(
        ChainRunner<Sim>{sim, acc, 997 + (c % 7) * 101, horizon});
    runners.push_back(std::move(r));
    EventPayload p{static_cast<std::uint64_t>(c), 2, 3};
    ChainRunner<Sim>* rp = runners.back().get();
    sim.schedule_at(static_cast<TimeNs>(c) % 13, [rp, p] { rp->tick(p); });
  }
  sim.run();
  return {sim.events_executed(), acc};
}

/// Adapter so the fast variant exercises the handle-free path the MACs use
/// for fire-and-forget events.
struct FastSim : dmn::sim::Simulator {
  void schedule_in(TimeNs delay, dmn::sim::EventFn fn) {
    post_in(delay, std::move(fn));
  }
  void schedule_at(TimeNs at, dmn::sim::EventFn fn) {
    post_at(at, std::move(fn));
  }
};

}  // namespace

int main() {
  const int reps = dmn::bench::bench_runs(5);
  dmn::bench::print_header("kernel microbenchmarks (ref = pre-PR hot paths)");
  dmn::bench::BenchJson json("kernels");
  std::printf("%-18s %10s %10s %9s\n", "kernel", "ref_ms", "fast_ms",
              "speedup");

  const auto report = [&](const char* kernel, double ref_ms, double fast_ms) {
    std::printf("%-18s %10.3f %10.3f %8.2fx\n", kernel, ref_ms, fast_ms,
                ref_ms / fast_ms);
    json.add_row()
        .str("kernel", kernel)
        .num("ref_ms", ref_ms)
        .num("fast_ms", fast_ms)
        .num("speedup", ref_ms / fast_ms);
  };

  {  // medium_churn
    const auto topo = dmn::bench::trace_tmn(8, 3, 42);
    const int frames = 4000;
    const MediumStats ref = run_medium_workload<refk::RefMedium>(topo, frames);
    const MediumStats fast =
        run_medium_workload<dmn::phy::Medium>(topo, frames);
    if (!ref.agrees_with(fast)) die("medium_churn", "rx/decoded/cs counters");
    const double ref_ms = time_best_ms(reps, [&] {
      run_medium_workload<refk::RefMedium>(topo, frames);
    });
    const double fast_ms = time_best_ms(reps, [&] {
      run_medium_workload<dmn::phy::Medium>(topo, frames);
    });
    report("medium_churn", ref_ms, fast_ms);
  }

  {  // correlator_batch
    const CorrWorkload w = make_corr_workload(64);
    const dmn::gold::CorrelatorBank bank(w.set);
    std::vector<dmn::gold::DetectionResult> out;
    for (std::size_t b = 0; b < w.bursts.size(); ++b) {
      bank.detect_many(w.bursts[b], w.candidates[b], out);
      for (std::size_t i = 0; i < out.size(); ++i) {
        const auto r = refk::ref_detect(w.set, w.bursts[b], w.candidates[b][i],
                                        4.0, 16);
        if (r.detected != out[i].detected || r.lag != out[i].lag ||
            std::abs(r.peak_metric - out[i].peak_metric) > 1e-12 ||
            std::abs(r.floor_metric - out[i].floor_metric) > 1e-12) {
          die("correlator_batch", "detection results");
        }
      }
    }
    double sink = 0.0;
    const double ref_ms = time_best_ms(reps, [&] {
      for (std::size_t b = 0; b < w.bursts.size(); ++b) {
        for (const std::size_t code : w.candidates[b]) {
          sink += refk::ref_detect(w.set, w.bursts[b], code, 4.0, 16)
                      .peak_metric;
        }
      }
    });
    const double fast_ms = time_best_ms(reps, [&] {
      for (std::size_t b = 0; b < w.bursts.size(); ++b) {
        bank.detect_many(w.bursts[b], w.candidates[b], out);
        for (const auto& r : out) sink += r.peak_metric;
      }
    });
    if (sink < 0.0) std::printf("%f\n", sink);  // keep `sink` live
    report("correlator_batch", ref_ms, fast_ms);
  }

  {  // event_loop
    const int chains = 64;
    const TimeNs horizon = 5'000'000;  // ~320k events
    const auto ref = run_event_workload<refk::RefSimulator>(chains, horizon);
    const auto fast = run_event_workload<FastSim>(chains, horizon);
    if (ref != fast) die("event_loop", "executed count / checksum");
    const double ref_ms = time_best_ms(reps, [&] {
      run_event_workload<refk::RefSimulator>(chains, horizon);
    });
    const double fast_ms = time_best_ms(reps, [&] {
      run_event_workload<FastSim>(chains, horizon);
    });
    report("event_loop", ref_ms, fast_ms);
  }

  return 0;
}
