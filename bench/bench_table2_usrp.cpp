// Table 2 reproduction: aggregate throughput of DOMINO vs DCF with two
// AP-client pairs in three scenarios — same contention domain (SC), hidden
// terminals (HT), exposed terminals (ET).
//
// The paper's USRP prototype ran at kilobit rates (USRP/host latency); we
// run the same protocol logic at 802.11g rates, so compare the RATIOS:
// paper sees 1.54x (SC), 3.3x (HT), 3.4x (ET).

#include <cstdio>

#include "bench_util.h"

using namespace dmn;

namespace {

topo::Topology sc_topology() {
  // Same contention domain: everyone hears everyone; links conflict.
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);  // 2
  b.add_client(a1);  // 3
  b.sense(a0, a1);
  b.interfere(a0, 3).interfere(a1, 2);
  b.sense(2, 3);
  return b.build();
}

topo::Topology ht_topology() {
  // Hidden: senders cannot hear each other, mutual receiver destruction.
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.interfere(a0, 3).interfere(a1, 2);
  return b.build();
}

topo::Topology et_topology() {
  // Exposed: senders hear each other, receivers clean.
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.sense(a0, a1);
  return b.build();
}

}  // namespace

int main() {
  const TimeNs dur = sec(bench::bench_seconds(10));
  bench::print_header(
      "Table 2: aggregate throughput, 2 AP-client pairs (Mbps)");
  std::printf("%-8s %10s %10s %8s %s\n", "scenario", "DOMINO", "DCF",
              "ratio", "(paper ratio)");

  struct Row {
    const char* name;
    topo::Topology topo;
    const char* paper;
  };
  Row rows[] = {{"SC", sc_topology(), "1.54x"},
                {"HT", ht_topology(), "3.3x"},
                {"ET", et_topology(), "3.4x"}};

  for (Row& row : rows) {
    api::ExperimentConfig cfg;
    cfg.duration = dur;
    cfg.seed = 11;
    cfg.traffic.saturate_downlink = true;

    cfg.scheme = api::Scheme::kDomino;
    const auto dom = api::run_experiment(row.topo, cfg);
    cfg.scheme = api::Scheme::kDcf;
    const auto dcf = api::run_experiment(row.topo, cfg);

    std::printf("%-8s %10.2f %10.2f %7.2fx %s\n", row.name,
                dom.throughput_mbps(), dcf.throughput_mbps(),
                dom.aggregate_throughput_bps /
                    std::max(dcf.aggregate_throughput_bps, 1.0),
                row.paper);
  }
  return 0;
}
