// Figure 12(d)-(f) reproduction: the TCP panels of Figure 12 — aggregate
// goodput, mean delay, and Jain's fairness on T(10,2) with downlink TCP at
// 10 Mbps application rate and uplink TCP swept 0..10 Mbps.
//
// Paper's shape: DOMINO's TCP gain is modest (10-15%) because TCP ACKs
// occupy whole slots; fairness gain 17-39%; delays comparable to DCF.

#include <cstdio>

#include "bench_util.h"

using namespace dmn;

int main() {
  const auto topo = bench::trace_tmn(10, 2, 42);
  const TimeNs dur = sec(bench::bench_seconds(5));

  bench::print_header("Figure 12(d-f): TCP on T(10,2), downlink 10 Mbps");
  std::printf("%8s | %25s | %25s | %25s\n", "", "goodput (Mbps)",
              "mean delay (ms)", "Jain fairness");
  std::printf("%8s | %8s %8s %7s | %8s %8s %7s | %8s %8s %7s\n", "uplink",
              "DOMINO", "CENTAUR", "DCF", "DOMINO", "CENTAUR", "DCF",
              "DOMINO", "CENTAUR", "DCF");

  for (double up = 0.0; up <= 10.01; up += 2.5) {
    double tput[3], delay[3], jain[3];
    int i = 0;
    for (api::Scheme s : {api::Scheme::kDomino, api::Scheme::kCentaur,
                          api::Scheme::kDcf}) {
      api::ExperimentConfig cfg;
      cfg.scheme = s;
      cfg.duration = dur;
      cfg.seed = 23;
      cfg.traffic.kind = api::TrafficKind::kTcp;
      cfg.traffic.downlink_bps = 10e6;
      cfg.traffic.uplink_bps = up * 1e6;
      const auto r = api::run_experiment(topo, cfg);
      tput[i] = r.throughput_mbps();
      delay[i] = r.mean_delay_us / 1000.0;
      jain[i] = r.jain_fairness;
      ++i;
    }
    std::printf("%7.1fM | %8.2f %8.2f %7.2f | %8.1f %8.1f %7.1f | "
                "%8.3f %8.3f %7.3f\n",
                up, tput[0], tput[1], tput[2], delay[0], delay[1], delay[2],
                jain[0], jain[1], jain[2]);
  }
  std::printf(
      "\npaper: DOMINO TCP gain 10-15%% (ACKs burn slots), fairness gain "
      "17-39%%, delay comparable to DCF\n");
  return 0;
}
