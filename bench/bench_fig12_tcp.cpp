// Figure 12(d)-(f) reproduction: the TCP panels of Figure 12 — aggregate
// goodput, mean delay, and Jain's fairness on T(10,2) with downlink TCP at
// 10 Mbps application rate and uplink TCP swept 0..10 Mbps.
//
// Paper's shape: DOMINO's TCP gain is modest (10-15%) because TCP ACKs
// occupy whole slots; fairness gain 17-39%; delays comparable to DCF. The
// 5 x 3 grid runs as one parallel sweep.

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace dmn;

int main() {
  const auto topo = bench::trace_tmn(10, 2, 42);
  const TimeNs dur = sec(bench::bench_seconds(5));

  const api::Scheme schemes[] = {api::Scheme::kDomino, api::Scheme::kCentaur,
                                 api::Scheme::kDcf};
  std::vector<double> uplinks;
  for (double up = 0.0; up <= 10.01; up += 2.5) uplinks.push_back(up);

  std::vector<api::SweepPoint> points;
  for (const double up : uplinks) {
    for (const api::Scheme s : schemes) {
      api::ExperimentConfig cfg;
      cfg.scheme = s;
      cfg.duration = dur;
      cfg.seed = 23;
      cfg.traffic.kind = api::TrafficKind::kTcp;
      cfg.traffic.downlink_bps = 10e6;
      cfg.traffic.uplink_bps = up * 1e6;
      points.push_back({topo, cfg, std::string(api::to_string(s))});
    }
  }

  bench::BenchJson json("fig12_tcp");
  const auto report = bench::run_sweep(points, "fig12_tcp", &json);

  bench::print_header("Figure 12(d-f): TCP on T(10,2), downlink 10 Mbps");
  std::printf("%8s | %25s | %25s | %25s\n", "", "goodput (Mbps)",
              "mean delay (ms)", "Jain fairness");
  std::printf("%8s | %8s %8s %7s | %8s %8s %7s | %8s %8s %7s\n", "uplink",
              "DOMINO", "CENTAUR", "DCF", "DOMINO", "CENTAUR", "DCF",
              "DOMINO", "CENTAUR", "DCF");

  for (std::size_t u = 0; u < uplinks.size(); ++u) {
    double tput[3], delay[3], jain[3];
    for (int i = 0; i < 3; ++i) {
      const std::size_t idx = u * 3 + static_cast<std::size_t>(i);
      if (!report.ok(idx)) {
        tput[i] = delay[i] = jain[i] = 0.0;
        continue;
      }
      const auto& r = report.result(idx);
      tput[i] = r.throughput_mbps();
      delay[i] = r.mean_delay_us / 1000.0;
      jain[i] = r.jain_fairness;
      json.add_row()
          .str("scheme", api::to_string(schemes[i]))
          .num("uplink_mbps", uplinks[u])
          .num("goodput_mbps", tput[i])
          .num("mean_delay_ms", delay[i])
          .num("jain_fairness", jain[i]);
    }
    std::printf("%7.1fM | %8.2f %8.2f %7.2f | %8.1f %8.1f %7.1f | "
                "%8.3f %8.3f %7.3f\n",
                uplinks[u], tput[0], tput[1], tput[2], delay[0], delay[1],
                delay[2], jain[0], jain[1], jain[2]);
  }
  std::printf(
      "\npaper: DOMINO TCP gain 10-15%% (ACKs burn slots), fairness gain "
      "17-39%%, delay comparable to DCF\n");
  return 0;
}
