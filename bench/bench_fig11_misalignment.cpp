// Figure 11 reproduction: maximum transmission misalignment at the start of
// the contention-free period vs slot index, for wired latency jitter
// sigma = 20/40/60/80 us on T(10,2).
//
// Paper's shape: initial misalignment 10-20 us, converging to 1-2 us within
// ~4 slots.

#include <cstdio>

#include "bench_util.h"

using namespace dmn;

int main() {
  bench::print_header(
      "Figure 11: max TX misalignment (us, within a collision domain) vs "
      "slot index, T(10,2)");
  std::printf("%8s", "slot");
  for (int sigma : {20, 40, 60, 80}) std::printf("  sigma=%2dus", sigma);
  std::printf("\n");

  const auto topo = bench::trace_tmn(10, 2, 42);
  std::vector<std::vector<double>> series;
  for (int sigma : {20, 40, 60, 80}) {
    api::ExperimentConfig cfg;
    cfg.scheme = api::Scheme::kDomino;
    cfg.duration = msec(60);
    cfg.seed = 5;
    cfg.traffic.saturate_downlink = true;
    cfg.traffic.saturate_uplink = true;
    cfg.record_timeline = true;
    cfg.backbone.sigma_latency = usec(sigma);
    const auto r = api::run_experiment(topo, cfg);
    const auto first = r.timeline->first_slot();
    std::vector<double> coupled;
    for (std::uint64_t s2 = first; s2 < first + 6; ++s2) {
      coupled.push_back(api::coupled_misalignment_us(*r.timeline, topo, s2));
    }
    series.push_back(std::move(coupled));
  }
  for (std::size_t slot = 0; slot < 6; ++slot) {
    std::printf("%8zu", slot);
    for (const auto& s : series) std::printf("  %9.1f", s[slot]);
    std::printf("\n");
  }
  std::printf(
      "\npaper: 10-20 us initial misalignment, reduced to 1-2 us within 4 "
      "slots\n");
  return 0;
}
