// Figure 5 reproduction: decoded OFDM sample magnitudes at the AP with two
// clients on adjacent subchannels —
//  (a) similar RSS, no guard needed;
//  (b) 30 dB mismatch without guard subcarriers: leakage corrupts the
//      weak client's first bins;
//  (c) 30 dB mismatch with the standard 3-subcarrier guard: clean.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "rop/rop_phy.h"

using namespace dmn;

namespace {

void plot(const char* title, const rop::RopPhy& phy,
          const std::vector<rop::ClientSignal>& clients, Rng& rng) {
  rop::RopImpairments imp;
  const auto rx = phy.synthesize(clients, imp, rng);
  const auto dec = phy.decode(rx, imp);

  std::printf("\n%s\n", title);
  for (const auto& cs : clients) {
    std::printf("  subchannel %zu (sent %2u, rss %5.1f dBm): bins [dB rel]",
                cs.subchannel, cs.queue_report, cs.rss_dbm);
    const auto& bins = phy.map().data_bins(cs.subchannel);
    double ref = 0.0;
    for (std::size_t b : bins) ref = std::max(ref, dec.bin_magnitude[b]);
    for (std::size_t b : bins) {
      std::printf(" %6.1f",
                  20.0 * std::log10(std::max(dec.bin_magnitude[b], 1e-12) /
                                    std::max(ref, 1e-12)));
    }
    if (dec.values[cs.subchannel].has_value()) {
      std::printf("  -> decoded %2u %s", *dec.values[cs.subchannel],
                  *dec.values[cs.subchannel] == cs.queue_report ? "OK"
                                                                : "WRONG");
    } else {
      std::printf("  -> silent");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Rng rng(2024);
  rop::RopParams guarded;            // Table 1: 3 guard subcarriers
  rop::RopParams unguarded = guarded;
  unguarded.guard_per_subchannel = 0;
  rop::RopPhy phy_guarded(guarded);
  rop::RopPhy phy_unguarded(unguarded);

  bench::print_header("Figure 5: ROP samples, 2 clients, adjacent subchannels");

  // (a) similar RSS, adjacent subchannels, no guard.
  std::vector<rop::ClientSignal> similar = {
      {2, 63, -55.0, 0.01, 2}, {3, 31, -55.5, -0.01, 5}};
  plot("(a) similar RSS, no guard subcarriers", phy_unguarded, similar, rng);

  // (b) 30 dB mismatch, no guard: the weak client's near bins corrupt.
  std::vector<rop::ClientSignal> mismatch = {
      {2, 63, -30.0, 0.01, 2}, {3, 21, -60.0, -0.01, 5}};
  plot("(b) 30 dB RSS mismatch, no guard subcarriers", phy_unguarded,
       mismatch, rng);

  // (c) same mismatch with the standard 3-subcarrier guard.
  plot("(c) 30 dB RSS mismatch, 3 guard subcarriers", phy_guarded, mismatch,
       rng);
  return 0;
}
