// §5 "Number of signatures" trade-off: longer Gold codes support more nodes
// per collision domain and widen the detection margin, at the cost of
// per-trigger airtime. The paper quotes 127 -> 255 -> 511; degree 8
// (length 255) has NO preferred pairs, so this implementation offers the
// odd degrees plus 1023 and documents the 255 caveat (see DESIGN.md).

#include <cstdio>

#include "bench_util.h"
#include "gold/correlator.h"
#include "gold/gold_code.h"

using namespace dmn;

int main() {
  bench::print_header(
      "Signature length trade-off (§5): nodes supported vs airtime vs "
      "margin");
  std::printf("%7s %7s %7s %12s %8s %15s\n", "degree", "length", "nodes",
              "airtime(us)", "t(m)", "margin N/t(m)");

  Rng rng(3);
  for (int degree : {5, 6, 7, 9, 10}) {
    gold::GoldCodeSet set(degree);
    const double airtime_us =
        static_cast<double>(set.duration_ns(20e6)) / 1000.0;
    std::printf("%7d %7zu %7zu %12.2f %8d %15.1f", degree, set.length(),
                set.size() - 2, airtime_us, set.t_bound(),
                static_cast<double>(set.length()) / set.t_bound());

    // Detection check at 4 combined signatures (the protocol maximum).
    gold::Correlator corr(set);
    int ok = 0;
    const int trials = 200;
    for (int t = 0; t < trials; ++t) {
      std::vector<gold::BurstSender> senders = {
          gold::BurstSender{{1, 2, 3, 4},
                            1.0,
                            static_cast<std::size_t>(rng.uniform_int(0, 3)),
                            rng.uniform(0.0, 6.28)}};
      const auto rx = gold::synthesize_burst(corr.bank(), senders, 0.1, 16, rng);
      if (corr.detect(rx, 1).detected) ++ok;
    }
    std::printf("   detect@4: %5.1f%%\n", 100.0 * ok / trials);
  }
  std::printf(
      "\nnote: length 255 (degree 8) has no Gold preferred pairs — a "
      "correction to the paper's suggestion; use 511 instead\n");
  return 0;
}
