// Ablations of DOMINO's design choices (DESIGN.md §5):
//  * trigger redundancy: max inbound 1 vs 2 (backup triggers);
//  * fake-link insertion on/off;
//  * degraded signature detection (stressing the recovery paths).
// Run on the Figure 7 network with bidirectional saturated traffic; all
// variants fan across cores as one sweep.

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace dmn;

namespace {

api::ExperimentConfig base_cfg() {
  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDomino;
  cfg.duration = sec(bench::bench_seconds(5));
  cfg.seed = 9;
  cfg.traffic.saturate_downlink = true;
  cfg.traffic.saturate_uplink = true;
  return cfg;
}

}  // namespace

int main() {
  const auto topo = bench::fig7_topology();

  std::vector<api::SweepPoint> points;
  {
    api::ExperimentConfig cfg = base_cfg();
    points.push_back({topo, cfg, "baseline (inbound 2, fakes on)"});
  }
  {
    api::ExperimentConfig cfg = base_cfg();
    cfg.converter.max_inbound = 1;
    points.push_back({topo, cfg, "single trigger (inbound 1)"});
  }
  {
    api::ExperimentConfig cfg = base_cfg();
    cfg.converter.insert_fake_links = false;
    points.push_back({topo, cfg, "no fake-link insertion"});
  }
  {
    api::ExperimentConfig cfg = base_cfg();
    for (int i = 1; i <= 7; ++i) cfg.sig_model.p_by_count[i] *= 0.85;
    points.push_back({topo, cfg, "15% signature detection loss"});
  }
  {
    api::ExperimentConfig cfg = base_cfg();
    cfg.backbone.sigma_latency = usec(200);
    points.push_back({topo, cfg, "wired jitter sigma 200us"});
  }

  bench::BenchJson json("ablation_domino");
  const auto report = bench::run_sweep(points, "ablation_domino", &json);

  bench::print_header("DOMINO design ablations (Figure 7 net, saturated)");
  std::printf("%-34s %8s %9s %9s %9s\n", "variant", "Mbps", "fairness",
              "selfstart", "ack_to");
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!report.ok(i)) continue;
    const auto& r = report.result(i);
    std::printf("%-34s %8.2f %9.3f %9llu %9llu\n", points[i].label.c_str(),
                r.throughput_mbps(), r.jain_fairness,
                static_cast<unsigned long long>(r.domino_self_starts),
                static_cast<unsigned long long>(r.ack_timeouts));
    json.add_row()
        .str("variant", points[i].label)
        .num("throughput_mbps", r.throughput_mbps())
        .num("jain_fairness", r.jain_fairness)
        .num("self_starts", static_cast<double>(r.domino_self_starts))
        .num("ack_timeouts", static_cast<double>(r.ack_timeouts));
  }
  std::printf(
      "\nexpected: backup triggers and fake links buy robustness (fewer "
      "self-starts); degradations cost throughput, not liveness\n");
  return 0;
}
