// Ablations of DOMINO's design choices (DESIGN.md §5):
//  * trigger redundancy: max inbound 1 vs 2 (backup triggers);
//  * fake-link insertion on/off;
//  * degraded signature detection (stressing the recovery paths).
// Run on the Figure 7 network with bidirectional saturated traffic.

#include <cstdio>

#include "bench_util.h"

using namespace dmn;

namespace {

api::ExperimentResult run(const topo::Topology& topo,
                          api::ExperimentConfig cfg) {
  cfg.scheme = api::Scheme::kDomino;
  cfg.duration = sec(bench::bench_seconds(5));
  cfg.seed = 9;
  cfg.traffic.saturate_downlink = true;
  cfg.traffic.saturate_uplink = true;
  return api::run_experiment(topo, cfg);
}

void row(const char* name, const api::ExperimentResult& r) {
  std::printf("%-34s %8.2f %9.3f %9llu %9llu\n", name, r.throughput_mbps(),
              r.jain_fairness,
              static_cast<unsigned long long>(r.domino_self_starts),
              static_cast<unsigned long long>(r.ack_timeouts));
}

}  // namespace

int main() {
  const auto topo = bench::fig7_topology();
  bench::print_header("DOMINO design ablations (Figure 7 net, saturated)");
  std::printf("%-34s %8s %9s %9s %9s\n", "variant", "Mbps", "fairness",
              "selfstart", "ack_to");

  {
    api::ExperimentConfig cfg;
    row("baseline (inbound 2, fakes on)", run(topo, cfg));
  }
  {
    api::ExperimentConfig cfg;
    cfg.converter.max_inbound = 1;
    row("single trigger (inbound 1)", run(topo, cfg));
  }
  {
    api::ExperimentConfig cfg;
    cfg.converter.insert_fake_links = false;
    row("no fake-link insertion", run(topo, cfg));
  }
  {
    api::ExperimentConfig cfg;
    for (int i = 1; i <= 7; ++i) cfg.sig_model.p_by_count[i] *= 0.85;
    row("15% signature detection loss", run(topo, cfg));
  }
  {
    api::ExperimentConfig cfg;
    cfg.backbone.sigma_latency = usec(200);
    row("wired jitter sigma 200us", run(topo, cfg));
  }
  std::printf(
      "\nexpected: backup triggers and fake links buy robustness (fewer "
      "self-starts); degradations cost throughput, not liveness\n");
  return 0;
}
