// Table 3 reproduction: aggregate downlink throughput on the Figure 13
// exposed-link topologies.
//  (a) four mutually exposed links: CENTAUR and DOMINO ~3x DCF;
//  (b) three APs out of mutual range sharing one exposed neighbour:
//      CENTAUR's batch barrier drops it BELOW DCF while DOMINO holds.

#include <cstdio>

#include "bench_util.h"

using namespace dmn;

int main() {
  const TimeNs dur = sec(bench::bench_seconds(10));
  bench::print_header("Table 3: aggregate throughput, Figure 13 (Mbps)");
  std::printf("%-14s %8s %9s %7s\n", "topology", "DOMINO", "CENTAUR", "DCF");

  struct Row {
    const char* name;
    topo::Topology topo;
  };
  Row rows[] = {{"Figure 13(a)", bench::fig13a_topology()},
                {"Figure 13(b)", bench::fig13b_topology()}};

  for (Row& row : rows) {
    double v[3];
    int i = 0;
    for (api::Scheme s : {api::Scheme::kDomino, api::Scheme::kCentaur,
                          api::Scheme::kDcf}) {
      api::ExperimentConfig cfg;
      cfg.scheme = s;
      cfg.duration = dur;
      cfg.seed = 31;
      cfg.traffic.saturate_downlink = true;
      v[i++] = api::run_experiment(row.topo, cfg).throughput_mbps();
    }
    std::printf("%-14s %8.2f %9.2f %7.2f\n", row.name, v[0], v[1], v[2]);
  }
  std::printf(
      "\npaper: (a) 32.72 / 28.60 / 9.97; (b) 33.85 / 18.35 / 22.13 — "
      "CENTAUR below DCF on (b), DOMINO unaffected\n");
  return 0;
}
