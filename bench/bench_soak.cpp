// Soak / crash-recovery harness for the checkpointing sweep runner
// (docs/RUNNER.md): runs a reference sweep to completion, then fork()s a
// victim process that runs the same sweep with checkpointing enabled and is
// killed (hard _exit, no cleanup — the moral equivalent of SIGKILL or a
// power cut) partway through, and finally resumes from the victim's
// checkpoint in this process. Passes iff the resumed run restores at least
// one point and its serialized report is byte-identical to the
// uninterrupted reference.
//
// Environment knobs:
//   DMN_SOAK_POINTS      sweep size               (default 8)
//   DMN_SOAK_KILL_AFTER  points before the kill   (default 3)
//   DMN_SOAK_SECONDS     simulated secs per point (default 0.5)
//   DMN_SWEEP_CHECKPOINT checkpoint path          (default dmn_soak.ckpt)
//
// CI runs this as a smoke test ("kill a sweep mid-run, assert the resume
// merges byte-identically") and archives the checkpoint file. Exits 0 on
// success, 1 on any mismatch. POSIX-only (fork); on other platforms it
// compiles to a skip.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/sweep.h"
#include "api/sweep_io.h"
#include "bench_util.h"

#ifndef _WIN32
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace dmn;

namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long n = std::strtol(v, nullptr, 10);
  return n > 0 ? static_cast<std::size_t>(n) : fallback;
}

std::vector<api::SweepPoint> soak_points(std::size_t count, TimeNs dur) {
  const auto topo = bench::fig7_topology();
  api::ExperimentConfig base;
  base.scheme = api::Scheme::kDomino;
  base.duration = dur;
  base.traffic.saturate_downlink = true;
  return api::seed_sweep(topo, base, /*first_seed=*/100, count);
}

}  // namespace

int main() {
#ifdef _WIN32
  std::printf("bench_soak: fork() unavailable on this platform, skipping\n");
  return 0;
#else
  const std::size_t num_points = env_size("DMN_SOAK_POINTS", 8);
  const std::size_t kill_after =
      std::min(env_size("DMN_SOAK_KILL_AFTER", 3), num_points - 1);
  const TimeNs dur = sec(bench::bench_seconds(0.5));
  const char* ckpt_env = std::getenv("DMN_SWEEP_CHECKPOINT");
  const std::string ckpt =
      (ckpt_env != nullptr && *ckpt_env != '\0') ? ckpt_env : "dmn_soak.ckpt";
  std::remove(ckpt.c_str());

  const auto points = soak_points(num_points, dur);

  // Reference: the uninterrupted run, no checkpointing involved.
  std::string reference;
  {
    api::SweepRunner runner;
    reference = api::serialize_report(runner.run_outcomes(points));
  }

  // Victim: fork() BEFORE any sweep threads exist, so the child is a clean
  // single-threaded process. It runs the same sweep with checkpointing and
  // _exit()s from the progress callback once kill_after points are done —
  // no destructors, no atexit, exactly what SIGKILL leaves behind.
  const pid_t child = fork();
  if (child < 0) {
    std::perror("bench_soak: fork");
    return 1;
  }
  if (child == 0) {
    api::SweepOptions opt;
    opt.num_threads = 1;  // deterministic progress order for the kill point
    opt.checkpoint_path = ckpt;
    opt.sweep_name = "soak";
    opt.on_progress = [kill_after](std::size_t done, std::size_t) {
      if (done >= kill_after) _exit(42);
    };
    api::SweepRunner runner(opt);
    runner.run_outcomes(points);
    _exit(0);  // only reached if the kill threshold exceeded the sweep
  }
  int status = 0;
  if (waitpid(child, &status, 0) != child) {
    std::perror("bench_soak: waitpid");
    return 1;
  }
  std::printf("bench_soak: victim exited with status %d after >= %zu points\n",
              WIFEXITED(status) ? WEXITSTATUS(status) : -1, kill_after);

  // Resume: same sweep, same checkpoint path, full thread pool.
  api::SweepOptions opt = api::sweep_options_from_env();
  opt.checkpoint_path = ckpt;
  opt.sweep_name = "soak";
  api::SweepRunner runner(opt);
  const auto resumed = runner.run_outcomes(points);
  const std::string merged = api::serialize_report(resumed);

  std::printf(
      "bench_soak: resumed %zu points (%zu restored from checkpoint, %zu "
      "recomputed) on %zu threads\n",
      runner.stats().points, runner.stats().restored,
      runner.stats().points - runner.stats().restored,
      runner.stats().threads);

  bool ok = true;
  if (runner.stats().restored == 0) {
    std::fprintf(stderr,
                 "bench_soak: FAIL — resume restored nothing from %s\n",
                 ckpt.c_str());
    ok = false;
  }
  if (merged != reference) {
    std::fprintf(stderr,
                 "bench_soak: FAIL — resumed report differs from the "
                 "uninterrupted reference (%zu vs %zu bytes)\n",
                 merged.size(), reference.size());
    ok = false;
  }
  if (ok) {
    std::printf(
        "bench_soak: PASS — resumed report is byte-identical to the "
        "uninterrupted run (%zu bytes)\n",
        merged.size());
  }
  return ok ? 0 : 1;
#endif
}
