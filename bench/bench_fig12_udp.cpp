// Figure 12(a)-(c) reproduction: UDP aggregate throughput, mean delay and
// Jain's fairness on T(10,2) with downlink fixed at 10 Mbps per flow and
// uplink swept 0..10 Mbps, for DOMINO / CENTAUR / DCF.
//
// Paper's shape: DOMINO ~74% over DCF at uplink 0, narrowing to ~24% at
// uplink 10; DOMINO delay roughly half of DCF's; DOMINO fairness ~0.78 vs
// DCF ~0.47 under load. The 6 x 3 grid runs as one parallel sweep.

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace dmn;

int main() {
  const auto topo = bench::trace_tmn(10, 2, 42);
  const TimeNs dur = sec(bench::bench_seconds(5));

  const api::Scheme schemes[] = {api::Scheme::kDomino, api::Scheme::kCentaur,
                                 api::Scheme::kDcf};
  std::vector<double> uplinks;
  for (double up = 0.0; up <= 10.01; up += 2.0) uplinks.push_back(up);

  std::vector<api::SweepPoint> points;
  for (const double up : uplinks) {
    for (const api::Scheme s : schemes) {
      api::ExperimentConfig cfg;
      cfg.scheme = s;
      cfg.duration = dur;
      cfg.seed = 21;
      cfg.traffic.downlink_bps = 10e6;
      cfg.traffic.uplink_bps = up * 1e6;
      points.push_back({topo, cfg, std::string(api::to_string(s))});
    }
  }

  bench::BenchJson json("fig12_udp");
  const auto report = bench::run_sweep(points, "fig12_udp", &json);

  bench::print_header("Figure 12(a-c): UDP on T(10,2), downlink 10 Mbps");
  std::printf("%8s | %25s | %25s | %25s\n", "", "throughput (Mbps)",
              "mean delay (ms)", "Jain fairness");
  std::printf("%8s | %8s %8s %7s | %8s %8s %7s | %8s %8s %7s\n", "uplink",
              "DOMINO", "CENTAUR", "DCF", "DOMINO", "CENTAUR", "DCF",
              "DOMINO", "CENTAUR", "DCF");

  for (std::size_t u = 0; u < uplinks.size(); ++u) {
    double tput[3], delay[3], jain[3];
    for (int i = 0; i < 3; ++i) {
      const std::size_t idx = u * 3 + static_cast<std::size_t>(i);
      if (!report.ok(idx)) {
        tput[i] = delay[i] = jain[i] = 0.0;
        continue;
      }
      const auto& r = report.result(idx);
      tput[i] = r.throughput_mbps();
      delay[i] = r.mean_delay_us / 1000.0;
      jain[i] = r.jain_fairness;
      json.add_row()
          .str("scheme", api::to_string(schemes[i]))
          .num("uplink_mbps", uplinks[u])
          .num("throughput_mbps", tput[i])
          .num("mean_delay_ms", delay[i])
          .num("jain_fairness", jain[i]);
    }
    std::printf("%7.0fM | %8.2f %8.2f %7.2f | %8.1f %8.1f %7.1f | "
                "%8.3f %8.3f %7.3f\n",
                uplinks[u], tput[0], tput[1], tput[2], delay[0], delay[1],
                delay[2], jain[0], jain[1], jain[2]);
  }
  std::printf(
      "\npaper: DOMINO +74%% over DCF at uplink 0, +24%% at uplink 10; "
      "DOMINO delay ~ half of DCF; fairness 0.78 vs 0.47\n");
  return 0;
}
