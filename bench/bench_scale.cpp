// Scale bench for the partitioned simulation kernel: a campus of
// radio-isolated buildings (block-diagonal interference structure), swept
// across worker-thread counts against the classic single-queue kernel.
//
// The quantity of interest is kernel throughput — events per second of the
// event loop itself (ExperimentResult::wall_run_seconds) — reported as a
// wall-clock split (substrate setup vs event loop vs the coordinator's
// barrier share) so a regression is attributable to a layer, not just
// visible in a single number. Alongside the sweep the bench asserts the
// partitioned kernel's two correctness claims at scale: results are
// byte-stable across thread counts, and a full audited run (DMN_AUDIT
// semantics via cfg.audit) completes violation-free.
//
// Shape knobs (defaults reproduce the 1000-AP / 24k-client campus):
//   DMN_SCALE_APS             total APs            (default 1000)
//   DMN_SCALE_BUILDINGS       radio-isolated buildings (default 100)
//   DMN_SCALE_CLIENTS_PER_AP  clients per AP       (default 24)
//   DMN_BENCH_SECONDS         simulated seconds    (default 0.05)
//   DMN_BENCH_RUNS            repetitions per point, best run kept (default 1)
//   DMN_SIM_STATS=1           print kernel telemetry per point (windows,
//                             fast-forward jumps, activation, wake counts)
//   DMN_SCALE_MIN_SCALING     when set (e.g. "1.0"): exit non-zero unless the
//                             best multi-thread events/s is at least this
//                             multiple of the 1-thread events/s — the CI
//                             scaling floor
//
// Honest caveat: on a single-core container the thread sweep cannot show
// wall-clock parallel speedup; the partitioned kernel's win there is
// algorithmic (O(partition) instead of O(all nodes) medium accounting per
// transmission, adaptive windows, sparse activation). docs/PERFORMANCE.md
// discusses both regimes.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/experiment.h"
#include "api/sweep_io.h"
#include "bench_util.h"
#include "topo/partition.h"
#include "topo/topology.h"

namespace dmn {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Block-diagonal campus: `buildings` radio-isolated buildings, each a
/// chain of APs within carrier-sense range of their neighbours, each AP
/// with `clients_per_ap` associated clients.
topo::Topology campus(std::size_t aps, std::size_t buildings,
                      std::size_t clients_per_ap) {
  if (buildings == 0) buildings = 1;
  if (buildings > aps) buildings = aps;
  topo::ManualTopologyBuilder b;
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < buildings; ++k) {
    // Distribute APs as evenly as possible across buildings.
    const std::size_t quota = (aps - assigned) / (buildings - k);
    topo::NodeId prev = topo::kNoNode;
    for (std::size_t a = 0; a < quota; ++a) {
      const topo::NodeId ap = b.add_ap();
      if (prev != topo::kNoNode) b.sense(prev, ap);
      for (std::size_t c = 0; c < clients_per_ap; ++c) b.add_client(ap);
      prev = ap;
    }
    assigned += quota;
  }
  return b.build();
}

api::ExperimentConfig scale_cfg(const topo::Topology& t, TimeNs duration,
                                int sim_threads) {
  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDcf;
  cfg.duration = duration;
  cfg.sim_threads = sim_threads;
  cfg.audit.mode = audit::AuditMode::kOff;
  // One rate-limited downlink flow per AP (to its first client): the node
  // count — not the flow count — is what stresses the kernel's per-
  // transmission accounting, and a modest flow set keeps the O(links^2)
  // conflict-graph setup from dominating the bench.
  cfg.traffic.custom.clear();
  for (const topo::NodeId ap : t.aps()) {
    const auto clients = t.clients_of(ap);
    if (clients.empty()) continue;
    cfg.traffic.custom.push_back(
        api::FlowSpec{ap, clients.front(), 2e6, false});
  }
  return cfg;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace
}  // namespace dmn

int main() {
  using namespace dmn;

  const std::size_t aps = env_size("DMN_SCALE_APS", 1000);
  const std::size_t buildings = env_size("DMN_SCALE_BUILDINGS", 100);
  const std::size_t clients_per_ap = env_size("DMN_SCALE_CLIENTS_PER_AP", 24);
  const TimeNs duration = sec(bench::bench_seconds(0.05));
  const int runs = bench::bench_runs(1);
  const char* stats_env = std::getenv("DMN_SIM_STATS");
  const bool want_stats =
      stats_env != nullptr && *stats_env != '\0' && *stats_env != '0';

  bench::print_header("partitioned-kernel scale sweep");
  std::printf("building campus: %zu APs, %zu buildings, %zu clients/AP...\n",
              aps, buildings, clients_per_ap);
  const topo::Topology t = campus(aps, buildings, clients_per_ap);
  const topo::Partitioning parts = topo::compute_partitions(t);
  std::printf("%zu nodes, %u interference partitions\n", t.num_nodes(),
              parts.count);

  bench::BenchJson json("scale");
  json.meta("nodes", static_cast<double>(t.num_nodes()));
  json.meta("aps", static_cast<double>(aps));
  json.meta("clients_per_ap", static_cast<double>(clients_per_ap));
  json.meta("partitions", static_cast<double>(parts.count));
  json.meta("sim_seconds", to_sec(duration));
  json.meta("runs_per_point", static_cast<double>(runs));

  struct Point {
    const char* label;
    int threads;
  };
  const std::vector<Point> sweep = {
      {"classic", -1}, {"part-1t", 1}, {"part-2t", 2},
      {"part-4t", 4},  {"part-8t", 8},
  };

  std::printf("%-10s %8s %10s %12s %9s %9s %9s %8s %12s %9s\n", "kernel",
              "threads", "partitions", "events", "setup_s", "run_s",
              "barrier_s", "barr%", "events/s", "speedup");
  double classic_eps = 0.0;
  double one_thread_eps = 0.0;
  double best_multi_eps = 0.0;
  std::string part_bytes;  // serialized result of the first partitioned run
  bool stable = true;
  for (const Point& p : sweep) {
    // Best-of-N: keep the run with the smallest event-loop wall clock —
    // determinism makes every repetition compute identical results, so the
    // repetitions differ only in scheduler noise.
    api::ExperimentResult r;
    for (int rep = 0; rep < runs; ++rep) {
      auto attempt = api::run_experiment(t, scale_cfg(t, duration, p.threads));
      if (rep == 0 || attempt.wall_run_seconds < r.wall_run_seconds) {
        r = std::move(attempt);
      }
    }
    const double eps = r.wall_run_seconds > 0.0
                           ? static_cast<double>(r.events_executed) /
                                 r.wall_run_seconds
                           : 0.0;
    if (p.threads < 0) classic_eps = eps;
    if (p.threads == 1) one_thread_eps = eps;
    if (p.threads > 1) best_multi_eps = std::max(best_multi_eps, eps);
    const double speedup = classic_eps > 0.0 ? eps / classic_eps : 0.0;
    const double barrier_share = r.wall_run_seconds > 0.0
                                     ? r.sim_barrier_seconds /
                                           r.wall_run_seconds
                                     : 0.0;
    std::printf("%-10s %8d %10u %12llu %9.3f %9.3f %9.3f %7.1f%% %12.0f %8.2fx\n",
                p.label, p.threads, r.sim_partitions,
                static_cast<unsigned long long>(r.events_executed),
                r.wall_setup_seconds, r.wall_run_seconds,
                r.sim_barrier_seconds, 100.0 * barrier_share, eps, speedup);
    if (want_stats && p.threads > 0) {
      std::printf(
          "  stats: %llu windows, %llu ff-jumps, %llu elongated, "
          "activated p50=%u max=%u, wakes spin=%llu sleep=%llu\n",
          static_cast<unsigned long long>(r.sim_windows),
          static_cast<unsigned long long>(r.sim_ff_jumps),
          static_cast<unsigned long long>(r.sim_elongated_windows),
          r.sim_activated_p50, r.sim_activated_max,
          static_cast<unsigned long long>(r.sim_spin_wakes),
          static_cast<unsigned long long>(r.sim_sleep_wakes));
    }
    const std::string bytes = api::serialize_result(r);
    if (p.threads > 0) {
      if (part_bytes.empty()) {
        part_bytes = bytes;
      } else if (bytes != part_bytes) {
        stable = false;
      }
    }
    json.add_row()
        .str("kernel", p.label)
        .num("threads", p.threads)
        .num("partitions", r.sim_partitions)
        .num("events", static_cast<double>(r.events_executed))
        .num("setup_s", r.wall_setup_seconds)
        .num("run_s", r.wall_run_seconds)
        .num("barrier_s", r.sim_barrier_seconds)
        .num("events_per_sec", eps)
        .num("speedup_vs_classic", speedup)
        .num("windows", static_cast<double>(r.sim_windows))
        .num("ff_jumps", static_cast<double>(r.sim_ff_jumps))
        .num("elongated_windows",
             static_cast<double>(r.sim_elongated_windows))
        .num("activated_p50", r.sim_activated_p50)
        .num("activated_max", r.sim_activated_max)
        .num("spin_wakes", static_cast<double>(r.sim_spin_wakes))
        .num("sleep_wakes", static_cast<double>(r.sim_sleep_wakes))
        .num("result_hash", static_cast<double>(fnv1a(bytes) >> 11));
  }
  json.meta("byte_stable", stable ? 1.0 : 0.0);
  std::printf("byte-stable across thread counts: %s\n",
              stable ? "yes" : "NO — DETERMINISM REGRESSION");

  // Full audited run at the largest thread count: every invariant the
  // auditor knows re-checked continuously, per partition queue.
  {
    auto cfg = scale_cfg(t, duration, 8);
    cfg.audit.mode = audit::AuditMode::kRecord;
    const auto r = api::run_experiment(t, cfg);
    const bool ok = r.audit != nullptr && r.audit->violation_free();
    const double checks =
        r.audit ? static_cast<double>(r.audit->checks_run) : 0.0;
    std::printf("audited run: %.0f checks, %s\n", checks,
                ok ? "violation-free" : "VIOLATIONS FOUND");
    if (r.audit != nullptr && !ok) {
      std::printf("%s\n", r.audit->summary().c_str());
    }
    json.meta("audit_checks", checks);
    json.meta("audit_violation_free", ok ? 1.0 : 0.0);
    if (!ok) return 1;
  }
  if (!stable) return 1;

  // CI scaling floor: with DMN_SCALE_MIN_SCALING=<f> the best multi-thread
  // point must reach at least f x the 1-thread events/s — the guardrail
  // that threads never make the kernel slower than not using them. The
  // floor guards *parallelism*, so it is only enforceable where parallelism
  // exists: on a single hardware thread every extra worker is pure futex
  // churn (threads time-slice one core) and the floor is physically
  // unreachable — report the ratio, skip the verdict.
  if (const char* floor_env = std::getenv("DMN_SCALE_MIN_SCALING");
      floor_env != nullptr && *floor_env != '\0') {
    const double floor = std::atof(floor_env);
    const double scaling =
        one_thread_eps > 0.0 ? best_multi_eps / one_thread_eps : 0.0;
    json.meta("scaling_vs_1t", scaling);
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1) {
      std::printf("scaling floor: best multi-thread %.0f ev/s vs 1-thread "
                  "%.0f ev/s = %.2fx — single hardware thread, floor %.2fx "
                  "not applicable (skipped)\n",
                  best_multi_eps, one_thread_eps, scaling, floor);
    } else {
      std::printf("scaling floor: best multi-thread %.0f ev/s vs 1-thread "
                  "%.0f ev/s = %.2fx (floor %.2fx, %u hw threads): %s\n",
                  best_multi_eps, one_thread_eps, scaling, floor, hw,
                  scaling >= floor ? "ok" : "BELOW FLOOR");
      if (scaling < floor) return 1;
    }
  }
  return 0;
}
