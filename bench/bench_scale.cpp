// Scale bench for the partitioned simulation kernel: a campus of
// radio-isolated buildings (block-diagonal interference structure), swept
// across worker-thread counts against the classic single-queue kernel.
//
// The quantity of interest is kernel throughput — events per second of the
// event loop itself (ExperimentResult::wall_run_seconds); substrate
// assembly (topology tables, conflict graph) is identical across kernels
// and reported separately. Alongside the sweep the bench asserts the
// partitioned kernel's two correctness claims at scale: results are
// byte-stable across thread counts, and a full audited run (DMN_AUDIT
// semantics via cfg.audit) completes violation-free.
//
// Shape knobs (defaults reproduce the 1000-AP / 24k-client campus):
//   DMN_SCALE_APS             total APs            (default 1000)
//   DMN_SCALE_BUILDINGS       radio-isolated buildings (default 100)
//   DMN_SCALE_CLIENTS_PER_AP  clients per AP       (default 24)
//   DMN_BENCH_SECONDS         simulated seconds    (default 0.05)
//
// Honest caveat: on a single-core container the thread sweep cannot show
// wall-clock parallel speedup; the partitioned kernel's win there is
// algorithmic (O(partition) instead of O(all nodes) medium accounting per
// transmission). docs/PERFORMANCE.md discusses both regimes.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "api/sweep_io.h"
#include "bench_util.h"
#include "topo/partition.h"
#include "topo/topology.h"

namespace dmn {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Block-diagonal campus: `buildings` radio-isolated buildings, each a
/// chain of APs within carrier-sense range of their neighbours, each AP
/// with `clients_per_ap` associated clients.
topo::Topology campus(std::size_t aps, std::size_t buildings,
                      std::size_t clients_per_ap) {
  if (buildings == 0) buildings = 1;
  if (buildings > aps) buildings = aps;
  topo::ManualTopologyBuilder b;
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < buildings; ++k) {
    // Distribute APs as evenly as possible across buildings.
    const std::size_t quota = (aps - assigned) / (buildings - k);
    topo::NodeId prev = topo::kNoNode;
    for (std::size_t a = 0; a < quota; ++a) {
      const topo::NodeId ap = b.add_ap();
      if (prev != topo::kNoNode) b.sense(prev, ap);
      for (std::size_t c = 0; c < clients_per_ap; ++c) b.add_client(ap);
      prev = ap;
    }
    assigned += quota;
  }
  return b.build();
}

api::ExperimentConfig scale_cfg(const topo::Topology& t, TimeNs duration,
                                int sim_threads) {
  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDcf;
  cfg.duration = duration;
  cfg.sim_threads = sim_threads;
  cfg.audit.mode = audit::AuditMode::kOff;
  // One rate-limited downlink flow per AP (to its first client): the node
  // count — not the flow count — is what stresses the kernel's per-
  // transmission accounting, and a modest flow set keeps the O(links^2)
  // conflict-graph setup from dominating the bench.
  cfg.traffic.custom.clear();
  for (const topo::NodeId ap : t.aps()) {
    const auto clients = t.clients_of(ap);
    if (clients.empty()) continue;
    cfg.traffic.custom.push_back(
        api::FlowSpec{ap, clients.front(), 2e6, false});
  }
  return cfg;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace
}  // namespace dmn

int main() {
  using namespace dmn;

  const std::size_t aps = env_size("DMN_SCALE_APS", 1000);
  const std::size_t buildings = env_size("DMN_SCALE_BUILDINGS", 100);
  const std::size_t clients_per_ap = env_size("DMN_SCALE_CLIENTS_PER_AP", 24);
  const TimeNs duration = sec(bench::bench_seconds(0.05));

  bench::print_header("partitioned-kernel scale sweep");
  std::printf("building campus: %zu APs, %zu buildings, %zu clients/AP...\n",
              aps, buildings, clients_per_ap);
  const topo::Topology t = campus(aps, buildings, clients_per_ap);
  const topo::Partitioning parts = topo::compute_partitions(t);
  std::printf("%zu nodes, %u interference partitions\n", t.num_nodes(),
              parts.count);

  bench::BenchJson json("scale");
  json.meta("nodes", static_cast<double>(t.num_nodes()));
  json.meta("aps", static_cast<double>(aps));
  json.meta("clients_per_ap", static_cast<double>(clients_per_ap));
  json.meta("partitions", static_cast<double>(parts.count));
  json.meta("sim_seconds", to_sec(duration));

  struct Point {
    const char* label;
    int threads;
  };
  const std::vector<Point> sweep = {
      {"classic", -1}, {"part-1t", 1}, {"part-2t", 2},
      {"part-4t", 4},  {"part-8t", 8},
  };

  std::printf("%-10s %8s %10s %12s %10s %12s %9s\n", "kernel", "threads",
              "partitions", "events", "run_s", "events/s", "speedup");
  double classic_eps = 0.0;
  std::string part_bytes;  // serialized result of the first partitioned run
  bool stable = true;
  for (const Point& p : sweep) {
    const auto r = api::run_experiment(t, scale_cfg(t, duration, p.threads));
    const double eps = r.wall_run_seconds > 0.0
                           ? static_cast<double>(r.events_executed) /
                                 r.wall_run_seconds
                           : 0.0;
    if (p.threads < 0) classic_eps = eps;
    const double speedup = classic_eps > 0.0 ? eps / classic_eps : 0.0;
    std::printf("%-10s %8d %10u %12llu %10.3f %12.0f %8.2fx\n", p.label,
                p.threads, r.sim_partitions,
                static_cast<unsigned long long>(r.events_executed),
                r.wall_run_seconds, eps, speedup);
    const std::string bytes = api::serialize_result(r);
    if (p.threads > 0) {
      if (part_bytes.empty()) {
        part_bytes = bytes;
      } else if (bytes != part_bytes) {
        stable = false;
      }
    }
    json.add_row()
        .str("kernel", p.label)
        .num("threads", p.threads)
        .num("partitions", r.sim_partitions)
        .num("events", static_cast<double>(r.events_executed))
        .num("setup_s", r.wall_setup_seconds)
        .num("run_s", r.wall_run_seconds)
        .num("events_per_sec", eps)
        .num("speedup_vs_classic", speedup)
        .num("result_hash", static_cast<double>(fnv1a(bytes) >> 11));
  }
  json.meta("byte_stable", stable ? 1.0 : 0.0);
  std::printf("byte-stable across thread counts: %s\n",
              stable ? "yes" : "NO — DETERMINISM REGRESSION");

  // Full audited run at the largest thread count: every invariant the
  // auditor knows re-checked continuously, per partition queue.
  {
    auto cfg = scale_cfg(t, duration, 8);
    cfg.audit.mode = audit::AuditMode::kRecord;
    const auto r = api::run_experiment(t, cfg);
    const bool ok = r.audit != nullptr && r.audit->violation_free();
    const double checks =
        r.audit ? static_cast<double>(r.audit->checks_run) : 0.0;
    std::printf("audited run: %.0f checks, %s\n", checks,
                ok ? "violation-free" : "VIOLATIONS FOUND");
    if (r.audit != nullptr && !ok) {
      std::printf("%s\n", r.audit->summary().c_str());
    }
    json.meta("audit_checks", checks);
    json.meta("audit_violation_free", ok ? 1.0 : 0.0);
    if (!ok) return 1;
  }
  if (!stable) return 1;
  return 0;
}
