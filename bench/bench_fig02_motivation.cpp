// Figure 2 reproduction: per-link and overall throughput on the Figure 1
// topology (AP1->C1, C2->AP2, AP3->C3) under DCF, CENTAUR, DOMINO and the
// omniscient scheduler.
//
// Paper's shape: DCF starves AP3->C3 (hidden) and wastes the exposed
// C2->AP2 opportunity; the omniscient scheme is ~76% above DCF; DOMINO
// lands close to omniscient; CENTAUR in between.

#include <cstdio>

#include "bench_util.h"

using namespace dmn;

int main() {
  const auto topo = bench::fig1_topology();
  const TimeNs dur = sec(bench::bench_seconds(10));

  bench::print_header("Figure 2: throughput on the Figure-1 topology (Mbps)");
  std::printf("%-11s %9s %9s %9s %9s\n", "scheme", "AP1->C1", "C2->AP2",
              "AP3->C3", "overall");

  double dcf_total = 0.0;
  for (api::Scheme s : {api::Scheme::kDcf, api::Scheme::kCentaur,
                        api::Scheme::kDomino, api::Scheme::kOmniscient}) {
    api::ExperimentConfig cfg;
    cfg.scheme = s;
    cfg.duration = dur;
    cfg.seed = 7;
    cfg.traffic.custom = {api::FlowSpec{0, 3}, api::FlowSpec{4, 1},
                          api::FlowSpec{2, 5}};
    const auto r = api::run_experiment(topo, cfg);
    std::printf("%-11s %9.2f %9.2f %9.2f %9.2f\n", api::to_string(s),
                r.links[0].throughput_bps / 1e6,
                r.links[1].throughput_bps / 1e6,
                r.links[2].throughput_bps / 1e6, r.throughput_mbps());
    if (s == api::Scheme::kDcf) dcf_total = r.aggregate_throughput_bps;
    if (s == api::Scheme::kOmniscient && dcf_total > 0) {
      std::printf("  omniscient gain over DCF: %.0f%% (paper: ~76%%)\n",
                  (r.aggregate_throughput_bps / dcf_total - 1.0) * 100.0);
    }
  }
  return 0;
}
