// Figure 9 reproduction: chip-level signature detection ratio vs the number
// of combined signatures (1..7) for the paper's five USRP setups, 1000 runs
// each; plus the false-positive rate (paper: < 1%).
//
// Setups: 1 sender; 2 senders same signatures; 2 senders different
// signatures; 3 senders same; 3 senders different. "Same" means the senders
// broadcast identical combined sets (constructive/destructive mixing);
// "different" splits the combined set across the senders.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "gold/correlator.h"

using namespace dmn;

namespace {

struct Setup {
  const char* name;
  int senders;
  bool same;
};

double run_setup(const gold::GoldCodeSet& set, const Setup& setup,
                 int combined, int runs, Rng& rng, double* false_pos) {
  gold::Correlator corr(set);
  int ok = 0;
  int fp = 0;
  std::vector<gold::DetectionResult> results;
  for (int r = 0; r < runs; ++r) {
    // Choose `combined` distinct target codes.
    std::vector<std::size_t> codes;
    for (int k = 0; k < combined; ++k) {
      codes.push_back(static_cast<std::size_t>(
          (r * 13 + k * 29) % 100));
    }
    std::vector<gold::BurstSender> senders;
    for (int s = 0; s < setup.senders; ++s) {
      gold::BurstSender b;
      if (setup.same) {
        b.codes = codes;
      } else {
        // Split the set across senders round-robin.
        for (std::size_t i = static_cast<std::size_t>(s); i < codes.size();
             i += static_cast<std::size_t>(setup.senders)) {
          b.codes.push_back(codes[i]);
        }
      }
      b.amplitude = 1.0;  // worst case: similar RSS (§3.2)
      b.chip_offset = static_cast<std::size_t>(rng.uniform_int(0, 3));
      b.phase_rad = rng.uniform(0.0, 2.0 * M_PI);
      senders.push_back(std::move(b));
    }
    const auto rx =
        gold::synthesize_burst(corr.bank(), senders, /*noise=*/0.05, 16, rng);
    // One batched pass: the first target code plus a false-positive probe
    // (a code guaranteed absent) share the burst's SoA conversion and RMS.
    const std::size_t probes[] = {codes[0],
                                  110 + static_cast<std::size_t>(r % 10)};
    corr.detect_many(rx, probes, results);
    if (results[0].detected) ++ok;
    if (results[1].detected) ++fp;
  }
  *false_pos += static_cast<double>(fp) / runs;
  return 100.0 * ok / runs;
}

}  // namespace

int main() {
  gold::GoldCodeSet set(7);  // the paper's 129 codes of length 127
  Rng rng(99);
  const int runs = static_cast<int>(bench::bench_seconds(300));

  const Setup setups[] = {
      {"1 sender", 1, false},
      {"2 senders, same signatures", 2, true},
      {"2 senders, different signatures", 2, false},
      {"3 senders, same signatures", 3, true},
      {"3 senders, different signatures", 3, false},
  };

  bench::print_header(
      "Figure 9: signature detection ratio (%) vs combined signatures");
  std::printf("%-34s", "setup \\ combined");
  for (int c = 1; c <= 7; ++c) std::printf(" %5d", c);
  std::printf("\n");

  double fp_acc = 0.0;
  int fp_cells = 0;
  for (const Setup& s : setups) {
    std::printf("%-34s", s.name);
    for (int combined = 1; combined <= 7; ++combined) {
      if (combined < s.senders && !s.same) {
        std::printf(" %5s", "-");  // cannot split fewer codes than senders
        continue;
      }
      const double ratio = run_setup(set, s, combined, runs, rng, &fp_acc);
      ++fp_cells;
      std::printf(" %5.1f", ratio);
    }
    std::printf("\n");
  }
  std::printf("\nfalse positive ratio: %.2f%% (paper: < 1%%)\n",
              100.0 * fp_acc / fp_cells);
  std::printf("paper: ~100%% detection while combined <= 4\n");
  return 0;
}
