// Figure 10 reproduction: the "DOMINO under the microscope" timeline on the
// Figure 7 network with all uplink and downlink flows saturated. Prints the
// per-slot transmission schedule (real links, fake packets, ROP polls) and
// the misalignment so the domino chains, fake-link filling and polling
// cadence are visible exactly like the paper's trace.

#include <cstdio>
#include <iostream>

#include "bench_util.h"

using namespace dmn;

int main() {
  const auto topo = bench::fig7_topology();

  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDomino;
  cfg.duration = msec(100);
  cfg.seed = 3;
  cfg.traffic.saturate_downlink = true;
  cfg.traffic.saturate_uplink = true;
  cfg.record_timeline = true;

  const auto r = api::run_experiment(topo, cfg);

  bench::print_header("Figure 10: DOMINO under the microscope (Figure 7 net)");
  std::printf("aggregate: %.2f Mbps | fairness %.3f | polls %zu | "
              "self-starts %llu\n",
              r.throughput_mbps(), r.jain_fairness,
              r.timeline->polls().size(),
              static_cast<unsigned long long>(r.domino_self_starts));

  // The paper shows slots ~90-94 (batches 10-11); print a steady-state
  // window of similar depth.
  const std::uint64_t from = 90;
  const std::uint64_t to = 101;
  std::printf("\nslots %llu..%llu:\n", static_cast<unsigned long long>(from),
              static_cast<unsigned long long>(to));
  r.timeline->print(std::cout, from, to);

  std::printf(
      "\npaper's observations to look for: (1) receivers triggering hidden "
      "next transmitters,\n(2) limited impact of a missed transmission, "
      "(3) fake packets keeping chains triggered.\n");
  return 0;
}
