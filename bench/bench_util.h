#pragma once
// Shared helpers for the reproduction benches: the paper's figure
// topologies, run-length control, and table printing.
//
// Simulated duration per data point defaults to a laptop-friendly value and
// can be raised toward the paper's 50 s with DMN_BENCH_SECONDS.
//
// Environment knobs shared by all benches:
//   DMN_BENCH_SECONDS  simulated seconds per data point
//   DMN_BENCH_RUNS     repetition count for seed sweeps
//   DMN_SWEEP_THREADS  sweep pool size (default: all hardware threads)
//   DMN_BENCH_JSON     when set, benches also write machine-readable
//                      BENCH_<name>.json rows there (a directory, or a
//                      literal *.json file path)
// plus the runner knobs every sweep inherits through run_sweep (see
// docs/RUNNER.md): DMN_SWEEP_CHECKPOINT, DMN_SWEEP_POINT_TIMEOUT,
// DMN_SWEEP_POINT_MAX_EVENTS, DMN_SWEEP_RETRIES.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "api/experiment.h"
#include "api/sweep.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"

namespace dmn::bench {

inline double bench_seconds(double fallback) {
  const char* v = std::getenv("DMN_BENCH_SECONDS");
  if (v == nullptr) return fallback;
  const double s = std::atof(v);
  return s > 0 ? s : fallback;
}

inline int bench_runs(int fallback) {
  const char* v = std::getenv("DMN_BENCH_RUNS");
  if (v == nullptr) return fallback;
  return std::max(1, std::atoi(v));
}

/// Figure 1: three AP-client pairs; AP1 hidden to AP3, AP1/C2 exposed.
/// Nodes: AP1=0, AP2=1, AP3=2, C1=3, C2=4, C3=5.
inline topo::Topology fig1_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap1 = b.add_ap();
  const auto ap2 = b.add_ap();
  const auto ap3 = b.add_ap();
  b.add_client(ap1);
  b.add_client(ap2);
  b.add_client(ap3);
  b.sense(ap1, 4);       // exposed pair AP1 / C2
  b.interfere(ap1, 5);   // hidden: AP1 corrupts C3
  b.sense(ap2, 3);
  (void)ap2;
  (void)ap3;
  return b.build();
}

/// Figure 7: four AP-client pairs in two conflicting halves.
/// Nodes: AP1..AP4 = 0..3, C1..C4 = 4..7.
inline topo::Topology fig7_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap1 = b.add_ap();
  const auto ap2 = b.add_ap();
  const auto ap3 = b.add_ap();
  const auto ap4 = b.add_ap();
  b.add_client(ap1);  // 4
  b.add_client(ap2);  // 5
  b.add_client(ap3);  // 6
  b.add_client(ap4);  // 7
  b.interfere(ap1, 5).interfere(ap2, 4);
  b.interfere(ap3, 7).interfere(ap4, 6);
  b.sense(ap1, ap2).sense(ap3, ap4).sense(4, 5).sense(6, 7);
  return b.build();
}

/// Figure 13(a): four downlinks all mutually exposed (every AP hears every
/// other AP; receivers clean).
inline topo::Topology fig13a_topology() {
  topo::ManualTopologyBuilder b;
  topo::NodeId aps[4];
  for (auto& ap : aps) ap = b.add_ap();
  for (const auto ap : aps) b.add_client(ap);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) b.sense(aps[i], aps[j]);
  }
  return b.build();
}

/// Figure 13(b): AP1..AP3 out of range of each other; all three share an
/// exposed relationship with AP4 only.
inline topo::Topology fig13b_topology() {
  topo::ManualTopologyBuilder b;
  topo::NodeId aps[4];
  for (auto& ap : aps) ap = b.add_ap();
  for (const auto ap : aps) b.add_client(ap);
  for (int i = 0; i < 3; ++i) b.sense(aps[i], aps[3]);
  return b.build();
}

/// The paper's default large-scale setting: T(m,n) drawn from the synthetic
/// 40-node two-building trace.
inline topo::Topology trace_tmn(std::size_t m, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  const auto trace = topo::synthesize_trace({}, rng);
  return topo::Topology::build_tmn(trace.rss, m, n, {}, rng);
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

// ---- machine-readable bench output (DMN_BENCH_JSON) ------------------------

/// Collects one JSON object per data point and, when DMN_BENCH_JSON is set,
/// writes them as BENCH_<name>.json on destruction. Without the env var it
/// costs a few string appends and writes nothing, so benches call it
/// unconditionally. Values are flat key -> number/string pairs — enough for
/// the perf-trajectory tooling to diff runs without scraping stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  class Row {
   public:
    Row& num(const std::string& key, double v) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      fields_.emplace_back(key, buf);
      quoted_.push_back(false);
      return *this;
    }
    Row& str(const std::string& key, const std::string& v) {
      std::string esc;
      for (const char c : v) {
        if (c == '"' || c == '\\') esc += '\\';
        esc += c;
      }
      fields_.emplace_back(key, esc);
      quoted_.push_back(true);
      return *this;
    }

   private:
    friend class BenchJson;
    std::vector<std::pair<std::string, std::string>> fields_;
    std::vector<bool> quoted_;
  };

  Row& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Extra top-level numeric field (e.g. sweep wall-clock seconds).
  void meta(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    meta_.emplace_back(key, buf);
  }

  ~BenchJson() {
    const char* dest = std::getenv("DMN_BENCH_JSON");
    if (dest == nullptr || *dest == '\0') return;
    std::string path(dest);
    const bool is_file = path.size() > 5 &&
                         path.compare(path.size() - 5, 5, ".json") == 0;
    if (!is_file) path += "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "DMN_BENCH_JSON: cannot open %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n", name_.c_str());
    for (const auto& [k, v] : meta_) {
      std::fprintf(f, "  \"%s\": %s,\n", k.c_str(), v.c_str());
    }
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      const Row& row = rows_[r];
      for (std::size_t i = 0; i < row.fields_.size(); ++i) {
        const auto& [k, v] = row.fields_[i];
        std::fprintf(f, "%s\"%s\": %s%s%s", i == 0 ? "" : ", ", k.c_str(),
                     row.quoted_[i] ? "\"" : "", v.c_str(),
                     row.quoted_[i] ? "\"" : "");
      }
      std::fprintf(f, "}%s\n", r + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<Row> rows_;
};

// ---- outcome-aware sweep entry point ---------------------------------------

/// Runs a sweep with the full robustness stack (checkpointing, watchdogs,
/// retries, graceful shutdown — all wired from the environment) and prints
/// the shared summary line. Failed points are reported to stderr instead of
/// aborting the bench; callers guard each row with `report.ok(i)`.
/// When `json` is given, the sweep metadata rows every bench used to emit by
/// hand are attached to it.
inline api::SweepReport run_sweep(const std::vector<api::SweepPoint>& points,
                                  const std::string& name,
                                  BenchJson* json = nullptr) {
  api::SweepOptions options = api::sweep_options_from_env();
  options.sweep_name = name;
  api::SweepRunner runner(options);
  api::SweepReport report = runner.run_outcomes(points);
  const api::SweepStats& st = report.stats;

  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const api::PointOutcome& o = report.outcomes[i];
    if (o.ok()) continue;
    const char* label =
        points[i].label.empty() ? "(unlabeled)" : points[i].label.c_str();
    switch (o.status) {
      case api::PointStatus::kError:
        std::fprintf(stderr, "%s: point %zu [%s] failed: %s: %s\n",
                     name.c_str(), i, label, o.error_type.c_str(),
                     o.error_message.c_str());
        break;
      case api::PointStatus::kTimedOut:
        std::fprintf(stderr,
                     "%s: point %zu [%s] timed out at sim t=%.3fs after "
                     "%llu events\n",
                     name.c_str(), i, label,
                     static_cast<double>(o.sim_time_ns) * 1e-9,
                     static_cast<unsigned long long>(o.events_executed));
        break;
      default:
        std::fprintf(stderr, "%s: point %zu [%s] skipped\n", name.c_str(), i,
                     label);
        break;
    }
  }

  std::printf(
      "sweep: %zu points on %zu threads in %.2fs "
      "(%zu ok, %zu restored, %zu failed, %zu timed out, %zu skipped)\n",
      st.points, st.threads, st.wall_seconds, st.ok, st.restored, st.errors,
      st.timeouts, st.skipped);
  if (json != nullptr) {
    json->meta("wall_seconds", st.wall_seconds);
    json->meta("threads", static_cast<double>(st.threads));
    json->meta("points_ok", static_cast<double>(st.ok));
    json->meta("points_failed", static_cast<double>(st.errors));
    json->meta("points_timed_out", static_cast<double>(st.timeouts));
    json->meta("points_skipped", static_cast<double>(st.skipped));
  }
  return report;
}

}  // namespace dmn::bench
