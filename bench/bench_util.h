#pragma once
// Shared helpers for the reproduction benches: the paper's figure
// topologies, run-length control, and table printing.
//
// Simulated duration per data point defaults to a laptop-friendly value and
// can be raised toward the paper's 50 s with DMN_BENCH_SECONDS.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/experiment.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"

namespace dmn::bench {

inline double bench_seconds(double fallback) {
  const char* v = std::getenv("DMN_BENCH_SECONDS");
  if (v == nullptr) return fallback;
  const double s = std::atof(v);
  return s > 0 ? s : fallback;
}

/// Figure 1: three AP-client pairs; AP1 hidden to AP3, AP1/C2 exposed.
/// Nodes: AP1=0, AP2=1, AP3=2, C1=3, C2=4, C3=5.
inline topo::Topology fig1_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap1 = b.add_ap();
  const auto ap2 = b.add_ap();
  const auto ap3 = b.add_ap();
  b.add_client(ap1);
  b.add_client(ap2);
  b.add_client(ap3);
  b.sense(ap1, 4);       // exposed pair AP1 / C2
  b.interfere(ap1, 5);   // hidden: AP1 corrupts C3
  b.sense(ap2, 3);
  (void)ap2;
  (void)ap3;
  return b.build();
}

/// Figure 7: four AP-client pairs in two conflicting halves.
/// Nodes: AP1..AP4 = 0..3, C1..C4 = 4..7.
inline topo::Topology fig7_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap1 = b.add_ap();
  const auto ap2 = b.add_ap();
  const auto ap3 = b.add_ap();
  const auto ap4 = b.add_ap();
  b.add_client(ap1);  // 4
  b.add_client(ap2);  // 5
  b.add_client(ap3);  // 6
  b.add_client(ap4);  // 7
  b.interfere(ap1, 5).interfere(ap2, 4);
  b.interfere(ap3, 7).interfere(ap4, 6);
  b.sense(ap1, ap2).sense(ap3, ap4).sense(4, 5).sense(6, 7);
  return b.build();
}

/// Figure 13(a): four downlinks all mutually exposed (every AP hears every
/// other AP; receivers clean).
inline topo::Topology fig13a_topology() {
  topo::ManualTopologyBuilder b;
  topo::NodeId aps[4];
  for (auto& ap : aps) ap = b.add_ap();
  for (const auto ap : aps) b.add_client(ap);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) b.sense(aps[i], aps[j]);
  }
  return b.build();
}

/// Figure 13(b): AP1..AP3 out of range of each other; all three share an
/// exposed relationship with AP4 only.
inline topo::Topology fig13b_topology() {
  topo::ManualTopologyBuilder b;
  topo::NodeId aps[4];
  for (auto& ap : aps) ap = b.add_ap();
  for (const auto ap : aps) b.add_client(ap);
  for (int i = 0; i < 3; ++i) b.sense(aps[i], aps[3]);
  return b.build();
}

/// The paper's default large-scale setting: T(m,n) drawn from the synthetic
/// 40-node two-building trace.
inline topo::Topology trace_tmn(std::size_t m, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  const auto trace = topo::synthesize_trace({}, rng);
  return topo::Topology::build_tmn(trace.rss, m, n, {}, rng);
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace dmn::bench
