// §5 "Polling frequency" study: UDP delay and throughput on T(10,2) as the
// batch size (the reciprocal of the polling frequency) grows, under heavy
// (5 Mbps/link) and light (500 Kbps/link) traffic.
//
// Paper: under heavy traffic larger batches slightly improve both metrics;
// under light traffic the delay grows with batch size. The 4 x 2 grid runs
// as one parallel sweep.

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace dmn;

int main() {
  const auto topo = bench::trace_tmn(10, 2, 42);
  const TimeNs dur = sec(bench::bench_seconds(5));

  const std::size_t batches[] = {5, 10, 20, 40};
  const double rates[] = {5e6, 0.5e6};

  std::vector<api::SweepPoint> points;
  for (const std::size_t batch : batches) {
    for (const double rate : rates) {
      api::ExperimentConfig cfg;
      cfg.scheme = api::Scheme::kDomino;
      cfg.duration = dur;
      cfg.seed = 77;
      cfg.traffic.downlink_bps = rate;
      cfg.traffic.uplink_bps = rate;
      cfg.domino.batch_slots = batch;
      points.push_back({topo, cfg, "batch " + std::to_string(batch)});
    }
  }

  bench::BenchJson json("polling_frequency");
  const auto report = bench::run_sweep(points, "polling_frequency", &json);

  bench::print_header(
      "Polling frequency (§5): batch size vs UDP delay / throughput, "
      "T(10,2)");
  std::printf("%8s | %22s | %22s\n", "", "heavy (5 Mbps/link)",
              "light (500 Kbps/link)");
  std::printf("%8s | %10s %11s | %10s %11s\n", "batch", "Mbps", "delay ms",
              "Mbps", "delay ms");

  for (std::size_t b = 0; b < 4; ++b) {
    double tput[2], delay[2];
    for (int i = 0; i < 2; ++i) {
      const std::size_t idx = b * 2 + static_cast<std::size_t>(i);
      if (!report.ok(idx)) {
        tput[i] = delay[i] = 0.0;
        continue;
      }
      const auto& r = report.result(idx);
      tput[i] = r.throughput_mbps();
      delay[i] = r.mean_delay_us / 1000.0;
      json.add_row()
          .num("batch_slots", static_cast<double>(batches[b]))
          .num("rate_bps", rates[i])
          .num("throughput_mbps", tput[i])
          .num("mean_delay_ms", delay[i]);
    }
    std::printf("%8zu | %10.2f %11.2f | %10.2f %11.2f\n", batches[b],
                tput[0], delay[0], tput[1], delay[1]);
  }
  std::printf(
      "\npaper: heavy traffic — larger batches slightly better; light "
      "traffic — delay increases with batch size\n");
  return 0;
}
