// §5 "Polling frequency" study: UDP delay and throughput on T(10,2) as the
// batch size (the reciprocal of the polling frequency) grows, under heavy
// (5 Mbps/link) and light (500 Kbps/link) traffic.
//
// Paper: under heavy traffic larger batches slightly improve both metrics;
// under light traffic the delay grows with batch size.

#include <cstdio>

#include "bench_util.h"

using namespace dmn;

int main() {
  const auto topo = bench::trace_tmn(10, 2, 42);
  const TimeNs dur = sec(bench::bench_seconds(5));

  bench::print_header(
      "Polling frequency (§5): batch size vs UDP delay / throughput, "
      "T(10,2)");
  std::printf("%8s | %22s | %22s\n", "", "heavy (5 Mbps/link)",
              "light (500 Kbps/link)");
  std::printf("%8s | %10s %11s | %10s %11s\n", "batch", "Mbps", "delay ms",
              "Mbps", "delay ms");

  for (std::size_t batch : {5u, 10u, 20u, 40u}) {
    double tput[2], delay[2];
    int i = 0;
    for (double rate : {5e6, 0.5e6}) {
      api::ExperimentConfig cfg;
      cfg.scheme = api::Scheme::kDomino;
      cfg.duration = dur;
      cfg.seed = 77;
      cfg.traffic.downlink_bps = rate;
      cfg.traffic.uplink_bps = rate;
      cfg.domino.batch_slots = batch;
      const auto r = api::run_experiment(topo, cfg);
      tput[i] = r.throughput_mbps();
      delay[i] = r.mean_delay_us / 1000.0;
      ++i;
    }
    std::printf("%8zu | %10.2f %11.2f | %10.2f %11.2f\n", batch, tput[0],
                delay[0], tput[1], delay[1]);
  }
  std::printf(
      "\npaper: heavy traffic — larger batches slightly better; light "
      "traffic — delay increases with batch size\n");
  return 0;
}
