// Figure 14 reproduction: CDF of DOMINO's throughput gain over DCF across
// random T(20,3) topologies in an 800x800 m area (ns-3-style default path
// loss), saturated UDP.
//
// Paper: 50 runs; gain 1.22x..1.96x with a median of 1.58x. Runs default to
// fewer repetitions for laptop runtimes; raise DMN_BENCH_RUNS to 50. The
// 2 x runs experiment points fan across all cores via SweepRunner
// (DMN_SWEEP_THREADS=1 recovers the serial loop, bit-identically).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace dmn;

int main() {
  const int runs = bench::bench_runs(12);
  const TimeNs dur = sec(bench::bench_seconds(3));

  // Two points per run — DCF then DOMINO on the same random topology.
  std::vector<api::SweepPoint> points;
  for (int run = 0; run < runs; ++run) {
    Rng rng(1000 + static_cast<std::uint64_t>(run));
    topo::LogDistanceModel model;
    const auto topo = topo::Topology::random_network(20, 3, 800.0, model,
                                                     {}, rng);
    api::ExperimentConfig cfg;
    cfg.duration = dur;
    cfg.seed = 1000 + static_cast<std::uint64_t>(run);
    cfg.traffic.downlink_bps = 10e6;

    cfg.scheme = api::Scheme::kDcf;
    points.push_back({topo, cfg, "run " + std::to_string(run) + " DCF"});
    cfg.scheme = api::Scheme::kDomino;
    points.push_back({topo, cfg, "run " + std::to_string(run) + " DOMINO"});
  }

  bench::BenchJson json("fig14_random_cdf");
  const auto report = bench::run_sweep(points, "fig14_random_cdf", &json);

  std::vector<double> gains;
  for (int run = 0; run < runs; ++run) {
    const std::size_t di = static_cast<std::size_t>(2 * run);
    if (!report.ok(di) || !report.ok(di + 1)) continue;
    const auto& dcf = report.result(di);
    const auto& dom = report.result(di + 1);
    double gain = 0.0;
    if (dcf.aggregate_throughput_bps > 0) {
      gain = dom.aggregate_throughput_bps / dcf.aggregate_throughput_bps;
      gains.push_back(gain);
    }
    std::printf("run %2d: gain %.2fx\n", run, gain);
    json.add_row()
        .num("run", run)
        .num("dcf_mbps", dcf.throughput_mbps())
        .num("domino_mbps", dom.throughput_mbps())
        .num("gain", gain);
  }

  std::sort(gains.begin(), gains.end());
  bench::print_header(
      "Figure 14: CDF of DOMINO/DCF throughput gain, random T(20,3)");
  std::printf("%8s %8s\n", "gain", "CDF");
  for (std::size_t i = 0; i < gains.size(); ++i) {
    std::printf("%8.2f %8.2f\n", gains[i],
                static_cast<double>(i + 1) / gains.size());
  }
  if (!gains.empty()) {
    std::printf("\nmedian gain: %.2fx (paper: 1.58x, range 1.22-1.96x)\n",
                gains[gains.size() / 2]);
  }
  return 0;
}
