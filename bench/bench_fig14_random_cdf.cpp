// Figure 14 reproduction: CDF of DOMINO's throughput gain over DCF across
// random T(20,3) topologies in an 800x800 m area (ns-3-style default path
// loss), saturated UDP.
//
// Paper: 50 runs; gain 1.22x..1.96x with a median of 1.58x. Runs default to
// fewer repetitions for laptop runtimes; raise DMN_BENCH_RUNS to 50.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"

using namespace dmn;

int main() {
  int runs = 12;
  if (const char* v = std::getenv("DMN_BENCH_RUNS")) {
    runs = std::max(1, std::atoi(v));
  }
  const TimeNs dur = sec(bench::bench_seconds(3));

  std::vector<double> gains;
  for (int run = 0; run < runs; ++run) {
    Rng rng(1000 + static_cast<std::uint64_t>(run));
    topo::LogDistanceModel model;
    const auto topo = topo::Topology::random_network(20, 3, 800.0, model,
                                                     {}, rng);
    api::ExperimentConfig cfg;
    cfg.duration = dur;
    cfg.seed = 1000 + static_cast<std::uint64_t>(run);
    cfg.traffic.downlink_bps = 10e6;

    cfg.scheme = api::Scheme::kDcf;
    const auto dcf = api::run_experiment(topo, cfg);
    cfg.scheme = api::Scheme::kDomino;
    const auto dom = api::run_experiment(topo, cfg);
    if (dcf.aggregate_throughput_bps > 0) {
      gains.push_back(dom.aggregate_throughput_bps /
                      dcf.aggregate_throughput_bps);
    }
    std::printf("run %2d: gain %.2fx\n", run,
                gains.empty() ? 0.0 : gains.back());
  }

  std::sort(gains.begin(), gains.end());
  bench::print_header(
      "Figure 14: CDF of DOMINO/DCF throughput gain, random T(20,3)");
  std::printf("%8s %8s\n", "gain", "CDF");
  for (std::size_t i = 0; i < gains.size(); ++i) {
    std::printf("%8.2f %8.2f\n", gains[i],
                static_cast<double>(i + 1) / gains.size());
  }
  if (!gains.empty()) {
    std::printf("\nmedian gain: %.2fx (paper: 1.58x, range 1.22-1.96x)\n",
                gains[gains.size() / 2]);
  }
  return 0;
}
