// Classic google-benchmark timings of the hot primitives: FFT, Gold
// correlation, conflict-graph construction, RAND scheduling and the
// event-driven medium.

#include <benchmark/benchmark.h>

#include "domino/rand_scheduler.h"
#include "dsp/fft.h"
#include "gold/correlator.h"
#include "gold/gold_code.h"
#include "mac/dcf.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"

using namespace dmn;

static void BM_Fft256(benchmark::State& state) {
  Rng rng(1);
  std::vector<dsp::Cplx> x(256);
  for (auto& c : x) c = dsp::Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (auto _ : state) {
    auto y = x;
    dsp::fft(y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_Fft256);

static void BM_GoldSetConstruction(benchmark::State& state) {
  for (auto _ : state) {
    gold::GoldCodeSet set(7);
    benchmark::DoNotOptimize(set);
  }
}
BENCHMARK(BM_GoldSetConstruction);

static void BM_SignatureDetect(benchmark::State& state) {
  gold::GoldCodeSet set(7);
  gold::Correlator corr(set);
  Rng rng(2);
  std::vector<gold::BurstSender> senders = {
      gold::BurstSender{{1, 2, 3, 4}, 1.0, 2, 0.7}};
  const auto rx = gold::synthesize_burst(set, senders, 0.05, 16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(corr.detect(rx, 3));
  }
}
BENCHMARK(BM_SignatureDetect);

static void BM_SignatureDetectMany8(benchmark::State& state) {
  gold::GoldCodeSet set(7);
  gold::Correlator corr(set);
  Rng rng(2);
  std::vector<gold::BurstSender> senders = {
      gold::BurstSender{{1, 2, 3, 4}, 1.0, 2, 0.7}};
  const auto rx = gold::synthesize_burst(corr.bank(), senders, 0.05, 16, rng);
  const std::vector<std::size_t> candidates = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<gold::DetectionResult> results;
  for (auto _ : state) {
    corr.detect_many(rx, candidates, results);
    benchmark::DoNotOptimize(results);
  }
}
BENCHMARK(BM_SignatureDetectMany8);

static void BM_SynthesizeBurstBank(benchmark::State& state) {
  gold::GoldCodeSet set(7);
  gold::CorrelatorBank bank(set);
  Rng rng(6);
  std::vector<gold::BurstSender> senders = {
      gold::BurstSender{{1, 2, 3, 4}, 1.0, 2, 0.7},
      gold::BurstSender{{5, 6}, 0.8, 1, 1.9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gold::synthesize_burst(bank, senders, 0.05, 16, rng));
  }
}
BENCHMARK(BM_SynthesizeBurstBank);

static void BM_TraceSynthesis(benchmark::State& state) {
  for (auto _ : state) {
    Rng rng(3);
    benchmark::DoNotOptimize(topo::synthesize_trace({}, rng));
  }
}
BENCHMARK(BM_TraceSynthesis);

static void BM_ConflictGraphT102(benchmark::State& state) {
  Rng rng(4);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 10, 2, {}, rng);
  const auto links = t.make_links(true, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo::ConflictGraph::build(t, links));
  }
}
BENCHMARK(BM_ConflictGraphT102);

static void BM_RandBatch(benchmark::State& state) {
  Rng rng(5);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 10, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto g = topo::ConflictGraph::build(t, links);
  domino::RandScheduler rand(g);
  std::vector<std::size_t> demand(g.num_links(), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rand.schedule_batch(demand, 10));
  }
}
BENCHMARK(BM_RandBatch);

static void BM_DcfSaturatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    topo::ManualTopologyBuilder b;
    const auto ap = b.add_ap();
    b.add_client(ap);
    auto t = b.build();
    sim::Simulator sim;
    phy::Medium medium(sim, t);
    mac::WifiParams params;
    params.queue_capacity = 3000;
    int delivered = 0;
    mac::DcfNode apn(sim, medium, ap, params, Rng(1),
                     [&](const traffic::Packet&, topo::NodeId, TimeNs) {
                       ++delivered;
                     });
    mac::DcfNode cn(sim, medium, 1, params, Rng(2),
                    [&](const traffic::Packet&, topo::NodeId, TimeNs) {
                      ++delivered;
                    });
    for (int i = 0; i < 2000; ++i) {
      traffic::Packet p;
      p.id = static_cast<traffic::PacketId>(i + 1);
      p.flow = 0;
      p.src = ap;
      p.dst = 1;
      apn.enqueue(p);
    }
    sim.run_until(sec(1));
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_DcfSaturatedSecond)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
