// Chain-resilience bench: graceful-degradation curves per scheme under the
// fault injector (docs/FAULTS.md). Three one-dimensional severity sweeps —
// backbone drop rate, external-interference duty cycle, and clock skew —
// each crossed with every registered comparison scheme on the Figure 7
// network, so the output shows *relative* robustness: how DOMINO's chain
// degrades versus DCF / CENTAUR / the omniscient bound under identical
// impairments. DOMINO rows additionally report the chain-health metrics
// (missed rows, self-starts, recovery-latency histogram stats).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace dmn;

namespace {

api::ExperimentConfig base_cfg(api::Scheme scheme) {
  api::ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.duration = sec(bench::bench_seconds(2));
  cfg.seed = 11;
  cfg.traffic.saturate_downlink = true;
  return cfg;
}

constexpr api::Scheme kSchemes[] = {api::Scheme::kDcf, api::Scheme::kCentaur,
                                    api::Scheme::kDomino,
                                    api::Scheme::kOmniscient};

struct Pctls {
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

Pctls recovery_pctls(std::vector<double> samples) {
  Pctls p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  p.p50 = samples[samples.size() / 2];
  p.p95 = samples[(samples.size() * 95) / 100];
  p.max = samples.back();
  return p;
}

}  // namespace

int main() {
  const auto topo = bench::fig7_topology();

  // axis name -> severity values, applied to one knob each.
  const std::vector<double> drop_rates = {0.0, 0.02, 0.05, 0.1, 0.2};
  const std::vector<double> intf_duties = {0.0, 0.05, 0.1, 0.2, 0.3};
  const std::vector<double> skews_ppm = {0.0, 10.0, 25.0, 50.0, 100.0};
  // Combined axis: all knobs scaled together (severity 1 is the acceptance
  // scenario: 5% drop + 10% interference duty + forced signature losses).
  // Only this axis opens recovery-latency episodes — those require
  // ground-truth forced trigger losses, which the pure wired/PHY axes
  // cannot attribute.
  const std::vector<double> combined = {0.0, 0.5, 1.0, 2.0};

  struct PointMeta {
    std::string axis;
    double severity;
    api::Scheme scheme;
  };
  std::vector<api::SweepPoint> points;
  std::vector<PointMeta> meta;

  auto add = [&](const std::string& axis, double severity,
                 api::Scheme scheme, const fault::FaultPlan& plan) {
    api::ExperimentConfig cfg = base_cfg(scheme);
    cfg.faults = plan;
    char label[96];
    std::snprintf(label, sizeof(label), "%s=%.3g %s", axis.c_str(), severity,
                  api::to_string(scheme));
    points.push_back({topo, cfg, label});
    meta.push_back({axis, severity, scheme});
  };

  for (const api::Scheme s : kSchemes) {
    for (const double d : drop_rates) {
      fault::FaultPlan plan;
      plan.backbone.drop_rate = d;
      add("backbone_drop", d, s, plan);
    }
    for (const double duty : intf_duties) {
      fault::FaultPlan plan;
      plan.interference.duty = duty;
      add("interference_duty", duty, s, plan);
    }
    for (const double ppm : skews_ppm) {
      fault::FaultPlan plan;
      plan.clock.max_skew_ppm = ppm;
      add("clock_skew_ppm", ppm, s, plan);
    }
    for (const double x : combined) {
      fault::FaultPlan plan;
      plan.backbone.drop_rate = 0.05 * x;
      plan.interference.duty = 0.1 * x;
      plan.signature.false_negative_rate = 0.02 * x;
      plan.clock.max_skew_ppm = 25.0 * x;
      add("combined", x, s, plan);
    }
  }

  bench::BenchJson json("resilience");
  const auto report = bench::run_sweep(points, "resilience", &json);

  bench::print_header(
      "chain resilience: degradation curves under injected faults (Fig 7 "
      "net)");
  std::printf("%-22s %-10s %8s %9s %7s %7s %6s %6s %6s\n", "axis=severity",
              "scheme", "Mbps", "fairness", "missed", "selfst", "rec50",
              "rec95", "recmax");
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!report.ok(i)) continue;
    const auto& r = report.result(i);
    const auto& m = meta[i];
    const Pctls rec = recovery_pctls(r.domino_recovery_latency_slots);
    char axis_sev[32];
    std::snprintf(axis_sev, sizeof(axis_sev), "%s=%.3g", m.axis.c_str(),
                  m.severity);
    std::printf("%-22s %-10s %8.2f %9.3f %7llu %7llu %6.1f %6.1f %6.1f\n",
                axis_sev, api::to_string(m.scheme), r.throughput_mbps(),
                r.jain_fairness,
                static_cast<unsigned long long>(r.domino_missed_rows),
                static_cast<unsigned long long>(r.domino_self_starts),
                rec.p50, rec.p95, rec.max);
    json.add_row()
        .str("axis", m.axis)
        .num("severity", m.severity)
        .str("scheme", api::to_string(m.scheme))
        .num("throughput_mbps", r.throughput_mbps())
        .num("jain_fairness", r.jain_fairness)
        .num("mean_delay_us", r.mean_delay_us)
        .num("missed_rows", static_cast<double>(r.domino_missed_rows))
        .num("rows_executed", static_cast<double>(r.domino_rows_executed))
        .num("self_starts", static_cast<double>(r.domino_self_starts))
        .num("retry_drops", static_cast<double>(r.domino_retry_drops))
        .num("anchor_rejections",
             static_cast<double>(r.domino_anchor_rejections))
        .num("forced_trigger_losses",
             static_cast<double>(r.domino_forced_trigger_losses))
        .num("controller_outage_skips",
             static_cast<double>(r.domino_controller_outage_skips))
        .num("backbone_drops", static_cast<double>(r.fault_backbone_drops))
        .num("interference_bursts",
             static_cast<double>(r.fault_interference_bursts))
        .num("recovery_samples",
             static_cast<double>(r.domino_recovery_latency_slots.size()))
        .num("recovery_slots_p50", rec.p50)
        .num("recovery_slots_p95", rec.p95)
        .num("recovery_slots_max", rec.max)
        .num("recovery_slots_mean", r.mean_recovery_latency_slots());
  }
  std::printf(
      "\nexpected: DOMINO degrades gracefully (bounded missed rows, small "
      "recovery latencies) where strict schedules collapse; DCF is "
      "insensitive to backbone faults but loses air to interference\n");
  return 0;
}
