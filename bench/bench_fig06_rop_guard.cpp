// Figure 6 reproduction: correct-decoding ratio of the weaker client vs
// RSS difference (15..40 dB) for 0..4 guard subcarriers. The paper's
// takeaway: 3 guards tolerate up to ~38 dB.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "rop/rop_phy.h"

using namespace dmn;

int main() {
  Rng rng(7);
  const int trials = static_cast<int>(bench::bench_seconds(40));

  bench::print_header(
      "Figure 6: correct decoding ratio (%) of the weak client vs RSS "
      "difference, by guard subcarriers");
  std::printf("%8s", "diff_dB");
  for (int g = 0; g <= 4; ++g) std::printf("  g=%d ", g);
  std::printf("\n");

  for (double diff = 15.0; diff <= 40.0; diff += 2.5) {
    std::printf("%8.1f", diff);
    for (int g = 0; g <= 4; ++g) {
      rop::RopParams params;
      params.guard_per_subchannel = static_cast<std::size_t>(g);
      rop::RopPhy phy(params);
      rop::RopImpairments imp;
      int ok = 0;
      for (int t = 0; t < trials; ++t) {
        rop::ClientSignal strong, weak;
        strong.subchannel = 2;
        strong.queue_report = 63;
        strong.rss_dbm = -25.0;
        strong.freq_offset_subcarriers = rng.normal(0.0, 0.01);
        strong.timing_offset_samples =
            static_cast<std::size_t>(rng.uniform_int(0, 8));
        weak = strong;
        weak.subchannel = 3;
        weak.queue_report = 21;  // zero bits expose leakage
        weak.rss_dbm = strong.rss_dbm - diff;
        weak.freq_offset_subcarriers = rng.normal(0.0, 0.01);
        const std::vector<rop::ClientSignal> cs = {strong, weak};
        const auto rx = phy.synthesize(cs, imp, rng);
        const auto dec = phy.decode(rx, imp);
        if (dec.values[3].has_value() && *dec.values[3] == 21) ++ok;
      }
      std::printf(" %5.0f", 100.0 * ok / trials);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: 3 guard subcarriers tolerate RSS differences up to ~38 dB\n");
  return 0;
}
