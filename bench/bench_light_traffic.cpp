// §5 "Light traffic load" check: T(6,5) at 6 KBps per flow (below typical
// web browsing). The paper reports DOMINO's delay only 1.14x DCF's — the
// control overhead does not blow up latency under light load.

#include <cstdio>

#include "bench_util.h"

using namespace dmn;

int main() {
  // T(6,5) needs 36 of 40 trace nodes associated; use the denser trace
  // variant (see DESIGN.md fidelity notes).
  Rng rng(42);
  topo::TraceParams dense;
  dense.building_w = 40.0;
  dense.building_gap = 15.0;
  dense.wall_db = 2.0;
  const auto trace = topo::synthesize_trace(dense, rng);
  const auto topo = topo::Topology::build_tmn(trace.rss, 6, 5, {}, rng);

  const TimeNs dur = sec(bench::bench_seconds(10));
  const double rate = 6e3 * 8;  // 6 KBps

  bench::print_header("Light traffic (§5): T(6,5) at 6 KBps per flow");
  std::printf("%-8s %12s %12s %14s\n", "scheme", "Mbps", "delay ms",
              "delivery %");

  double dcf_delay = 0.0, domino_delay = 0.0;
  for (api::Scheme s : {api::Scheme::kDcf, api::Scheme::kDomino}) {
    api::ExperimentConfig cfg;
    cfg.scheme = s;
    cfg.duration = dur;
    cfg.seed = 55;
    cfg.traffic.downlink_bps = rate;
    cfg.traffic.uplink_bps = rate;
    const auto r = api::run_experiment(topo, cfg);
    std::uint64_t delivered = 0;
    std::uint64_t offered_pkts = 0;
    for (const auto& l : r.links) delivered += l.delivered;
    offered_pkts = static_cast<std::uint64_t>(
        to_sec(cfg.duration) * rate / (512 * 8) * r.links.size());
    std::printf("%-8s %12.3f %12.2f  %12.1f\n", api::to_string(s),
                r.throughput_mbps(), r.mean_delay_us / 1000.0,
                offered_pkts > 0
                    ? 100.0 * static_cast<double>(delivered) / offered_pkts
                    : 0.0);
    if (s == api::Scheme::kDcf) dcf_delay = r.mean_delay_us;
    if (s == api::Scheme::kDomino) domino_delay = r.mean_delay_us;
  }
  if (dcf_delay > 0) {
    std::printf("\nDOMINO/DCF delay ratio: %.2fx (paper: 1.14x)\n",
                domino_delay / dcf_delay);
  }
  return 0;
}
