file(REMOVE_RECURSE
  "CMakeFiles/bench_signature_length.dir/bench_signature_length.cpp.o"
  "CMakeFiles/bench_signature_length.dir/bench_signature_length.cpp.o.d"
  "bench_signature_length"
  "bench_signature_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_signature_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
