# Empty dependencies file for bench_signature_length.
# This may be replaced when dependencies are built.
