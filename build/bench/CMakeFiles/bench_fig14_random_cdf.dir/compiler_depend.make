# Empty compiler generated dependencies file for bench_fig14_random_cdf.
# This may be replaced when dependencies are built.
