file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_exposed.dir/bench_table3_exposed.cpp.o"
  "CMakeFiles/bench_table3_exposed.dir/bench_table3_exposed.cpp.o.d"
  "bench_table3_exposed"
  "bench_table3_exposed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_exposed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
