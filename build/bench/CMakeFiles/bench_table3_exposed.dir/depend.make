# Empty dependencies file for bench_table3_exposed.
# This may be replaced when dependencies are built.
