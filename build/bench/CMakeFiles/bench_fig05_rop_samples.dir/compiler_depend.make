# Empty compiler generated dependencies file for bench_fig05_rop_samples.
# This may be replaced when dependencies are built.
