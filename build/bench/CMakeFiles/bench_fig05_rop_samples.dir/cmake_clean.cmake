file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_rop_samples.dir/bench_fig05_rop_samples.cpp.o"
  "CMakeFiles/bench_fig05_rop_samples.dir/bench_fig05_rop_samples.cpp.o.d"
  "bench_fig05_rop_samples"
  "bench_fig05_rop_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_rop_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
