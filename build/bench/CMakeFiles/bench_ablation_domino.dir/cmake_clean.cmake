file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_domino.dir/bench_ablation_domino.cpp.o"
  "CMakeFiles/bench_ablation_domino.dir/bench_ablation_domino.cpp.o.d"
  "bench_ablation_domino"
  "bench_ablation_domino.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_domino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
