file(REMOVE_RECURSE
  "CMakeFiles/bench_polling_frequency.dir/bench_polling_frequency.cpp.o"
  "CMakeFiles/bench_polling_frequency.dir/bench_polling_frequency.cpp.o.d"
  "bench_polling_frequency"
  "bench_polling_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_polling_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
