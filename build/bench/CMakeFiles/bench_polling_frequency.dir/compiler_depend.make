# Empty compiler generated dependencies file for bench_polling_frequency.
# This may be replaced when dependencies are built.
