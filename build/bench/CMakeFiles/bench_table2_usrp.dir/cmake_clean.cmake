file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_usrp.dir/bench_table2_usrp.cpp.o"
  "CMakeFiles/bench_table2_usrp.dir/bench_table2_usrp.cpp.o.d"
  "bench_table2_usrp"
  "bench_table2_usrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_usrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
