# Empty compiler generated dependencies file for bench_fig12_tcp.
# This may be replaced when dependencies are built.
