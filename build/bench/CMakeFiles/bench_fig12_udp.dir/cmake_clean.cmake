file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_udp.dir/bench_fig12_udp.cpp.o"
  "CMakeFiles/bench_fig12_udp.dir/bench_fig12_udp.cpp.o.d"
  "bench_fig12_udp"
  "bench_fig12_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
