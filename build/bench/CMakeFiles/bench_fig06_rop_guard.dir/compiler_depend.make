# Empty compiler generated dependencies file for bench_fig06_rop_guard.
# This may be replaced when dependencies are built.
