file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_rop_guard.dir/bench_fig06_rop_guard.cpp.o"
  "CMakeFiles/bench_fig06_rop_guard.dir/bench_fig06_rop_guard.cpp.o.d"
  "bench_fig06_rop_guard"
  "bench_fig06_rop_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_rop_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
