# Empty dependencies file for bench_light_traffic.
# This may be replaced when dependencies are built.
