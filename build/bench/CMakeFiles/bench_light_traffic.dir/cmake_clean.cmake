file(REMOVE_RECURSE
  "CMakeFiles/bench_light_traffic.dir/bench_light_traffic.cpp.o"
  "CMakeFiles/bench_light_traffic.dir/bench_light_traffic.cpp.o.d"
  "bench_light_traffic"
  "bench_light_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_light_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
