# Empty dependencies file for bench_fig11_misalignment.
# This may be replaced when dependencies are built.
