file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_misalignment.dir/bench_fig11_misalignment.cpp.o"
  "CMakeFiles/bench_fig11_misalignment.dir/bench_fig11_misalignment.cpp.o.d"
  "bench_fig11_misalignment"
  "bench_fig11_misalignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_misalignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
