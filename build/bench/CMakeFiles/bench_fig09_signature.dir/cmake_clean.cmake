file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_signature.dir/bench_fig09_signature.cpp.o"
  "CMakeFiles/bench_fig09_signature.dir/bench_fig09_signature.cpp.o.d"
  "bench_fig09_signature"
  "bench_fig09_signature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
