# Empty compiler generated dependencies file for bench_fig09_signature.
# This may be replaced when dependencies are built.
