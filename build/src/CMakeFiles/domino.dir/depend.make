# Empty dependencies file for domino.
# This may be replaced when dependencies are built.
