file(REMOVE_RECURSE
  "libdomino.a"
)
