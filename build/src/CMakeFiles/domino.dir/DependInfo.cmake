
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/experiment.cpp" "src/CMakeFiles/domino.dir/api/experiment.cpp.o" "gcc" "src/CMakeFiles/domino.dir/api/experiment.cpp.o.d"
  "/root/repo/src/api/metrics.cpp" "src/CMakeFiles/domino.dir/api/metrics.cpp.o" "gcc" "src/CMakeFiles/domino.dir/api/metrics.cpp.o.d"
  "/root/repo/src/api/timeline.cpp" "src/CMakeFiles/domino.dir/api/timeline.cpp.o" "gcc" "src/CMakeFiles/domino.dir/api/timeline.cpp.o.d"
  "/root/repo/src/centaur/centaur.cpp" "src/CMakeFiles/domino.dir/centaur/centaur.cpp.o" "gcc" "src/CMakeFiles/domino.dir/centaur/centaur.cpp.o.d"
  "/root/repo/src/domino/controller.cpp" "src/CMakeFiles/domino.dir/domino/controller.cpp.o" "gcc" "src/CMakeFiles/domino.dir/domino/controller.cpp.o.d"
  "/root/repo/src/domino/converter.cpp" "src/CMakeFiles/domino.dir/domino/converter.cpp.o" "gcc" "src/CMakeFiles/domino.dir/domino/converter.cpp.o.d"
  "/root/repo/src/domino/domino_mac.cpp" "src/CMakeFiles/domino.dir/domino/domino_mac.cpp.o" "gcc" "src/CMakeFiles/domino.dir/domino/domino_mac.cpp.o.d"
  "/root/repo/src/domino/rand_scheduler.cpp" "src/CMakeFiles/domino.dir/domino/rand_scheduler.cpp.o" "gcc" "src/CMakeFiles/domino.dir/domino/rand_scheduler.cpp.o.d"
  "/root/repo/src/domino/relative_schedule.cpp" "src/CMakeFiles/domino.dir/domino/relative_schedule.cpp.o" "gcc" "src/CMakeFiles/domino.dir/domino/relative_schedule.cpp.o.d"
  "/root/repo/src/domino/signature_plan.cpp" "src/CMakeFiles/domino.dir/domino/signature_plan.cpp.o" "gcc" "src/CMakeFiles/domino.dir/domino/signature_plan.cpp.o.d"
  "/root/repo/src/dsp/channel.cpp" "src/CMakeFiles/domino.dir/dsp/channel.cpp.o" "gcc" "src/CMakeFiles/domino.dir/dsp/channel.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/domino.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/domino.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/gold/correlator.cpp" "src/CMakeFiles/domino.dir/gold/correlator.cpp.o" "gcc" "src/CMakeFiles/domino.dir/gold/correlator.cpp.o.d"
  "/root/repo/src/gold/gold_code.cpp" "src/CMakeFiles/domino.dir/gold/gold_code.cpp.o" "gcc" "src/CMakeFiles/domino.dir/gold/gold_code.cpp.o.d"
  "/root/repo/src/gold/lfsr.cpp" "src/CMakeFiles/domino.dir/gold/lfsr.cpp.o" "gcc" "src/CMakeFiles/domino.dir/gold/lfsr.cpp.o.d"
  "/root/repo/src/mac/dcf.cpp" "src/CMakeFiles/domino.dir/mac/dcf.cpp.o" "gcc" "src/CMakeFiles/domino.dir/mac/dcf.cpp.o.d"
  "/root/repo/src/mac/mac_common.cpp" "src/CMakeFiles/domino.dir/mac/mac_common.cpp.o" "gcc" "src/CMakeFiles/domino.dir/mac/mac_common.cpp.o.d"
  "/root/repo/src/omni/omniscient.cpp" "src/CMakeFiles/domino.dir/omni/omniscient.cpp.o" "gcc" "src/CMakeFiles/domino.dir/omni/omniscient.cpp.o.d"
  "/root/repo/src/phy/frame.cpp" "src/CMakeFiles/domino.dir/phy/frame.cpp.o" "gcc" "src/CMakeFiles/domino.dir/phy/frame.cpp.o.d"
  "/root/repo/src/phy/medium.cpp" "src/CMakeFiles/domino.dir/phy/medium.cpp.o" "gcc" "src/CMakeFiles/domino.dir/phy/medium.cpp.o.d"
  "/root/repo/src/phy/signature_model.cpp" "src/CMakeFiles/domino.dir/phy/signature_model.cpp.o" "gcc" "src/CMakeFiles/domino.dir/phy/signature_model.cpp.o.d"
  "/root/repo/src/phy/transceiver.cpp" "src/CMakeFiles/domino.dir/phy/transceiver.cpp.o" "gcc" "src/CMakeFiles/domino.dir/phy/transceiver.cpp.o.d"
  "/root/repo/src/rop/rop_phy.cpp" "src/CMakeFiles/domino.dir/rop/rop_phy.cpp.o" "gcc" "src/CMakeFiles/domino.dir/rop/rop_phy.cpp.o.d"
  "/root/repo/src/rop/rop_protocol.cpp" "src/CMakeFiles/domino.dir/rop/rop_protocol.cpp.o" "gcc" "src/CMakeFiles/domino.dir/rop/rop_protocol.cpp.o.d"
  "/root/repo/src/rop/subchannel_map.cpp" "src/CMakeFiles/domino.dir/rop/subchannel_map.cpp.o" "gcc" "src/CMakeFiles/domino.dir/rop/subchannel_map.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/domino.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/domino.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/topo/conflict_graph.cpp" "src/CMakeFiles/domino.dir/topo/conflict_graph.cpp.o" "gcc" "src/CMakeFiles/domino.dir/topo/conflict_graph.cpp.o.d"
  "/root/repo/src/topo/node.cpp" "src/CMakeFiles/domino.dir/topo/node.cpp.o" "gcc" "src/CMakeFiles/domino.dir/topo/node.cpp.o.d"
  "/root/repo/src/topo/propagation.cpp" "src/CMakeFiles/domino.dir/topo/propagation.cpp.o" "gcc" "src/CMakeFiles/domino.dir/topo/propagation.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/domino.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/domino.dir/topo/topology.cpp.o.d"
  "/root/repo/src/topo/trace_synth.cpp" "src/CMakeFiles/domino.dir/topo/trace_synth.cpp.o" "gcc" "src/CMakeFiles/domino.dir/topo/trace_synth.cpp.o.d"
  "/root/repo/src/traffic/flow_stats.cpp" "src/CMakeFiles/domino.dir/traffic/flow_stats.cpp.o" "gcc" "src/CMakeFiles/domino.dir/traffic/flow_stats.cpp.o.d"
  "/root/repo/src/traffic/packet.cpp" "src/CMakeFiles/domino.dir/traffic/packet.cpp.o" "gcc" "src/CMakeFiles/domino.dir/traffic/packet.cpp.o.d"
  "/root/repo/src/traffic/queue.cpp" "src/CMakeFiles/domino.dir/traffic/queue.cpp.o" "gcc" "src/CMakeFiles/domino.dir/traffic/queue.cpp.o.d"
  "/root/repo/src/traffic/tcp_reno.cpp" "src/CMakeFiles/domino.dir/traffic/tcp_reno.cpp.o" "gcc" "src/CMakeFiles/domino.dir/traffic/tcp_reno.cpp.o.d"
  "/root/repo/src/traffic/udp_source.cpp" "src/CMakeFiles/domino.dir/traffic/udp_source.cpp.o" "gcc" "src/CMakeFiles/domino.dir/traffic/udp_source.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/domino.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/domino.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/domino.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/domino.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/CMakeFiles/domino.dir/util/units.cpp.o" "gcc" "src/CMakeFiles/domino.dir/util/units.cpp.o.d"
  "/root/repo/src/wired/backbone.cpp" "src/CMakeFiles/domino.dir/wired/backbone.cpp.o" "gcc" "src/CMakeFiles/domino.dir/wired/backbone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
