# Empty compiler generated dependencies file for random_network.
# This may be replaced when dependencies are built.
