file(REMOVE_RECURSE
  "CMakeFiles/random_network.dir/random_network.cpp.o"
  "CMakeFiles/random_network.dir/random_network.cpp.o.d"
  "random_network"
  "random_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
