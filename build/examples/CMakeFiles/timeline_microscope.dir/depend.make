# Empty dependencies file for timeline_microscope.
# This may be replaced when dependencies are built.
