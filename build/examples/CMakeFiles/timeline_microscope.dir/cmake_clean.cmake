file(REMOVE_RECURSE
  "CMakeFiles/timeline_microscope.dir/timeline_microscope.cpp.o"
  "CMakeFiles/timeline_microscope.dir/timeline_microscope.cpp.o.d"
  "timeline_microscope"
  "timeline_microscope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_microscope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
