file(REMOVE_RECURSE
  "CMakeFiles/rop_demo.dir/rop_demo.cpp.o"
  "CMakeFiles/rop_demo.dir/rop_demo.cpp.o.d"
  "rop_demo"
  "rop_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
