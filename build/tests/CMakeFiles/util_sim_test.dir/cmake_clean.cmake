file(REMOVE_RECURSE
  "CMakeFiles/util_sim_test.dir/util_sim_test.cpp.o"
  "CMakeFiles/util_sim_test.dir/util_sim_test.cpp.o.d"
  "util_sim_test"
  "util_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
