# Empty dependencies file for rop_test.
# This may be replaced when dependencies are built.
