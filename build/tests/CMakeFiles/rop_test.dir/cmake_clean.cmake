file(REMOVE_RECURSE
  "CMakeFiles/rop_test.dir/rop_test.cpp.o"
  "CMakeFiles/rop_test.dir/rop_test.cpp.o.d"
  "rop_test"
  "rop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
