file(REMOVE_RECURSE
  "CMakeFiles/dsp_gold_test.dir/dsp_gold_test.cpp.o"
  "CMakeFiles/dsp_gold_test.dir/dsp_gold_test.cpp.o.d"
  "dsp_gold_test"
  "dsp_gold_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsp_gold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
