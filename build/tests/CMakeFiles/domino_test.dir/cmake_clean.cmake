file(REMOVE_RECURSE
  "CMakeFiles/domino_test.dir/domino_test.cpp.o"
  "CMakeFiles/domino_test.dir/domino_test.cpp.o.d"
  "domino_test"
  "domino_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domino_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
