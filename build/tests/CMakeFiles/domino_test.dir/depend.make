# Empty dependencies file for domino_test.
# This may be replaced when dependencies are built.
