file(REMOVE_RECURSE
  "CMakeFiles/coexistence_test.dir/coexistence_test.cpp.o"
  "CMakeFiles/coexistence_test.dir/coexistence_test.cpp.o.d"
  "coexistence_test"
  "coexistence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coexistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
