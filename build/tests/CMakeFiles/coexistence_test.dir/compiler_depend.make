# Empty compiler generated dependencies file for coexistence_test.
# This may be replaced when dependencies are built.
