# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(util_sim_test "/root/repo/build/tests/util_sim_test")
set_tests_properties(util_sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dsp_gold_test "/root/repo/build/tests/dsp_gold_test")
set_tests_properties(dsp_gold_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;9;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rop_test "/root/repo/build/tests/rop_test")
set_tests_properties(rop_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;10;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(topo_test "/root/repo/build/tests/topo_test")
set_tests_properties(topo_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;11;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(phy_test "/root/repo/build/tests/phy_test")
set_tests_properties(phy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;12;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(traffic_test "/root/repo/build/tests/traffic_test")
set_tests_properties(traffic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;13;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dcf_test "/root/repo/build/tests/dcf_test")
set_tests_properties(dcf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;14;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scheduler_test "/root/repo/build/tests/scheduler_test")
set_tests_properties(scheduler_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(domino_test "/root/repo/build/tests/domino_test")
set_tests_properties(domino_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;16;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(api_test "/root/repo/build/tests/api_test")
set_tests_properties(api_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;17;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;18;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(coexistence_test "/root/repo/build/tests/coexistence_test")
set_tests_properties(coexistence_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;19;domino_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(controller_test "/root/repo/build/tests/controller_test")
set_tests_properties(controller_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;20;domino_test;/root/repo/tests/CMakeLists.txt;0;")
