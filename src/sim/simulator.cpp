#include "sim/simulator.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace dmn::sim {

namespace {

// Which queue the current thread is executing events for. Keyed by the
// owning Simulator so nested/neighbouring simulators (tests build several)
// never observe each other's scope.
struct ActiveRef {
  const Simulator* sim = nullptr;
  EventQueue* queue = nullptr;
};
thread_local ActiveRef g_active;

// RAII run-phase scope: marks `queue` as the executing queue on this thread
// for the duration of a synchronization window.
class TlsScope {
 public:
  TlsScope(const Simulator* sim, EventQueue* queue) : prev_(g_active) {
    g_active = ActiveRef{sim, queue};
  }
  ~TlsScope() { g_active = prev_; }

 private:
  ActiveRef prev_;
};

}  // namespace

// Worker pool shared state. Workers wait for a generation bump, run their
// assigned queues for the published window, and report completion; the
// mutex hand-off gives the coordinator a happens-before edge over every
// queue mutation the workers made.
struct Simulator::Pool {
  std::mutex m;
  std::condition_variable start_cv;
  std::condition_variable done_cv;
  std::uint64_t generation = 0;
  TimeNs last = 0;
  std::uint64_t cap = 0;
  std::size_t remaining = 0;
  bool shutdown = false;
  std::vector<std::thread> workers;
};

Simulator::Simulator() {
  queues_.push_back(std::make_unique<EventQueue>(0));
}

Simulator::~Simulator() { shutdown_pool(); }

Simulator::Scope::Scope(Simulator& sim, std::uint32_t queue)
    : sim_(sim), prev_(sim.build_queue_) {
  if (queue >= sim_.queues_.size()) {
    throw std::out_of_range("sim: Scope queue " + std::to_string(queue) +
                            " out of range");
  }
  sim_.build_queue_ = queue;
}

Simulator::Scope::~Scope() { sim_.build_queue_ = prev_; }

EventQueue& Simulator::active() const {
  if (g_active.sim == this && g_active.queue != nullptr) {
    return *g_active.queue;
  }
  return *queues_[build_queue_];
}

void Simulator::configure_partitions(std::vector<std::uint32_t> assignment,
                                     std::uint32_t count, TimeNs lookahead,
                                     unsigned threads) {
  if (count < 2) {
    throw std::invalid_argument(
        "sim: configure_partitions requires >= 2 partitions; keep the "
        "single-queue kernel otherwise");
  }
  if (lookahead <= 0) {
    throw std::invalid_argument(
        "sim: partitioned kernel requires a positive lookahead");
  }
  for (std::uint32_t a : assignment) {
    if (a >= count) {
      throw std::invalid_argument("sim: partition assignment out of range");
    }
  }
  EventQueue& q0 = *queues_[0];
  if (!q0.empty() || q0.executed() != 0 || q0.now() != 0) {
    throw std::logic_error(
        "sim: configure_partitions must run before any scheduling");
  }
  node_queue_ = std::move(assignment);
  partitions_ = count;
  lookahead_ = lookahead;
  threads_ = std::max(1u, threads);
  queues_.clear();
  for (std::uint32_t q = 0; q <= count; ++q) {  // + the wired queue
    queues_.push_back(std::make_unique<EventQueue>(q));
  }
}

EventHandle Simulator::schedule_at(TimeNs at, EventFn fn) {
  auto state = std::make_shared<EventHandle::State>();
  active().push(at, std::move(fn), state);
  return EventHandle(std::move(state));
}

void Simulator::post_at(TimeNs at, EventFn fn) {
  active().push(at, std::move(fn), nullptr);
}

void Simulator::post_to_queue(std::uint32_t dst, TimeNs at, EventFn fn) {
  if (partitions_ == 0) {
    post_at(at, std::move(fn));
    return;
  }
  if (dst >= queues_.size()) {
    throw std::out_of_range("sim: post_to_queue destination " +
                            std::to_string(dst) + " out of range");
  }
  EventQueue& src = active();
  EventQueue& dq = *queues_[dst];
  if (&src == &dq) {
    src.push(at, std::move(fn), nullptr);
    return;
  }
  // Conservative-lookahead contract: a cross-queue event must land beyond
  // the current synchronization window, otherwise the destination may have
  // already run past it in parallel.
  if (at < src.now() + lookahead_) {
    throw std::logic_error(
        "sim: cross-partition event below the lookahead horizon: at=" +
        std::to_string(at) + " ns < now=" + std::to_string(src.now()) +
        " ns + lookahead=" + std::to_string(lookahead_) + " ns");
  }
  dq.inbox_put(EventQueue::CrossMsg{at, src.index(), src.next_cross_seq(),
                                    std::move(fn)});
}

void Simulator::cancel(EventHandle& h) {
  if (h.state_) h.state_->cancelled = true;
}

void Simulator::stop() {
  active().request_stop();
  stop_all_.store(true, std::memory_order_relaxed);
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->executed();
  return total;
}

void Simulator::run_until(TimeNs until) {
  if (partitions_ == 0) {
    run_until_legacy(until);
  } else {
    run_until_partitioned(until);
  }
}

void Simulator::run() {
  if (partitions_ != 0) {
    throw std::logic_error("sim: partitioned run requires a finite horizon");
  }
  run_until(kTimeNever);
}

void Simulator::run_until_legacy(TimeNs until) {
  EventQueue& q = *queues_[0];
  q.clear_stop();
  stop_all_.store(false, std::memory_order_relaxed);
  interrupted_ = false;
  while (!q.empty() && !q.stop_requested()) {
    // Watchdog checks between events: a budget overrun or an externally-set
    // interrupt flag stops the loop at a safe event boundary, leaving now()
    // and events_executed() as the last-known progress.
    if (event_budget_ != 0 && q.executed() >= event_budget_) {
      interrupted_ = true;
      break;
    }
    if (interrupt_ != nullptr &&
        interrupt_->load(std::memory_order_relaxed)) {
      interrupted_ = true;
      break;
    }
    if (q.next_time() > until) break;
    q.run_one();
  }
  // Fast-forward the clock to the horizon (but not to the run()'s
  // infinite sentinel) so callers observe "simulated until `until`".
  if (q.now() < until && q.empty() && until != kTimeNever) {
    q.set_now(until);
  }
}

void Simulator::run_until_partitioned(TimeNs until) {
  if (until == kTimeNever) {
    throw std::logic_error("sim: partitioned run requires a finite horizon");
  }
  interrupted_ = false;
  stop_all_.store(false, std::memory_order_relaxed);
  for (auto& q : queues_) q->clear_stop();
  const std::uint32_t wired = partitions_;
  for (;;) {
    // Barrier start: fold the previous window's cross-partition sends into
    // their destination heaps in deterministic (time, src, seq) order.
    for (auto& q : queues_) q->drain_inbox();
    if (event_budget_ != 0 && events_executed() >= event_budget_) {
      interrupted_ = true;
      break;
    }
    if (interrupt_ != nullptr &&
        interrupt_->load(std::memory_order_relaxed)) {
      interrupted_ = true;
      break;
    }
    if (stop_all_.load(std::memory_order_relaxed)) break;
    TimeNs min_next = kTimeNever;
    for (auto& q : queues_) min_next = std::min(min_next, q->next_time());
    if (min_next == kTimeNever || min_next > until) break;
    // Conservative window: every queue may run events up to `last`
    // inclusive. Any such event fires at t >= min_next, so its
    // cross-partition sends land at t + lookahead > last — strictly beyond
    // this window — and in-window executions are independent.
    const TimeNs horizon = (min_next > kTimeNever - lookahead_)
                               ? kTimeNever
                               : min_next + lookahead_;
    const TimeNs last = std::min(until, horizon - 1);
    const std::uint64_t total = events_executed();
    const std::uint64_t cap =
        event_budget_ == 0
            ? std::numeric_limits<std::uint64_t>::max()
            : (event_budget_ > total ? event_budget_ - total : 0);
    errors_.assign(queues_.size(), nullptr);
    {
      // Wired queue first, on the coordinator, while every node queue is
      // parked: controller logic may peek AP MAC state race-free. Its view
      // is at most `lookahead` stale — negligible against the backbone
      // latency its outputs already ride.
      TlsScope scope(this, queues_[wired].get());
      try {
        queues_[wired]->run_window(last, cap, interrupt_);
      } catch (...) {
        errors_[wired] = std::current_exception();
      }
    }
    if (errors_[wired] == nullptr) run_node_windows(last, cap);
    // Advance every clock to the window end so the next window's wired
    // peeks and inbox drains see a consistent "time has passed" view.
    for (auto& q : queues_) {
      if (q->now() < last) q->set_now(last);
    }
    for (auto& e : errors_) {
      if (e) std::rethrow_exception(e);
    }
  }
  if (!interrupted_ && !stop_all_.load(std::memory_order_relaxed)) {
    bool all_idle = true;
    for (auto& q : queues_) {
      if (!q->empty() || q->inbox_pending()) all_idle = false;
    }
    if (all_idle) {
      for (auto& q : queues_) {
        if (q->now() < until) q->set_now(until);
      }
    }
  }
}

void Simulator::run_node_windows(TimeNs last, std::uint64_t cap) {
  const unsigned workers = std::min<unsigned>(threads_, partitions_);
  if (workers <= 1) {
    // Single worker: the coordinator runs partitions in index order. This
    // is also the byte-reference order every multi-threaded run must match.
    for (std::uint32_t q = 0; q < partitions_; ++q) {
      TlsScope scope(this, queues_[q].get());
      try {
        queues_[q]->run_window(last, cap, interrupt_);
      } catch (...) {
        errors_[q] = std::current_exception();
      }
    }
    return;
  }
  ensure_pool();
  {
    const std::lock_guard<std::mutex> lock(pool_->m);
    pool_->last = last;
    pool_->cap = cap;
    pool_->remaining = pool_->workers.size();
    ++pool_->generation;
  }
  pool_->start_cv.notify_all();
  std::unique_lock<std::mutex> lock(pool_->m);
  pool_->done_cv.wait(lock, [this] { return pool_->remaining == 0; });
}

void Simulator::ensure_pool() {
  if (pool_) return;
  pool_ = std::make_unique<Pool>();
  const unsigned workers = std::min<unsigned>(threads_, partitions_);
  pool_->workers.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool_->workers.emplace_back(
        [this, w, workers] { worker_loop(w, workers); });
  }
}

void Simulator::worker_loop(unsigned worker, unsigned stride) {
  std::uint64_t seen = 0;
  for (;;) {
    TimeNs last;
    std::uint64_t cap;
    {
      std::unique_lock<std::mutex> lock(pool_->m);
      pool_->start_cv.wait(lock, [this, seen] {
        return pool_->shutdown || pool_->generation != seen;
      });
      if (pool_->shutdown) return;
      seen = pool_->generation;
      last = pool_->last;
      cap = pool_->cap;
    }
    // Static round-robin queue ownership: worker w always runs queues
    // w, w+stride, ... — each queue is touched by exactly one thread per
    // window, and errors_ slots are disjoint.
    for (std::uint32_t q = worker; q < partitions_;
         q += static_cast<std::uint32_t>(stride)) {
      TlsScope scope(this, queues_[q].get());
      try {
        queues_[q]->run_window(last, cap, interrupt_);
      } catch (...) {
        errors_[q] = std::current_exception();
      }
    }
    {
      const std::lock_guard<std::mutex> lock(pool_->m);
      if (--pool_->remaining == 0) pool_->done_cv.notify_all();
    }
  }
}

void Simulator::shutdown_pool() {
  if (!pool_) return;
  {
    const std::lock_guard<std::mutex> lock(pool_->m);
    pool_->shutdown = true;
  }
  pool_->start_cv.notify_all();
  for (std::thread& t : pool_->workers) t.join();
  pool_.reset();
}

}  // namespace dmn::sim
