#include "sim/simulator.h"

#include <cassert>
#include <limits>
#include <utility>

namespace dmn::sim {

EventHandle Simulator::schedule_at(TimeNs at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule in the past");
  auto state = std::make_shared<EventHandle::State>();
  queue_.push(Entry{at, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

void Simulator::cancel(EventHandle& h) {
  if (h.state_) h.state_->cancelled = true;
}

void Simulator::run_until(TimeNs until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const Entry& top = queue_.top();
    if (top.at > until) break;
    // Move the entry out before popping; priority_queue::top is const.
    Entry entry{top.at, top.seq, std::move(const_cast<Entry&>(top).fn),
                std::move(const_cast<Entry&>(top).state)};
    queue_.pop();
    if (entry.state->cancelled) continue;
    now_ = entry.at;
    entry.state->done = true;
    ++executed_;
    entry.fn();
  }
  // Fast-forward the clock to the horizon (but not to the run()'s
  // infinite sentinel) so callers observe "simulated until `until`".
  if (now_ < until && queue_.empty() &&
      until != std::numeric_limits<TimeNs>::max()) {
    now_ = until;
  }
}

void Simulator::run() {
  run_until(std::numeric_limits<TimeNs>::max());
}

}  // namespace dmn::sim
