#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace dmn::sim {

namespace {

// Which queue the current thread is executing events for. Keyed by the
// owning Simulator so nested/neighbouring simulators (tests build several)
// never observe each other's scope.
struct ActiveRef {
  const Simulator* sim = nullptr;
  EventQueue* queue = nullptr;
};
thread_local ActiveRef g_active;

// RAII run-phase scope: marks `queue` as the executing queue on this thread
// for the duration of a synchronization window.
class TlsScope {
 public:
  TlsScope(const Simulator* sim, EventQueue* queue) : prev_(g_active) {
    g_active = ActiveRef{sim, queue};
  }
  ~TlsScope() { g_active = prev_; }

 private:
  ActiveRef prev_;
};

// One busy-wait beat that is polite to hyper-threads and, on unknown ISAs,
// to the scheduler.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

std::uint32_t KernelStats::activated_p50() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : activation_hist) total += c;
  if (total == 0) return 0;
  const std::uint64_t target = (total + 1) / 2;
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < activation_hist.size(); ++k) {
    cum += activation_hist[k];
    if (cum >= target) return static_cast<std::uint32_t>(k);
  }
  return 0;
}

std::uint32_t KernelStats::activated_max() const {
  for (std::size_t k = activation_hist.size(); k-- > 0;) {
    if (activation_hist[k] != 0) return static_cast<std::uint32_t>(k);
  }
  return 0;
}

// Worker pool shared state. The coordinator publishes a window by writing
// the active list / bounds / cap, resetting done_count, storing the work
// word, and finally bumping `generation`; workers wait for the bump with an
// adaptive bounded spin before falling back to the condition variable.
//
// The work word packs (generation | active count | next index) into ONE
// atomic so the bound check and the claim are a single atomic decision:
//   work = (gen & kGenMask) << kGenShift | count << kCntShift | idx.
// A claim CASes the whole word it validated, so a straggler still holding a
// stale generation can never claim (or corrupt) a later window's index: the
// count it compares against comes from the same load its CAS commits, never
// from a separately-published (possibly newer) field. The generation tag is
// truncated to 32 bits in the word — a straggler would have to sleep
// through exactly k*2^32 windows while holding one stale load for the tag
// to alias, which cannot happen while its claim is required for the
// previous window's done-barrier to release the coordinator.
struct Simulator::Pool {
  static constexpr unsigned kIdxBits = 16;
  static constexpr unsigned kCntShift = 16;
  static constexpr unsigned kGenShift = 32;
  static constexpr std::uint64_t kIdxMask = (1u << kIdxBits) - 1;
  static constexpr std::uint64_t kGenMask = 0xffffffffull;
  static constexpr std::uint32_t kSpinInit = 256;
  static constexpr std::uint32_t kSpinMin = 16;
  static constexpr std::uint32_t kSpinMax = 8192;

  std::atomic<std::uint64_t> generation{0};
  std::atomic<std::uint64_t> work{0};  // gen<<32 | count<<16 | next index
  std::atomic<std::uint32_t> done_count{0};
  const std::uint32_t* active = nullptr;  // into Simulator::active_
  const TimeNs* bounds = nullptr;         // into Simulator::bounds_
  std::uint64_t cap = 0;
  std::atomic<bool> shutdown{false};
  // Sleep path: only touched once a worker exhausts its spin budget.
  std::mutex m;
  std::condition_variable cv;
  std::atomic<std::uint32_t> sleepers{0};
  // Done-barrier sleep path: the coordinator parks here when a claimed
  // queue runs long; the worker finishing the window's last queue wakes it.
  std::condition_variable done_cv;
  std::atomic<bool> coord_sleeping{false};
  std::uint32_t coord_spin_budget = kSpinInit;  // coordinator-only
  // Telemetry (workers add, coordinator folds into KernelStats).
  std::atomic<std::uint64_t> spin_wakes{0};
  std::atomic<std::uint64_t> sleep_wakes{0};
  std::vector<std::thread> workers;
};

Simulator::Simulator() {
  queues_.push_back(std::make_unique<EventQueue>(0));
}

Simulator::~Simulator() { shutdown_pool(); }

Simulator::Scope::Scope(Simulator& sim, std::uint32_t queue)
    : sim_(sim), prev_(sim.build_queue_) {
  if (queue >= sim_.queues_.size()) {
    throw std::out_of_range("sim: Scope queue " + std::to_string(queue) +
                            " out of range");
  }
  sim_.build_queue_ = queue;
}

Simulator::Scope::~Scope() { sim_.build_queue_ = prev_; }

EventQueue& Simulator::active() const {
  if (g_active.sim == this && g_active.queue != nullptr) {
    return *g_active.queue;
  }
  return *queues_[build_queue_];
}

void Simulator::configure_partitions(std::vector<std::uint32_t> assignment,
                                     std::uint32_t count, TimeNs lookahead,
                                     unsigned threads) {
  if (count < 2) {
    throw std::invalid_argument(
        "sim: configure_partitions requires >= 2 partitions; keep the "
        "single-queue kernel otherwise");
  }
  if (count >= Pool::kIdxMask) {
    throw std::invalid_argument(
        "sim: partition count exceeds the work-index capacity (" +
        std::to_string(Pool::kIdxMask) + ")");
  }
  if (lookahead <= 0) {
    throw std::invalid_argument(
        "sim: partitioned kernel requires a positive lookahead");
  }
  for (std::uint32_t a : assignment) {
    if (a >= count) {
      throw std::invalid_argument("sim: partition assignment out of range");
    }
  }
  EventQueue& q0 = *queues_[0];
  if (!q0.empty() || q0.executed() != 0 || q0.now() != 0) {
    throw std::logic_error(
        "sim: configure_partitions must run before any scheduling");
  }
  // Reconfiguration: drop any pool sized for the previous configuration so
  // the worker count matches the new threads/partitions and its cumulative
  // wake counters don't leak into the freshly-reset stats below.
  shutdown_pool();
  node_queue_ = std::move(assignment);
  partitions_ = count;
  lookahead_ = lookahead;
  threads_ = std::max(1u, threads);
  const char* fixed = std::getenv("DMN_SIM_FIXED_WINDOWS");
  fixed_windows_ = fixed != nullptr && fixed[0] != '\0' && fixed[0] != '0';
  stats_ = KernelStats{};
  stats_.activation_hist.assign(count + 1, 0);
  queues_.clear();
  for (std::uint32_t q = 0; q <= count; ++q) {  // + the wired queue
    queues_.push_back(std::make_unique<EventQueue>(q));
  }
}

EventHandle Simulator::schedule_at(TimeNs at, EventFn fn) {
  return active().schedule(at, std::move(fn));
}

void Simulator::post_at(TimeNs at, EventFn fn) {
  active().push(at, std::move(fn));
}

void Simulator::post_to_queue(std::uint32_t dst, TimeNs at, EventFn fn) {
  if (partitions_ == 0) {
    post_at(at, std::move(fn));
    return;
  }
  if (dst >= queues_.size()) {
    throw std::out_of_range("sim: post_to_queue destination " +
                            std::to_string(dst) + " out of range");
  }
  EventQueue& src = active();
  EventQueue& dq = *queues_[dst];
  if (&src == &dq) {
    src.push(at, std::move(fn));
    return;
  }
  // Conservative-lookahead contract: a cross-queue event must land beyond
  // every other queue's current window bound, otherwise the destination may
  // have already run past it in parallel.
  if (at < src.now() + lookahead_) {
    throw std::logic_error(
        "sim: cross-partition event below the lookahead horizon: at=" +
        std::to_string(at) + " ns < now=" + std::to_string(src.now()) +
        " ns + lookahead=" + std::to_string(lookahead_) + " ns");
  }
  dq.inbox_put(EventQueue::CrossMsg{at, src.index(), src.next_cross_seq(),
                                    std::move(fn)});
}

void Simulator::stop() {
  active().request_stop();
  stop_all_.store(true, std::memory_order_relaxed);
}

std::uint64_t Simulator::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& q : queues_) total += q->executed();
  return total;
}

void Simulator::run_until(TimeNs until) {
  if (partitions_ == 0) {
    run_until_legacy(until);
  } else {
    run_until_partitioned(until);
  }
}

void Simulator::run() {
  if (partitions_ != 0) {
    throw std::logic_error("sim: partitioned run requires a finite horizon");
  }
  run_until(kTimeNever);
}

void Simulator::run_until_legacy(TimeNs until) {
  EventQueue& q = *queues_[0];
  q.clear_stop();
  stop_all_.store(false, std::memory_order_relaxed);
  interrupted_ = false;
  while (!q.empty() && !q.stop_requested()) {
    // Watchdog checks between events: a budget overrun or an externally-set
    // interrupt flag stops the loop at a safe event boundary, leaving now()
    // and events_executed() as the last-known progress.
    if (event_budget_ != 0 && q.executed() >= event_budget_) {
      interrupted_ = true;
      break;
    }
    if (interrupt_ != nullptr &&
        interrupt_->load(std::memory_order_relaxed)) {
      interrupted_ = true;
      break;
    }
    if (q.next_time() > until) break;
    q.run_one();
  }
  // Fast-forward the clock to the horizon (but not to the run()'s
  // infinite sentinel) so callers observe "simulated until `until`".
  if (q.now() < until && q.empty() && until != kTimeNever) {
    q.set_now(until);
  }
}

void Simulator::run_queue_window(std::uint32_t q, TimeNs last,
                                 std::uint64_t cap) {
  TlsScope scope(this, queues_[q].get());
  try {
    exec_delta_[q] = queues_[q]->run_window(last, cap, interrupt_);
  } catch (...) {
    errors_[q] = std::current_exception();
  }
}

void Simulator::run_until_partitioned(TimeNs until) {
  if (until == kTimeNever) {
    throw std::logic_error("sim: partitioned run requires a finite horizon");
  }
  interrupted_ = false;
  stop_all_.store(false, std::memory_order_relaxed);
  for (auto& q : queues_) q->clear_stop();
  const std::uint32_t wired = partitions_;
  const std::size_t nq = queues_.size();
  bounds_.assign(nq, 0);
  exec_delta_.assign(nq, 0);
  bool have_prev = false;
  TimeNs prev_end = 0;
  for (;;) {
    // Barrier start: fold the previous window's cross-partition sends into
    // their destination heaps. The lock-free inbox flag makes this a single
    // relaxed load per idle queue — no mutex sweep.
    for (auto& q : queues_) q->drain_inbox();
    if (event_budget_ != 0 && events_executed() >= event_budget_) {
      interrupted_ = true;
      break;
    }
    if (interrupt_ != nullptr &&
        interrupt_->load(std::memory_order_relaxed)) {
      interrupted_ = true;
      break;
    }
    if (stop_all_.load(std::memory_order_relaxed)) break;
    // m1 = earliest pending event anywhere; m2 = earliest on any OTHER
    // queue than m1's (== m1 on a tie). Both are pure simulation state.
    TimeNs m1 = kTimeNever;
    TimeNs m2 = kTimeNever;
    std::size_t argmin = 0;
    for (std::size_t i = 0; i < nq; ++i) {
      const TimeNs t = queues_[i]->next_time();
      if (t < m1) {
        m2 = m1;
        m1 = t;
        argmin = i;
      } else if (t < m2) {
        m2 = t;
      }
    }
    if (m1 == kTimeNever || m1 > until) break;
    // Window start: jump straight to the earliest event (adaptive mode) or
    // step densely from the previous end (DMN_SIM_FIXED_WINDOWS reference).
    TimeNs start;
    if (fixed_windows_) {
      start = have_prev ? prev_end + 1 : 0;
    } else {
      start = m1;
      if (have_prev && m1 > prev_end + 1) ++stats_.ff_jumps;
    }
    ++stats_.windows;
    const TimeNs horizon = (start > kTimeNever - lookahead_)
                               ? kTimeNever
                               : start + lookahead_;
    const TimeNs base_last = std::min(until, horizon - 1);
    TimeNs window_end = base_last;
    for (std::size_t i = 0; i < nq; ++i) bounds_[i] = base_last;
    // Elongation: when the minimum is unique, that queue alone may run to
    // min(m2, m1 + L) + L - 1 — every message that can ever reach it lands
    // at or beyond min(m2, m1 + L) + L (see the header-comment induction).
    if (!fixed_windows_ && m2 > m1) {
      const TimeNs e_start = std::min(m2, horizon);
      const TimeNs e_horizon = (e_start > kTimeNever - lookahead_)
                                   ? kTimeNever
                                   : e_start + lookahead_;
      const TimeNs e_last = std::min(until, e_horizon - 1);
      if (e_last > base_last) {
        bounds_[argmin] = e_last;
        window_end = e_last;
        ++stats_.elongated_windows;
      }
    }
    const std::uint64_t total = events_executed();
    const std::uint64_t cap =
        event_budget_ == 0
            ? std::numeric_limits<std::uint64_t>::max()
            : (event_budget_ > total ? event_budget_ - total : 0);
    errors_.assign(nq, nullptr);
    // Wired queue first, on the coordinator, while every node queue is
    // parked: controller logic may peek AP MAC state race-free. Its view
    // stays < lookahead stale even under elongation — negligible against
    // the backbone latency its outputs already ride.
    if (queues_[wired]->next_time() <= bounds_[wired]) {
      run_queue_window(wired, bounds_[wired], cap);
    }
    if (errors_[wired] == nullptr) {
      // Sparse activation: only node queues with events inside their bound
      // enter the window at all; the rest just get their clocks advanced.
      active_.clear();
      for (std::uint32_t q = 0; q < partitions_; ++q) {
        if (queues_[q]->next_time() <= bounds_[q]) active_.push_back(q);
      }
      stats_.activations += active_.size();
      ++stats_.activation_hist[active_.size()];
      if (threads_ <= 1 || active_.size() <= 1) {
        // No handoff worth paying for: run inline on the coordinator.
        for (std::uint32_t q : active_) run_queue_window(q, bounds_[q], cap);
      } else {
        run_active_pooled(cap);
      }
    }
    // Advance every clock to its window bound so the next window's wired
    // peeks and inbox drains see a consistent "time has passed" view.
    for (std::size_t i = 0; i < nq; ++i) {
      if (queues_[i]->now() < bounds_[i]) queues_[i]->set_now(bounds_[i]);
    }
    have_prev = true;
    prev_end = window_end;
    for (auto& e : errors_) {
      if (e) std::rethrow_exception(e);
    }
  }
  if (pool_) {
    stats_.spin_wakes = pool_->spin_wakes.load(std::memory_order_relaxed);
    stats_.sleep_wakes = pool_->sleep_wakes.load(std::memory_order_relaxed);
  }
  if (!interrupted_ && !stop_all_.load(std::memory_order_relaxed)) {
    bool all_idle = true;
    for (auto& q : queues_) {
      if (!q->empty() || q->inbox_pending()) all_idle = false;
    }
    if (all_idle) {
      for (auto& q : queues_) {
        if (q->now() < until) q->set_now(until);
      }
    }
  }
}

void Simulator::run_active_pooled(std::uint64_t cap) {
  ensure_pool();
  Pool& p = *pool_;
  using Clock = std::chrono::steady_clock;
  const auto window_begin = Clock::now();
  // LPT-style balance: longest (by last window's executed count) first, so
  // the heavy queue is claimed before the tail of light ones.
  std::sort(active_.begin(), active_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (exec_delta_[a] != exec_delta_[b]) {
                return exec_delta_[a] > exec_delta_[b];
              }
              return a < b;
            });
  const std::uint32_t count = static_cast<std::uint32_t>(active_.size());
  const std::uint64_t gen =
      p.generation.load(std::memory_order_relaxed) + 1;
  // Publish order matters: window data, then done_count, then the packed
  // work word (release), then the generation bump the workers wait on. A
  // worker that observes the new generation therefore observes everything
  // else. Until the work word is stored, stragglers see the previous
  // window's fully-drained word (idx == count) and claim nothing.
  p.active = active_.data();
  p.bounds = bounds_.data();
  p.cap = cap;
  p.done_count.store(0, std::memory_order_relaxed);
  p.work.store(((gen & Pool::kGenMask) << Pool::kGenShift) |
                   (static_cast<std::uint64_t>(count) << Pool::kCntShift),
               std::memory_order_release);
  p.generation.store(gen, std::memory_order_seq_cst);
  if (p.sleepers.load(std::memory_order_seq_cst) != 0) {
    // The empty critical section pins sleepers to one side of the predicate
    // re-check; seq_cst on the generation store and the sleepers counter
    // closes the classic lost-wakeup window.
    { const std::lock_guard<std::mutex> lock(p.m); }
    p.cv.notify_all();
  }
  // The coordinator is a puller too.
  const auto exec_begin = Clock::now();
  pull_windows(p, gen);
  const auto exec_end = Clock::now();
  // Done-barrier: adaptive spin-then-wait, mirroring the workers. A long
  // in-flight queue (or an oversubscribed box) must not pin the coordinator
  // to a core it could be lending to the very worker it waits on. The
  // seq_cst handshake on coord_sleeping vs done_count (worker side in
  // pull_windows) closes the lost-wakeup window the same way the sleepers
  // counter does for generation publishes.
  std::uint32_t spins = 0;
  bool slept = false;
  while (p.done_count.load(std::memory_order_acquire) < count) {
    if (spins < p.coord_spin_budget) {
      ++spins;
      cpu_relax();
      continue;
    }
    p.coord_sleeping.store(true, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(p.m);
      // seq_cst predicate load: paired with the seq_cst fetch_add +
      // coord_sleeping load on the worker side, the single total order
      // guarantees that whenever the last finisher saw coord_sleeping ==
      // false (and so skipped the notify), this pre-wait check sees its
      // increment — an acquire load could legally miss it and sleep with
      // no wakeup pending.
      p.done_cv.wait(lock, [&p, count] {
        return p.done_count.load(std::memory_order_seq_cst) >= count;
      });
    }
    p.coord_sleeping.store(false, std::memory_order_seq_cst);
    slept = true;
  }
  p.coord_spin_budget =
      slept ? std::max(p.coord_spin_budget / 2, Pool::kSpinMin)
            : std::min(p.coord_spin_budget * 2, Pool::kSpinMax);
  const auto window_close = Clock::now();
  stats_.barrier_seconds +=
      std::chrono::duration<double>(window_close - window_begin).count() -
      std::chrono::duration<double>(exec_end - exec_begin).count();
}

void Simulator::pull_windows(Pool& p, std::uint64_t gen) {
  std::uint64_t v = p.work.load(std::memory_order_acquire);
  for (;;) {
    if ((v >> Pool::kGenShift) != (gen & Pool::kGenMask)) {
      return;  // not this window any more
    }
    // Generation, bound, and index all come from the one word the CAS
    // commits — a stale load can never pass this window's bound check
    // against a newer window's count.
    const std::uint32_t count =
        static_cast<std::uint32_t>((v >> Pool::kCntShift) & Pool::kIdxMask);
    const std::uint32_t i = static_cast<std::uint32_t>(v & Pool::kIdxMask);
    if (i >= count) return;
    if (p.work.compare_exchange_weak(v, v + 1, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      const std::uint32_t q = p.active[i];
      run_queue_window(q, p.bounds[q], p.cap);
      const std::uint32_t done =
          p.done_count.fetch_add(1, std::memory_order_seq_cst) + 1;
      if (done == count &&
          p.coord_sleeping.load(std::memory_order_seq_cst)) {
        // Pin the coordinator to one side of its predicate re-check, then
        // wake it; only the window's last finisher can flip the predicate,
        // so earlier increments skip the lock entirely.
        { const std::lock_guard<std::mutex> lock(p.m); }
        p.done_cv.notify_one();
      }
      v = p.work.load(std::memory_order_acquire);
    }
    // CAS failure already reloaded v.
  }
}

void Simulator::ensure_pool() {
  if (pool_) return;
  pool_ = std::make_unique<Pool>();
  // The coordinator pulls work alongside the pool, so it counts as one of
  // the `threads_` execution lanes.
  const unsigned extra = std::min(threads_, partitions_) - 1;
  pool_->workers.reserve(extra);
  for (unsigned w = 0; w < extra; ++w) {
    pool_->workers.emplace_back([this] { worker_loop(); });
  }
}

void Simulator::worker_loop() {
  Pool& p = *pool_;
  std::uint64_t seen = 0;
  std::uint32_t spin_budget = Pool::kSpinInit;
  for (;;) {
    std::uint64_t gen = p.generation.load(std::memory_order_acquire);
    if (gen == seen) {
      // Adaptive spin-then-wait: windows usually follow each other within
      // microseconds, so a short spin avoids the syscall round trip; when
      // wakeups keep arriving via the cv instead (oversubscribed box), the
      // budget collapses so we sleep almost immediately.
      std::uint32_t spins = 0;
      bool slept = false;
      for (;;) {
        if (p.shutdown.load(std::memory_order_acquire)) return;
        gen = p.generation.load(std::memory_order_acquire);
        if (gen != seen) break;
        if (spins < spin_budget) {
          ++spins;
          cpu_relax();
          continue;
        }
        p.sleepers.fetch_add(1, std::memory_order_seq_cst);
        {
          std::unique_lock<std::mutex> lock(p.m);
          p.cv.wait(lock, [&p, seen] {
            return p.shutdown.load(std::memory_order_acquire) ||
                   p.generation.load(std::memory_order_acquire) != seen;
          });
        }
        p.sleepers.fetch_sub(1, std::memory_order_seq_cst);
        slept = true;
      }
      if (slept) {
        p.sleep_wakes.fetch_add(1, std::memory_order_relaxed);
        spin_budget = std::max(spin_budget / 2, Pool::kSpinMin);
      } else {
        p.spin_wakes.fetch_add(1, std::memory_order_relaxed);
        spin_budget = std::min(spin_budget * 2, Pool::kSpinMax);
      }
    }
    seen = gen;
    pull_windows(p, seen);
  }
}

void Simulator::shutdown_pool() {
  if (!pool_) return;
  pool_->shutdown.store(true, std::memory_order_seq_cst);
  { const std::lock_guard<std::mutex> lock(pool_->m); }
  pool_->cv.notify_all();
  for (std::thread& t : pool_->workers) t.join();
  stats_.spin_wakes = pool_->spin_wakes.load(std::memory_order_relaxed);
  stats_.sleep_wakes = pool_->sleep_wakes.load(std::memory_order_relaxed);
  pool_.reset();
}

}  // namespace dmn::sim
