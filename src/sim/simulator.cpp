#include "sim/simulator.h"

#include <cassert>
#include <limits>
#include <utility>

namespace dmn::sim {

EventHandle Simulator::schedule_at(TimeNs at, EventFn fn) {
  assert(at >= now_ && "cannot schedule in the past");
  auto state = std::make_shared<EventHandle::State>();
  push_entry(Entry{at, next_seq_++, std::move(fn), state});
  return EventHandle(std::move(state));
}

void Simulator::post_at(TimeNs at, EventFn fn) {
  assert(at >= now_ && "cannot schedule in the past");
  push_entry(Entry{at, next_seq_++, std::move(fn), nullptr});
}

void Simulator::cancel(EventHandle& h) {
  if (h.state_) h.state_->cancelled = true;
}

void Simulator::run_until(TimeNs until) {
  stopped_ = false;
  interrupted_ = false;
  while (!heap_.empty() && !stopped_) {
    // Watchdog checks between events: a budget overrun or an externally-set
    // interrupt flag stops the loop at a safe event boundary, leaving now()
    // and events_executed() as the last-known progress.
    if (event_budget_ != 0 && executed_ >= event_budget_) {
      interrupted_ = true;
      break;
    }
    if (interrupt_ != nullptr &&
        interrupt_->load(std::memory_order_relaxed)) {
      interrupted_ = true;
      break;
    }
    if (heap_.front().at > until) break;
    Entry entry = pop_entry();
    if (entry.state != nullptr && entry.state->cancelled) continue;
    now_ = entry.at;
    if (entry.state != nullptr) entry.state->done = true;
    ++executed_;
    entry.fn();
  }
  // Fast-forward the clock to the horizon (but not to the run()'s
  // infinite sentinel) so callers observe "simulated until `until`".
  if (now_ < until && heap_.empty() &&
      until != std::numeric_limits<TimeNs>::max()) {
    now_ = until;
  }
}

void Simulator::run() {
  run_until(std::numeric_limits<TimeNs>::max());
}

}  // namespace dmn::sim
