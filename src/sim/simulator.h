#pragma once
// Discrete-event simulation kernel.
//
// In its default configuration a Simulator owns exactly one EventQueue and
// behaves byte-identically to the historical single-heap kernel: one clock,
// one time-ordered heap, strict (at, seq) execution order.
//
// configure_partitions() turns it into a conservative parallel kernel
// (classic ns-3-distributed recipe): each interference partition of the
// topology gets its own EventQueue + clock, plus one extra "wired" queue for
// backbone-side logic (controllers). Queues advance in lockstep windows of
// width `lookahead` — the minimum cross-partition delivery latency (the
// backbone's min_latency floor). Within a window [t, t+L):
//   * the wired queue runs first, on the coordinator thread, while every
//     node queue is parked at the barrier — so controller code may read
//     AP MAC state synchronously without a data race;
//   * node queues then run concurrently on the thread pool.
// Any event executing at time t can only send cross-partition work at
// >= t + lookahead, i.e. beyond the current window, so no in-window event
// can affect another queue's current window: the merge of per-queue
// executions is equivalent to the sequential execution of a global heap
// over the same per-queue event streams.
//
// Cross-partition sends go through post_to_queue(), which appends to the
// destination's inbox stamped (time, source queue, source sequence); inboxes
// are drained in that total order at window barriers. Because the order is a
// pure function of the simulated computation — never of thread timing —
// results are byte-stable at any thread count for a fixed partition
// assignment.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "util/time.h"

namespace dmn::sim {

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Splits the kernel into `count` node partitions (queues 0..count-1)
  /// plus one wired queue (index count). `assignment[node]` maps each
  /// topology node to its partition. `lookahead` must be positive — it is
  /// the minimum latency of any cross-partition delivery, and becomes the
  /// synchronization window width. `threads` caps the worker pool (clamped
  /// to the partition count). Must be called before anything is scheduled.
  void configure_partitions(std::vector<std::uint32_t> assignment,
                            std::uint32_t count, TimeNs lookahead,
                            unsigned threads);

  bool partitioned() const { return partitions_ != 0; }
  /// Number of node partitions (0 when not partitioned).
  std::uint32_t partition_count() const { return partitions_; }
  TimeNs lookahead() const { return lookahead_; }

  /// Queue carrying a node's events: its partition when partitioned, the
  /// single legacy queue otherwise.
  std::uint32_t queue_of_node(std::size_t node) const {
    return partitions_ == 0 ? 0
                            : node_queue_[node];
  }
  /// Queue carrying backbone-side logic (== 0 when not partitioned).
  std::uint32_t wired_queue_index() const { return partitions_; }
  /// Index of the queue the calling context schedules into right now.
  std::uint32_t active_queue_index() const { return active().index(); }

  /// Pins the queue that build-phase (outside run) scheduling lands in.
  /// The facade wraps component construction and traffic-source starts in a
  /// Scope so their initial self-scheduled events start on the right queue;
  /// events posted from inside a running event always follow the executing
  /// queue instead. No-op scoping to queue 0 when not partitioned.
  class Scope {
   public:
    Scope(Simulator& sim, std::uint32_t queue);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Simulator& sim_;
    std::uint32_t prev_;
  };

  /// Current simulation time (of the active queue).
  TimeNs now() const { return active().now(); }

  /// Schedule `fn` to run at absolute time `at` (>= now()) on the active
  /// queue. Throws std::logic_error when `at` lies in the past. The
  /// returned handle can cancel the event; if the handle is discarded,
  /// prefer post_at(), which skips the handle-state allocation.
  EventHandle schedule_at(TimeNs at, EventFn fn);

  /// Schedule `fn` to run `delay` after now().
  EventHandle schedule_in(TimeNs delay, EventFn fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  /// Fire-and-forget scheduling: no cancellation handle, no allocation.
  void post_at(TimeNs at, EventFn fn);
  void post_in(TimeNs delay, EventFn fn) {
    post_at(now() + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at` on queue `dst`. Falls back to
  /// post_at() when not partitioned or when `dst` is the active queue;
  /// otherwise appends to dst's inbox in (time, source queue, source seq)
  /// order. Cross-queue sends must respect the lookahead contract
  /// (`at >= now() + lookahead()`); violations throw std::logic_error.
  void post_to_queue(std::uint32_t dst, TimeNs at, EventFn fn);

  /// Cancel a pending event. No-op if already run or cancelled. Only valid
  /// for events on the caller's own queue.
  void cancel(EventHandle& h);

  /// Run until every queue drains or simulation time exceeds `until`.
  /// Events stamped exactly at `until` still run. Partitioned runs require
  /// a finite horizon.
  void run_until(TimeNs until);

  /// Run until the queue drains (single-queue kernel only).
  void run();

  /// Request the run loop to stop after the current event. In a partitioned
  /// run the active queue stops immediately and every other queue stops at
  /// the next window barrier — a deterministic point, since in-window
  /// executions are independent.
  void stop();

  /// Arms cooperative external interruption (the sweep watchdog hook).
  /// When `flag` is non-null the run loop polls it between events and stops
  /// at the next event boundary once it reads true. The flag may be set
  /// from another thread (e.g. the SweepRunner monitor); the simulator only
  /// ever reads it. Pass nullptr to disarm.
  void set_interrupt_flag(const std::atomic<bool>* flag) {
    interrupt_ = flag;
  }

  /// Caps the total number of executed events (summed across queues); once
  /// events_executed() reaches the budget the run loop stops and reports
  /// interrupted(). In a partitioned run the budget is re-checked at every
  /// window barrier and enforced deterministically in-window: each window
  /// lets every queue run at most (budget - total at window start) events,
  /// a per-queue cap that does not depend on other queues' progress.
  /// 0 disables the budget.
  void set_event_budget(std::uint64_t max_events) {
    event_budget_ = max_events;
  }

  /// True when the last run_until()/run() stopped early because of the
  /// interrupt flag or the event budget (not because the queues drained,
  /// the horizon was reached, or stop() was called).
  bool interrupted() const { return interrupted_; }

  /// Number of events executed so far, summed across queues.
  std::uint64_t events_executed() const;

 private:
  friend class Scope;
  struct Pool;

  EventQueue& active() const;
  void run_until_legacy(TimeNs until);
  void run_until_partitioned(TimeNs until);
  void run_node_windows(TimeNs last, std::uint64_t cap);
  void ensure_pool();
  void worker_loop(unsigned worker, unsigned stride);
  void shutdown_pool();

  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<std::uint32_t> node_queue_;
  std::uint32_t partitions_ = 0;  // node partitions; 0 = single-queue kernel
  TimeNs lookahead_ = 0;
  unsigned threads_ = 1;
  std::uint32_t build_queue_ = 0;
  bool interrupted_ = false;
  std::atomic<bool> stop_all_{false};
  const std::atomic<bool>* interrupt_ = nullptr;
  std::uint64_t event_budget_ = 0;
  std::vector<std::exception_ptr> errors_;
  std::unique_ptr<Pool> pool_;
};

}  // namespace dmn::sim
