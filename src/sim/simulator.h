#pragma once
// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue. Events scheduled for the same
// tick run in FIFO order of scheduling (stable), which keeps protocol state
// machines deterministic. Cancellation is lazy: cancel() flags the event and
// the run loop skips flagged entries.

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.h"

namespace dmn::sim {

/// Handle to a scheduled event; may be used to cancel it.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not run, not cancelled).
  bool pending() const { return state_ && !state_->done && !state_->cancelled; }

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool done = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()).
  EventHandle schedule_at(TimeNs at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` after now().
  EventHandle schedule_in(TimeNs delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. No-op if already run or cancelled.
  void cancel(EventHandle& h);

  /// Run until the queue drains or simulation time exceeds `until`.
  /// Events stamped exactly at `until` still run.
  void run_until(TimeNs until);

  /// Run until the queue drains.
  void run();

  /// Request the run loop to stop after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for tests / sanity checks).
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t seq;  // tie-break: FIFO within a tick
    std::function<void()> fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace dmn::sim
