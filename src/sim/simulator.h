#pragma once
// Discrete-event simulation kernel.
//
// In its default configuration a Simulator owns exactly one EventQueue and
// behaves byte-identically to the historical single-heap kernel: one clock,
// one time-ordered heap, strict (at, seq) execution order.
//
// configure_partitions() turns it into a conservative parallel kernel
// (classic ns-3-distributed recipe): each interference partition of the
// topology gets its own EventQueue + clock, plus one extra "wired" queue for
// backbone-side logic (controllers). Queues advance in synchronization
// windows bounded by the lookahead L — the minimum cross-partition delivery
// latency (the backbone's min_latency floor). Per window:
//   * the wired queue runs first, on the coordinator thread, while every
//     node queue is parked at the barrier — so controller code may read
//     AP MAC state synchronously without a data race;
//   * node queues with work then run concurrently on the thread pool.
// Any event executing at time t can only send cross-partition work at
// >= t + lookahead, i.e. beyond every other queue's window bound, so no
// in-window event can affect another queue's current window: the merge of
// per-queue executions is equivalent to the sequential execution of a
// global heap over the same per-queue event streams.
//
// Window protocol v2 (adaptive). Let m1 = min over queues of next_time()
// after inbox drains, m2 = the second-smallest. Every window starts at m1 —
// empty stretches of simulated time are skipped outright (a "fast-forward
// jump" when m1 lies beyond the previous window's end). Each queue runs to
// its own bound:
//   * every queue:        m1 + L - 1   (the classic conservative window);
//   * the unique minimum: min(m2, m1 + L) + L - 1   when m2 > m1.
// The elongated bound is safe by induction: events on other queues all lie
// at >= m2, and any event the minimum queue itself executes at t sends
// cross-partition work landing at >= t + L >= m1 + L — so every message
// that can ever reach the minimum queue lands at >= min(m2, m1 + L) + L,
// strictly beyond its bound. (The tempting m2 + L - 1 bound is NOT safe
// across multiple windows: a remote queue may execute a freshly drained
// message at m1 + L and reply landing at m1 + 2L < m2 + L - 1 when
// m2 > m1 + L + 1.) Controller-peek staleness keeps its documented <= L
// bound under elongation. Setting DMN_SIM_FIXED_WINDOWS=1 (read at
// configure_partitions time) disables both optimizations and steps fixed
// [s, s+L) windows from 0 — the reference schedule. For workloads whose
// cross-queue interaction is purely message-passing the adaptive schedule
// matches it byte-for-byte; a controller that synchronously peeks
// cross-queue state at barriers (DOMINO's downlink peek) observes node
// progress that depends on where the window boundaries fall, so its
// peeked values may differ between schedules within the same <= L bound.
//
// Per window only queues whose next event lies inside their bound are
// activated; active queues enter a single atomic work word (largest
// previous-window execution count first, LPT-style) packing generation,
// active count, and next index, which the coordinator and pool workers
// claim from by CAS until drained — bound check and claim are one atomic
// decision, so a straggler holding a stale word can never claim into a
// newer window. Both handoffs are adaptive bounded spin-then-wait: workers
// wait on the generation counter, the coordinator on the done count, so
// idle handoffs cost nanoseconds rather than condition-variable syscalls
// while a loaded box collapses the spin budgets and sleeps immediately.
//
// Cross-partition sends go through post_to_queue(), which appends to the
// destination's inbox stamped (time, source queue, source sequence); inboxes
// are drained at window barriers, and the stamp is encoded directly in the
// destination's heap order. Because that order is a pure function of the
// simulated computation — never of thread timing or of which barrier
// drained which message — results are byte-stable at any thread count for
// a fixed partition assignment and window schedule.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "util/time.h"

namespace dmn::sim {

/// Kernel telemetry for the partitioned run loop. Counters accumulate
/// across run_until() calls; all are coordinator-written except the wake
/// counts, which workers accumulate into the pool and the coordinator folds
/// in. Cheap enough to keep always-on.
struct KernelStats {
  std::uint64_t windows = 0;            ///< synchronization windows executed
  std::uint64_t ff_jumps = 0;           ///< windows whose start skipped idle time
  std::uint64_t elongated_windows = 0;  ///< windows where the min queue ran past m1+L-1
  std::uint64_t activations = 0;        ///< total node-queue activations (sum over windows)
  /// activation_hist[k] = number of windows that activated exactly k node
  /// queues; sized partition_count()+1 once partitioned.
  std::vector<std::uint64_t> activation_hist;
  std::uint64_t spin_wakes = 0;   ///< worker wakeups served by the spin loop
  std::uint64_t sleep_wakes = 0;  ///< worker wakeups that fell through to the cv
  /// Coordinator wall-clock spent publishing windows and waiting at the
  /// done-barrier, minus the time it spent executing events itself. Only
  /// accumulated for windows that used the pool.
  double barrier_seconds = 0.0;

  /// Median / maximum node queues activated per window (0 when no windows).
  std::uint32_t activated_p50() const;
  std::uint32_t activated_max() const;
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Splits the kernel into `count` node partitions (queues 0..count-1)
  /// plus one wired queue (index count). `assignment[node]` maps each
  /// topology node to its partition. `lookahead` must be positive — it is
  /// the minimum latency of any cross-partition delivery, and becomes the
  /// synchronization window width. `threads` caps the worker pool (clamped
  /// to the partition count). Must be called before anything is scheduled;
  /// calling it again reconfigures from scratch — the worker pool and its
  /// telemetry are torn down so the next run matches the new settings.
  void configure_partitions(std::vector<std::uint32_t> assignment,
                            std::uint32_t count, TimeNs lookahead,
                            unsigned threads);

  bool partitioned() const { return partitions_ != 0; }
  /// Number of node partitions (0 when not partitioned).
  std::uint32_t partition_count() const { return partitions_; }
  TimeNs lookahead() const { return lookahead_; }

  /// Queue carrying a node's events: its partition when partitioned, the
  /// single legacy queue otherwise.
  std::uint32_t queue_of_node(std::size_t node) const {
    return partitions_ == 0 ? 0
                            : node_queue_[node];
  }
  /// Queue carrying backbone-side logic (== 0 when not partitioned).
  std::uint32_t wired_queue_index() const { return partitions_; }
  /// Index of the queue the calling context schedules into right now.
  std::uint32_t active_queue_index() const { return active().index(); }

  /// Pins the queue that build-phase (outside run) scheduling lands in.
  /// The facade wraps component construction and traffic-source starts in a
  /// Scope so their initial self-scheduled events start on the right queue;
  /// events posted from inside a running event always follow the executing
  /// queue instead. No-op scoping to queue 0 when not partitioned.
  class Scope {
   public:
    Scope(Simulator& sim, std::uint32_t queue);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Simulator& sim_;
    std::uint32_t prev_;
  };

  /// Current simulation time (of the active queue).
  TimeNs now() const { return active().now(); }

  /// Schedule `fn` to run at absolute time `at` (>= now()) on the active
  /// queue. Throws std::logic_error when `at` lies in the past. The
  /// returned handle can cancel the event; if the handle is discarded,
  /// prefer post_at(), which skips the handle state entirely. Handles
  /// borrow pooled state owned by the kernel and must not be used after
  /// the Simulator is destroyed (debug builds assert on such use).
  EventHandle schedule_at(TimeNs at, EventFn fn);

  /// Schedule `fn` to run `delay` after now().
  EventHandle schedule_in(TimeNs delay, EventFn fn) {
    return schedule_at(now() + delay, std::move(fn));
  }

  /// Fire-and-forget scheduling: no cancellation handle, no allocation.
  void post_at(TimeNs at, EventFn fn);
  void post_in(TimeNs delay, EventFn fn) {
    post_at(now() + delay, std::move(fn));
  }

  /// Schedules `fn` at absolute time `at` on queue `dst`. Falls back to
  /// post_at() when not partitioned or when `dst` is the active queue;
  /// otherwise appends to dst's inbox in (time, source queue, source seq)
  /// order. Cross-queue sends must respect the lookahead contract
  /// (`at >= now() + lookahead()`); violations throw std::logic_error.
  void post_to_queue(std::uint32_t dst, TimeNs at, EventFn fn);

  /// Cancel a pending event. No-op if already run or cancelled. Only valid
  /// for events on the caller's own queue.
  void cancel(EventHandle& h) { EventQueue::cancel(h); }

  /// Run until every queue drains or simulation time exceeds `until`.
  /// Events stamped exactly at `until` still run. Partitioned runs require
  /// a finite horizon.
  void run_until(TimeNs until);

  /// Run until the queue drains (single-queue kernel only).
  void run();

  /// Request the run loop to stop after the current event. In a partitioned
  /// run the active queue stops immediately and every other queue stops at
  /// the next window barrier — a deterministic point, since in-window
  /// executions are independent.
  void stop();

  /// Arms cooperative external interruption (the sweep watchdog hook).
  /// When `flag` is non-null the run loop polls it between events and stops
  /// at the next event boundary once it reads true. The flag may be set
  /// from another thread (e.g. the SweepRunner monitor); the simulator only
  /// ever reads it. Pass nullptr to disarm.
  void set_interrupt_flag(const std::atomic<bool>* flag) {
    interrupt_ = flag;
  }

  /// Caps the total number of executed events (summed across queues); once
  /// events_executed() reaches the budget the run loop stops and reports
  /// interrupted(). In a partitioned run the budget is re-checked at every
  /// window barrier and enforced deterministically in-window: each window
  /// lets every queue run at most (budget - total at window start) events,
  /// a per-queue cap that does not depend on other queues' progress.
  /// 0 disables the budget.
  void set_event_budget(std::uint64_t max_events) {
    event_budget_ = max_events;
  }

  /// True when the last run_until()/run() stopped early because of the
  /// interrupt flag or the event budget (not because the queues drained,
  /// the horizon was reached, or stop() was called).
  bool interrupted() const { return interrupted_; }

  /// Number of events executed so far, summed across queues.
  std::uint64_t events_executed() const;

  /// Telemetry of the partitioned run loop (empty for the legacy kernel).
  const KernelStats& kernel_stats() const { return stats_; }

 private:
  friend class Scope;
  struct Pool;

  EventQueue& active() const;
  void run_until_legacy(TimeNs until);
  void run_until_partitioned(TimeNs until);
  /// Runs queue `q` for the current window on the calling thread, recording
  /// its executed count (LPT input) and trapping its error.
  void run_queue_window(std::uint32_t q, TimeNs last, std::uint64_t cap);
  /// Publishes the active set to the pool, pulls work alongside the
  /// workers, and waits for the done-barrier (accounting barrier time).
  void run_active_pooled(std::uint64_t cap);
  /// Claims active queues off the packed (gen | count | idx) work word
  /// until the window drains; a stale word claims nothing.
  void pull_windows(Pool& p, std::uint64_t gen);
  void ensure_pool();
  void worker_loop();
  void shutdown_pool();

  std::vector<std::unique_ptr<EventQueue>> queues_;
  std::vector<std::uint32_t> node_queue_;
  std::uint32_t partitions_ = 0;  // node partitions; 0 = single-queue kernel
  TimeNs lookahead_ = 0;
  unsigned threads_ = 1;
  bool fixed_windows_ = false;  // DMN_SIM_FIXED_WINDOWS=1 reference schedule
  std::uint32_t build_queue_ = 0;
  bool interrupted_ = false;
  std::atomic<bool> stop_all_{false};
  const std::atomic<bool>* interrupt_ = nullptr;
  std::uint64_t event_budget_ = 0;
  KernelStats stats_;
  std::vector<TimeNs> bounds_;          // per-queue window bound
  std::vector<std::uint32_t> active_;   // node queues activated this window
  std::vector<std::uint64_t> exec_delta_;  // events run last window, per queue
  std::vector<std::exception_ptr> errors_;
  std::unique_ptr<Pool> pool_;
};

}  // namespace dmn::sim
