#pragma once
// Discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue. Events scheduled for the same
// tick run in FIFO order of scheduling (stable), which keeps protocol state
// machines deterministic. Cancellation is lazy: cancel() flags the event and
// the run loop skips flagged entries.
//
// The queue is allocation-free on the hot path:
//  * event callables live in fixed inline storage inside the queue entry
//    (EventFn below) — no heap allocation unless a capture exceeds the
//    inline capacity, which no call site in this codebase does;
//  * cancellation state is allocated lazily: post_at()/post_in() are
//    fire-and-forget and carry no state at all, while schedule_at()/
//    schedule_in() allocate the shared EventHandle state the caller keeps.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/time.h"

namespace dmn::sim {

/// Move-only `void()` callable with inline storage. Callables up to
/// kInlineCapacity bytes (every scheduling lambda in the simulator — the
/// largest captures a SignatureBurst by value) are stored in place; larger
/// ones fall back to a single heap allocation, preserving correctness.
class EventFn {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
      destroy_ = [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); };
    } else {
      // Oversized capture: store a pointer in the buffer instead.
      Fn* heap = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) Fn*(heap);
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn** s = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*s);
      };
      destroy_ = [](void* p) {
        delete *std::launder(reinterpret_cast<Fn**>(p));
      };
    }
  }

  EventFn(EventFn&& other) noexcept
      : invoke_(other.invoke_),
        relocate_(other.relocate_),
        destroy_(other.destroy_) {
    if (relocate_ != nullptr) relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      if (relocate_ != nullptr) relocate_(buf_, other.buf_);
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { invoke_(buf_); }
  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

/// Handle to a scheduled event; may be used to cancel it.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not run, not cancelled).
  bool pending() const { return state_ && !state_->done && !state_->cancelled; }

 private:
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool done = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()). The returned
  /// handle can cancel the event; if the handle is discarded, prefer
  /// post_at(), which skips the handle-state allocation.
  EventHandle schedule_at(TimeNs at, EventFn fn);

  /// Schedule `fn` to run `delay` after now().
  EventHandle schedule_in(TimeNs delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Fire-and-forget scheduling: no cancellation handle, no allocation.
  void post_at(TimeNs at, EventFn fn);
  void post_in(TimeNs delay, EventFn fn) {
    post_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. No-op if already run or cancelled.
  void cancel(EventHandle& h);

  /// Run until the queue drains or simulation time exceeds `until`.
  /// Events stamped exactly at `until` still run.
  void run_until(TimeNs until);

  /// Run until the queue drains.
  void run();

  /// Request the run loop to stop after the current event.
  void stop() { stopped_ = true; }

  /// Arms cooperative external interruption (the sweep watchdog hook).
  /// When `flag` is non-null the run loop polls it between events and stops
  /// at the next event boundary once it reads true. The flag may be set
  /// from another thread (e.g. the SweepRunner monitor); the simulator only
  /// ever reads it. Pass nullptr to disarm.
  void set_interrupt_flag(const std::atomic<bool>* flag) {
    interrupt_ = flag;
  }

  /// Caps the total number of executed events; once `events_executed()`
  /// reaches the budget the run loop stops at the event boundary and
  /// reports interrupted(). 0 disables the budget.
  void set_event_budget(std::uint64_t max_events) {
    event_budget_ = max_events;
  }

  /// True when the last run_until()/run() stopped early because of the
  /// interrupt flag or the event budget (not because the queue drained,
  /// the horizon was reached, or stop() was called).
  bool interrupted() const { return interrupted_; }

  /// Number of events executed so far (for tests / sanity checks).
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t seq;  // tie-break: FIFO within a tick
    EventFn fn;
    std::shared_ptr<EventHandle::State> state;  // null for post_at events
  };
  /// Min-heap order on (at, seq) — strict total order, so the pop sequence
  /// is identical regardless of heap internals.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void push_entry(Entry e) {
    heap_.push_back(std::move(e));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  Entry pop_entry() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    return e;
  }

  std::vector<Entry> heap_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  bool interrupted_ = false;
  const std::atomic<bool>* interrupt_ = nullptr;
  std::uint64_t event_budget_ = 0;
};

}  // namespace dmn::sim
