#include "sim/event_queue.h"

#include <stdexcept>
#include <string>

namespace dmn::sim {

void EventQueue::check_future(TimeNs at) const {
  if (at < now_) {
    throw std::logic_error(
        "sim: cannot schedule into the past: at=" + std::to_string(at) +
        " ns < now=" + std::to_string(now_) + " ns (queue " +
        std::to_string(index_) + ")");
  }
}

std::uint32_t EventQueue::take_slot(EventFn fn, EventHandle::State* state) {
  std::uint32_t slot;
  if (!slot_free_.empty()) {
    slot = slot_free_.back();
    slot_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  }
  Entry& e = slab_[slot];
  e.fn = std::move(fn);
  e.state = state;
  return slot;
}

void EventQueue::heap_insert(Key k) {
  std::size_t i = heap_.size();
  heap_.push_back(k);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!k.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = k;
}

void EventQueue::heap_pop_top() {
  const Key moved = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(moved)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moved;
}

void EventQueue::push(TimeNs at, EventFn fn) {
  check_future(at);
  const std::uint32_t slot = take_slot(std::move(fn), nullptr);
  heap_insert(Key{at, 0, next_seq_++, slot});
}

EventHandle EventQueue::schedule(TimeNs at, EventFn fn) {
  check_future(at);  // validate before drawing from the pool
  EventHandle::State* state;
  if (!state_free_.empty()) {
    state = state_free_.back();
    state_free_.pop_back();
  } else {
    state = &state_slab_.emplace_back();
  }
  const std::uint32_t slot = take_slot(std::move(fn), state);
  heap_insert(Key{at, 0, next_seq_++, slot});
#ifndef NDEBUG
  return EventHandle(state, state->gen, alive_);
#else
  return EventHandle(state, state->gen);
#endif
}

bool EventQueue::run_one() {
  const Key top = heap_[0];
  Entry& e = slab_[top.slot];
  if (e.state != nullptr && e.state->cancelled) {
    // Reap a cancelled entry: recycle state + slot, count nothing.
    recycle_state(e.state);
    e.state = nullptr;
    e.fn = EventFn();
    slot_free_.push_back(top.slot);
    heap_pop_top();
    return false;
  }
  // Detach the callable and free the slot BEFORE invoking it — the event
  // may schedule new work, reallocating the slab and heap underneath us.
  EventFn fn = std::move(e.fn);
  EventHandle::State* state = e.state;
  e.state = nullptr;
  slot_free_.push_back(top.slot);
  heap_pop_top();
  now_ = top.at;
  // Advance the generation before running: outstanding handles read
  // "no longer pending" from inside the callback, and a cancel() issued
  // there (or any time later) cannot touch the recycled slot.
  if (state != nullptr) recycle_state(state);
  ++executed_;
  fn();
  return true;
}

std::uint64_t EventQueue::run_window(TimeNs last, std::uint64_t max_events,
                                     const std::atomic<bool>* interrupt) {
  std::uint64_t ran = 0;
  while (!heap_.empty() && !stop_requested_) {
    if (ran >= max_events) break;
    if (interrupt != nullptr && interrupt->load(std::memory_order_relaxed)) {
      break;
    }
    if (heap_[0].at > last) break;
    if (run_one()) ++ran;
  }
  return ran;
}

void EventQueue::inbox_put(CrossMsg msg) {
  const std::lock_guard<std::mutex> lock(inbox_mutex_);
  inbox_.push_back(std::move(msg));
  inbox_flag_.store(true, std::memory_order_release);
}

bool EventQueue::drain_inbox() {
  if (!inbox_flag_.load(std::memory_order_acquire)) return false;
  {
    const std::lock_guard<std::mutex> lock(inbox_mutex_);
    drain_scratch_.swap(inbox_);
    inbox_flag_.store(false, std::memory_order_release);
  }
  for (CrossMsg& m : drain_scratch_) {
    check_future(m.at);
    const std::uint32_t slot = take_slot(std::move(m.fn), nullptr);
    // The (src, seq) stamp IS the heap order — no drain-time sort, and the
    // merged order cannot depend on which barrier drained which message.
    heap_insert(Key{m.at, 1 + static_cast<std::uint64_t>(m.src), m.seq, slot});
  }
  const bool drained = !drain_scratch_.empty();
  drain_scratch_.clear();  // keeps capacity for the next barrier
  return drained;
}

}  // namespace dmn::sim
