#include "sim/event_queue.h"

#include <stdexcept>
#include <string>

namespace dmn::sim {

void EventQueue::push(TimeNs at, EventFn fn,
                      std::shared_ptr<EventHandle::State> state) {
  if (at < now_) {
    throw std::logic_error(
        "sim: cannot schedule into the past: at=" + std::to_string(at) +
        " ns < now=" + std::to_string(now_) + " ns (queue " +
        std::to_string(index_) + ")");
  }
  push_entry(Entry{at, next_seq_++, std::move(fn), std::move(state)});
}

bool EventQueue::run_one() {
  Entry entry = pop_entry();
  if (entry.state != nullptr && entry.state->cancelled) return false;
  now_ = entry.at;
  if (entry.state != nullptr) entry.state->done = true;
  ++executed_;
  entry.fn();
  return true;
}

std::uint64_t EventQueue::run_window(TimeNs last, std::uint64_t max_events,
                                     const std::atomic<bool>* interrupt) {
  std::uint64_t ran = 0;
  while (!heap_.empty() && !stop_requested_) {
    if (ran >= max_events) break;
    if (interrupt != nullptr && interrupt->load(std::memory_order_relaxed)) {
      break;
    }
    if (heap_.front().at > last) break;
    if (run_one()) ++ran;
  }
  return ran;
}

void EventQueue::inbox_put(CrossMsg msg) {
  const std::lock_guard<std::mutex> lock(inbox_mutex_);
  inbox_.push_back(std::move(msg));
}

void EventQueue::drain_inbox() {
  std::vector<CrossMsg> msgs;
  {
    const std::lock_guard<std::mutex> lock(inbox_mutex_);
    msgs.swap(inbox_);
  }
  if (msgs.empty()) return;
  std::sort(msgs.begin(), msgs.end(),
            [](const CrossMsg& a, const CrossMsg& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.src != b.src) return a.src < b.src;
              return a.seq < b.seq;
            });
  for (CrossMsg& m : msgs) push(m.at, std::move(m.fn), nullptr);
}

bool EventQueue::inbox_pending() {
  const std::lock_guard<std::mutex> lock(inbox_mutex_);
  return !inbox_.empty();
}

}  // namespace dmn::sim
