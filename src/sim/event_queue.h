#pragma once
// One partition's slice of the discrete-event kernel: a time-ordered event
// heap with its own clock, plus a mutex-protected inbox for events posted
// from other partitions.
//
// Events scheduled for the same tick run in FIFO order of scheduling
// (stable), which keeps protocol state machines deterministic. Cancellation
// is lazy: cancel() flags the event and the run loop skips flagged entries.
//
// The queue is allocation-free on the hot path:
//  * event callables live in fixed inline storage inside the queue entry
//    (EventFn below) — no heap allocation unless a capture exceeds the
//    inline capacity, which no call site in this codebase does;
//  * cancellation state is allocated lazily: post_at()/post_in() are
//    fire-and-forget and carry no state at all, while schedule_at()/
//    schedule_in() allocate the shared EventHandle state the caller keeps.
//
// Threading contract: a queue is only ever touched by one thread at a time —
// its owning worker during a synchronization window, the coordinator between
// windows. The sole exception is inbox_put()/next_cross_seq(), which remote
// partitions may call concurrently under inbox_mutex_; drain_inbox() moves
// the accumulated messages into the heap at a window barrier, sorted by
// (time, source queue, source sequence) so the merged order is a pure
// function of the simulated computation, never of thread scheduling.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/time.h"

namespace dmn::sim {

/// Move-only `void()` callable with inline storage. Callables up to
/// kInlineCapacity bytes (every scheduling lambda in the simulator — the
/// largest captures a SignatureBurst by value) are stored in place; larger
/// ones fall back to a single heap allocation, preserving correctness.
class EventFn {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
      destroy_ = [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); };
    } else {
      // Oversized capture: store a pointer in the buffer instead.
      Fn* heap = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) Fn*(heap);
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn** s = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*s);
      };
      destroy_ = [](void* p) {
        delete *std::launder(reinterpret_cast<Fn**>(p));
      };
    }
  }

  EventFn(EventFn&& other) noexcept
      : invoke_(other.invoke_),
        relocate_(other.relocate_),
        destroy_(other.destroy_) {
    if (relocate_ != nullptr) relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      if (relocate_ != nullptr) relocate_(buf_, other.buf_);
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { invoke_(buf_); }
  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

/// Handle to a scheduled event; may be used to cancel it.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not run, not cancelled).
  bool pending() const { return state_ && !state_->done && !state_->cancelled; }

 private:
  friend class EventQueue;
  friend class Simulator;
  struct State {
    bool cancelled = false;
    bool done = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// "No pending event" sentinel for EventQueue::next_time().
inline constexpr TimeNs kTimeNever = std::numeric_limits<TimeNs>::max();

class EventQueue {
 public:
  explicit EventQueue(std::uint32_t index) : index_(index) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  std::uint32_t index() const { return index_; }
  TimeNs now() const { return now_; }
  void set_now(TimeNs t) { now_ = t; }
  bool empty() const { return heap_.empty(); }
  std::uint64_t executed() const { return executed_; }

  /// Timestamp of the earliest pending event, kTimeNever when empty.
  TimeNs next_time() const { return heap_.empty() ? kTimeNever : heap_.front().at; }

  /// Inserts an event. Throws std::logic_error when `at` lies in this
  /// queue's past — causality violations must be loud even in Release
  /// builds, where all benches run.
  void push(TimeNs at, EventFn fn, std::shared_ptr<EventHandle::State> state);

  /// Pops and executes the earliest pending event; skips (without counting)
  /// a cancelled entry. The caller guarantees the heap is non-empty.
  /// Returns true when an event actually ran.
  bool run_one();

  /// Runs pending events with at <= last, in (at, seq) order, until the
  /// heap drains past the bound, `max_events` have run, stop() was
  /// requested from inside an event, or the interrupt flag reads true.
  /// Returns the number of events executed.
  std::uint64_t run_window(TimeNs last, std::uint64_t max_events,
                           const std::atomic<bool>* interrupt);

  bool stop_requested() const { return stop_requested_; }
  void request_stop() { stop_requested_ = true; }
  void clear_stop() { stop_requested_ = false; }

  /// A cross-partition event, ordered by (at, src queue, src sequence).
  struct CrossMsg {
    TimeNs at;
    std::uint32_t src;
    std::uint64_t seq;
    EventFn fn;
  };

  /// Appends a message from another partition (thread-safe).
  void inbox_put(CrossMsg msg);

  /// Next per-source sequence number for cross-partition sends originating
  /// from THIS queue (called by the owning thread only).
  std::uint64_t next_cross_seq() { return cross_seq_++; }

  /// Moves accumulated inbox messages into the heap in deterministic
  /// (at, src, seq) order. Barrier-only: the caller must be the queue's
  /// sole executor. push() throws if a message lands in the past.
  void drain_inbox();

  /// True when inbox_put() calls are pending a drain (barrier-only).
  bool inbox_pending();

 private:
  friend class Simulator;

  struct Entry {
    TimeNs at;
    std::uint64_t seq;  // tie-break: FIFO within a tick
    EventFn fn;
    std::shared_ptr<EventHandle::State> state;  // null for post_at events
  };
  /// Min-heap order on (at, seq) — strict total order, so the pop sequence
  /// is identical regardless of heap internals.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void push_entry(Entry e) {
    heap_.push_back(std::move(e));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  Entry pop_entry() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    return e;
  }

  std::uint32_t index_;
  std::vector<Entry> heap_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::uint64_t cross_seq_ = 0;
  std::mutex inbox_mutex_;
  std::vector<CrossMsg> inbox_;
};

}  // namespace dmn::sim
