#pragma once
// One partition's slice of the discrete-event kernel: a time-ordered event
// heap with its own clock, plus a mutex-protected inbox for events posted
// from other partitions.
//
// Events scheduled for the same tick run in FIFO order of scheduling
// (stable), which keeps protocol state machines deterministic. Cancellation
// is lazy: cancel() flags the event and the run loop skips flagged entries.
//
// The queue is allocation-free on the hot path:
//  * event callables live in fixed inline storage inside a slab entry
//    (EventFn below) — no heap allocation unless a capture exceeds the
//    inline capacity, which no call site in this codebase does;
//  * the heap itself is a 4-ary min-heap of 24-byte POD keys; callables sit
//    in a stable slab addressed by slot index, so sift operations move
//    small PODs instead of 100-byte entries with relocation callbacks;
//  * cancellation state is pooled: schedule() hands out generation-stamped
//    State slots from a per-queue free list, recycled the moment the event
//    runs or its cancelled corpse is popped — no shared_ptr, no allocation
//    after the pool warms up. post_at()/post_in() carry no state at all.
//
// Event order within a queue is the strict total order
//   (at, lane, seq)  with  lane 0 = locally scheduled events (seq = FIFO
//   push order) and lane 1+src = cross-partition messages (seq = per-source
//   send sequence).
// Putting the cross-partition (source, sequence) pair directly into the
// heap key — rather than assigning drain-time FIFO numbers — makes the
// merged order a pure function of the simulated computation, independent of
// which synchronization barrier happened to drain which message. That is
// what lets the adaptive window protocol (sim/simulator.h) merge or split
// barrier batches freely without perturbing results.
//
// Threading contract: a queue is only ever touched by one thread at a time —
// its owning worker during a synchronization window, the coordinator between
// windows. The sole exception is inbox_put()/inbox_pending(), which remote
// partitions may call concurrently (mutex-protected vector plus a lock-free
// "pending" flag for the barrier's idle check); drain_inbox() moves the
// accumulated messages into the heap at a window barrier.
//
// Lifetime contract: an EventHandle borrows pooled state owned by its
// queue, so handles must not be used after the owning Simulator is
// destroyed (they were previously shared_ptr-backed and outlived it; no
// call site relied on that). Debug builds enforce this: each handle carries
// a weak reference to its queue's liveness token, and pending()/cancel()
// assert on a dead owner. Release handles stay two raw words.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/time.h"

namespace dmn::sim {

/// Move-only `void()` callable with inline storage. Callables up to
/// kInlineCapacity bytes (every scheduling lambda in the simulator — the
/// largest captures a SignatureBurst by value) are stored in place; larger
/// ones fall back to a single heap allocation, preserving correctness.
class EventFn {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      };
      destroy_ = [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); };
    } else {
      // Oversized capture: store a pointer in the buffer instead.
      Fn* heap = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) Fn*(heap);
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      relocate_ = [](void* dst, void* src) {
        Fn** s = std::launder(reinterpret_cast<Fn**>(src));
        ::new (dst) Fn*(*s);
      };
      destroy_ = [](void* p) {
        delete *std::launder(reinterpret_cast<Fn**>(p));
      };
    }
  }

  EventFn(EventFn&& other) noexcept
      : invoke_(other.invoke_),
        relocate_(other.relocate_),
        destroy_(other.destroy_) {
    if (relocate_ != nullptr) relocate_(buf_, other.buf_);
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
    other.destroy_ = nullptr;
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      if (relocate_ != nullptr) relocate_(buf_, other.buf_);
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
      other.destroy_ = nullptr;
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  void operator()() { invoke_(buf_); }
  explicit operator bool() const { return invoke_ != nullptr; }

 private:
  void reset() {
    if (destroy_ != nullptr) destroy_(buf_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void* dst, void* src) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

/// Handle to a scheduled event; may be used to cancel it. Backed by pooled,
/// generation-stamped state inside the owning queue: when the event runs
/// (or its cancelled entry is reaped) the slot's generation advances and
/// every outstanding handle to it becomes inert — pending() turns false and
/// cancel() a no-op — even after the slot is reused for a newer event.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event is still pending (not run, not cancelled).
  bool pending() const {
    assert_owner_alive();
    return state_ != nullptr && state_->gen == gen_ && !state_->cancelled;
  }

 private:
  friend class EventQueue;
  friend class Simulator;
  struct State {
    std::uint64_t gen = 0;
    bool cancelled = false;
  };
#ifndef NDEBUG
  EventHandle(State* s, std::uint64_t gen, std::weak_ptr<const void> alive)
      : state_(s), gen_(gen), alive_(std::move(alive)) {}
#else
  EventHandle(State* s, std::uint64_t gen) : state_(s), gen_(gen) {}
#endif
  /// Debug enforcement of the lifetime contract (file-top comment): trips
  /// when a handle is dereferenced after its owning queue — and hence its
  /// Simulator — was destroyed, instead of reading freed pool memory.
  void assert_owner_alive() const {
#ifndef NDEBUG
    assert((state_ == nullptr || !alive_.expired()) &&
           "EventHandle used after its owning Simulator was destroyed");
#endif
  }
  State* state_ = nullptr;
  std::uint64_t gen_ = 0;
#ifndef NDEBUG
  std::weak_ptr<const void> alive_;
#endif
};

/// "No pending event" sentinel for EventQueue::next_time().
inline constexpr TimeNs kTimeNever = std::numeric_limits<TimeNs>::max();

class EventQueue {
 public:
  explicit EventQueue(std::uint32_t index) : index_(index) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  std::uint32_t index() const { return index_; }
  TimeNs now() const { return now_; }
  void set_now(TimeNs t) { now_ = t; }
  bool empty() const { return heap_.empty(); }
  std::uint64_t executed() const { return executed_; }

  /// Timestamp of the earliest pending event, kTimeNever when empty.
  TimeNs next_time() const { return heap_.empty() ? kTimeNever : heap_[0].at; }

  /// Inserts a fire-and-forget event (no cancellation state). Throws
  /// std::logic_error when `at` lies in this queue's past — causality
  /// violations must be loud even in Release builds, where all benches run.
  void push(TimeNs at, EventFn fn);

  /// Inserts a cancellable event and returns its handle. The cancellation
  /// state comes from the queue's pooled free list — no allocation once the
  /// pool has warmed up. The handle borrows that pooled state: it must not
  /// be used after the owning Simulator is destroyed (asserted in debug
  /// builds).
  EventHandle schedule(TimeNs at, EventFn fn);

  /// Cancel a pending event; no-op if already run, reaped, or cancelled.
  static void cancel(EventHandle& h) {
    h.assert_owner_alive();
    if (h.state_ != nullptr && h.state_->gen == h.gen_) {
      h.state_->cancelled = true;
    }
  }

  /// Pops and executes the earliest pending event; skips (without counting)
  /// a cancelled entry. The caller guarantees the heap is non-empty.
  /// Returns true when an event actually ran.
  bool run_one();

  /// Runs pending events with at <= last, in (at, lane, seq) order, until
  /// the heap drains past the bound, `max_events` have run, stop() was
  /// requested from inside an event, or the interrupt flag reads true.
  /// Returns the number of events executed.
  std::uint64_t run_window(TimeNs last, std::uint64_t max_events,
                           const std::atomic<bool>* interrupt);

  bool stop_requested() const { return stop_requested_; }
  void request_stop() { stop_requested_ = true; }
  void clear_stop() { stop_requested_ = false; }

  /// A cross-partition event, ordered by (at, src queue, src sequence).
  struct CrossMsg {
    TimeNs at;
    std::uint32_t src;
    std::uint64_t seq;
    EventFn fn;
  };

  /// Appends a message from another partition (thread-safe) and raises the
  /// lock-free pending flag the barrier's idle check reads.
  void inbox_put(CrossMsg msg);

  /// Next per-source sequence number for cross-partition sends originating
  /// from THIS queue (called by the owning thread only).
  std::uint64_t next_cross_seq() { return cross_seq_++; }

  /// Moves accumulated inbox messages into the heap. Their (at, src, seq)
  /// execution order is encoded directly in the heap key, so the result is
  /// independent of which barrier drained which message. Barrier-only: the
  /// caller must be the queue's sole executor. Throws if a message lands in
  /// the past. Returns true when any message moved (i.e. next_time() may
  /// have changed).
  bool drain_inbox();

  /// True when inbox_put() calls are pending a drain. Lock-free: a relaxed
  /// flag raised by inbox_put and cleared by drain_inbox, so per-barrier
  /// idle checks cost one atomic load instead of a mutex round trip.
  bool inbox_pending() const {
    return inbox_flag_.load(std::memory_order_acquire);
  }

 private:
  friend class Simulator;

  /// Heap key: the strict total order (at, lane, seq). 4-ary layout — the
  /// shallower tree does fewer cache-missing compares per sift than the
  /// binary std::push_heap/pop_heap it replaces, and moves 24-byte PODs
  /// instead of full entries.
  struct Key {
    TimeNs at;
    std::uint64_t lane;  // 0 = local FIFO; 1 + src for cross messages
    std::uint64_t seq;
    std::uint32_t slot;  // index into slab_

    bool before(const Key& o) const {
      if (at != o.at) return at < o.at;
      if (lane != o.lane) return lane < o.lane;
      return seq < o.seq;
    }
  };
  struct Entry {
    EventFn fn;
    EventHandle::State* state = nullptr;  // null for post_at events
  };

  void check_future(TimeNs at) const;
  std::uint32_t take_slot(EventFn fn, EventHandle::State* state);
  void heap_insert(Key k);
  /// Removes heap_[0]; the caller has already copied it.
  void heap_pop_top();
  void recycle_state(EventHandle::State* s) {
    ++s->gen;
    s->cancelled = false;
    state_free_.push_back(s);
  }

  std::uint32_t index_;
  std::vector<Key> heap_;
  std::vector<Entry> slab_;
  std::vector<std::uint32_t> slot_free_;
  std::deque<EventHandle::State> state_slab_;  // stable addresses
  std::vector<EventHandle::State*> state_free_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  std::uint64_t cross_seq_ = 0;
  std::mutex inbox_mutex_;
  std::vector<CrossMsg> inbox_;
  std::vector<CrossMsg> drain_scratch_;  // reused across drains, no alloc
  std::atomic<bool> inbox_flag_{false};
#ifndef NDEBUG
  // Liveness token for the debug-only EventHandle owner check; dies with
  // the queue, flipping every outstanding handle's weak reference.
  std::shared_ptr<const void> alive_ = std::make_shared<int>(0);
#endif
};

}  // namespace dmn::sim
