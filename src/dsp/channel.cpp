#include "dsp/channel.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dmn::dsp {

void add_awgn(std::vector<Cplx>& x, double noise_power, Rng& rng) {
  if (noise_power <= 0.0) return;
  const double sigma = std::sqrt(noise_power / 2.0);
  for (Cplx& c : x) {
    c += Cplx(rng.normal(0.0, sigma), rng.normal(0.0, sigma));
  }
}

void apply_frequency_offset(std::vector<Cplx>& x, double offset_subcarriers,
                            std::size_t fft_size) {
  if (offset_subcarriers == 0.0) return;
  const double step = 2.0 * std::numbers::pi * offset_subcarriers /
                      static_cast<double>(fft_size);
  for (std::size_t n = 0; n < x.size(); ++n) {
    const double phase = step * static_cast<double>(n);
    x[n] *= Cplx(std::cos(phase), std::sin(phase));
  }
}

void scale_to_power(std::vector<Cplx>& x, double target_power) {
  const double p = mean_power(x);
  if (p <= 0.0) return;
  const double factor = std::sqrt(target_power / p);
  scale_amplitude(x, factor);
}

void scale_amplitude(std::vector<Cplx>& x, double factor) {
  for (Cplx& c : x) c *= factor;
}

void clip(std::vector<Cplx>& x, double limit) {
  for (Cplx& c : x) {
    c = Cplx(std::clamp(c.real(), -limit, limit),
             std::clamp(c.imag(), -limit, limit));
  }
}

std::vector<Cplx> delay_samples(std::span<const Cplx> x, std::size_t delay) {
  std::vector<Cplx> out(x.size(), Cplx(0.0, 0.0));
  for (std::size_t i = delay; i < x.size(); ++i) out[i] = x[i - delay];
  return out;
}

}  // namespace dmn::dsp
