#include "dsp/fft.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace dmn::dsp {
namespace {

void transform(std::vector<Cplx>& x, bool inverse) {
  const std::size_t n = x.size();
  assert(is_pow2(n));
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Cplx wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = x[i + k];
        const Cplx v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (Cplx& c : x) c *= inv;
  }
}

}  // namespace

bool is_pow2(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft(std::vector<Cplx>& x) { transform(x, /*inverse=*/false); }

void ifft(std::vector<Cplx>& x) { transform(x, /*inverse=*/true); }

std::vector<Cplx> fft_copy(std::span<const Cplx> x) {
  std::vector<Cplx> out(x.begin(), x.end());
  fft(out);
  return out;
}

std::vector<Cplx> ifft_copy(std::span<const Cplx> x) {
  std::vector<Cplx> out(x.begin(), x.end());
  ifft(out);
  return out;
}

double mean_power(std::span<const Cplx> x) {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const Cplx& c : x) acc += std::norm(c);
  return acc / static_cast<double>(x.size());
}

}  // namespace dmn::dsp
