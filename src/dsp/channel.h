#pragma once
// Baseband channel impairments used by the signal-level experiments:
// AWGN, carrier-frequency offset, sample-timing offset, amplitude scaling,
// and ADC clipping (saturation).
//
// These are the impairments §3.1 of the paper identifies as the practical
// obstacles to ROP: frequency offset breaking subcarrier orthogonality,
// imperfect client synchronization, and limited ADC resolution.

#include <span>
#include <vector>

#include "dsp/fft.h"
#include "util/rng.h"

namespace dmn::dsp {

/// Adds complex AWGN with total noise power `noise_power` (variance split
/// evenly between I and Q) to `x`.
void add_awgn(std::vector<Cplx>& x, double noise_power, Rng& rng);

/// Applies a carrier frequency offset of `offset_subcarriers` (fraction of
/// one subcarrier spacing) across `fft_size`-sample symbols.
/// x[n] *= exp(j*2*pi*offset*n/fft_size).
void apply_frequency_offset(std::vector<Cplx>& x, double offset_subcarriers,
                            std::size_t fft_size);

/// Scales the signal so its mean power becomes `target_power`.
void scale_to_power(std::vector<Cplx>& x, double target_power);

/// Multiplies by a linear amplitude factor.
void scale_amplitude(std::vector<Cplx>& x, double factor);

/// Clips I and Q independently to [-limit, limit] — an ideal ADC with
/// full-scale `limit` and unbounded resolution below it.
void clip(std::vector<Cplx>& x, double limit);

/// Integer-sample delay (prepends zeros, keeps length by truncating tail).
std::vector<Cplx> delay_samples(std::span<const Cplx> x, std::size_t delay);

}  // namespace dmn::dsp
