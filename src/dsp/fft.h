#pragma once
// Radix-2 iterative FFT/IFFT for power-of-two sizes.
//
// Used by the ROP signal-level simulation (256-point symbols) and by the
// Gold-code correlator benches. Double precision; no external dependencies.

#include <complex>
#include <span>
#include <vector>

namespace dmn::dsp {

using Cplx = std::complex<double>;

/// True if n is a power of two (n >= 1).
bool is_pow2(std::size_t n);

/// In-place forward FFT. `x.size()` must be a power of two.
void fft(std::vector<Cplx>& x);

/// In-place inverse FFT (normalized by 1/N).
void ifft(std::vector<Cplx>& x);

/// Out-of-place convenience wrappers.
std::vector<Cplx> fft_copy(std::span<const Cplx> x);
std::vector<Cplx> ifft_copy(std::span<const Cplx> x);

/// Mean squared magnitude of a sample vector (average power).
double mean_power(std::span<const Cplx> x);

}  // namespace dmn::dsp
