#include "omni/omniscient.h"

#include <algorithm>

namespace dmn::omni {

OmniNodeMac::OmniNodeMac(sim::Simulator& sim, phy::Medium& medium,
                         topo::NodeId node, const mac::WifiParams& params,
                         mac::DeliveryFn deliver)
    : sim_(sim),
      radio_(medium, node, this),
      params_(params),
      deliver_(std::move(deliver)),
      queue_(params.queue_capacity) {}

bool OmniNodeMac::enqueue(traffic::Packet p) {
  p.enqueued = sim_.now();
  return queue_.push(std::move(p));
}

void OmniNodeMac::on_frame_rx(const phy::Frame& frame,
                              const phy::RxInfo& info) {
  if (!info.decoded) return;
  if (frame.type != phy::FrameType::kData) return;
  if (frame.dst != radio_.node() || !frame.packet.has_value()) return;
  deliver_(*frame.packet, radio_.node(), sim_.now());
}

OmniscientScheduler::OmniscientScheduler(sim::Simulator& sim,
                                         phy::Medium& medium,
                                         const topo::ConflictGraph& graph,
                                         const mac::WifiParams& params,
                                         std::vector<OmniNodeMac*> nodes)
    : sim_(sim),
      medium_(medium),
      graph_(graph),
      params_(params),
      nodes_(std::move(nodes)),
      rand_(graph) {}

void OmniscientScheduler::start(TimeNs at) {
  sim_.post_at(at, [this] { run_slot(); });
}

TimeNs OmniscientScheduler::slot_duration(std::size_t payload_bytes) const {
  // Genie overhead: just the frame plus a SIFS turnaround guard.
  return params_.data_airtime(payload_bytes) + params_.sifs;
}

std::size_t OmniscientScheduler::link_demand(topo::LinkId l) const {
  const topo::Link& link = graph_.link(l);
  const OmniNodeMac* n = nodes_.at(static_cast<std::size_t>(link.sender));
  return n == nullptr ? 0 : n->queue().count_for(link.receiver);
}

void OmniscientScheduler::run_slot() {
  std::vector<std::size_t> demand(graph_.num_links());
  for (std::size_t i = 0; i < demand.size(); ++i) {
    demand[i] = link_demand(static_cast<topo::LinkId>(i));
  }
  const std::vector<topo::LinkId> chosen = rand_.schedule_slot(demand);

  std::size_t max_payload = 0;
  for (topo::LinkId l : chosen) {
    const topo::Link& link = graph_.link(l);
    OmniNodeMac* n = nodes_.at(static_cast<std::size_t>(link.sender));
    auto pkt = n->queue().pop_for(link.receiver);
    if (!pkt) continue;
    max_payload = std::max(max_payload, pkt->bytes);
    phy::Frame f;
    f.type = phy::FrameType::kData;
    f.dst = link.receiver;
    f.bytes = pkt->bytes + params_.mac_header_bytes;
    f.duration = params_.data_airtime(pkt->bytes);
    f.packet_id = pkt->id;
    f.packet = std::move(*pkt);
    n->radio().send(f);
  }

  // Idle slots poll again quickly (the genie notices new arrivals at once).
  const TimeNs next = chosen.empty() || max_payload == 0
                          ? params_.slot_time
                          : slot_duration(max_payload);
  sim_.post_in(next, [this] { run_slot(); });
}

}  // namespace dmn::omni
