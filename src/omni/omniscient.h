#pragma once
// The omniscient strict scheduler — the genie upper bound of Figure 2.
//
// A central brain with perfect time synchronization and instantaneous
// knowledge of every queue (AP *and* client) runs the RAND greedy scheduler
// each slot and fires all chosen transmitters simultaneously. No polling,
// no signatures, no backbone jitter, no ACK overhead: the only airtime cost
// is the data frame plus a SIFS guard. Transmissions still traverse the
// SINR medium, so an (impossible) bad schedule would still collide.

#include <memory>
#include <vector>

#include "domino/rand_scheduler.h"
#include "mac/mac_common.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/conflict_graph.h"
#include "traffic/queue.h"

namespace dmn::omni {

/// Per-node queue holder + receiver.
class OmniNodeMac final : public mac::MacEntity, public phy::MediumClient {
 public:
  OmniNodeMac(sim::Simulator& sim, phy::Medium& medium, topo::NodeId node,
              const mac::WifiParams& params, mac::DeliveryFn deliver);

  bool enqueue(traffic::Packet p) override;
  std::size_t queue_size() const override { return queue_.size(); }

  void on_frame_rx(const phy::Frame& frame, const phy::RxInfo& info) override;

  traffic::PacketQueue& queue() { return queue_; }
  const traffic::PacketQueue& queue() const { return queue_; }
  phy::Transceiver& radio() { return radio_; }

 private:
  sim::Simulator& sim_;
  phy::Transceiver radio_;
  mac::WifiParams params_;
  mac::DeliveryFn deliver_;
  traffic::PacketQueue queue_;
};

class OmniscientScheduler {
 public:
  OmniscientScheduler(sim::Simulator& sim, phy::Medium& medium,
                      const topo::ConflictGraph& graph,
                      const mac::WifiParams& params,
                      std::vector<OmniNodeMac*> nodes);

  /// Begins the slotted loop at `at`.
  void start(TimeNs at);

  TimeNs slot_duration(std::size_t payload_bytes) const;

 private:
  void run_slot();
  std::size_t link_demand(topo::LinkId l) const;

  sim::Simulator& sim_;
  phy::Medium& medium_;
  const topo::ConflictGraph& graph_;
  mac::WifiParams params_;
  std::vector<OmniNodeMac*> nodes_;  // indexed by NodeId
  domino::RandScheduler rand_;
};

}  // namespace dmn::omni
