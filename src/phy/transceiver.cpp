#include "phy/transceiver.h"

#include <cmath>

namespace dmn::phy {

TimeNs frame_airtime(std::size_t bytes, double rate_bps) {
  constexpr double kPlcpUs = 20.0;       // preamble + PLCP header
  constexpr double kSymbolUs = 4.0;      // OFDM symbol
  const double bits_per_symbol = rate_bps * kSymbolUs * 1e-6;
  const double payload_bits = 16.0 + 8.0 * static_cast<double>(bytes) + 6.0;
  const double symbols = std::ceil(payload_bits / bits_per_symbol);
  return usec(kPlcpUs + symbols * kSymbolUs);
}

}  // namespace dmn::phy
