#include "phy/signature_model.h"

#include <algorithm>

namespace dmn::phy {

double SignatureDetectionModel::detect_probability(int combined_total,
                                                   double sinr_db) const {
  if (combined_total <= 0) return 0.0;
  double base;
  if (combined_total <= 7) {
    base = p_by_count[combined_total];
  } else {
    base = std::max(0.0, p_by_count[7] - beyond_decay *
                                             (combined_total - 7));
  }
  double sinr_scale;
  if (sinr_db >= full_sinr_db) {
    sinr_scale = 1.0;
  } else if (sinr_db <= zero_sinr_db) {
    sinr_scale = 0.0;
  } else {
    sinr_scale = (sinr_db - zero_sinr_db) / (full_sinr_db - zero_sinr_db);
  }
  return base * sinr_scale;
}

bool SignatureDetectionModel::sample_detect(int combined_total, double sinr_db,
                                            Rng& rng) const {
  return rng.chance(detect_probability(combined_total, sinr_db));
}

bool SignatureDetectionModel::sample_false_positive(Rng& rng) const {
  return rng.chance(false_positive_rate);
}

}  // namespace dmn::phy
