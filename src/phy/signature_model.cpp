#include "phy/signature_model.h"

#include <algorithm>
#include <vector>

#include "gold/correlator.h"

namespace dmn::phy {

double SignatureDetectionModel::detect_probability(int combined_total,
                                                   double sinr_db) const {
  if (combined_total <= 0) return 0.0;
  double base;
  if (combined_total <= 7) {
    base = p_by_count[combined_total];
  } else {
    base = std::max(0.0, p_by_count[7] - beyond_decay *
                                             (combined_total - 7));
  }
  double sinr_scale;
  if (sinr_db >= full_sinr_db) {
    sinr_scale = 1.0;
  } else if (sinr_db <= zero_sinr_db) {
    sinr_scale = 0.0;
  } else {
    sinr_scale = (sinr_db - zero_sinr_db) / (full_sinr_db - zero_sinr_db);
  }
  return base * sinr_scale;
}

bool SignatureDetectionModel::sample_detect(int combined_total, double sinr_db,
                                            Rng& rng) const {
  return rng.chance(detect_probability(combined_total, sinr_db));
}

bool SignatureDetectionModel::sample_false_positive(Rng& rng) const {
  return rng.chance(false_positive_rate);
}

SignatureDetectionModel fit_signature_model(const gold::CorrelatorBank& bank,
                                            std::size_t trials_per_count,
                                            double noise_power, Rng& rng) {
  SignatureDetectionModel model;
  const std::size_t node_codes =
      std::min<std::size_t>(gold::kMaxNodesPerDomain, bank.set().size());
  std::size_t fp = 0;
  std::size_t fp_trials = 0;
  std::vector<gold::DetectionResult> results;
  for (int count = 1; count <= 7; ++count) {
    std::size_t ok = 0;
    for (std::size_t t = 0; t < trials_per_count; ++t) {
      gold::BurstSender sender;
      for (int k = 0; k < count; ++k) {
        sender.codes.push_back(
            (t * 13 + static_cast<std::size_t>(k) * 29) % (node_codes - 27));
      }
      sender.chip_offset = static_cast<std::size_t>(rng.uniform_int(0, 3));
      sender.phase_rad = rng.uniform(0.0, 6.283185307179586);
      const std::vector<gold::BurstSender> senders = {sender};
      const auto rx = synthesize_burst(bank, senders, noise_power, 16, rng);
      // Target probe plus a guaranteed-absent probe in one bank pass.
      const std::size_t absent = node_codes - 10 + (t % 10);
      const std::size_t probes[2] = {sender.codes[0], absent};
      bank.detect_many(rx, probes, results);
      if (results[0].detected) ++ok;
      if (results[1].detected) ++fp;
      ++fp_trials;
    }
    model.p_by_count[count] =
        static_cast<double>(ok) / static_cast<double>(trials_per_count);
  }
  model.false_positive_rate =
      static_cast<double>(fp) / static_cast<double>(fp_trials);
  return model;
}

}  // namespace dmn::phy
