#pragma once
// MAC-level signature detection model.
//
// The chip-level Gold correlator study (src/gold, reproduced in
// bench_fig09_signature) yields the curve the paper measures in Figure 9:
// detection is essentially perfect while the total number of signatures
// combined on the air is <= 4 and falls off beyond; false positives stay
// below 1 %. The trace-driven MAC simulation consumes that fitted curve
// here — exactly how the paper feeds its USRP measurements into ns-3.
//
// Correlation adds ~10*log10(127) = 21 dB of processing gain, so signatures
// remain detectable far below the packet-decode SINR; the model rolls off
// linearly between `full_sinr_db` and `zero_sinr_db`.

#include <cstddef>

#include "gold/correlator_bank.h"
#include "util/rng.h"

namespace dmn::phy {

struct SignatureDetectionModel {
  /// Detection probability by total combined signature count, at good SINR.
  /// Index 0 unused; counts beyond 7 extrapolate downward.
  double p_by_count[8] = {0.0, 0.999, 0.999, 0.998, 0.995,
                          0.93, 0.82,  0.68};
  double beyond_decay = 0.12;     // per extra signature past 7
  double full_sinr_db = -10.0;    // full detection probability above this
  double zero_sinr_db = -21.0;    // no detection below this (processing gain)
  double false_positive_rate = 0.005;  // < 1 % (paper §3.2)

  /// Probability that one target signature inside a burst of
  /// `combined_total` signatures is detected at `sinr_db`.
  double detect_probability(int combined_total, double sinr_db) const;

  /// Bernoulli sample of detect_probability.
  bool sample_detect(int combined_total, double sinr_db, Rng& rng) const;

  /// Bernoulli sample of a false positive for one correlator in one slot.
  bool sample_false_positive(Rng& rng) const;
};

/// Chip-accurate calibration: re-measures p_by_count (and the
/// false-positive rate) by running trigger-burst trials through a
/// CorrelatorBank — the same procedure that produced the baked Figure 9
/// curve, available so the fitted MAC-level model can be re-derived (or
/// cross-checked) from the signal level instead of trusted blindly. SINR
/// rolloff parameters keep their defaults (they encode processing gain,
/// not burst mixing).
SignatureDetectionModel fit_signature_model(const gold::CorrelatorBank& bank,
                                            std::size_t trials_per_count,
                                            double noise_power, Rng& rng);

}  // namespace dmn::phy
