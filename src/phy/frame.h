#pragma once
// Over-the-air frame types shared by every MAC scheme.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topo/node.h"
#include "traffic/packet.h"
#include "util/time.h"

namespace dmn::phy {

enum class FrameType {
  kData,         // MAC data frame (UDP/TCP payload or TCP ACK-as-data)
  kAck,          // link-layer ACK
  kFakeHeader,   // DOMINO fake packet: header only (§3.3)
  kPoll,         // ROP polling broadcast from an AP
  kRopResponse,  // client's one-OFDM-symbol queue report
  kSignature,    // combined Gold-signature trigger burst
};

/// Number of FrameType values (flat per-type counter arrays index by this).
inline constexpr std::size_t kFrameTypeCount = 6;

const char* to_string(FrameType t);

/// What a signature burst carries (kSignature frames only).
struct SignatureBurst {
  /// Gold-code indices combined in this burst (node signatures).
  std::vector<std::size_t> codes;
  /// Followed by the START signature S' (normal slot boundary)...
  bool start_signature = false;
  /// ...or by the ROP signature (next slot is a polling slot, §3.3).
  bool rop_signature = false;
  /// Instruction-only (client_instruction field): "you transmit again in
  /// the next slot". A client scheduled in consecutive slots cannot listen
  /// for its own signature while bursting, so its AP — which holds the
  /// schedule — tells it to continue directly. One bit riding the frame
  /// that already carries the S1 samples (Figure 8).
  bool continue_next = false;
  /// Recovery kick (AP restarting a silent uplink): timed off-lattice, so
  /// listeners must not treat it as a slot-timing reference.
  bool recovery = false;
};

struct Frame {
  FrameType type = FrameType::kData;
  topo::NodeId src = topo::kNoNode;
  /// Unicast destination, or kNoNode for broadcast.
  topo::NodeId dst = topo::kNoNode;
  std::size_t bytes = 0;    // MAC-level size (header + payload)
  TimeNs duration = 0;      // airtime; set by the sender

  /// kData / kFakeHeader: the carried MAC payload (absent for control
  /// frames). Carried by value — frames are small and short-lived.
  std::optional<traffic::Packet> packet;
  std::uint64_t packet_id = 0;  // ACK matching / duplicate filtering
  bool is_retry = false;

  /// kSignature payload.
  std::optional<SignatureBurst> burst;

  /// DOMINO: signature samples the AP hands its client to rebroadcast at
  /// the slot's signature phase (S1 in Figure 8); rides data frames (AP->C)
  /// or ACKs (C->AP).
  std::optional<SignatureBurst> client_instruction;

  /// DOMINO: global slot index this frame belongs to / triggers.
  /// Physically implicit in chain position; carried explicitly here and
  /// used for passive re-anchoring ("last correctly received trigger as
  /// time reference") and the misalignment statistics.
  std::uint64_t slot_tag = 0;

  /// kRopResponse payload: the client's encoded queue report and assigned
  /// subchannel.
  unsigned queue_report = 0;
  std::size_t subchannel = 0;

  /// NAV: how long others should defer beyond this frame (paper §5 uses it
  /// to protect the contention-free period from external nodes).
  TimeNs nav = 0;
};

}  // namespace dmn::phy
