#pragma once
// Per-node radio handle: a thin facade over the Medium that a MAC entity
// owns. Keeps the MAC code free of node-id bookkeeping and centralizes the
// 802.11g OFDM airtime arithmetic.

#include "phy/frame.h"
#include "phy/medium.h"

namespace dmn::phy {

/// 802.11g OFDM airtime: 20 us PLCP preamble+header, then
/// ceil((16 service + 8*bytes + 6 tail) / bits-per-symbol) 4 us symbols.
TimeNs frame_airtime(std::size_t bytes, double rate_bps);

class Transceiver {
 public:
  Transceiver(Medium& medium, topo::NodeId node, MediumClient* client)
      : medium_(medium), node_(node) {
    medium_.attach(node, client);
  }

  topo::NodeId node() const { return node_; }

  /// Fills src and transmits.
  void send(Frame frame) {
    frame.src = node_;
    medium_.transmit(frame);
  }

  bool carrier_busy() const { return medium_.carrier_busy(node_); }
  bool virtual_busy() const { return medium_.virtual_busy(node_); }
  bool transmitting() const { return medium_.transmitting(node_); }

  Medium& medium() { return medium_; }

 private:
  Medium& medium_;
  topo::NodeId node_;
};

}  // namespace dmn::phy
