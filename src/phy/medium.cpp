#include "phy/medium.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "util/units.h"

namespace {
/// Frame-level trace for debugging, enabled with DMN_MEDIUM_TRACE=1.
bool medium_trace_enabled() {
  static const bool on = []() {
    const char* v = std::getenv("DMN_MEDIUM_TRACE");
    return v != nullptr && v[0] == '1';
  }();
  return on;
}
}  // namespace

namespace dmn::phy {

Medium::Medium(sim::Simulator& sim, const topo::Topology& topo)
    : sim_(sim),
      topo_(topo),
      clients_(topo.num_nodes(), nullptr),
      inbound_mw_(topo.num_nodes(), 0.0),
      rop_inbound_mw_(topo.num_nodes(), 0.0),
      tx_count_(topo.num_nodes(), 0),
      cs_busy_(topo.num_nodes(), false),
      nav_until_(topo.num_nodes(), 0),
      cs_threshold_mw_(dbm_to_mw(topo.thresholds().cs_threshold_dbm)),
      noise_mw_(dbm_to_mw(topo.thresholds().noise_floor_dbm)) {}

void Medium::attach(topo::NodeId node, MediumClient* client) {
  if (!is_member(node)) {
    throw std::logic_error("medium: attach of node " + std::to_string(node) +
                           " outside this medium's partition");
  }
  clients_.at(static_cast<std::size_t>(node)) = client;
}

void Medium::restrict_to_nodes(std::vector<topo::NodeId> members) {
  std::sort(members.begin(), members.end());
  member_mask_.assign(topo_.num_nodes(), false);
  for (const topo::NodeId id : members) {
    member_mask_.at(static_cast<std::size_t>(id)) = true;
  }
  // No cross-partition airtime coupling: every audible neighbor of a member
  // must itself be a member, otherwise a transmission here would deposit
  // decodable power on a node simulated elsewhere.
  for (const topo::NodeId id : members) {
    for (const topo::NodeId nb : topo_.audible_from(id)) {
      if (!member_mask_[static_cast<std::size_t>(nb)]) {
        throw std::logic_error(
            "medium: partition not closed under audibility: node " +
            std::to_string(id) + " hears non-member " + std::to_string(nb));
      }
    }
  }
  members_ = std::move(members);
}

double Medium::decode_threshold_db(FrameType t) const {
  switch (t) {
    case FrameType::kData:
      return topo_.thresholds().sinr_data_db;
    case FrameType::kAck:
    case FrameType::kFakeHeader:
    case FrameType::kPoll:
    case FrameType::kRopResponse:
      return topo_.thresholds().sinr_control_db;
    case FrameType::kSignature:
      // Signatures are detected by correlation, not decoding; the SINR
      // handling for them lives in SignatureDetectionModel. The threshold
      // here only gates the "delivered at all" callback, so keep it at the
      // processing-gain-adjusted floor.
      return -21.0;  // 10*log10(127) below the control threshold (approx)
  }
  // All FrameType values are handled above; reaching here is memory
  // corruption, not a missing case.
  __builtin_unreachable();
}

std::uint32_t Medium::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Medium::apply_tx_power(const ActiveTx& tx, double sign) {
  // Auditor self-test defect: leave half the row behind on removal, the way
  // a missed bookkeeping path would (audit::Mutation::kMediumLeakPower).
  if (test_power_leak_ && sign < 0.0) sign = -0.5;
  // The diagonal of the linear-power matrix is exactly 0 mW (rss of a node
  // to itself is -inf dBm), so adding the whole row is a no-op for the
  // transmitter itself — matching the reference accounting that skipped
  // the own-source term.
  const auto row = topo_.rss_mw_row(tx.frame.src);
  double* inbound = inbound_mw_.data();
  if (members_.empty()) {
    const std::size_t n = inbound_mw_.size();
    for (std::size_t i = 0; i < n; ++i) inbound[i] += sign * row[i];
    if (tx.rop) {
      double* rop = rop_inbound_mw_.data();
      for (std::size_t i = 0; i < n; ++i) rop[i] += sign * row[i];
    }
  } else {
    // Partition-restricted medium: only member sums are maintained (power
    // on any non-member is sub-audible by the closure invariant). This is
    // the main algorithmic win of partitioning — O(partition) instead of
    // O(topology) per transmission edge.
    double* rop = rop_inbound_mw_.data();
    for (const topo::NodeId id : members_) {
      const auto i = static_cast<std::size_t>(id);
      inbound[i] += sign * row[i];
      if (tx.rop) rop[i] += sign * row[i];
    }
  }
  // Quiescence resets incremental sums to exactly zero, so add/remove
  // rounding residues cannot accumulate across the simulation.
  if (active_.empty()) {
    if (members_.empty()) {
      std::fill(inbound_mw_.begin(), inbound_mw_.end(), 0.0);
      std::fill(rop_inbound_mw_.begin(), rop_inbound_mw_.end(), 0.0);
    } else {
      for (const topo::NodeId id : members_) {
        inbound_mw_[static_cast<std::size_t>(id)] = 0.0;
        rop_inbound_mw_[static_cast<std::size_t>(id)] = 0.0;
      }
    }
  }
}

double Medium::interference_at(topo::NodeId node,
                               const ActiveTx& victim) const {
  const auto n = static_cast<std::size_t>(node);
  double acc = external_intf_mw_ + inbound_mw_[n];
  if (victim.rop) {
    // ROP responses are mutually orthogonal: exclude every concurrent ROP
    // contribution (the victim's own is part of that sum).
    acc -= rop_inbound_mw_[n];
  } else {
    acc -= topo_.rss_mw(victim.frame.src, node);
  }
  // Subtraction can leave a tiny negative residue when the victim is the
  // only contributor; interference is physically non-negative.
  return acc > 0.0 ? acc : 0.0;
}

void Medium::refresh_interference_and_cs() {
  // Update worst-case interference for every in-flight reception.
  for (const std::uint32_t slot : active_) {
    ActiveTx& tx = slab_[slot];
    for (RxAttempt& rx : tx.rx) {
      const double intf = interference_at(rx.node, tx);
      if (intf > rx.max_intf_mw) rx.max_intf_mw = intf;
      if (transmitting(rx.node)) rx.half_duplex_loss = true;
    }
  }
  // Edge-triggered CS notifications. The comparison happens in linear
  // power against the precomputed threshold (equivalent to the dBm
  // comparison by monotonicity of the conversion).
  auto check_cs = [this](std::size_t i) {
    const bool busy = tx_count_[i] > 0 ||
                      external_intf_mw_ + inbound_mw_[i] >= cs_threshold_mw_;
    if (busy != cs_busy_[i]) {
      cs_busy_[i] = busy;
      if (clients_[i] != nullptr) clients_[i]->on_cs_change(busy);
    }
  };
  if (members_.empty()) {
    const std::size_t n = clients_.size();
    for (std::size_t i = 0; i < n; ++i) check_cs(i);
  } else {
    for (const topo::NodeId id : members_) {
      check_cs(static_cast<std::size_t>(id));
    }
  }
  if (observer_ != nullptr) observer_->on_medium_accounting();
}

void Medium::transmit(const Frame& frame) {
  assert(frame.duration > 0 && "frame duration must be set");
  assert(frame.src != topo::kNoNode);
  if (!is_member(frame.src)) {
    throw std::logic_error("medium: transmit by node " +
                           std::to_string(frame.src) +
                           " outside this medium's partition");
  }
  const std::uint32_t slot = alloc_slot();
  ActiveTx& tx = slab_[slot];
  tx.frame = frame;
  tx.start = sim_.now();
  tx.end = sim_.now() + frame.duration;
  tx.rop = frame.type == FrameType::kRopResponse;
  tx.rx.clear();
  ++sent_[static_cast<std::size_t>(frame.type)];

  // Create reception attempts at every node that can hear the frame and is
  // not transmitting right now. The audible list is precomputed (ascending
  // id order) from the receiver-sensitivity threshold.
  for (const topo::NodeId id : topo_.audible_from(frame.src)) {
    if (clients_[static_cast<std::size_t>(id)] == nullptr) continue;
    RxAttempt rx;
    rx.node = id;
    rx.rss_mw = topo_.rss_mw(frame.src, id);
    rx.max_intf_mw = 0.0;
    rx.half_duplex_loss = transmitting(id);
    tx.rx.push_back(rx);
  }

  // NAV: nodes that hear the frame defer beyond its end. Applied at start
  // (header is early in the frame).
  if (frame.nav > 0) {
    for (const RxAttempt& rx : tx.rx) {
      nav_until_[static_cast<std::size_t>(rx.node)] =
          std::max(nav_until_[static_cast<std::size_t>(rx.node)],
                   tx.end + frame.nav);
    }
  }

  if (medium_trace_enabled()) {
    std::fprintf(stderr, "%10.1f TX %-4s %d->%d tag=%llu dur=%.1f\n",
                 to_usec(sim_.now()), to_string(frame.type), frame.src,
                 frame.dst, static_cast<unsigned long long>(frame.slot_tag),
                 to_usec(frame.duration));
  }

  active_.push_back(slot);
  ++tx_count_[static_cast<std::size_t>(frame.src)];
  apply_tx_power(tx, +1.0);
  refresh_interference_and_cs();
  if (observer_ != nullptr) observer_->on_medium_tx(tx.frame, tx.start, tx.end);

  sim_.post_at(tx.end, [this, slot] { on_tx_end(slot); });
}

void Medium::on_tx_end(std::uint32_t slot) {
  ActiveTx& tx = slab_[slot];
  // One final interference refresh (captures transmissions that started and
  // are still running).
  for (RxAttempt& rx : tx.rx) {
    const double intf = interference_at(rx.node, tx);
    if (intf > rx.max_intf_mw) rx.max_intf_mw = intf;
    if (transmitting(rx.node)) rx.half_duplex_loss = true;
  }

  active_.erase(std::find(active_.begin(), active_.end(), slot));
  --tx_count_[static_cast<std::size_t>(tx.frame.src)];
  apply_tx_power(tx, -1.0);
  refresh_interference_and_cs();

  const double th = decode_threshold_db(tx.frame.type);
  for (const RxAttempt& rx : tx.rx) {
    MediumClient* client = clients_[static_cast<std::size_t>(rx.node)];
    if (client == nullptr) continue;
    RxInfo info;
    info.rss_dbm = mw_to_dbm(rx.rss_mw);
    info.min_sinr_db = ratio_to_db(rx.rss_mw / (noise_mw_ + rx.max_intf_mw));
    info.half_duplex_loss = rx.half_duplex_loss;
    info.decoded = !rx.half_duplex_loss && info.min_sinr_db >= th;
    if (medium_trace_enabled() && tx.frame.dst == rx.node && !info.decoded) {
      std::fprintf(stderr, "%10.1f RXFAIL %-4s %d->%d sinr=%.1f hd=%d\n",
                   to_usec(sim_.now()), to_string(tx.frame.type),
                   tx.frame.src, tx.frame.dst, info.min_sinr_db,
                   info.half_duplex_loss ? 1 : 0);
    }
    // Clients may reentrantly transmit() from this callback; the slab is a
    // deque, so `tx` stays valid, and `slot` is not on the free list yet.
    client->on_frame_rx(tx.frame, info);
  }
  free_slots_.push_back(slot);
}

bool Medium::carrier_busy(topo::NodeId node) const {
  const auto n = static_cast<std::size_t>(node);
  if (tx_count_[n] > 0) return true;
  return external_intf_mw_ + inbound_mw_[n] >= cs_threshold_mw_;
}

bool Medium::virtual_busy(topo::NodeId node) const {
  if (carrier_busy(node)) return true;
  return nav_until_.at(static_cast<std::size_t>(node)) > sim_.now();
}

void Medium::set_external_interference_mw(double mw) {
  if (mw == external_intf_mw_) return;
  external_intf_mw_ = mw;
  // A burst edge mid-frame must count toward every in-flight reception's
  // worst-case interference and may flip carrier sense.
  refresh_interference_and_cs();
}

}  // namespace dmn::phy
