#include "phy/medium.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "util/units.h"

namespace {
/// Frame-level trace for debugging, enabled with DMN_MEDIUM_TRACE=1.
bool medium_trace_enabled() {
  static const bool on = []() {
    const char* v = std::getenv("DMN_MEDIUM_TRACE");
    return v != nullptr && v[0] == '1';
  }();
  return on;
}
}  // namespace

namespace dmn::phy {

Medium::Medium(sim::Simulator& sim, const topo::Topology& topo)
    : sim_(sim),
      topo_(topo),
      clients_(topo.num_nodes(), nullptr),
      cs_busy_(topo.num_nodes(), false),
      nav_until_(topo.num_nodes(), 0) {}

void Medium::attach(topo::NodeId node, MediumClient* client) {
  clients_.at(static_cast<std::size_t>(node)) = client;
}

double Medium::decode_threshold_db(FrameType t) const {
  switch (t) {
    case FrameType::kData:
      return topo_.thresholds().sinr_data_db;
    case FrameType::kAck:
    case FrameType::kFakeHeader:
    case FrameType::kPoll:
    case FrameType::kRopResponse:
      return topo_.thresholds().sinr_control_db;
    case FrameType::kSignature:
      // Signatures are detected by correlation, not decoding; the SINR
      // handling for them lives in SignatureDetectionModel. The threshold
      // here only gates the "delivered at all" callback, so keep it at the
      // processing-gain-adjusted floor.
      return -21.0;  // 10*log10(127) below the control threshold (approx)
  }
  return topo_.thresholds().sinr_data_db;
}

bool Medium::rop_orthogonal(const Frame& a, const Frame& b) const {
  return a.type == FrameType::kRopResponse &&
         b.type == FrameType::kRopResponse;
}

double Medium::rx_power_sum_mw(topo::NodeId node) const {
  double acc = external_intf_mw_;
  for (const auto& tx : active_) {
    if (tx->frame.src == node) continue;
    acc += dbm_to_mw(topo_.rss(tx->frame.src, node));
  }
  return acc;
}

double Medium::interference_at(topo::NodeId node,
                               const ActiveTx& victim) const {
  double acc = external_intf_mw_;
  for (const auto& tx : active_) {
    if (tx.get() == &victim) continue;
    if (tx->frame.src == node) continue;  // own tx handled as half-duplex
    if (rop_orthogonal(tx->frame, victim.frame)) continue;
    acc += dbm_to_mw(topo_.rss(tx->frame.src, node));
  }
  return acc;
}

void Medium::refresh_interference_and_cs() {
  // Update worst-case interference for every in-flight reception.
  for (const auto& tx : active_) {
    for (RxAttempt& rx : tx->rx) {
      const double intf = interference_at(rx.node, *tx);
      rx.max_intf_mw = std::max(rx.max_intf_mw, intf);
      if (transmitting(rx.node)) rx.half_duplex_loss = true;
    }
  }
  // Edge-triggered CS notifications.
  for (std::size_t n = 0; n < clients_.size(); ++n) {
    const auto id = static_cast<topo::NodeId>(n);
    const bool busy =
        transmitting(id) ||
        mw_to_dbm(rx_power_sum_mw(id)) >= topo_.thresholds().cs_threshold_dbm;
    if (busy != cs_busy_[n]) {
      cs_busy_[n] = busy;
      if (clients_[n] != nullptr) clients_[n]->on_cs_change(busy);
    }
  }
}

void Medium::transmit(const Frame& frame) {
  assert(frame.duration > 0 && "frame duration must be set");
  assert(frame.src != topo::kNoNode);
  auto tx = std::make_shared<ActiveTx>();
  tx->frame = frame;
  tx->start = sim_.now();
  tx->end = sim_.now() + frame.duration;
  ++sent_[frame.type];

  // Create reception attempts at every node that can hear the frame and is
  // not transmitting right now.
  for (std::size_t n = 0; n < clients_.size(); ++n) {
    const auto id = static_cast<topo::NodeId>(n);
    if (id == frame.src || clients_[n] == nullptr) continue;
    const double rss = topo_.rss(frame.src, id);
    if (rss < topo_.thresholds().min_rss_dbm) continue;
    RxAttempt rx;
    rx.node = id;
    rx.rss_mw = dbm_to_mw(rss);
    rx.max_intf_mw = 0.0;
    rx.half_duplex_loss = transmitting(id);
    tx->rx.push_back(rx);
  }

  // NAV: nodes that hear the frame defer beyond its end. Applied at start
  // (header is early in the frame).
  if (frame.nav > 0) {
    for (const RxAttempt& rx : tx->rx) {
      nav_until_[static_cast<std::size_t>(rx.node)] =
          std::max(nav_until_[static_cast<std::size_t>(rx.node)],
                   tx->end + frame.nav);
    }
  }

  if (medium_trace_enabled()) {
    std::fprintf(stderr, "%10.1f TX %-4s %d->%d tag=%llu dur=%.1f\n",
                 to_usec(sim_.now()), to_string(frame.type), frame.src,
                 frame.dst, static_cast<unsigned long long>(frame.slot_tag),
                 to_usec(frame.duration));
  }

  active_.push_back(tx);
  refresh_interference_and_cs();

  sim_.schedule_at(tx->end, [this, tx] { on_tx_end(tx); });
}

void Medium::on_tx_end(std::shared_ptr<ActiveTx> tx) {
  // One final interference refresh (captures transmissions that started and
  // are still running).
  for (RxAttempt& rx : tx->rx) {
    rx.max_intf_mw = std::max(rx.max_intf_mw, interference_at(rx.node, *tx));
    if (transmitting(rx.node)) rx.half_duplex_loss = true;
  }

  active_.erase(std::remove(active_.begin(), active_.end(), tx),
                active_.end());
  refresh_interference_and_cs();

  const double noise_mw = dbm_to_mw(topo_.thresholds().noise_floor_dbm);
  const double th = decode_threshold_db(tx->frame.type);
  for (const RxAttempt& rx : tx->rx) {
    MediumClient* client = clients_.at(static_cast<std::size_t>(rx.node));
    if (client == nullptr) continue;
    RxInfo info;
    info.rss_dbm = mw_to_dbm(rx.rss_mw);
    info.min_sinr_db = ratio_to_db(rx.rss_mw / (noise_mw + rx.max_intf_mw));
    info.half_duplex_loss = rx.half_duplex_loss;
    info.decoded = !rx.half_duplex_loss && info.min_sinr_db >= th;
    if (medium_trace_enabled() && tx->frame.dst == rx.node &&
        !info.decoded) {
      std::fprintf(stderr, "%10.1f RXFAIL %-4s %d->%d sinr=%.1f hd=%d\n",
                   to_usec(sim_.now()), to_string(tx->frame.type),
                   tx->frame.src, tx->frame.dst, info.min_sinr_db,
                   info.half_duplex_loss ? 1 : 0);
    }
    client->on_frame_rx(tx->frame, info);
  }
}

bool Medium::carrier_busy(topo::NodeId node) const {
  if (transmitting(node)) return true;
  return mw_to_dbm(rx_power_sum_mw(node)) >=
         topo_.thresholds().cs_threshold_dbm;
}

bool Medium::transmitting(topo::NodeId node) const {
  for (const auto& tx : active_) {
    if (tx->frame.src == node) return true;
  }
  return false;
}

bool Medium::virtual_busy(topo::NodeId node) const {
  if (carrier_busy(node)) return true;
  return nav_until_.at(static_cast<std::size_t>(node)) > sim_.now();
}

std::uint64_t Medium::frames_sent(FrameType t) const {
  const auto it = sent_.find(t);
  return it == sent_.end() ? 0 : it->second;
}

void Medium::set_external_interference_mw(double mw) {
  if (mw == external_intf_mw_) return;
  external_intf_mw_ = mw;
  // A burst edge mid-frame must count toward every in-flight reception's
  // worst-case interference and may flip carrier sense.
  refresh_interference_and_cs();
}

}  // namespace dmn::phy
