#pragma once
// The shared wireless medium: SINR-based reception with full interference
// tracking, carrier-sense notifications, and half-duplex enforcement.
//
// Model (ns-3 Yans-class fidelity, which is what the paper's evaluation
// uses):
//  * every active transmission contributes rss(src, n) to the power seen at
//    each node n;
//  * a node carrier-senses busy when transmitting or when the sum of
//    received powers exceeds the CS threshold;
//  * a frame decodes at a node iff the node held the frame's whole duration
//    without transmitting and min-SINR over the duration (desired power over
//    noise + worst concurrent interference) clears the threshold for the
//    frame class;
//  * kRopResponse frames of a common poll do not interfere with each other
//    (they occupy orthogonal OFDM subchannels); their subchannel-level
//    interactions are judged by rop::RopLinkModel at the AP instead;
//  * propagation delay is folded into slot/CP margins (<= 1 us at WLAN
//    ranges), as in the paper.
//
// Implementation: interference accounting is incremental. Each node carries
// a running inbound-power sum (and a parallel sum restricted to ROP
// responses, for the orthogonality exclusion) updated with one add per node
// on every TX start/end from the topology's precomputed linear-power row.
// The interference seen by an in-flight reception is then derived in O(1)
// as sum minus the victim's own contribution, instead of re-summing all
// active transmissions per node per edge. Active transmissions live in a
// slab with a free list (stable storage, recycled RxAttempt capacity), and
// TX-end events are posted fire-and-forget, so a transmission allocates
// nothing in steady state. docs/PERFORMANCE.md lists the invariants this
// accounting preserves relative to the scratch-recompute reference
// (pinned by tests/golden_test.cpp).

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "phy/frame.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace dmn::phy {

struct RxInfo {
  double rss_dbm = 0.0;
  double min_sinr_db = 0.0;
  /// SINR cleared the decode threshold and the receiver stayed listening.
  bool decoded = false;
  /// Receiver was transmitting at some point during the frame.
  bool half_duplex_loss = false;
};

/// Implemented by MAC entities. Callbacks run inside simulator events.
class MediumClient {
 public:
  virtual ~MediumClient() = default;

  /// Called at frame end for every frame whose RSS reached this node's
  /// sensitivity (decoded or not). Also called for the node's own frames
  /// with info.decoded == false (self-rx suppressed by MACs as needed).
  virtual void on_frame_rx(const Frame& frame, const RxInfo& info) = 0;

  /// Carrier-sense transitions (edge-triggered).
  virtual void on_cs_change(bool /*busy*/) {}
};

/// Passive audit seam (src/audit). Callbacks run inside simulator events,
/// after the medium finished updating its own state; implementations must
/// not transmit or mutate the medium. Null observer = zero cost beyond one
/// pointer test per transmission.
class MediumObserver {
 public:
  virtual ~MediumObserver() = default;

  /// A transmission entered the air (after accounting was updated).
  virtual void on_medium_tx(const Frame& frame, TimeNs start, TimeNs end) = 0;

  /// The incremental accounting changed (TX start/end, external
  /// interference change) and has been refreshed.
  virtual void on_medium_accounting() = 0;
};

class Medium {
 public:
  Medium(sim::Simulator& sim, const topo::Topology& topo);

  /// Registers the MAC entity for a node. One client per node.
  void attach(topo::NodeId node, MediumClient* client);

  /// Partitioned runs give each interference partition its own Medium and
  /// attach only that partition's nodes. Restricting pins the member set:
  /// power/CS accounting sweeps only members, and attach()/transmit() by a
  /// non-member throw. The set must be closed under audibility — no audible
  /// edge may leave it — which is verified here; this is the kernel's
  /// "no cross-partition airtime coupling" assertion. Power a member's
  /// transmission would deposit on a non-member is below receiver
  /// sensitivity by construction and is dropped from the sums (documented
  /// idealization: sub-audible power also stops contributing to non-member
  /// carrier-sense/interference aggregates).
  void restrict_to_nodes(std::vector<topo::NodeId> members);

  /// Restricted member list (ascending); empty when unrestricted.
  const std::vector<topo::NodeId>& member_nodes() const { return members_; }

  /// Starts transmitting `frame` (frame.duration must be set). The frame is
  /// delivered to listeners at now() + duration.
  void transmit(const Frame& frame);

  /// True if `node` senses the channel busy (own TX counts).
  bool carrier_busy(topo::NodeId node) const;

  /// True if `node` is currently transmitting.
  bool transmitting(topo::NodeId node) const {
    return tx_count_[static_cast<std::size_t>(node)] > 0;
  }

  /// NAV-aware busy: carrier busy OR virtual carrier (NAV) active.
  bool virtual_busy(topo::NodeId node) const;

  const topo::Topology& topology() const { return topo_; }
  sim::Simulator& simulator() { return sim_; }

  /// Cumulative frame counts by type (diagnostics).
  std::uint64_t frames_sent(FrameType t) const {
    return sent_[static_cast<std::size_t>(t)];
  }

  /// External interference power (mW) received at every node — a wideband
  /// interferer outside the system (fault injection). Counts toward carrier
  /// sense and toward the interference term of every in-flight reception
  /// from the moment it changes; setting it refreshes all SINR tracking.
  void set_external_interference_mw(double mw);
  double external_interference_mw() const { return external_intf_mw_; }

  // ---- audit seam -------------------------------------------------------
  // Read-only views of the incremental accounting so an auditor can diff it
  // against a from-scratch recompute (src/audit/audit.cpp).

  void set_observer(MediumObserver* obs) { observer_ = obs; }

  /// Visits every active transmission: fn(frame, start, end, is_rop).
  template <typename Fn>
  void visit_active_tx(Fn&& fn) const {
    for (std::uint32_t slot : active_) {
      const ActiveTx& tx = slab_[slot];
      fn(tx.frame, tx.start, tx.end, tx.rop);
    }
  }
  std::size_t active_tx_count() const { return active_.size(); }
  double inbound_mw(topo::NodeId n) const {
    return inbound_mw_[static_cast<std::size_t>(n)];
  }
  double rop_inbound_mw(topo::NodeId n) const {
    return rop_inbound_mw_[static_cast<std::size_t>(n)];
  }
  std::uint32_t tx_count(topo::NodeId n) const {
    return tx_count_[static_cast<std::size_t>(n)];
  }
  /// The cached edge-triggered carrier-sense state (not recomputed).
  bool cs_busy_cached(topo::NodeId n) const {
    return cs_busy_[static_cast<std::size_t>(n)];
  }
  double cs_threshold_mw() const { return cs_threshold_mw_; }

  /// Test-only defect (audit::Mutation::kMediumLeakPower): TX end removes
  /// only half of the transmission's power row, corrupting the running sums
  /// the way a missed/double bookkeeping bug would.
  void set_test_power_leak(bool on) { test_power_leak_ = on; }

 private:
  struct RxAttempt {
    topo::NodeId node;
    double rss_mw;
    double max_intf_mw;       // worst concurrent interference seen
    bool half_duplex_loss;
  };
  struct ActiveTx {
    Frame frame;
    TimeNs start = 0;
    TimeNs end = 0;
    bool rop = false;  // frame.type == kRopResponse (orthogonality class)
    std::vector<RxAttempt> rx;
  };

  std::uint32_t alloc_slot();
  void on_tx_end(std::uint32_t slot);
  /// Sweeps worst-case interference for all in-flight receptions and
  /// re-evaluates edge-triggered carrier sense, after any accounting change.
  void refresh_interference_and_cs();
  /// O(1) interference at `node` against `victim`, derived from the running
  /// per-node sums (sum minus the victim's own contribution; for ROP
  /// victims, minus all concurrent ROP contributions).
  double interference_at(topo::NodeId node, const ActiveTx& victim) const;
  /// Adds (sign = +1) or removes (sign = -1) a transmission's power row
  /// from the per-node sums.
  void apply_tx_power(const ActiveTx& tx, double sign);
  double decode_threshold_db(FrameType t) const;

  bool is_member(topo::NodeId node) const {
    return member_mask_.empty() || member_mask_[static_cast<std::size_t>(node)];
  }

  sim::Simulator& sim_;
  const topo::Topology& topo_;
  std::vector<topo::NodeId> members_;  // empty = all nodes
  std::vector<bool> member_mask_;      // empty = all nodes
  std::vector<MediumClient*> clients_;
  MediumObserver* observer_ = nullptr;
  bool test_power_leak_ = false;

  // Slab of transmissions: deque gives stable references across growth; a
  // free list recycles slots (and their RxAttempt vector capacity).
  std::deque<ActiveTx> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> active_;  // slot ids, insertion order

  // Incremental per-node accounting.
  std::vector<double> inbound_mw_;      // sum of active contributions
  std::vector<double> rop_inbound_mw_;  // same, kRopResponse sources only
  std::vector<std::uint32_t> tx_count_;   // active transmissions per node
  std::vector<bool> cs_busy_;
  std::vector<TimeNs> nav_until_;
  std::array<std::uint64_t, kFrameTypeCount> sent_{};
  double external_intf_mw_ = 0.0;
  double cs_threshold_mw_;  // thresholds().cs_threshold_dbm, linear
  double noise_mw_;         // thresholds().noise_floor_dbm, linear
};

}  // namespace dmn::phy
