#include "phy/frame.h"

namespace dmn::phy {

const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kData: return "DATA";
    case FrameType::kAck: return "ACK";
    case FrameType::kFakeHeader: return "FAKE";
    case FrameType::kPoll: return "POLL";
    case FrameType::kRopResponse: return "ROP";
    case FrameType::kSignature: return "SIG";
  }
  return "?";
}

}  // namespace dmn::phy
