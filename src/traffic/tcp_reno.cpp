#include "traffic/tcp_reno.h"

#include <algorithm>
#include <cmath>

namespace dmn::traffic {

TcpSender::TcpSender(sim::Simulator& sim, Flow flow, const TcpParams& params,
                     PacketIdGen& ids, EnqueueFn enqueue_to_mac)
    : sim_(sim),
      flow_(flow),
      params_(params),
      ids_(ids),
      enqueue_(std::move(enqueue_to_mac)),
      cwnd_(params.initial_cwnd),
      ssthresh_(params.initial_ssthresh),
      rto_(params.min_rto) {
  saturated_ = params_.app_rate_bps <= 0.0;
  if (!saturated_) {
    app_interval_ = static_cast<TimeNs>(
        std::llround(8.0 * static_cast<double>(params_.mss_bytes) /
                     params_.app_rate_bps * 1e9));
    if (app_interval_ <= 0) app_interval_ = 1;
  }
}

void TcpSender::start(TimeNs at) {
  if (saturated_) {
    app_event_ = sim_.schedule_at(at, [this] { try_send(); });
  } else {
    app_event_ = sim_.schedule_at(at, [this] { app_tick(); });
  }
}

void TcpSender::app_tick() {
  ++app_produced_;
  try_send();
  app_event_ = sim_.schedule_in(app_interval_, [this] { app_tick(); });
}

void TcpSender::try_send() {
  const std::uint64_t window_end =
      snd_una_ + static_cast<std::uint64_t>(std::min(cwnd_, params_.max_cwnd));
  while (next_seq_ < window_end &&
         (saturated_ || next_seq_ < app_produced_)) {
    send_segment(next_seq_, /*retransmit=*/false);
    ++next_seq_;
  }
}

void TcpSender::send_segment(std::uint64_t seq, bool retransmit) {
  Packet p;
  p.id = ids_.next();
  p.flow = flow_.id;
  p.src = flow_.src;
  p.dst = flow_.dst;
  p.bytes = params_.mss_bytes;
  p.created = sim_.now();
  p.enqueued = sim_.now();
  p.tcp_seq = seq;

  if (retransmit) {
    ++retransmits_;
    was_retransmitted_.insert(seq);
    send_time_.erase(seq);  // Karn: never sample retransmitted segments
  } else if (!was_retransmitted_.contains(seq)) {
    send_time_[seq] = sim_.now();
  }
  enqueue_(std::move(p));  // MAC drop shows up as loss; TCP recovers it
  arm_rto();
}

void TcpSender::arm_rto() {
  sim_.cancel(rto_event_);
  rto_event_ = sim_.schedule_in(rto_, [this] { on_rto(); });
}

void TcpSender::on_rto() {
  if (snd_una_ >= next_seq_) return;  // nothing outstanding
  ++timeouts_;
  ssthresh_ = std::max(flight() / 2.0, 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  in_recovery_ = false;
  rto_backoff_ = std::min(rto_backoff_ + 1, 4);
  rto_ = std::min<TimeNs>(params_.max_rto, params_.min_rto << rto_backoff_);
  send_segment(snd_una_, /*retransmit=*/true);
  // Go-back-N: everything past the retransmitted segment is resent as the
  // window reopens (classic post-timeout behaviour).
  next_seq_ = snd_una_ + 1;
}

void TcpSender::on_ack(const Packet& ack) {
  const std::uint64_t ack_no = ack.tcp_ack_no;
  if (ack_no > snd_una_) {
    // New data acknowledged.
    const auto it = send_time_.find(ack_no - 1);
    if (it != send_time_.end() &&
        !was_retransmitted_.contains(ack_no - 1)) {
      const double sample = static_cast<double>(sim_.now() - it->second);
      if (srtt_ns_ == 0.0) {
        srtt_ns_ = sample;
        rttvar_ns_ = sample / 2.0;
      } else {
        const double err = sample - srtt_ns_;
        srtt_ns_ += 0.125 * err;
        rttvar_ns_ += 0.25 * (std::abs(err) - rttvar_ns_);
      }
      rto_backoff_ = 0;
      rto_ = std::clamp<TimeNs>(
          static_cast<TimeNs>(srtt_ns_ + 4.0 * rttvar_ns_), params_.min_rto,
          params_.max_rto);
    }
    // Garbage-collect state below the new snd_una.
    for (std::uint64_t s = snd_una_; s < ack_no; ++s) {
      send_time_.erase(s);
      was_retransmitted_.erase(s);
    }
    snd_una_ = ack_no;
    dupacks_ = 0;

    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;  // deflate
      } else {
        // Partial ACK: retransmit the next hole (NewReno-style).
        send_segment(snd_una_, /*retransmit=*/true);
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
    cwnd_ = std::min(cwnd_, params_.max_cwnd);

    if (snd_una_ >= next_seq_) {
      sim_.cancel(rto_event_);  // all data acked
    } else {
      arm_rto();
    }
    try_send();
  } else if (ack_no == snd_una_ && snd_una_ < next_seq_) {
    // Duplicate ACK.
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == 3) {
      ssthresh_ = std::max(flight() / 2.0, 2.0);
      cwnd_ = ssthresh_ + 3.0;
      in_recovery_ = true;
      recover_ = next_seq_;
      send_segment(snd_una_, /*retransmit=*/true);
    } else if (in_recovery_) {
      cwnd_ += 1.0;  // window inflation
      cwnd_ = std::min(cwnd_, params_.max_cwnd);
      try_send();
    }
  }
}

TcpReceiver::TcpReceiver(Flow flow, const TcpParams& params, PacketIdGen& ids,
                         EnqueueFn send_ack,
                         std::function<void(const Packet&)> deliver)
    : flow_(flow),
      params_(params),
      ids_(ids),
      send_ack_(std::move(send_ack)),
      deliver_(std::move(deliver)) {}

void TcpReceiver::on_data(const Packet& p, TimeNs now) {
  if (!delivered_.contains(p.tcp_seq)) {
    delivered_.insert(p.tcp_seq);
    deliver_(p);
  }
  if (p.tcp_seq == rcv_next_) {
    ++rcv_next_;
    while (out_of_order_.contains(rcv_next_)) {
      out_of_order_.erase(rcv_next_);
      ++rcv_next_;
    }
  } else if (p.tcp_seq > rcv_next_) {
    out_of_order_.insert(p.tcp_seq);
  }
  // Cumulative ACK for every data arrival (dupacks drive fast retransmit).
  Packet ack;
  ack.id = ids_.next();
  ack.flow = flow_.id;
  ack.src = flow_.dst;
  ack.dst = flow_.src;
  ack.bytes = params_.ack_bytes;
  ack.created = now;
  ack.enqueued = now;
  ack.tcp_is_ack = true;
  ack.tcp_ack_no = rcv_next_;
  send_ack_(std::move(ack));
}

}  // namespace dmn::traffic
