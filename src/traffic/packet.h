#pragma once
// Packets and flows as the MAC layer sees them.
//
// The paper fixes the data packet size (512 B) and treats every MAC-layer
// payload — including TCP ACKs — as a regular data packet (§4.2.3), which is
// why TCP ACKs burn a whole DOMINO slot. A Packet therefore carries its TCP
// role as metadata rather than as a distinct frame type.

#include <cstdint>

#include "topo/node.h"
#include "util/time.h"

namespace dmn::traffic {

using PacketId = std::uint64_t;
using FlowId = int;

struct Flow {
  FlowId id = -1;
  topo::NodeId src = topo::kNoNode;
  topo::NodeId dst = topo::kNoNode;
};

struct Packet {
  PacketId id = 0;
  FlowId flow = -1;
  topo::NodeId src = topo::kNoNode;
  topo::NodeId dst = topo::kNoNode;
  std::size_t bytes = 512;

  TimeNs created = 0;   // when the application produced it
  TimeNs enqueued = 0;  // when it entered the MAC queue (delay reference)

  // TCP metadata (unused for UDP).
  std::uint64_t tcp_seq = 0;
  std::uint64_t tcp_ack_no = 0;  // cumulative ack carried (ack packets)
  bool tcp_is_ack = false;
};

/// Monotonically increasing packet id source. Partitioned runs use one
/// generator per partition with disjoint base offsets (partition << 44), so
/// ids stay globally unique without cross-partition coordination; the
/// default base preserves the historical single-stream ids 1, 2, 3, ...
class PacketIdGen {
 public:
  explicit PacketIdGen(PacketId base = 0) : last_(base) {}

  PacketId next() { return ++last_; }

 private:
  PacketId last_ = 0;
};

}  // namespace dmn::traffic
