#include "traffic/queue.h"

#include <algorithm>

namespace dmn::traffic {

bool PacketQueue::push(Packet p) {
  if (q_.size() >= capacity_) {
    ++dropped_;
    return false;
  }
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> PacketQueue::pop() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  return p;
}

const Packet* PacketQueue::front() const {
  return q_.empty() ? nullptr : &q_.front();
}

std::optional<Packet> PacketQueue::pop_for(topo::NodeId dst) {
  const auto it = std::find_if(q_.begin(), q_.end(), [dst](const Packet& p) {
    return p.dst == dst;
  });
  if (it == q_.end()) return std::nullopt;
  Packet p = std::move(*it);
  q_.erase(it);
  return p;
}

const Packet* PacketQueue::front_for(topo::NodeId dst) const {
  const auto it = std::find_if(q_.begin(), q_.end(), [dst](const Packet& p) {
    return p.dst == dst;
  });
  return it == q_.end() ? nullptr : &*it;
}

std::size_t PacketQueue::count_for(topo::NodeId dst) const {
  return static_cast<std::size_t>(
      std::count_if(q_.begin(), q_.end(), [dst](const Packet& p) {
        return p.dst == dst;
      }));
}

}  // namespace dmn::traffic
