#include "traffic/packet.h"

// Header-only in practice; this TU anchors the module in the archive.
namespace dmn::traffic {}
