#include "traffic/udp_source.h"

#include <cmath>

namespace dmn::traffic {

UdpSource::UdpSource(sim::Simulator& sim, Flow flow, double rate_bps,
                     std::size_t packet_bytes, PacketIdGen& ids,
                     EnqueueFn enqueue)
    : sim_(sim),
      flow_(flow),
      rate_bps_(rate_bps),
      packet_bytes_(packet_bytes),
      ids_(ids),
      enqueue_(std::move(enqueue)) {
  if (rate_bps_ > 0.0) {
    interval_ = static_cast<TimeNs>(
        std::llround(8.0 * static_cast<double>(packet_bytes_) / rate_bps_ *
                     1e9));
    if (interval_ <= 0) interval_ = 1;
  }
}

void UdpSource::start(TimeNs at) {
  if (rate_bps_ <= 0.0 || running_) return;
  running_ = true;
  next_ = sim_.schedule_at(at, [this] { emit(); });
}

void UdpSource::stop() {
  running_ = false;
  sim_.cancel(next_);
}

void UdpSource::emit() {
  if (!running_) return;
  Packet p;
  p.id = ids_.next();
  p.flow = flow_.id;
  p.src = flow_.src;
  p.dst = flow_.dst;
  p.bytes = packet_bytes_;
  p.created = sim_.now();
  p.enqueued = sim_.now();
  enqueue_(std::move(p));
  next_ = sim_.schedule_in(interval_, [this] { emit(); });
}

}  // namespace dmn::traffic
