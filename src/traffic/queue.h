#pragma once
// Bounded FIFO MAC queue with drop-tail accounting.

#include <cstddef>
#include <deque>
#include <optional>

#include "traffic/packet.h"

namespace dmn::traffic {

class PacketQueue {
 public:
  explicit PacketQueue(std::size_t capacity = 100) : capacity_(capacity) {}

  /// Enqueues; returns false (and counts a drop) when full.
  bool push(Packet p);

  /// Removes and returns the head, if any.
  std::optional<Packet> pop();

  /// Peeks the head (nullptr when empty).
  const Packet* front() const;

  /// Removes the first packet destined to `dst`, if any (DOMINO APs pick by
  /// scheduled destination).
  std::optional<Packet> pop_for(topo::NodeId dst);

  /// First packet destined to `dst` (nullptr if none).
  const Packet* front_for(topo::NodeId dst) const;

  std::size_t size() const { return q_.size(); }
  bool empty() const { return q_.empty(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Number of queued packets for a destination.
  std::size_t count_for(topo::NodeId dst) const;

 private:
  std::size_t capacity_;
  std::deque<Packet> q_;
  std::uint64_t dropped_ = 0;
};

}  // namespace dmn::traffic
