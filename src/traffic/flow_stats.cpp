#include "traffic/flow_stats.h"

namespace dmn::traffic {

void FlowStats::record_delivery(const Packet& p, TimeNs now) {
  // find-then-insert rather than operator[]: on the partitioned kernel's
  // hot path every sourced flow is pre-registered (ensure_flow), so this is
  // a pure read of the map structure — safe under concurrent record_* calls
  // for different flows.
  auto it = flows_.find(p.flow);
  if (it == flows_.end()) it = flows_.try_emplace(p.flow).first;
  PerFlow& f = it->second;
  ++f.count;
  f.bytes += p.bytes;
  f.delay_sum_ns += static_cast<double>(now - p.enqueued);
}

void FlowStats::record_offered(FlowId flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) it = flows_.try_emplace(flow).first;
  ++it->second.offered;
}

std::uint64_t FlowStats::delivered(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.count;
}

std::uint64_t FlowStats::delivered_bytes(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.bytes;
}

std::uint64_t FlowStats::offered(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.offered;
}

double FlowStats::throughput_bps(FlowId flow, TimeNs duration) const {
  if (duration <= 0) return 0.0;
  return 8.0 * static_cast<double>(delivered_bytes(flow)) /
         to_sec(duration);
}

double FlowStats::aggregate_throughput_bps(TimeNs duration) const {
  double acc = 0.0;
  for (const auto& [id, f] : flows_) {
    (void)f;
    acc += throughput_bps(id, duration);
  }
  return acc;
}

double FlowStats::mean_delay_us(FlowId flow) const {
  const auto it = flows_.find(flow);
  if (it == flows_.end() || it->second.count == 0) return 0.0;
  return it->second.delay_sum_ns / static_cast<double>(it->second.count) /
         1000.0;
}

double FlowStats::mean_delay_us_all() const {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& [id, f] : flows_) {
    (void)id;
    sum += f.delay_sum_ns;
    n += f.count;
  }
  if (n == 0) return 0.0;
  return sum / static_cast<double>(n) / 1000.0;
}

std::vector<FlowId> FlowStats::flows() const {
  std::vector<FlowId> out;
  out.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    (void)f;
    out.push_back(id);
  }
  return out;
}

double FlowStats::jain_index(std::span<const double> xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sq = 0.0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

double FlowStats::jain_index_all(TimeNs duration) const {
  std::vector<double> xs;
  xs.reserve(flows_.size());
  for (const auto& [id, f] : flows_) {
    (void)f;
    xs.push_back(throughput_bps(id, duration));
  }
  return jain_index(xs);
}

}  // namespace dmn::traffic
