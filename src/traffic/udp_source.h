#pragma once
// Constant-bit-rate UDP source (the paper's default workload: 10 Mbps per
// direction of 512 B packets, §4.2.1).

#include <functional>

#include "sim/simulator.h"
#include "traffic/packet.h"

namespace dmn::traffic {

/// Hands freshly created packets to the MAC; returns false when the MAC
/// queue dropped the packet (UDP ignores it, TCP treats it as a loss).
using EnqueueFn = std::function<bool(Packet)>;

class UdpSource {
 public:
  /// rate_bps == 0 disables the source. Saturated sources use
  /// make_saturated() on the MAC side instead of a huge rate here.
  UdpSource(sim::Simulator& sim, Flow flow, double rate_bps,
            std::size_t packet_bytes, PacketIdGen& ids, EnqueueFn enqueue);

  void start(TimeNs at);
  void stop();

  const Flow& flow() const { return flow_; }

 private:
  void emit();

  sim::Simulator& sim_;
  Flow flow_;
  double rate_bps_;
  std::size_t packet_bytes_;
  PacketIdGen& ids_;
  EnqueueFn enqueue_;
  TimeNs interval_ = 0;
  bool running_ = false;
  sim::EventHandle next_;
};

}  // namespace dmn::traffic
