#pragma once
// Per-flow delivery accounting and the evaluation metrics: throughput,
// mean packet delay (queued -> delivered, §4.2.4) and Jain's fairness index.

#include <map>
#include <span>
#include <vector>

#include "traffic/packet.h"

namespace dmn::traffic {

class FlowStats {
 public:
  /// Pre-registers a flow's accounting slot. Partitioned runs register
  /// every sourced flow up front so record_* calls from concurrent
  /// partition queues hit existing map nodes and never mutate the map
  /// structure (per-flow counters are only ever touched by the flow's own
  /// partition).
  void ensure_flow(FlowId flow) { flows_.try_emplace(flow); }

  /// Records a successful MAC-level delivery (UDP) or first in-order
  /// arrival (TCP). Delay is measured from Packet::enqueued.
  void record_delivery(const Packet& p, TimeNs now);

  /// Records an application-level offered packet (for loss accounting).
  void record_offered(FlowId flow);

  std::uint64_t delivered(FlowId flow) const;
  std::uint64_t delivered_bytes(FlowId flow) const;
  std::uint64_t offered(FlowId flow) const;

  /// Delivered bits / duration.
  double throughput_bps(FlowId flow, TimeNs duration) const;
  double aggregate_throughput_bps(TimeNs duration) const;

  /// Mean enqueue->delivery delay in microseconds (0 when nothing landed).
  double mean_delay_us(FlowId flow) const;
  double mean_delay_us_all() const;

  std::vector<FlowId> flows() const;

  /// Jain's fairness index over per-flow throughputs:
  /// (sum x)^2 / (n * sum x^2); 1.0 is perfectly fair.
  static double jain_index(std::span<const double> xs);

  /// Jain's index over all flows recorded here.
  double jain_index_all(TimeNs duration) const;

 private:
  struct PerFlow {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t offered = 0;
    double delay_sum_ns = 0.0;
  };
  std::map<FlowId, PerFlow> flows_;
};

}  // namespace dmn::traffic
