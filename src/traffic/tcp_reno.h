#pragma once
// Simplified TCP Reno at packet (MSS) granularity.
//
// Captures what the paper's TCP results depend on: slow start / congestion
// avoidance dynamics driven by delivery rate, triple-dupack fast retransmit,
// RTO with exponential backoff, and — critically — TCP ACKs travelling as
// ordinary MAC data packets that occupy a whole DOMINO slot (§4.2.3).
// Sequence numbers count MSS-sized packets, not bytes.

#include <cstdint>
#include <map>
#include <set>

#include "sim/simulator.h"
#include "traffic/packet.h"
#include "traffic/udp_source.h"

namespace dmn::traffic {

struct TcpParams {
  double app_rate_bps = 10e6;  // application-limited rate; <=0 => saturated
  std::size_t mss_bytes = 512;
  std::size_t ack_bytes = 40;
  double initial_cwnd = 2.0;
  double initial_ssthresh = 64.0;
  double max_cwnd = 64.0;  // receive-window stand-in
  TimeNs min_rto = msec(200);
  TimeNs max_rto = sec(2);
};

class TcpSender {
 public:
  TcpSender(sim::Simulator& sim, Flow flow, const TcpParams& params,
            PacketIdGen& ids, EnqueueFn enqueue_to_mac);

  void start(TimeNs at);

  /// Router calls this when a tcp_is_ack packet for this flow reaches the
  /// flow source.
  void on_ack(const Packet& ack);

  // Introspection for tests.
  double cwnd() const { return cwnd_; }
  double ssthresh() const { return ssthresh_; }
  std::uint64_t snd_una() const { return snd_una_; }
  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t timeouts() const { return timeouts_; }

 private:
  void app_tick();
  void try_send();
  void send_segment(std::uint64_t seq, bool retransmit);
  void arm_rto();
  void on_rto();
  double flight() const {
    return static_cast<double>(next_seq_ - snd_una_);
  }

  sim::Simulator& sim_;
  Flow flow_;
  TcpParams params_;
  PacketIdGen& ids_;
  EnqueueFn enqueue_;

  // App-limited data availability (packets produced so far).
  std::uint64_t app_produced_ = 0;
  TimeNs app_interval_ = 0;
  bool saturated_ = false;

  std::uint64_t next_seq_ = 0;  // next NEW sequence to send
  std::uint64_t snd_una_ = 0;   // oldest unacked
  double cwnd_;
  double ssthresh_;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;

  // RTT estimation (Karn's rule: only first transmissions sampled).
  std::map<std::uint64_t, TimeNs> send_time_;
  std::set<std::uint64_t> was_retransmitted_;
  double srtt_ns_ = 0.0;
  double rttvar_ns_ = 0.0;
  TimeNs rto_;
  int rto_backoff_ = 0;
  sim::EventHandle rto_event_;
  sim::EventHandle app_event_;

  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
};

class TcpReceiver {
 public:
  /// `send_ack` enqueues the generated ACK packet on the reverse path
  /// (receiver's MAC toward the flow source). `deliver` reports each packet
  /// the first time it arrives (counted once for goodput/delay stats).
  TcpReceiver(Flow flow, const TcpParams& params, PacketIdGen& ids,
              EnqueueFn send_ack, std::function<void(const Packet&)> deliver);

  /// Router calls this when a data packet of this flow reaches the flow
  /// destination.
  void on_data(const Packet& p, TimeNs now);

  std::uint64_t rcv_next() const { return rcv_next_; }

 private:
  Flow flow_;
  TcpParams params_;
  PacketIdGen& ids_;
  EnqueueFn send_ack_;
  std::function<void(const Packet&)> deliver_;
  std::uint64_t rcv_next_ = 0;
  std::set<std::uint64_t> out_of_order_;
  std::set<std::uint64_t> delivered_;  // dedup for stats
};

}  // namespace dmn::traffic
