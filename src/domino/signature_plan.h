#pragma once
// Controller-side assignment of Gold-code signatures to nodes (§3.2): every
// node gets a unique code when it joins; two codes are reserved for the
// START signature S' and the ROP signature. One collision domain supports
// 127 nodes with the length-127 set (codes are reusable across domains; our
// experiments stay within one domain).

#include <cstddef>
#include <stdexcept>

#include "gold/gold_code.h"
#include "topo/node.h"

namespace dmn::domino {

class SignaturePlan {
 public:
  explicit SignaturePlan(std::size_t num_nodes) : num_nodes_(num_nodes) {
    if (num_nodes > gold::kMaxNodesPerDomain) {
      throw std::invalid_argument(
          "SignaturePlan: more than 127 nodes in one collision domain "
          "(use longer Gold codes, see bench_signature_length)");
    }
  }

  std::size_t code_of(topo::NodeId node) const {
    if (node < 0 || static_cast<std::size_t>(node) >= num_nodes_) {
      throw std::out_of_range("SignaturePlan::code_of");
    }
    return static_cast<std::size_t>(node);
  }

  topo::NodeId node_of(std::size_t code) const {
    if (code >= num_nodes_) return topo::kNoNode;
    return static_cast<topo::NodeId>(code);
  }

  static constexpr std::size_t start_code() {
    return gold::kStartSignatureIndex;
  }
  static constexpr std::size_t rop_code() { return gold::kRopSignatureIndex; }

  std::size_t num_nodes() const { return num_nodes_; }

 private:
  std::size_t num_nodes_;
};

}  // namespace dmn::domino
