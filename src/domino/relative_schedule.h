#pragma once
// Relative-schedule data model: the converter's output and the per-AP plans
// the controller distributes over the wired backbone.

#include <cstdint>
#include <vector>

#include "topo/node.h"
#include "util/time.h"

namespace dmn::domino {

/// One link scheduled in a slot.
struct SlotEntry {
  topo::LinkId link = topo::kNoLink;
  /// Inserted by fake-link insertion (§3.3). A fake entry still carries real
  /// data when the sender's queue has some — fake marks schedule intent,
  /// not payload.
  bool fake = false;
};

/// "`via` broadcasts `target`'s signature at the end of this slot."
/// via is an endpoint (sender or receiver) of a link in this slot; target
/// is the sender of a link in the NEXT slot or an AP polling right after
/// this slot. via == target encodes self-continuation (a node active in
/// consecutive slots times itself; no airtime).
struct Trigger {
  topo::NodeId via = topo::kNoNode;
  topo::NodeId target = topo::kNoNode;
  /// Instructed continuation: `target` is a client active in this slot
  /// whose AP (`via`) tells it in-band to transmit again next slot. No
  /// signature airtime, no listening required.
  bool continuation = false;
};

struct RelSlot {
  std::uint64_t global_index = 0;  // monotone across batches
  std::vector<SlotEntry> entries;
  std::vector<Trigger> triggers;   // emitted at this slot's signature phase
  bool rop_after = false;          // an ROP slot follows this slot
  std::vector<topo::NodeId> rop_aps;  // APs polling in that ROP slot
};

struct RelativeSchedule {
  std::uint64_t batch_id = 0;
  /// slots[0] is the retained last slot of the previous batch (overlap
  /// slot): it re-ships only the triggers pointing into this batch. For the
  /// first batch it is a synthetic empty slot and slots[1] self-starts.
  std::vector<RelSlot> slots;
};

/// What one AP must do in one global slot — the unit the controller ships.
struct ApSlotPlan {
  std::uint64_t global_index = 0;

  enum class Role {
    kNone,    // not an endpoint this slot (may still need to poll after it)
    kTxData,  // downlink: AP transmits to `peer`
    kRxData,  // uplink: AP expects data from `peer`
  };
  Role role = Role::kNone;
  topo::NodeId peer = topo::kNoNode;
  bool fake = false;  // the entry was a fake-link insertion

  /// Codes this AP broadcasts at the slot's signature phase.
  std::vector<std::size_t> my_codes;
  /// Codes its client must broadcast (embedded into the data frame or ACK,
  /// Figure 8).
  std::vector<std::size_t> client_codes;
  /// In-band "transmit again next slot" flag for the peer client.
  bool client_continue = false;

  bool rop_after = false;     // signature phase ends with the ROP signature
  bool polls_in_rop = false;  // this AP polls in the following ROP slot
};

struct ApSchedule {
  topo::NodeId ap = topo::kNoNode;
  std::uint64_t batch_id = 0;
  /// Global index of the batch's first NEW slot (after the overlap slot);
  /// APs use it to anchor strict self-starts at the very first batch.
  std::uint64_t batch_first_slot = 0;
  /// Global indices of slots followed by an ROP slot — shipped to EVERY AP
  /// so all nodes project the same slot lattice across ROP boundaries.
  std::vector<std::uint64_t> rop_boundaries;
  std::vector<ApSlotPlan> slots;
};

}  // namespace dmn::domino
