#include "domino/rand_scheduler.h"

#include <algorithm>

namespace dmn::domino {

RandScheduler::RandScheduler(const topo::ConflictGraph& graph)
    : graph_(graph) {
  queue_.reserve(graph.num_links());
  for (std::size_t i = 0; i < graph.num_links(); ++i) {
    queue_.push_back(static_cast<topo::LinkId>(i));
  }
}

std::vector<topo::LinkId> RandScheduler::schedule_slot(
    const std::vector<std::size_t>& demand) {
  std::vector<topo::LinkId> chosen;
  for (topo::LinkId cand : queue_) {
    if (demand[static_cast<std::size_t>(cand)] == 0) continue;
    bool ok = true;
    for (topo::LinkId c : chosen) {
      if (graph_.conflicts(cand, c)) {
        ok = false;
        break;
      }
    }
    if (ok) chosen.push_back(cand);
  }
  if (!chosen.empty()) {
    // Move the served links to the tail (fairness, §4.2.1).
    std::vector<topo::LinkId> next;
    next.reserve(queue_.size());
    for (topo::LinkId l : queue_) {
      if (std::find(chosen.begin(), chosen.end(), l) == chosen.end()) {
        next.push_back(l);
      }
    }
    next.insert(next.end(), chosen.begin(), chosen.end());
    queue_ = std::move(next);
  }
  return chosen;
}

std::vector<std::vector<topo::LinkId>> RandScheduler::schedule_batch(
    std::vector<std::size_t> demand, std::size_t slots) {
  std::vector<std::vector<topo::LinkId>> batch;
  for (std::size_t s = 0; s < slots; ++s) {
    std::vector<topo::LinkId> slot = schedule_slot(demand);
    for (topo::LinkId l : slot) {
      auto& d = demand[static_cast<std::size_t>(l)];
      if (d > 0) --d;
    }
    const bool empty = slot.empty();
    batch.push_back(std::move(slot));
    if (empty && s > 0) break;  // demand exhausted
  }
  if (batch.empty()) batch.emplace_back();
  return batch;
}

}  // namespace dmn::domino
