#pragma once
// The DOMINO central server: collects queue state (uplink via ROP reports
// relayed by APs over the wired backbone, downlink from AP queue reports),
// runs the RAND greedy scheduler per batch, converts to a relative schedule
// and distributes per-AP plans over the jittery backbone (§3.3, §4.2.1).

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "domino/converter.h"
#include "domino/rand_scheduler.h"
#include "domino/relative_schedule.h"
#include "sim/simulator.h"
#include "topo/conflict_graph.h"
#include "wired/backbone.h"

namespace dmn::fault {
class FaultInjector;
}

namespace dmn::domino {

struct DominoParams {
  std::size_t batch_slots = 10;
  /// Poll every N batches (1 = every batch, the paper's default; larger
  /// values are the §5 polling-frequency study).
  std::size_t batches_per_poll = 1;
  /// Payload bytes of every virtual packet (fixed slot assumption, §3.5).
  std::size_t payload_bytes = 512;
};

/// One client's queue report relayed by an AP.
struct ClientQueueReport {
  topo::NodeId client = topo::kNoNode;
  unsigned reported = 0;
};

/// What an AP sends the controller after polling (plus its own queues).
struct ApReport {
  topo::NodeId ap = topo::kNoNode;
  std::vector<ClientQueueReport> clients;
  /// AP-side downlink backlog per client.
  std::vector<ClientQueueReport> downlink;
};

/// Passive audit seam (src/audit): sees every planned batch — the strict
/// schedule the RAND scheduler produced, the relative schedule converted
/// from it, the previous batch's retained last slot and the APs that needed
/// an ROP poll — before the controller advances its own batch state.
/// Implementations must not mutate anything.
class ScheduleObserver {
 public:
  virtual ~ScheduleObserver() = default;

  virtual void on_batch_planned(
      const std::vector<std::vector<topo::LinkId>>& strict,
      const RelativeSchedule& rs, const std::vector<SlotEntry>& prev_last,
      const std::vector<topo::NodeId>& rop_aps_needed) = 0;
};

class DominoController {
 public:
  using DispatchFn = std::function<void(const ApSchedule&)>;

  DominoController(sim::Simulator& sim, wired::Backbone& backbone,
                   const topo::Topology& topo,
                   const topo::ConflictGraph& graph,
                   const SignaturePlan& signatures,
                   const DominoParams& params,
                   const ConverterParams& conv_params, TimeNs slot_duration,
                   TimeNs rop_duration);

  /// `dispatch` delivers an ApSchedule to the given AP's executor; the
  /// controller wraps it in backbone latency.
  void set_dispatch(DispatchFn dispatch) { dispatch_ = std::move(dispatch); }

  /// Downlink queue oracle: APs sit on the wired network and push queue
  /// updates to the server cheaply, so the controller reads AP-side
  /// (downlink) backlog directly at planning time. Uplink backlog is only
  /// ever learned through ROP — that is the paper's core constraint.
  using DownlinkPeekFn = std::function<std::size_t(const topo::Link&)>;
  void set_downlink_peek(DownlinkPeekFn peek) { peek_ = std::move(peek); }

  void start(TimeNs at);

  /// APs call this (already backbone-delayed by the AP side).
  void on_ap_report(const ApReport& report);

  /// Fault injection (nullable): while the injector reports a controller
  /// outage, plan_batch neither plans nor dispatches and incoming AP
  /// reports are lost; planning resumes when the outage window ends. APs
  /// keep executing the last received plan meanwhile.
  void set_fault_injector(fault::FaultInjector* f) { faults_ = f; }

  /// Audit seam (nullable): observes every planned batch.
  void set_schedule_observer(ScheduleObserver* obs) { schedule_obs_ = obs; }

  std::uint64_t batches_planned() const { return batches_; }
  /// Planning rounds skipped because the controller was down.
  std::uint64_t outage_skips() const { return outage_skips_; }
  const ScheduleConverter& converter() const { return converter_; }
  ScheduleConverter& converter() { return converter_; }

 private:
  void plan_batch();
  std::vector<std::size_t> demand_vector() const;

  sim::Simulator& sim_;
  wired::Backbone& backbone_;
  const topo::Topology& topo_;
  const topo::ConflictGraph& graph_;
  ScheduleConverter converter_;
  RandScheduler rand_;
  DominoParams params_;
  TimeNs slot_duration_;
  TimeNs rop_duration_;
  DispatchFn dispatch_;
  DownlinkPeekFn peek_;
  fault::FaultInjector* faults_ = nullptr;
  ScheduleObserver* schedule_obs_ = nullptr;
  std::uint64_t outage_skips_ = 0;

  std::map<topo::LinkId, std::size_t> estimates_;
  std::vector<SlotEntry> prev_last_;
  std::uint64_t next_global_slot_ = 0;
  std::uint64_t batches_ = 0;
  std::set<topo::NodeId> pending_polls_;
  sim::EventHandle plan_timer_;
};

}  // namespace dmn::domino
