#pragma once
// The Schedule Converter (§3.3): turns a strict schedule produced by an
// arbitrary scheduler into a relative schedule.
//
//  1. Fake-link insertion: every slot is extended to a maximal independent
//     set in the conflict graph; inserted links are marked fake (they send
//     a header-only packet when the sender has no data) so every node keeps
//     hearing triggers.
//  2. ROP-slot insertion (greedy): each AP that must be polled gets an ROP
//     slot at the first boundary whose preceding slot can trigger it;
//     non-conflicting APs share an ROP slot; at most one ROP slot per
//     boundary.
//  3. Trigger assignment: for every sender in slot i+1 (and every AP
//     polling at boundary i), pick up to `max_inbound` (2) triggering
//     endpoints from slot i, best-RSS first, honoring the per-node
//     `max_outbound` (4) signature budget. A node active in consecutive
//     slots self-continues at zero cost (APs know their schedule; clients
//     never self-continue because they don't).
//  4. Batch connection: the previous batch's last slot is carried as
//     slots[0] so its endpoints trigger this batch's first new slot.
//
// Targets with no reachable trigger are dropped from the slot ("the
// scheduler will reschedule such links").

#include <vector>

#include "domino/relative_schedule.h"
#include "domino/signature_plan.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"

namespace dmn::domino {

struct ConverterParams {
  int max_inbound = 2;   // triggers per target (robustness vs reliability)
  int max_outbound = 4;  // signatures one node may combine (Figure 9)
  /// A signature from `via` reaches `target` when rss >= this floor
  /// (correlation gain makes signatures detectable at carrier-sense level).
  double trigger_rss_floor_dbm = -82.0;
  bool insert_fake_links = true;  // ablation knob
};

class ScheduleConverter {
 public:
  ScheduleConverter(const topo::Topology& topo,
                    const topo::ConflictGraph& graph,
                    const SignaturePlan& signatures,
                    const ConverterParams& params = {});

  /// Converts one strict batch. `prev_last` is the retained last slot of
  /// the previous batch (empty entries for the very first batch).
  /// `rop_aps_needed` lists APs to poll within this batch.
  /// `first_global_index` is the global index of the overlap slot.
  RelativeSchedule convert(
      const std::vector<std::vector<topo::LinkId>>& strict,
      const std::vector<SlotEntry>& prev_last,
      const std::vector<topo::NodeId>& rop_aps_needed,
      std::uint64_t batch_id, std::uint64_t first_global_index);

  /// Splits a relative schedule into per-AP plans for distribution.
  std::vector<ApSchedule> make_ap_plans(const RelativeSchedule& rs) const;

  /// Count of entries dropped because no trigger could reach them.
  std::uint64_t untriggerable_drops() const { return dropped_; }

  /// Test-only defects for the auditor self-test (src/audit): convert()
  /// injects the defect into its otherwise-correct output so the auditor
  /// must catch it.
  enum class TestDefect {
    kNone = 0,
    /// Duplicate an existing trigger until its target exceeds max_inbound.
    kExtraTrigger,
    /// Append a fake entry that conflicts with a scheduled entry.
    kConflictingEntry,
  };
  void set_test_defect(TestDefect d) { test_defect_ = d; }

 private:
  /// Endpoints (senders and receivers) of a slot's entries.
  std::vector<topo::NodeId> endpoints(const RelSlot& slot) const;
  bool can_trigger(topo::NodeId via, topo::NodeId target) const;
  bool aps_can_share_rop(topo::NodeId a, topo::NodeId b) const;

  void assign_triggers(RelSlot& from, RelSlot& to);

  const topo::Topology& topo_;
  const topo::ConflictGraph& graph_;
  const SignaturePlan& signatures_;
  ConverterParams params_;
  std::uint64_t dropped_ = 0;
  TestDefect test_defect_ = TestDefect::kNone;
};

}  // namespace dmn::domino
