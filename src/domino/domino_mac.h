#pragma once
// DOMINO execution agents: the AP- and client-side MAC entities that run a
// relative schedule (§3.2-§3.5, Figures 8 and 10).
//
// Slot structure (fixed "virtual packet" duration, §3.5):
//   t0                 data phase      (real data, or header-only fake)
//   t0+data+SIFS       ACK             (real data only)
//   ...+ACK+slot       signature phase both endpoints broadcast combined
//                                      signatures, then S' (or the ROP
//                                      signature when an ROP slot follows)
//   burst end + slot   next slot's t0  (or + ROP duration after ROP slots)
//
// APs know their slice of the schedule (global-slot-indexed rows shipped by
// the controller); clients are purely reactive: they transmit on detecting
// their own signature, rebroadcast the signature samples their AP embedded
// in the slot's data frame / ACK, answer polls on their assigned OFDM
// subchannel, and retransmit un-ACKed packets on the next trigger (§3.5).
//
// Liveness / healing: every node passively re-anchors its notion of slot
// timing on the last correctly received trigger (Figure 11's convergence);
// APs additionally self-start a pending row if the chain stays silent two
// slot durations past the row's expected start — the generalization of the
// paper's "APs individually start executing the schedule" bootstrap.

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "domino/controller.h"
#include "domino/relative_schedule.h"
#include "domino/signature_plan.h"
#include "mac/mac_common.h"
#include "phy/medium.h"
#include "phy/signature_model.h"
#include "rop/rop_protocol.h"
#include "sim/simulator.h"
#include "traffic/queue.h"
#include "util/rng.h"

namespace dmn::fault {
class FaultInjector;
}

namespace dmn::domino {

/// Insertion-ordered duplicate filter with a hard size bound: oldest ids
/// are evicted first, so long runs neither grow without bound nor forget
/// their entire history at once (the old cap-then-clear behaviour readmits
/// every in-flight duplicate the moment the cap is hit).
class BoundedIdFilter {
 public:
  explicit BoundedIdFilter(std::size_t cap = 4096) : cap_(cap) {}

  /// Inserts `id`; returns true if it was new (i.e. not a duplicate).
  bool insert(traffic::PacketId id) {
    if (!set_.insert(id).second) return false;
    order_.push_back(id);
    while (order_.size() > cap_) {
      set_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  bool contains(traffic::PacketId id) const { return set_.contains(id); }
  std::size_t size() const { return set_.size(); }

 private:
  std::size_t cap_;
  std::set<traffic::PacketId> set_;
  std::deque<traffic::PacketId> order_;
};

/// Derived airtimes of the DOMINO slot structure.
struct DominoTiming {
  mac::WifiParams wifi;
  std::size_t payload_bytes = 512;
  std::size_t fake_header_bytes = 28;  // fake packet: header only (§3.3)
  std::size_t poll_bytes = 16;
  TimeNs sig_air = usec(6.35);   // one length-127 signature at 20 MHz
  TimeNs rop_symbol = usec(16);  // Table 1
  TimeNs rop_guard = usec(40);   // absorbs residual chain misalignment
  /// §5 co-existence: DOMINO frames carry a NAV covering the rest of their
  /// slot, so external 802.11 contenders defer for the contention-free
  /// period and only transmit in the gaps DOMINO leaves idle.
  bool protect_with_nav = true;

  TimeNs data_air() const { return wifi.data_airtime(payload_bytes); }
  TimeNs fake_air() const {
    return phy::frame_airtime(fake_header_bytes, wifi.data_rate_bps);
  }
  TimeNs ack_air() const { return wifi.ack_airtime(); }
  TimeNs poll_air() const {
    return phy::frame_airtime(poll_bytes + wifi.mac_header_bytes,
                              wifi.control_rate_bps);
  }
  /// Combined signatures followed by S' (or the ROP signature).
  TimeNs burst_air() const { return 2 * sig_air; }
  /// Signature phase offset from the slot's data start.
  TimeNs sig_phase_offset() const {
    return data_air() + wifi.sifs + ack_air() + wifi.slot_time;
  }
  /// Full slot pitch (slot start to next slot start).
  TimeNs slot_duration() const {
    return sig_phase_offset() + burst_air() + wifi.slot_time;
  }
  /// Extra wait when an ROP slot is inserted at the boundary.
  TimeNs rop_duration() const {
    return poll_air() + wifi.slot_time + rop_symbol + rop_guard;
  }
};

/// Hooks for the timeline / misalignment recorders (api/timeline.h).
struct DominoTrace {
  /// (slot index, node, peer, start, fake?, uplink?)
  std::function<void(std::uint64_t, topo::NodeId, topo::NodeId, TimeNs, bool,
                     bool)>
      on_data_tx;
  std::function<void(std::uint64_t, topo::NodeId, TimeNs)> on_poll;
  std::function<void(std::uint64_t, topo::NodeId, TimeNs)> on_trigger;
  /// In-band continuation instruction accepted: `node` may transmit in slot
  /// `tag` without a signature trigger (audit provenance seam).
  std::function<void(std::uint64_t, topo::NodeId, TimeNs)> on_continuation;
};

/// Shared behaviour: signature-burst detection buffer and slot anchoring.
class DominoNodeBase : public phy::MediumClient {
 public:
  DominoNodeBase(sim::Simulator& sim, phy::Medium& medium, topo::NodeId node,
                 const DominoTiming& timing, const SignaturePlan& signatures,
                 const phy::SignatureDetectionModel& model, Rng rng,
                 DominoTrace* trace);

  topo::NodeId node() const { return radio_.node(); }

  /// Fault injection (nullable). When set, signature bursts may be
  /// suppressed (forced false negatives / scripted blackouts) or forged
  /// (false positives); see fault::SignatureFaults.
  void set_faults(fault::FaultInjector* f) { faults_ = f; }

  /// Local clock rate error. Applied to the slot-lattice extrapolation
  /// (expected_start and everything built on it) — the only timers where
  /// ppm-scale error accumulates to observable magnitude.
  void set_clock_skew_ppm(double ppm) { clock_skew_ppm_ = ppm; }

  /// Test-only defect (audit::Mutation::kMacTriggerWithoutSignature): treat
  /// every triggering burst as carrying this node's code, firing triggers
  /// whose signature was never on the air.
  void set_test_trigger_on_any_burst(bool on) {
    test_trigger_on_any_burst_ = on;
  }

  // ---- chain-health observability ----------------------------------------
  /// Trigger bursts this node was forced to miss by fault injection.
  std::uint64_t forced_trigger_losses() const {
    return forced_trigger_losses_;
  }
  /// Lattice references rejected as earlier-than-anchor (island defence).
  std::uint64_t anchor_rejections() const { return anchor_rejections_total_; }
  /// Recovery latency samples: slots elapsed between a (suppressed) trigger
  /// loss and the next chain activity at this node — the re-convergence
  /// metric of the resilience study.
  const std::vector<double>& recovery_latency_slots() const {
    return recovery_latency_slots_;
  }

 protected:
  /// Called when this node's signature (plus S'/ROP) was detected; `tag` is
  /// the slot the burst closed, `rop` whether an ROP slot follows.
  virtual void on_trigger_detected(std::uint64_t tag, bool rop,
                                   TimeNs detect_time) = 0;

  /// Broadcasts the combined trigger burst at the signature phase.
  /// `recovery` marks off-lattice kick bursts (not a timing reference).
  void send_burst(const std::vector<std::size_t>& codes, std::uint64_t tag,
                  bool rop_flag, bool recovery = false);

  void on_frame_rx(const phy::Frame& frame, const phy::RxInfo& info) override;

  /// Subclass hook for non-signature frames.
  virtual void handle_frame(const phy::Frame& frame,
                            const phy::RxInfo& info) = 0;

  /// Called after the anchor moved the lattice later: pending slot-timed
  /// actions should re-snap ("last correctly received trigger as time
  /// reference").
  virtual void on_anchor_moved() {}

  /// Updates the slot-timing anchor. Heard references are adopted
  /// monotonically: a reference implying an *earlier* lattice than the
  /// current one (by more than a quarter slot) is rejected — chains defer
  /// to the latest (slowest) reference, which is what makes misaligned
  /// chains converge instead of islands forming. `force` bypasses the
  /// check; used when a node's own slot execution establishes ground
  /// truth for its chain phase.
  void update_anchor(std::uint64_t tag, TimeNs t0, bool force = false);
  bool has_anchor() const { return anchor_valid_; }
  std::uint64_t anchor_tag() const { return anchor_tag_; }
  TimeNs expected_start(std::uint64_t tag) const;

  /// Closes a pending trigger-loss episode: records now - loss time in
  /// slots. Called wherever the chain demonstrably moves again (a detected
  /// trigger, an executed row, a recovery kick).
  void note_chain_resume(TimeNs now);

  /// True while this node is powered (AP outage injection). A powered-down
  /// node neither transmits nor receives; stale timer events must check.
  bool powered() const { return powered_; }

  sim::Simulator& sim_;
  phy::Transceiver radio_;
  DominoTiming timing_;
  const SignaturePlan& signatures_;
  phy::SignatureDetectionModel model_;
  Rng rng_;
  DominoTrace* trace_;
  fault::FaultInjector* faults_ = nullptr;
  double clock_skew_ppm_ = 0.0;
  bool powered_ = true;
  bool test_trigger_on_any_burst_ = false;

  std::uint64_t forced_trigger_losses_ = 0;
  std::uint64_t anchor_rejections_total_ = 0;
  std::vector<double> recovery_latency_slots_;
  bool loss_pending_ = false;
  TimeNs loss_time_ = 0;

 private:
  void evaluate_sig_buffer();

  struct BufferedBurst {
    phy::SignatureBurst burst;
    double sinr_db;
    std::uint64_t tag;
    TimeNs end_time;
  };
  std::vector<BufferedBurst> sig_buffer_;
  bool eval_scheduled_ = false;

  bool anchor_valid_ = false;
  std::uint64_t anchor_tag_ = 0;
  TimeNs anchor_t0_ = 0;
  int anchor_rejections_ = 0;  // consecutive earlier-than-lattice refs
};

class DominoApMac final : public DominoNodeBase, public mac::MacEntity {
 public:
  struct ClientInfo {
    topo::NodeId client;
    std::size_t subchannel;
    double rss_at_ap;
  };

  DominoApMac(sim::Simulator& sim, phy::Medium& medium, topo::NodeId node,
              const DominoTiming& timing, const SignaturePlan& signatures,
              const phy::SignatureDetectionModel& model,
              const rop::RopParams& rop_params, Rng rng,
              mac::DeliveryFn deliver,
              std::function<void(const ApReport&)> report_fn,
              DominoTrace* trace);

  void set_clients(std::vector<ClientInfo> clients);

  // MacEntity.
  bool enqueue(traffic::Packet p) override;
  std::size_t queue_size() const override { return queue_.size(); }
  std::size_t queued_for(topo::NodeId dst) const {
    return queue_.count_for(dst);
  }

  /// Controller dispatch (already backbone-delayed). Merges by slot index.
  /// Dropped while the AP is powered down (outage injection).
  void receive_plan(const ApSchedule& plan);

  /// AP outage/restart injection. Powering down cancels every pending
  /// timer and silences the radio; powering up re-arms the self-start
  /// machinery from the retained schedule — the AP re-anchors off the
  /// first trigger it hears, like the paper's bootstrap.
  void set_powered(bool on);

  std::uint64_t ack_timeouts() const { return ack_timeouts_; }
  std::uint64_t self_starts() const { return self_starts_; }
  std::uint64_t rows_executed() const { return rows_executed_; }
  std::uint64_t missed_rows() const { return missed_rows_; }
  std::uint64_t retry_drops() const { return retry_drops_; }

 protected:
  void on_trigger_detected(std::uint64_t tag, bool rop,
                           TimeNs detect_time) override;
  void handle_frame(const phy::Frame& frame, const phy::RxInfo& info) override;

 private:
  struct Row {
    ApSlotPlan plan;
    bool executed = false;
    /// Self-start already broadcast a kick trigger for this uplink row.
    bool kick_sent = false;
    /// Write-off deadline after the kick.
    TimeNs kick_deadline = kTimeNever;
  };

  Row* find_row(std::uint64_t g);
  Row* next_pending();
  TimeNs row_due(const Row& r) const;
  /// Anchor-predicted start of slot g, including known ROP boundaries.
  TimeNs anchored_start(std::uint64_t g) const;
  void on_anchor_moved() override;
  /// Marks every row below `g` missed and moves the execution frontier —
  /// slots are strictly ordered; a laggard catches up by skipping, never by
  /// running stale slots out of order.
  void advance_frontier(std::uint64_t g);
  void arm_self_start();
  void on_self_start_timer();
  void schedule_tx(std::uint64_t g, TimeNs at);
  void execute_tx(std::uint64_t g);
  void after_data_phase(const Row& row, TimeNs slot_t0, bool uplink);
  void finish_slot(std::uint64_t g);
  void execute_poll(std::uint64_t g, TimeNs at);
  void evaluate_poll(std::uint64_t g);
  void prune_executed(std::uint64_t upto);

  rop::RopParams rop_params_;
  rop::RopLinkModel rop_model_;
  mac::DeliveryFn deliver_;
  std::function<void(const ApReport&)> report_fn_;

  std::vector<ClientInfo> clients_;
  traffic::PacketQueue queue_;
  std::map<std::uint64_t, Row> rows_;
  std::set<std::uint64_t> rop_boundaries_;  // shared slot-lattice stretch
  std::uint64_t frontier_ = 0;  // highest executed slot index

  // In-flight TX bookkeeping.
  sim::EventHandle tx_event_;
  std::uint64_t tx_pending_slot_ = 0;
  bool tx_scheduled_ = false;
  TimeNs tx_scheduled_at_ = 0;
  sim::EventHandle ack_timer_;
  traffic::PacketId awaiting_ack_ = 0;
  bool awaiting_ack_valid_ = false;
  topo::NodeId awaiting_peer_ = topo::kNoNode;
  /// Retry counts by packet id, bounded: ids are monotonic, so when the map
  /// outgrows the cap the smallest (oldest, long-since-resolved) entries
  /// are evicted. Unbounded growth showed up on long runs whenever a
  /// destination left the schedule with a timeout entry still parked here.
  std::map<traffic::PacketId, int> tx_attempts_;
  static constexpr std::size_t kTxAttemptsCap = 1024;
  void prune_tx_attempts();

  sim::EventHandle self_start_timer_;

  // Poll collection state.
  struct PollResponse {
    topo::NodeId client;
    std::size_t subchannel;
    unsigned report;
    bool decoded;
  };
  std::vector<PollResponse> poll_responses_;
  bool polling_ = false;

  // Per-client duplicate filter for uplink deliveries (bounded, oldest-out).
  std::map<topo::NodeId, BoundedIdFilter> seen_;

  std::uint64_t ack_timeouts_ = 0;
  std::uint64_t self_starts_ = 0;
  std::uint64_t rows_executed_ = 0;
  std::uint64_t retry_drops_ = 0;
  std::uint64_t missed_rows_ = 0;
};

class DominoClientMac final : public DominoNodeBase, public mac::MacEntity {
 public:
  DominoClientMac(sim::Simulator& sim, phy::Medium& medium, topo::NodeId node,
                  topo::NodeId ap, std::size_t subchannel,
                  const DominoTiming& timing, const SignaturePlan& signatures,
                  const phy::SignatureDetectionModel& model, Rng rng,
                  mac::DeliveryFn deliver, DominoTrace* trace);

  bool enqueue(traffic::Packet p) override;
  std::size_t queue_size() const override { return queue_.size(); }

  std::uint64_t ack_timeouts() const { return ack_timeouts_; }

  /// Test-only defects for the auditor self-test (src/audit).
  void set_test_double_delivery(bool on) { test_double_delivery_ = on; }
  void set_test_rop_report_offset(bool on) { test_rop_report_offset_ = on; }

 protected:
  void on_trigger_detected(std::uint64_t tag, bool rop,
                           TimeNs detect_time) override;
  void handle_frame(const phy::Frame& frame, const phy::RxInfo& info) override;

 private:
  void execute_tx(std::uint64_t slot_tag);
  void on_anchor_moved() override;
  void schedule_data_tx(std::uint64_t tag, TimeNs at);
  void handle_continuation(const phy::SignatureBurst& instr,
                           std::uint64_t tag, TimeNs slot_t0);
  void schedule_instructed_burst(const phy::SignatureBurst& instr,
                                 std::uint64_t tag, TimeNs at);

  topo::NodeId ap_;
  std::size_t subchannel_;
  mac::DeliveryFn deliver_;
  traffic::PacketQueue queue_;

  sim::EventHandle tx_event_;
  bool tx_scheduled_ = false;
  TimeNs tx_scheduled_at_ = 0;
  std::uint64_t tx_slot_tag_ = 0;
  sim::EventHandle ack_timer_;
  traffic::PacketId awaiting_ack_ = 0;
  bool awaiting_ack_valid_ = false;
  std::uint64_t last_tx_tag_ = 0;  // stale-trigger guard

  BoundedIdFilter seen_;  // downlink duplicate filter (bounded, oldest-out)

  std::uint64_t ack_timeouts_ = 0;
  bool test_double_delivery_ = false;
  bool test_rop_report_offset_ = false;
};

}  // namespace dmn::domino
