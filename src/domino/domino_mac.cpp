#include "domino/domino_mac.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "fault/fault_injector.h"
#include "util/units.h"

namespace dmn::domino {
namespace {

/// Settling delay before evaluating buffered signature bursts: concurrent
/// bursts end within a couple of microseconds of each other.
constexpr TimeNs kSigEvalSettle = usec(2);

/// Retry delay when an action lands while our own radio is still keyed.
constexpr TimeNs kTxBusyRetry = usec(7);

}  // namespace

// --------------------------------------------------------------------------
// DominoNodeBase
// --------------------------------------------------------------------------

DominoNodeBase::DominoNodeBase(sim::Simulator& sim, phy::Medium& medium,
                               topo::NodeId node, const DominoTiming& timing,
                               const SignaturePlan& signatures,
                               const phy::SignatureDetectionModel& model,
                               Rng rng, DominoTrace* trace)
    : sim_(sim),
      radio_(medium, node, this),
      timing_(timing),
      signatures_(signatures),
      model_(model),
      rng_(std::move(rng)),
      trace_(trace) {}

void DominoNodeBase::send_burst(const std::vector<std::size_t>& codes,
                                std::uint64_t tag, bool rop_flag,
                                bool recovery) {
  if (codes.empty() || !powered_) return;
  phy::Frame f;
  f.type = phy::FrameType::kSignature;
  f.dst = topo::kNoNode;  // broadcast
  f.duration = timing_.burst_air();
  phy::SignatureBurst burst;
  burst.codes = codes;
  burst.start_signature = !rop_flag;
  burst.rop_signature = rop_flag;
  burst.recovery = recovery;
  f.burst = std::move(burst);
  f.slot_tag = tag;
  radio_.send(f);
}

void DominoNodeBase::update_anchor(std::uint64_t tag, TimeNs t0,
                                   bool force) {
  // "The transmitter uses the last correctly received trigger as time
  // reference." Heard references only ever move the lattice later (or
  // refresh it); own executions (force) set it outright.
  if (!force && anchor_valid_) {
    const TimeNs projected = expected_start(tag);
    if (t0 < projected - timing_.slot_duration() / 4) {
      // Earlier than our lattice: normally the other chain should defer to
      // us — but if every reference we hear is earlier, *we* are the
      // runaway island and must fall back to the network.
      ++anchor_rejections_total_;
      if (++anchor_rejections_ < 2) return;
    }
  }
  anchor_rejections_ = 0;
  const bool moved_later =
      anchor_valid_ && t0 > expected_start(tag) + usec(1);
  anchor_valid_ = true;
  anchor_tag_ = tag;
  anchor_t0_ = t0;
  if (moved_later && !force) on_anchor_moved();
}

TimeNs DominoNodeBase::expected_start(std::uint64_t tag) const {
  if (!anchor_valid_) return kTimeNever;
  const auto delta = static_cast<std::int64_t>(tag) -
                     static_cast<std::int64_t>(anchor_tag_);
  TimeNs horizon = delta * timing_.slot_duration();
  if (clock_skew_ppm_ != 0.0) {
    // A fast local clock (positive ppm) counts off its slots in less true
    // time. Skew only enters through this extrapolation: per-frame offsets
    // shift by ppm x 100 us < 1 ns and stay exact.
    horizon = static_cast<TimeNs>(static_cast<double>(horizon) /
                                  (1.0 + clock_skew_ppm_ * 1e-6));
  }
  return anchor_t0_ + horizon;
}

void DominoNodeBase::note_chain_resume(TimeNs now) {
  if (!loss_pending_) return;
  loss_pending_ = false;
  recovery_latency_slots_.push_back(
      static_cast<double>(now - loss_time_) /
      static_cast<double>(timing_.slot_duration()));
}

void DominoNodeBase::on_frame_rx(const phy::Frame& frame,
                                 const phy::RxInfo& info) {
  if (!powered_) return;  // AP outage: the radio is dark
  if (frame.type == phy::FrameType::kSignature) {
    if (info.half_duplex_loss || !frame.burst.has_value()) return;
    sig_buffer_.push_back(BufferedBurst{*frame.burst, info.min_sinr_db,
                                        frame.slot_tag, sim_.now()});
    if (!eval_scheduled_) {
      eval_scheduled_ = true;
      sim_.post_in(kSigEvalSettle, [this] { evaluate_sig_buffer(); });
    }
    return;
  }

  // Passive re-anchoring from tagged data-phase frames.
  if (info.decoded) {
    if (frame.type == phy::FrameType::kData) {
      update_anchor(frame.slot_tag, sim_.now() - timing_.data_air());
    } else if (frame.type == phy::FrameType::kFakeHeader) {
      update_anchor(frame.slot_tag, sim_.now() - timing_.fake_air());
    }
  }
  handle_frame(frame, info);
}

void DominoNodeBase::evaluate_sig_buffer() {
  eval_scheduled_ = false;
  std::vector<BufferedBurst> bursts;
  bursts.swap(sig_buffer_);
  if (bursts.empty() || !powered_) return;

  // Total combined signatures on the air — the x-axis of Figure 9.
  int total = 0;
  for (const BufferedBurst& b : bursts) {
    total += static_cast<int>(b.burst.codes.size());
  }

  const std::size_t my_code = signatures_.code_of(node());
  for (const BufferedBurst& b : bursts) {
    bool has_mine =
        std::find(b.burst.codes.begin(), b.burst.codes.end(), my_code) !=
        b.burst.codes.end();
    const bool triggering =
        b.burst.start_signature || b.burst.rop_signature;

    // Forced false negative / scripted blackout: the correlator saw noise.
    // The whole burst is lost to this node — no trigger AND no re-anchor,
    // which is what makes a stomped signature phase a real chain break.
    if (faults_ != nullptr &&
        faults_->suppress_burst(node(), b.end_time, rng_)) {
      if (has_mine && triggering) {
        ++forced_trigger_losses_;
        faults_->note_trigger_loss();
        if (!loss_pending_) {
          loss_pending_ = true;
          loss_time_ = b.end_time;
        }
      }
      continue;
    }

    // A burst that ends at t closed slot `tag`; slot tag+1 starts one slot
    // later. Anchor on the slot start implied by the burst timing —
    // except recovery kicks, which are deliberately off-lattice.
    if (!b.burst.recovery) {
      update_anchor(b.tag + 1,
                    b.end_time + timing_.wifi.slot_time +
                        (b.burst.rop_signature ? timing_.rop_duration()
                                               : 0));
    }

    // Forced false positive: act on a start burst that did not carry our
    // code (correlation spike on someone else's signature).
    if (!has_mine && triggering && !b.burst.recovery &&
        faults_ != nullptr && faults_->forge_trigger(rng_)) {
      has_mine = true;
    }

    // Auditor self-test defect: every triggering burst looks like ours
    // (audit::Mutation::kMacTriggerWithoutSignature).
    if (test_trigger_on_any_burst_ && triggering && !b.burst.recovery) {
      has_mine = true;
    }

    if (!has_mine) continue;
    if (!triggering) continue;
    if (!model_.sample_detect(total, b.sinr_db, rng_)) continue;
    if (trace_ != nullptr && trace_->on_trigger) {
      trace_->on_trigger(b.tag, node(), b.end_time);
    }
    note_chain_resume(b.end_time);
    on_trigger_detected(b.tag, b.burst.rop_signature, b.end_time);
  }
}

// --------------------------------------------------------------------------
// DominoApMac
// --------------------------------------------------------------------------

DominoApMac::DominoApMac(sim::Simulator& sim, phy::Medium& medium,
                         topo::NodeId node, const DominoTiming& timing,
                         const SignaturePlan& signatures,
                         const phy::SignatureDetectionModel& model,
                         const rop::RopParams& rop_params, Rng rng,
                         mac::DeliveryFn deliver,
                         std::function<void(const ApReport&)> report_fn,
                         DominoTrace* trace)
    : DominoNodeBase(sim, medium, node, timing, signatures, model,
                     std::move(rng), trace),
      rop_params_(rop_params),
      rop_model_(rop_params),
      deliver_(std::move(deliver)),
      report_fn_(std::move(report_fn)),
      queue_(timing.wifi.queue_capacity) {}

void DominoApMac::set_clients(std::vector<ClientInfo> clients) {
  clients_ = std::move(clients);
}

bool DominoApMac::enqueue(traffic::Packet p) {
  p.enqueued = sim_.now();
  return queue_.push(std::move(p));
}

DominoApMac::Row* DominoApMac::find_row(std::uint64_t g) {
  const auto it = rows_.find(g);
  return it == rows_.end() ? nullptr : &it->second;
}

DominoApMac::Row* DominoApMac::next_pending() {
  for (auto& [g, row] : rows_) {
    if (!row.executed && (frontier_ == 0 || g > frontier_)) return &row;
  }
  return nullptr;
}

void DominoApMac::advance_frontier(std::uint64_t g) {
  for (auto& [idx, row] : rows_) {
    if (idx < g && !row.executed) {
      row.executed = true;
      ++missed_rows_;
    }
  }
  frontier_ = std::max(frontier_, g);
}

void DominoApMac::set_powered(bool on) {
  if (on == powered_) return;
  powered_ = on;
  if (!on) {
    sim_.cancel(self_start_timer_);
    sim_.cancel(tx_event_);
    sim_.cancel(ack_timer_);
    tx_scheduled_ = false;
    awaiting_ack_valid_ = false;
    polling_ = false;
    poll_responses_.clear();
  } else {
    // Restart: resume from the retained schedule on the (possibly stale)
    // anchor; the first heard trigger re-snaps the lattice.
    arm_self_start();
  }
}

void DominoApMac::receive_plan(const ApSchedule& plan) {
  if (!powered_) return;  // a dark AP loses its dispatches
  for (const ApSlotPlan& p : plan.slots) {
    auto [it, fresh] = rows_.try_emplace(p.global_index);
    Row& row = it->second;
    if (fresh) {
      row.plan = p;
    } else {
      // Overlap-slot merge: the next batch re-ships the retained slot with
      // the triggers pointing into the new batch.
      ApSlotPlan& cur = row.plan;
      for (std::size_t c : p.my_codes) {
        if (std::find(cur.my_codes.begin(), cur.my_codes.end(), c) ==
            cur.my_codes.end()) {
          cur.my_codes.push_back(c);
        }
      }
      for (std::size_t c : p.client_codes) {
        if (std::find(cur.client_codes.begin(), cur.client_codes.end(), c) ==
            cur.client_codes.end()) {
          cur.client_codes.push_back(c);
        }
      }
      cur.rop_after = cur.rop_after || p.rop_after;
      cur.polls_in_rop = cur.polls_in_rop || p.polls_in_rop;
      cur.client_continue = cur.client_continue || p.client_continue;
      if (cur.role == ApSlotPlan::Role::kNone) {
        cur.role = p.role;
        cur.peer = p.peer;
        cur.fake = p.fake;
      }
    }
  }
  for (std::uint64_t b : plan.rop_boundaries) rop_boundaries_.insert(b);
  if (std::getenv("DMN_PLAN_DEBUG")) {
    for (const ApSlotPlan& pp : plan.slots) {
      if (pp.polls_in_rop) {
        const Row* row = nullptr;
        const auto itr = rows_.find(pp.global_index);
        if (itr != rows_.end()) row = &itr->second;
        std::fprintf(stderr,
                     "%10.1f PLAN ap=%d poll row g=%llu role=%d "
                     "merged_role=%d merged_polls=%d executed=%d "
                     "frontier=%llu\n",
                     to_usec(sim_.now()), node(),
                     static_cast<unsigned long long>(pp.global_index),
                     static_cast<int>(pp.role),
                     row ? static_cast<int>(row->plan.role) : -1,
                     row ? (row->plan.polls_in_rop ? 1 : 0) : -1,
                     row ? (row->executed ? 1 : 0) : -1,
                     static_cast<unsigned long long>(frontier_));
      }
    }
  }
  if (!has_anchor()) {
    // First batch: no chain exists yet, so start strictly from the local
    // clock — the wired jitter between APs is the initial misalignment the
    // chain then heals (Figure 11).
    update_anchor(plan.batch_first_slot,
                  sim_.now() + timing_.wifi.slot_time);
  }
  arm_self_start();
}

TimeNs DominoApMac::row_due(const Row& r) const {
  // Bootstrap (nothing executed yet): strict start exactly at the expected
  // slot time — that is the paper's "APs individually start executing".
  // Afterwards, the trigger chain leads and the self-start acts as the
  // anchored local slot clock with a small guard; uplink rows additionally
  // wait out a full data frame before the AP kicks the silent client, and
  // one further window after the kick before the row is written off.
  TimeNs due = anchored_start(r.plan.global_index);
  if (rows_executed_ == 0) return due;
  due += 2 * timing_.wifi.slot_time;
  if (r.plan.role == ApSlotPlan::Role::kRxData) {
    if (r.kick_sent) return r.kick_deadline;
    due += timing_.data_air() + timing_.wifi.sifs + timing_.ack_air();
  }
  return due;
}

void DominoApMac::arm_self_start() {
  sim_.cancel(self_start_timer_);
  Row* r = next_pending();
  if (r == nullptr || !has_anchor()) return;
  const TimeNs at = std::max(row_due(*r), sim_.now());
  self_start_timer_ =
      sim_.schedule_at(at, [this] { on_self_start_timer(); });
}

void DominoApMac::on_self_start_timer() {
  if (!powered_) return;
  Row* r = next_pending();
  if (r == nullptr) return;
  const std::uint64_t g = r->plan.global_index;
  const TimeNs due = row_due(*r);
  if (sim_.now() < due) {
    arm_self_start();
    return;
  }
  // Self-starts are recovery actions, not scheduled concurrency: unlike
  // trigger-driven transmissions they defer to carrier sense so a lagging
  // AP does not stomp on chains that are still running.
  if (rows_executed_ > 0 && radio_.carrier_busy()) {
    sim_.cancel(self_start_timer_);
    self_start_timer_ = sim_.schedule_in(
        6 * timing_.wifi.slot_time, [this] { on_self_start_timer(); });
    return;
  }
  switch (r->plan.role) {
    case ApSlotPlan::Role::kTxData:
      ++self_starts_;
      execute_tx(g);
      break;
    case ApSlotPlan::Role::kRxData:
      if (!r->kick_sent) {
        // Bootstrap rule (§3.3): for an uplink at the head of a stalled
        // schedule the AP sends the client's signature to start it.
        r->kick_sent = true;
        r->kick_deadline = sim_.now() + 2 * timing_.slot_duration();
        ++self_starts_;
        note_chain_resume(sim_.now());
        send_burst({signatures_.code_of(r->plan.peer)}, g - 1,
                   /*rop_flag=*/false, /*recovery=*/true);
        // Give the client one response window before writing the row off.
        sim_.cancel(self_start_timer_);
        self_start_timer_ = sim_.schedule_in(
            2 * timing_.slot_duration(), [this] { on_self_start_timer(); });
      } else {
        // The client never showed up; write the slot off and move on.
        r->executed = true;
        ++rows_executed_;
        advance_frontier(g);
        arm_self_start();
      }
      break;
    case ApSlotPlan::Role::kNone:
      r->executed = true;
      ++rows_executed_;
      advance_frontier(g);
      if (r->plan.polls_in_rop) {
        ++self_starts_;
        execute_poll(g, sim_.now());
      } else {
        arm_self_start();
      }
      break;
  }
}

void DominoApMac::on_trigger_detected(std::uint64_t tag, bool rop,
                                      TimeNs detect_time) {
  // A polling AP acts in the ROP slot that opens right after `tag`.
  Row* r = find_row(tag);
  if (r != nullptr && !r->executed && r->plan.polls_in_rop &&
      r->plan.role == ApSlotPlan::Role::kNone &&
      (frontier_ == 0 || tag > frontier_)) {
    r->executed = true;
    ++rows_executed_;
    advance_frontier(tag);
    execute_poll(tag, detect_time + timing_.wifi.slot_time);
  }
  // A data transmitter of slot tag+1 starts one slot (plus ROP) later.
  Row* nxt = find_row(tag + 1);
  if (nxt != nullptr && !nxt->executed &&
      nxt->plan.role == ApSlotPlan::Role::kTxData) {
    schedule_tx(tag + 1, detect_time + timing_.wifi.slot_time +
                             (rop ? timing_.rop_duration() : 0));
  }
  arm_self_start();
}

void DominoApMac::on_anchor_moved() {
  if (!tx_scheduled_) return;
  // Fine alignment only: snap a pending transmission onto the freshly
  // heard lattice when the correction is a fraction of a slot. Larger
  // disagreements mean the reference belongs to a differently-phased chain
  // and adopting it would pull us out of our own slot.
  const TimeNs snapped = anchored_start(tx_pending_slot_);
  if (snapped > sim_.now() &&
      std::abs(snapped - tx_scheduled_at_) < timing_.slot_duration() / 4) {
    sim_.cancel(tx_event_);
    const std::uint64_t g = tx_pending_slot_;
    tx_scheduled_at_ = snapped;
    tx_event_ = sim_.schedule_at(snapped, [this, g] { execute_tx(g); });
  }
}

void DominoApMac::schedule_tx(std::uint64_t g, TimeNs at) {
  Row* r = find_row(g);
  if (r == nullptr || r->executed) return;
  if (tx_scheduled_) sim_.cancel(tx_event_);
  tx_scheduled_ = true;
  tx_pending_slot_ = g;
  tx_scheduled_at_ = std::max(at, sim_.now());
  tx_event_ = sim_.schedule_at(tx_scheduled_at_,
                               [this, g] { execute_tx(g); });
}

void DominoApMac::execute_tx(std::uint64_t g) {
  tx_scheduled_ = false;
  if (!powered_) return;
  Row* r = find_row(g);
  if (r == nullptr || r->executed) return;
  if (frontier_ != 0 && g <= frontier_) return;  // stale slot
  if (radio_.transmitting()) {
    schedule_tx(g, sim_.now() + kTxBusyRetry);
    return;
  }
  r->executed = true;
  ++rows_executed_;
  advance_frontier(g);
  note_chain_resume(sim_.now());
  const ApSlotPlan& p = r->plan;
  const TimeNs t0 = sim_.now();
  // Anchor the chain at the lattice-predicted slot start when we are only
  // late by the self-start guard: executing late must not ratchet the
  // lattice itself later (every frame we now send carries the anchor to
  // our neighbours).
  TimeNs anchor_t0 = t0;
  const TimeNs lattice = anchored_start(g);
  if (lattice != kTimeNever && t0 > lattice &&
      t0 - lattice < timing_.slot_duration() / 4) {
    anchor_t0 = lattice;
  }
  update_anchor(g, anchor_t0, /*force=*/true);

  const traffic::Packet* pkt = queue_.front_for(p.peer);
  if (trace_ != nullptr && trace_->on_data_tx) {
    trace_->on_data_tx(g, node(), p.peer, t0, pkt == nullptr,
                       /*uplink=*/false);
  }

  phy::SignatureBurst instr;
  instr.codes = p.client_codes;
  instr.start_signature = !p.rop_after;
  instr.rop_signature = p.rop_after;
  instr.continue_next = p.client_continue;

  phy::Frame f;
  f.dst = p.peer;
  f.slot_tag = g;
  f.client_instruction = instr;
  if (pkt != nullptr) {
    f.type = phy::FrameType::kData;
    f.bytes = pkt->bytes + timing_.wifi.mac_header_bytes;
    f.duration = timing_.data_air();
    f.packet = *pkt;
    f.packet_id = pkt->id;
    awaiting_ack_ = pkt->id;
    awaiting_ack_valid_ = true;
    awaiting_peer_ = p.peer;
    sim_.cancel(ack_timer_);
    ack_timer_ = sim_.schedule_in(
        f.duration + timing_.wifi.sifs + timing_.ack_air() +
            timing_.wifi.slot_time,
        [this] {
          ++ack_timeouts_;
          awaiting_ack_valid_ = false;
          // §3.5: the packet stays queued; it is retransmitted the next
          // time this destination appears at the top of the schedule.
          auto& attempts = tx_attempts_[awaiting_ack_];
          ++attempts;
          if (attempts > timing_.wifi.retry_limit) {
            (void)queue_.pop_for(awaiting_peer_);
            tx_attempts_.erase(awaiting_ack_);
            ++retry_drops_;
          } else {
            prune_tx_attempts();
          }
        });
  } else {
    f.type = phy::FrameType::kFakeHeader;
    f.bytes = timing_.fake_header_bytes;
    f.duration = timing_.fake_air();
  }
  radio_.send(f);
  after_data_phase(*r, t0, /*uplink=*/false);
}

void DominoApMac::after_data_phase(const Row& row, TimeNs slot_t0,
                                   bool /*uplink*/) {
  const std::vector<std::size_t> codes = row.plan.my_codes;
  const std::uint64_t g = row.plan.global_index;
  const bool rop = row.plan.rop_after;
  sim_.post_at(
      std::max(slot_t0 + timing_.sig_phase_offset(), sim_.now()),
      [this, codes, g, rop] { send_burst(codes, g, rop); });
  const TimeNs burst_end =
      slot_t0 + timing_.sig_phase_offset() + timing_.burst_air();
  sim_.post_at(std::max(burst_end, sim_.now()),
                   [this, g] { finish_slot(g); });
}

void DominoApMac::finish_slot(std::uint64_t g) {
  if (!powered_) return;
  Row* r = find_row(g);
  if (std::getenv("DMN_PLAN_DEBUG") && r != nullptr && r->plan.polls_in_rop) {
    std::fprintf(stderr, "%10.1f FINISH ap=%d g=%llu role=%d polls=%d\n",
                 to_usec(sim_.now()), node(),
                 static_cast<unsigned long long>(g),
                 static_cast<int>(r->plan.role), 1);
  }
  const TimeNs now = sim_.now();
  if (r != nullptr) {
    if (r->plan.polls_in_rop && r->plan.role != ApSlotPlan::Role::kNone) {
      execute_poll(g, now + timing_.wifi.slot_time);
    }
    // Self-continuation: the AP holds its schedule and an anchored slot
    // lattice ("last correctly received trigger as time reference"), so it
    // times its next pending transmission itself — whether that is the
    // adjacent slot or several slots ahead. Triggers arriving in between
    // refine the timing; the converter's RF triggers remain what starts
    // CLIENTS, which hold no schedule.
    Row* nxt = find_row(g + 1);
    if (nxt != nullptr && !nxt->executed &&
        nxt->plan.role == ApSlotPlan::Role::kTxData) {
      schedule_tx(g + 1, now + timing_.wifi.slot_time +
                             (r->plan.rop_after ? timing_.rop_duration()
                                                : 0));
    }
  }
  prune_executed(g);
  arm_self_start();
}

TimeNs DominoApMac::anchored_start(std::uint64_t g) const {
  if (!has_anchor()) return kTimeNever;
  TimeNs at = expected_start(g);
  for (std::uint64_t b : rop_boundaries_) {
    if (b >= anchor_tag() && b < g) at += timing_.rop_duration();
  }
  return at;
}

void DominoApMac::prune_executed(std::uint64_t upto) {
  while (!rop_boundaries_.empty() && upto > 8 &&
         *rop_boundaries_.begin() + 8 < upto) {
    rop_boundaries_.erase(rop_boundaries_.begin());
  }
  for (auto it = rows_.begin(); it != rows_.end();) {
    if (it->first + 2 < upto) {
      if (!it->second.executed) ++missed_rows_;
      it = rows_.erase(it);
    } else {
      ++it;
    }
  }
}

void DominoApMac::prune_tx_attempts() {
  // Packet ids are monotonic, so map order is age order: evict oldest.
  while (tx_attempts_.size() > kTxAttemptsCap) {
    tx_attempts_.erase(tx_attempts_.begin());
  }
}

void DominoApMac::execute_poll(std::uint64_t g, TimeNs at) {
  if (std::getenv("DMN_PLAN_DEBUG")) {
    std::fprintf(stderr, "%10.1f POLLREQ ap=%d g=%llu at=%.1f\n",
                 to_usec(sim_.now()), node(),
                 static_cast<unsigned long long>(g), to_usec(at));
  }
  sim_.post_at(std::max(at, sim_.now()), [this, g] {
    if (!powered_) return;
    if (radio_.transmitting()) {
      execute_poll(g, sim_.now() + kTxBusyRetry);
      return;
    }
    polling_ = true;
    poll_responses_.clear();
    if (trace_ != nullptr && trace_->on_poll) {
      trace_->on_poll(g, node(), sim_.now());
    }
    phy::Frame poll;
    poll.type = phy::FrameType::kPoll;
    poll.dst = topo::kNoNode;  // broadcast to associated clients
    poll.bytes = timing_.poll_bytes + timing_.wifi.mac_header_bytes;
    poll.duration = timing_.poll_air();
    poll.slot_tag = g;
    radio_.send(poll);
    sim_.post_in(poll.duration + timing_.wifi.slot_time +
                         timing_.rop_symbol + usec(2),
                     [this, g] { evaluate_poll(g); });
  });
}

void DominoApMac::evaluate_poll(std::uint64_t /*g*/) {
  polling_ = false;
  if (!powered_) return;
  ApReport report;
  report.ap = node();

  // Adjacency tolerance check among the simultaneous responders, with the
  // MAC-level model fitted from the signal-level ROP study (Figure 6).
  for (const PollResponse& r : poll_responses_) {
    if (!r.decoded) continue;
    std::vector<rop::RopLinkModel::CoClient> others;
    double my_rss = topo::kRssFaint;
    for (const ClientInfo& ci : clients_) {
      if (ci.client == r.client) {
        my_rss = ci.rss_at_ap;
        continue;
      }
      for (const PollResponse& o : poll_responses_) {
        if (o.client == ci.client && o.decoded) {
          others.push_back({ci.subchannel, ci.rss_at_ap});
          break;
        }
      }
    }
    const bool ok = rop_model_.report_decodes(
        r.subchannel, my_rss, others,
        radio_.medium().topology().thresholds().noise_floor_dbm,
        radio_.medium().external_interference_mw());
    if (ok) {
      report.clients.push_back(ClientQueueReport{r.client, r.report});
    }
  }
  // Piggyback the AP's own downlink backlog per client.
  for (const ClientInfo& ci : clients_) {
    report.downlink.push_back(ClientQueueReport{
        ci.client,
        static_cast<unsigned>(std::min<std::size_t>(
            queue_.count_for(ci.client), 1023))});
  }
  if (report_fn_) report_fn_(report);
}

void DominoApMac::handle_frame(const phy::Frame& frame,
                               const phy::RxInfo& info) {
  switch (frame.type) {
    case phy::FrameType::kData:
    case phy::FrameType::kFakeHeader: {
      if (frame.dst != node() || !info.decoded) break;
      // Match the earliest pending (non-stale) uplink row expecting this
      // client.
      Row* match = nullptr;
      for (auto& [g, row] : rows_) {
        if (frontier_ != 0 && g <= frontier_) continue;
        if (!row.executed && row.plan.role == ApSlotPlan::Role::kRxData &&
            row.plan.peer == frame.src) {
          match = &row;
          break;
        }
      }
      const bool is_data = frame.type == phy::FrameType::kData;
      // ACK after SIFS, carrying the client's signature instruction
      // (Figure 8b). Fake headers are acknowledged too: the ACK phase is
      // part of the fixed slot structure and it is the only carrier for
      // the client's S1 samples / continuation bit on uplink slots.
      phy::SignatureBurst instr;
      std::uint64_t tag = frame.slot_tag;
      if (match != nullptr) {
        instr.codes = match->plan.client_codes;
        instr.start_signature = !match->plan.rop_after;
        instr.rop_signature = match->plan.rop_after;
        instr.continue_next = match->plan.client_continue;
        tag = match->plan.global_index;
      } else {
        instr.start_signature = true;
      }
      const auto ack_for = frame.packet_id;
      const auto back_to = frame.src;
      // The ACK always sits at the slot's fixed ACK phase — even for a
      // header-only fake packet — so concurrent links' ACK phases align
      // and only interfere with each other, never with data.
      const TimeNs ack_at =
          is_data ? timing_.wifi.sifs
                  : timing_.data_air() - timing_.fake_air() +
                        timing_.wifi.sifs;
      sim_.post_in(ack_at, [this, ack_for, back_to, instr, tag] {
        phy::Frame ack;
        ack.type = phy::FrameType::kAck;
        ack.dst = back_to;
        ack.bytes = timing_.wifi.ack_bytes;
        ack.duration = timing_.ack_air();
        ack.packet_id = ack_for;
        ack.slot_tag = tag;
        ack.client_instruction = instr;
        radio_.send(ack);
      });
      if (is_data && frame.packet.has_value()) {
        if (seen_[frame.src].insert(frame.packet_id)) {
          deliver_(*frame.packet, node(), sim_.now());
        }
      }
      if (match != nullptr) {
        match->executed = true;
        ++rows_executed_;
        advance_frontier(match->plan.global_index);
        note_chain_resume(sim_.now());
        const TimeNs t0 =
            sim_.now() - (is_data ? timing_.data_air() : timing_.fake_air());
        TimeNs anchor_t0 = t0;
        const TimeNs lattice = anchored_start(match->plan.global_index);
        if (lattice != kTimeNever && t0 > lattice &&
            t0 - lattice < timing_.slot_duration() / 4) {
          anchor_t0 = lattice;
        }
        update_anchor(match->plan.global_index, anchor_t0, /*force=*/true);
        after_data_phase(*match, t0, /*uplink=*/true);
      }
      break;
    }
    case phy::FrameType::kAck: {
      if (frame.dst != node() || !info.decoded) break;
      if (awaiting_ack_valid_ && frame.packet_id == awaiting_ack_) {
        sim_.cancel(ack_timer_);
        awaiting_ack_valid_ = false;
        tx_attempts_.erase(awaiting_ack_);
        (void)queue_.pop_for(awaiting_peer_);
      }
      break;
    }
    case phy::FrameType::kRopResponse: {
      if (frame.dst != node() || !polling_) break;
      poll_responses_.push_back(PollResponse{frame.src, frame.subchannel,
                                             frame.queue_report,
                                             info.decoded});
      break;
    }
    default:
      break;
  }
}

// --------------------------------------------------------------------------
// DominoClientMac
// --------------------------------------------------------------------------

DominoClientMac::DominoClientMac(sim::Simulator& sim, phy::Medium& medium,
                                 topo::NodeId node, topo::NodeId ap,
                                 std::size_t subchannel,
                                 const DominoTiming& timing,
                                 const SignaturePlan& signatures,
                                 const phy::SignatureDetectionModel& model,
                                 Rng rng, mac::DeliveryFn deliver,
                                 DominoTrace* trace)
    : DominoNodeBase(sim, medium, node, timing, signatures, model,
                     std::move(rng), trace),
      ap_(ap),
      subchannel_(subchannel),
      deliver_(std::move(deliver)),
      queue_(timing.wifi.queue_capacity) {}

bool DominoClientMac::enqueue(traffic::Packet p) {
  p.enqueued = sim_.now();
  return queue_.push(std::move(p));
}

void DominoClientMac::on_trigger_detected(std::uint64_t tag, bool rop,
                                          TimeNs detect_time) {
  // Transmit in slot tag+1, one WiFi slot after the trigger (plus the ROP
  // exchange when the boundary carries an ROP slot).
  schedule_data_tx(tag + 1, detect_time + timing_.wifi.slot_time +
                                (rop ? timing_.rop_duration() : 0));
}

void DominoClientMac::on_anchor_moved() {
  if (!tx_scheduled_) return;
  const TimeNs snapped = expected_start(tx_slot_tag_);
  if (snapped > sim_.now() &&
      std::abs(snapped - tx_scheduled_at_) < timing_.slot_duration() / 4) {
    sim_.cancel(tx_event_);
    tx_scheduled_at_ = snapped;
    tx_event_ =
        sim_.schedule_at(snapped, [this] { execute_tx(tx_slot_tag_); });
  }
}

void DominoClientMac::schedule_data_tx(std::uint64_t tag, TimeNs at) {
  if (tag <= last_tx_tag_ && last_tx_tag_ != 0) return;  // stale trigger
  // Clients snap to their anchored slot lattice too: when the passively
  // heard network lattice says this slot starts later than the in-band
  // instruction implies, defer to the lattice. This is also how an AP that
  // hears nobody re-synchronizes -- through the observed timing of its own
  // client's transmissions.
  if (std::getenv("DMN_CLIENT_SNAP") && has_anchor()) {
    const TimeNs anchored = expected_start(tag);
    if (anchored > at && anchored - at < 2 * timing_.slot_duration()) {
      at = anchored;
    }
  }
  // Later triggers re-anchor a still-pending transmission ("last correctly
  // received trigger as time reference").
  if (tx_scheduled_) sim_.cancel(tx_event_);
  tx_scheduled_ = true;
  tx_slot_tag_ = tag;
  tx_scheduled_at_ = std::max(at, sim_.now());
  tx_event_ = sim_.schedule_at(tx_scheduled_at_,
                               [this] { execute_tx(tx_slot_tag_); });
}

void DominoClientMac::handle_continuation(const phy::SignatureBurst& instr,
                                          std::uint64_t tag, TimeNs slot_t0) {
  if (!instr.continue_next) return;
  if (trace_ != nullptr && trace_->on_continuation) {
    trace_->on_continuation(tag + 1, node(), sim_.now());
  }
  const TimeNs next_t0 =
      slot_t0 + timing_.slot_duration() +
      (instr.rop_signature ? timing_.rop_duration() : 0);
  schedule_data_tx(tag + 1, next_t0);
}

void DominoClientMac::execute_tx(std::uint64_t slot_tag) {
  tx_scheduled_ = false;
  if (radio_.transmitting()) {
    tx_scheduled_ = true;
    tx_event_ = sim_.schedule_in(kTxBusyRetry,
                                 [this, slot_tag] { execute_tx(slot_tag); });
    return;
  }
  last_tx_tag_ = std::max(last_tx_tag_, slot_tag);
  note_chain_resume(sim_.now());
  const traffic::Packet* head = queue_.front();
  if (trace_ != nullptr && trace_->on_data_tx) {
    trace_->on_data_tx(slot_tag, node(), ap_, sim_.now(), head == nullptr,
                       /*uplink=*/true);
  }
  phy::Frame f;
  f.dst = ap_;
  f.slot_tag = slot_tag;
  if (head != nullptr) {
    f.type = phy::FrameType::kData;
    f.bytes = head->bytes + timing_.wifi.mac_header_bytes;
    f.duration = timing_.data_air();
    f.packet = *head;
    f.packet_id = head->id;
    f.is_retry = awaiting_ack_valid_ && awaiting_ack_ == head->id;
    awaiting_ack_ = head->id;
    awaiting_ack_valid_ = true;
    sim_.cancel(ack_timer_);
    ack_timer_ = sim_.schedule_in(
        f.duration + timing_.wifi.sifs + timing_.ack_air() +
            timing_.wifi.slot_time,
        [this] {
          // Missed ACK (§3.5): the packet stays at the head of the queue
          // and is retransmitted on the next trigger.
          ++ack_timeouts_;
        });
  } else {
    f.type = phy::FrameType::kFakeHeader;
    f.bytes = timing_.fake_header_bytes;
    f.duration = timing_.fake_air();
  }
  radio_.send(f);
}

void DominoClientMac::schedule_instructed_burst(
    const phy::SignatureBurst& instr, std::uint64_t tag, TimeNs at) {
  if (instr.codes.empty()) return;
  const std::vector<std::size_t> codes = instr.codes;
  const bool rop = instr.rop_signature;
  sim_.post_at(std::max(at, sim_.now()), [this, codes, tag, rop] {
    send_burst(codes, tag, rop);
  });
}

void DominoClientMac::handle_frame(const phy::Frame& frame,
                                   const phy::RxInfo& info) {
  if (!info.decoded) return;
  switch (frame.type) {
    case phy::FrameType::kData: {
      if (frame.dst != node() || frame.src != ap_ ||
          !frame.packet.has_value()) {
        break;
      }
      // ACK after SIFS.
      const auto ack_for = frame.packet_id;
      const auto tag = frame.slot_tag;
      sim_.post_in(timing_.wifi.sifs, [this, ack_for, tag] {
        phy::Frame ack;
        ack.type = phy::FrameType::kAck;
        ack.dst = ap_;
        ack.bytes = timing_.wifi.ack_bytes;
        ack.duration = timing_.ack_air();
        ack.packet_id = ack_for;
        ack.slot_tag = tag;
        radio_.send(ack);
      });
      if (seen_.insert(frame.packet_id)) {
        deliver_(*frame.packet, node(), sim_.now());
        // Auditor self-test defect (audit::Mutation::kMacDoubleDelivery).
        if (test_double_delivery_) deliver_(*frame.packet, node(), sim_.now());
      }
      // Rebroadcast the instructed signatures at the slot's signature
      // phase: our ACK ends at now + SIFS + ack_air; burst one slot later.
      if (frame.client_instruction.has_value()) {
        schedule_instructed_burst(*frame.client_instruction, frame.slot_tag,
                                  sim_.now() + timing_.wifi.sifs +
                                      timing_.ack_air() +
                                      timing_.wifi.slot_time);
        handle_continuation(*frame.client_instruction, frame.slot_tag,
                            sim_.now() - timing_.data_air());
      }
      break;
    }
    case phy::FrameType::kFakeHeader: {
      if (frame.dst != node() || frame.src != ap_) break;
      if (frame.client_instruction.has_value()) {
        // Fixed slot structure: the signature phase sits at the same offset
        // from the slot start whether the data phase was real or fake.
        const TimeNs slot_t0 = sim_.now() - timing_.fake_air();
        schedule_instructed_burst(*frame.client_instruction, frame.slot_tag,
                                  slot_t0 + timing_.sig_phase_offset());
        handle_continuation(*frame.client_instruction, frame.slot_tag,
                            slot_t0);
      }
      break;
    }
    case phy::FrameType::kAck: {
      if (frame.dst != node() || frame.src != ap_) break;
      if (awaiting_ack_valid_ && frame.packet_id == awaiting_ack_) {
        sim_.cancel(ack_timer_);
        awaiting_ack_valid_ = false;
        queue_.pop();  // the acked packet was the head
      }
      // Uplink slots: the instruction rides the AP's ACK (Figure 8b); the
      // burst goes at the slot's fixed signature-phase offset. ACKs sit at
      // the same slot phase whether the data was real or a fake header.
      if (frame.client_instruction.has_value()) {
        const TimeNs t0 = sim_.now() - timing_.ack_air() -
                          timing_.wifi.sifs - timing_.data_air();
        schedule_instructed_burst(*frame.client_instruction, frame.slot_tag,
                                  t0 + timing_.sig_phase_offset());
        handle_continuation(*frame.client_instruction, frame.slot_tag, t0);
      }
      break;
    }
    case phy::FrameType::kPoll: {
      if (frame.src != ap_) break;
      const auto tag = frame.slot_tag;
      sim_.post_in(timing_.wifi.slot_time, [this, tag] {
        phy::Frame resp;
        resp.type = phy::FrameType::kRopResponse;
        resp.dst = ap_;
        resp.duration = timing_.rop_symbol;
        resp.subchannel = subchannel_;
        resp.queue_report = static_cast<unsigned>(
            std::min<std::size_t>(queue_.size(), 63));
        // Auditor self-test defect (audit::Mutation::kRopReportOffset).
        if (test_rop_report_offset_) ++resp.queue_report;
        resp.slot_tag = tag;
        radio_.send(resp);
      });
      break;
    }
    default:
      break;
  }
}

}  // namespace dmn::domino
