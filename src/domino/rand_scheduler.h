#pragma once
// Greedy maximal-independent-set scheduler modelled on RAND (Ramanathan,
// "A unified framework and algorithm for channel assignment in wireless
// networks"), as adapted by the paper (§4.2.1):
//
//   * take the first link in the queue Q with demand; seed the slot set C;
//   * scan Q, adding every link with demand that conflicts with nothing in
//     C (maximal extension);
//   * move the members of C to the tail of Q (round-robin fairness);
//   * repeat for each slot of the batch, decrementing a demand copy.
//
// The same object is reused across batches so the fairness rotation
// persists, exactly like the paper's long-running scheduler.

#include <vector>

#include "topo/conflict_graph.h"

namespace dmn::domino {

class RandScheduler {
 public:
  explicit RandScheduler(const topo::ConflictGraph& graph);

  /// One slot: a maximal set of conflict-free links among those with
  /// demand[link] > 0. Rotates the fairness queue.
  std::vector<topo::LinkId> schedule_slot(
      const std::vector<std::size_t>& demand);

  /// A batch of up to `slots` slots; consumes a copy of `demand` (one unit
  /// per scheduled slot). Stops early when demand is exhausted — but always
  /// returns at least one (possibly empty) slot so the relative chain keeps
  /// ticking.
  std::vector<std::vector<topo::LinkId>> schedule_batch(
      std::vector<std::size_t> demand, std::size_t slots);

  const topo::ConflictGraph& graph() const { return graph_; }

 private:
  const topo::ConflictGraph& graph_;
  std::vector<topo::LinkId> queue_;  // fairness rotation order
};

}  // namespace dmn::domino
