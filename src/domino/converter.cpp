#include "domino/converter.h"

#include <algorithm>
#include <map>
#include <set>

namespace dmn::domino {

ScheduleConverter::ScheduleConverter(const topo::Topology& topo,
                                     const topo::ConflictGraph& graph,
                                     const SignaturePlan& signatures,
                                     const ConverterParams& params)
    : topo_(topo), graph_(graph), signatures_(signatures), params_(params) {}

std::vector<topo::NodeId> ScheduleConverter::endpoints(
    const RelSlot& slot) const {
  std::vector<topo::NodeId> out;
  for (const SlotEntry& e : slot.entries) {
    const topo::Link& l = graph_.link(e.link);
    out.push_back(l.sender);
    out.push_back(l.receiver);
  }
  return out;
}

bool ScheduleConverter::can_trigger(topo::NodeId via,
                                    topo::NodeId target) const {
  if (via == target) return true;
  return topo_.rss(via, target) >= params_.trigger_rss_floor_dbm;
}

bool ScheduleConverter::aps_can_share_rop(topo::NodeId a,
                                          topo::NodeId b) const {
  // Two APs may poll together iff none of their associated links conflict.
  for (std::size_t i = 0; i < graph_.num_links(); ++i) {
    const topo::Link& la = graph_.link(static_cast<topo::LinkId>(i));
    if (la.sender != a && la.receiver != a) continue;
    for (std::size_t j = 0; j < graph_.num_links(); ++j) {
      const topo::Link& lb = graph_.link(static_cast<topo::LinkId>(j));
      if (lb.sender != b && lb.receiver != b) continue;
      if (graph_.conflicts(static_cast<topo::LinkId>(i),
                           static_cast<topo::LinkId>(j))) {
        return false;
      }
    }
  }
  return true;
}

void ScheduleConverter::assign_triggers(RelSlot& from, RelSlot& to) {
  if (from.entries.empty()) {
    // Very first batch: no preceding slot exists, so nothing can trigger —
    // the APs individually self-start this slot from their local clocks
    // (§3.3 batch connection). Keep every entry, assign no triggers. Polls
    // forced onto this boundary stay: the polling AP self-starts the poll
    // from its anchored lattice, exactly like an untriggerable real entry
    // (dropping them here silently lost a demanded poll each time the
    // forced ROP placement landed on an empty overlap slot).
    return;
  }
  // Targets: senders of `to`'s entries, plus APs polling right after
  // `from`. Clients must receive an explicit signature; APs self-continue
  // when they are an endpoint of `from`. Priority order: real entries,
  // then polling APs, then fake entries — a fake client target may be
  // *sacrificed* (used as a via instead of listening for its own trigger)
  // when it is the only node that can reach a higher-priority target.
  struct Target {
    topo::NodeId node;
    bool is_entry;           // false for polling APs
    bool fake;
    std::size_t entry_index; // into to.entries when is_entry
  };
  std::vector<Target> targets;
  for (std::size_t i = 0; i < to.entries.size(); ++i) {
    if (to.entries[i].fake) continue;
    const topo::Link& l = graph_.link(to.entries[i].link);
    targets.push_back(Target{l.sender, true, false, i});
  }
  for (topo::NodeId ap : from.rop_aps) {
    targets.push_back(Target{ap, false, false, 0});
  }
  for (std::size_t i = 0; i < to.entries.size(); ++i) {
    if (!to.entries[i].fake) continue;
    const topo::Link& l = graph_.link(to.entries[i].link);
    targets.push_back(Target{l.sender, true, true, i});
  }

  const std::vector<topo::NodeId> vias = endpoints(from);
  std::map<topo::NodeId, int> outbound;
  std::map<topo::NodeId, int> inbound;

  // Instructed continuation: a client target that is already an endpoint
  // of `from` gets its "go again" in-band from its AP (data frame or ACK),
  // costing nothing and requiring no listening.
  std::set<topo::NodeId> continuation_ok;
  for (const SlotEntry& e : from.entries) {
    const topo::Link& l = graph_.link(e.link);
    const topo::NodeId client =
        topo_.node(l.sender).is_ap ? l.receiver : l.sender;
    continuation_ok.insert(client);
  }

  // Clients that must *listen* at this boundary — next-slot senders of
  // REAL entries without a continuation path cannot broadcast signatures
  // at the same instant (half-duplex would make them deaf to their own
  // trigger).
  std::set<topo::NodeId> must_listen;
  for (const Target& t : targets) {
    if (!t.fake && !topo_.node(t.node).is_ap &&
        !continuation_ok.contains(t.node)) {
      must_listen.insert(t.node);
    }
  }
  // Clients actually used as vias: a fake target among them loses its slot.
  std::set<topo::NodeId> used_as_via;

  auto pick_via = [&](const Target& tgt,
                      const std::vector<topo::NodeId>& exclude)
      -> topo::NodeId {
    const topo::NodeId target = tgt.node;
    // Self-continuation: free, APs only (they hold the schedule).
    const bool target_is_ap = topo_.node(target).is_ap;
    if (target_is_ap &&
        std::find(vias.begin(), vias.end(), target) != vias.end() &&
        std::find(exclude.begin(), exclude.end(), target) == exclude.end()) {
      return target;
    }
    topo::NodeId best = topo::kNoNode;
    double best_rss = -1e9;
    for (topo::NodeId v : vias) {
      if (v == target) continue;  // clients cannot self-time
      if (must_listen.contains(v)) continue;
      if (std::find(exclude.begin(), exclude.end(), v) != exclude.end()) {
        continue;
      }
      if (outbound[v] >= params_.max_outbound) continue;
      if (!can_trigger(v, target)) continue;
      const double rss = topo_.rss(v, target);
      if (rss > best_rss) {
        best_rss = rss;
        best = v;
      }
    }
    return best;
  };

  auto assign_one = [&](const Target& tgt,
                        std::vector<topo::NodeId>& already) -> bool {
    const bool is_client = !topo_.node(tgt.node).is_ap;
    // Continuation first: free and robust for clients staying active.
    if (is_client && continuation_ok.contains(tgt.node) &&
        already.empty()) {
      const topo::NodeId ap = topo_.node(tgt.node).ap;
      already.push_back(ap);
      from.triggers.push_back(Trigger{ap, tgt.node, /*continuation=*/true});
      ++inbound[tgt.node];
      return true;
    }
    // A (fake) client already bursting as a via cannot also listen.
    if (is_client && used_as_via.contains(tgt.node)) {
      return false;
    }
    // Continuation clients do not listen; they cannot take RF backups.
    if (is_client && continuation_ok.contains(tgt.node)) return false;
    const topo::NodeId via = pick_via(tgt, already);
    if (via == topo::kNoNode) return false;
    already.push_back(via);
    from.triggers.push_back(Trigger{via, tgt.node});
    ++inbound[tgt.node];
    if (via != tgt.node) {
      ++outbound[via];
      if (!topo_.node(via).is_ap) used_as_via.insert(via);
    }
    return true;
  };

  // Pass 1 in priority order, then pass 2 (backup trigger) where budgets
  // allow.
  std::vector<bool> reachable(targets.size(), false);
  std::vector<std::vector<topo::NodeId>> assigned(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    reachable[t] = assign_one(targets[t], assigned[t]);
  }
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (!reachable[t]) continue;
    if (inbound[targets[t].node] >= params_.max_inbound) continue;
    assign_one(targets[t], assigned[t]);
  }

  // Fake entries whose sender was sacrificed as a via (or is otherwise
  // unreachable) are dropped — they are optional filler. Real entries and
  // polling APs are KEPT even when untriggerable: the AP holds the
  // schedule and executes the slot from its anchored slot lattice (the
  // generalized "APs individually start executing" rule); a downlink AP
  // with no RF trigger path would otherwise starve forever. Untriggered
  // uplink entries rely on the AP-side kick.
  std::vector<SlotEntry> kept;
  for (std::size_t t = 0; t < targets.size(); ++t) {
    if (!targets[t].is_entry) continue;
    if (reachable[t] || !targets[t].fake) {
      kept.push_back(to.entries[targets[t].entry_index]);
      if (!reachable[t]) ++dropped_;  // stat: executed on lattice timing
    }
  }
  to.entries = std::move(kept);
}

RelativeSchedule ScheduleConverter::convert(
    const std::vector<std::vector<topo::LinkId>>& strict,
    const std::vector<SlotEntry>& prev_last,
    const std::vector<topo::NodeId>& rop_aps_needed, std::uint64_t batch_id,
    std::uint64_t first_global_index) {
  RelativeSchedule rs;
  rs.batch_id = batch_id;

  // Overlap slot (batch connection).
  RelSlot overlap;
  overlap.global_index = first_global_index;
  overlap.entries = prev_last;
  rs.slots.push_back(std::move(overlap));

  // New slots with fake-link insertion.
  std::vector<topo::LinkId> all_links(graph_.num_links());
  for (std::size_t i = 0; i < all_links.size(); ++i) {
    all_links[i] = static_cast<topo::LinkId>(i);
  }
  for (std::size_t s = 0; s < strict.size(); ++s) {
    RelSlot slot;
    slot.global_index = first_global_index + 1 + s;
    std::vector<topo::LinkId> links = strict[s];
    const std::size_t real_count = links.size();
    if (params_.insert_fake_links) {
      graph_.extend_to_maximal(links, all_links);
    }
    for (std::size_t i = 0; i < links.size(); ++i) {
      slot.entries.push_back(SlotEntry{links[i], i >= real_count});
    }
    rs.slots.push_back(std::move(slot));
  }

  // Greedy ROP insertion (before triggers so polling APs get triggers too).
  // Boundary 0 is the overlap slot — it may already be executing when this
  // batch's plan reaches the APs, so polls there could be silently lost;
  // start at boundary 1.
  for (topo::NodeId ap : rop_aps_needed) {
    bool placed = false;
    for (std::size_t i = 1; i + 1 < rs.slots.size() && !placed; ++i) {
      RelSlot& si = rs.slots[i];
      // Can si trigger this AP?
      bool reachable = false;
      for (topo::NodeId v : endpoints(si)) {
        if (v == ap || can_trigger(v, ap)) {
          reachable = true;
          break;
        }
      }
      if (!reachable) continue;
      if (!si.rop_after) {
        si.rop_after = true;
        si.rop_aps.push_back(ap);
        placed = true;
      } else {
        bool shareable = true;
        for (topo::NodeId other : si.rop_aps) {
          if (!aps_can_share_rop(ap, other)) {
            shareable = false;
            break;
          }
        }
        if (shareable) {
          si.rop_aps.push_back(ap);
          placed = true;
        }
      }
    }
    if (!placed && rs.slots.size() > 1) {
      // No boundary can trigger this AP: poll anyway at the last boundary;
      // the AP self-starts the poll from its schedule anchor.
      RelSlot& last = rs.slots[rs.slots.size() - 2];
      last.rop_after = true;
      last.rop_aps.push_back(ap);
    }
  }

  // Trigger assignment across consecutive slot pairs.
  for (std::size_t i = 0; i + 1 < rs.slots.size(); ++i) {
    assign_triggers(rs.slots[i], rs.slots[i + 1]);
  }

  // Auditor self-test defects (src/audit): corrupt the otherwise-correct
  // output the way a converter bug would, so the auditor must flag it.
  if (test_defect_ == TestDefect::kExtraTrigger) {
    for (RelSlot& s : rs.slots) {
      auto it = std::find_if(
          s.triggers.begin(), s.triggers.end(),
          [](const Trigger& t) { return !t.continuation; });
      if (it == s.triggers.end()) continue;
      const Trigger dup = *it;
      for (int i = 0; i <= params_.max_inbound; ++i) s.triggers.push_back(dup);
      break;
    }
  } else if (test_defect_ == TestDefect::kConflictingEntry) {
    for (std::size_t i = 1; i < rs.slots.size(); ++i) {
      RelSlot& s = rs.slots[i];
      if (s.entries.empty()) continue;
      const topo::LinkId a = s.entries.front().link;
      topo::LinkId bad = a;  // fallback: a duplicate entry is also invalid
      for (topo::LinkId b : all_links) {
        if (b != a && graph_.data_conflicts(a, b)) {
          bad = b;
          break;
        }
      }
      s.entries.push_back(SlotEntry{bad, /*fake=*/true});
      break;
    }
  }
  return rs;
}

std::vector<ApSchedule> ScheduleConverter::make_ap_plans(
    const RelativeSchedule& rs) const {
  std::map<topo::NodeId, ApSchedule> plans;
  const std::uint64_t first_new =
      rs.slots.size() > 1 ? rs.slots[1].global_index
                          : rs.slots.front().global_index;
  std::vector<std::uint64_t> rop_boundaries;
  for (const RelSlot& slot : rs.slots) {
    if (slot.rop_after) rop_boundaries.push_back(slot.global_index);
  }
  for (topo::NodeId ap : topo_.aps()) {
    plans[ap].ap = ap;
    plans[ap].batch_id = rs.batch_id;
    plans[ap].batch_first_slot = first_new;
    plans[ap].rop_boundaries = rop_boundaries;
  }

  for (const RelSlot& slot : rs.slots) {
    // Start a plan row for any AP that acts in this slot.
    std::map<topo::NodeId, ApSlotPlan> rows;
    auto row = [&](topo::NodeId ap) -> ApSlotPlan& {
      auto [it, fresh] = rows.try_emplace(ap);
      if (fresh) it->second.global_index = slot.global_index;
      return it->second;
    };

    for (const SlotEntry& e : slot.entries) {
      const topo::Link& l = graph_.link(e.link);
      const bool down = topo_.node(l.sender).is_ap;
      const topo::NodeId ap = down ? l.sender : l.receiver;
      ApSlotPlan& r = row(ap);
      r.role = down ? ApSlotPlan::Role::kTxData : ApSlotPlan::Role::kRxData;
      r.peer = down ? l.receiver : l.sender;
      r.fake = e.fake;
    }
    for (const Trigger& t : slot.triggers) {
      if (t.continuation) {
        // In-band "go again" for the via-AP's client.
        row(t.via).client_continue = true;
        continue;
      }
      if (t.via == t.target) continue;  // self-continuation, no airtime
      const topo::Node& via_node = topo_.node(t.via);
      const std::size_t code = signatures_.code_of(t.target);
      if (via_node.is_ap) {
        row(t.via).my_codes.push_back(code);
      } else {
        // Client via: the instruction rides its AP's data frame or ACK.
        row(via_node.ap).client_codes.push_back(code);
      }
    }
    if (slot.rop_after) {
      for (const SlotEntry& e : slot.entries) {
        const topo::Link& l = graph_.link(e.link);
        const topo::NodeId ap =
            topo_.node(l.sender).is_ap ? l.sender : l.receiver;
        row(ap).rop_after = true;
      }
      for (topo::NodeId ap : slot.rop_aps) {
        ApSlotPlan& r = row(ap);
        r.rop_after = true;
        r.polls_in_rop = true;
      }
    }
    for (auto& [ap, plan_row] : rows) {
      plans[ap].slots.push_back(std::move(plan_row));
    }
  }

  std::vector<ApSchedule> out;
  out.reserve(plans.size());
  for (auto& [ap, plan] : plans) {
    (void)ap;
    out.push_back(std::move(plan));
  }
  return out;
}

}  // namespace dmn::domino
