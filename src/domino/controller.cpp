#include "domino/controller.h"

#include <algorithm>

#include "fault/fault_injector.h"

namespace dmn::domino {

DominoController::DominoController(sim::Simulator& sim,
                                   wired::Backbone& backbone,
                                   const topo::Topology& topo,
                                   const topo::ConflictGraph& graph,
                                   const SignaturePlan& signatures,
                                   const DominoParams& params,
                                   const ConverterParams& conv_params,
                                   TimeNs slot_duration, TimeNs rop_duration)
    : sim_(sim),
      backbone_(backbone),
      topo_(topo),
      graph_(graph),
      converter_(topo, graph, signatures, conv_params),
      rand_(graph),
      params_(params),
      slot_duration_(slot_duration),
      rop_duration_(rop_duration) {}

void DominoController::start(TimeNs at) {
  sim_.post_at(at, [this] { plan_batch(); });
}

std::vector<std::size_t> DominoController::demand_vector() const {
  std::vector<std::size_t> demand(graph_.num_links(), 0);
  for (const auto& [link, est] : estimates_) {
    demand[static_cast<std::size_t>(link)] = est;
  }
  if (peek_) {
    for (std::size_t i = 0; i < graph_.num_links(); ++i) {
      const topo::Link& l = graph_.link(static_cast<topo::LinkId>(i));
      if (topo_.node(l.sender).is_ap) {
        demand[i] = peek_(l);
      }
    }
  }
  return demand;
}

void DominoController::plan_batch() {
  sim_.cancel(plan_timer_);
  if (faults_ != nullptr && faults_->controller_down(sim_.now())) {
    // Controller outage: no planning, no dispatch. Resume at the window's
    // end; the chain keeps running on the last plans the APs received.
    ++outage_skips_;
    faults_->note_controller_outage_skip();
    plan_timer_ = sim_.schedule_at(faults_->controller_up_at(sim_.now()),
                                   [this] { plan_batch(); });
    return;
  }
  ++batches_;

  // Poll every `batches_per_poll` batches.
  std::vector<topo::NodeId> rop_aps;
  if ((batches_ - 1) % params_.batches_per_poll == 0) {
    rop_aps = topo_.aps();
  }

  std::vector<std::size_t> demand = demand_vector();
  std::vector<std::vector<topo::LinkId>> strict =
      rand_.schedule_batch(demand, params_.batch_slots);
  // Pad with empty slots so the batch (and thus the trigger chain / polling
  // cadence) keeps a steady length even with no demand; fake-link insertion
  // fills these with maximal covers.
  while (strict.size() < params_.batch_slots) strict.emplace_back();

  // Optimistically decrement estimates by what got scheduled.
  for (const auto& slot : strict) {
    for (topo::LinkId l : slot) {
      auto it = estimates_.find(l);
      if (it != estimates_.end() && it->second > 0) --it->second;
    }
  }

  RelativeSchedule rs =
      converter_.convert(strict, prev_last_, rop_aps, batches_,
                         next_global_slot_);
  if (schedule_obs_ != nullptr) {
    schedule_obs_->on_batch_planned(strict, rs, prev_last_, rop_aps);
  }
  prev_last_ = rs.slots.back().entries;
  next_global_slot_ += rs.slots.size() - 1;  // overlap slot is shared

  pending_polls_.clear();
  for (const RelSlot& s : rs.slots) {
    for (topo::NodeId ap : s.rop_aps) pending_polls_.insert(ap);
  }

  if (dispatch_) {
    for (const ApSchedule& plan : converter_.make_ap_plans(rs)) {
      if (plan.slots.empty()) continue;
      // Routed to the AP's partition queue; the dispatch closure only
      // touches that AP's MAC (the controller-side state stays here).
      backbone_.send_to_node(plan.ap, [this, plan] { dispatch_(plan); });
    }
  }

  // Plan the next batch once all polls report, or — when reports are lost
  // or this batch has no polls — when the batch's expected airtime elapses.
  // The fallback must not exceed the batch airtime: a late plan means the
  // overlap slot executes before its follow-up triggers arrive.
  std::size_t rop_slots = 0;
  for (const RelSlot& s : rs.slots) {
    if (s.rop_after) ++rop_slots;
  }
  const TimeNs batch_airtime =
      static_cast<TimeNs>(params_.batch_slots) * slot_duration_ +
      static_cast<TimeNs>(rop_slots) * rop_duration_;
  plan_timer_ = sim_.schedule_in(batch_airtime, [this] { plan_batch(); });
}

void DominoController::on_ap_report(const ApReport& report) {
  if (faults_ != nullptr && faults_->controller_down(sim_.now())) {
    return;  // the silent controller loses reports addressed to it
  }
  for (const ClientQueueReport& c : report.clients) {
    const topo::LinkId l = graph_.find(topo::Link{c.client, report.ap});
    if (l != topo::kNoLink) {
      estimates_[l] = c.reported;
    }
  }
  for (const ClientQueueReport& c : report.downlink) {
    const topo::LinkId l = graph_.find(topo::Link{report.ap, c.client});
    if (l != topo::kNoLink) {
      estimates_[l] = c.reported;
    }
  }
  pending_polls_.erase(report.ap);
  if (pending_polls_.empty()) {
    // All polls in: plan the next batch now (pipelined with execution).
    plan_batch();
  }
}

}  // namespace dmn::domino
