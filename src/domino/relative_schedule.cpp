#include "domino/relative_schedule.h"

// Data-model header; this TU anchors the module in the archive.
namespace dmn::domino {}
