#include "fault/fault_injector.h"

#include <algorithm>

#include "phy/medium.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace dmn::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, std::size_t num_nodes,
                             const FaultPlan& plan, Rng rng)
    : sim_(sim), plan_(plan), rng_(std::move(rng)) {
  // Draw per-node skews up front so lookup order cannot perturb the RNG
  // stream; all-zero when the knob is off (no draws consumed).
  skew_ppm_.assign(num_nodes, 0.0);
  if (plan_.clock.any()) {
    for (double& s : skew_ppm_) {
      s = rng_.uniform(-plan_.clock.max_skew_ppm, plan_.clock.max_skew_ppm);
    }
  }
  std::size_t lanes = 1;
  if (sim_.partitioned()) {
    lanes = sim_.partition_count() + 1;  // + wired queue
    lane_rngs_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) lane_rngs_.push_back(rng_.fork());
  }
  lane_counters_.resize(lanes);
}

Rng& FaultInjector::lane_rng() {
  if (lane_rngs_.empty()) return rng_;
  return lane_rngs_[sim_.active_queue_index()];
}

FaultCounters& FaultInjector::lane_counters() {
  if (lane_counters_.size() == 1) return lane_counters_[0];
  return lane_counters_[sim_.active_queue_index()];
}

FaultCounters FaultInjector::counters() const {
  FaultCounters out;
  for (const FaultCounters& c : lane_counters_) {
    out.backbone_drops += c.backbone_drops;
    out.backbone_dups += c.backbone_dups;
    out.backbone_spikes += c.backbone_spikes;
    out.interference_bursts += c.interference_bursts;
    out.controller_outage_skips += c.controller_outage_skips;
    out.forced_trigger_losses += c.forced_trigger_losses;
    out.forced_trigger_false_positives += c.forced_trigger_false_positives;
  }
  return out;
}

void FaultInjector::note_controller_outage_skip() {
  ++lane_counters().controller_outage_skips;
}

bool FaultInjector::forge_trigger(Rng& node_rng) {
  if (!node_rng.chance(plan_.signature.false_positive_rate)) return false;
  ++lane_counters().forced_trigger_false_positives;
  return true;
}

void FaultInjector::note_trigger_loss() {
  ++lane_counters().forced_trigger_losses;
}

wired::DeliveryMod FaultInjector::backbone_delivery() {
  wired::DeliveryMod mod;
  const BackboneFaults& bf = plan_.backbone;
  Rng& rng = lane_rng();
  FaultCounters& counters = lane_counters();
  if (rng.chance(bf.drop_rate)) {
    mod.copies = 0;
    ++counters.backbone_drops;
    return mod;
  }
  if (rng.chance(bf.dup_rate)) {
    mod.copies = 2;
    ++counters.backbone_dups;
  }
  if (rng.chance(bf.spike_rate)) {
    mod.extra_latency = bf.spike_extra;
    ++counters.backbone_spikes;
  }
  return mod;
}

void FaultInjector::arm_medium(phy::Medium& medium, TimeNs duration) {
  arm_mediums({&medium}, duration);
}

void FaultInjector::arm_mediums(const std::vector<phy::Medium*>& mediums,
                                TimeNs duration) {
  const InterferenceFaults& intf = plan_.interference;
  if (!intf.any() || intf.period <= 0 || mediums.empty()) return;
  // Random burst phase (one draw, identical whether the run is partitioned
  // or not), then a self-rescheduling on/off chain per medium: one pending
  // event at a time per chain regardless of run length. Each chain lives on
  // its medium's partition queue; the environment-wide interferer is
  // counted once, on the first chain.
  const TimeNs phase = static_cast<TimeNs>(
      rng_.uniform(0.0, static_cast<double>(intf.period)));
  for (std::size_t i = 0; i < mediums.size(); ++i) {
    sim::Simulator::Scope scope(sim_, static_cast<std::uint32_t>(i));
    schedule_burst(*mediums[i], phase, duration, /*count_bursts=*/i == 0);
  }
}

void FaultInjector::schedule_burst(phy::Medium& medium, TimeNs at,
                                   TimeNs until, bool count_bursts) {
  if (at > until) return;
  const TimeNs on_time = static_cast<TimeNs>(
      plan_.interference.duty * static_cast<double>(plan_.interference.period));
  const TimeNs period = plan_.interference.period;
  const double mw = dbm_to_mw(plan_.interference.power_dbm);
  sim_.post_at(at, [this, &medium, on_time, period, mw, until, count_bursts] {
    if (count_bursts) ++lane_counters().interference_bursts;
    medium.set_external_interference_mw(mw);
    sim_.post_in(on_time, [this, &medium, period, on_time, until,
                           count_bursts] {
      medium.set_external_interference_mw(0.0);
      schedule_burst(medium, sim_.now() - on_time + period, until,
                     count_bursts);
    });
  });
}

}  // namespace dmn::fault
