#include "fault/fault_injector.h"

#include <algorithm>

#include "phy/medium.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace dmn::fault {

FaultInjector::FaultInjector(sim::Simulator& sim, std::size_t num_nodes,
                             const FaultPlan& plan, Rng rng)
    : sim_(sim), plan_(plan), rng_(std::move(rng)) {
  // Draw per-node skews up front so lookup order cannot perturb the RNG
  // stream; all-zero when the knob is off (no draws consumed).
  skew_ppm_.assign(num_nodes, 0.0);
  if (plan_.clock.any()) {
    for (double& s : skew_ppm_) {
      s = rng_.uniform(-plan_.clock.max_skew_ppm, plan_.clock.max_skew_ppm);
    }
  }
}

wired::DeliveryMod FaultInjector::backbone_delivery() {
  wired::DeliveryMod mod;
  const BackboneFaults& bf = plan_.backbone;
  if (rng_.chance(bf.drop_rate)) {
    mod.copies = 0;
    ++counters_.backbone_drops;
    return mod;
  }
  if (rng_.chance(bf.dup_rate)) {
    mod.copies = 2;
    ++counters_.backbone_dups;
  }
  if (rng_.chance(bf.spike_rate)) {
    mod.extra_latency = bf.spike_extra;
    ++counters_.backbone_spikes;
  }
  return mod;
}

void FaultInjector::arm_medium(phy::Medium& medium, TimeNs duration) {
  const InterferenceFaults& intf = plan_.interference;
  if (!intf.any() || intf.period <= 0) return;
  // Random burst phase, then a self-rescheduling on/off chain: one pending
  // event at a time regardless of run length.
  const TimeNs phase = static_cast<TimeNs>(
      rng_.uniform(0.0, static_cast<double>(intf.period)));
  schedule_burst(medium, phase, duration);
}

void FaultInjector::schedule_burst(phy::Medium& medium, TimeNs at,
                                   TimeNs until) {
  if (at > until) return;
  const TimeNs on_time = static_cast<TimeNs>(
      plan_.interference.duty * static_cast<double>(plan_.interference.period));
  const TimeNs period = plan_.interference.period;
  const double mw = dbm_to_mw(plan_.interference.power_dbm);
  sim_.post_at(at, [this, &medium, on_time, period, mw, until] {
    ++counters_.interference_bursts;
    medium.set_external_interference_mw(mw);
    sim_.post_in(on_time, [this, &medium, period, on_time, until] {
      medium.set_external_interference_mw(0.0);
      schedule_burst(medium, sim_.now() - on_time + period, until);
    });
  });
}

}  // namespace dmn::fault
