#pragma once
// Declarative fault plan: the scripted impairments an experiment runs under.
//
// DOMINO's claim is not steady-state throughput but *re-convergence after
// perturbation* — a relative schedule survives what breaks strict
// scheduling (§3.5, Figure 11). The FaultPlan describes the perturbations:
// backbone message loss/duplication/latency spikes beyond the Gaussian
// model, controller outages, external interference bursts that raise the
// noise floor, forced signature false-negatives/-positives, per-node clock
// skew, and AP power outages. All knobs default to zero/empty; a
// default-constructed plan is a strict no-op (the experiment does not even
// instantiate the injector, so results stay byte-identical to a fault-free
// build).
//
// Determinism contract: the plan is pure data. All randomness is drawn from
// the per-experiment FaultInjector RNG (forked from the experiment root) or
// the node-local RNGs, in event order — so the same seed plus the same plan
// yields bit-identical results regardless of sweep thread count.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topo/node.h"
#include "util/time.h"

namespace dmn::fault {

/// Half-open absolute simulation-time window [start, start + duration).
struct TimeWindow {
  TimeNs start = 0;
  TimeNs duration = 0;

  bool contains(TimeNs t) const { return t >= start && t < start + duration; }
  TimeNs end() const { return start + duration; }
};

/// Wired-backbone impairments layered on top of the Gaussian latency model.
/// Every controller dispatch, AP report and CENTAUR release runs through
/// the same delivery hook, so one knob perturbs the whole control plane.
struct BackboneFaults {
  /// Probability a message is silently dropped.
  double drop_rate = 0.0;
  /// Probability a message is delivered twice (second copy independently
  /// delayed) — models retransmitting switches / flapping bonding.
  double dup_rate = 0.0;
  /// Probability a message takes a latency spike of `spike_extra` on top of
  /// its sampled Gaussian latency (queueing burst in the wired fabric).
  double spike_rate = 0.0;
  TimeNs spike_extra = msec(2);

  bool any() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || spike_rate > 0.0;
  }
};

/// Controller outage windows: while down, the controller neither plans nor
/// dispatches, and AP reports arriving at it are lost. APs are expected to
/// keep executing the last received plan (the paper's bootstrap rule in
/// reverse: the chain outlives its scheduler).
struct ControllerFaults {
  std::vector<TimeWindow> outages;

  bool any() const { return !outages.empty(); }
  bool down_at(TimeNs t) const {
    for (const TimeWindow& w : outages) {
      if (w.contains(t)) return true;
    }
    return false;
  }
  /// End of the outage window covering `t` (call only when down_at(t)).
  TimeNs up_at(TimeNs t) const {
    TimeNs up = t;
    for (const TimeWindow& w : outages) {
      if (w.contains(t)) up = std::max(up, w.end());
    }
    return up;
  }
};

/// External interference: a bursty wideband interferer (microwave oven,
/// neighbouring network) raising the effective noise floor at every node
/// with duty cycle `duty` over period `period`. Burst phase is randomized
/// once per experiment from the injector RNG. Affects SINR of in-flight
/// receptions, carrier sense, signature detection and ROP decoding alike —
/// for every scheme, which is what makes degradation curves comparable.
struct InterferenceFaults {
  double duty = 0.0;  // fraction of each period the interferer is on
  TimeNs period = msec(5);
  double power_dbm = -60.0;  // received interferer power at every node

  bool any() const { return duty > 0.0; }
};

/// Forced signature-detection faults at DOMINO nodes, beyond the fitted
/// Figure-9 model: `false_negative_rate` makes a node miss a whole
/// signature burst (no trigger, no re-anchor — the correlator saw noise);
/// `false_positive_rate` makes a node act on a start burst that did not
/// carry its code. `blackouts` script per-node total detection loss windows
/// — the deterministic "suppress exactly this trigger" probe the
/// chain-break tests use.
struct SignatureFaults {
  double false_negative_rate = 0.0;
  double false_positive_rate = 0.0;
  struct Blackout {
    topo::NodeId node = topo::kNoNode;
    TimeWindow window;
  };
  std::vector<Blackout> blackouts;

  bool any() const {
    return false_negative_rate > 0.0 || false_positive_rate > 0.0 ||
           !blackouts.empty();
  }
  bool blacked_out(topo::NodeId node, TimeNs t) const {
    for (const Blackout& b : blackouts) {
      if (b.node == node && b.window.contains(t)) return true;
    }
    return false;
  }
};

/// Per-node clock skew: each node draws a rate error uniform in
/// [-max_skew_ppm, +max_skew_ppm] once per experiment. Skew is applied to
/// the slot-lattice extrapolation (anchor projections and self-start
/// timers) — the only timers where ppm-scale error accumulates to an
/// observable magnitude; per-frame intervals (SIFS, airtimes) shift by
/// ppm x 100 us < 1 ns and are left exact.
struct ClockFaults {
  double max_skew_ppm = 0.0;

  bool any() const { return max_skew_ppm > 0.0; }
};

/// Scripted AP power outages: while down an AP neither transmits, receives,
/// nor runs timers; controller plans addressed to it are lost. On restart
/// it re-arms from its retained schedule and re-anchors off the first heard
/// trigger.
struct ApOutage {
  topo::NodeId ap = topo::kNoNode;
  TimeWindow window;
};

/// The full fault plan carried by ExperimentConfig. Default-constructed ⇒
/// no faults, no injector, byte-identical results to the fault-free path.
struct FaultPlan {
  BackboneFaults backbone;
  ControllerFaults controller;
  InterferenceFaults interference;
  SignatureFaults signature;
  ClockFaults clock;
  std::vector<ApOutage> ap_outages;

  bool any() const {
    return backbone.any() || controller.any() || interference.any() ||
           signature.any() || clock.any() || !ap_outages.empty();
  }
};

}  // namespace dmn::fault
