#pragma once
// Per-experiment fault injector: executes a FaultPlan deterministically.
//
// One injector is built per Experiment (only when the plan has any active
// knob), seeded by a fork of the experiment's root RNG, and handed to the
// scheme stack through StackContext. It is the single decision point for
// every impairment, so the counters it keeps are the ground truth of what
// was actually injected — benches and tests read them back through
// ExperimentResult.
//
// Thread safety: an injector belongs to exactly one Experiment. Under the
// partitioned kernel its decisions are taken from every event queue, so
// both the RNG streams and the counters are striped into per-queue lanes
// (node partitions + the wired queue): each lane is only touched by its
// queue's executing thread, and counters() merges the lanes on read. The
// lane split is what keeps 1-thread and N-thread results bit-identical —
// a fault decision consumes randomness from the lane of the queue that
// asked, a pure function of that queue's event stream.

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "util/rng.h"
#include "util/time.h"
#include "wired/backbone.h"

namespace dmn::sim {
class Simulator;
}
namespace dmn::phy {
class Medium;
}

namespace dmn::fault {

/// Running totals of injected impairments (ground truth for observability).
struct FaultCounters {
  std::uint64_t backbone_drops = 0;
  std::uint64_t backbone_dups = 0;
  std::uint64_t backbone_spikes = 0;
  std::uint64_t interference_bursts = 0;
  std::uint64_t controller_outage_skips = 0;
  std::uint64_t forced_trigger_losses = 0;
  std::uint64_t forced_trigger_false_positives = 0;
};

class FaultInjector {
 public:
  /// `num_nodes` sizes the per-node clock-skew table; skews are drawn at
  /// construction so lookup order cannot affect the RNG stream.
  FaultInjector(sim::Simulator& sim, std::size_t num_nodes,
                const FaultPlan& plan, Rng rng);

  const FaultPlan& plan() const { return plan_; }

  /// Schedules the medium-level impairments (interference burst on/off
  /// chain) for a run of `duration`. Called once by the experiment facade
  /// before the simulation starts, so every scheme sees identical bursts.
  void arm_medium(phy::Medium& medium, TimeNs duration);

  /// Partitioned runs: replicates the burst chain onto every partition's
  /// medium (same phase, drawn once) so each partition sees the identical
  /// external interferer. Bursts are counted once (on the first chain).
  void arm_mediums(const std::vector<phy::Medium*>& mediums, TimeNs duration);

  // ---- backbone ----------------------------------------------------------

  /// Delivery hook for wired::Backbone::set_fault_hook. Decides drop /
  /// duplicate / latency spike for one message, consuming injector RNG in
  /// event order (of the asking queue's lane).
  wired::DeliveryMod backbone_delivery();

  // ---- controller --------------------------------------------------------

  bool controller_down(TimeNs now) const { return plan_.controller.down_at(now); }
  /// End of the outage covering `now` (call only when controller_down).
  TimeNs controller_up_at(TimeNs now) const {
    return plan_.controller.up_at(now);
  }
  void note_controller_outage_skip();

  // ---- signature detection ----------------------------------------------

  /// True when `node` must miss an entire signature burst ending at `now`:
  /// scripted blackout, or a Bernoulli forced false negative drawn from the
  /// *node's* RNG (keeps per-node streams independent). Only bursts
  /// carrying the node's own trigger are counted as trigger losses by the
  /// caller via note_trigger_loss().
  bool suppress_burst(topo::NodeId node, TimeNs now, Rng& node_rng) const {
    if (plan_.signature.blacked_out(node, now)) return true;
    return node_rng.chance(plan_.signature.false_negative_rate);
  }
  /// True when `node` should act on a start burst that did not carry its
  /// code (forced correlator false positive).
  bool forge_trigger(Rng& node_rng);
  void note_trigger_loss();

  // ---- clock skew --------------------------------------------------------

  /// Rate error (ppm) of `node`'s local clock; 0 when the knob is off.
  double clock_skew_ppm(topo::NodeId node) const {
    const auto i = static_cast<std::size_t>(node);
    return i < skew_ppm_.size() ? skew_ppm_[i] : 0.0;
  }

  /// Injected-impairment totals, merged across queue lanes.
  FaultCounters counters() const;

 private:
  void schedule_burst(phy::Medium& medium, TimeNs at, TimeNs until,
                      bool count_bursts);
  Rng& lane_rng();
  FaultCounters& lane_counters();

  sim::Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;
  /// Per-queue RNG lanes, forked from rng_ at construction when the
  /// simulator is partitioned; empty otherwise (rng_ is the single lane,
  /// preserving the historical stream byte-for-byte).
  std::vector<Rng> lane_rngs_;
  /// Per-queue counter lanes; always at least one.
  std::vector<FaultCounters> lane_counters_;
  std::vector<double> skew_ppm_;
};

}  // namespace dmn::fault
