#pragma once
// Per-experiment fault injector: executes a FaultPlan deterministically.
//
// One injector is built per Experiment (only when the plan has any active
// knob), seeded by a fork of the experiment's root RNG, and handed to the
// scheme stack through StackContext. It is the single decision point for
// every impairment, so the counters it keeps are the ground truth of what
// was actually injected — benches and tests read them back through
// ExperimentResult.
//
// Thread safety: an injector belongs to exactly one Experiment (one
// Simulator, one thread at a time), like every other per-experiment
// component. Sweep points never share injectors, which is what keeps
// 1-thread and N-thread sweep results bit-identical.

#include <cstdint>
#include <vector>

#include "fault/fault_plan.h"
#include "util/rng.h"
#include "util/time.h"
#include "wired/backbone.h"

namespace dmn::sim {
class Simulator;
}
namespace dmn::phy {
class Medium;
}

namespace dmn::fault {

/// Running totals of injected impairments (ground truth for observability).
struct FaultCounters {
  std::uint64_t backbone_drops = 0;
  std::uint64_t backbone_dups = 0;
  std::uint64_t backbone_spikes = 0;
  std::uint64_t interference_bursts = 0;
  std::uint64_t controller_outage_skips = 0;
  std::uint64_t forced_trigger_losses = 0;
  std::uint64_t forced_trigger_false_positives = 0;
};

class FaultInjector {
 public:
  /// `num_nodes` sizes the per-node clock-skew table; skews are drawn at
  /// construction so lookup order cannot affect the RNG stream.
  FaultInjector(sim::Simulator& sim, std::size_t num_nodes,
                const FaultPlan& plan, Rng rng);

  const FaultPlan& plan() const { return plan_; }

  /// Schedules the medium-level impairments (interference burst on/off
  /// chain) for a run of `duration`. Called once by the experiment facade
  /// before the simulation starts, so every scheme sees identical bursts.
  void arm_medium(phy::Medium& medium, TimeNs duration);

  // ---- backbone ----------------------------------------------------------

  /// Delivery hook for wired::Backbone::set_fault_hook. Decides drop /
  /// duplicate / latency spike for one message, consuming injector RNG in
  /// event order.
  wired::DeliveryMod backbone_delivery();

  // ---- controller --------------------------------------------------------

  bool controller_down(TimeNs now) const { return plan_.controller.down_at(now); }
  /// End of the outage covering `now` (call only when controller_down).
  TimeNs controller_up_at(TimeNs now) const {
    return plan_.controller.up_at(now);
  }
  void note_controller_outage_skip() { ++counters_.controller_outage_skips; }

  // ---- signature detection ----------------------------------------------

  /// True when `node` must miss an entire signature burst ending at `now`:
  /// scripted blackout, or a Bernoulli forced false negative drawn from the
  /// *node's* RNG (keeps per-node streams independent). Only bursts
  /// carrying the node's own trigger are counted as trigger losses by the
  /// caller via note_trigger_loss().
  bool suppress_burst(topo::NodeId node, TimeNs now, Rng& node_rng) const {
    if (plan_.signature.blacked_out(node, now)) return true;
    return node_rng.chance(plan_.signature.false_negative_rate);
  }
  /// True when `node` should act on a start burst that did not carry its
  /// code (forced correlator false positive).
  bool forge_trigger(Rng& node_rng) {
    if (!node_rng.chance(plan_.signature.false_positive_rate)) return false;
    ++counters_.forced_trigger_false_positives;
    return true;
  }
  void note_trigger_loss() { ++counters_.forced_trigger_losses; }

  // ---- clock skew --------------------------------------------------------

  /// Rate error (ppm) of `node`'s local clock; 0 when the knob is off.
  double clock_skew_ppm(topo::NodeId node) const {
    const auto i = static_cast<std::size_t>(node);
    return i < skew_ppm_.size() ? skew_ppm_[i] : 0.0;
  }

  const FaultCounters& counters() const { return counters_; }

 private:
  void schedule_burst(phy::Medium& medium, TimeNs at, TimeNs until);

  sim::Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;
  std::vector<double> skew_ppm_;
  FaultCounters counters_;
};

}  // namespace dmn::fault
