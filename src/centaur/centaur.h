#pragma once
// CENTAUR-style hybrid data path (Shrivastava et al., MobiCom'09), the
// paper's strongest prior-work comparison.
//
// Downlink: the central controller groups non-conflicting downlink links
// into batches and releases a per-link packet quota to each AP over the
// jittery wired backbone. Released APs contend with carrier sensing and a
// *fixed* backoff so exposed transmissions align. The next batch is
// dispatched only after every AP in the current batch reports completion —
// the epoch barrier that makes CENTAUR underperform DCF on the Figure 13(b)
// topology.
//
// Uplink: untouched clients run plain DCF and disturb the schedule, exactly
// as §1/§6 describe.

#include <map>
#include <memory>
#include <vector>

#include "domino/rand_scheduler.h"
#include "mac/dcf.h"
#include "sim/simulator.h"
#include "topo/conflict_graph.h"
#include "wired/backbone.h"

namespace dmn::centaur {

struct CentaurParams {
  /// Max packets released per link per batch.
  std::size_t quota = 5;
  /// Fixed backoff (slots) used by scheduled APs. One shared value aligns
  /// exposed transmitters that hear each other.
  int fixed_backoff_slots = 8;
  /// Controller re-poll interval when no downlink demand exists.
  TimeNs idle_recheck = msec(1);
};

class CentaurController {
 public:
  /// `downlink_graph` must contain only AP->client links. `ap_macs` maps
  /// every AP NodeId to its (gated) DcfNode; the controller takes over
  /// service gating for those nodes.
  CentaurController(sim::Simulator& sim, wired::Backbone& backbone,
                    const topo::ConflictGraph& downlink_graph,
                    const CentaurParams& params,
                    std::map<topo::NodeId, mac::DcfNode*> ap_macs);

  void start(TimeNs at);

  std::uint64_t batches_dispatched() const { return batches_; }

 private:
  void plan_batch();
  void release_link(topo::LinkId link, std::size_t quota);
  void link_finished(topo::LinkId link);

  sim::Simulator& sim_;
  wired::Backbone& backbone_;
  const topo::ConflictGraph& graph_;
  CentaurParams params_;
  std::map<topo::NodeId, mac::DcfNode*> ap_macs_;
  domino::RandScheduler rand_;

  std::size_t outstanding_ = 0;  // links in flight in the current batch
  std::uint64_t batches_ = 0;
};

}  // namespace dmn::centaur
