#include "centaur/centaur.h"

#include <algorithm>

namespace dmn::centaur {

CentaurController::CentaurController(
    sim::Simulator& sim, wired::Backbone& backbone,
    const topo::ConflictGraph& downlink_graph, const CentaurParams& params,
    std::map<topo::NodeId, mac::DcfNode*> ap_macs)
    : sim_(sim),
      backbone_(backbone),
      graph_(downlink_graph),
      params_(params),
      ap_macs_(std::move(ap_macs)),
      rand_(downlink_graph) {
  // The controller owns AP downlink service from the start.
  for (auto& [id, mac] : ap_macs_) {
    (void)id;
    mac->set_service_enabled(false);
    mac->set_fixed_backoff(params_.fixed_backoff_slots);
  }
}

void CentaurController::start(TimeNs at) {
  sim_.post_at(at, [this] { plan_batch(); });
}

void CentaurController::plan_batch() {
  std::vector<std::size_t> demand(graph_.num_links(), 0);
  for (std::size_t i = 0; i < graph_.num_links(); ++i) {
    const topo::Link& l = graph_.link(static_cast<topo::LinkId>(i));
    const auto it = ap_macs_.find(l.sender);
    if (it != ap_macs_.end()) {
      demand[i] = it->second->queued_for(l.receiver);
    }
  }
  const std::vector<topo::LinkId> chosen = rand_.schedule_slot(demand);
  if (chosen.empty()) {
    sim_.post_in(params_.idle_recheck, [this] { plan_batch(); });
    return;
  }

  ++batches_;
  outstanding_ = chosen.size();
  for (topo::LinkId l : chosen) {
    const std::size_t quota =
        std::min(params_.quota, demand[static_cast<std::size_t>(l)]);
    // Dispatch travels the jittery backbone, so batch members start at
    // slightly different times — CENTAUR relies on carrier sensing plus the
    // fixed backoff to re-align them. Routed to the AP's partition queue.
    const topo::NodeId ap = graph_.link(l).sender;
    backbone_.send_to_node(ap, [this, l, quota] { release_link(l, quota); });
  }
}

void CentaurController::release_link(topo::LinkId link, std::size_t quota) {
  // Runs on the AP's partition queue (release rides the backbone), so it
  // must only touch AP-side state: the remaining quota lives in the outcome
  // hook itself, not in a controller-side map.
  const topo::Link& l = graph_.link(link);
  mac::DcfNode* ap = ap_macs_.at(l.sender);
  auto left = std::make_shared<std::size_t>(quota);
  ap->set_dest_filter(l.receiver);
  ap->set_outcome_hook(
      [this, link, ap, left](const traffic::Packet&, bool /*success*/) {
        if (*left > 0) --*left;
        const topo::Link& lk = graph_.link(link);
        if (*left == 0 || ap->queued_for(lk.receiver) == 0) {
          ap->set_service_enabled(false);
          ap->set_outcome_hook(nullptr);
          // Completion report rides the backbone back to the controller.
          backbone_.send_to_wired([this, link] { link_finished(link); });
        }
      });
  ap->set_service_enabled(true);
}

void CentaurController::link_finished(topo::LinkId /*link*/) {
  if (outstanding_ > 0) --outstanding_;
  if (outstanding_ == 0) {
    plan_batch();  // epoch barrier: everyone finished, plan the next batch
  }
}

}  // namespace dmn::centaur
