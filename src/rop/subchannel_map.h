#pragma once
// Subcarrier layout of the ROP control symbol — Figure 3 of the paper.
//
// 256 FFT bins: DC unused; 24 subchannels of (6 data + 3 guard) bins packed
// outward from DC, 12 on the positive side (subchannels 0..11) and 12
// mirrored on the negative side (subchannels 12..23); the remaining 39 edge
// bins form the inter-channel guard band, as in 802.11 (11/64 there).

#include <cstddef>
#include <vector>

#include "rop/params.h"

namespace dmn::rop {

class SubchannelMap {
 public:
  explicit SubchannelMap(const RopParams& params);

  /// FFT bin indices (0..fft_size-1, i.e. negative frequencies wrapped to
  /// the upper half) carrying data bit b (b = 0 is the LSB of the queue
  /// length) for subchannel `sc`.
  std::size_t data_bin(std::size_t sc, std::size_t bit) const;

  /// All data bins of a subchannel, LSB first.
  const std::vector<std::size_t>& data_bins(std::size_t sc) const;

  /// Guard bins of a subchannel (between it and its outward neighbour).
  const std::vector<std::size_t>& guard_bins(std::size_t sc) const;

  std::size_t num_subchannels() const { return data_.size(); }

  /// Subchannels adjacent in frequency to `sc` (used by the interference
  /// model and by the AP's "assign non-adjacent subchannels above 38 dB
  /// mismatch" rule).
  std::vector<std::size_t> adjacent_subchannels(std::size_t sc) const;

  /// Minimum bin distance between the data bins of two subchannels.
  std::size_t bin_distance(std::size_t a, std::size_t b) const;

 private:
  RopParams params_;
  std::vector<std::vector<std::size_t>> data_;
  std::vector<std::vector<std::size_t>> guard_;
};

}  // namespace dmn::rop
