#pragma once
// ROP (Rapid OFDM Polling) symbol parameters — Table 1 of the paper.
//
// One special control OFDM symbol carries the queue length of every client
// of an AP at once: the 20 MHz channel is split into 256 subcarriers and 24
// subchannels of 6 data + 3 guard subcarriers; clients signal with 2-ASK so
// that (unestimable) phase offset does not matter.

#include <cstddef>

#include "util/time.h"

namespace dmn::rop {

struct RopParams {
  std::size_t fft_size = 256;           // subcarriers (vs 64 in plain WiFi)
  std::size_t data_per_subchannel = 6;  // -> queue sizes 0..63
  std::size_t guard_per_subchannel = 3; // tolerates ~38 dB RSS mismatch
  std::size_t num_subchannels = 24;     // clients pollable per symbol
  double bandwidth_hz = 20e6;

  /// Cyclic prefix: 3.2 us at 20 MHz = 64 samples; sized for a 300 m
  /// turnaround propagation delay (2 us) plus sync slack.
  std::size_t cp_samples = 64;

  std::size_t bits_per_client() const { return data_per_subchannel; }
  std::size_t max_queue_report() const {
    return (std::size_t{1} << data_per_subchannel) - 1;  // 63
  }
  std::size_t block_size() const {
    return data_per_subchannel + guard_per_subchannel;
  }
  std::size_t symbol_samples() const { return fft_size + cp_samples; }

  /// 16 us symbol + 3.2 us CP is included in symbol_samples already;
  /// total symbol duration = (256 + 64) / 20 MHz = 16 us.
  TimeNs symbol_duration() const {
    return static_cast<TimeNs>(static_cast<double>(symbol_samples()) /
                               bandwidth_hz * 1e9);
  }
};

/// SNR (dB) below which an ROP symbol cannot be decoded — matches the
/// paper's USRP measurement ("as long as the SNR is higher than 4 dB") and
/// the 6 Mbps WiFi decode threshold it cites.
inline constexpr double kRopMinSnrDb = 4.0;

/// RSS mismatch (dB) tolerated between adjacent subchannels with the default
/// 3 guard subcarriers (paper §3.1; our Fig-6 reproduction re-derives it).
inline constexpr double kRopRssToleranceDb = 38.0;

}  // namespace dmn::rop
