#include "rop/subchannel_map.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace dmn::rop {

SubchannelMap::SubchannelMap(const RopParams& params) : params_(params) {
  const std::size_t n = params.num_subchannels;
  const std::size_t block = params.block_size();
  const std::size_t half = (n + 1) / 2;

  // Sanity: everything must fit one side of the spectrum, leaving at least
  // one edge guard bin.
  if (half * block + 1 > params.fft_size / 2) {
    throw std::invalid_argument(
        "SubchannelMap: layout exceeds half spectrum: " +
        std::to_string(half) + " subchannels per side x " +
        std::to_string(block) + " bins + 1 edge guard > " +
        std::to_string(params.fft_size / 2) + " bins");
  }

  data_.resize(n);
  guard_.resize(n);
  for (std::size_t sc = 0; sc < n; ++sc) {
    const bool positive = sc < half;
    const std::size_t slot = positive ? sc : sc - half;
    // Block of `block` bins starting at distance 1 + slot*block from DC.
    const std::size_t start = 1 + slot * block;
    for (std::size_t k = 0; k < block; ++k) {
      const std::size_t dist = start + k;
      // Negative frequencies wrap: bin -d == fft_size - d.
      const std::size_t bin = positive ? dist : params.fft_size - dist;
      if (k < params.data_per_subchannel) {
        data_[sc].push_back(bin);
      } else {
        guard_[sc].push_back(bin);
      }
    }
  }
}

std::size_t SubchannelMap::data_bin(std::size_t sc, std::size_t bit) const {
  return data_.at(sc).at(bit);
}

const std::vector<std::size_t>& SubchannelMap::data_bins(
    std::size_t sc) const {
  return data_.at(sc);
}

const std::vector<std::size_t>& SubchannelMap::guard_bins(
    std::size_t sc) const {
  return guard_.at(sc);
}

std::vector<std::size_t> SubchannelMap::adjacent_subchannels(
    std::size_t sc) const {
  std::vector<std::size_t> out;
  for (std::size_t other = 0; other < data_.size(); ++other) {
    if (other == sc) continue;
    if (bin_distance(sc, other) <= params_.block_size()) out.push_back(other);
  }
  return out;
}

std::size_t SubchannelMap::bin_distance(std::size_t a, std::size_t b) const {
  // Distance on the circular FFT index ring.
  const std::size_t n = params_.fft_size;
  std::size_t best = n;
  for (std::size_t x : data_.at(a)) {
    for (std::size_t y : data_.at(b)) {
      const std::size_t d = x > y ? x - y : y - x;
      best = std::min(best, std::min(d, n - d));
    }
  }
  return best;
}

}  // namespace dmn::rop
