#include "rop/rop_protocol.h"

#include <algorithm>
#include <cmath>

#include "util/units.h"

namespace dmn::rop {

QueueReport encode_queue(std::size_t queue_len, const RopParams& params) {
  const std::size_t cap = params.max_queue_report();
  QueueReport r;
  if (queue_len <= cap) {
    r.reported = static_cast<unsigned>(queue_len);
    r.unreported = 0;
  } else {
    r.reported = static_cast<unsigned>(cap);
    r.unreported = queue_len - cap;
  }
  return r;
}

std::vector<SubchannelAllocator::Assignment> SubchannelAllocator::assign(
    const std::vector<topo::NodeId>& clients,
    const std::vector<double>& rss_at_ap) const {
  const std::size_t per_round = params_.num_subchannels;
  std::vector<Assignment> out;

  // Order clients by RSS (descending) so adjacent subchannels see similar
  // powers; split into rounds of at most num_subchannels.
  std::vector<std::size_t> order(clients.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return rss_at_ap[a] > rss_at_ap[b];
  });

  std::size_t round = 0;
  std::size_t pos = 0;  // index into `order`
  while (pos < order.size()) {
    const std::size_t in_round = std::min(per_round, order.size() - pos);
    // Extreme-mismatch handling: if a sorted neighbour pair differs by more
    // than the tolerance, skip one subchannel between them when spare
    // capacity allows (paper: "assign them non-adjacent subchannels").
    std::size_t spare = per_round - in_round;
    std::size_t sc = 0;
    double prev_rss = 0.0;
    bool first = true;
    for (std::size_t k = 0; k < in_round; ++k) {
      const std::size_t ci = order[pos + k];
      if (!first && spare > 0 &&
          std::abs(prev_rss - rss_at_ap[ci]) > kRopRssToleranceDb) {
        ++sc;  // leave a gap
        --spare;
      }
      out.push_back(Assignment{clients[ci], sc, round});
      prev_rss = rss_at_ap[ci];
      first = false;
      ++sc;
    }
    pos += in_round;
    ++round;
  }
  return out;
}

double RopLinkModel::tolerance_db(std::size_t bin_distance) const {
  // Fitted from the signal-level sweep (Figure 6 reproduction): each bin of
  // separation buys ~6 dB of tolerance starting from ~14 dB at distance 1,
  // capped at ~42 dB by the transmitter implementation floor. Distance with
  // the default 3 guard bins is 4 -> 38 dB, the paper's design point.
  if (bin_distance == 0) return 0.0;
  const double slope = 8.0;
  const double base = 6.0;
  return std::min(base + slope * static_cast<double>(bin_distance), 42.0);
}

bool RopLinkModel::report_decodes(std::size_t subchannel, double rss_dbm,
                                  const std::vector<CoClient>& co_clients,
                                  double noise_floor_dbm,
                                  double external_intf_mw) const {
  // SNR gate (paper: >= 4 dB for reliable symbol decode), with external
  // interference folded into the noise.
  const double noise_mw = dbm_to_mw(noise_floor_dbm) + external_intf_mw;
  const double snr_db = rss_dbm - mw_to_dbm(noise_mw);
  if (snr_db < kRopMinSnrDb) return false;

  // Subchannel leakage gate: every co-polled stronger client must stay
  // within the tolerance for its bin distance.
  for (const CoClient& other : co_clients) {
    if (other.subchannel == subchannel) return false;  // assignment bug
    const double diff = other.rss_dbm - rss_dbm;
    if (diff <= 0.0) continue;  // weaker clients cannot mask this one
    const std::size_t dist = map_.bin_distance(subchannel, other.subchannel);
    if (diff > tolerance_db(dist)) return false;
  }
  return true;
}

TimeNs rop_exchange_duration(const RopParams& params, TimeNs poll_airtime,
                             TimeNs slot_time) {
  // Poll broadcast + one standard slot (§3.1, Figure 4) + the control
  // symbol + a short AP processing guard before the next slot can start.
  const TimeNs guard = usec(4.0);
  return poll_airtime + slot_time + params.symbol_duration() + guard;
}

}  // namespace dmn::rop
