#pragma once
// Protocol-level ROP: queue-report encoding, subchannel assignment, and the
// MAC-level success model distilled from the signal-level study.
//
// The MAC simulation does not run the FFT per poll; it applies the rules the
// signal-level experiments (Figures 5/6, bench_fig05/06) establish:
//   * a report decodes only if its SNR at the AP is >= 4 dB;
//   * adjacent subchannels tolerate an RSS mismatch up to ~38 dB with the
//     default 3 guard subcarriers (scaled for other guard counts);
//   * above the tolerance the AP should have assigned non-adjacent
//     subchannels (the allocator here does), otherwise the weaker client's
//     report is corrupted;
//   * external (non-ROP) interference overlapping the symbol must leave
//     SINR >= 4 dB.

#include <cstddef>
#include <optional>
#include <vector>

#include "rop/params.h"
#include "rop/subchannel_map.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace dmn::rop {

/// Encoded queue report (§3.5 "virtual packets"): values cap at 63 and the
/// client tracks what it could not report yet.
struct QueueReport {
  unsigned reported = 0;      // 0..63, what goes on the air
  std::size_t unreported = 0; // remainder the client still holds
};
QueueReport encode_queue(std::size_t queue_len, const RopParams& params);

/// Assigns each client of an AP a subchannel. Clients are sorted by RSS so
/// frequency-adjacent subchannels carry similar powers; when even sorted
/// neighbours exceed the tolerance, a spare subchannel is skipped between
/// them (possible while #clients < #subchannels).
class SubchannelAllocator {
 public:
  explicit SubchannelAllocator(const RopParams& params) : params_(params) {}

  struct Assignment {
    topo::NodeId client;
    std::size_t subchannel;
    std::size_t round;  // poll round (>= 1 round when clients > subchannels)
  };

  /// rss_at_ap[i] is the AP-side RSS of clients[i].
  std::vector<Assignment> assign(const std::vector<topo::NodeId>& clients,
                                 const std::vector<double>& rss_at_ap) const;

 private:
  RopParams params_;
};

/// The MAC-level decode predicate.
class RopLinkModel {
 public:
  explicit RopLinkModel(const RopParams& params)
      : params_(params), map_(params) {}

  struct CoClient {
    std::size_t subchannel;
    double rss_dbm;
  };

  /// Does the report of the client on `subchannel` at `rss_dbm` decode,
  /// given the co-polled clients, receiver noise, and external interference
  /// power (mW) overlapping the symbol?
  bool report_decodes(std::size_t subchannel, double rss_dbm,
                      const std::vector<CoClient>& co_clients,
                      double noise_floor_dbm, double external_intf_mw) const;

  /// RSS mismatch tolerance (dB) for a given bin distance between two
  /// clients' nearest data subcarriers — the fitted Figure 6 law:
  /// each extra guard bin buys ~6 dB until the transmitter hardware floor
  /// (~42 dB usable) caps it.
  double tolerance_db(std::size_t bin_distance) const;

  const SubchannelMap& map() const { return map_; }

 private:
  RopParams params_;
  SubchannelMap map_;
};

/// Airtime of a full ROP exchange: poll broadcast + one WiFi slot + the
/// control OFDM symbol (+ AP processing guard).
TimeNs rop_exchange_duration(const RopParams& params, TimeNs poll_airtime,
                             TimeNs slot_time);

}  // namespace dmn::rop
