#include "rop/rop_phy.h"

#include <algorithm>
#include <cmath>

#include "dsp/channel.h"
#include "util/units.h"

namespace dmn::rop {

double RopPhy::on_bin_amplitude(double rss_dbm) const {
  // rss_dbm is the client's nominal received power with all data bins on;
  // each of the `data_per_subchannel` bins carries an equal share. With our
  // unnormalized forward FFT, a frequency-domain amplitude `a` placed before
  // the (1/N-scaled) IFFT contributes mean time-domain power a^2 / N^2 * N
  // ... we keep it simple and exact: a single bin of amplitude a yields time
  // samples of magnitude a/N, i.e. mean power (a/N)^2. Setting per-bin
  // power P/k: a = N * sqrt(P/k).
  const double p_mw = dbm_to_mw(rss_dbm);
  const double per_bin =
      p_mw / static_cast<double>(params_.data_per_subchannel);
  return static_cast<double>(params_.fft_size) * std::sqrt(per_bin);
}

std::vector<dsp::Cplx> RopPhy::synthesize(
    std::span<const ClientSignal> clients, const RopImpairments& imp,
    Rng& rng) const {
  const std::size_t n = params_.fft_size;
  const std::size_t total = params_.symbol_samples();
  std::vector<dsp::Cplx> rx(total, dsp::Cplx(0.0, 0.0));

  for (const ClientSignal& cs : clients) {
    // Frequency-domain symbol: 2-ASK (on/off) on the client's data bins.
    std::vector<dsp::Cplx> freq(n, dsp::Cplx(0.0, 0.0));
    const double amp = on_bin_amplitude(cs.rss_dbm);
    const auto& bins = map_.data_bins(cs.subchannel);
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if ((cs.queue_report >> b) & 1u) {
        freq[bins[b]] = dsp::Cplx(amp, 0.0);
      }
    }
    std::vector<dsp::Cplx> time = dsp::ifft_copy(freq);

    // Prepend the cyclic prefix.
    std::vector<dsp::Cplx> sym;
    sym.reserve(total);
    sym.insert(sym.end(), time.end() - static_cast<std::ptrdiff_t>(
                                           params_.cp_samples),
               time.end());
    sym.insert(sym.end(), time.begin(), time.end());

    // Per-transmitter wideband implementation floor, proportional to the
    // client's own signal power.
    const double sig_power = dsp::mean_power(sym);
    if (sig_power > 0.0 && imp.tx_floor_db < 0.0) {
      dsp::add_awgn(sym, sig_power * db_to_ratio(imp.tx_floor_db), rng);
    }

    // Residual CFO breaks orthogonality -> inter-subcarrier leakage.
    dsp::apply_frequency_offset(sym, cs.freq_offset_subcarriers, n);

    // Timing skew within the CP: clients start at slightly different times.
    for (std::size_t i = 0; i < sym.size(); ++i) {
      const std::size_t at = i + cs.timing_offset_samples;
      if (at < rx.size()) rx[at] += sym[i];
    }
  }

  // Receiver AWGN.
  dsp::add_awgn(rx, dbm_to_mw(imp.noise_floor_dbm), rng);

  // ADC saturation: clip I/Q at the full-scale amplitude.
  const double clip_amp = std::sqrt(dbm_to_mw(imp.adc_fullscale_dbm));
  dsp::clip(rx, clip_amp);
  return rx;
}

RopDecodeResult RopPhy::decode(std::span<const dsp::Cplx> rx,
                               const RopImpairments& imp) const {
  const std::size_t n = params_.fft_size;
  RopDecodeResult out;
  out.values.assign(params_.num_subchannels, std::nullopt);
  out.bin_magnitude.assign(n, 0.0);
  if (rx.size() < params_.symbol_samples()) return out;

  // FFT window starts right after the CP — by construction every client's
  // symbol (timing offset <= CP) fully covers this window.
  std::vector<dsp::Cplx> win(rx.begin() + static_cast<std::ptrdiff_t>(
                                              params_.cp_samples),
                             rx.begin() + static_cast<std::ptrdiff_t>(
                                              params_.symbol_samples()));
  dsp::fft(win);
  for (std::size_t k = 0; k < n; ++k) out.bin_magnitude[k] = std::abs(win[k]);

  // Per-bin noise RMS after an unnormalized N-point FFT of noise with time
  // power Pn is sqrt(N * Pn).
  out.noise_rms_bin = std::sqrt(static_cast<double>(n) *
                                dbm_to_mw(imp.noise_floor_dbm));

  // Presence gate: strongest data bin must clear the noise by the ROP
  // minimum SNR (4 dB) plus the 2-ASK decision margin.
  const double gate =
      out.noise_rms_bin * std::sqrt(db_to_ratio(kRopMinSnrDb)) * 2.0;

  for (std::size_t sc = 0; sc < params_.num_subchannels; ++sc) {
    const auto& bins = map_.data_bins(sc);
    double level = 0.0;
    for (std::size_t b : bins) level = std::max(level, out.bin_magnitude[b]);
    if (level < gate) continue;  // silent subchannel
    unsigned value = 0;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (out.bin_magnitude[bins[b]] > level / 2.0) {
        value |= (1u << b);
      }
    }
    out.values[sc] = value;
  }
  return out;
}

bool RopPhy::round_trip_ok(std::span<const ClientSignal> clients,
                           const RopImpairments& imp, Rng& rng) const {
  const auto rx = synthesize(clients, imp, rng);
  const auto decoded = decode(rx, imp);
  for (const ClientSignal& cs : clients) {
    const auto& got = decoded.values[cs.subchannel];
    if (cs.queue_report == 0) {
      // All-off is legitimately indistinguishable from silence.
      if (got.has_value() && *got != 0) return false;
    } else {
      if (!got.has_value() || *got != cs.queue_report) return false;
    }
  }
  return true;
}

}  // namespace dmn::rop
