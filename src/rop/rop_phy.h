#pragma once
// Signal-level simulation of the ROP control symbol.
//
// Stands in for the paper's GNURadio/USRP testbed (Figures 5 and 6): each
// client synthesizes one 2-ASK OFDM symbol on its assigned subchannel; the
// AP receives the superposition with per-client RSS, residual carrier
// frequency offset (which breaks subcarrier orthogonality and produces the
// inter-subchannel leakage the guard subcarriers fight), timing skew inside
// the long cyclic prefix, a per-transmitter wideband implementation floor
// (phase noise / DAC quantization / spectral regrowth), receiver AWGN, and
// ADC saturation.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "rop/params.h"
#include "rop/subchannel_map.h"
#include "util/rng.h"
#include "util/units.h"

namespace dmn::rop {

/// One client's contribution to the polling response symbol.
struct ClientSignal {
  std::size_t subchannel = 0;
  unsigned queue_report = 0;  // 0..max_queue_report(), LSB on data bin 0
  double rss_dbm = -50.0;     // received power at the AP (all-bits-on basis)
  double freq_offset_subcarriers = 0.0;  // residual CFO after the preamble
  std::size_t timing_offset_samples = 0; // must stay within the CP
};

struct RopImpairments {
  double noise_floor_dbm = kNoiseFloorDbm;
  /// Per-transmitter wideband noise floor relative to that transmitter's
  /// signal power (dB). Models the hardware floor that ultimately caps RSS
  /// mismatch tolerance for USRP-class radios.
  double tx_floor_db = -52.0;
  /// ADC full-scale input (dBm). Signals summing above this clip.
  double adc_fullscale_dbm = -10.0;
  /// Std-dev of residual CFO (fraction of subcarrier spacing) after the
  /// polling preamble's frequency correction. Calibrated so that, with the
  /// coherent six-tone leakage sum, 3 guard subcarriers tolerate ~38 dB of
  /// RSS mismatch (the paper's Figure 6 design point).
  double cfo_sigma_subcarriers = 0.01;
};

/// Decoded output of one AP-side FFT.
struct RopDecodeResult {
  /// Per-subchannel decoded queue report; nullopt when the subchannel was
  /// judged silent (no energy above the noise gate).
  std::vector<std::optional<unsigned>> values;
  /// |X_k| for every FFT bin — used by the Figure 5 sample plots.
  std::vector<double> bin_magnitude;
  /// Per-bin noise RMS estimate the detector used.
  double noise_rms_bin = 0.0;
};

class RopPhy {
 public:
  explicit RopPhy(const RopParams& params)
      : params_(params), map_(params) {}

  const RopParams& params() const { return params_; }
  const SubchannelMap& map() const { return map_; }

  /// Synthesizes the received time-domain symbol (CP included) at the AP.
  std::vector<dsp::Cplx> synthesize(std::span<const ClientSignal> clients,
                                    const RopImpairments& imp, Rng& rng) const;

  /// Decodes an AP-side capture produced by synthesize().
  RopDecodeResult decode(std::span<const dsp::Cplx> rx,
                         const RopImpairments& imp) const;

  /// Convenience: synthesize + decode, returning whether every client's
  /// report decoded exactly.
  bool round_trip_ok(std::span<const ClientSignal> clients,
                     const RopImpairments& imp, Rng& rng) const;

 private:
  /// Per-data-bin "on" amplitude in the frequency domain for a client whose
  /// all-bits-on symbol would arrive at `rss_dbm`.
  double on_bin_amplitude(double rss_dbm) const;

  RopParams params_;
  SubchannelMap map_;
};

}  // namespace dmn::rop
