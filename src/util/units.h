#pragma once
// Radio power units and conversions.
//
// All RSS values in the library are carried in dBm (matching the paper's
// trace format); interference summation happens in milliwatts.

#include <cmath>
#include <limits>

namespace dmn {

/// Smallest representable power used as "silence" (-infinity dBm stand-in).
inline constexpr double kZeroPowerMw = 0.0;

// The conversions are inline: they sit inside the interference and
// carrier-sense loops, the hottest code in the simulator, and must not be
// called through a translation-unit boundary.

/// dBm -> milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// milliwatts -> dBm. Returns -infinity for 0 mW.
inline double mw_to_dbm(double mw) {
  if (mw <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(mw);
}

/// Ratio (linear) -> dB.
inline double ratio_to_db(double ratio) {
  if (ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(ratio);
}

/// dB -> linear ratio.
inline double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

/// Thermal noise floor for a 20 MHz 802.11 channel, including a typical
/// receiver noise figure: -174 dBm/Hz + 10*log10(20e6) + 7 dB NF ~= -94 dBm.
inline constexpr double kNoiseFloorDbm = -94.0;

/// Default transmit power used by the synthetic trace (typical enterprise AP).
inline constexpr double kDefaultTxPowerDbm = 20.0;

}  // namespace dmn
