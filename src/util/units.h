#pragma once
// Radio power units and conversions.
//
// All RSS values in the library are carried in dBm (matching the paper's
// trace format); interference summation happens in milliwatts.

#include <cmath>
#include <limits>

namespace dmn {

/// Smallest representable power used as "silence" (-infinity dBm stand-in).
inline constexpr double kZeroPowerMw = 0.0;

/// dBm -> milliwatts.
double dbm_to_mw(double dbm);

/// milliwatts -> dBm. Returns -infinity for 0 mW.
double mw_to_dbm(double mw);

/// Ratio (linear) -> dB.
double ratio_to_db(double ratio);

/// dB -> linear ratio.
double db_to_ratio(double db);

/// Thermal noise floor for a 20 MHz 802.11 channel, including a typical
/// receiver noise figure: -174 dBm/Hz + 10*log10(20e6) + 7 dB NF ~= -94 dBm.
inline constexpr double kNoiseFloorDbm = -94.0;

/// Default transmit power used by the synthetic trace (typical enterprise AP).
inline constexpr double kDefaultTxPowerDbm = 20.0;

}  // namespace dmn
