#include "util/log.h"

#include <atomic>

namespace dmn {
namespace {

// Atomic: SweepRunner workers query the threshold concurrently.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

void log_message(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", tag(level), msg.c_str());
}

}  // namespace dmn
