#include "util/units.h"

namespace dmn {

double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

double mw_to_dbm(double mw) {
  if (mw <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(mw);
}

double ratio_to_db(double ratio) {
  if (ratio <= 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(ratio);
}

double db_to_ratio(double db) { return std::pow(10.0, db / 10.0); }

}  // namespace dmn
