#pragma once
// Seeded random number generation.
//
// Every stochastic component takes an explicit Rng&; nothing reads global
// randomness, so every experiment is reproducible from its seed.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace dmn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with given mean.
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child stream (for per-node generators).
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dmn
