#pragma once
// Minimal leveled logger.
//
// Simulation hot paths guard calls with `if (log_enabled(...))`, so disabled
// levels cost one branch. The MAC-level timeline tracing used by the
// Figure 10 reproduction uses api/timeline.h instead of this logger.

#include <cstdio>
#include <string>

namespace dmn {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global threshold; messages above it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

bool log_enabled(LogLevel level);

/// printf-style logging. Prepends the level tag.
void log_message(LogLevel level, const std::string& msg);

}  // namespace dmn

#define DMN_LOG(level, msg)                        \
  do {                                             \
    if (::dmn::log_enabled(level)) {               \
      ::dmn::log_message(level, (msg));            \
    }                                              \
  } while (0)
