#include "util/rng.h"

// Header-only in practice; this TU anchors the module in the archive.
namespace dmn {}
