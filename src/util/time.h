#pragma once
// Simulation time: signed 64-bit nanosecond ticks.
//
// The paper works at microsecond granularity (WiFi slot = 9 us, signature =
// 6.35 us); nanosecond ticks keep sub-microsecond quantities (e.g. 6.35 us)
// exact and give ~292 years of range, so overflow is never a concern for a
// 50 s experiment.

#include <cstdint>

namespace dmn {

using TimeNs = std::int64_t;

inline constexpr TimeNs kNsPerUs = 1000;
inline constexpr TimeNs kNsPerMs = 1000 * kNsPerUs;
inline constexpr TimeNs kNsPerSec = 1000 * kNsPerMs;

constexpr TimeNs usec(double us) { return static_cast<TimeNs>(us * kNsPerUs); }
constexpr TimeNs msec(double ms) { return static_cast<TimeNs>(ms * kNsPerMs); }
constexpr TimeNs sec(double s) { return static_cast<TimeNs>(s * kNsPerSec); }

constexpr double to_usec(TimeNs t) { return static_cast<double>(t) / kNsPerUs; }
constexpr double to_msec(TimeNs t) { return static_cast<double>(t) / kNsPerMs; }
constexpr double to_sec(TimeNs t) { return static_cast<double>(t) / kNsPerSec; }

/// A sentinel meaning "never" / unset.
inline constexpr TimeNs kTimeNever = -1;

}  // namespace dmn
