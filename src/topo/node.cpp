#include "topo/node.h"

#include <cmath>

namespace dmn::topo {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

std::string to_string(const Link& l) {
  return std::to_string(l.sender) + "->" + std::to_string(l.receiver);
}

}  // namespace dmn::topo
