#pragma once
// The Topology bundles nodes, associations, the RSS map and the PHY
// thresholds every scheme consumes, plus the builders the paper's
// evaluation uses: T(m,n) drawn from a trace (§4.2.1), ns-3-style random
// placement (§4.2.5), and hand-built figure topologies (Figs 1, 7, 13).

#include <span>
#include <tuple>
#include <vector>

#include "topo/node.h"
#include "topo/propagation.h"
#include "util/rng.h"
#include "util/units.h"

namespace dmn::topo {

/// Radio decision thresholds shared by every MAC scheme.
struct PhyThresholds {
  double noise_floor_dbm = kNoiseFloorDbm;   // -94 dBm
  double cs_threshold_dbm = -82.0;           // carrier-sense energy detect
  double sinr_data_db = 7.0;                 // 12 Mbps decode threshold
  double sinr_control_db = 4.0;              // 6 Mbps (paper's cited floor)
  double min_rss_dbm = -87.0;                // receiver sensitivity
  double assoc_rss_dbm = -80.0;              // "can communicate" for T(m,n)
};

/// RSS tiers used by hand-built figure topologies.
///  * kRssStrong    — AP-client communication links.
///  * kRssInterfere — destructive co-channel interference (hidden-terminal
///    collision edges); decisively inside the SINR threshold.
///  * kRssSense     — "can hear each other": above the carrier-sense
///    threshold but below the association/communication threshold, and far
///    enough below the communication tier that concurrent (exposed)
///    transmissions and their ACKs still decode.
///  * kRssFaint     — out of range entirely.
inline constexpr double kRssStrong = -55.0;
inline constexpr double kRssInterfere = -58.0;
inline constexpr double kRssSense = -81.0;
inline constexpr double kRssFaint = -120.0;

class Topology {
 public:
  Topology(std::vector<Node> nodes, RssMap rss, PhyThresholds thresholds);

  // ---- builders -------------------------------------------------------

  /// The paper's T(m,n): sort trace nodes by communication-range degree
  /// (descending), repeatedly take the best remaining node as an AP and
  /// give it n random in-range clients. Throws if the trace cannot supply
  /// m APs with n clients each.
  static Topology build_tmn(const RssMap& trace, std::size_t m, std::size_t n,
                            const PhyThresholds& thresholds, Rng& rng);

  /// Random placement of m APs x n clients in a side x side square with a
  /// log-distance model (the Figure 14 setting). Clients are placed within
  /// communication range of their AP.
  static Topology random_network(std::size_t m, std::size_t n, double side,
                                 const LogDistanceModel& model,
                                 const PhyThresholds& thresholds, Rng& rng);

  // ---- accessors ------------------------------------------------------

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(NodeId id) const { return nodes_.at(
      static_cast<std::size_t>(id)); }
  const std::vector<Node>& nodes() const { return nodes_; }
  const RssMap& rss_map() const { return rss_; }
  const PhyThresholds& thresholds() const { return thresholds_; }

  double rss(NodeId a, NodeId b) const { return rss_.rss(a, b); }

  // ---- PHY fast path ---------------------------------------------------
  // Derived tables precomputed at construction so the per-transmission
  // loops in phy::Medium never convert dBm (a pow() per term) and never
  // visit nodes that cannot hear the transmitter.

  /// Linear received power in mW for the (a, b) pair; exactly
  /// dbm_to_mw(rss(a, b)). 0 mW on the diagonal (rss is -inf there).
  double rss_mw(NodeId a, NodeId b) const {
    return rss_mw_[static_cast<std::size_t>(a) * nodes_.size() +
                   static_cast<std::size_t>(b)];
  }

  /// Row of the linear-power matrix: contribution of a transmission from
  /// `src` to every node, indexable by NodeId.
  std::span<const double> rss_mw_row(NodeId src) const {
    return {rss_mw_.data() + static_cast<std::size_t>(src) * nodes_.size(),
            nodes_.size()};
  }

  /// Nodes that receive `src` at or above the receiver sensitivity
  /// (thresholds().min_rss_dbm), ascending id order, excluding `src`.
  /// These are the only nodes a frame from `src` can be delivered to.
  std::span<const NodeId> audible_from(NodeId src) const {
    return audible_[static_cast<std::size_t>(src)];
  }

  /// a hears b's transmissions for carrier sensing.
  bool can_sense(NodeId a, NodeId b) const;

  /// a can decode packets from b in a quiet channel.
  bool can_communicate(NodeId a, NodeId b) const;

  std::vector<NodeId> aps() const;
  std::vector<NodeId> clients_of(NodeId ap) const;
  std::vector<NodeId> all_clients() const;

  /// Nodes within communication range of `id` (excluding itself).
  std::vector<NodeId> comm_neighbors(NodeId id) const;

  /// All AP->client (downlink) and/or client->AP (uplink) links.
  std::vector<Link> make_links(bool downlink, bool uplink) const;

 private:
  std::vector<Node> nodes_;
  RssMap rss_;
  PhyThresholds thresholds_;
  std::vector<double> rss_mw_;              // row-major linear-power matrix
  std::vector<std::vector<NodeId>> audible_;  // per-src audible neighbors
};

/// Incremental builder for hand-crafted figure topologies. RSS defaults to
/// kRssFaint everywhere; the caller paints communication and interference
/// edges on top.
class ManualTopologyBuilder {
 public:
  /// Adds an AP; returns its id.
  NodeId add_ap(Position pos = {});
  /// Adds a client associated to `ap`; automatically sets strong RSS
  /// between the pair. Returns its id.
  NodeId add_client(NodeId ap, Position pos = {});

  /// Paints RSS for a node pair (both directions).
  ManualTopologyBuilder& set_rss(NodeId a, NodeId b, double dbm);
  /// Marks the pair as destructively interfering (kRssInterfere).
  ManualTopologyBuilder& interfere(NodeId a, NodeId b);
  /// Marks the pair as within carrier-sense range only (kRssSense).
  ManualTopologyBuilder& sense(NodeId a, NodeId b);

  Topology build(const PhyThresholds& thresholds = {}) const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::tuple<NodeId, NodeId, double>> edges_;
};

}  // namespace dmn::topo
