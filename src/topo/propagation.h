#pragma once
// Propagation models and the RSS map.
//
// Everything downstream (carrier sensing, SINR, conflict graphs, ROP
// mismatch checks) consumes a symmetric node-pair RSS matrix in dBm — the
// same shape as the measurement trace the paper collected from its 40-node
// testbed. The matrix can be produced by a path-loss model over node
// positions (the ns-3-style random-network experiments, Figure 14) or by
// the synthetic two-building trace generator (everything else).

#include <vector>

#include "topo/node.h"
#include "util/rng.h"

namespace dmn::topo {

/// Log-distance path loss, ns-3's default model family:
/// PL(d) = ref_loss + 10 * exponent * log10(d / 1m), d clamped to >= 1m.
struct LogDistanceModel {
  double tx_power_dbm = 20.0;
  double ref_loss_db = 46.7;  // 2.4 GHz free space @ 1 m
  double exponent = 3.0;

  double rss_dbm(const Position& a, const Position& b) const;
};

/// Symmetric RSS matrix between all node pairs, in dBm.
class RssMap {
 public:
  explicit RssMap(std::size_t n_nodes);

  std::size_t size() const { return n_; }

  double rss(NodeId a, NodeId b) const;
  void set_rss(NodeId a, NodeId b, double dbm);  // sets both directions

  /// Builds the map from positions with a path-loss model plus optional
  /// per-pair lognormal shadowing (frozen, symmetric).
  static RssMap from_positions(const std::vector<Position>& pos,
                               const LogDistanceModel& model,
                               double shadowing_sigma_db, Rng& rng);

 private:
  std::size_t n_;
  std::vector<double> rss_;  // row-major, symmetric
};

}  // namespace dmn::topo
