#include "topo/topology.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <tuple>

namespace dmn::topo {

namespace {

/// Dense-matrix memory guard: the RSS fast path bakes an n x n double
/// matrix, so an absurd node count from a bad trace would silently try to
/// allocate unbounded memory. 32768 nodes ~= 8 GB per matrix — enough for
/// the 1000-AP / 24k-client campus the partitioned-kernel scale bench
/// simulates (bench/bench_scale.cpp), while still rejecting garbage counts.
constexpr std::size_t kMaxNodes = 32768;

}  // namespace

Topology::Topology(std::vector<Node> nodes, RssMap rss,
                   PhyThresholds thresholds)
    : nodes_(std::move(nodes)), rss_(std::move(rss)), thresholds_(thresholds) {
  // Ingestion validation: every topology — trace-derived, random or
  // hand-built — passes through here, so this is the chokepoint where bad
  // RSS traces and malformed node tables are rejected by name instead of
  // silently propagating garbage into the linear-power matrix.
  if (nodes_.empty()) {
    throw std::invalid_argument("Topology: node list is empty");
  }
  if (nodes_.size() > kMaxNodes) {
    throw std::invalid_argument(
        "Topology: node count " + std::to_string(nodes_.size()) +
        " exceeds the supported maximum of " + std::to_string(kMaxNodes));
  }
  if (rss_.size() != nodes_.size()) {
    throw std::invalid_argument("Topology: RSS map size != node count");
  }
  const std::size_t n = nodes_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (node.id != static_cast<NodeId>(i)) {
      throw std::invalid_argument(
          "Topology: node at index " + std::to_string(i) + " has id " +
          std::to_string(node.id) +
          " (ids must be unique and equal to their index)");
    }
    if (!node.is_ap && node.ap != kNoNode) {
      if (node.ap < 0 || static_cast<std::size_t>(node.ap) >= n) {
        throw std::invalid_argument(
            "Topology: client " + std::to_string(node.id) +
            " is associated to nonexistent AP " + std::to_string(node.ap));
      }
      if (!nodes_[static_cast<std::size_t>(node.ap)].is_ap) {
        throw std::invalid_argument(
            "Topology: client " + std::to_string(node.id) +
            " is associated to node " + std::to_string(node.ap) +
            ", which is not an AP");
      }
    }
  }

  // Bake the PHY fast-path tables: the linear-power matrix (one pow() per
  // pair here instead of one per interference term at runtime) and the
  // per-source audible-neighbor lists that bound frame delivery fan-out.
  rss_mw_.resize(n * n);
  audible_.resize(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      const double dbm = rss_.rss(static_cast<NodeId>(a),
                                  static_cast<NodeId>(b));
      // Off-diagonal entries must be real attenuations: NaN poisons every
      // downstream SINR sum, and a positive-dBm "received" power is
      // stronger than any transmitter in this model — both are trace
      // corruption, not physics. (-inf marks "no path" and is fine; the
      // diagonal is -inf by construction.)
      if (a != b && (std::isnan(dbm) || dbm > 0.0)) {
        throw std::invalid_argument(
            "Topology: RSS(" + std::to_string(a) + ", " + std::to_string(b) +
            ") = " + std::to_string(dbm) +
            " dBm is invalid (expected a finite value <= 0 dBm, or -inf "
            "for no path)");
      }
      rss_mw_[a * n + b] = dbm_to_mw(dbm);
      if (a != b && dbm >= thresholds_.min_rss_dbm) {
        audible_[a].push_back(static_cast<NodeId>(b));
      }
    }
  }
}

bool Topology::can_sense(NodeId a, NodeId b) const {
  if (a == b) return true;
  return rss(a, b) >= thresholds_.cs_threshold_dbm;
}

bool Topology::can_communicate(NodeId a, NodeId b) const {
  if (a == b) return false;
  return rss(a, b) >= thresholds_.assoc_rss_dbm;
}

std::vector<NodeId> Topology::aps() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.is_ap) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Topology::clients_of(NodeId ap) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (!n.is_ap && n.ap == ap) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Topology::all_clients() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (!n.is_ap) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Topology::comm_neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.id != id && can_communicate(id, n.id)) out.push_back(n.id);
  }
  return out;
}

std::vector<Link> Topology::make_links(bool downlink, bool uplink) const {
  std::vector<Link> links;
  for (const Node& n : nodes_) {
    if (n.is_ap || n.ap == kNoNode) continue;
    if (downlink) links.push_back(Link{n.ap, n.id});
    if (uplink) links.push_back(Link{n.id, n.ap});
  }
  return links;
}

Topology Topology::build_tmn(const RssMap& trace, std::size_t m,
                             std::size_t n, const PhyThresholds& thresholds,
                             Rng& rng) {
  if (m == 0 || n == 0) {
    throw std::invalid_argument(
        "build_tmn: T(m, n) requires m >= 1 APs and n >= 1 clients (got m=" +
        std::to_string(m) + ", n=" + std::to_string(n) + ")");
  }
  const std::size_t total = trace.size();

  // Degree in the communication graph (paper: "number of nodes in their
  // communication range").
  auto degree = [&](std::size_t i) {
    std::size_t d = 0;
    for (std::size_t j = 0; j < total; ++j) {
      if (j != i && trace.rss(static_cast<NodeId>(i),
                              static_cast<NodeId>(j)) >=
                        thresholds.assoc_rss_dbm) {
        ++d;
      }
    }
    return d;
  };

  std::vector<std::size_t> order(total);
  for (std::size_t i = 0; i < total; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return degree(a) > degree(b);
  });

  std::vector<bool> used(total, false);
  std::vector<Node> nodes(total);
  for (std::size_t i = 0; i < total; ++i) {
    nodes[i] = Node{static_cast<NodeId>(i), Position{}, false, kNoNode};
  }

  std::size_t aps_made = 0;
  for (std::size_t oi = 0; oi < total && aps_made < m; ++oi) {
    const std::size_t cand = order[oi];
    if (used[cand]) continue;

    // Collect unused nodes in the candidate AP's communication range.
    std::vector<std::size_t> avail;
    for (std::size_t j = 0; j < total; ++j) {
      if (!used[j] && j != cand &&
          trace.rss(static_cast<NodeId>(cand), static_cast<NodeId>(j)) >=
              thresholds.assoc_rss_dbm) {
        avail.push_back(j);
      }
    }
    if (avail.size() < n) continue;  // cannot host n clients, try next

    used[cand] = true;
    nodes[cand].is_ap = true;
    rng.shuffle(avail);
    for (std::size_t k = 0; k < n; ++k) {
      used[avail[k]] = true;
      nodes[avail[k]].ap = static_cast<NodeId>(cand);
    }
    ++aps_made;
  }
  if (aps_made < m) {
    throw std::runtime_error("build_tmn: trace cannot supply requested T(m,n)");
  }

  // Keep only the selected nodes, renumbering compactly.
  std::vector<NodeId> remap(total, kNoNode);
  std::vector<Node> kept;
  for (std::size_t i = 0; i < total; ++i) {
    if (used[i]) {
      remap[i] = static_cast<NodeId>(kept.size());
      Node nn = nodes[i];
      nn.id = remap[i];
      kept.push_back(nn);
    }
  }
  for (Node& nn : kept) {
    if (nn.ap != kNoNode) nn.ap = remap[static_cast<std::size_t>(nn.ap)];
  }
  RssMap sub(kept.size());
  for (std::size_t i = 0; i < total; ++i) {
    if (remap[i] == kNoNode) continue;
    for (std::size_t j = i + 1; j < total; ++j) {
      if (remap[j] == kNoNode) continue;
      sub.set_rss(remap[i], remap[j],
                  trace.rss(static_cast<NodeId>(i), static_cast<NodeId>(j)));
    }
  }
  return Topology(std::move(kept), std::move(sub), thresholds);
}

Topology Topology::random_network(std::size_t m, std::size_t n, double side,
                                  const LogDistanceModel& model,
                                  const PhyThresholds& thresholds, Rng& rng) {
  if (m == 0) {
    throw std::invalid_argument("random_network: need at least one AP");
  }
  if (!(side > 0.0) || !std::isfinite(side)) {
    throw std::invalid_argument(
        "random_network: area side must be a positive finite length (got " +
        std::to_string(side) + ")");
  }
  // Maximum AP-client distance that still satisfies the association RSS.
  // rss = tx - ref - 10*e*log10(d) >= assoc  =>  d <= 10^((tx-ref-assoc)/(10e))
  const double max_d = std::pow(
      10.0, (model.tx_power_dbm - model.ref_loss_db -
             thresholds.assoc_rss_dbm) /
                (10.0 * model.exponent));

  std::vector<Node> nodes;
  std::vector<Position> pos;
  for (std::size_t a = 0; a < m; ++a) {
    const NodeId ap_id = static_cast<NodeId>(nodes.size());
    const Position ap_pos{rng.uniform(0.0, side), rng.uniform(0.0, side)};
    nodes.push_back(Node{ap_id, ap_pos, true, kNoNode});
    pos.push_back(ap_pos);
    for (std::size_t c = 0; c < n; ++c) {
      // Rejection-sample a client inside both the AP disc and the area.
      Position p{};
      for (int tries = 0; tries < 1000; ++tries) {
        const double r = max_d * std::sqrt(rng.uniform(0.0, 1.0));
        const double th = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
        p = Position{ap_pos.x + r * std::cos(th), ap_pos.y + r * std::sin(th)};
        if (p.x >= 0.0 && p.x <= side && p.y >= 0.0 && p.y <= side) break;
      }
      const NodeId cid = static_cast<NodeId>(nodes.size());
      nodes.push_back(Node{cid, p, false, ap_id});
      pos.push_back(p);
    }
  }
  RssMap rss = RssMap::from_positions(pos, model, /*shadowing=*/0.0, rng);
  return Topology(std::move(nodes), std::move(rss), thresholds);
}

NodeId ManualTopologyBuilder::add_ap(Position pos) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, pos, true, kNoNode});
  return id;
}

NodeId ManualTopologyBuilder::add_client(NodeId ap, Position pos) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, pos, false, ap});
  edges_.emplace_back(ap, id, kRssStrong);
  return id;
}

ManualTopologyBuilder& ManualTopologyBuilder::set_rss(NodeId a, NodeId b,
                                                      double dbm) {
  edges_.emplace_back(a, b, dbm);
  return *this;
}

ManualTopologyBuilder& ManualTopologyBuilder::interfere(NodeId a, NodeId b) {
  edges_.emplace_back(a, b, kRssInterfere);
  return *this;
}

ManualTopologyBuilder& ManualTopologyBuilder::sense(NodeId a, NodeId b) {
  edges_.emplace_back(a, b, kRssSense);
  return *this;
}

Topology ManualTopologyBuilder::build(const PhyThresholds& thresholds) const {
  RssMap rss(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      rss.set_rss(static_cast<NodeId>(i), static_cast<NodeId>(j), kRssFaint);
    }
  }
  for (const auto& [a, b, dbm] : edges_) {
    // set_rss on an out-of-range id would index past the dense matrix, so
    // reject the edge here with both endpoints named.
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= nodes_.size() ||
        static_cast<std::size_t>(b) >= nodes_.size() || a == b) {
      throw std::invalid_argument(
          "ManualTopologyBuilder: edge (" + std::to_string(a) + ", " +
          std::to_string(b) + ") references an invalid node id (topology has " +
          std::to_string(nodes_.size()) + " nodes)");
    }
    rss.set_rss(a, b, dbm);
  }
  return Topology(nodes_, std::move(rss), thresholds);
}

}  // namespace dmn::topo
