#pragma once
// Basic network entities: nodes, AP-client associations, directed links.

#include <cstdint>
#include <string>
#include <vector>

namespace dmn::topo {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

struct Position {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Position& a, const Position& b);

struct Node {
  NodeId id = kNoNode;
  Position pos;
  bool is_ap = false;
  /// For clients: the AP they associate with; for APs: kNoNode.
  NodeId ap = kNoNode;
};

/// A directed link. Exactly one endpoint is an AP (uplink or downlink).
struct Link {
  NodeId sender = kNoNode;
  NodeId receiver = kNoNode;

  bool operator==(const Link&) const = default;
};

using LinkId = int;
inline constexpr LinkId kNoLink = -1;

std::string to_string(const Link& l);

}  // namespace dmn::topo
