#pragma once
// Interference partitions: connected components of the audible-neighbor
// graph. Two nodes in different components share no RSS edge at or above
// receiver sensitivity, so neither carrier sense, interference summation
// nor frame delivery can couple them over the air — the wired backbone is
// the only cross-component channel, and its min_latency floor becomes the
// conservative lookahead of the partitioned kernel (src/sim/simulator.h).
//
// Client-AP association edges are folded in as well: an associated pair is
// always audible in practice, and folding the association explicitly keeps
// every BSS intact even on hand-built topologies with eccentric RSS tables.

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace dmn::topo {

struct Partitioning {
  /// Partition id per node, indexed by NodeId. Ids are dense [0, count) and
  /// ordered by each component's smallest node id, so the assignment is a
  /// pure function of the topology — never of thread count or build order.
  std::vector<std::uint32_t> assignment;
  std::uint32_t count = 0;

  std::vector<NodeId> members_of(std::uint32_t p) const;
};

/// Union-find over the precomputed audible lists plus every client-AP
/// association edge.
Partitioning compute_partitions(const Topology& topo);

}  // namespace dmn::topo
