#include "topo/conflict_graph.h"

#include <algorithm>
#include <cstdlib>

namespace {
/// Pairwise scheduling margin (dB): conflict graphs are pairwise but slots
/// hold many concurrent links whose interference adds up; requiring each
/// pair to clear the threshold with margin keeps the summed case feasible.
double graph_margin_db() {
  static const double v = []() {
    const char* e = std::getenv("DMN_GRAPH_MARGIN");
    return e != nullptr ? std::atof(e) : 3.0;
  }();
  return v;
}
}  // namespace

namespace dmn::topo {
namespace {

/// SINR (dB) at `receiver` for a signal from `sender` with one interferer.
double sinr_with_interferer(const Topology& topo, NodeId sender,
                            NodeId receiver, NodeId interferer) {
  const double sig_mw = dbm_to_mw(topo.rss(sender, receiver));
  const double noise_mw = dbm_to_mw(topo.thresholds().noise_floor_dbm);
  const double intf_mw = dbm_to_mw(topo.rss(interferer, receiver));
  return ratio_to_db(sig_mw / (noise_mw + intf_mw));
}

bool share_node(const Link& a, const Link& b) {
  return a.sender == b.sender || a.sender == b.receiver ||
         a.receiver == b.sender || a.receiver == b.receiver;
}

/// Data-direction-only conflict: either receiver's data SINR breaks under
/// interference from any endpoint of the other link (both endpoints of a
/// link transmit something during a slot: data/fake one way, ACK back).
bool links_conflict_data(const Topology& topo, const Link& a,
                         const Link& b) {
  if (share_node(a, b)) return true;
  const double th = topo.thresholds().sinr_data_db + graph_margin_db();
  return sinr_with_interferer(topo, a.sender, a.receiver, b.sender) < th ||
         sinr_with_interferer(topo, a.sender, a.receiver, b.receiver) < th ||
         sinr_with_interferer(topo, b.sender, b.receiver, a.sender) < th ||
         sinr_with_interferer(topo, b.sender, b.receiver, a.receiver) < th;
}

/// True if a and b cannot successfully transmit concurrently. Checks both
/// the data direction (sender -> receiver at the data threshold) and the
/// link-layer ACK direction (receiver -> sender at the control threshold):
/// an exposed data pair whose ACKs collide is not schedulable together.
bool links_conflict(const Topology& topo, const Link& a, const Link& b) {
  if (share_node(a, b)) return true;
  // Strict rule = the data-only rule plus ACK protection, so the full rule
  // is a superset of the relaxed one by construction.
  if (links_conflict_data(topo, a, b)) return true;
  const double ctrl_th =
      topo.thresholds().sinr_control_db + graph_margin_db();
  // ACK phase: scheduled transmissions share a fixed slot structure, so
  // data phases align with data phases and ACK phases with ACK phases —
  // the cross (ack-under-data) case never occurs in time. What must hold
  // is each ACK decoding under the OTHER link's concurrent ACK.
  if (sinr_with_interferer(topo, a.receiver, a.sender, b.receiver) <
      ctrl_th) {
    return true;
  }
  if (sinr_with_interferer(topo, b.receiver, b.sender, a.receiver) <
      ctrl_th) {
    return true;
  }
  return false;
}

}  // namespace

ConflictGraph ConflictGraph::build(const Topology& topo,
                                   std::span<const Link> links) {
  ConflictGraph g;
  g.links_.assign(links.begin(), links.end());
  const std::size_t n = g.links_.size();
  g.conflict_.assign(n, std::vector<bool>(n, false));
  g.data_conflict_.assign(n, std::vector<bool>(n, false));
  g.adj_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (links_conflict(topo, g.links_[i], g.links_[j])) {
        g.conflict_[i][j] = g.conflict_[j][i] = true;
        g.adj_[i].push_back(static_cast<LinkId>(j));
        g.adj_[j].push_back(static_cast<LinkId>(i));
      }
      if (links_conflict_data(topo, g.links_[i], g.links_[j])) {
        g.data_conflict_[i][j] = g.data_conflict_[j][i] = true;
      }
    }
  }
  return g;
}

bool ConflictGraph::conflicts(LinkId a, LinkId b) const {
  if (a == b) return true;
  return conflict_.at(static_cast<std::size_t>(a))
      .at(static_cast<std::size_t>(b));
}

bool ConflictGraph::data_conflicts(LinkId a, LinkId b) const {
  if (a == b) return true;
  return data_conflict_.at(static_cast<std::size_t>(a))
      .at(static_cast<std::size_t>(b));
}

bool ConflictGraph::is_independent(std::span<const LinkId> set) const {
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      if (conflicts(set[i], set[j])) return false;
    }
  }
  return true;
}

void ConflictGraph::extend_to_maximal(std::vector<LinkId>& set,
                                      std::span<const LinkId> candidates)
    const {
  for (LinkId c : candidates) {
    if (std::find(set.begin(), set.end(), c) != set.end()) continue;
    bool ok = true;
    for (LinkId s : set) {
      if (data_conflicts(c, s)) {
        ok = false;
        break;
      }
    }
    if (ok) set.push_back(c);
  }
}

LinkId ConflictGraph::find(const Link& l) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i] == l) return static_cast<LinkId>(i);
  }
  return kNoLink;
}

PairCensus classify_pairs(const Topology& topo, std::span<const Link> links) {
  PairCensus census;
  const double th = topo.thresholds().sinr_data_db;
  const double noise_mw = dbm_to_mw(topo.thresholds().noise_floor_dbm);
  auto sinr = [&](const Link& l, NodeId interferer) {
    const double sig = dbm_to_mw(topo.rss(l.sender, l.receiver));
    const double intf = dbm_to_mw(topo.rss(interferer, l.receiver));
    return ratio_to_db(sig / (noise_mw + intf));
  };
  for (std::size_t i = 0; i < links.size(); ++i) {
    for (std::size_t j = i + 1; j < links.size(); ++j) {
      const Link& a = links[i];
      const Link& b = links[j];
      if (a.sender == b.sender || a.sender == b.receiver ||
          a.receiver == b.sender || a.receiver == b.receiver) {
        continue;  // node-sharing pairs are neither hidden nor exposed
      }
      ++census.total;
      const bool sense = topo.can_sense(a.sender, b.sender);
      const bool both_ok = sinr(a, b.sender) >= th && sinr(b, a.sender) >= th;
      if (!sense && !both_ok) ++census.hidden;
      if (sense && both_ok) ++census.exposed;
    }
  }
  return census;
}

}  // namespace dmn::topo
