#include "topo/partition.h"

#include <numeric>

namespace dmn::topo {

namespace {

std::size_t find_root(std::vector<std::size_t>& parent, std::size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];  // path halving
    x = parent[x];
  }
  return x;
}

void unite(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  a = find_root(parent, a);
  b = find_root(parent, b);
  if (a == b) return;
  // Union by smaller root id keeps roots minimal, which makes the final
  // renumbering (by smallest member) a straight scan.
  if (b < a) std::swap(a, b);
  parent[b] = a;
}

}  // namespace

std::vector<NodeId> Partitioning::members_of(std::uint32_t p) const {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == p) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

Partitioning compute_partitions(const Topology& topo) {
  const std::size_t n = topo.num_nodes();
  std::vector<std::size_t> parent(n);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId src = static_cast<NodeId>(i);
    for (const NodeId dst : topo.audible_from(src)) {
      unite(parent, i, static_cast<std::size_t>(dst));
    }
  }
  for (const Node& node : topo.nodes()) {
    if (!node.is_ap && node.ap != kNoNode) {
      unite(parent, static_cast<std::size_t>(node.id),
            static_cast<std::size_t>(node.ap));
    }
  }
  Partitioning out;
  out.assignment.resize(n);
  // Roots are minimal member ids (see unite), so numbering components in
  // node-id order yields ids ordered by smallest member.
  constexpr std::uint32_t kUnset = 0xffffffffu;
  std::vector<std::uint32_t> root_id(n, kUnset);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t r = find_root(parent, i);
    if (root_id[r] == kUnset) root_id[r] = out.count++;
    out.assignment[i] = root_id[r];
  }
  return out;
}

}  // namespace dmn::topo
