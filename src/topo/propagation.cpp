#include "topo/propagation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace dmn::topo {

double LogDistanceModel::rss_dbm(const Position& a, const Position& b) const {
  const double d = std::max(distance(a, b), 1.0);
  return tx_power_dbm - ref_loss_db - 10.0 * exponent * std::log10(d);
}

RssMap::RssMap(std::size_t n_nodes)
    : n_(n_nodes),
      rss_(n_nodes * n_nodes, -std::numeric_limits<double>::infinity()) {}

double RssMap::rss(NodeId a, NodeId b) const {
  if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= n_ ||
      static_cast<std::size_t>(b) >= n_) {
    throw std::out_of_range("RssMap::rss");
  }
  return rss_[static_cast<std::size_t>(a) * n_ + static_cast<std::size_t>(b)];
}

void RssMap::set_rss(NodeId a, NodeId b, double dbm) {
  if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= n_ ||
      static_cast<std::size_t>(b) >= n_) {
    throw std::out_of_range("RssMap::set_rss");
  }
  rss_[static_cast<std::size_t>(a) * n_ + static_cast<std::size_t>(b)] = dbm;
  rss_[static_cast<std::size_t>(b) * n_ + static_cast<std::size_t>(a)] = dbm;
}

RssMap RssMap::from_positions(const std::vector<Position>& pos,
                              const LogDistanceModel& model,
                              double shadowing_sigma_db, Rng& rng) {
  RssMap map(pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      double rss = model.rss_dbm(pos[i], pos[j]);
      if (shadowing_sigma_db > 0.0) {
        rss += rng.normal(0.0, shadowing_sigma_db);
      }
      map.set_rss(static_cast<NodeId>(i), static_cast<NodeId>(j), rss);
    }
  }
  return map;
}

}  // namespace dmn::topo
