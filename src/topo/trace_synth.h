#pragma once
// Synthetic replacement for the paper's 40-node, two-building RSS
// measurement trace (§4.2).
//
// We cannot replay the authors' trace, so we synthesize one with the same
// published statistics: two office buildings, indoor log-distance loss with
// interior-wall attenuation and lognormal shadowing, calibrated so that
//   * only ~0.5 % of node pairs differ by more than 38 dB in RSS at a
//     common receiver (the ROP guard-band design point), and
//   * T(10,2) topologies drawn from it contain a healthy mix of hidden and
//     exposed link pairs (the paper reports 10 hidden / 62 exposed).

#include <vector>

#include "topo/propagation.h"
#include "util/rng.h"

namespace dmn::topo {

struct TraceParams {
  std::size_t num_nodes = 40;
  double building_w = 60.0;   // metres
  double building_h = 35.0;
  double building_gap = 25.0; // outdoor gap between the two buildings
  double tx_power_dbm = 20.0;
  double ref_loss_db = 46.7;
  double exponent = 3.3;      // indoor office
  double wall_db = 5.0;       // per interior wall
  double room_w = 12.0;       // interior wall grid pitch
  double room_h = 9.0;
  double exterior_wall_db = 10.0;  // each building shell
  double shadowing_sigma_db = 4.0;
  int max_interior_walls = 4;
};

struct SyntheticTrace {
  std::vector<Position> positions;
  RssMap rss;
};

/// Generates node positions (half per building) and the pairwise RSS map.
SyntheticTrace synthesize_trace(const TraceParams& params, Rng& rng);

/// Fraction of unordered node pairs (i, j), (i, k) sharing receiver i whose
/// RSS at i differs by more than `diff_db` — the statistic the paper quotes
/// as 0.54 % at 38 dB. Pairs where either RSS is below `floor_dbm` are
/// ignored (they could never be co-polled clients).
double rss_mismatch_fraction(const RssMap& map, double diff_db,
                             double floor_dbm);

}  // namespace dmn::topo
