#pragma once
// Conflict graph G(V, E) over links (§3, "Identifying hidden and exposed
// links"): each vertex is a directed AP-client link; an edge means the two
// links cannot transmit concurrently. Built from the central interference
// (RSS) map exactly as the paper's server does. Also provides the
// hidden/exposed pair classification the evaluation reports.

#include <cstddef>
#include <span>
#include <vector>

#include "topo/topology.h"

namespace dmn::topo {

class ConflictGraph {
 public:
  /// Builds the graph for `links` over `topo`. Two links conflict when
  ///  * they share a node (half-duplex / single radio), or
  ///  * either receiver's SINR — desired RSS over (noise + the other
  ///    sender's RSS) — falls below the data decode threshold.
  static ConflictGraph build(const Topology& topo,
                             std::span<const Link> links);

  std::size_t num_links() const { return links_.size(); }
  const std::vector<Link>& links() const { return links_; }
  const Link& link(LinkId id) const {
    return links_.at(static_cast<std::size_t>(id));
  }

  bool conflicts(LinkId a, LinkId b) const;
  /// Relaxed rule protecting only the data direction: used for fake-link
  /// insertion, where losing the occasional instruction-carrying ACK is
  /// acceptable but corrupting a real link's data is not.
  bool data_conflicts(LinkId a, LinkId b) const;
  const std::vector<LinkId>& neighbors(LinkId id) const {
    return adj_.at(static_cast<std::size_t>(id));
  }

  /// True if `set` is an independent set (pairwise conflict-free).
  bool is_independent(std::span<const LinkId> set) const;

  /// Greedy maximal extension: adds links from `candidates` (in order) to
  /// `set` until no more fit. Used for fake-link insertion, hence the
  /// relaxed data-only conflict rule.
  void extend_to_maximal(std::vector<LinkId>& set,
                         std::span<const LinkId> candidates) const;

  /// Finds the LinkId of `l`, or kNoLink.
  LinkId find(const Link& l) const;

 private:
  std::vector<Link> links_;
  std::vector<std::vector<bool>> conflict_;       // full (data + ACK)
  std::vector<std::vector<bool>> data_conflict_;  // data direction only
  std::vector<std::vector<LinkId>> adj_;
};

/// Hidden/exposed census over all unordered pairs of node-disjoint links:
///  * hidden: senders cannot carrier-sense each other, yet concurrent
///    transmission fails at a receiver;
///  * exposed: senders sense each other (so DCF serializes them), yet both
///    receptions would succeed concurrently.
struct PairCensus {
  std::size_t hidden = 0;
  std::size_t exposed = 0;
  std::size_t total = 0;  // node-disjoint pairs considered
};
PairCensus classify_pairs(const Topology& topo, std::span<const Link> links);

}  // namespace dmn::topo
