#include "topo/trace_synth.h"

#include <algorithm>
#include <cmath>

namespace dmn::topo {
namespace {

/// Number of interior wall-grid lines crossed by the segment a-b within one
/// building, given the room grid pitch.
int walls_crossed_1d(double a, double b, double pitch) {
  const double lo = std::min(a, b);
  const double hi = std::max(a, b);
  return static_cast<int>(std::floor(hi / pitch)) -
         static_cast<int>(std::floor(lo / pitch));
}

}  // namespace

SyntheticTrace synthesize_trace(const TraceParams& params, Rng& rng) {
  const std::size_t n = params.num_nodes;
  std::vector<Position> pos(n);
  std::vector<int> building(n);

  // Building A occupies x in [0, w]; building B x in [w + gap, 2w + gap].
  for (std::size_t i = 0; i < n; ++i) {
    const bool in_b = i >= n / 2;
    building[i] = in_b ? 1 : 0;
    const double x0 = in_b ? params.building_w + params.building_gap : 0.0;
    pos[i] = Position{x0 + rng.uniform(0.0, params.building_w),
                      rng.uniform(0.0, params.building_h)};
  }

  LogDistanceModel model{params.tx_power_dbm, params.ref_loss_db,
                         params.exponent};

  RssMap map(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double rss = model.rss_dbm(pos[i], pos[j]);

      // Interior walls: count room-grid crossings, capped (beyond a few
      // walls, propagation is dominated by corridors/diffraction).
      int walls = walls_crossed_1d(pos[i].x, pos[j].x, params.room_w) +
                  walls_crossed_1d(pos[i].y, pos[j].y, params.room_h);
      walls = std::min(walls, params.max_interior_walls);
      rss -= params.wall_db * walls;

      // Exterior shells when the pair spans the two buildings.
      if (building[i] != building[j]) {
        rss -= 2.0 * params.exterior_wall_db;
      }

      if (params.shadowing_sigma_db > 0.0) {
        rss += rng.normal(0.0, params.shadowing_sigma_db);
      }
      map.set_rss(static_cast<NodeId>(i), static_cast<NodeId>(j), rss);
    }
  }
  return SyntheticTrace{std::move(pos), std::move(map)};
}

double rss_mismatch_fraction(const RssMap& map, double diff_db,
                             double floor_dbm) {
  const std::size_t n = map.size();
  std::size_t total = 0;
  std::size_t exceed = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      for (std::size_t k = j + 1; k < n; ++k) {
        if (k == i) continue;
        const double a = map.rss(static_cast<NodeId>(i),
                                 static_cast<NodeId>(j));
        const double b = map.rss(static_cast<NodeId>(i),
                                 static_cast<NodeId>(k));
        if (a < floor_dbm || b < floor_dbm) continue;
        ++total;
        if (std::abs(a - b) > diff_db) ++exceed;
      }
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(exceed) / static_cast<double>(total);
}

}  // namespace dmn::topo
