#include "mac/dcf.h"

#include <algorithm>
#include <cassert>

namespace dmn::mac {

DcfNode::DcfNode(sim::Simulator& sim, phy::Medium& medium, topo::NodeId node,
                 const WifiParams& params, Rng rng, DeliveryFn deliver)
    : sim_(sim),
      radio_(medium, node, this),
      params_(params),
      rng_(std::move(rng)),
      deliver_(std::move(deliver)),
      queue_(params.queue_capacity),
      cw_(params.cw_min),
      backoff_slots_(-1) {}

bool DcfNode::enqueue(traffic::Packet p) {
  p.enqueued = sim_.now();
  const bool ok = queue_.push(std::move(p));
  if (ok && state_ == State::kIdle) start_access();
  return ok;
}

void DcfNode::set_service_enabled(bool enabled) {
  service_enabled_ = enabled;
  if (enabled && state_ == State::kIdle) {
    start_access();
  }
}

void DcfNode::set_dest_filter(std::optional<topo::NodeId> dst) {
  dest_filter_ = dst;
  if (state_ == State::kIdle) start_access();
}

const traffic::Packet* DcfNode::head() const {
  return dest_filter_.has_value() ? queue_.front_for(*dest_filter_)
                                  : queue_.front();
}

void DcfNode::start_access() {
  if (!service_enabled_ || head() == nullptr) {
    state_ = State::kIdle;
    return;
  }
  if (backoff_slots_ < 0) {
    // Fresh access attempt: draw the backoff now; it survives freezes.
    backoff_slots_ = fixed_backoff_.has_value()
                         ? *fixed_backoff_
                         : static_cast<int>(rng_.uniform_int(0, cw_));
  }
  begin_difs();
}

TimeNs DcfNode::current_ifs() const {
  const TimeNs difs_end = sim_.now() + params_.difs();
  return std::max(difs_end, eifs_until_) - sim_.now();
}

void DcfNode::begin_difs() {
  state_ = State::kWaitDifs;
  sim_.cancel(timer_);
  if (!medium_idle()) {
    return;  // resume on the idle edge (on_cs_change)
  }
  timer_ = sim_.schedule_in(current_ifs(), [this] { begin_backoff(); });
}

void DcfNode::begin_backoff() {
  if (!medium_idle()) {
    begin_difs();
    return;
  }
  state_ = State::kBackoff;
  backoff_resumed_at_ = sim_.now();
  sim_.cancel(timer_);
  timer_ = sim_.schedule_in(
      static_cast<TimeNs>(backoff_slots_) * params_.slot_time,
      [this] { transmit_head(); });
}

void DcfNode::pause_backoff() {
  // Credit fully elapsed slots.
  const auto elapsed = sim_.now() - backoff_resumed_at_;
  const int consumed = static_cast<int>(elapsed / params_.slot_time);
  backoff_slots_ = std::max(0, backoff_slots_ - consumed);
  sim_.cancel(timer_);
  state_ = State::kWaitDifs;
}

void DcfNode::on_cs_change(bool busy) {
  if (busy) {
    switch (state_) {
      case State::kWaitDifs:
        sim_.cancel(timer_);  // IFS interrupted; wait for the idle edge
        break;
      case State::kBackoff:
        pause_backoff();
        break;
      default:
        break;
    }
  } else {
    if (state_ == State::kWaitDifs) begin_difs();
  }
}

void DcfNode::transmit_head() {
  if (!medium_idle()) {
    begin_difs();
    return;
  }
  const traffic::Packet* hol = head();
  if (hol == nullptr) {
    state_ = State::kIdle;
    return;
  }
  backoff_slots_ = -1;  // consumed

  phy::Frame f;
  f.type = phy::FrameType::kData;
  f.dst = hol->dst;
  f.bytes = hol->bytes + params_.mac_header_bytes;
  f.duration = params_.data_airtime(hol->bytes);
  f.packet = *hol;
  f.packet_id = hol->id;
  f.is_retry = retry_count_ > 0;

  // Set the state and ACK timer before keying the radio: the transmission
  // immediately flips our own carrier sense and on_cs_change must not
  // interpret that as a backoff freeze.
  state_ = State::kWaitAck;
  sim_.cancel(timer_);
  timer_ = sim_.schedule_in(f.duration + params_.ack_timeout(),
                            [this] { on_ack_timeout(); });
  radio_.send(f);
}

void DcfNode::on_ack_timeout() {
  ++ack_timeouts_;
  ++retry_count_;
  if (retry_count_ > params_.retry_limit) {
    ++retry_drops_;
    head_done(false);
    return;
  }
  cw_ = std::min(cw_ * 2 + 1, params_.cw_max);
  backoff_slots_ = -1;  // redraw with the doubled window
  start_access();
}

void DcfNode::head_done(bool success) {
  auto popped = dest_filter_.has_value() ? queue_.pop_for(*dest_filter_)
                                         : queue_.pop();
  cw_ = params_.cw_min;
  retry_count_ = 0;
  backoff_slots_ = -1;
  if (popped && outcome_hook_) {
    // Invoke a copy: the hook may replace/clear itself (CENTAUR does when a
    // quota completes).
    auto hook = outcome_hook_;
    hook(*popped, success);
  }
  start_access();
}

void DcfNode::on_frame_rx(const phy::Frame& frame, const phy::RxInfo& info) {
  if (!info.decoded) {
    if (!info.half_duplex_loss) {
      // Erroneous frame: defer by EIFS from its end (i.e. from now).
      eifs_until_ = std::max(eifs_until_, sim_.now() + params_.eifs());
    }
    return;
  }
  eifs_until_ = 0;  // correctly received frame resets EIFS deferral

  switch (frame.type) {
    case phy::FrameType::kData: {
      if (frame.dst != radio_.node() || !frame.packet.has_value()) break;
      // SIFS-spaced ACK (sent regardless of CS, per the standard).
      const auto ack_for = frame.packet_id;
      const auto back_to = frame.src;
      sim_.post_in(params_.sifs, [this, ack_for, back_to] {
        phy::Frame ack;
        ack.type = phy::FrameType::kAck;
        ack.dst = back_to;
        ack.bytes = params_.ack_bytes;
        ack.duration = params_.ack_airtime();
        ack.packet_id = ack_for;
        radio_.send(ack);
      });
      // Duplicate filter: deliver each packet id from a sender only once.
      auto& from = seen_[frame.src];
      if (!from.contains(frame.packet_id)) {
        from.insert(frame.packet_id);
        if (from.size() > 4096) from.clear();  // bounded memory
        deliver_(*frame.packet, radio_.node(), sim_.now());
      }
      break;
    }
    case phy::FrameType::kAck: {
      if (frame.dst != radio_.node() || state_ != State::kWaitAck) break;
      const traffic::Packet* hol = head();
      if (hol != nullptr && frame.packet_id == hol->id) {
        sim_.cancel(timer_);
        head_done(true);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace dmn::mac
