#include "mac/mac_common.h"

// Interface definitions only; this TU anchors the module in the archive.
namespace dmn::mac {}
