#pragma once
// IEEE 802.11 Distributed Coordination Function.
//
// Full CSMA/CA state machine: DIFS/EIFS deferral, binary-exponential
// backoff with freeze-and-resume, SIFS-spaced ACKs, ACK-timeout retries up
// to the retry limit, NAV honoring, and duplicate filtering at the
// receiver. This is the paper's baseline and also serves CENTAUR's uplink
// path and its carrier-sense-aligned downlink batches (via the fixed
// backoff and gating hooks).

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "mac/mac_common.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "traffic/queue.h"
#include "util/rng.h"

namespace dmn::mac {

class DcfNode final : public MacEntity, public phy::MediumClient {
 public:
  DcfNode(sim::Simulator& sim, phy::Medium& medium, topo::NodeId node,
          const WifiParams& params, Rng rng, DeliveryFn deliver);

  // MacEntity ------------------------------------------------------------
  bool enqueue(traffic::Packet p) override;
  std::size_t queue_size() const override { return queue_.size(); }

  // MediumClient ----------------------------------------------------------
  void on_frame_rx(const phy::Frame& frame, const phy::RxInfo& info) override;
  void on_cs_change(bool busy) override;

  // CENTAUR hooks ----------------------------------------------------------
  /// When set, backoff always draws exactly this many slots (no BEB).
  void set_fixed_backoff(std::optional<int> slots) { fixed_backoff_ = slots; }
  /// When false, the node holds its queue (used to gate scheduled batches).
  void set_service_enabled(bool enabled);
  /// When set, only packets to this destination are served (CENTAUR
  /// releases one scheduled link at a time).
  void set_dest_filter(std::optional<topo::NodeId> dst);
  /// Queued packets toward `dst`.
  std::size_t queued_for(topo::NodeId dst) const {
    return queue_.count_for(dst);
  }
  /// Invoked when a head-of-line packet completes (delivered or dropped).
  void set_outcome_hook(
      std::function<void(const traffic::Packet&, bool success)> hook) {
    outcome_hook_ = std::move(hook);
  }

  // Introspection -----------------------------------------------------------
  std::uint64_t ack_timeouts() const { return ack_timeouts_; }
  std::uint64_t drops() const { return retry_drops_ + queue_.dropped(); }
  topo::NodeId node() const { return radio_.node(); }

 private:
  enum class State { kIdle, kWaitDifs, kBackoff, kTxData, kWaitAck };

  void start_access();
  void begin_difs();
  void begin_backoff();
  void pause_backoff();
  void resume_backoff_when_idle();
  void transmit_head();
  void on_ack_timeout();
  void head_done(bool success);
  const traffic::Packet* head() const;
  bool medium_idle() const { return !radio_.virtual_busy(); }
  TimeNs current_ifs() const;

  sim::Simulator& sim_;
  phy::Transceiver radio_;
  WifiParams params_;
  Rng rng_;
  DeliveryFn deliver_;

  traffic::PacketQueue queue_;
  State state_ = State::kIdle;
  bool service_enabled_ = true;
  std::optional<int> fixed_backoff_;
  std::optional<topo::NodeId> dest_filter_;

  int cw_;
  int retry_count_ = 0;
  int backoff_slots_ = 0;        // remaining full slots
  TimeNs backoff_resumed_at_ = 0;
  sim::EventHandle timer_;       // DIFS wait / backoff completion / ACK t.o.
  TimeNs eifs_until_ = 0;        // defer-by-EIFS deadline after bad frame

  std::function<void(const traffic::Packet&, bool)> outcome_hook_;

  // Receiver-side duplicate filter: last packet id seen per transmitter.
  std::map<topo::NodeId, std::set<traffic::PacketId>> seen_;

  std::uint64_t ack_timeouts_ = 0;
  std::uint64_t retry_drops_ = 0;
};

}  // namespace dmn::mac
