#pragma once
// Shared 802.11g MAC parameters and the MAC-entity/delivery interfaces all
// schemes (DCF, CENTAUR, Omniscient, DOMINO) implement.

#include <functional>

#include "phy/transceiver.h"
#include "traffic/packet.h"
#include "util/time.h"

namespace dmn::mac {

struct WifiParams {
  TimeNs slot_time = usec(9);
  TimeNs sifs = usec(10);
  int cw_min = 15;
  int cw_max = 1023;
  int retry_limit = 7;
  double data_rate_bps = 12e6;     // paper §4.2.1
  double control_rate_bps = 6e6;   // ACKs / polls at the base rate
  std::size_t mac_header_bytes = 28;  // header + FCS
  std::size_t ack_bytes = 14;
  std::size_t queue_capacity = 100;

  TimeNs difs() const { return sifs + 2 * slot_time; }

  /// Airtime of a data frame carrying `payload_bytes`.
  TimeNs data_airtime(std::size_t payload_bytes) const {
    return phy::frame_airtime(payload_bytes + mac_header_bytes,
                              data_rate_bps);
  }
  TimeNs ack_airtime() const {
    return phy::frame_airtime(ack_bytes, control_rate_bps);
  }
  /// Sender-side wait for the ACK after its data frame ends.
  TimeNs ack_timeout() const { return sifs + ack_airtime() + slot_time; }
  /// Extended IFS after an undecodable frame.
  TimeNs eifs() const { return sifs + ack_airtime() + difs(); }
};

/// Called when a data packet is decoded at its MAC destination.
using DeliveryFn =
    std::function<void(const traffic::Packet&, topo::NodeId at, TimeNs now)>;

/// Per-node MAC entity: the traffic layer enqueues into it.
class MacEntity {
 public:
  virtual ~MacEntity() = default;

  /// Accepts a packet for transmission; false when the queue dropped it.
  virtual bool enqueue(traffic::Packet p) = 0;

  virtual std::size_t queue_size() const = 0;
};

}  // namespace dmn::mac
