#include "api/timeline.h"

#include <algorithm>
#include <iomanip>

namespace dmn::api {

void TimelineRecorder::record_tx(std::uint64_t slot, topo::NodeId sender,
                                 topo::NodeId receiver, TimeNs start,
                                 bool fake, bool uplink) {
  tx_.push_back(TxRecord{slot, sender, receiver, start, fake, uplink});
  auto [it, fresh] = window_.try_emplace(slot, start, start);
  if (!fresh) {
    it->second.first = std::min(it->second.first, start);
    it->second.second = std::max(it->second.second, start);
  }
}

void TimelineRecorder::record_poll(std::uint64_t slot, topo::NodeId ap,
                                   TimeNs at) {
  polls_.push_back(PollRecord{slot, ap, at});
}

double TimelineRecorder::misalignment_us(std::uint64_t slot) const {
  const auto it = window_.find(slot);
  if (it == window_.end()) return 0.0;
  return to_usec(it->second.second - it->second.first);
}

std::vector<double> TimelineRecorder::misalignment_series(
    std::uint64_t first, std::size_t count) const {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(misalignment_us(first + i));
  }
  return out;
}

std::uint64_t TimelineRecorder::first_slot() const {
  return window_.empty() ? 0 : window_.begin()->first;
}

std::uint64_t TimelineRecorder::last_slot() const {
  return window_.empty() ? 0 : window_.rbegin()->first;
}

void TimelineRecorder::print(std::ostream& os, std::uint64_t from,
                             std::uint64_t to) const {
  for (std::uint64_t s = from; s <= to; ++s) {
    bool header = false;
    for (const TxRecord& r : tx_) {
      if (r.slot != s) continue;
      if (!header) {
        os << "slot " << s << " (misalign "
           << std::fixed << std::setprecision(1) << misalignment_us(s)
           << " us)\n";
        header = true;
      }
      os << "  " << (r.uplink ? "C" : "AP") << r.sender << " -> "
         << (r.uplink ? "AP" : "C") << r.receiver
         << (r.fake ? " [fake]" : "") << "  @ " << std::fixed
         << std::setprecision(1) << to_usec(r.start) << " us\n";
    }
    for (const PollRecord& p : polls_) {
      if (p.slot != s) continue;
      os << "  ROP poll by AP" << p.ap << "  @ " << std::fixed
         << std::setprecision(1) << to_usec(p.at) << " us\n";
    }
  }
}

}  // namespace dmn::api
