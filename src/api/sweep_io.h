#pragma once
// Serialization layer behind the crash-safe sweep runner (docs/RUNNER.md):
//
//  * an exact-round-trip JSON encoding of ExperimentResult / PointOutcome
//    (doubles printed with %.17g, so serialize(deserialize(s)) == s byte
//    for byte — the property the checkpoint/resume byte-identity guarantee
//    rests on);
//  * a minimal JSON parser for reading checkpoint records back;
//  * canonical FNV-1a hashing of sweep points (topology + full config) so a
//    resumed run can prove each restored record still matches the point it
//    claims to be, and of whole sweep definitions for the run manifest;
//  * the checkpoint file itself: JSONL, first line a manifest, then one
//    self-contained record per completed point, rewritten atomically
//    (write temp + rename) so a killed process always leaves a readable,
//    consistent file.
//
// The timeline recorder (ExperimentResult::timeline) is intentionally not
// serialized: checkpointing targets long unattended sweeps, which never
// record timelines. A restored result has timeline == nullptr. The audit
// report (ExperimentResult::audit) is excluded for the same reason, and so
// that audit-on results serialize byte-identically to audit-off results;
// hash_config likewise ignores ExperimentConfig::audit.

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/sweep.h"

namespace dmn::api {

// ---- minimal JSON value + parser -------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;

  bool boolean = false;
  double number = 0.0;
  /// Numbers keep their source text too, so integer fields round-trip
  /// exactly even beyond 2^53.
  std::string text;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;

  double num_or(const std::string& key, double fallback) const;
  std::uint64_t u64_or(const std::string& key, std::uint64_t fallback) const;
  std::int64_t i64_or(const std::string& key, std::int64_t fallback) const;
  std::string str_or(const std::string& key, const std::string& fb) const;
};

/// Parses one JSON document. Throws std::runtime_error on malformed input.
/// Accepts the non-standard number tokens inf/-inf/nan that %.17g emits.
JsonValue parse_json(std::string_view text);

/// Escapes and quotes `s` as a JSON string literal.
std::string json_quote(const std::string& s);

/// Number formatting used everywhere in this layer: %.17g round-trips every
/// finite double exactly through strtod.
std::string json_double(double v);

// ---- result / outcome serialization ----------------------------------------

/// Compact single-line JSON object. Field order is fixed, so equal results
/// serialize to equal bytes.
std::string serialize_result(const ExperimentResult& r);
ExperimentResult deserialize_result(const JsonValue& v);

/// Serializes the durable part of an outcome (status, result, error
/// context, timeout progress). Execution provenance — attempts,
/// from_checkpoint — is deliberately excluded: it describes *this
/// process's* work, and including it would break the byte-identity of
/// resumed vs uninterrupted merged output.
std::string serialize_outcome(const PointOutcome& o);
PointOutcome deserialize_outcome(const JsonValue& v);

/// One line per outcome, in point order — the canonical "merged output"
/// the resume byte-identity guarantee is stated over.
std::string serialize_report(const SweepReport& report);

// ---- point / sweep hashing -------------------------------------------------

/// Canonical FNV-1a 64 hash over the point's full semantic content:
/// topology (nodes, associations, RSS matrix, thresholds) and every
/// ExperimentConfig field including the seed and fault plan. Labels are
/// excluded (display-only).
std::uint64_t hash_point(const SweepPoint& p);

/// Order-sensitive combination of all point hashes + the point count: the
/// sweep-definition hash stored in the run manifest.
std::uint64_t hash_sweep(const std::vector<SweepPoint>& points);

/// Manifest fingerprint tying a checkpoint to a compatible runner: the
/// checkpoint format version plus the compiler that built the binary (a
/// result produced by a different build is not trusted for resume).
std::string runner_fingerprint();

// ---- checkpoint file -------------------------------------------------------

struct CheckpointManifest {
  std::uint64_t sweep_hash = 0;
  std::size_t num_points = 0;
  std::string fingerprint;
  std::string sweep_name;
};

std::string serialize_manifest(const CheckpointManifest& m);

/// A restored record: which point it is, the point hash recorded at write
/// time (revalidated against the live sweep on resume), and the outcome.
struct CheckpointRecord {
  std::size_t index = 0;
  std::uint64_t point_hash = 0;
  PointOutcome outcome;
};

std::string serialize_record(const CheckpointRecord& r);

struct LoadedCheckpoint {
  bool found = false;      // file existed and parsed at all
  bool compatible = false; // manifest matched the live sweep + runner
  CheckpointManifest manifest;
  /// Valid records by point index (only when compatible).
  std::unordered_map<std::size_t, CheckpointRecord> records;
};

/// Loads and validates a checkpoint against the expected manifest. Never
/// throws: a missing file, unreadable line or mismatched manifest degrades
/// to "nothing to restore" (with a warning on stderr for mismatches —
/// silently recomputing is safe; silently reusing stale results is not).
LoadedCheckpoint load_checkpoint(const std::string& path,
                                 const CheckpointManifest& expected);

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, flush + fsync, then rename. Throws std::runtime_error on I/O
/// failure (checkpointing that silently stops persisting is worse than a
/// loud abort of the sweep).
void atomic_write_file(const std::string& path, const std::string& contents);

}  // namespace dmn::api
