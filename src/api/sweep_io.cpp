#include "api/sweep_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace dmn::api {

// ---- JSON writing ----------------------------------------------------------

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

std::string json_u64(std::uint64_t v) { return std::to_string(v); }
std::string json_i64(std::int64_t v) { return std::to_string(v); }

std::string hex_u64(std::uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

}  // namespace

// ---- JSON parsing ----------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::num_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->type == Type::kNumber ? v->number : fallback;
}

std::uint64_t JsonValue::u64_or(const std::string& key,
                                std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->type != Type::kNumber) return fallback;
  return std::strtoull(v->text.c_str(), nullptr, 10);
}

std::int64_t JsonValue::i64_or(const std::string& key,
                               std::int64_t fallback) const {
  const JsonValue* v = find(key);
  if (v == nullptr || v->type != Type::kNumber) return fallback;
  return std::strtoll(v->text.c_str(), nullptr, 10);
}

std::string JsonValue::str_or(const std::string& key,
                              const std::string& fb) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->type == Type::kString ? v->text : fb;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n':
        if (consume_literal("nan")) return make_number("nan");
        if (consume_literal("null")) return JsonValue{};
        fail("bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.text), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue parse_string() {
    JsonValue v;
    v.type = JsonValue::Type::kString;
    expect('"');
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case '/': v.text += '/'; break;
        case 'n': v.text += '\n'; break;
        case 'r': v.text += '\r'; break;
        case 't': v.text += '\t'; break;
        case 'b': v.text += '\b'; break;
        case 'f': v.text += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long cp = std::strtol(hex.c_str(), nullptr, 16);
          // Checkpoint strings only ever contain control characters via
          // \u00xx (see json_quote); anything wider is not produced.
          v.text += static_cast<char>(cp & 0xff);
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.type = JsonValue::Type::kBool;
    if (consume_literal("true")) {
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) return v;
    fail("bad literal");
  }

  JsonValue make_number(std::string text) {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = std::strtod(text.c_str(), nullptr);
    v.text = std::move(text);
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Non-standard tokens %.17g can emit.
    if (consume_literal("inf")) {
      return make_number(std::string(text_.substr(start, pos_ - start)));
    }
    if (consume_literal("nan")) {
      return make_number(std::string(text_.substr(start, pos_ - start)));
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected number");
    return make_number(std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

// ---- result serialization --------------------------------------------------

namespace {

/// Streaming writer for fixed-order JSON objects.
class ObjWriter {
 public:
  void num(const char* k, double v) { field(k, json_double(v)); }
  void u64(const char* k, std::uint64_t v) { field(k, json_u64(v)); }
  void i64(const char* k, std::int64_t v) { field(k, json_i64(v)); }
  void boolean(const char* k, bool v) { field(k, v ? "true" : "false"); }
  void str(const char* k, const std::string& v) { field(k, json_quote(v)); }
  void raw(const char* k, const std::string& v) { field(k, v); }

  std::string close() { return out_ + "}"; }

 private:
  void field(const char* k, const std::string& v) {
    out_ += first_ ? "{" : ",";
    first_ = false;
    out_ += json_quote(k);
    out_ += ":";
    out_ += v;
  }
  std::string out_;
  bool first_ = true;
};

std::string serialize_link(const LinkResult& l) {
  ObjWriter w;
  w.i64("flow_id", l.flow.id);
  w.i64("src", l.flow.src);
  w.i64("dst", l.flow.dst);
  w.boolean("uplink", l.uplink);
  w.num("throughput_bps", l.throughput_bps);
  w.num("mean_delay_us", l.mean_delay_us);
  w.u64("delivered", l.delivered);
  return w.close();
}

LinkResult deserialize_link(const JsonValue& v) {
  LinkResult l;
  l.flow.id = static_cast<traffic::FlowId>(v.i64_or("flow_id", -1));
  l.flow.src = static_cast<topo::NodeId>(v.i64_or("src", -1));
  l.flow.dst = static_cast<topo::NodeId>(v.i64_or("dst", -1));
  const JsonValue* up = v.find("uplink");
  l.uplink = up != nullptr && up->boolean;
  l.throughput_bps = v.num_or("throughput_bps", 0.0);
  l.mean_delay_us = v.num_or("mean_delay_us", 0.0);
  l.delivered = v.u64_or("delivered", 0);
  return l;
}

std::string serialize_ap_health(const ApChainHealth& h) {
  ObjWriter w;
  w.i64("ap", h.ap);
  w.u64("self_starts", h.self_starts);
  w.u64("missed_rows", h.missed_rows);
  w.u64("ack_timeouts", h.ack_timeouts);
  w.u64("retry_drops", h.retry_drops);
  w.u64("anchor_rejections", h.anchor_rejections);
  w.u64("forced_trigger_losses", h.forced_trigger_losses);
  w.u64("recovery_samples", h.recovery_samples);
  return w.close();
}

ApChainHealth deserialize_ap_health(const JsonValue& v) {
  ApChainHealth h;
  h.ap = static_cast<topo::NodeId>(v.i64_or("ap", -1));
  h.self_starts = v.u64_or("self_starts", 0);
  h.missed_rows = v.u64_or("missed_rows", 0);
  h.ack_timeouts = v.u64_or("ack_timeouts", 0);
  h.retry_drops = v.u64_or("retry_drops", 0);
  h.anchor_rejections = v.u64_or("anchor_rejections", 0);
  h.forced_trigger_losses = v.u64_or("forced_trigger_losses", 0);
  h.recovery_samples = v.u64_or("recovery_samples", 0);
  return h;
}

template <typename T, typename Fn>
std::string serialize_array(const std::vector<T>& xs, Fn fn) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out += ",";
    out += fn(xs[i]);
  }
  return out + "]";
}

}  // namespace

std::string serialize_result(const ExperimentResult& r) {
  ObjWriter w;
  w.raw("links", serialize_array(r.links, serialize_link));
  w.num("aggregate_throughput_bps", r.aggregate_throughput_bps);
  w.num("jain_fairness", r.jain_fairness);
  w.num("mean_delay_us", r.mean_delay_us);
  w.u64("ack_timeouts", r.ack_timeouts);
  w.u64("mac_drops", r.mac_drops);
  w.u64("census_hidden", r.census.hidden);
  w.u64("census_exposed", r.census.exposed);
  w.u64("census_total", r.census.total);
  w.u64("domino_self_starts", r.domino_self_starts);
  w.u64("domino_missed_rows", r.domino_missed_rows);
  w.u64("domino_rows_executed", r.domino_rows_executed);
  w.u64("domino_untriggerable", r.domino_untriggerable);
  w.u64("domino_batches", r.domino_batches);
  w.u64("domino_retry_drops", r.domino_retry_drops);
  w.u64("domino_anchor_rejections", r.domino_anchor_rejections);
  w.u64("domino_forced_trigger_losses", r.domino_forced_trigger_losses);
  w.u64("domino_controller_outage_skips", r.domino_controller_outage_skips);
  w.raw("recovery_slots",
        serialize_array(r.domino_recovery_latency_slots,
                        [](double s) { return json_double(s); }));
  w.raw("ap_health", serialize_array(r.ap_chain_health, serialize_ap_health));
  w.u64("fault_backbone_drops", r.fault_backbone_drops);
  w.u64("fault_backbone_dups", r.fault_backbone_dups);
  w.u64("fault_backbone_spikes", r.fault_backbone_spikes);
  w.u64("fault_interference_bursts", r.fault_interference_bursts);
  w.u64("fault_controller_outage_skips", r.fault_controller_outage_skips);
  w.u64("fault_forced_trigger_losses", r.fault_forced_trigger_losses);
  w.u64("fault_forced_false_positives", r.fault_forced_false_positives);
  return w.close();
}

ExperimentResult deserialize_result(const JsonValue& v) {
  ExperimentResult r;
  if (const JsonValue* links = v.find("links")) {
    for (const JsonValue& l : links->array) {
      r.links.push_back(deserialize_link(l));
    }
  }
  r.aggregate_throughput_bps = v.num_or("aggregate_throughput_bps", 0.0);
  r.jain_fairness = v.num_or("jain_fairness", 1.0);
  r.mean_delay_us = v.num_or("mean_delay_us", 0.0);
  r.ack_timeouts = v.u64_or("ack_timeouts", 0);
  r.mac_drops = v.u64_or("mac_drops", 0);
  r.census.hidden = v.u64_or("census_hidden", 0);
  r.census.exposed = v.u64_or("census_exposed", 0);
  r.census.total = v.u64_or("census_total", 0);
  r.domino_self_starts = v.u64_or("domino_self_starts", 0);
  r.domino_missed_rows = v.u64_or("domino_missed_rows", 0);
  r.domino_rows_executed = v.u64_or("domino_rows_executed", 0);
  r.domino_untriggerable = v.u64_or("domino_untriggerable", 0);
  r.domino_batches = v.u64_or("domino_batches", 0);
  r.domino_retry_drops = v.u64_or("domino_retry_drops", 0);
  r.domino_anchor_rejections = v.u64_or("domino_anchor_rejections", 0);
  r.domino_forced_trigger_losses =
      v.u64_or("domino_forced_trigger_losses", 0);
  r.domino_controller_outage_skips =
      v.u64_or("domino_controller_outage_skips", 0);
  if (const JsonValue* slots = v.find("recovery_slots")) {
    for (const JsonValue& s : slots->array) {
      r.domino_recovery_latency_slots.push_back(s.number);
    }
  }
  if (const JsonValue* hp = v.find("ap_health")) {
    for (const JsonValue& h : hp->array) {
      r.ap_chain_health.push_back(deserialize_ap_health(h));
    }
  }
  r.fault_backbone_drops = v.u64_or("fault_backbone_drops", 0);
  r.fault_backbone_dups = v.u64_or("fault_backbone_dups", 0);
  r.fault_backbone_spikes = v.u64_or("fault_backbone_spikes", 0);
  r.fault_interference_bursts = v.u64_or("fault_interference_bursts", 0);
  r.fault_controller_outage_skips =
      v.u64_or("fault_controller_outage_skips", 0);
  r.fault_forced_trigger_losses = v.u64_or("fault_forced_trigger_losses", 0);
  r.fault_forced_false_positives =
      v.u64_or("fault_forced_false_positives", 0);
  return r;
}

std::string serialize_outcome(const PointOutcome& o) {
  ObjWriter w;
  w.str("status", to_string(o.status));
  w.str("error_type", o.error_type);
  w.str("error_message", o.error_message);
  w.i64("sim_time_ns", o.sim_time_ns);
  w.u64("events_executed", o.events_executed);
  w.raw("result", serialize_result(o.result));
  return w.close();
}

PointOutcome deserialize_outcome(const JsonValue& v) {
  PointOutcome o;
  const std::string status = v.str_or("status", "skipped");
  if (status == "ok") {
    o.status = PointStatus::kOk;
  } else if (status == "error") {
    o.status = PointStatus::kError;
  } else if (status == "timed_out") {
    o.status = PointStatus::kTimedOut;
  } else {
    o.status = PointStatus::kSkipped;
  }
  o.error_type = v.str_or("error_type", "");
  o.error_message = v.str_or("error_message", "");
  o.sim_time_ns = v.i64_or("sim_time_ns", 0);
  o.events_executed = v.u64_or("events_executed", 0);
  if (const JsonValue* r = v.find("result")) {
    o.result = deserialize_result(*r);
  }
  return o;
}

std::string serialize_report(const SweepReport& report) {
  std::string out;
  for (const PointOutcome& o : report.outcomes) {
    out += serialize_outcome(o);
    out += '\n';
  }
  return out;
}

// ---- hashing ---------------------------------------------------------------

namespace {

/// FNV-1a 64 over a canonical byte stream. Every field is fed through a
/// typed method, so struct padding and in-memory layout never leak into the
/// hash.
class Hasher {
 public:
  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { bytes(&v, sizeof(v)); }
  void num(double v) {
    if (v == 0.0) v = 0.0;  // collapse -0.0 and +0.0
    bytes(&v, sizeof(v));
  }
  void boolean(bool v) { u64(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  void window(const fault::TimeWindow& w) {
    i64(w.start);
    i64(w.duration);
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;
};

void hash_topology(Hasher& h, const topo::Topology& t) {
  h.u64(t.num_nodes());
  for (const topo::Node& n : t.nodes()) {
    h.i64(n.id);
    h.boolean(n.is_ap);
    h.i64(n.ap);
    h.num(n.pos.x);
    h.num(n.pos.y);
  }
  const topo::PhyThresholds& th = t.thresholds();
  h.num(th.noise_floor_dbm);
  h.num(th.cs_threshold_dbm);
  h.num(th.sinr_data_db);
  h.num(th.sinr_control_db);
  h.num(th.min_rss_dbm);
  h.num(th.assoc_rss_dbm);
  const std::size_t n = t.num_nodes();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      h.num(t.rss(static_cast<topo::NodeId>(a),
                  static_cast<topo::NodeId>(b)));
    }
  }
}

void hash_config(Hasher& h, const ExperimentConfig& c) {
  h.str(c.effective_scheme_name());
  h.u64(static_cast<std::uint64_t>(c.traffic.kind));
  h.num(c.traffic.downlink_bps);
  h.num(c.traffic.uplink_bps);
  h.boolean(c.traffic.saturate_downlink);
  h.boolean(c.traffic.saturate_uplink);
  h.u64(c.traffic.packet_bytes);
  h.u64(c.traffic.custom.size());
  for (const FlowSpec& f : c.traffic.custom) {
    h.i64(f.src);
    h.i64(f.dst);
    h.num(f.rate_bps);
    h.boolean(f.saturate);
  }
  h.i64(c.duration);
  h.u64(c.seed);

  h.i64(c.wifi.slot_time);
  h.i64(c.wifi.sifs);
  h.i64(c.wifi.cw_min);
  h.i64(c.wifi.cw_max);
  h.i64(c.wifi.retry_limit);
  h.num(c.wifi.data_rate_bps);
  h.num(c.wifi.control_rate_bps);
  h.u64(c.wifi.mac_header_bytes);
  h.u64(c.wifi.ack_bytes);
  h.u64(c.wifi.queue_capacity);

  h.i64(c.backbone.mean_latency);
  h.i64(c.backbone.sigma_latency);
  h.i64(c.backbone.min_latency);

  h.u64(c.domino.batch_slots);
  h.u64(c.domino.batches_per_poll);
  h.u64(c.domino.payload_bytes);

  h.i64(c.converter.max_inbound);
  h.i64(c.converter.max_outbound);
  h.num(c.converter.trigger_rss_floor_dbm);
  h.boolean(c.converter.insert_fake_links);

  h.u64(c.centaur.quota);
  h.i64(c.centaur.fixed_backoff_slots);
  h.i64(c.centaur.idle_recheck);

  for (const double p : c.sig_model.p_by_count) h.num(p);
  h.num(c.sig_model.beyond_decay);
  h.num(c.sig_model.full_sinr_db);
  h.num(c.sig_model.zero_sinr_db);
  h.num(c.sig_model.false_positive_rate);

  h.u64(c.rop.fft_size);
  h.u64(c.rop.data_per_subchannel);
  h.u64(c.rop.guard_per_subchannel);
  h.u64(c.rop.num_subchannels);
  h.num(c.rop.bandwidth_hz);
  h.u64(c.rop.cp_samples);

  h.num(c.tcp.app_rate_bps);
  h.u64(c.tcp.mss_bytes);
  h.u64(c.tcp.ack_bytes);
  h.num(c.tcp.initial_cwnd);
  h.num(c.tcp.initial_ssthresh);
  h.num(c.tcp.max_cwnd);
  h.i64(c.tcp.min_rto);
  h.i64(c.tcp.max_rto);

  const fault::FaultPlan& f = c.faults;
  h.num(f.backbone.drop_rate);
  h.num(f.backbone.dup_rate);
  h.num(f.backbone.spike_rate);
  h.i64(f.backbone.spike_extra);
  h.u64(f.controller.outages.size());
  for (const fault::TimeWindow& w : f.controller.outages) h.window(w);
  h.num(f.interference.duty);
  h.i64(f.interference.period);
  h.num(f.interference.power_dbm);
  h.num(f.signature.false_negative_rate);
  h.num(f.signature.false_positive_rate);
  h.u64(f.signature.blackouts.size());
  for (const auto& b : f.signature.blackouts) {
    h.i64(b.node);
    h.window(b.window);
  }
  h.num(f.clock.max_skew_ppm);
  h.u64(f.ap_outages.size());
  for (const fault::ApOutage& o : f.ap_outages) {
    h.i64(o.ap);
    h.window(o.window);
  }

  h.boolean(c.record_timeline);

  // Whether the run is eligible for the partitioned kernel — the
  // partitioned family is a documented deviation from the classic kernel
  // (per-queue RNG lanes, per-partition mediums), so it hashes as a
  // distinct config. The thread count itself is deliberately excluded:
  // results are byte-stable across every thread count >= 1.
  h.boolean(resolve_sim_threads(c) > 0);
}

}  // namespace

std::uint64_t hash_point(const SweepPoint& p) {
  Hasher h;
  hash_topology(h, p.topology);
  hash_config(h, p.config);
  return h.value();
}

std::uint64_t hash_sweep(const std::vector<SweepPoint>& points) {
  Hasher h;
  h.u64(points.size());
  for (const SweepPoint& p : points) h.u64(hash_point(p));
  return h.value();
}

std::string runner_fingerprint() {
#if defined(__VERSION__)
  return std::string("dmn-sweep-v1 ") + __VERSION__;
#else
  return "dmn-sweep-v1 unknown-compiler";
#endif
}

// ---- checkpoint file -------------------------------------------------------

std::string serialize_manifest(const CheckpointManifest& m) {
  ObjWriter w;
  w.str("type", "manifest");
  w.str("sweep_hash", hex_u64(m.sweep_hash));
  w.u64("num_points", m.num_points);
  w.str("fingerprint", m.fingerprint);
  w.str("sweep_name", m.sweep_name);
  return w.close();
}

std::string serialize_record(const CheckpointRecord& r) {
  ObjWriter w;
  w.str("type", "point");
  w.u64("index", r.index);
  w.str("point_hash", hex_u64(r.point_hash));
  w.raw("outcome", serialize_outcome(r.outcome));
  return w.close();
}

LoadedCheckpoint load_checkpoint(const std::string& path,
                                 const CheckpointManifest& expected) {
  LoadedCheckpoint out;
  std::ifstream in(path);
  if (!in) return out;  // no checkpoint yet: fresh run

  std::string line;
  bool saw_manifest = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = parse_json(line);
    } catch (const std::exception&) {
      // A torn trailing line cannot happen with write-then-rename, but a
      // hand-edited or truncated file should still resume from its valid
      // prefix rather than abort the sweep.
      std::fprintf(stderr,
                   "sweep checkpoint %s: ignoring unreadable line\n",
                   path.c_str());
      break;
    }
    const std::string type = v.str_or("type", "");
    if (!saw_manifest) {
      if (type != "manifest") {
        std::fprintf(stderr,
                     "sweep checkpoint %s: missing manifest, starting "
                     "fresh\n",
                     path.c_str());
        return out;
      }
      saw_manifest = true;
      out.found = true;
      out.manifest.sweep_hash = parse_hex_u64(v.str_or("sweep_hash", "0"));
      out.manifest.num_points =
          static_cast<std::size_t>(v.u64_or("num_points", 0));
      out.manifest.fingerprint = v.str_or("fingerprint", "");
      out.manifest.sweep_name = v.str_or("sweep_name", "");
      if (out.manifest.sweep_hash != expected.sweep_hash ||
          out.manifest.num_points != expected.num_points ||
          out.manifest.fingerprint != expected.fingerprint) {
        std::fprintf(stderr,
                     "sweep checkpoint %s: manifest does not match this "
                     "sweep (different definition, point count or build); "
                     "recomputing all points\n",
                     path.c_str());
        return out;  // found, not compatible
      }
      out.compatible = true;
      continue;
    }
    if (type != "point") continue;
    CheckpointRecord rec;
    rec.index = static_cast<std::size_t>(v.u64_or("index", 0));
    rec.point_hash = parse_hex_u64(v.str_or("point_hash", "0"));
    if (const JsonValue* o = v.find("outcome")) {
      rec.outcome = deserialize_outcome(*o);
    }
    if (rec.index >= expected.num_points) continue;
    out.records[rec.index] = std::move(rec);
  }
  return out;
}

void atomic_write_file(const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("sweep checkpoint: cannot open " + tmp + ": " +
                             std::strerror(errno));
  }
  const std::size_t written =
      std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = written == contents.size() && std::fflush(f) == 0;
#ifndef _WIN32
  ok = ok && fsync(fileno(f)) == 0;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("sweep checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("sweep checkpoint: cannot rename " + tmp +
                             " to " + path + ": " + std::strerror(errno));
  }
}

}  // namespace dmn::api
