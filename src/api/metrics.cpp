#include "api/metrics.h"

#include <cmath>
#include <cstdio>

namespace dmn::api {

double coupled_misalignment_us(const TimelineRecorder& timeline,
                               const topo::Topology& topo,
                               std::uint64_t slot) {
  const auto& txs = timeline.transmissions();
  double worst = 0.0;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    if (txs[i].slot != slot) continue;
    for (std::size_t j = i + 1; j < txs.size(); ++j) {
      if (txs[j].slot != slot) continue;
      const auto& a = txs[i];
      const auto& b = txs[j];
      const bool coupled = topo.can_sense(a.sender, b.sender) ||
                           topo.can_sense(a.sender, b.receiver) ||
                           topo.can_sense(a.receiver, b.sender) ||
                           topo.can_sense(a.receiver, b.receiver);
      if (!coupled) continue;
      worst = std::max(worst, std::abs(to_usec(a.start - b.start)));
    }
  }
  return worst;
}

std::string summarize(const ExperimentResult& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "throughput %.2f Mbps | fairness %.3f | delay %.0f us | "
                "flows %zu | ack_to %llu",
                r.aggregate_throughput_bps / 1e6, r.jain_fairness,
                r.mean_delay_us, r.links.size(),
                static_cast<unsigned long long>(r.ack_timeouts));
  return buf;
}

}  // namespace dmn::api
