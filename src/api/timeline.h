#pragma once
// Timeline and misalignment recording for the Figure 10 (microscope) and
// Figure 11 (synchronization convergence) reproductions.

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "topo/node.h"
#include "util/time.h"

namespace dmn::api {

class TimelineRecorder {
 public:
  struct TxRecord {
    std::uint64_t slot = 0;
    topo::NodeId sender = topo::kNoNode;
    topo::NodeId receiver = topo::kNoNode;
    TimeNs start = 0;
    bool fake = false;
    bool uplink = false;
  };
  struct PollRecord {
    std::uint64_t slot = 0;
    topo::NodeId ap = topo::kNoNode;
    TimeNs at = 0;
  };

  void record_tx(std::uint64_t slot, topo::NodeId sender,
                 topo::NodeId receiver, TimeNs start, bool fake, bool uplink);
  void record_poll(std::uint64_t slot, topo::NodeId ap, TimeNs at);

  const std::vector<TxRecord>& transmissions() const { return tx_; }
  const std::vector<PollRecord>& polls() const { return polls_; }

  /// Max spread of data-phase start times within one slot (microseconds).
  /// Slots with fewer than two concurrent transmitters report 0.
  double misalignment_us(std::uint64_t slot) const;

  /// Misalignment for `count` consecutive slots starting at `first` — the
  /// Figure 11 series.
  std::vector<double> misalignment_series(std::uint64_t first,
                                          std::size_t count) const;

  /// First recorded slot index (after the bootstrap batch).
  std::uint64_t first_slot() const;
  std::uint64_t last_slot() const;

  /// Figure 10-style textual timeline for slots [from, to].
  void print(std::ostream& os, std::uint64_t from, std::uint64_t to) const;

 private:
  std::vector<TxRecord> tx_;
  std::vector<PollRecord> polls_;
  std::map<std::uint64_t, std::pair<TimeNs, TimeNs>> window_;  // min,max
};

}  // namespace dmn::api
