#pragma once
// The top-level experiment facade: give it a Topology, a scheme and a
// traffic spec, and it assembles the full stack (medium, MACs, controller,
// backbone, sources, sinks), runs the discrete-event simulation and returns
// the evaluation metrics. Every example and bench goes through this API.
//
//   api::ExperimentConfig cfg;
//   cfg.scheme = api::Scheme::kDomino;
//   cfg.traffic.downlink_bps = 10e6;
//   api::ExperimentResult r = api::Experiment(topology, cfg).run();

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>

#include "api/metrics.h"
#include "audit/audit.h"
#include "centaur/centaur.h"
#include "domino/controller.h"
#include "domino/domino_mac.h"
#include "fault/fault_plan.h"
#include "mac/mac_common.h"
#include "phy/signature_model.h"
#include "topo/topology.h"
#include "traffic/tcp_reno.h"
#include "wired/backbone.h"

namespace dmn::api {

enum class Scheme { kDcf, kCentaur, kDomino, kOmniscient };

const char* to_string(Scheme s);

enum class TrafficKind { kUdp, kTcp };

/// An explicitly chosen flow (Figure 2 / Table 2 style scenarios where only
/// some links carry traffic).
struct FlowSpec {
  topo::NodeId src = topo::kNoNode;
  topo::NodeId dst = topo::kNoNode;
  double rate_bps = 0.0;  // <= 0 with saturate=false disables
  bool saturate = true;
};

struct TrafficSpec {
  TrafficKind kind = TrafficKind::kUdp;
  /// Per-flow application rates; <= 0 disables that direction. Saturated
  /// workloads use `saturate_downlink` / `saturate_uplink` instead.
  double downlink_bps = 10e6;
  double uplink_bps = 0.0;
  bool saturate_downlink = false;
  bool saturate_uplink = false;
  std::size_t packet_bytes = 512;
  /// When non-empty, overrides the per-client defaults above.
  std::vector<FlowSpec> custom;
};

struct ExperimentConfig {
  Scheme scheme = Scheme::kDcf;
  /// When non-empty, selects the SchemeStack by registry name instead of
  /// `scheme` — the hook for plugged-in schemes and ablation variants that
  /// have no enum value (see api/scheme_stack.h).
  std::string scheme_name;
  TrafficSpec traffic;
  TimeNs duration = sec(50);
  std::uint64_t seed = 1;

  mac::WifiParams wifi;
  wired::BackboneParams backbone;
  domino::DominoParams domino;
  domino::ConverterParams converter;
  centaur::CentaurParams centaur;
  phy::SignatureDetectionModel sig_model;
  rop::RopParams rop;
  traffic::TcpParams tcp;

  /// Scripted impairments (fault/fault_plan.h). Default-constructed plan =
  /// strict no-op: the injector is not even instantiated, so results stay
  /// byte-identical to the fault-free path.
  fault::FaultPlan faults;

  /// Online invariant auditing (src/audit). Defaults to AuditMode::kInherit,
  /// which reads the DMN_AUDIT environment variable (off when unset). The
  /// auditor is strictly passive, so audit-on results are byte-identical to
  /// audit-off results; this field is deliberately excluded from
  /// hash_config (sweep_io) for the same reason.
  audit::AuditConfig audit;

  bool record_timeline = false;

  /// Partitioned simulation kernel (src/sim, src/topo/partition.h).
  ///   0   consult the DMN_SIM_THREADS environment variable; unset / 0 /
  ///       unparsable keeps the classic single-queue kernel;
  ///   >=1 partition the run into interference components and execute them
  ///       on up to this many worker threads. Results are byte-stable
  ///       across every value >= 1 (the merge order of cross-partition
  ///       events is deterministic), but the partitioned family is a
  ///       documented, deliberate deviation from the single-queue kernel
  ///       (per-queue RNG lanes, per-partition mediums), so hash_config
  ///       folds in *whether* partitioning is on — never the thread count;
  ///   <0  force the classic kernel regardless of the environment.
  /// Stacks that can't run partitioned (SchemeStack::supports_partitioning()
  /// == false), timeline recording, and single-component topologies all fall
  /// back to the classic kernel automatically.
  int sim_threads = 0;

  /// The registry key this config resolves to: `scheme_name` when set,
  /// otherwise the enum's canonical name.
  std::string effective_scheme_name() const {
    return scheme_name.empty() ? to_string(scheme) : scheme_name;
  }
};

/// Thrown out of Experiment::run() when an armed run guard (see
/// Experiment::set_run_guard) stopped the simulation before the configured
/// duration — the cooperative cancellation path the sweep watchdogs use.
/// Carries the last-known progress at the safe event boundary where the
/// simulation was terminated.
class ExperimentInterrupted : public std::runtime_error {
 public:
  ExperimentInterrupted(TimeNs sim_time, std::uint64_t events);

  TimeNs sim_time_ns = 0;
  std::uint64_t events_executed = 0;
};

class Experiment {
 public:
  Experiment(const topo::Topology& topology, ExperimentConfig config);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Arms cooperative cancellation for the upcoming run(): the simulator
  /// polls `cancel` (may be set from another thread; never written here)
  /// between events, and `max_events` caps the executed event count
  /// (0 = unlimited). When either fires, run() throws
  /// ExperimentInterrupted instead of returning metrics. Call before run().
  void set_run_guard(const std::atomic<bool>* cancel,
                     std::uint64_t max_events);

  ExperimentResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience wrapper.
ExperimentResult run_experiment(const topo::Topology& topology,
                                const ExperimentConfig& config);

/// The worker-thread count `cfg.sim_threads` resolves to: an explicit
/// positive value wins, a negative value forces 0 (classic kernel), and 0
/// defers to DMN_SIM_THREADS. 0 means "do not partition".
unsigned resolve_sim_threads(const ExperimentConfig& cfg);

}  // namespace dmn::api
