#include "api/stacks/centaur_stack.h"

#include <map>

#include "api/experiment.h"
#include "api/metrics.h"
#include "fault/fault_injector.h"
#include "sim/simulator.h"

namespace dmn::api {

void CentaurStack::build(StackContext& ctx,
                         std::vector<mac::MacEntity*>& macs) {
  dcf_.build(ctx, macs);
  const auto dl = ctx.topo.make_links(/*downlink=*/true, /*uplink=*/false);
  downlink_graph_ = std::make_unique<topo::ConflictGraph>(
      topo::ConflictGraph::build(ctx.topo, dl));
  backbone_ = std::make_unique<wired::Backbone>(ctx.sim, ctx.cfg.backbone,
                                                ctx.rng.fork());
  if (ctx.faults != nullptr) {
    backbone_->set_fault_hook(
        [f = ctx.faults] { return f->backbone_delivery(); });
  }
  std::map<topo::NodeId, mac::DcfNode*> ap_macs;
  for (const auto& n : dcf_.nodes()) {
    if (ctx.topo.node(n->node()).is_ap) ap_macs[n->node()] = n.get();
  }
  controller_ = std::make_unique<centaur::CentaurController>(
      ctx.sim, *backbone_, *downlink_graph_, ctx.cfg.centaur,
      std::move(ap_macs));
  // Controller logic (batch planning, epoch barrier) lives on the wired
  // queue; releases and completion reports route through the backbone.
  sim::Simulator::Scope scope(ctx.sim, ctx.sim.wired_queue_index());
  controller_->start(usec(100));
}

void CentaurStack::collect(ExperimentResult& result) const {
  dcf_.collect(result);
}

}  // namespace dmn::api
