#pragma once
// Omniscient TDMA upper bound: a central scheduler with perfect knowledge
// drives one slave MAC per node over the full conflict graph.

#include <memory>
#include <vector>

#include "api/scheme_stack.h"
#include "omni/omniscient.h"

namespace dmn::api {

inline constexpr const char* kOmniscientStackName = "Omniscient";

class OmniscientStack : public SchemeStack {
 public:
  void build(StackContext& ctx, std::vector<mac::MacEntity*>& macs) override;
  void collect(ExperimentResult& result) const override;

  /// The oracle scheduler drives every node synchronously from one global
  /// TDMA clock — inherently cross-partition — so it always runs on the
  /// single-queue kernel.
  bool supports_partitioning() const override { return false; }

 private:
  std::vector<std::unique_ptr<omni::OmniNodeMac>> nodes_;
  std::unique_ptr<omni::OmniscientScheduler> scheduler_;
};

}  // namespace dmn::api
