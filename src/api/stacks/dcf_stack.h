#pragma once
// 802.11 DCF: one contention-based DcfNode per node, no controller.

#include <memory>
#include <vector>

#include "api/scheme_stack.h"
#include "mac/dcf.h"

namespace dmn::api {

inline constexpr const char* kDcfStackName = "DCF";

class DcfStack : public SchemeStack {
 public:
  void build(StackContext& ctx, std::vector<mac::MacEntity*>& macs) override;
  void collect(ExperimentResult& result) const override;

  /// CENTAUR composes on top of the DCF substrate and needs the concrete
  /// nodes to hand its controller the AP-side queues.
  const std::vector<std::unique_ptr<mac::DcfNode>>& nodes() const {
    return nodes_;
  }

 private:
  std::vector<std::unique_ptr<mac::DcfNode>> nodes_;
};

}  // namespace dmn::api
