#pragma once
// CENTAUR: DCF at every node plus a wired controller that schedules the
// downlink conflict graph epoch by epoch.

#include <memory>
#include <vector>

#include "api/scheme_stack.h"
#include "api/stacks/dcf_stack.h"
#include "centaur/centaur.h"
#include "topo/conflict_graph.h"
#include "wired/backbone.h"

namespace dmn::api {

inline constexpr const char* kCentaurStackName = "CENTAUR";

class CentaurStack : public SchemeStack {
 public:
  void build(StackContext& ctx, std::vector<mac::MacEntity*>& macs) override;
  void collect(ExperimentResult& result) const override;

 private:
  DcfStack dcf_;
  std::unique_ptr<topo::ConflictGraph> downlink_graph_;
  std::unique_ptr<wired::Backbone> backbone_;
  std::unique_ptr<centaur::CentaurController> controller_;
};

}  // namespace dmn::api
