#pragma once
// DOMINO: relative-schedule APs and clients, the wired controller with the
// schedule converter, per-node Gold signatures, and the ROP polling plane.

#include <memory>
#include <vector>

#include "api/scheme_stack.h"
#include "domino/controller.h"
#include "domino/domino_mac.h"
#include "domino/signature_plan.h"
#include "wired/backbone.h"

namespace dmn::api {

inline constexpr const char* kDominoStackName = "DOMINO";

class DominoStack : public SchemeStack {
 public:
  void build(StackContext& ctx, std::vector<mac::MacEntity*>& macs) override;
  void collect(ExperimentResult& result) const override;

 private:
  std::unique_ptr<domino::SignaturePlan> signatures_;
  std::unique_ptr<wired::Backbone> backbone_;
  std::unique_ptr<domino::DominoController> controller_;
  std::vector<std::unique_ptr<domino::DominoApMac>> aps_;
  std::vector<std::unique_ptr<domino::DominoClientMac>> clients_;
};

}  // namespace dmn::api
