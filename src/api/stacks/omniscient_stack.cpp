#include "api/stacks/omniscient_stack.h"

#include "api/experiment.h"
#include "api/metrics.h"

namespace dmn::api {

void OmniscientStack::build(StackContext& ctx,
                            std::vector<mac::MacEntity*>& macs) {
  std::vector<omni::OmniNodeMac*> raw(ctx.topo.num_nodes(), nullptr);
  for (const topo::Node& n : ctx.topo.nodes()) {
    auto node = std::make_unique<omni::OmniNodeMac>(
        ctx.sim, ctx.medium, n.id, ctx.cfg.wifi, ctx.deliver);
    macs[static_cast<std::size_t>(n.id)] = node.get();
    raw[static_cast<std::size_t>(n.id)] = node.get();
    nodes_.push_back(std::move(node));
  }
  scheduler_ = std::make_unique<omni::OmniscientScheduler>(
      ctx.sim, ctx.medium, ctx.graph, ctx.cfg.wifi, std::move(raw));
  scheduler_->start(usec(100));
}

void OmniscientStack::collect(ExperimentResult& result) const {
  (void)result;  // the genie-aided scheme has no failure counters
}

}  // namespace dmn::api
