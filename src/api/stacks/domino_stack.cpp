#include "api/stacks/domino_stack.h"

#include <map>
#include <stdexcept>
#include <string>

#include "api/experiment.h"
#include "api/metrics.h"
#include "audit/audit.h"
#include "fault/fault_injector.h"
#include "rop/rop_protocol.h"
#include "sim/simulator.h"

namespace dmn::api {

void DominoStack::build(StackContext& ctx,
                        std::vector<mac::MacEntity*>& macs) {
  const topo::Topology& topo = ctx.topo;
  const ExperimentConfig& cfg = ctx.cfg;

  signatures_ = std::make_unique<domino::SignaturePlan>(topo.num_nodes());
  backbone_ = std::make_unique<wired::Backbone>(ctx.sim, cfg.backbone,
                                                ctx.rng.fork());
  if (ctx.faults != nullptr) {
    backbone_->set_fault_hook(
        [f = ctx.faults] { return f->backbone_delivery(); });
  }

  domino::DominoTiming timing;
  timing.wifi = cfg.wifi;
  timing.payload_bytes = cfg.traffic.packet_bytes;

  domino::DominoParams domino_params = cfg.domino;
  domino_params.payload_bytes = cfg.traffic.packet_bytes;
  controller_ = std::make_unique<domino::DominoController>(
      ctx.sim, *backbone_, topo, ctx.graph, *signatures_, domino_params,
      cfg.converter, timing.slot_duration(), timing.rop_duration());
  if (ctx.faults != nullptr) controller_->set_fault_injector(ctx.faults);
  if (ctx.audit != nullptr) controller_->set_schedule_observer(ctx.audit);
  const audit::Mutation mutation = cfg.audit.mutation;
  if (mutation == audit::Mutation::kConverterExtraTrigger) {
    controller_->converter().set_test_defect(
        domino::ScheduleConverter::TestDefect::kExtraTrigger);
  } else if (mutation == audit::Mutation::kConverterConflictingEntry) {
    controller_->converter().set_test_defect(
        domino::ScheduleConverter::TestDefect::kConflictingEntry);
  }

  // APs with subchannel allocation for their clients.
  rop::SubchannelAllocator alloc(cfg.rop);
  std::map<topo::NodeId, domino::DominoApMac*> ap_map;
  std::map<topo::NodeId, std::size_t> subchannel_of;
  for (topo::NodeId ap : topo.aps()) {
    const std::vector<topo::NodeId> clients = topo.clients_of(ap);
    // The AP executes every ROP poll in a single symbol, so each of its
    // clients needs a dedicated subchannel. The allocator would wrap into a
    // second round, but the MAC has no round scheduling — two clients on the
    // same subchannel would answer the same poll and collide silently.
    if (clients.size() > cfg.rop.num_subchannels) {
      throw std::invalid_argument(
          "DOMINO: AP " + std::to_string(ap) + " serves " +
          std::to_string(clients.size()) +
          " clients but ROP polls at most " +
          std::to_string(cfg.rop.num_subchannels) +
          " subchannels per symbol; split the BSS or raise "
          "rop.num_subchannels");
    }
    std::vector<double> rss;
    rss.reserve(clients.size());
    for (topo::NodeId c : clients) rss.push_back(topo.rss(ap, c));
    const auto assigns = alloc.assign(clients, rss);

    // Reports ride the backbone to the controller's (wired) queue.
    auto report_fn = [this](const domino::ApReport& rep) {
      backbone_->send_to_wired([this, rep] { controller_->on_ap_report(rep); });
    };
    // Build on the AP's partition queue so outage events and any
    // construction-time self-scheduling land with the AP.
    sim::Simulator::Scope scope(
        ctx.sim, ctx.sim.queue_of_node(static_cast<std::size_t>(ap)));
    auto node = std::make_unique<domino::DominoApMac>(
        ctx.sim, ctx.medium_of(ap), ap, timing, *signatures_, cfg.sig_model,
        cfg.rop, ctx.rng.fork(), ctx.deliver, report_fn, ctx.trace);
    std::vector<domino::DominoApMac::ClientInfo> infos;
    for (const auto& a : assigns) {
      infos.push_back(domino::DominoApMac::ClientInfo{
          a.client, a.subchannel, topo.rss(ap, a.client)});
      subchannel_of[a.client] = a.subchannel;
    }
    node->set_clients(std::move(infos));
    if (ctx.faults != nullptr) {
      node->set_faults(ctx.faults);
      node->set_clock_skew_ppm(ctx.faults->clock_skew_ppm(ap));
      // Scripted power outages: one down/up event pair per window.
      for (const fault::ApOutage& o : ctx.faults->plan().ap_outages) {
        if (o.ap != ap || o.window.duration <= 0) continue;
        domino::DominoApMac* raw = node.get();
        ctx.sim.post_at(o.window.start,
                            [raw] { raw->set_powered(false); });
        ctx.sim.post_at(o.window.end(),
                            [raw] { raw->set_powered(true); });
      }
    }
    macs[static_cast<std::size_t>(ap)] = node.get();
    ap_map[ap] = node.get();
    aps_.push_back(std::move(node));
  }
  for (topo::NodeId c : topo.all_clients()) {
    // A client its AP never assigned a subchannel would silently collide on
    // subchannel 0; fail loudly instead so topology bugs surface.
    const auto sc = subchannel_of.find(c);
    if (sc == subchannel_of.end()) {
      throw std::runtime_error(
          "DOMINO: client " + std::to_string(c) + " (AP " +
          std::to_string(topo.node(c).ap) +
          ") received no ROP subchannel assignment");
    }
    sim::Simulator::Scope scope(
        ctx.sim, ctx.sim.queue_of_node(static_cast<std::size_t>(c)));
    auto node = std::make_unique<domino::DominoClientMac>(
        ctx.sim, ctx.medium_of(c), c, topo.node(c).ap, sc->second, timing,
        *signatures_, cfg.sig_model, ctx.rng.fork(), ctx.deliver, ctx.trace);
    if (ctx.faults != nullptr) {
      node->set_faults(ctx.faults);
      node->set_clock_skew_ppm(ctx.faults->clock_skew_ppm(c));
    }
    if (mutation == audit::Mutation::kMacTriggerWithoutSignature) {
      node->set_test_trigger_on_any_burst(true);
    } else if (mutation == audit::Mutation::kMacDoubleDelivery) {
      node->set_test_double_delivery(true);
    } else if (mutation == audit::Mutation::kRopReportOffset) {
      node->set_test_rop_report_offset(true);
    }
    macs[static_cast<std::size_t>(c)] = node.get();
    clients_.push_back(std::move(node));
  }

  controller_->set_dispatch([ap_map](const domino::ApSchedule& plan) {
    const auto it = ap_map.find(plan.ap);
    if (it != ap_map.end()) it->second->receive_plan(plan);
  });
  controller_->set_downlink_peek([ap_map](const topo::Link& l) {
    const auto it = ap_map.find(l.sender);
    return it == ap_map.end() ? std::size_t{0}
                              : it->second->queued_for(l.receiver);
  });
  // The controller lives on the wired queue; under the partitioned kernel
  // it runs at window barriers, where its synchronous downlink peeks of AP
  // MAC queues are race-free (at most one lookahead stale).
  sim::Simulator::Scope scope(ctx.sim, ctx.sim.wired_queue_index());
  controller_->start(usec(100));
}

void DominoStack::collect(ExperimentResult& result) const {
  for (const auto& n : aps_) {
    result.ack_timeouts += n->ack_timeouts();
    result.domino_self_starts += n->self_starts();
    result.domino_missed_rows += n->missed_rows();
    result.domino_rows_executed += n->rows_executed();
    result.domino_retry_drops += n->retry_drops();
    result.domino_anchor_rejections += n->anchor_rejections();
    result.domino_forced_trigger_losses += n->forced_trigger_losses();
    const auto& lat = n->recovery_latency_slots();
    result.domino_recovery_latency_slots.insert(
        result.domino_recovery_latency_slots.end(), lat.begin(), lat.end());
    ApChainHealth h;
    h.ap = n->node();
    h.self_starts = n->self_starts();
    h.missed_rows = n->missed_rows();
    h.ack_timeouts = n->ack_timeouts();
    h.retry_drops = n->retry_drops();
    h.anchor_rejections = n->anchor_rejections();
    h.forced_trigger_losses = n->forced_trigger_losses();
    h.recovery_samples = lat.size();
    result.ap_chain_health.push_back(h);
  }
  for (const auto& n : clients_) {
    result.ack_timeouts += n->ack_timeouts();
    result.domino_anchor_rejections += n->anchor_rejections();
    result.domino_forced_trigger_losses += n->forced_trigger_losses();
    const auto& lat = n->recovery_latency_slots();
    result.domino_recovery_latency_slots.insert(
        result.domino_recovery_latency_slots.end(), lat.begin(), lat.end());
  }
  if (controller_) {
    result.domino_untriggerable =
        controller_->converter().untriggerable_drops();
    result.domino_batches = controller_->batches_planned();
    result.domino_controller_outage_skips = controller_->outage_skips();
  }
}

}  // namespace dmn::api
