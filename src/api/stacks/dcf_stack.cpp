#include "api/stacks/dcf_stack.h"

#include "api/experiment.h"
#include "api/metrics.h"

namespace dmn::api {

void DcfStack::build(StackContext& ctx, std::vector<mac::MacEntity*>& macs) {
  for (const topo::Node& n : ctx.topo.nodes()) {
    auto node = std::make_unique<mac::DcfNode>(ctx.sim, ctx.medium, n.id,
                                               ctx.cfg.wifi, ctx.rng.fork(),
                                               ctx.deliver);
    macs[static_cast<std::size_t>(n.id)] = node.get();
    nodes_.push_back(std::move(node));
  }
}

void DcfStack::collect(ExperimentResult& result) const {
  for (const auto& n : nodes_) {
    result.ack_timeouts += n->ack_timeouts();
    result.mac_drops += n->drops();
  }
}

}  // namespace dmn::api
