#include "api/stacks/dcf_stack.h"

#include "api/experiment.h"
#include "api/metrics.h"
#include "sim/simulator.h"

namespace dmn::api {

void DcfStack::build(StackContext& ctx, std::vector<mac::MacEntity*>& macs) {
  for (const topo::Node& n : ctx.topo.nodes()) {
    // Build on the node's partition queue so any construction-time
    // self-scheduling lands with the node, and attach to its medium.
    sim::Simulator::Scope scope(ctx.sim, ctx.sim.queue_of_node(
                                             static_cast<std::size_t>(n.id)));
    auto node = std::make_unique<mac::DcfNode>(ctx.sim, ctx.medium_of(n.id),
                                               n.id, ctx.cfg.wifi,
                                               ctx.rng.fork(), ctx.deliver);
    macs[static_cast<std::size_t>(n.id)] = node.get();
    nodes_.push_back(std::move(node));
  }
}

void DcfStack::collect(ExperimentResult& result) const {
  for (const auto& n : nodes_) {
    result.ack_timeouts += n->ack_timeouts();
    result.mac_drops += n->drops();
  }
}

}  // namespace dmn::api
