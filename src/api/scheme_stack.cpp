#include "api/scheme_stack.h"

#include <mutex>
#include <stdexcept>

#include "api/stacks/centaur_stack.h"
#include "api/stacks/dcf_stack.h"
#include "api/stacks/domino_stack.h"
#include "api/stacks/omniscient_stack.h"

namespace dmn::api {

namespace {

// Guards the registry map: SweepRunner workers create stacks concurrently.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

// Built-in registration is explicit rather than via static initializers in
// the stack translation units: the library is a static archive, and the
// linker is free to drop a TU whose only purpose is a self-registering
// global.
void register_builtins(SchemeStackRegistry& reg) {
  reg.add(kDcfStackName, [] { return std::make_unique<DcfStack>(); });
  reg.add(kCentaurStackName, [] { return std::make_unique<CentaurStack>(); });
  reg.add(kOmniscientStackName,
          [] { return std::make_unique<OmniscientStack>(); });
  reg.add(kDominoStackName, [] { return std::make_unique<DominoStack>(); });
}

}  // namespace

SchemeStackRegistry& SchemeStackRegistry::instance() {
  static SchemeStackRegistry* reg = [] {
    auto* r = new SchemeStackRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

void SchemeStackRegistry::add(const std::string& name,
                              SchemeStackFactory factory) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  factories_[name] = std::move(factory);
}

bool SchemeStackRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  return factories_.count(name) > 0;
}

std::unique_ptr<SchemeStack> SchemeStackRegistry::create(
    const std::string& name) const {
  SchemeStackFactory factory;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [n, f] : factories_) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::out_of_range("unknown scheme stack '" + name +
                              "' (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory();
}

std::vector<std::string> SchemeStackRegistry::names() const {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace dmn::api
