#pragma once
// The scheme-plugin seam of the experiment layer.
//
// A SchemeStack owns everything specific to one channel-access scheme: the
// per-node MAC entities, controllers, backbones and signature plans. The
// Experiment facade owns the shared substrate (simulator, medium, topology,
// conflict graph, traffic sources, flow stats) and hands it to the stack
// through a StackContext. Stacks register themselves by name in the
// SchemeStackRegistry, so adding a scheme (or an ablation variant of an
// existing one) means adding one file under src/api/stacks/ and one
// registration call — the facade, benches and tests need no changes.
//
//   class MyStack : public SchemeStack { ... };
//   SchemeStackRegistry::instance().add("MY-SCHEME", [] {
//     return std::make_unique<MyStack>();
//   });
//   cfg.scheme_name = "MY-SCHEME";  // overrides cfg.scheme when non-empty

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mac/mac_common.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace dmn::sim {
class Simulator;
}
namespace dmn::phy {
class Medium;
}
namespace dmn::domino {
struct DominoTrace;
}
namespace dmn::fault {
class FaultInjector;
}
namespace dmn::audit {
class SimAuditor;
}

namespace dmn::api {

struct ExperimentConfig;
struct ExperimentResult;

/// Everything a stack may depend on, owned by the Experiment facade. Stacks
/// must not reach past this struct: no globals, no facade internals. The
/// `rng` is the experiment's root generator — fork() per stochastic
/// component so schemes draw from independent streams.
struct StackContext {
  sim::Simulator& sim;
  phy::Medium& medium;
  /// Medium carrying `node`'s airtime. Equal to `medium` for every node in
  /// a single-kernel run; under the partitioned kernel each interference
  /// partition has its own Medium and MAC entities must attach to (and
  /// transmit on) their node's. Always non-null.
  std::function<phy::Medium&(topo::NodeId)> medium_of;
  const topo::Topology& topo;
  const ExperimentConfig& cfg;
  /// Conflict graph over the directions the traffic spec exercises.
  const topo::ConflictGraph& graph;
  Rng& rng;
  /// Invoked when a data packet is decoded at its MAC destination.
  mac::DeliveryFn deliver;
  /// Non-null when the config asked for timeline recording; stacks that
  /// support tracing should wire their tx/poll events into it.
  domino::DominoTrace* trace = nullptr;
  /// Non-null only when cfg.faults has an active knob: the per-experiment
  /// fault injector. Stacks route their backbone, controller and MAC fault
  /// hooks through it so every scheme runs under the same impairments.
  fault::FaultInjector* faults = nullptr;
  /// Non-null when invariant auditing is enabled (cfg.audit / DMN_AUDIT):
  /// stacks with auditable seams (DOMINO's schedule observer) attach it and
  /// apply cfg.audit.mutation test defects to their components.
  audit::SimAuditor* audit = nullptr;
};

/// One channel-access scheme's assembly and bookkeeping. Lifetime: built
/// once per experiment, outlives the simulation run, queried for
/// scheme-specific metrics afterwards.
class SchemeStack {
 public:
  virtual ~SchemeStack() = default;

  /// Instantiate the scheme's MAC entities and controllers. `macs` arrives
  /// sized to the node count, all null; the stack must install one entity
  /// per node (indexed by NodeId).
  virtual void build(StackContext& ctx,
                     std::vector<mac::MacEntity*>& macs) = 0;

  /// Accumulate scheme-specific counters (ACK timeouts, drops, DOMINO
  /// diagnostics, ...) into the result after the simulation ran.
  virtual void collect(ExperimentResult& result) const = 0;

  /// Whether this stack is safe to run on the partitioned kernel (per-node
  /// state confined to its node's partition, controller state to the wired
  /// queue, all cross-partition traffic via the backbone). Stacks with
  /// global synchronous coupling (the omniscient oracle) return false and
  /// always run on the single-queue kernel.
  virtual bool supports_partitioning() const { return true; }
};

using SchemeStackFactory = std::function<std::unique_ptr<SchemeStack>()>;

/// Name -> factory registry. The four built-in schemes self-register on
/// first access; callers may add further schemes at any time (ablation
/// variants, experimental stacks) and select them via
/// ExperimentConfig::scheme_name.
class SchemeStackRegistry {
 public:
  static SchemeStackRegistry& instance();

  /// Registers (or replaces) a factory under `name`.
  void add(const std::string& name, SchemeStackFactory factory);

  bool contains(const std::string& name) const;

  /// Throws std::out_of_range naming the scheme and the known schemes when
  /// `name` is not registered.
  std::unique_ptr<SchemeStack> create(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, SchemeStackFactory> factories_;
};

}  // namespace dmn::api
