#pragma once
// Result structures shared by examples, tests and benches.

#include <memory>
#include <string>
#include <vector>

#include "api/timeline.h"
#include "topo/conflict_graph.h"
#include "traffic/packet.h"

namespace dmn::audit {
struct AuditReport;
}

namespace dmn::api {

struct LinkResult {
  traffic::Flow flow;
  bool uplink = false;
  double throughput_bps = 0.0;
  double mean_delay_us = 0.0;
  std::uint64_t delivered = 0;
};

/// Per-AP chain-health snapshot: the recovery counters that were previously
/// buried in DominoApMac, promoted so benches and tests can see *which* AP
/// is struggling, not just network totals.
struct ApChainHealth {
  topo::NodeId ap = topo::kNoNode;
  std::uint64_t self_starts = 0;
  std::uint64_t missed_rows = 0;
  std::uint64_t ack_timeouts = 0;
  std::uint64_t retry_drops = 0;
  std::uint64_t anchor_rejections = 0;
  std::uint64_t forced_trigger_losses = 0;
  std::size_t recovery_samples = 0;
};

struct ExperimentResult {
  std::vector<LinkResult> links;
  double aggregate_throughput_bps = 0.0;
  double jain_fairness = 1.0;
  double mean_delay_us = 0.0;

  std::uint64_t ack_timeouts = 0;
  std::uint64_t mac_drops = 0;
  topo::PairCensus census;

  /// DOMINO-only diagnostics.
  std::uint64_t domino_self_starts = 0;
  std::uint64_t domino_missed_rows = 0;
  std::uint64_t domino_rows_executed = 0;
  std::uint64_t domino_untriggerable = 0;
  std::uint64_t domino_batches = 0;
  std::uint64_t domino_retry_drops = 0;
  std::uint64_t domino_anchor_rejections = 0;
  std::uint64_t domino_forced_trigger_losses = 0;
  std::uint64_t domino_controller_outage_skips = 0;
  /// Recovery latency samples across all DOMINO nodes: slots elapsed
  /// between a fault-forced trigger loss and the next chain activity at the
  /// losing node (trigger detection, row execution, or recovery kick).
  std::vector<double> domino_recovery_latency_slots;
  std::vector<ApChainHealth> ap_chain_health;

  /// Ground-truth totals of what the fault injector actually injected
  /// (all zero when the experiment ran without faults).
  std::uint64_t fault_backbone_drops = 0;
  std::uint64_t fault_backbone_dups = 0;
  std::uint64_t fault_backbone_spikes = 0;
  std::uint64_t fault_interference_bursts = 0;
  std::uint64_t fault_controller_outage_skips = 0;
  std::uint64_t fault_forced_trigger_losses = 0;
  std::uint64_t fault_forced_false_positives = 0;

  /// Simulation-kernel diagnostics: total events executed and how many
  /// interference partitions the run used (1 = classic single-queue
  /// kernel). Like `timeline`/`audit`, deliberately NOT serialized by
  /// serialize_result — results must stay byte-stable across thread counts.
  std::uint64_t events_executed = 0;
  std::uint32_t sim_partitions = 1;
  /// Wall-clock split of run(): substrate assembly (conflict graph, stacks,
  /// traffic) vs the event loop itself — the denominator for kernel
  /// events/sec comparisons (bench/bench_scale.cpp).
  double wall_setup_seconds = 0.0;
  double wall_run_seconds = 0.0;
  /// Partitioned-kernel telemetry (all zero on the classic kernel). Like
  /// `events_executed`, deliberately NOT serialized — these describe how
  /// the run was scheduled, not what it computed, and must never leak into
  /// the byte-stability comparison. Surfaced by bench_scale under
  /// DMN_SIM_STATS=1.
  std::uint64_t sim_windows = 0;            ///< synchronization windows
  std::uint64_t sim_ff_jumps = 0;           ///< windows that skipped idle time
  std::uint64_t sim_elongated_windows = 0;  ///< windows with an extended bound
  std::uint32_t sim_activated_p50 = 0;      ///< median partitions active/window
  std::uint32_t sim_activated_max = 0;      ///< max partitions active in a window
  std::uint64_t sim_spin_wakes = 0;         ///< worker wakeups served by spinning
  std::uint64_t sim_sleep_wakes = 0;        ///< worker wakeups via condition var
  double sim_barrier_seconds = 0.0;         ///< coordinator publish+wait time

  /// Present when the config asked for timeline recording (DOMINO only).
  std::shared_ptr<TimelineRecorder> timeline;

  /// Present when invariant auditing was enabled (cfg.audit / DMN_AUDIT).
  /// Like `timeline`, deliberately NOT serialized by serialize_result —
  /// audit-on results must stay byte-identical to audit-off results.
  std::shared_ptr<const audit::AuditReport> audit;

  double throughput_mbps() const { return aggregate_throughput_bps / 1e6; }
  double mean_recovery_latency_slots() const {
    if (domino_recovery_latency_slots.empty()) return 0.0;
    double acc = 0.0;
    for (double s : domino_recovery_latency_slots) acc += s;
    return acc / static_cast<double>(domino_recovery_latency_slots.size());
  }
};

/// Pretty one-line summary for benches and examples.
std::string summarize(const ExperimentResult& r);

/// Misalignment restricted to transmitters that share a collision domain
/// (any endpoint pair within carrier-sense range): offsets between chains
/// that cannot even hear each other are physically harmless and would
/// otherwise dominate the Figure 11 metric on multi-building topologies.
double coupled_misalignment_us(const TimelineRecorder& timeline,
                               const topo::Topology& topo,
                               std::uint64_t slot);

}  // namespace dmn::api
