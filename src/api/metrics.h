#pragma once
// Result structures shared by examples, tests and benches.

#include <memory>
#include <string>
#include <vector>

#include "api/timeline.h"
#include "topo/conflict_graph.h"
#include "traffic/packet.h"

namespace dmn::api {

struct LinkResult {
  traffic::Flow flow;
  bool uplink = false;
  double throughput_bps = 0.0;
  double mean_delay_us = 0.0;
  std::uint64_t delivered = 0;
};

struct ExperimentResult {
  std::vector<LinkResult> links;
  double aggregate_throughput_bps = 0.0;
  double jain_fairness = 1.0;
  double mean_delay_us = 0.0;

  std::uint64_t ack_timeouts = 0;
  std::uint64_t mac_drops = 0;
  topo::PairCensus census;

  /// DOMINO-only diagnostics.
  std::uint64_t domino_self_starts = 0;
  std::uint64_t domino_missed_rows = 0;
  std::uint64_t domino_rows_executed = 0;
  std::uint64_t domino_untriggerable = 0;
  std::uint64_t domino_batches = 0;

  /// Present when the config asked for timeline recording (DOMINO only).
  std::shared_ptr<TimelineRecorder> timeline;

  double throughput_mbps() const { return aggregate_throughput_bps / 1e6; }
};

/// Pretty one-line summary for benches and examples.
std::string summarize(const ExperimentResult& r);

/// Misalignment restricted to transmitters that share a collision domain
/// (any endpoint pair within carrier-sense range): offsets between chains
/// that cannot even hear each other are physically harmless and would
/// otherwise dominate the Figure 11 metric on multi-building topologies.
double coupled_misalignment_us(const TimelineRecorder& timeline,
                               const topo::Topology& topo,
                               std::uint64_t slot);

}  // namespace dmn::api
