#include "api/experiment.h"

#include <algorithm>
#include <map>

#include "domino/rand_scheduler.h"
#include "mac/dcf.h"
#include "omni/omniscient.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/conflict_graph.h"
#include "traffic/flow_stats.h"
#include "traffic/udp_source.h"

namespace dmn::api {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kDcf: return "DCF";
    case Scheme::kCentaur: return "CENTAUR";
    case Scheme::kDomino: return "DOMINO";
    case Scheme::kOmniscient: return "Omniscient";
  }
  return "?";
}

struct Experiment::Impl {
  topo::Topology topo;
  ExperimentConfig cfg;
  Rng root;

  sim::Simulator sim;
  phy::Medium medium;

  traffic::PacketIdGen ids;
  traffic::FlowStats stats;

  struct FlowCtx {
    traffic::Flow flow;
    bool uplink = false;
    double rate_bps = 0.0;
    bool saturate = false;
  };
  std::vector<FlowCtx> flows;

  // One MAC entity per node (indexed by NodeId).
  std::vector<mac::MacEntity*> macs;

  // Concrete owners by scheme.
  std::vector<std::unique_ptr<mac::DcfNode>> dcf_nodes;
  std::vector<std::unique_ptr<omni::OmniNodeMac>> omni_nodes;
  std::vector<std::unique_ptr<domino::DominoApMac>> domino_aps;
  std::vector<std::unique_ptr<domino::DominoClientMac>> domino_clients;

  std::unique_ptr<topo::ConflictGraph> graph;
  std::unique_ptr<topo::ConflictGraph> downlink_graph;  // CENTAUR
  std::unique_ptr<wired::Backbone> backbone;
  std::unique_ptr<domino::SignaturePlan> signatures;
  std::unique_ptr<domino::DominoController> controller;
  std::unique_ptr<centaur::CentaurController> centaur_ctrl;
  std::unique_ptr<omni::OmniscientScheduler> omni_sched;

  std::vector<std::unique_ptr<traffic::UdpSource>> udp_sources;
  std::map<traffic::FlowId, std::unique_ptr<traffic::TcpSender>> tcp_senders;
  std::map<traffic::FlowId, std::unique_ptr<traffic::TcpReceiver>>
      tcp_receivers;

  std::shared_ptr<TimelineRecorder> timeline;
  domino::DominoTrace trace;

  Impl(const topo::Topology& t, ExperimentConfig c)
      : topo(t), cfg(std::move(c)), root(cfg.seed), sim(), medium(sim, topo) {}

  bool tcp() const { return cfg.traffic.kind == TrafficKind::kTcp; }
  bool want_downlink() const {
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        if (topo.node(f.src).is_ap) return true;
      }
      return false;
    }
    return cfg.traffic.saturate_downlink || cfg.traffic.downlink_bps > 0.0;
  }
  bool want_uplink() const {
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        if (!topo.node(f.src).is_ap) return true;
      }
      return false;
    }
    return cfg.traffic.saturate_uplink || cfg.traffic.uplink_bps > 0.0;
  }
  /// Directions the scheduled schemes must cover. TCP needs both (ACKs
  /// travel the reverse path as regular data packets).
  bool graph_downlink() const { return want_downlink() || tcp(); }
  bool graph_uplink() const { return want_uplink() || tcp(); }

  void deliver(const traffic::Packet& p, topo::NodeId at, TimeNs now) {
    if (at != p.dst) return;
    if (tcp()) {
      if (p.tcp_is_ack) {
        const auto it = tcp_senders.find(p.flow);
        if (it != tcp_senders.end()) it->second->on_ack(p);
      } else {
        const auto it = tcp_receivers.find(p.flow);
        if (it != tcp_receivers.end()) it->second->on_data(p, now);
      }
    } else {
      stats.record_delivery(p, now);
    }
  }

  mac::DeliveryFn delivery_fn() {
    return [this](const traffic::Packet& p, topo::NodeId at, TimeNs now) {
      deliver(p, at, now);
    };
  }

  void build_flows() {
    int next_id = 0;
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        const bool uplink = !topo.node(f.src).is_ap;
        flows.push_back(FlowCtx{traffic::Flow{next_id++, f.src, f.dst},
                                uplink, f.rate_bps, f.saturate});
      }
      return;
    }
    for (topo::NodeId c : topo.all_clients()) {
      const topo::NodeId ap = topo.node(c).ap;
      if (want_downlink()) {
        flows.push_back(FlowCtx{traffic::Flow{next_id++, ap, c}, false,
                                cfg.traffic.downlink_bps,
                                cfg.traffic.saturate_downlink});
      }
      if (want_uplink()) {
        flows.push_back(FlowCtx{traffic::Flow{next_id++, c, ap}, true,
                                cfg.traffic.uplink_bps,
                                cfg.traffic.saturate_uplink});
      }
    }
  }

  void build_traffic() {
    for (const FlowCtx& fc : flows) {
      mac::MacEntity* src_mac = macs[static_cast<std::size_t>(fc.flow.src)];
      auto enqueue = [this, src_mac](traffic::Packet p) {
        stats.record_offered(p.flow);
        return src_mac->enqueue(std::move(p));
      };
      if (tcp()) {
        traffic::TcpParams tp = cfg.tcp;
        tp.mss_bytes = cfg.traffic.packet_bytes;
        tp.app_rate_bps = fc.saturate ? 0.0 : fc.rate_bps;
        auto sender = std::make_unique<traffic::TcpSender>(
            sim, fc.flow, tp, ids, enqueue);
        mac::MacEntity* dst_mac =
            macs[static_cast<std::size_t>(fc.flow.dst)];
        auto send_ack = [this, dst_mac](traffic::Packet p) {
          return dst_mac->enqueue(std::move(p));
        };
        auto receiver = std::make_unique<traffic::TcpReceiver>(
            fc.flow, tp, ids, send_ack,
            [this](const traffic::Packet& p) {
              stats.record_delivery(p, sim.now());
            });
        sender->start(usec(root.uniform(500, 1500)));
        tcp_senders[fc.flow.id] = std::move(sender);
        tcp_receivers[fc.flow.id] = std::move(receiver);
      } else {
        // Saturated sources offer ~3x the PHY rate so the queue never runs
        // dry; the cap keeps event counts sane.
        const double rate =
            fc.saturate ? 3.0 * cfg.wifi.data_rate_bps : fc.rate_bps;
        if (rate <= 0.0) continue;
        auto src = std::make_unique<traffic::UdpSource>(
            sim, fc.flow, rate, cfg.traffic.packet_bytes, ids, enqueue);
        src->start(usec(root.uniform(0, 1000)));
        udp_sources.push_back(std::move(src));
      }
    }
  }

  void build_dcf() {
    macs.assign(topo.num_nodes(), nullptr);
    for (const topo::Node& n : topo.nodes()) {
      auto node = std::make_unique<mac::DcfNode>(
          sim, medium, n.id, cfg.wifi, root.fork(), delivery_fn());
      macs[static_cast<std::size_t>(n.id)] = node.get();
      dcf_nodes.push_back(std::move(node));
    }
  }

  void build_centaur() {
    build_dcf();
    const auto dl = topo.make_links(/*downlink=*/true, /*uplink=*/false);
    downlink_graph = std::make_unique<topo::ConflictGraph>(
        topo::ConflictGraph::build(topo, dl));
    backbone = std::make_unique<wired::Backbone>(sim, cfg.backbone,
                                                 root.fork());
    std::map<topo::NodeId, mac::DcfNode*> ap_macs;
    for (const auto& n : dcf_nodes) {
      if (topo.node(n->node()).is_ap) ap_macs[n->node()] = n.get();
    }
    centaur_ctrl = std::make_unique<centaur::CentaurController>(
        sim, *backbone, *downlink_graph, cfg.centaur, std::move(ap_macs));
    centaur_ctrl->start(usec(100));
  }

  void build_omniscient() {
    macs.assign(topo.num_nodes(), nullptr);
    std::vector<omni::OmniNodeMac*> raw(topo.num_nodes(), nullptr);
    for (const topo::Node& n : topo.nodes()) {
      auto node = std::make_unique<omni::OmniNodeMac>(
          sim, medium, n.id, cfg.wifi, delivery_fn());
      macs[static_cast<std::size_t>(n.id)] = node.get();
      raw[static_cast<std::size_t>(n.id)] = node.get();
      omni_nodes.push_back(std::move(node));
    }
    omni_sched = std::make_unique<omni::OmniscientScheduler>(
        sim, medium, *graph, cfg.wifi, std::move(raw));
    omni_sched->start(usec(100));
  }

  void build_domino() {
    macs.assign(topo.num_nodes(), nullptr);
    signatures = std::make_unique<domino::SignaturePlan>(topo.num_nodes());
    backbone = std::make_unique<wired::Backbone>(sim, cfg.backbone,
                                                 root.fork());

    domino::DominoTiming timing;
    timing.wifi = cfg.wifi;
    timing.payload_bytes = cfg.traffic.packet_bytes;

    if (cfg.record_timeline) {
      timeline = std::make_shared<TimelineRecorder>();
      trace.on_data_tx = [this](std::uint64_t slot, topo::NodeId s,
                                topo::NodeId r, TimeNs t, bool fake,
                                bool uplink) {
        timeline->record_tx(slot, s, r, t, fake, uplink);
      };
      trace.on_poll = [this](std::uint64_t slot, topo::NodeId ap, TimeNs t) {
        timeline->record_poll(slot, ap, t);
      };
    }
    domino::DominoTrace* trace_ptr = cfg.record_timeline ? &trace : nullptr;

    cfg.domino.payload_bytes = cfg.traffic.packet_bytes;
    controller = std::make_unique<domino::DominoController>(
        sim, *backbone, topo, *graph, *signatures, cfg.domino, cfg.converter,
        timing.slot_duration(), timing.rop_duration());

    // APs with subchannel allocation for their clients.
    rop::SubchannelAllocator alloc(cfg.rop);
    std::map<topo::NodeId, domino::DominoApMac*> ap_map;
    std::map<topo::NodeId, std::size_t> subchannel_of;
    for (topo::NodeId ap : topo.aps()) {
      const std::vector<topo::NodeId> clients = topo.clients_of(ap);
      std::vector<double> rss;
      rss.reserve(clients.size());
      for (topo::NodeId c : clients) rss.push_back(topo.rss(ap, c));
      const auto assigns = alloc.assign(clients, rss);

      auto report_fn = [this](const domino::ApReport& rep) {
        backbone->send([this, rep] { controller->on_ap_report(rep); });
      };
      auto node = std::make_unique<domino::DominoApMac>(
          sim, medium, ap, timing, *signatures, cfg.sig_model, cfg.rop,
          root.fork(), delivery_fn(), report_fn, trace_ptr);
      std::vector<domino::DominoApMac::ClientInfo> infos;
      for (const auto& a : assigns) {
        infos.push_back(domino::DominoApMac::ClientInfo{
            a.client, a.subchannel, topo.rss(ap, a.client)});
        subchannel_of[a.client] = a.subchannel;
      }
      node->set_clients(std::move(infos));
      macs[static_cast<std::size_t>(ap)] = node.get();
      ap_map[ap] = node.get();
      domino_aps.push_back(std::move(node));
    }
    for (topo::NodeId c : topo.all_clients()) {
      auto node = std::make_unique<domino::DominoClientMac>(
          sim, medium, c, topo.node(c).ap, subchannel_of[c], timing,
          *signatures, cfg.sig_model, root.fork(), delivery_fn(), trace_ptr);
      macs[static_cast<std::size_t>(c)] = node.get();
      domino_clients.push_back(std::move(node));
    }

    controller->set_dispatch([ap_map](const domino::ApSchedule& plan) {
      const auto it = ap_map.find(plan.ap);
      if (it != ap_map.end()) it->second->receive_plan(plan);
    });
    controller->set_downlink_peek([ap_map](const topo::Link& l) {
      const auto it = ap_map.find(l.sender);
      return it == ap_map.end() ? std::size_t{0}
                                : it->second->queued_for(l.receiver);
    });
    controller->start(usec(100));
  }

  ExperimentResult run() {
    build_flows();
    const auto links = topo.make_links(graph_downlink(), graph_uplink());
    graph = std::make_unique<topo::ConflictGraph>(
        topo::ConflictGraph::build(topo, links));

    switch (cfg.scheme) {
      case Scheme::kDcf:
        build_dcf();
        break;
      case Scheme::kCentaur:
        build_centaur();
        break;
      case Scheme::kOmniscient:
        build_omniscient();
        break;
      case Scheme::kDomino:
        build_domino();
        break;
    }
    build_traffic();

    sim.run_until(cfg.duration);

    ExperimentResult result;
    result.census = topo::classify_pairs(topo, links);
    std::vector<double> xs;
    for (const FlowCtx& fc : flows) {
      LinkResult lr;
      lr.flow = fc.flow;
      lr.uplink = fc.uplink;
      lr.throughput_bps = stats.throughput_bps(fc.flow.id, cfg.duration);
      lr.mean_delay_us = stats.mean_delay_us(fc.flow.id);
      lr.delivered = stats.delivered(fc.flow.id);
      xs.push_back(lr.throughput_bps);
      result.links.push_back(lr);
    }
    result.aggregate_throughput_bps =
        stats.aggregate_throughput_bps(cfg.duration);
    result.jain_fairness = traffic::FlowStats::jain_index(xs);
    result.mean_delay_us = stats.mean_delay_us_all();
    for (const auto& n : dcf_nodes) {
      result.ack_timeouts += n->ack_timeouts();
      result.mac_drops += n->drops();
    }
    for (const auto& n : domino_aps) {
      result.ack_timeouts += n->ack_timeouts();
      result.domino_self_starts += n->self_starts();
      result.domino_missed_rows += n->missed_rows();
      result.domino_rows_executed += n->rows_executed();
    }
    for (const auto& n : domino_clients) {
      result.ack_timeouts += n->ack_timeouts();
    }
    if (controller) {
      result.domino_untriggerable = controller->converter().untriggerable_drops();
      result.domino_batches = controller->batches_planned();
    }
    result.timeline = timeline;
    return result;
  }
};

Experiment::Experiment(const topo::Topology& topology,
                       ExperimentConfig config)
    : impl_(std::make_unique<Impl>(topology, std::move(config))) {}

Experiment::~Experiment() = default;

ExperimentResult Experiment::run() { return impl_->run(); }

ExperimentResult run_experiment(const topo::Topology& topology,
                                const ExperimentConfig& config) {
  return Experiment(topology, config).run();
}

}  // namespace dmn::api
