#include "api/experiment.h"

#include <chrono>
#include <cstdlib>
#include <map>

#include "api/scheme_stack.h"
#include "fault/fault_injector.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/conflict_graph.h"
#include "topo/partition.h"
#include "traffic/flow_stats.h"
#include "traffic/udp_source.h"

namespace dmn::api {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kDcf: return "DCF";
    case Scheme::kCentaur: return "CENTAUR";
    case Scheme::kDomino: return "DOMINO";
    case Scheme::kOmniscient: return "Omniscient";
  }
  return "?";
}

// The facade owns the scheme-independent substrate — simulator, medium,
// traffic sources/sinks, flow statistics — and delegates scheme assembly to
// the SchemeStack selected by the config (see api/scheme_stack.h).
struct Experiment::Impl {
  // Borrowed from the caller (run_experiment's argument outlives run()):
  // the 1000-AP scale topology carries an O(N^2) RSS matrix that must not
  // be copied per experiment.
  const topo::Topology& topo;
  ExperimentConfig cfg;
  Rng root;

  sim::Simulator sim;
  phy::Medium medium;

  // Partitioned kernel state (empty / false on the classic path).
  topo::Partitioning parts;
  bool partitioned = false;
  unsigned threads = 0;
  /// One restricted Medium per interference partition; `medium` above stays
  /// unused airtime-wise when partitioned (stacks resolve through
  /// medium_of()).
  std::vector<std::unique_ptr<phy::Medium>> part_mediums;

  /// Packet-id lanes: one generator on the classic path (ids 1, 2, 3, ...),
  /// one per partition with disjoint bases (p << 44) when partitioned.
  /// Never resized after build_traffic — sources hold references into it.
  std::vector<traffic::PacketIdGen> id_gens;
  traffic::FlowStats stats;

  struct FlowCtx {
    traffic::Flow flow;
    bool uplink = false;
    double rate_bps = 0.0;
    bool saturate = false;
  };
  std::vector<FlowCtx> flows;

  // One MAC entity per node (indexed by NodeId), owned by the stack.
  std::vector<mac::MacEntity*> macs;
  std::unique_ptr<SchemeStack> stack;

  std::unique_ptr<topo::ConflictGraph> graph;

  std::vector<std::unique_ptr<traffic::UdpSource>> udp_sources;
  std::map<traffic::FlowId, std::unique_ptr<traffic::TcpSender>> tcp_senders;
  std::map<traffic::FlowId, std::unique_ptr<traffic::TcpReceiver>>
      tcp_receivers;

  std::shared_ptr<TimelineRecorder> timeline;
  domino::DominoTrace trace;

  // Built only when auditing resolves on (cfg.audit / DMN_AUDIT). The
  // auditors are strictly passive — no RNG draws, no scheduled events — so
  // their presence cannot perturb results. Classic runs build exactly one;
  // partitioned runs build one per partition plus one for the wired queue,
  // so every check still runs race-free on its own queue (reports merged at
  // the end via audit::merge_reports).
  std::vector<std::unique_ptr<audit::SimAuditor>> auditors;

  // Built only when cfg.faults has an active knob: the fault-free path
  // consumes no extra RNG fork and schedules no extra events, keeping its
  // results byte-identical to builds without the fault subsystem.
  std::unique_ptr<fault::FaultInjector> injector;

  // Run guard (sweep watchdogs): armed before run() via set_run_guard.
  const std::atomic<bool>* cancel = nullptr;
  std::uint64_t max_events = 0;

  Impl(const topo::Topology& t, ExperimentConfig c)
      : topo(t), cfg(std::move(c)), root(cfg.seed), sim(), medium(sim, topo) {}

  /// The medium carrying `node`'s airtime (its partition's on partitioned
  /// runs, the single shared one otherwise).
  phy::Medium& medium_of(topo::NodeId node) {
    return partitioned
               ? *part_mediums[parts.assignment[static_cast<std::size_t>(node)]]
               : medium;
  }
  /// The auditor owning `node`'s queue (null when auditing is off).
  audit::SimAuditor* auditor_of(topo::NodeId node) {
    if (auditors.empty()) return nullptr;
    return partitioned
               ? auditors[parts.assignment[static_cast<std::size_t>(node)]]
                     .get()
               : auditors[0].get();
  }
  /// The auditor owning the wired/controller queue (== auditor_of on the
  /// classic path; null when auditing is off).
  audit::SimAuditor* wired_auditor() {
    return auditors.empty() ? nullptr : auditors.back().get();
  }
  /// The packet-id lane for packets generated at `node`.
  traffic::PacketIdGen& ids_for(topo::NodeId node) {
    return partitioned
               ? id_gens[parts.assignment[static_cast<std::size_t>(node)]]
               : id_gens[0];
  }

  bool tcp() const { return cfg.traffic.kind == TrafficKind::kTcp; }
  bool want_downlink() const {
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        if (topo.node(f.src).is_ap) return true;
      }
      return false;
    }
    return cfg.traffic.saturate_downlink || cfg.traffic.downlink_bps > 0.0;
  }
  bool want_uplink() const {
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        if (!topo.node(f.src).is_ap) return true;
      }
      return false;
    }
    return cfg.traffic.saturate_uplink || cfg.traffic.uplink_bps > 0.0;
  }
  /// Directions the scheduled schemes must cover. TCP needs both (ACKs
  /// travel the reverse path as regular data packets).
  bool graph_downlink() const { return want_downlink() || tcp(); }
  bool graph_uplink() const { return want_uplink() || tcp(); }

  void deliver(const traffic::Packet& p, topo::NodeId at, TimeNs now) {
    if (at != p.dst) return;
    // TCP ACKs are reverse-path control enqueued outside the offered-packet
    // hook; the conservation ledger tracks generated data packets only.
    audit::SimAuditor* aud = auditor_of(at);
    if (aud && !p.tcp_is_ack) aud->on_delivered(p, at, now);
    if (tcp()) {
      if (p.tcp_is_ack) {
        const auto it = tcp_senders.find(p.flow);
        if (it != tcp_senders.end()) it->second->on_ack(p);
      } else {
        const auto it = tcp_receivers.find(p.flow);
        if (it != tcp_receivers.end()) it->second->on_data(p, now);
      }
    } else {
      stats.record_delivery(p, now);
    }
  }

  mac::DeliveryFn delivery_fn() {
    return [this](const traffic::Packet& p, topo::NodeId at, TimeNs now) {
      deliver(p, at, now);
    };
  }

  void build_flows() {
    int next_id = 0;
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        const bool uplink = !topo.node(f.src).is_ap;
        flows.push_back(FlowCtx{traffic::Flow{next_id++, f.src, f.dst},
                                uplink, f.rate_bps, f.saturate});
      }
      return;
    }
    for (topo::NodeId c : topo.all_clients()) {
      const topo::NodeId ap = topo.node(c).ap;
      if (want_downlink()) {
        flows.push_back(FlowCtx{traffic::Flow{next_id++, ap, c}, false,
                                cfg.traffic.downlink_bps,
                                cfg.traffic.saturate_downlink});
      }
      if (want_uplink()) {
        flows.push_back(FlowCtx{traffic::Flow{next_id++, c, ap}, true,
                                cfg.traffic.uplink_bps,
                                cfg.traffic.saturate_uplink});
      }
    }
  }

  void build_traffic() {
    for (const FlowCtx& fc : flows) {
      mac::MacEntity* src_mac = macs[static_cast<std::size_t>(fc.flow.src)];
      // Source events (and everything they offer) belong to the source
      // node's queue; the Scope below pins construction-time scheduling
      // there. The per-source auditor is resolved once, by source node.
      audit::SimAuditor* aud = auditor_of(fc.flow.src);
      auto enqueue = [this, src_mac, aud](traffic::Packet p) {
        stats.record_offered(p.flow);
        if (!aud) return src_mac->enqueue(std::move(p));
        aud->on_offered(p);
        const traffic::PacketId id = p.id;
        const traffic::FlowId flow = p.flow;
        const bool accepted = src_mac->enqueue(std::move(p));
        if (!accepted) aud->on_offer_rejected(id, flow);
        return accepted;
      };
      if (tcp()) {
        traffic::TcpParams tp = cfg.tcp;
        tp.mss_bytes = cfg.traffic.packet_bytes;
        tp.app_rate_bps = fc.saturate ? 0.0 : fc.rate_bps;
        // Pre-register the accounting slot so concurrent record_* calls
        // from partition queues never mutate the map structure.
        stats.ensure_flow(fc.flow.id);
        sim::Simulator::Scope scope(
            sim, sim.queue_of_node(static_cast<std::size_t>(fc.flow.src)));
        auto sender = std::make_unique<traffic::TcpSender>(
            sim, fc.flow, tp, ids_for(fc.flow.src), enqueue);
        mac::MacEntity* dst_mac =
            macs[static_cast<std::size_t>(fc.flow.dst)];
        auto send_ack = [this, dst_mac](traffic::Packet p) {
          return dst_mac->enqueue(std::move(p));
        };
        auto receiver = std::make_unique<traffic::TcpReceiver>(
            fc.flow, tp, ids_for(fc.flow.src), send_ack,
            [this](const traffic::Packet& p) {
              stats.record_delivery(p, sim.now());
            });
        sender->start(usec(root.uniform(500, 1500)));
        tcp_senders[fc.flow.id] = std::move(sender);
        tcp_receivers[fc.flow.id] = std::move(receiver);
      } else {
        // Saturated sources offer ~3x the PHY rate so the queue never runs
        // dry; the cap keeps event counts sane.
        const double rate =
            fc.saturate ? 3.0 * cfg.wifi.data_rate_bps : fc.rate_bps;
        if (rate <= 0.0) continue;
        stats.ensure_flow(fc.flow.id);
        sim::Simulator::Scope scope(
            sim, sim.queue_of_node(static_cast<std::size_t>(fc.flow.src)));
        auto src = std::make_unique<traffic::UdpSource>(
            sim, fc.flow, rate, cfg.traffic.packet_bytes,
            ids_for(fc.flow.src), enqueue);
        src->start(usec(root.uniform(0, 1000)));
        udp_sources.push_back(std::move(src));
      }
    }
  }

  void build_stack() {
    if (cfg.record_timeline) {
      timeline = std::make_shared<TimelineRecorder>();
    }
    // The trace fans out to the timeline recorder and/or the auditors;
    // hooks stay unset (and cost nothing) when neither consumer wants them.
    // Trace callbacks fire on the emitting node's queue, so each is routed
    // to that node's (partition's) auditor.
    const bool audited = !auditors.empty();
    if (timeline || audited) {
      trace.on_data_tx = [this](std::uint64_t slot, topo::NodeId s,
                                topo::NodeId r, TimeNs t, bool fake,
                                bool uplink) {
        if (timeline) timeline->record_tx(slot, s, r, t, fake, uplink);
        if (audit::SimAuditor* a = auditor_of(s)) {
          a->on_data_tx(slot, s, r, t, fake, uplink);
        }
      };
      trace.on_poll = [this](std::uint64_t slot, topo::NodeId ap, TimeNs t) {
        if (timeline) timeline->record_poll(slot, ap, t);
        if (audit::SimAuditor* a = auditor_of(ap)) a->on_poll(slot, ap, t);
      };
    }
    if (audited) {
      trace.on_trigger = [this](std::uint64_t tag, topo::NodeId n, TimeNs t) {
        auditor_of(n)->on_trigger(tag, n, t);
      };
      trace.on_continuation = [this](std::uint64_t slot, topo::NodeId n,
                                     TimeNs t) {
        auditor_of(n)->on_continuation(slot, n, t);
      };
    }

    // The stack object itself is created early in run() (its
    // supports_partitioning() gates the kernel choice); here we assemble it.
    StackContext ctx{sim,
                     medium,
                     [this](topo::NodeId n) -> phy::Medium& {
                       return medium_of(n);
                     },
                     topo,
                     cfg,
                     *graph,
                     root,
                     delivery_fn(),
                     (timeline || audited) ? &trace : nullptr,
                     injector.get(),
                     wired_auditor()};
    macs.assign(topo.num_nodes(), nullptr);
    stack->build(ctx, macs);
    for (auto& a : auditors) a->attach_macs(macs);
  }

  ExperimentResult run() {
    const auto wall_start = std::chrono::steady_clock::now();
    build_flows();
    const auto links = topo.make_links(graph_downlink(), graph_uplink());
    graph = std::make_unique<topo::ConflictGraph>(
        topo::ConflictGraph::build(topo, links));

    // The stack object is created (not yet built) before the kernel choice:
    // a stack that couples nodes outside the audible graph (Omniscient's
    // oracle) vetoes partitioning.
    stack = SchemeStackRegistry::instance().create(
        cfg.effective_scheme_name());

    // Partitioned kernel: split the run into interference components when
    // the resolved thread count asks for it and the run is eligible.
    // Timeline recording keeps the classic kernel (the recorder is a single
    // shared sink); single-component topologies gain nothing.
    threads = resolve_sim_threads(cfg);
    if (threads > 0 && stack->supports_partitioning() &&
        !cfg.record_timeline) {
      topo::Partitioning p = topo::compute_partitions(topo);
      if (p.count >= 2) {
        parts = std::move(p);
        sim.configure_partitions(parts.assignment, parts.count,
                                 cfg.backbone.min_latency, threads);
        partitioned = true;
        part_mediums.reserve(parts.count);
        for (std::uint32_t q = 0; q < parts.count; ++q) {
          auto m = std::make_unique<phy::Medium>(sim, topo);
          m->restrict_to_nodes(parts.members_of(q));
          part_mediums.push_back(std::move(m));
        }
      }
    }

    // Packet-id lanes (sources hold references; sized once, never resized).
    if (partitioned) {
      id_gens.reserve(parts.count);
      for (std::uint32_t q = 0; q < parts.count; ++q) {
        id_gens.emplace_back(static_cast<traffic::PacketId>(q) << 44);
      }
    } else {
      id_gens.emplace_back();
    }

    // The injector forks per-queue RNG lanes in its constructor, so it must
    // be built after configure_partitions.
    if (cfg.faults.any()) {
      injector = std::make_unique<fault::FaultInjector>(
          sim, topo.num_nodes(), cfg.faults, root.fork());
    }

    const audit::AuditMode audit_mode = audit::resolve_mode(cfg.audit);
    if (audit_mode != audit::AuditMode::kOff) {
      audit::AuditSettings as;
      as.max_inbound = cfg.converter.max_inbound;
      as.max_outbound = cfg.converter.max_outbound;
      as.trigger_rss_floor_dbm = cfg.converter.trigger_rss_floor_dbm;
      as.insert_fake_links = cfg.converter.insert_fake_links;
      as.rop_max_report = static_cast<unsigned>(cfg.rop.max_queue_report());
      as.signature_forging = cfg.faults.signature.false_positive_rate > 0.0;
      // One auditor per event queue (partitions + wired) so checks stay
      // race-free; the classic path keeps the single historical instance.
      const std::size_t n_auditors = partitioned ? parts.count + 1 : 1;
      auditors.reserve(n_auditors);
      for (std::size_t i = 0; i < n_auditors; ++i) {
        auditors.push_back(
            std::make_unique<audit::SimAuditor>(sim, topo, audit_mode, as));
        auditors.back()->attach_graph(*graph);
      }
      if (partitioned) {
        for (std::uint32_t q = 0; q < parts.count; ++q) {
          auditors[q]->attach_medium(*part_mediums[q]);
        }
      } else {
        auditors[0]->attach_medium(medium);
      }
    }
    if (cfg.audit.mutation == audit::Mutation::kMediumLeakPower) {
      medium.set_test_power_leak(true);
      for (auto& m : part_mediums) m->set_test_power_leak(true);
    }

    build_stack();
    build_traffic();
    if (injector) {
      if (partitioned) {
        std::vector<phy::Medium*> mediums;
        mediums.reserve(part_mediums.size());
        for (auto& m : part_mediums) mediums.push_back(m.get());
        injector->arm_mediums(mediums, cfg.duration);
      } else {
        injector->arm_medium(medium, cfg.duration);
      }
    }

    sim.set_interrupt_flag(cancel);
    sim.set_event_budget(max_events);
    const auto wall_loop = std::chrono::steady_clock::now();
    sim.run_until(cfg.duration);
    const auto wall_end = std::chrono::steady_clock::now();
    if (sim.interrupted()) {
      throw ExperimentInterrupted(sim.now(), sim.events_executed());
    }

    ExperimentResult result;
    result.wall_setup_seconds =
        std::chrono::duration<double>(wall_loop - wall_start).count();
    result.wall_run_seconds =
        std::chrono::duration<double>(wall_end - wall_loop).count();
    result.census = topo::classify_pairs(topo, links);
    std::vector<double> xs;
    for (const FlowCtx& fc : flows) {
      LinkResult lr;
      lr.flow = fc.flow;
      lr.uplink = fc.uplink;
      lr.throughput_bps = stats.throughput_bps(fc.flow.id, cfg.duration);
      lr.mean_delay_us = stats.mean_delay_us(fc.flow.id);
      lr.delivered = stats.delivered(fc.flow.id);
      xs.push_back(lr.throughput_bps);
      result.links.push_back(lr);
    }
    result.aggregate_throughput_bps =
        stats.aggregate_throughput_bps(cfg.duration);
    result.jain_fairness = traffic::FlowStats::jain_index(xs);
    result.mean_delay_us = stats.mean_delay_us_all();
    result.events_executed = sim.events_executed();
    result.sim_partitions = partitioned ? parts.count : 1;
    const sim::KernelStats& ks = sim.kernel_stats();
    result.sim_windows = ks.windows;
    result.sim_ff_jumps = ks.ff_jumps;
    result.sim_elongated_windows = ks.elongated_windows;
    result.sim_activated_p50 = ks.activated_p50();
    result.sim_activated_max = ks.activated_max();
    result.sim_spin_wakes = ks.spin_wakes;
    result.sim_sleep_wakes = ks.sleep_wakes;
    result.sim_barrier_seconds = ks.barrier_seconds;
    stack->collect(result);
    if (injector) {
      const fault::FaultCounters fc = injector->counters();
      result.fault_backbone_drops = fc.backbone_drops;
      result.fault_backbone_dups = fc.backbone_dups;
      result.fault_backbone_spikes = fc.backbone_spikes;
      result.fault_interference_bursts = fc.interference_bursts;
      result.fault_controller_outage_skips = fc.controller_outage_skips;
      result.fault_forced_trigger_losses = fc.forced_trigger_losses;
      result.fault_forced_false_positives = fc.forced_trigger_false_positives;
    }
    result.timeline = timeline;
    if (!auditors.empty()) {
      std::vector<std::shared_ptr<const audit::AuditReport>> reports;
      reports.reserve(auditors.size());
      for (auto& a : auditors) {
        a->finalize();
        reports.push_back(a->report());
      }
      result.audit =
          reports.size() == 1
              ? reports[0]
              : std::make_shared<const audit::AuditReport>(
                    audit::merge_reports(reports));
    }
    return result;
  }
};

unsigned resolve_sim_threads(const ExperimentConfig& cfg) {
  if (cfg.sim_threads > 0) return static_cast<unsigned>(cfg.sim_threads);
  if (cfg.sim_threads < 0) return 0;
  const char* env = std::getenv("DMN_SIM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 ? static_cast<unsigned>(v) : 0;
}

ExperimentInterrupted::ExperimentInterrupted(TimeNs sim_time,
                                             std::uint64_t events)
    : std::runtime_error("experiment interrupted at " +
                         std::to_string(sim_time) + " ns after " +
                         std::to_string(events) + " events"),
      sim_time_ns(sim_time),
      events_executed(events) {}

Experiment::Experiment(const topo::Topology& topology,
                       ExperimentConfig config)
    : impl_(std::make_unique<Impl>(topology, std::move(config))) {}

Experiment::~Experiment() = default;

void Experiment::set_run_guard(const std::atomic<bool>* cancel,
                               std::uint64_t max_events) {
  impl_->cancel = cancel;
  impl_->max_events = max_events;
}

ExperimentResult Experiment::run() { return impl_->run(); }

ExperimentResult run_experiment(const topo::Topology& topology,
                                const ExperimentConfig& config) {
  return Experiment(topology, config).run();
}

}  // namespace dmn::api
