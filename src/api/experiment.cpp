#include "api/experiment.h"

#include <map>

#include "api/scheme_stack.h"
#include "fault/fault_injector.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/conflict_graph.h"
#include "traffic/flow_stats.h"
#include "traffic/udp_source.h"

namespace dmn::api {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kDcf: return "DCF";
    case Scheme::kCentaur: return "CENTAUR";
    case Scheme::kDomino: return "DOMINO";
    case Scheme::kOmniscient: return "Omniscient";
  }
  return "?";
}

// The facade owns the scheme-independent substrate — simulator, medium,
// traffic sources/sinks, flow statistics — and delegates scheme assembly to
// the SchemeStack selected by the config (see api/scheme_stack.h).
struct Experiment::Impl {
  topo::Topology topo;
  ExperimentConfig cfg;
  Rng root;

  sim::Simulator sim;
  phy::Medium medium;

  traffic::PacketIdGen ids;
  traffic::FlowStats stats;

  struct FlowCtx {
    traffic::Flow flow;
    bool uplink = false;
    double rate_bps = 0.0;
    bool saturate = false;
  };
  std::vector<FlowCtx> flows;

  // One MAC entity per node (indexed by NodeId), owned by the stack.
  std::vector<mac::MacEntity*> macs;
  std::unique_ptr<SchemeStack> stack;

  std::unique_ptr<topo::ConflictGraph> graph;

  std::vector<std::unique_ptr<traffic::UdpSource>> udp_sources;
  std::map<traffic::FlowId, std::unique_ptr<traffic::TcpSender>> tcp_senders;
  std::map<traffic::FlowId, std::unique_ptr<traffic::TcpReceiver>>
      tcp_receivers;

  std::shared_ptr<TimelineRecorder> timeline;
  domino::DominoTrace trace;

  // Built only when auditing resolves on (cfg.audit / DMN_AUDIT). The
  // auditor is strictly passive — no RNG draws, no scheduled events — so
  // its presence cannot perturb results.
  std::unique_ptr<audit::SimAuditor> auditor;

  // Built only when cfg.faults has an active knob: the fault-free path
  // consumes no extra RNG fork and schedules no extra events, keeping its
  // results byte-identical to builds without the fault subsystem.
  std::unique_ptr<fault::FaultInjector> injector;

  // Run guard (sweep watchdogs): armed before run() via set_run_guard.
  const std::atomic<bool>* cancel = nullptr;
  std::uint64_t max_events = 0;

  Impl(const topo::Topology& t, ExperimentConfig c)
      : topo(t), cfg(std::move(c)), root(cfg.seed), sim(), medium(sim, topo) {}

  bool tcp() const { return cfg.traffic.kind == TrafficKind::kTcp; }
  bool want_downlink() const {
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        if (topo.node(f.src).is_ap) return true;
      }
      return false;
    }
    return cfg.traffic.saturate_downlink || cfg.traffic.downlink_bps > 0.0;
  }
  bool want_uplink() const {
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        if (!topo.node(f.src).is_ap) return true;
      }
      return false;
    }
    return cfg.traffic.saturate_uplink || cfg.traffic.uplink_bps > 0.0;
  }
  /// Directions the scheduled schemes must cover. TCP needs both (ACKs
  /// travel the reverse path as regular data packets).
  bool graph_downlink() const { return want_downlink() || tcp(); }
  bool graph_uplink() const { return want_uplink() || tcp(); }

  void deliver(const traffic::Packet& p, topo::NodeId at, TimeNs now) {
    if (at != p.dst) return;
    // TCP ACKs are reverse-path control enqueued outside the offered-packet
    // hook; the conservation ledger tracks generated data packets only.
    if (auditor && !p.tcp_is_ack) auditor->on_delivered(p, at, now);
    if (tcp()) {
      if (p.tcp_is_ack) {
        const auto it = tcp_senders.find(p.flow);
        if (it != tcp_senders.end()) it->second->on_ack(p);
      } else {
        const auto it = tcp_receivers.find(p.flow);
        if (it != tcp_receivers.end()) it->second->on_data(p, now);
      }
    } else {
      stats.record_delivery(p, now);
    }
  }

  mac::DeliveryFn delivery_fn() {
    return [this](const traffic::Packet& p, topo::NodeId at, TimeNs now) {
      deliver(p, at, now);
    };
  }

  void build_flows() {
    int next_id = 0;
    if (!cfg.traffic.custom.empty()) {
      for (const FlowSpec& f : cfg.traffic.custom) {
        const bool uplink = !topo.node(f.src).is_ap;
        flows.push_back(FlowCtx{traffic::Flow{next_id++, f.src, f.dst},
                                uplink, f.rate_bps, f.saturate});
      }
      return;
    }
    for (topo::NodeId c : topo.all_clients()) {
      const topo::NodeId ap = topo.node(c).ap;
      if (want_downlink()) {
        flows.push_back(FlowCtx{traffic::Flow{next_id++, ap, c}, false,
                                cfg.traffic.downlink_bps,
                                cfg.traffic.saturate_downlink});
      }
      if (want_uplink()) {
        flows.push_back(FlowCtx{traffic::Flow{next_id++, c, ap}, true,
                                cfg.traffic.uplink_bps,
                                cfg.traffic.saturate_uplink});
      }
    }
  }

  void build_traffic() {
    for (const FlowCtx& fc : flows) {
      mac::MacEntity* src_mac = macs[static_cast<std::size_t>(fc.flow.src)];
      auto enqueue = [this, src_mac](traffic::Packet p) {
        stats.record_offered(p.flow);
        if (!auditor) return src_mac->enqueue(std::move(p));
        auditor->on_offered(p);
        const traffic::PacketId id = p.id;
        const traffic::FlowId flow = p.flow;
        const bool accepted = src_mac->enqueue(std::move(p));
        if (!accepted) auditor->on_offer_rejected(id, flow);
        return accepted;
      };
      if (tcp()) {
        traffic::TcpParams tp = cfg.tcp;
        tp.mss_bytes = cfg.traffic.packet_bytes;
        tp.app_rate_bps = fc.saturate ? 0.0 : fc.rate_bps;
        auto sender = std::make_unique<traffic::TcpSender>(
            sim, fc.flow, tp, ids, enqueue);
        mac::MacEntity* dst_mac =
            macs[static_cast<std::size_t>(fc.flow.dst)];
        auto send_ack = [this, dst_mac](traffic::Packet p) {
          return dst_mac->enqueue(std::move(p));
        };
        auto receiver = std::make_unique<traffic::TcpReceiver>(
            fc.flow, tp, ids, send_ack,
            [this](const traffic::Packet& p) {
              stats.record_delivery(p, sim.now());
            });
        sender->start(usec(root.uniform(500, 1500)));
        tcp_senders[fc.flow.id] = std::move(sender);
        tcp_receivers[fc.flow.id] = std::move(receiver);
      } else {
        // Saturated sources offer ~3x the PHY rate so the queue never runs
        // dry; the cap keeps event counts sane.
        const double rate =
            fc.saturate ? 3.0 * cfg.wifi.data_rate_bps : fc.rate_bps;
        if (rate <= 0.0) continue;
        auto src = std::make_unique<traffic::UdpSource>(
            sim, fc.flow, rate, cfg.traffic.packet_bytes, ids, enqueue);
        src->start(usec(root.uniform(0, 1000)));
        udp_sources.push_back(std::move(src));
      }
    }
  }

  void build_stack() {
    if (cfg.record_timeline) {
      timeline = std::make_shared<TimelineRecorder>();
    }
    // The trace fans out to the timeline recorder and/or the auditor;
    // hooks stay unset (and cost nothing) when neither consumer wants them.
    if (timeline || auditor) {
      trace.on_data_tx = [this](std::uint64_t slot, topo::NodeId s,
                                topo::NodeId r, TimeNs t, bool fake,
                                bool uplink) {
        if (timeline) timeline->record_tx(slot, s, r, t, fake, uplink);
        if (auditor) auditor->on_data_tx(slot, s, r, t, fake, uplink);
      };
      trace.on_poll = [this](std::uint64_t slot, topo::NodeId ap, TimeNs t) {
        if (timeline) timeline->record_poll(slot, ap, t);
        if (auditor) auditor->on_poll(slot, ap, t);
      };
    }
    if (auditor) {
      trace.on_trigger = [this](std::uint64_t tag, topo::NodeId n, TimeNs t) {
        auditor->on_trigger(tag, n, t);
      };
      trace.on_continuation = [this](std::uint64_t slot, topo::NodeId n,
                                     TimeNs t) {
        auditor->on_continuation(slot, n, t);
      };
    }

    stack = SchemeStackRegistry::instance().create(
        cfg.effective_scheme_name());
    StackContext ctx{sim,
                     medium,
                     topo,
                     cfg,
                     *graph,
                     root,
                     delivery_fn(),
                     (timeline || auditor) ? &trace : nullptr,
                     injector.get(),
                     auditor.get()};
    macs.assign(topo.num_nodes(), nullptr);
    stack->build(ctx, macs);
    if (auditor) auditor->attach_macs(macs);
  }

  ExperimentResult run() {
    build_flows();
    const auto links = topo.make_links(graph_downlink(), graph_uplink());
    graph = std::make_unique<topo::ConflictGraph>(
        topo::ConflictGraph::build(topo, links));

    if (cfg.faults.any()) {
      injector = std::make_unique<fault::FaultInjector>(
          sim, topo.num_nodes(), cfg.faults, root.fork());
    }

    const audit::AuditMode audit_mode = audit::resolve_mode(cfg.audit);
    if (audit_mode != audit::AuditMode::kOff) {
      audit::AuditSettings as;
      as.max_inbound = cfg.converter.max_inbound;
      as.max_outbound = cfg.converter.max_outbound;
      as.trigger_rss_floor_dbm = cfg.converter.trigger_rss_floor_dbm;
      as.insert_fake_links = cfg.converter.insert_fake_links;
      as.rop_max_report = static_cast<unsigned>(cfg.rop.max_queue_report());
      as.signature_forging = cfg.faults.signature.false_positive_rate > 0.0;
      auditor = std::make_unique<audit::SimAuditor>(sim, topo, audit_mode, as);
      auditor->attach_medium(medium);
      auditor->attach_graph(*graph);
    }
    if (cfg.audit.mutation == audit::Mutation::kMediumLeakPower) {
      medium.set_test_power_leak(true);
    }

    build_stack();
    build_traffic();
    if (injector) injector->arm_medium(medium, cfg.duration);

    sim.set_interrupt_flag(cancel);
    sim.set_event_budget(max_events);
    sim.run_until(cfg.duration);
    if (sim.interrupted()) {
      throw ExperimentInterrupted(sim.now(), sim.events_executed());
    }

    ExperimentResult result;
    result.census = topo::classify_pairs(topo, links);
    std::vector<double> xs;
    for (const FlowCtx& fc : flows) {
      LinkResult lr;
      lr.flow = fc.flow;
      lr.uplink = fc.uplink;
      lr.throughput_bps = stats.throughput_bps(fc.flow.id, cfg.duration);
      lr.mean_delay_us = stats.mean_delay_us(fc.flow.id);
      lr.delivered = stats.delivered(fc.flow.id);
      xs.push_back(lr.throughput_bps);
      result.links.push_back(lr);
    }
    result.aggregate_throughput_bps =
        stats.aggregate_throughput_bps(cfg.duration);
    result.jain_fairness = traffic::FlowStats::jain_index(xs);
    result.mean_delay_us = stats.mean_delay_us_all();
    stack->collect(result);
    if (injector) {
      const fault::FaultCounters& fc = injector->counters();
      result.fault_backbone_drops = fc.backbone_drops;
      result.fault_backbone_dups = fc.backbone_dups;
      result.fault_backbone_spikes = fc.backbone_spikes;
      result.fault_interference_bursts = fc.interference_bursts;
      result.fault_controller_outage_skips = fc.controller_outage_skips;
      result.fault_forced_trigger_losses = fc.forced_trigger_losses;
      result.fault_forced_false_positives = fc.forced_trigger_false_positives;
    }
    result.timeline = timeline;
    if (auditor) {
      auditor->finalize();
      result.audit = auditor->report();
    }
    return result;
  }
};

ExperimentInterrupted::ExperimentInterrupted(TimeNs sim_time,
                                             std::uint64_t events)
    : std::runtime_error("experiment interrupted at " +
                         std::to_string(sim_time) + " ns after " +
                         std::to_string(events) + " events"),
      sim_time_ns(sim_time),
      events_executed(events) {}

Experiment::Experiment(const topo::Topology& topology,
                       ExperimentConfig config)
    : impl_(std::make_unique<Impl>(topology, std::move(config))) {}

Experiment::~Experiment() = default;

void Experiment::set_run_guard(const std::atomic<bool>* cancel,
                               std::uint64_t max_events) {
  impl_->cancel = cancel;
  impl_->max_events = max_events;
}

ExperimentResult Experiment::run() { return impl_->run(); }

ExperimentResult run_experiment(const topo::Topology& topology,
                                const ExperimentConfig& config) {
  return Experiment(topology, config).run();
}

}  // namespace dmn::api
