#include "api/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace dmn::api {

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)) {}

std::vector<ExperimentResult> SweepRunner::run(
    const std::vector<SweepPoint>& points) {
  std::vector<ExperimentResult> results(points.size());
  std::size_t threads = options_.num_threads != 0
                            ? options_.num_threads
                            : std::thread::hardware_concurrency();
  threads = std::max<std::size_t>(1, std::min(threads, points.size()));

  const auto t0 = std::chrono::steady_clock::now();

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::exception_ptr first_error;
  std::mutex mu;  // guards first_error and on_progress

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (first_error) return;  // stop pulling new points after a failure
      }
      try {
        results[i] = run_experiment(points[i].topology, points[i].config);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        continue;
      }
      const std::size_t finished = done.fetch_add(1) + 1;
      if (options_.on_progress) {
        const std::lock_guard<std::mutex> lock(mu);
        options_.on_progress(finished, points.size());
      }
    }
  };

  if (threads == 1) {
    worker();  // serial reference path: no pool, same code
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  stats_.points = points.size();
  stats_.threads = threads;
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

std::size_t sweep_threads_from_env() {
  if (const char* v = std::getenv("DMN_SWEEP_THREADS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 0;  // auto
}

std::vector<SweepPoint> seed_sweep(const topo::Topology& topology,
                                   const ExperimentConfig& base,
                                   std::uint64_t first_seed,
                                   std::size_t count) {
  std::vector<SweepPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SweepPoint p{topology, base, "seed " + std::to_string(first_seed + i)};
    p.config.seed = first_seed + i;
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace dmn::api
