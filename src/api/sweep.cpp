#include "api/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <typeinfo>

#include "api/sweep_io.h"

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

namespace dmn::api {

const char* to_string(PointStatus s) {
  switch (s) {
    case PointStatus::kOk: return "ok";
    case PointStatus::kError: return "error";
    case PointStatus::kTimedOut: return "timed_out";
    case PointStatus::kSkipped: return "skipped";
  }
  return "?";
}

namespace {

std::string demangled_type(const std::exception& e) {
#if defined(__GNUG__)
  int status = 0;
  char* name =
      abi::__cxa_demangle(typeid(e).name(), nullptr, nullptr, &status);
  if (status == 0 && name != nullptr) {
    std::string out(name);
    std::free(name);
    return out;
  }
#endif
  return typeid(e).name();
}

// ---- graceful-shutdown signal plumbing -------------------------------------
// Handlers are installed only while a checkpointing run is active (a plain
// sweep should die on Ctrl-C like any other batch job). The handler just
// sets a flag; workers poll it before claiming the next point, so in-flight
// points drain, the checkpoint is already flushed, and the caller gets a
// resume hint. The previous handlers are restored on exit, so a second
// Ctrl-C during the drain falls through to the default action.

std::atomic<bool> g_shutdown{false};

void shutdown_handler(int) { g_shutdown.store(true); }

class SignalGuard {
 public:
  explicit SignalGuard(bool install) : installed_(install) {
    if (!installed_) return;
    g_shutdown.store(false);
    prev_int_ = std::signal(SIGINT, shutdown_handler);
    prev_term_ = std::signal(SIGTERM, shutdown_handler);
  }
  ~SignalGuard() {
    if (!installed_) return;
    std::signal(SIGINT, prev_int_);
    std::signal(SIGTERM, prev_term_);
  }
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  bool requested() const {
    return installed_ && g_shutdown.load(std::memory_order_relaxed);
  }

 private:
  bool installed_ = false;
  void (*prev_int_)(int) = SIG_DFL;
  void (*prev_term_)(int) = SIG_DFL;
};

// ---- watchdog --------------------------------------------------------------
// One slot per worker thread. The worker arms the slot with a wall-clock
// deadline before each attempt; the monitor thread scans the slots every
// few tens of milliseconds and trips the slot's cancellation flag once the
// deadline passes. The simulator polls that flag between events
// (Simulator::set_interrupt_flag), so a runaway point stops at a safe
// event boundary. Arming/disarming and the monitor's check are serialized
// by the slot mutex so a slow monitor scan can never cancel the *next*
// point with a stale deadline; the flag itself stays atomic because the
// simulator reads it without the lock.

struct WatchdogSlot {
  std::mutex mu;
  bool active = false;
  std::chrono::steady_clock::time_point deadline{};
  std::atomic<bool> cancel{false};
};

class WatchdogMonitor {
 public:
  WatchdogMonitor(std::vector<WatchdogSlot>& slots, double wall_seconds)
      : slots_(slots), enabled_(wall_seconds > 0.0) {
    if (enabled_) thread_ = std::thread([this] { loop(); });
  }

  ~WatchdogMonitor() {
    if (!enabled_) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(20));
      if (stop_) return;
      const auto now = std::chrono::steady_clock::now();
      for (WatchdogSlot& slot : slots_) {
        const std::lock_guard<std::mutex> slot_lock(slot.mu);
        if (slot.active && now >= slot.deadline) {
          slot.cancel.store(true, std::memory_order_relaxed);
        }
      }
    }
  }

  std::vector<WatchdogSlot>& slots_;
  bool enabled_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// ---- checkpoint sink -------------------------------------------------------
// Accumulates the manifest plus one record per completed point and rewrites
// the whole file atomically after every append. Only `ok` outcomes are
// persisted: errors and timeouts are re-run on resume (an environment flake
// deserves another chance; a deterministic failure reproduces and is
// re-reported), which also keeps resumed merged output trivially identical
// to an uninterrupted run.

class CheckpointSink {
 public:
  CheckpointSink(std::string path, const CheckpointManifest& manifest)
      : path_(std::move(path)) {
    if (!enabled()) return;
    contents_ = serialize_manifest(manifest) + "\n";
  }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Thread-safe append + flush. Called from workers after each ok point.
  void append(const CheckpointRecord& rec) {
    if (!enabled()) return;
    const std::lock_guard<std::mutex> lock(mu_);
    contents_ += serialize_record(rec) + "\n";
    atomic_write_file(path_, contents_);
  }

  /// Re-persist restored records so a resumed-then-interrupted run keeps
  /// its full progress even if the original file predates this run.
  void seed(const std::vector<CheckpointRecord>& restored) {
    if (!enabled() || restored.empty()) return;
    const std::lock_guard<std::mutex> lock(mu_);
    for (const CheckpointRecord& rec : restored) {
      contents_ += serialize_record(rec) + "\n";
    }
    atomic_write_file(path_, contents_);
  }

 private:
  std::string path_;
  std::mutex mu_;
  std::string contents_;
};

}  // namespace

SweepError::SweepError(std::size_t index, const std::string& label,
                       const PointOutcome& outcome)
    : std::runtime_error(
          "sweep point " + std::to_string(index) +
          (label.empty() ? std::string() : " ('" + label + "')") + " " +
          to_string(outcome.status) +
          (outcome.status == PointStatus::kTimedOut
               ? " at sim time " + std::to_string(outcome.sim_time_ns) +
                     " ns after " + std::to_string(outcome.events_executed) +
                     " events"
               : std::string()) +
          (outcome.error_message.empty()
               ? std::string()
               : ": " + outcome.error_type +
                     (outcome.error_type.empty() ? "" : ": ") +
                     outcome.error_message) +
          (outcome.attempts > 1
               ? " (after " + std::to_string(outcome.attempts) + " attempts)"
               : std::string())),
      point_index(index),
      point_label(label),
      status(outcome.status) {}

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)) {}

SweepReport SweepRunner::run_outcomes(const std::vector<SweepPoint>& points) {
  SweepReport report;
  report.outcomes.resize(points.size());

  std::size_t threads = options_.num_threads != 0
                            ? options_.num_threads
                            : std::thread::hardware_concurrency();
  threads = std::max<std::size_t>(1, std::min(threads, points.size()));

  const auto t0 = std::chrono::steady_clock::now();

  // ---- checkpoint restore ----
  std::vector<std::uint64_t> hashes(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    hashes[i] = hash_point(points[i]);
  }
  CheckpointManifest manifest;
  manifest.num_points = points.size();
  manifest.fingerprint = runner_fingerprint();
  manifest.sweep_name =
      options_.sweep_name.empty() ? "sweep" : options_.sweep_name;
  manifest.sweep_hash = hash_sweep(points);

  CheckpointSink sink(options_.checkpoint_path, manifest);
  std::vector<CheckpointRecord> restored;
  if (sink.enabled()) {
    const LoadedCheckpoint loaded = load_checkpoint(sink.path(), manifest);
    if (loaded.compatible) {
      for (const auto& [index, rec] : loaded.records) {
        if (rec.point_hash != hashes[index]) {
          std::fprintf(stderr,
                       "sweep checkpoint: record for point %zu does not "
                       "match its definition; recomputing it\n",
                       index);
          continue;
        }
        report.outcomes[index] = rec.outcome;
        report.outcomes[index].from_checkpoint = true;
        report.outcomes[index].attempts = 0;
        restored.push_back(rec);
      }
    }
    // Rewrite the file up front: manifest plus surviving records. This is
    // also what truncates an incompatible file.
    sink.seed(restored);
  }

  // ---- the pool ----
  SignalGuard signals(sink.enabled());
  std::vector<WatchdogSlot> slots(threads);
  WatchdogMonitor monitor(slots, options_.budget.wall_seconds);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mu;  // serializes on_progress
  const int max_attempts = std::max(1, options_.max_attempts);
  const bool wall_budget = options_.budget.wall_seconds > 0.0;

  auto run_point = [&](const SweepPoint& point, WatchdogSlot& slot) {
    PointOutcome outcome;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      outcome.attempts = attempt;
      if (wall_budget) {
        const std::lock_guard<std::mutex> lock(slot.mu);
        slot.cancel.store(false, std::memory_order_relaxed);
        slot.deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                options_.budget.wall_seconds));
        slot.active = true;
      }
      try {
        Experiment exp(point.topology, point.config);
        exp.set_run_guard(wall_budget ? &slot.cancel : nullptr,
                          options_.budget.max_events);
        outcome.result = exp.run();
        outcome.status = PointStatus::kOk;
        outcome.error_type.clear();
        outcome.error_message.clear();
      } catch (const ExperimentInterrupted& e) {
        outcome.status = PointStatus::kTimedOut;
        outcome.sim_time_ns = e.sim_time_ns;
        outcome.events_executed = e.events_executed;
      } catch (const std::exception& e) {
        outcome.status = PointStatus::kError;
        outcome.error_type = demangled_type(e);
        outcome.error_message = e.what();
      } catch (...) {
        outcome.status = PointStatus::kError;
        outcome.error_type = "unknown";
        outcome.error_message = "non-std::exception thrown";
      }
      if (wall_budget) {
        const std::lock_guard<std::mutex> lock(slot.mu);
        slot.active = false;
      }
      // Retry policy: only errors, with the same seed. A repeat failure is
      // deterministic; a recovery was an environment flake.
      if (outcome.status != PointStatus::kError) break;
    }
    return outcome;
  };

  auto worker = [&](std::size_t slot_index) {
    WatchdogSlot& slot = slots[slot_index];
    for (;;) {
      if (signals.requested()) return;  // drain: stop claiming new points
      const std::size_t i = next.fetch_add(1);
      if (i >= points.size()) return;

      if (!report.outcomes[i].from_checkpoint) {
        // The whole attempt loop is exception-free by construction (every
        // failure is captured into the outcome), so nothing can escape a
        // worker thread and terminate the process.
        PointOutcome outcome = run_point(points[i], slot);
        if (outcome.ok()) {
          sink.append(CheckpointRecord{i, hashes[i], outcome});
        }
        report.outcomes[i] = std::move(outcome);
      }

      const std::size_t finished = done.fetch_add(1) + 1;
      if (options_.on_progress) {
        const std::lock_guard<std::mutex> lock(progress_mu);
        options_.on_progress(finished, points.size());
      }
    }
  };

  if (threads == 1) {
    worker(0);  // serial reference path: no pool, same code
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back(worker, t);
    }
    for (auto& t : pool) t.join();
  }

  report.interrupted = signals.requested();

  stats_ = SweepStats{};
  stats_.points = points.size();
  stats_.threads = threads;
  stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const PointOutcome& o : report.outcomes) {
    switch (o.status) {
      case PointStatus::kOk: ++stats_.ok; break;
      case PointStatus::kError: ++stats_.errors; break;
      case PointStatus::kTimedOut: ++stats_.timeouts; break;
      case PointStatus::kSkipped: ++stats_.skipped; break;
    }
    if (o.from_checkpoint) ++stats_.restored;
    if (o.attempts > 1) ++stats_.retried;
  }
  report.stats = stats_;

  if (report.interrupted && sink.enabled()) {
    std::fprintf(stderr,
                 "sweep '%s' interrupted: %zu/%zu points completed and "
                 "checkpointed to %s\n"
                 "re-run the same command with DMN_SWEEP_CHECKPOINT=%s to "
                 "resume\n",
                 manifest.sweep_name.c_str(), stats_.ok, stats_.points,
                 sink.path().c_str(), sink.path().c_str());
  }
  return report;
}

std::vector<ExperimentResult> SweepRunner::run(
    const std::vector<SweepPoint>& points) {
  SweepReport report = run_outcomes(points);
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    if (!report.outcomes[i].ok()) {
      throw SweepError(i, points[i].label, report.outcomes[i]);
    }
  }
  std::vector<ExperimentResult> results;
  results.reserve(report.outcomes.size());
  for (PointOutcome& o : report.outcomes) {
    results.push_back(std::move(o.result));
  }
  return results;
}

std::size_t sweep_threads_from_env() {
  if (const char* v = std::getenv("DMN_SWEEP_THREADS")) {
    const long n = std::atol(v);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return 0;  // auto
}

SweepOptions sweep_options_from_env() {
  SweepOptions o;
  o.num_threads = sweep_threads_from_env();
  if (const char* v = std::getenv("DMN_SWEEP_CHECKPOINT")) {
    if (*v != '\0') o.checkpoint_path = v;
  }
  if (const char* v = std::getenv("DMN_SWEEP_POINT_TIMEOUT")) {
    const double s = std::atof(v);
    if (s > 0.0) o.budget.wall_seconds = s;
  }
  if (const char* v = std::getenv("DMN_SWEEP_POINT_MAX_EVENTS")) {
    const long long n = std::atoll(v);
    if (n > 0) o.budget.max_events = static_cast<std::uint64_t>(n);
  }
  if (const char* v = std::getenv("DMN_SWEEP_RETRIES")) {
    const long n = std::atol(v);
    if (n > 0) o.max_attempts = 1 + static_cast<int>(n);
  }
  return o;
}

std::vector<SweepPoint> seed_sweep(const topo::Topology& topology,
                                   const ExperimentConfig& base,
                                   std::uint64_t first_seed,
                                   std::size_t count) {
  std::vector<SweepPoint> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SweepPoint p{topology, base, "seed " + std::to_string(first_seed + i)};
    p.config.seed = first_seed + i;
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace dmn::api
