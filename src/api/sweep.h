#pragma once
// Parallel sweep runner: every figure in the paper is a sweep — the same
// scheme stack rebuilt and re-run across seeds, rates and client counts.
// SweepRunner makes that the first-class unit of work: hand it a vector of
// (topology, config) points and it fans them across a thread pool, one
// Simulator per point, and returns results in point order.
//
// Determinism contract: a point's result depends only on its own topology
// and config (which carries the seed). Points share no mutable state, so a
// sweep run with 1 thread and with N threads produces bit-identical
// results; parallelism only changes wall-clock time.
//
//   std::vector<api::SweepPoint> points;
//   for (std::uint64_t s = 0; s < 16; ++s)
//     points.push_back({topo, with_seed(cfg, s)});
//   api::SweepRunner runner;                      // all hardware threads
//   const auto results = runner.run(points);      // ordered like `points`
//   runner.stats().wall_seconds;                  // for speedup reporting

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "topo/topology.h"

namespace dmn::api {

/// One experiment in a sweep. The topology is held by value so points stay
/// self-contained (a sweep may mutate per-point topologies or share one).
struct SweepPoint {
  topo::Topology topology;
  ExperimentConfig config;
  /// Carried through untouched; benches use it to label printed rows.
  std::string label;
};

struct SweepOptions {
  /// 0 picks std::thread::hardware_concurrency(); the pool never exceeds
  /// the point count. 1 reproduces the serial loop exactly.
  std::size_t num_threads = 0;
  /// Called after each point completes (from worker threads, serialized).
  std::function<void(std::size_t done, std::size_t total)> on_progress;
};

struct SweepStats {
  std::size_t points = 0;
  std::size_t threads = 0;
  double wall_seconds = 0.0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs every point and returns the results in point order. A point that
  /// throws aborts the sweep: remaining points still finish or are skipped,
  /// then the first exception is rethrown on the calling thread.
  std::vector<ExperimentResult> run(const std::vector<SweepPoint>& points);

  /// Wall-clock and pool statistics of the last run().
  const SweepStats& stats() const { return stats_; }

 private:
  SweepOptions options_;
  SweepStats stats_;
};

/// Thread count honouring the DMN_SWEEP_THREADS environment override; used
/// by benches so one knob controls every sweep.
std::size_t sweep_threads_from_env();

/// Convenience builder: `count` copies of (topology, base) whose seeds run
/// first_seed, first_seed+1, ... — the common "N seeds, same scenario"
/// sweep shape.
std::vector<SweepPoint> seed_sweep(const topo::Topology& topology,
                                   const ExperimentConfig& base,
                                   std::uint64_t first_seed,
                                   std::size_t count);

}  // namespace dmn::api
