#pragma once
// Crash-safe parallel sweep runner: every figure in the paper is a sweep —
// the same scheme stack rebuilt and re-run across seeds, rates and client
// counts. SweepRunner makes that the first-class unit of work: hand it a
// vector of (topology, config) points and it fans them across a thread
// pool, one Simulator per point, and returns one PointOutcome per point in
// point order.
//
// Robustness contract (docs/RUNNER.md):
//  * A point that throws is captured as an error outcome with its message
//    and context; it cannot take down the pool or the process, and the
//    other points' results are unaffected. An optional retry-with-same-seed
//    policy distinguishes deterministic failures from environment flakes.
//  * A point that exceeds its wall-clock or simulated-event budget is
//    terminated at a safe event boundary (a monitor thread sets a
//    cooperative cancellation flag the Simulator polls between events) and
//    recorded as timed_out with its last-known sim time and event count.
//  * With a checkpoint file configured, every completed point is persisted
//    via atomic write-then-rename; a restarted run verifies the manifest,
//    restores completed points and re-runs only the rest, producing merged
//    output byte-identical to an uninterrupted run at any thread count.
//  * While checkpointing, SIGINT/SIGTERM drain in-flight points, flush the
//    checkpoint and print a resume hint instead of losing the run.
//
// Determinism contract: a point's outcome depends only on its own topology
// and config (which carries the seed). Points share no mutable state, so a
// sweep run with 1 thread and with N threads produces bit-identical
// results; parallelism only changes wall-clock time.
//
//   std::vector<api::SweepPoint> points;
//   for (std::uint64_t s = 0; s < 16; ++s)
//     points.push_back({topo, with_seed(cfg, s)});
//   api::SweepRunner runner(api::sweep_options_from_env());
//   const auto report = runner.run_outcomes(points);  // ordered like points
//   if (report.ok(0)) use(report.result(0));
//   runner.stats().wall_seconds;                      // speedup reporting

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "topo/topology.h"

namespace dmn::api {

/// One experiment in a sweep. The topology is held by value so points stay
/// self-contained (a sweep may mutate per-point topologies or share one).
struct SweepPoint {
  topo::Topology topology;
  ExperimentConfig config;
  /// Carried through untouched; benches use it to label printed rows.
  std::string label;
};

/// How one sweep point ended.
enum class PointStatus {
  kOk,        // ran to the configured duration; result is valid
  kError,     // an exception escaped the experiment (captured, not fatal)
  kTimedOut,  // wall-clock or event budget exceeded; terminated cooperatively
  kSkipped,   // never ran (graceful shutdown drained the queue first)
};

const char* to_string(PointStatus s);

/// The typed outcome of one sweep point. `result` is meaningful only when
/// `status == kOk` (it is value-initialized otherwise, so aggregate math on
/// a failed point degrades to zeros rather than UB).
struct PointOutcome {
  PointStatus status = PointStatus::kSkipped;
  ExperimentResult result;

  /// Error context (kError): exception type and message.
  std::string error_type;
  std::string error_message;

  /// Last-known progress (kTimedOut): how far the simulation got before the
  /// budget fired.
  TimeNs sim_time_ns = 0;
  std::uint64_t events_executed = 0;

  /// Experiment executions consumed (>1 when the retry policy re-ran the
  /// point); 0 for skipped or checkpoint-restored points.
  int attempts = 0;
  /// True when the outcome was restored from the checkpoint file rather
  /// than recomputed in this process.
  bool from_checkpoint = false;

  bool ok() const { return status == PointStatus::kOk; }
};

/// Per-point execution budgets enforced by the watchdog. Zero disables the
/// corresponding limit.
struct PointBudget {
  /// Wall-clock seconds a single point may run (per attempt).
  double wall_seconds = 0.0;
  /// Simulated-event cap enforced inside the Simulator's run loop.
  std::uint64_t max_events = 0;
};

struct SweepOptions {
  /// 0 picks std::thread::hardware_concurrency(); the pool never exceeds
  /// the point count. 1 reproduces the serial loop exactly.
  std::size_t num_threads = 0;
  /// Called after each point completes (from worker threads, serialized).
  std::function<void(std::size_t done, std::size_t total)> on_progress;

  /// Checkpoint file path; empty disables checkpointing (and signal
  /// handling). See docs/RUNNER.md for the file format.
  std::string checkpoint_path;
  /// Label written into the checkpoint manifest (defaults to "sweep").
  std::string sweep_name;

  PointBudget budget;

  /// Total experiment executions allowed per point: 1 = no retries; k > 1
  /// re-runs an *errored* point with the same seed up to k times. A point
  /// failing every attempt is a deterministic failure; one that recovers
  /// was an environment flake (the outcome records the attempts used).
  /// Timeouts are never retried — re-running a budget overrun wastes
  /// exactly one budget more.
  int max_attempts = 1;
};

struct SweepStats {
  std::size_t points = 0;
  std::size_t threads = 0;
  double wall_seconds = 0.0;

  // Outcome census of the last run (restored counts toward ok).
  std::size_t ok = 0;
  std::size_t errors = 0;
  std::size_t timeouts = 0;
  std::size_t skipped = 0;
  /// Points restored from the checkpoint instead of recomputed.
  std::size_t restored = 0;
  /// Points whose retry policy consumed more than one attempt.
  std::size_t retried = 0;
};

/// Everything run_outcomes() produced, ordered like the input points.
struct SweepReport {
  std::vector<PointOutcome> outcomes;
  SweepStats stats;
  /// True when SIGINT/SIGTERM drained the run early (some points skipped).
  bool interrupted = false;

  bool ok(std::size_t i) const { return outcomes[i].ok(); }
  bool all_ok() const {
    for (const PointOutcome& o : outcomes) {
      if (!o.ok()) return false;
    }
    return true;
  }
  /// The result of point `i` (zeros when the point did not complete).
  const ExperimentResult& result(std::size_t i) const {
    return outcomes[i].result;
  }
};

/// Thrown by SweepRunner::run() (the strict all-or-nothing API) when any
/// point did not complete: names the first failing point's index, label and
/// captured error so callers see *which* config failed.
class SweepError : public std::runtime_error {
 public:
  SweepError(std::size_t index, const std::string& label,
             const PointOutcome& outcome);

  std::size_t point_index = 0;
  std::string point_label;
  PointStatus status = PointStatus::kError;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs every point (restoring checkpointed ones when configured) and
  /// returns the per-point outcomes in point order. Never throws for a
  /// point failure — errors, timeouts and skips are data in the report.
  SweepReport run_outcomes(const std::vector<SweepPoint>& points);

  /// Strict wrapper: runs every point and returns the results in point
  /// order, or throws SweepError describing the first point that did not
  /// complete ok.
  std::vector<ExperimentResult> run(const std::vector<SweepPoint>& points);

  /// Wall-clock, pool and outcome statistics of the last run.
  const SweepStats& stats() const { return stats_; }

 private:
  SweepOptions options_;
  SweepStats stats_;
};

/// Thread count honouring the DMN_SWEEP_THREADS environment override; used
/// by benches so one knob controls every sweep.
std::size_t sweep_threads_from_env();

/// Options populated from the runner's environment knobs, the one-liner
/// every bench uses (docs/RUNNER.md):
///   DMN_SWEEP_THREADS           pool size (default: all hardware threads)
///   DMN_SWEEP_CHECKPOINT        checkpoint file path (enables resume)
///   DMN_SWEEP_POINT_TIMEOUT     per-point wall-clock budget, seconds
///   DMN_SWEEP_POINT_MAX_EVENTS  per-point simulated-event budget
///   DMN_SWEEP_RETRIES           extra attempts for errored points
SweepOptions sweep_options_from_env();

/// Convenience builder: `count` copies of (topology, base) whose seeds run
/// first_seed, first_seed+1, ... — the common "N seeds, same scenario"
/// sweep shape.
std::vector<SweepPoint> seed_sweep(const topo::Topology& topology,
                                   const ExperimentConfig& base,
                                   std::uint64_t first_seed,
                                   std::size_t count);

}  // namespace dmn::api
