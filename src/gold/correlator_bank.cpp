#include "gold/correlator_bank.h"

#include <algorithm>
#include <cmath>

namespace {

/// 4-wide double vector (GCC/Clang vector extension). On AVX targets this
/// is one ymm register; elsewhere the compiler lowers it to register
/// pairs, so the code stays portable.
typedef double V4 __attribute__((vector_size(32), aligned(8)));

inline V4 v4_load(const double* p) {
  V4 r;
  __builtin_memcpy(&r, p, sizeof r);
  return r;
}

inline void v4_store(double* p, V4 v) { __builtin_memcpy(p, &v, sizeof v); }

/// Correlates 4*G consecutive lags in one pass over the chips, holding the
/// 2*G vector accumulators in registers (independent dependency chains
/// that keep the FMA pipeline full). Lane j of group g accumulates lag
/// 4g+j in chip order — exactly the reference sliding-correlator order.
/// Written with explicit vectors because the autovectorizer either
/// transposes the chip loop (shuffle storm) or scalarizes the unaligned
/// group loads.
template <int G>
void corr_block(const double* tmpl, std::size_t len, const double* re,
                const double* im, double* out_re, double* out_im) {
  V4 ar[G] = {};
  V4 ai[G] = {};
  for (std::size_t n = 0; n < len; ++n) {
    const double c = tmpl[n];
    const V4 vc = {c, c, c, c};
    for (int g = 0; g < G; ++g) {
      ar[g] += vc * v4_load(re + n + 4 * g);
      ai[g] += vc * v4_load(im + n + 4 * g);
    }
  }
  for (int g = 0; g < G; ++g) {
    v4_store(out_re + 4 * g, ar[g]);
    v4_store(out_im + 4 * g, ai[g]);
  }
}

/// Zero padding appended to the scratch sample arrays so a partial final
/// lag group can read (and discard) up to 3 lags past the real range.
constexpr std::size_t kLagPad = 8;

}  // namespace

namespace dmn::gold {

CorrelatorBank::CorrelatorBank(const GoldCodeSet& set) : set_(set) {
  const std::size_t len = set_.length();
  templates_.resize(set_.size() * len);
  for (std::size_t i = 0; i < set_.size(); ++i) {
    const auto chips = set_.code(i);
    for (std::size_t n = 0; n < len; ++n) {
      templates_[i * len + n] = static_cast<double>(chips[n]);
    }
  }
}

std::span<const dsp::Cplx> CorrelatorBank::combined_template(
    std::span<const std::size_t> code_indices) const {
  std::vector<std::size_t> key(code_indices.begin(), code_indices.end());
  auto it = combined_cache_.find(key);
  if (it == combined_cache_.end()) {
    std::vector<dsp::Cplx> out(set_.length(), dsp::Cplx(0.0, 0.0));
    for (const std::size_t idx : code_indices) {
      const auto tmpl = chip_template(idx);
      for (std::size_t n = 0; n < tmpl.size(); ++n) {
        out[n] += dsp::Cplx(tmpl[n], 0.0);
      }
    }
    it = combined_cache_.emplace(std::move(key), std::move(out)).first;
  }
  return it->second;
}

double CorrelatorBank::load_rx(std::span<const dsp::Cplx> rx) const {
  scratch_.re.assign(rx.size() + kLagPad, 0.0);
  scratch_.im.assign(rx.size() + kLagPad, 0.0);
  for (std::size_t n = 0; n < rx.size(); ++n) {
    scratch_.re[n] = rx[n].real();
    scratch_.im[n] = rx[n].imag();
  }
  // Per-chip RMS over one code length: the shared energy reference of the
  // two-part decision (identical expression to the reference correlator).
  return std::sqrt(dsp::mean_power(rx.subspan(0, set_.length())));
}

DetectionResult CorrelatorBank::detect_loaded(std::size_t code_index,
                                              std::size_t rx_size, double rms,
                                              double cfar_factor,
                                              std::size_t max_lag) const {
  const std::size_t len = set_.length();
  DetectionResult result;
  if (rx_size < len) return result;

  const std::size_t lags = std::min(max_lag + 1, rx_size - len + 1);
  // Register-blocked correlation (see corr_block), whole lag range in one
  // pass. The lag range is rounded up to whole 4-lag groups; the zero
  // padding appended by load_rx (kLagPad) makes the extra loads legal, and
  // the padded lags are simply never read back (the magnitude loop stops
  // at `lags`). The default detection window (max_lag=16, 17 lags) is a
  // single corr_block<5> call.
  const std::size_t groups = (lags + 3) / 4;
  scratch_.acc_re.resize(groups * 4);
  scratch_.acc_im.resize(groups * 4);
  const double* tmpl = templates_.data() + code_index * len;
  const double* re = scratch_.re.data();
  const double* im = scratch_.im.data();
  double* acc_re = scratch_.acc_re.data();
  double* acc_im = scratch_.acc_im.data();
  switch (groups) {
    case 1: corr_block<1>(tmpl, len, re, im, acc_re, acc_im); break;
    case 2: corr_block<2>(tmpl, len, re, im, acc_re, acc_im); break;
    case 3: corr_block<3>(tmpl, len, re, im, acc_re, acc_im); break;
    case 4: corr_block<4>(tmpl, len, re, im, acc_re, acc_im); break;
    case 5: corr_block<5>(tmpl, len, re, im, acc_re, acc_im); break;
    default: {
      // Wide searches: stride over 4-group (16-lag) blocks, with an
      // overlapped flush for the remainder (overlapping lags recompute
      // identical values, which beats a scalar tail loop).
      std::size_t g = 0;
      for (; g + 4 <= groups; g += 4) {
        corr_block<4>(tmpl, len, re + 4 * g, im + 4 * g, acc_re + 4 * g,
                      acc_im + 4 * g);
      }
      if (g < groups) {
        g = groups - 4;
        corr_block<4>(tmpl, len, re + 4 * g, im + 4 * g, acc_re + 4 * g,
                      acc_im + 4 * g);
      }
      break;
    }
  }

  // Magnitude via sqrt(re^2 + im^2) rather than std::abs(complex): the
  // libm hypot behind std::abs defends against overflow at extreme scales
  // that correlation sums (O(len) of O(1) samples) cannot reach, at ~10x
  // the cost. The two round within 1 ulp of each other here, far inside
  // the golden-test tolerance.
  scratch_.mags.resize(lags);
  for (std::size_t l = 0; l < lags; ++l) {
    scratch_.mags[l] = std::sqrt(acc_re[l] * acc_re[l] +
                                 acc_im[l] * acc_im[l]) /
                       static_cast<double>(len);
  }
  auto& mags = scratch_.mags;
  const auto peak_it = std::max_element(mags.begin(), mags.end());
  result.peak_metric = *peak_it;
  result.lag = static_cast<std::size_t>(peak_it - mags.begin());

  // CFAR floor: median of off-peak magnitudes. With few lags available we
  // fall back to the mean of the non-peak values.
  auto& rest = scratch_.rest;
  rest.clear();
  for (std::size_t i = 0; i < mags.size(); ++i) {
    if (i != result.lag) rest.push_back(mags[i]);
  }
  if (rest.empty()) {
    // Degenerate single-lag case: compare against the per-chip RMS of rx,
    // which is what a hardware energy estimator would report.
    result.floor_metric = rms / std::sqrt(static_cast<double>(len));
  } else {
    std::nth_element(rest.begin(), rest.begin() + rest.size() / 2, rest.end());
    result.floor_metric = rest[rest.size() / 2];
  }

  // Two-part decision, mirroring a hardware correlator front-end:
  //  * CFAR: the peak must stand clear of the off-peak correlation floor;
  //  * energy reference: a genuine signature contributes ~unit correlation
  //    per transmitted code, while Gold cross-correlation peaks stay below
  //    t(m)/N ~ 0.13 of an amplitude unit. Referencing the threshold to the
  //    received RMS rejects those — and makes detection degrade gracefully
  //    as more signatures share the burst (the Figure 9 rolloff).
  result.detected =
      result.peak_metric >
          cfar_factor * std::max(result.floor_metric, 1e-12) &&
      result.peak_metric > 0.25 * rms;
  return result;
}

DetectionResult CorrelatorBank::detect(std::span<const dsp::Cplx> rx,
                                       std::size_t code_index,
                                       double cfar_factor,
                                       std::size_t max_lag) const {
  if (rx.size() < set_.length()) return DetectionResult{};
  const double rms = load_rx(rx);
  return detect_loaded(code_index, rx.size(), rms, cfar_factor, max_lag);
}

void CorrelatorBank::detect_many(std::span<const dsp::Cplx> rx,
                                 std::span<const std::size_t> code_indices,
                                 std::vector<DetectionResult>& out,
                                 double cfar_factor,
                                 std::size_t max_lag) const {
  out.clear();
  out.reserve(code_indices.size());
  if (rx.size() < set_.length()) {
    out.resize(code_indices.size());
    return;
  }
  const double rms = load_rx(rx);
  for (const std::size_t code : code_indices) {
    out.push_back(detect_loaded(code, rx.size(), rms, cfar_factor, max_lag));
  }
}

}  // namespace dmn::gold
