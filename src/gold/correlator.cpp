#include "gold/correlator.h"

#include <cmath>

#include "dsp/channel.h"

namespace dmn::gold {

std::vector<dsp::Cplx> combine_signatures(
    const GoldCodeSet& set, std::span<const std::size_t> code_indices) {
  std::vector<dsp::Cplx> out(set.length(), dsp::Cplx(0.0, 0.0));
  for (std::size_t idx : code_indices) {
    const auto chips = set.code(idx);
    for (std::size_t n = 0; n < chips.size(); ++n) {
      out[n] += dsp::Cplx(static_cast<double>(chips[n]), 0.0);
    }
  }
  return out;
}

namespace {

std::vector<dsp::Cplx> synthesize_burst_impl(
    std::size_t code_length, std::span<const BurstSender> senders,
    std::span<const dsp::Cplx>* combined,  // one per sender
    double noise_power, std::size_t pad, Rng& rng) {
  std::vector<dsp::Cplx> rx(code_length + pad, dsp::Cplx(0.0, 0.0));
  for (std::size_t s = 0; s < senders.size(); ++s) {
    const BurstSender& snd = senders[s];
    const auto burst = combined[s];
    const dsp::Cplx rot = snd.amplitude * dsp::Cplx(std::cos(snd.phase_rad),
                                                    std::sin(snd.phase_rad));
    for (std::size_t n = 0; n < burst.size(); ++n) {
      const std::size_t at = n + snd.chip_offset;
      if (at < rx.size()) rx[at] += burst[n] * rot;
    }
  }
  dsp::add_awgn(rx, noise_power, rng);
  return rx;
}

}  // namespace

std::vector<dsp::Cplx> synthesize_burst(const GoldCodeSet& set,
                                        std::span<const BurstSender> senders,
                                        double noise_power, std::size_t pad,
                                        Rng& rng) {
  std::vector<std::vector<dsp::Cplx>> own;
  std::vector<std::span<const dsp::Cplx>> combined;
  own.reserve(senders.size());
  combined.reserve(senders.size());
  for (const BurstSender& s : senders) {
    own.push_back(combine_signatures(set, s.codes));
    combined.emplace_back(own.back());
  }
  return synthesize_burst_impl(set.length(), senders, combined.data(),
                               noise_power, pad, rng);
}

std::vector<dsp::Cplx> synthesize_burst(const CorrelatorBank& bank,
                                        std::span<const BurstSender> senders,
                                        double noise_power, std::size_t pad,
                                        Rng& rng) {
  std::vector<std::span<const dsp::Cplx>> combined;
  combined.reserve(senders.size());
  for (const BurstSender& s : senders) {
    combined.push_back(bank.combined_template(s.codes));
  }
  return synthesize_burst_impl(bank.set().length(), senders, combined.data(),
                               noise_power, pad, rng);
}

}  // namespace dmn::gold
