#include "gold/correlator.h"

#include <algorithm>
#include <cmath>

#include "dsp/channel.h"

namespace dmn::gold {

std::vector<dsp::Cplx> combine_signatures(
    const GoldCodeSet& set, std::span<const std::size_t> code_indices) {
  std::vector<dsp::Cplx> out(set.length(), dsp::Cplx(0.0, 0.0));
  for (std::size_t idx : code_indices) {
    const auto chips = set.code(idx);
    for (std::size_t n = 0; n < chips.size(); ++n) {
      out[n] += dsp::Cplx(static_cast<double>(chips[n]), 0.0);
    }
  }
  return out;
}

DetectionResult Correlator::detect(std::span<const dsp::Cplx> rx,
                                   std::size_t code_index) const {
  const auto chips = set_.code(code_index);
  const std::size_t len = chips.size();
  DetectionResult result;
  if (rx.size() < len) return result;

  const std::size_t lags = std::min(max_lag_ + 1, rx.size() - len + 1);
  std::vector<double> mags(lags);
  for (std::size_t lag = 0; lag < lags; ++lag) {
    dsp::Cplx acc(0.0, 0.0);
    for (std::size_t n = 0; n < len; ++n) {
      acc += rx[lag + n] * static_cast<double>(chips[n]);
    }
    mags[lag] = std::abs(acc) / static_cast<double>(len);
  }

  const auto peak_it = std::max_element(mags.begin(), mags.end());
  result.peak_metric = *peak_it;
  result.lag = static_cast<std::size_t>(peak_it - mags.begin());

  // CFAR floor: median of off-peak magnitudes. With few lags available we
  // fall back to the mean of the non-peak values.
  std::vector<double> rest;
  rest.reserve(mags.size());
  for (std::size_t i = 0; i < mags.size(); ++i) {
    if (i != result.lag) rest.push_back(mags[i]);
  }
  if (rest.empty()) {
    // Degenerate single-lag case: compare against the per-chip RMS of rx,
    // which is what a hardware energy estimator would report.
    double rms = std::sqrt(dsp::mean_power(rx.subspan(0, len)));
    result.floor_metric = rms / std::sqrt(static_cast<double>(len));
  } else {
    std::nth_element(rest.begin(), rest.begin() + rest.size() / 2, rest.end());
    result.floor_metric = rest[rest.size() / 2];
  }

  // Two-part decision, mirroring a hardware correlator front-end:
  //  * CFAR: the peak must stand clear of the off-peak correlation floor;
  //  * energy reference: a genuine signature contributes ~unit correlation
  //    per transmitted code, while Gold cross-correlation peaks stay below
  //    t(m)/N ~ 0.13 of an amplitude unit. Referencing the threshold to the
  //    received RMS rejects those — and makes detection degrade gracefully
  //    as more signatures share the burst (the Figure 9 rolloff).
  const double rms = std::sqrt(dsp::mean_power(rx.subspan(0, len)));
  result.detected =
      result.peak_metric >
          cfar_factor_ * std::max(result.floor_metric, 1e-12) &&
      result.peak_metric > 0.25 * rms;
  return result;
}

std::vector<dsp::Cplx> synthesize_burst(const GoldCodeSet& set,
                                        std::span<const BurstSender> senders,
                                        double noise_power, std::size_t pad,
                                        Rng& rng) {
  std::vector<dsp::Cplx> rx(set.length() + pad, dsp::Cplx(0.0, 0.0));
  for (const BurstSender& s : senders) {
    const auto burst = combine_signatures(set, s.codes);
    const dsp::Cplx rot =
        s.amplitude * dsp::Cplx(std::cos(s.phase_rad), std::sin(s.phase_rad));
    for (std::size_t n = 0; n < burst.size(); ++n) {
      const std::size_t at = n + s.chip_offset;
      if (at < rx.size()) rx[at] += burst[n] * rot;
    }
  }
  dsp::add_awgn(rx, noise_power, rng);
  return rx;
}

}  // namespace dmn::gold
