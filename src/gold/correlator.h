#pragma once
// Chip-level signature modulation and correlation detection.
//
// Reproduces the paper's USRP signature study (Figure 9): each triggering
// node broadcasts the *sum* of up to four Gold-code signatures as one BPSK
// burst; a prospective next transmitter runs a correlator for its own
// signature and fires when it detects it. Detection must survive other
// triggering nodes transmitting concurrently with unknown phase and a few
// chips of timing skew.
//
// The heavy lifting lives in CorrelatorBank (correlator_bank.h), which
// pre-bakes chip templates once per GoldCodeSet; Correlator is the
// single-code convenience facade, and synthesize_burst has a bank-backed
// overload that reuses cached combined-signature templates.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "gold/correlator_bank.h"
#include "gold/gold_code.h"
#include "util/rng.h"

namespace dmn::gold {

/// Baseband samples (1 sample per chip) for the sum of the given codes.
/// Matches the protocol's combined trigger: when one node must trigger
/// several next transmitters it adds their signature samples (§3.2).
std::vector<dsp::Cplx> combine_signatures(
    const GoldCodeSet& set, std::span<const std::size_t> code_indices);

/// Sliding correlator with a CFAR (constant false-alarm rate) threshold:
/// the peak must exceed `cfar_factor` times the median off-peak correlation
/// magnitude. This is self-calibrating — the receiver needs no knowledge of
/// absolute signal amplitude, exactly like a hardware correlator front-end.
class Correlator {
 public:
  explicit Correlator(const GoldCodeSet& set, double cfar_factor = 4.0,
                      std::size_t max_lag = 16)
      : bank_(set), cfar_factor_(cfar_factor), max_lag_(max_lag) {}

  /// Looks for code `code_index` inside `rx` (rx.size() >= code length +
  /// max_lag for full search).
  DetectionResult detect(std::span<const dsp::Cplx> rx,
                         std::size_t code_index) const {
    return bank_.detect(rx, code_index, cfar_factor_, max_lag_);
  }

  /// One-pass batch over several candidate codes (see
  /// CorrelatorBank::detect_many).
  void detect_many(std::span<const dsp::Cplx> rx,
                   std::span<const std::size_t> code_indices,
                   std::vector<DetectionResult>& out) const {
    bank_.detect_many(rx, code_indices, out, cfar_factor_, max_lag_);
  }

  const CorrelatorBank& bank() const { return bank_; }

 private:
  CorrelatorBank bank_;
  double cfar_factor_;
  std::size_t max_lag_;
};

/// One sender in a trigger-burst experiment.
struct BurstSender {
  std::vector<std::size_t> codes;  // signatures this sender combines
  double amplitude = 1.0;          // linear amplitude at the receiver
  std::size_t chip_offset = 0;     // timing skew in chips
  double phase_rad = 0.0;          // carrier phase at the receiver
};

/// Synthesizes the received burst: sum over senders of (combined signatures
/// * amplitude * e^{j phase}, delayed by chip_offset) + AWGN of power
/// `noise_power`. Output length = code length + pad.
std::vector<dsp::Cplx> synthesize_burst(const GoldCodeSet& set,
                                        std::span<const BurstSender> senders,
                                        double noise_power, std::size_t pad,
                                        Rng& rng);

/// Bank-backed synthesis: combined-signature templates come from the bank's
/// cache instead of being rebuilt per burst. Identical output (the chip
/// sums are exact integer arithmetic in double).
std::vector<dsp::Cplx> synthesize_burst(const CorrelatorBank& bank,
                                        std::span<const BurstSender> senders,
                                        double noise_power, std::size_t pad,
                                        Rng& rng);

}  // namespace dmn::gold
