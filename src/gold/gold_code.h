#pragma once
// Gold code sets.
//
// A degree-m preferred pair (u, v) yields 2^m + 1 Gold sequences:
// {u, v, u ^ T^k v : k = 0..2^m-2}. For m = 7 that is the paper's set of
// 129 length-127 codes: two are reserved (START signature S' and the ROP
// signature), leaving 127 node signatures per collision domain.
//
// Cross-correlation between any two distinct codes is three-valued
// {-1, -t(m), t(m)-2} with t(m) = 2^((m+1)/2) + 1 for odd m (t(7) = 17),
// giving the detection margin relative to the autocorrelation peak 2^m - 1.

#include <cstdint>
#include <span>
#include <vector>

namespace dmn::gold {

using Chips = std::vector<std::int8_t>;  // +1 / -1 chips

class GoldCodeSet {
 public:
  /// Builds the full set for `degree` (must have a preferred pair).
  explicit GoldCodeSet(int degree);

  int degree() const { return degree_; }
  std::size_t length() const { return length_; }    // chips per code
  std::size_t size() const { return codes_.size(); }  // number of codes

  /// Code index `i` in [0, size()).
  std::span<const std::int8_t> code(std::size_t i) const;

  /// Theoretical bound t(m) on |cross-correlation| for odd degree.
  int t_bound() const;

  /// Airtime of one signature at `bandwidth_hz` chips/sec with BPSK
  /// (1 chip per sample): length / bandwidth, in nanoseconds.
  /// For degree 7 at 20 MHz this is 6.35 us, matching §3.2.
  std::int64_t duration_ns(double bandwidth_hz) const;

  /// Periodic cross-correlation of codes i and j at `shift` (raw sum).
  int xcorr(std::size_t i, std::size_t j, std::size_t shift) const;

  /// Maximum |periodic cross-correlation| of codes i and j over all shifts.
  int max_abs_xcorr(std::size_t i, std::size_t j) const;

 private:
  int degree_;
  std::size_t length_;
  std::vector<Chips> codes_;
};

/// Index conventions used by DOMINO for the degree-7 set (129 codes):
/// codes [0, 126] are node signatures; 127 is the START signature S';
/// 128 is the ROP signature.
inline constexpr std::size_t kStartSignatureIndex = 127;
inline constexpr std::size_t kRopSignatureIndex = 128;
inline constexpr std::size_t kMaxNodesPerDomain = 127;

}  // namespace dmn::gold
