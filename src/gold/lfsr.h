#pragma once
// Fibonacci LFSRs and maximal-length (m-) sequences.
//
// Gold codes (used as DOMINO node signatures, §3.2) are built from XORs of a
// "preferred pair" of m-sequences. This module generates m-sequences for the
// degrees with known preferred pairs.

#include <cstdint>
#include <vector>

namespace dmn::gold {

/// A Fibonacci LFSR over GF(2), expressed as the direct linear recurrence
///   b_n = XOR over taps t of b_{n-t},
/// so `taps` = {7, 3} realizes x^7 + x^3 + 1 unambiguously. The history
/// starts all-ones.
class Lfsr {
 public:
  Lfsr(int degree, std::vector<int> taps);

  /// Advances one step and returns the output bit (0/1).
  int next_bit();

  int degree() const { return degree_; }

 private:
  int degree_;
  std::vector<int> taps_;
  std::vector<int> hist_;  // hist_[k] = b_{n-1-k}
};

/// Generates one period (2^degree - 1 bits) of the m-sequence defined by
/// `taps`. Throws std::invalid_argument if the polynomial is not primitive
/// (detected by a short period).
std::vector<int> m_sequence(int degree, const std::vector<int>& taps);

/// Preferred pair of primitive polynomials for Gold construction.
/// Supported degrees: 5, 6, 7, 9, 10. Degree 7 gives the paper's length-127
/// set. (Degrees divisible by 4 — e.g. 8, hence length 255 — have no
/// preferred pairs; see DESIGN.md fidelity notes.)
struct PreferredPair {
  std::vector<int> taps_u;
  std::vector<int> taps_v;
};
PreferredPair preferred_pair(int degree);

/// True if a preferred pair is available for this degree.
bool has_preferred_pair(int degree);

}  // namespace dmn::gold
