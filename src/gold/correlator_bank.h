#pragma once
// Pre-baked correlation bank for a GoldCodeSet.
//
// The sliding correlator's hot loop multiplies received samples by ±1
// chips. The bank bakes every code's chips into a real-valued (±1.0)
// template once per set, caches combined-signature baseband templates (the
// sum a trigger node broadcasts when it must fire several next
// transmitters, §3.2), and keeps reusable scratch buffers, so per-burst
// detection does no allocation and no per-chip integer conversion.
//
// The correlation kernel processes lags in register-blocked groups, with
// each lag's accumulator summed in chip order — exactly the reference
// per-lag order — and takes magnitudes as sqrt(re^2+im^2) instead of the
// overflow-guarded libm hypot. Every DetectionResult therefore matches the
// straightforward sliding correlator pinned by tests/golden_test.cpp to
// within an ulp (identical decisions and lags in practice).

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "dsp/fft.h"
#include "gold/gold_code.h"

namespace dmn::gold {

struct DetectionResult {
  bool detected = false;
  double peak_metric = 0.0;   // peak |correlation| normalized by code length
  double floor_metric = 0.0;  // CFAR noise-floor estimate
  std::size_t lag = 0;        // lag of the peak
};

class CorrelatorBank {
 public:
  explicit CorrelatorBank(const GoldCodeSet& set);

  const GoldCodeSet& set() const { return set_; }

  /// Code `i`'s chips as ±1.0 doubles (the baked template).
  std::span<const double> chip_template(std::size_t i) const {
    return {templates_.data() + i * set_.length(), set_.length()};
  }

  /// Baseband samples (1 sample per chip) for the sum of the given codes,
  /// baked on first use per distinct combination and cached. The sum of ±1
  /// chips is exact integer arithmetic in double, so the cached template is
  /// identical to summing on the fly.
  std::span<const dsp::Cplx> combined_template(
      std::span<const std::size_t> code_indices) const;

  /// Looks for code `code_index` inside `rx` (rx.size() >= code length +
  /// max_lag for full search). Same decision procedure as the reference
  /// sliding correlator: CFAR against the median off-peak magnitude plus an
  /// energy reference against the received RMS.
  DetectionResult detect(std::span<const dsp::Cplx> rx,
                         std::size_t code_index, double cfar_factor = 4.0,
                         std::size_t max_lag = 16) const;

  /// Correlates all candidate codes over one burst in a single pass: the
  /// structure-of-arrays conversion of `rx` and the per-burst RMS are
  /// computed once and shared, and results land in `out` (resized to
  /// codes.size()).
  void detect_many(std::span<const dsp::Cplx> rx,
                   std::span<const std::size_t> code_indices,
                   std::vector<DetectionResult>& out,
                   double cfar_factor = 4.0, std::size_t max_lag = 16) const;

 private:
  /// Splits rx into the re/im scratch arrays and returns the RMS over the
  /// first `len` samples (the shared energy reference).
  double load_rx(std::span<const dsp::Cplx> rx) const;
  DetectionResult detect_loaded(std::size_t code_index, std::size_t rx_size,
                                double rms, double cfar_factor,
                                std::size_t max_lag) const;

  const GoldCodeSet& set_;
  std::vector<double> templates_;  // size() x length(), row-major ±1.0

  // Reusable per-burst scratch. Mutable: the bank is logically const while
  // detecting; the scratch is an implementation detail.
  struct Scratch {
    std::vector<double> re, im;          // SoA copy of the burst
    std::vector<double> acc_re, acc_im;  // per-lag accumulators
    std::vector<double> mags, rest;      // magnitudes / CFAR workspace
  };
  mutable Scratch scratch_;
  mutable std::map<std::vector<std::size_t>, std::vector<dsp::Cplx>>
      combined_cache_;
};

}  // namespace dmn::gold
