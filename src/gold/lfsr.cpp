#include "gold/lfsr.h"

#include <stdexcept>

namespace dmn::gold {

Lfsr::Lfsr(int degree, std::vector<int> taps)
    : degree_(degree), taps_(std::move(taps)) {
  if (degree < 2 || degree > 24) {
    throw std::invalid_argument("Lfsr: degree out of range");
  }
  for (int t : taps_) {
    if (t < 1 || t > degree) {
      throw std::invalid_argument("Lfsr: tap out of range");
    }
  }
  hist_.assign(static_cast<std::size_t>(degree), 1);  // all ones
}

int Lfsr::next_bit() {
  int nb = 0;
  for (int t : taps_) nb ^= hist_[static_cast<std::size_t>(t - 1)];
  // Shift history: hist_[0] becomes the newest bit.
  for (std::size_t k = hist_.size() - 1; k > 0; --k) hist_[k] = hist_[k - 1];
  hist_[0] = nb;
  return nb;
}

std::vector<int> m_sequence(int degree, const std::vector<int>& taps) {
  const std::size_t period = (std::size_t{1} << degree) - 1;
  Lfsr reg(degree, taps);
  std::vector<int> seq(period);
  for (std::size_t i = 0; i < period; ++i) seq[i] = reg.next_bit();

  // Verify maximality: regenerate and check that the state cycles with the
  // full period. A primitive polynomial visits all 2^degree - 1 non-zero
  // states; a shorter cycle would repeat the prefix.
  Lfsr check(degree, taps);
  for (std::size_t i = 0; i < period; ++i) check.next_bit();
  // After one full period the output must repeat exactly.
  Lfsr again(degree, taps);
  std::vector<int> second(period);
  for (std::size_t i = 0; i < period; ++i) again.next_bit();
  for (std::size_t i = 0; i < period; ++i) second[i] = again.next_bit();
  if (second != seq) {
    throw std::invalid_argument("m_sequence: polynomial is not primitive");
  }
  return seq;
}

PreferredPair preferred_pair(int degree) {
  switch (degree) {
    case 5:
      return {{5, 2}, {5, 4, 3, 2}};
    case 6:
      return {{6, 1}, {6, 5, 2, 1}};
    case 7:
      return {{7, 3}, {7, 3, 2, 1}};
    case 9:
      return {{9, 4}, {9, 6, 4, 3}};
    case 10:
      return {{10, 3}, {10, 8, 3, 2}};
    default:
      throw std::invalid_argument(
          "preferred_pair: no preferred pair for this degree "
          "(degrees divisible by 4 have none)");
  }
}

bool has_preferred_pair(int degree) {
  switch (degree) {
    case 5:
    case 6:
    case 7:
    case 9:
    case 10:
      return true;
    default:
      return false;
  }
}

}  // namespace dmn::gold
