#include "gold/gold_code.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "gold/lfsr.h"
#include "util/time.h"

namespace dmn::gold {
namespace {

Chips to_chips(const std::vector<int>& bits) {
  Chips c(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    c[i] = bits[i] ? std::int8_t{-1} : std::int8_t{1};  // BPSK: 0 -> +1, 1 -> -1
  }
  return c;
}

}  // namespace

GoldCodeSet::GoldCodeSet(int degree) : degree_(degree) {
  const PreferredPair pair = preferred_pair(degree);
  const std::vector<int> u = m_sequence(degree, pair.taps_u);
  const std::vector<int> v = m_sequence(degree, pair.taps_v);
  length_ = u.size();

  codes_.reserve(length_ + 2);
  codes_.push_back(to_chips(u));
  codes_.push_back(to_chips(v));
  for (std::size_t k = 0; k < length_; ++k) {
    std::vector<int> w(length_);
    for (std::size_t n = 0; n < length_; ++n) {
      w[n] = u[n] ^ v[(n + k) % length_];
    }
    codes_.push_back(to_chips(w));
  }
}

std::span<const std::int8_t> GoldCodeSet::code(std::size_t i) const {
  if (i >= codes_.size()) throw std::out_of_range("GoldCodeSet::code");
  return codes_[i];
}

int GoldCodeSet::t_bound() const {
  if (degree_ % 2 == 1) {
    return (1 << ((degree_ + 1) / 2)) + 1;
  }
  // Even degree not divisible by 4: t(m) = 2^((m+2)/2) + 1.
  return (1 << ((degree_ + 2) / 2)) + 1;
}

std::int64_t GoldCodeSet::duration_ns(double bandwidth_hz) const {
  return static_cast<std::int64_t>(
      std::llround(static_cast<double>(length_) / bandwidth_hz * 1e9));
}

int GoldCodeSet::xcorr(std::size_t i, std::size_t j, std::size_t shift) const {
  const Chips& a = codes_.at(i);
  const Chips& b = codes_.at(j);
  int acc = 0;
  for (std::size_t n = 0; n < length_; ++n) {
    acc += static_cast<int>(a[n]) * static_cast<int>(b[(n + shift) % length_]);
  }
  return acc;
}

int GoldCodeSet::max_abs_xcorr(std::size_t i, std::size_t j) const {
  int best = 0;
  for (std::size_t s = 0; s < length_; ++s) {
    best = std::max(best, std::abs(xcorr(i, j, s)));
  }
  return best;
}

}  // namespace dmn::gold
