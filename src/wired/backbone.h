#pragma once
// The wired backbone between APs and the central server.
//
// The paper models per-message latency as Normal(mean 285 us, sigma 22 us)
// following CENTAUR's measurements, and sweeps sigma 20-80 us for the
// misalignment study (Figure 11). This jitter is exactly what breaks strict
// scheduling and what Relative Scheduling tolerates.

#include <functional>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace dmn::wired {

struct BackboneParams {
  TimeNs mean_latency = usec(285);
  TimeNs sigma_latency = usec(22);
  TimeNs min_latency = usec(20);  // physical floor; Normal tail clamp
};

class Backbone {
 public:
  Backbone(sim::Simulator& sim, const BackboneParams& params, Rng rng)
      : sim_(sim), params_(params), rng_(std::move(rng)) {}

  /// Delivers `fn` after one sampled one-way latency.
  void send(std::function<void()> fn);

  /// One latency sample (exposed for tests and the Fig-11 study).
  TimeNs sample_latency();

  const BackboneParams& params() const { return params_; }

 private:
  sim::Simulator& sim_;
  BackboneParams params_;
  Rng rng_;
};

}  // namespace dmn::wired
