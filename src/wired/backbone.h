#pragma once
// The wired backbone between APs and the central server.
//
// The paper models per-message latency as Normal(mean 285 us, sigma 22 us)
// following CENTAUR's measurements, and sweeps sigma 20-80 us for the
// misalignment study (Figure 11). This jitter is exactly what breaks strict
// scheduling and what Relative Scheduling tolerates.
//
// Every message — controller dispatch, AP report, CENTAUR release — routes
// through one delivery path: sample the Gaussian latency, ask the optional
// fault hook for a DeliveryMod (drop / duplicate / latency spike), then
// schedule the surviving copies. Nothing in the system may assume a
// backbone message arrives exactly once.

#include <functional>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace dmn::wired {

struct BackboneParams {
  TimeNs mean_latency = usec(285);
  TimeNs sigma_latency = usec(22);
  TimeNs min_latency = usec(20);  // physical floor; Normal tail clamp
};

/// Fault verdict for one message: how many copies to deliver (0 = dropped,
/// 2 = duplicated) and extra latency added to every copy (a spike). The
/// default is the unimpaired single on-time delivery.
struct DeliveryMod {
  unsigned copies = 1;
  TimeNs extra_latency = 0;
};

class Backbone {
 public:
  Backbone(sim::Simulator& sim, const BackboneParams& params, Rng rng)
      : sim_(sim), params_(params), rng_(std::move(rng)) {}

  /// Installs the fault hook consulted once per send(). Null (the default)
  /// means every message is delivered exactly once.
  using FaultHook = std::function<DeliveryMod()>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Delivers `fn` after one sampled one-way latency — or, under a fault
  /// hook, zero/one/two independently-delayed copies.
  void send(std::function<void()> fn);

  /// One latency sample (exposed for tests and the Fig-11 study).
  TimeNs sample_latency();

  const BackboneParams& params() const { return params_; }

 private:
  sim::Simulator& sim_;
  BackboneParams params_;
  Rng rng_;
  FaultHook fault_hook_;
};

}  // namespace dmn::wired
