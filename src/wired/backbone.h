#pragma once
// The wired backbone between APs and the central server.
//
// The paper models per-message latency as Normal(mean 285 us, sigma 22 us)
// following CENTAUR's measurements, and sweeps sigma 20-80 us for the
// misalignment study (Figure 11). This jitter is exactly what breaks strict
// scheduling and what Relative Scheduling tolerates.
//
// Every message — controller dispatch, AP report, CENTAUR release — routes
// through one delivery path: sample the Gaussian latency, ask the optional
// fault hook for a DeliveryMod (drop / duplicate / latency spike), then
// schedule the surviving copies. Nothing in the system may assume a
// backbone message arrives exactly once.
//
// Partitioned kernel: min_latency is the conservative lookahead bound of
// src/sim/simulator.h, so every delivery — including every faulted copy —
// must take at least min_latency. send_to_node()/send_to_wired() route a
// delivery to the destination's event queue; when the simulator is
// partitioned, each queue samples from its own forked RNG lane so the
// latency stream is a pure function of the sending queue's computation
// (byte-stable at any thread count).

#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "topo/node.h"
#include "util/rng.h"
#include "util/time.h"

namespace dmn::wired {

struct BackboneParams {
  TimeNs mean_latency = usec(285);
  TimeNs sigma_latency = usec(22);
  TimeNs min_latency = usec(20);  // physical floor; Normal tail clamp
};

/// Fault verdict for one message: how many copies to deliver (0 = dropped,
/// 2 = duplicated) and extra latency added to every copy (a spike). The
/// extra latency must be non-negative — a fault may delay a message but can
/// never deliver it below the min_latency floor the partitioned kernel's
/// lookahead is derived from.
struct DeliveryMod {
  unsigned copies = 1;
  TimeNs extra_latency = 0;
};

class Backbone {
 public:
  Backbone(sim::Simulator& sim, const BackboneParams& params, Rng rng);

  /// Installs the fault hook consulted once per send(). Null (the default)
  /// means every message is delivered exactly once.
  using FaultHook = std::function<DeliveryMod()>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Delivers `fn` after one sampled one-way latency — or, under a fault
  /// hook, zero/one/two independently-delayed copies — on the caller's own
  /// event queue.
  void send(std::function<void()> fn);

  /// Same, but delivers on `node`'s event queue (an AP-bound dispatch or
  /// release). Equivalent to send() when the simulator is not partitioned.
  void send_to_node(topo::NodeId node, std::function<void()> fn);

  /// Same, but delivers on the wired queue (an AP report or completion
  /// notice headed for a controller).
  void send_to_wired(std::function<void()> fn);

  /// One latency sample (exposed for tests and the Fig-11 study).
  TimeNs sample_latency();

  const BackboneParams& params() const { return params_; }

 private:
  enum class Route { kActive, kNode, kWired };

  void deliver(Route route, topo::NodeId node, std::function<void()> fn);
  Rng& lane_rng();
  TimeNs sample_latency(Rng& rng);

  sim::Simulator& sim_;
  BackboneParams params_;
  Rng rng_;
  /// Per-queue RNG lanes (node partitions + wired), forked from rng_ at
  /// construction when the simulator is partitioned; empty otherwise.
  std::vector<Rng> lanes_;
  FaultHook fault_hook_;
};

}  // namespace dmn::wired
