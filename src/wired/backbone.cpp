#include "wired/backbone.h"

#include <algorithm>

namespace dmn::wired {

TimeNs Backbone::sample_latency() {
  const double s = rng_.normal(static_cast<double>(params_.mean_latency),
                               static_cast<double>(params_.sigma_latency));
  return std::max(params_.min_latency, static_cast<TimeNs>(s));
}

void Backbone::send(std::function<void()> fn) {
  // Single delivery path: the unimpaired case is DeliveryMod{1, 0}, so the
  // hook-free RNG stream and event order are identical to a build without
  // fault support at all.
  const TimeNs latency = sample_latency();
  DeliveryMod mod;
  if (fault_hook_) mod = fault_hook_();
  if (mod.copies == 0) return;  // dropped in the wired fabric
  sim_.post_in(latency + mod.extra_latency, fn);
  for (unsigned c = 1; c < mod.copies; ++c) {
    // Duplicates take their own independently-sampled path through the
    // fabric (a retransmitting switch does not replay the original delay).
    sim_.post_in(sample_latency() + mod.extra_latency, fn);
  }
}

}  // namespace dmn::wired
