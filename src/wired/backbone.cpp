#include "wired/backbone.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace dmn::wired {

Backbone::Backbone(sim::Simulator& sim, const BackboneParams& params, Rng rng)
    : sim_(sim), params_(params), rng_(std::move(rng)) {
  if (sim_.partitioned()) {
    const std::uint32_t lanes = sim_.partition_count() + 1;  // + wired
    lanes_.reserve(lanes);
    for (std::uint32_t i = 0; i < lanes; ++i) lanes_.push_back(rng_.fork());
  }
}

Rng& Backbone::lane_rng() {
  if (lanes_.empty()) return rng_;
  return lanes_[sim_.active_queue_index()];
}

TimeNs Backbone::sample_latency(Rng& rng) {
  const double s = rng.normal(static_cast<double>(params_.mean_latency),
                              static_cast<double>(params_.sigma_latency));
  return std::max(params_.min_latency, static_cast<TimeNs>(s));
}

TimeNs Backbone::sample_latency() { return sample_latency(lane_rng()); }

void Backbone::send(std::function<void()> fn) {
  deliver(Route::kActive, topo::kNoNode, std::move(fn));
}

void Backbone::send_to_node(topo::NodeId node, std::function<void()> fn) {
  deliver(Route::kNode, node, std::move(fn));
}

void Backbone::send_to_wired(std::function<void()> fn) {
  deliver(Route::kWired, topo::kNoNode, std::move(fn));
}

void Backbone::deliver(Route route, topo::NodeId node,
                       std::function<void()> fn) {
  // Single delivery path: the unimpaired case is DeliveryMod{1, 0}, so the
  // hook-free RNG stream and event order are identical to a build without
  // fault support at all.
  Rng& rng = lane_rng();
  const TimeNs latency = sample_latency(rng);
  DeliveryMod mod;
  if (fault_hook_) mod = fault_hook_();
  if (mod.extra_latency < 0) {
    // A negative spike could deliver below min_latency and break the
    // partitioned kernel's lookahead horizon.
    throw std::invalid_argument(
        "backbone: DeliveryMod.extra_latency must be non-negative, got " +
        std::to_string(mod.extra_latency) + " ns");
  }
  if (mod.copies == 0) return;  // dropped in the wired fabric
  auto post = [this, route, node](TimeNs delay,
                                  const std::function<void()>& f) {
    const TimeNs at = sim_.now() + delay;
    switch (route) {
      case Route::kActive:
        sim_.post_at(at, f);
        break;
      case Route::kNode:
        sim_.post_to_queue(sim_.queue_of_node(static_cast<std::size_t>(node)),
                           at, f);
        break;
      case Route::kWired:
        sim_.post_to_queue(sim_.wired_queue_index(), at, f);
        break;
    }
  };
  post(latency + mod.extra_latency, fn);
  for (unsigned c = 1; c < mod.copies; ++c) {
    // Duplicates take their own independently-sampled path through the
    // fabric (a retransmitting switch does not replay the original delay).
    post(sample_latency(rng) + mod.extra_latency, fn);
  }
}

}  // namespace dmn::wired
