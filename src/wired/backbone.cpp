#include "wired/backbone.h"

#include <algorithm>

namespace dmn::wired {

TimeNs Backbone::sample_latency() {
  const double s = rng_.normal(static_cast<double>(params_.mean_latency),
                               static_cast<double>(params_.sigma_latency));
  return std::max(params_.min_latency, static_cast<TimeNs>(s));
}

void Backbone::send(std::function<void()> fn) {
  sim_.schedule_in(sample_latency(), std::move(fn));
}

}  // namespace dmn::wired
