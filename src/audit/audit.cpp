#include "audit/audit.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "util/units.h"

namespace dmn::audit {

namespace {

/// Gold-code index of a node. SignaturePlan assigns codes by node id
/// (signature_plan.h); the auditor mirrors that mapping rather than
/// depending on the plan object owned by the scheme stack.
std::size_t code_of(topo::NodeId node) {
  return static_cast<std::size_t>(node);
}

constexpr double kRelTol = 1e-9;    // incremental-vs-scratch power sums
constexpr double kAbsTolMw = 1e-15; // far below any single RSS contribution

/// How many recent signature bursts / poll groups / authorized tags to
/// retain. Provenance and disjointness only ever look a settle-time into
/// the past; these bounds keep the auditor O(1) in run length.
constexpr std::size_t kMaxBursts = 512;
constexpr std::size_t kMaxPollGroups = 32;
constexpr std::uint64_t kAuthorizedWindow = 128;

}  // namespace

AuditMode resolve_mode(const AuditConfig& cfg) {
  if (cfg.mode != AuditMode::kInherit) return cfg.mode;
  const char* v = std::getenv("DMN_AUDIT");
  if (v == nullptr || v[0] == '\0' || (v[0] == '0' && v[1] == '\0')) {
    return AuditMode::kOff;
  }
  if (std::string_view(v) == "record") return AuditMode::kRecord;
  return AuditMode::kThrow;
}

std::string AuditReport::summary() const {
  std::ostringstream os;
  os << "audit: " << checks_run << " checks, " << total_violations
     << " violations";
  for (const auto& [inv, n] : violations_by_invariant) {
    os << "\n  " << inv << ": " << n;
  }
  return os.str();
}

AuditReport merge_reports(
    const std::vector<std::shared_ptr<const AuditReport>>& parts) {
  AuditReport out;
  for (const auto& part : parts) {
    if (part == nullptr) continue;
    out.checks_run += part->checks_run;
    out.total_violations += part->total_violations;
    for (const auto& [inv, n] : part->violations_by_invariant) {
      out.violations_by_invariant[inv] += n;
    }
    for (const AuditRecord& r : part->records) {
      if (out.records.size() >= AuditReport::kMaxStored) break;
      out.records.push_back(r);
    }
  }
  return out;
}

AuditViolation::AuditViolation(const std::string& inv,
                               const std::string& detail, TimeNs t)
    : std::runtime_error("audit: " + inv + " violated at t=" +
                         std::to_string(t) + "ns: " + detail),
      invariant(inv),
      sim_time(t) {}

SimAuditor::SimAuditor(sim::Simulator& sim, const topo::Topology& topo,
                       AuditMode mode, AuditSettings settings)
    : sim_(sim),
      topo_(topo),
      mode_(mode),
      settings_(settings),
      report_(std::make_shared<AuditReport>()),
      lattice_(topo.num_nodes()) {}

void SimAuditor::attach_medium(phy::Medium& medium) {
  medium_ = &medium;
  medium.set_observer(this);
  scratch_inbound_.assign(topo_.num_nodes(), 0.0);
  scratch_rop_.assign(topo_.num_nodes(), 0.0);
  scratch_txcount_.assign(topo_.num_nodes(), 0);
}

void SimAuditor::violate(const std::string& invariant,
                         const std::string& detail) {
  ++report_->total_violations;
  ++report_->violations_by_invariant[invariant];
  if (report_->records.size() < AuditReport::kMaxStored) {
    report_->records.push_back(AuditRecord{invariant, detail, sim_.now()});
  }
  if (mode_ == AuditMode::kThrow) {
    throw AuditViolation(invariant, detail, sim_.now());
  }
}

void SimAuditor::check(bool ok, const char* invariant,
                       const std::string& detail) {
  ++report_->checks_run;
  if (!ok) violate(invariant, detail);
}

// ---------------------------------------------------------------------------
// Medium: incremental accounting vs from-scratch recompute
// ---------------------------------------------------------------------------

void SimAuditor::check_medium_sums() {
  const std::size_t n = scratch_inbound_.size();
  // A partition-restricted medium only maintains sums for its member nodes
  // (power elsewhere is sub-audible and dropped): recompute and compare
  // exactly the set it maintains, so an audited partitioned run keeps the
  // kernel's O(partition) per-transmission cost instead of O(all nodes).
  const std::vector<topo::NodeId>& members = medium_->member_nodes();
  if (members.empty()) {
    std::fill(scratch_inbound_.begin(), scratch_inbound_.end(), 0.0);
    std::fill(scratch_rop_.begin(), scratch_rop_.end(), 0.0);
    std::fill(scratch_txcount_.begin(), scratch_txcount_.end(), 0);
  } else {
    for (const topo::NodeId m : members) {
      const auto i = static_cast<std::size_t>(m);
      scratch_inbound_[i] = 0.0;
      scratch_rop_[i] = 0.0;
      scratch_txcount_[i] = 0;
    }
  }
  medium_->visit_active_tx([&](const phy::Frame& f, TimeNs, TimeNs,
                               bool rop) {
    const auto row = topo_.rss_mw_row(f.src);
    if (members.empty()) {
      for (std::size_t i = 0; i < n; ++i) scratch_inbound_[i] += row[i];
      if (rop) {
        for (std::size_t i = 0; i < n; ++i) scratch_rop_[i] += row[i];
      }
    } else {
      for (const topo::NodeId m : members) {
        const auto i = static_cast<std::size_t>(m);
        scratch_inbound_[i] += row[i];
        if (rop) scratch_rop_[i] += row[i];
      }
    }
    ++scratch_txcount_[static_cast<std::size_t>(f.src)];
  });

  ++report_->checks_run;
  const std::size_t checked = members.empty() ? n : members.size();
  for (std::size_t k = 0; k < checked; ++k) {
    const std::size_t i =
        members.empty() ? k : static_cast<std::size_t>(members[k]);
    const auto id = static_cast<topo::NodeId>(i);
    const double inc = medium_->inbound_mw(id);
    const double scr = scratch_inbound_[i];
    if (std::abs(inc - scr) > kAbsTolMw + kRelTol * scr) {
      std::ostringstream os;
      os << "node " << i << ": incremental inbound " << inc
         << " mW vs from-scratch " << scr << " mW ("
         << medium_->active_tx_count() << " active tx)";
      violate("medium.interference-accounting", os.str());
    }
    const double inc_rop = medium_->rop_inbound_mw(id);
    const double scr_rop = scratch_rop_[i];
    if (std::abs(inc_rop - scr_rop) > kAbsTolMw + kRelTol * scr_rop) {
      std::ostringstream os;
      os << "node " << i << ": incremental ROP inbound " << inc_rop
         << " mW vs from-scratch " << scr_rop << " mW";
      violate("medium.interference-accounting", os.str());
    }
    if (medium_->tx_count(id) != scratch_txcount_[i]) {
      std::ostringstream os;
      os << "node " << i << ": tx_count " << medium_->tx_count(id)
         << " vs recount " << scratch_txcount_[i];
      violate("medium.interference-accounting", os.str());
    }
    // Carrier sense must agree with its defining predicate over the
    // medium's own cached sums (exact — refresh just ran).
    const bool busy =
        medium_->tx_count(id) > 0 ||
        medium_->external_interference_mw() + medium_->inbound_mw(id) >=
            medium_->cs_threshold_mw();
    if (busy != medium_->cs_busy_cached(id)) {
      std::ostringstream os;
      os << "node " << i << ": cached cs_busy="
         << (medium_->cs_busy_cached(id) ? 1 : 0) << " but predicate says "
         << (busy ? 1 : 0);
      violate("medium.carrier-sense", os.str());
    }
  }
}

void SimAuditor::on_medium_accounting() {
  if (medium_ != nullptr) check_medium_sums();
}

void SimAuditor::on_medium_tx(const phy::Frame& frame, TimeNs /*start*/,
                              TimeNs end) {
  // Signature ledger for trigger provenance.
  if (frame.type == phy::FrameType::kSignature && frame.burst.has_value()) {
    bursts_.push_back(BurstRecord{frame.src, end, frame.burst->codes});
    if (bursts_.size() > kMaxBursts) bursts_.pop_front();
    return;
  }

  if (frame.type != phy::FrameType::kRopResponse) return;

  // ---- ROP invariants ----
  ++report_->checks_run;
  const topo::NodeId src = frame.src;
  if (frame.queue_report > settings_.rop_max_report) {
    std::ostringstream os;
    os << "client " << src << " reported " << frame.queue_report << " > "
       << settings_.rop_max_report;
    violate("rop.report-range", os.str());
  }
  // The response is built and sent in the same simulator event that reads
  // the queue, so the client's queue length at observation time is exactly
  // the polled length.
  if (macs_ != nullptr && src >= 0 &&
      static_cast<std::size_t>(src) < macs_->size() &&
      (*macs_)[static_cast<std::size_t>(src)] != nullptr) {
    const std::size_t qlen = (*macs_)[static_cast<std::size_t>(src)]
                                 ->queue_size();
    const unsigned expect = static_cast<unsigned>(
        std::min<std::size_t>(qlen, settings_.rop_max_report));
    if (frame.queue_report != expect) {
      std::ostringstream os;
      os << "client " << src << " reported " << frame.queue_report
         << " but queue length is " << qlen << " (expected report " << expect
         << ")";
      violate("rop.report-mismatch", os.str());
    }
  }
  if (topo_.node(src).ap != frame.dst) {
    std::ostringstream os;
    os << "client " << src << " answered poll of AP " << frame.dst
       << " but is associated to AP " << topo_.node(src).ap;
    violate("rop.foreign-response", os.str());
  }
  auto [it, fresh] = client_subchannel_.try_emplace(src, frame.subchannel);
  if (!fresh && it->second != frame.subchannel) {
    std::ostringstream os;
    os << "client " << src << " switched subchannel " << it->second << " -> "
       << frame.subchannel;
    violate("rop.subchannel-change", os.str());
  }

  // Subchannel disjointness within one poll (same AP, same slot tag).
  const std::uint64_t key =
      (static_cast<std::uint64_t>(frame.dst) << 44) |
      (frame.slot_tag & ((std::uint64_t{1} << 44) - 1));
  PollGroup* group = nullptr;
  for (PollGroup& g : polls_) {
    if (g.key == key) {
      group = &g;
      break;
    }
  }
  if (group == nullptr) {
    polls_.push_back(PollGroup{key, end, {}});
    if (polls_.size() > kMaxPollGroups) polls_.pop_front();
    group = &polls_.back();
  }
  group->last_seen = end;
  for (const auto& [client, sub] : group->responses) {
    if (sub == frame.subchannel && client != src) {
      std::ostringstream os;
      os << "clients " << client << " and " << src
         << " both answered AP " << frame.dst << " poll (slot "
         << frame.slot_tag << ") on subchannel " << sub;
      violate("rop.subchannel-collision", os.str());
    }
  }
  group->responses.emplace_back(src, frame.subchannel);
}

// ---------------------------------------------------------------------------
// Converter: schedule invariants per planned batch
// ---------------------------------------------------------------------------

bool SimAuditor::aps_can_share_rop(topo::NodeId a, topo::NodeId b) const {
  for (std::size_t i = 0; i < graph_->num_links(); ++i) {
    const topo::Link& la = graph_->link(static_cast<topo::LinkId>(i));
    if (la.sender != a && la.receiver != a) continue;
    for (std::size_t j = 0; j < graph_->num_links(); ++j) {
      const topo::Link& lb = graph_->link(static_cast<topo::LinkId>(j));
      if (lb.sender != b && lb.receiver != b) continue;
      if (graph_->conflicts(static_cast<topo::LinkId>(i),
                            static_cast<topo::LinkId>(j))) {
        return false;
      }
    }
  }
  return true;
}

void SimAuditor::check_relative_slot(
    const domino::RelSlot& slot, const std::vector<topo::LinkId>& strict_slot,
    bool has_strict) {
  ++report_->checks_run;

  // Real entries map back exactly to the strict slot (multiset equality);
  // the converter may drop fake filler but never a scheduled real link.
  if (has_strict) {
    std::vector<topo::LinkId> real;
    for (const domino::SlotEntry& e : slot.entries) {
      if (!e.fake) real.push_back(e.link);
    }
    std::vector<topo::LinkId> want = strict_slot;
    std::sort(real.begin(), real.end());
    std::sort(want.begin(), want.end());
    if (real != want) {
      std::ostringstream os;
      os << "slot " << slot.global_index << ": real entries {";
      for (topo::LinkId l : real) os << " " << l;
      os << " } != strict slot {";
      for (topo::LinkId l : want) os << " " << l;
      os << " }";
      violate("converter.real-entry-mapping", os.str());
    }
    for (const domino::SlotEntry& e : slot.entries) {
      if (!e.fake) continue;
      if (!settings_.insert_fake_links) {
        std::ostringstream os;
        os << "slot " << slot.global_index << ": fake entry on link "
           << e.link << " with fake-link insertion disabled";
        violate("converter.fake-on-uncovered", os.str());
      }
      if (std::find(strict_slot.begin(), strict_slot.end(), e.link) !=
          strict_slot.end()) {
        std::ostringstream os;
        os << "slot " << slot.global_index << ": link " << e.link
           << " is both a strict entry and a fake insertion";
        violate("converter.fake-on-uncovered", os.str());
      }
    }
  }

  // Pairwise slot independence. Real-real pairs obey the full conflict
  // rule; pairs involving a fake entry obey the relaxed data-only rule
  // fake insertion is allowed to use. Duplicate links are never valid.
  for (std::size_t i = 0; i < slot.entries.size(); ++i) {
    for (std::size_t j = i + 1; j < slot.entries.size(); ++j) {
      const domino::SlotEntry& a = slot.entries[i];
      const domino::SlotEntry& b = slot.entries[j];
      if (a.link == b.link) {
        std::ostringstream os;
        os << "slot " << slot.global_index << ": link " << a.link
           << " scheduled twice";
        violate("converter.slot-independence", os.str());
        continue;
      }
      const bool fake_pair = a.fake || b.fake;
      const bool conflict = fake_pair ? graph_->data_conflicts(a.link, b.link)
                                      : graph_->conflicts(a.link, b.link);
      if (conflict) {
        std::ostringstream os;
        os << "slot " << slot.global_index << ": links " << a.link << " and "
           << b.link << (fake_pair ? " (fake-involved)" : "")
           << " conflict";
        violate("converter.slot-independence", os.str());
      }
    }
  }

  // ROP sharing: co-polling APs must be pairwise conflict-free.
  for (std::size_t i = 0; i < slot.rop_aps.size(); ++i) {
    for (std::size_t j = i + 1; j < slot.rop_aps.size(); ++j) {
      if (!aps_can_share_rop(slot.rop_aps[i], slot.rop_aps[j])) {
        std::ostringstream os;
        os << "slot " << slot.global_index << ": APs " << slot.rop_aps[i]
           << " and " << slot.rop_aps[j]
           << " share an ROP slot but their links conflict";
        violate("converter.rop-sharing", os.str());
      }
    }
  }
  if (!slot.rop_aps.empty() && !slot.rop_after) {
    std::ostringstream os;
    os << "slot " << slot.global_index
       << ": rop_aps non-empty but rop_after not set";
    violate("converter.rop-coverage", os.str());
  }
}

void SimAuditor::check_boundary(const domino::RelSlot& from,
                                const domino::RelSlot& to) {
  ++report_->checks_run;

  std::vector<topo::NodeId> vias;
  for (const domino::SlotEntry& e : from.entries) {
    const topo::Link& l = graph_->link(e.link);
    vias.push_back(l.sender);
    vias.push_back(l.receiver);
  }
  std::map<topo::NodeId, int> inbound;
  std::map<topo::NodeId, int> outbound;

  for (const domino::Trigger& t : from.triggers) {
    ++inbound[t.target];
    if (!t.continuation && t.via != t.target) ++outbound[t.via];

    // Via validity.
    if (std::find(vias.begin(), vias.end(), t.via) == vias.end()) {
      std::ostringstream os;
      os << "slot " << from.global_index << ": trigger via " << t.via
         << " is not an endpoint of the slot";
      violate("converter.trigger-via", os.str());
    }
    if (t.continuation) {
      if (topo_.node(t.target).is_ap || topo_.node(t.target).ap != t.via) {
        std::ostringstream os;
        os << "slot " << from.global_index << ": continuation for "
           << t.target << " via " << t.via << " (not its AP)";
        violate("converter.trigger-via", os.str());
      }
      if (std::find(vias.begin(), vias.end(), t.target) == vias.end()) {
        std::ostringstream os;
        os << "slot " << from.global_index << ": continuation target "
           << t.target << " is not active in the slot";
        violate("converter.trigger-via", os.str());
      }
    } else if (t.via == t.target) {
      // Self-continuation: APs only (they hold the schedule).
      if (!topo_.node(t.target).is_ap) {
        std::ostringstream os;
        os << "slot " << from.global_index << ": client " << t.target
           << " self-continues";
        violate("converter.trigger-via", os.str());
      }
    } else if (topo_.rss(t.via, t.target) <
               settings_.trigger_rss_floor_dbm) {
      std::ostringstream os;
      os << "slot " << from.global_index << ": trigger " << t.via << " -> "
         << t.target << " below RSS floor (" << topo_.rss(t.via, t.target)
         << " dBm < " << settings_.trigger_rss_floor_dbm << " dBm)";
      violate("converter.trigger-rss", os.str());
    }

    // Target validity: a sender in the next slot or an AP polling after
    // this slot.
    bool is_next_sender = false;
    for (const domino::SlotEntry& e : to.entries) {
      if (graph_->link(e.link).sender == t.target) {
        is_next_sender = true;
        break;
      }
    }
    const bool is_polling_ap =
        std::find(from.rop_aps.begin(), from.rop_aps.end(), t.target) !=
        from.rop_aps.end();
    if (!is_next_sender && !is_polling_ap) {
      std::ostringstream os;
      os << "slot " << from.global_index << ": trigger target " << t.target
         << " neither sends in slot " << to.global_index
         << " nor polls after this slot";
      violate("converter.trigger-target", os.str());
    }
  }

  for (const auto& [node, n] : inbound) {
    if (n > settings_.max_inbound) {
      std::ostringstream os;
      os << "slot " << from.global_index << ": target " << node << " has "
         << n << " triggers (max_inbound " << settings_.max_inbound << ")";
      violate("converter.trigger-in-degree", os.str());
    }
  }
  for (const auto& [node, n] : outbound) {
    if (n > settings_.max_outbound) {
      std::ostringstream os;
      os << "slot " << from.global_index << ": via " << node << " combines "
         << n << " signatures (max_outbound " << settings_.max_outbound
         << ")";
      violate("converter.trigger-out-degree", os.str());
    }
  }
}

void SimAuditor::on_batch_planned(
    const std::vector<std::vector<topo::LinkId>>& strict,
    const domino::RelativeSchedule& rs,
    const std::vector<domino::SlotEntry>& prev_last,
    const std::vector<topo::NodeId>& rop_aps_needed) {
  if (graph_ == nullptr || rs.slots.empty()) return;

  // Strict slots are independent sets under the FULL conflict rule.
  ++report_->checks_run;
  for (std::size_t s = 0; s < strict.size(); ++s) {
    for (std::size_t i = 0; i < strict[s].size(); ++i) {
      for (std::size_t j = i + 1; j < strict[s].size(); ++j) {
        if (strict[s][i] == strict[s][j] ||
            graph_->conflicts(strict[s][i], strict[s][j])) {
          std::ostringstream os;
          os << "strict slot " << s << ": links " << strict[s][i] << " and "
             << strict[s][j] << " cannot share a slot";
          violate("converter.strict-slot-independence", os.str());
        }
      }
    }
  }

  // Batch connection: the overlap slot is the previous batch's last slot,
  // entry for entry, at the same global index.
  ++report_->checks_run;
  const domino::RelSlot& overlap = rs.slots.front();
  auto entries_equal = [](const std::vector<domino::SlotEntry>& a,
                          const std::vector<domino::SlotEntry>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].link != b[i].link || a[i].fake != b[i].fake) return false;
    }
    return true;
  };
  if (!entries_equal(overlap.entries, prev_last)) {
    std::ostringstream os;
    os << "batch " << rs.batch_id
       << ": overlap slot entries differ from the previous batch's last "
          "slot";
    violate("converter.batch-connection", os.str());
  }
  if (have_prev_batch_) {
    if (overlap.global_index != prev_batch_last_index_) {
      std::ostringstream os;
      os << "batch " << rs.batch_id << ": overlap slot index "
         << overlap.global_index << " != previous batch's last index "
         << prev_batch_last_index_;
      violate("converter.batch-connection", os.str());
    }
    if (!entries_equal(overlap.entries, prev_batch_last_entries_)) {
      std::ostringstream os;
      os << "batch " << rs.batch_id
         << ": overlap slot entries differ from the last slot actually "
            "planned in the previous batch";
      violate("converter.batch-connection", os.str());
    }
  }

  // Global slot indices are contiguous within the batch.
  for (std::size_t i = 0; i < rs.slots.size(); ++i) {
    if (rs.slots[i].global_index != overlap.global_index + i) {
      std::ostringstream os;
      os << "batch " << rs.batch_id << ": slot " << i << " has global index "
         << rs.slots[i].global_index << ", expected "
         << overlap.global_index + i;
      violate("converter.slot-indexing", os.str());
    }
  }

  // Per-slot entry invariants. rs.slots[1 + s] corresponds to strict[s];
  // the overlap slot has no strict counterpart.
  static const std::vector<topo::LinkId> kNoStrict;
  check_relative_slot(overlap, kNoStrict, /*has_strict=*/false);
  for (std::size_t s = 0; s + 1 < rs.slots.size(); ++s) {
    const bool has_strict = s < strict.size();
    check_relative_slot(rs.slots[s + 1],
                        has_strict ? strict[s] : kNoStrict, has_strict);
  }

  // Trigger invariants per boundary.
  for (std::size_t i = 0; i + 1 < rs.slots.size(); ++i) {
    check_boundary(rs.slots[i], rs.slots[i + 1]);
  }

  // ROP coverage: every AP that needed a poll got exactly one.
  if (rs.slots.size() > 1) {
    ++report_->checks_run;
    for (topo::NodeId ap : rop_aps_needed) {
      std::size_t times = 0;
      for (const domino::RelSlot& s : rs.slots) {
        times += static_cast<std::size_t>(
            std::count(s.rop_aps.begin(), s.rop_aps.end(), ap));
      }
      if (times != 1) {
        std::ostringstream os;
        os << "batch " << rs.batch_id << ": AP " << ap << " polled "
           << times << " times (expected exactly 1)";
        violate("converter.rop-coverage", os.str());
      }
    }
  }

  have_prev_batch_ = true;
  prev_batch_last_index_ = rs.slots.back().global_index;
  prev_batch_last_entries_ = rs.slots.back().entries;
}

// ---------------------------------------------------------------------------
// Domino MAC: trigger provenance and slot-lattice monotonicity
// ---------------------------------------------------------------------------

void SimAuditor::prune_signature_ledger(TimeNs now) {
  while (!bursts_.empty() && bursts_.front().end + msec(1) < now) {
    bursts_.pop_front();
  }
}

void SimAuditor::on_trigger(std::uint64_t tag, topo::NodeId node, TimeNs t) {
  auto& lat = lattice_[static_cast<std::size_t>(node)];
  lat.authorized.insert(tag + 1);
  while (!lat.authorized.empty() &&
         *lat.authorized.begin() + kAuthorizedWindow < tag) {
    lat.authorized.erase(lat.authorized.begin());
  }

  // Provenance: some OTHER node put a burst carrying this node's code on
  // the air, ending exactly when the detection fired. Forged false
  // positives (fault injection) break this by design — skipped then.
  if (settings_.signature_forging) return;
  ++report_->checks_run;
  prune_signature_ledger(t);
  const std::size_t code = code_of(node);
  for (const BurstRecord& b : bursts_) {
    if (b.end != t || b.src == node) continue;
    if (std::find(b.codes.begin(), b.codes.end(), code) != b.codes.end()) {
      return;
    }
  }
  std::ostringstream os;
  os << "node " << node << " detected its trigger for slot " << tag
     << " but no on-air burst ending at t=" << t << "ns carried code "
     << code;
  violate("domino.trigger-provenance", os.str());
}

void SimAuditor::on_continuation(std::uint64_t slot, topo::NodeId node,
                                 TimeNs /*t*/) {
  lattice_[static_cast<std::size_t>(node)].authorized.insert(slot);
}

void SimAuditor::on_data_tx(std::uint64_t slot, topo::NodeId node,
                            topo::NodeId /*peer*/, TimeNs /*t*/, bool /*fake*/,
                            bool uplink) {
  auto& lat = lattice_[static_cast<std::size_t>(node)];
  ++report_->checks_run;
  if (lat.has_last && slot <= lat.last_data_tag) {
    std::ostringstream os;
    os << "node " << node << " transmitted in slot " << slot
       << " after already transmitting in slot " << lat.last_data_tag;
    violate("domino.slot-monotonicity", os.str());
  }
  lat.has_last = true;
  lat.last_data_tag = std::max(lat.last_data_tag, slot);

  // Clients are purely reactive: an uplink transmission needs a detected
  // trigger for the previous slot or an in-band continuation. APs hold the
  // schedule and may self-start.
  if (uplink) {
    ++report_->checks_run;
    if (!lat.authorized.contains(slot)) {
      std::ostringstream os;
      os << "client " << node << " transmitted uplink in slot " << slot
         << " without a detected trigger or continuation authorizing it";
      violate("domino.untriggered-transmission", os.str());
    }
  }
}

void SimAuditor::on_poll(std::uint64_t /*slot*/, topo::NodeId ap,
                         TimeNs /*t*/) {
  ++report_->checks_run;
  if (!topo_.node(ap).is_ap) {
    std::ostringstream os;
    os << "non-AP node " << ap << " issued an ROP poll";
    violate("rop.poll-source", os.str());
  }
}

// ---------------------------------------------------------------------------
// Traffic conservation
// ---------------------------------------------------------------------------

void SimAuditor::on_offered(const traffic::Packet& p) {
  ++report_->checks_run;
  ++flow_ledger_[p.flow].generated;
  if (!offered_ids_.insert(p.id).second) {
    std::ostringstream os;
    os << "packet id " << p.id << " (flow " << p.flow
       << ") offered to the MAC twice";
    violate("traffic.duplicate-offer", os.str());
  }
}

void SimAuditor::on_offer_rejected(traffic::PacketId id,
                                   traffic::FlowId flow) {
  ++flow_ledger_[flow].rejected;
  rejected_ids_.insert(id);
}

void SimAuditor::on_delivered(const traffic::Packet& p, topo::NodeId at,
                              TimeNs /*now*/) {
  ++report_->checks_run;
  ++flow_ledger_[p.flow].delivered;
  if (!delivered_ids_.insert(p.id).second) {
    std::ostringstream os;
    os << "packet id " << p.id << " (flow " << p.flow << ") delivered twice";
    violate("traffic.duplicate-delivery", os.str());
  }
  if (!offered_ids_.contains(p.id)) {
    std::ostringstream os;
    os << "packet id " << p.id << " (flow " << p.flow
       << ") delivered but never offered";
    violate("traffic.unknown-delivery", os.str());
  }
  if (rejected_ids_.contains(p.id)) {
    std::ostringstream os;
    os << "packet id " << p.id << " (flow " << p.flow
       << ") delivered although its enqueue was rejected";
    violate("traffic.rejected-delivery", os.str());
  }
  if (at != p.dst) {
    std::ostringstream os;
    os << "packet id " << p.id << " delivered at node " << at
       << " but addressed to " << p.dst;
    violate("traffic.misdelivery", os.str());
  }
}

void SimAuditor::finalize() {
  for (const auto& [flow, ledger] : flow_ledger_) {
    ++report_->checks_run;
    if (ledger.delivered + ledger.rejected > ledger.generated) {
      std::ostringstream os;
      os << "flow " << flow << ": delivered " << ledger.delivered
         << " + rejected " << ledger.rejected << " exceeds generated "
         << ledger.generated;
      violate("traffic.conservation", os.str());
    }
  }
}

}  // namespace dmn::audit
