#pragma once
// Online invariant auditor: continuously re-verifies the semantic claims the
// simulator's layers rely on, while the simulation runs.
//
// Golden tests pin today's outputs; they cannot say the outputs are *right*.
// The auditor can: it hooks the existing layers through narrow observer
// seams (phy::MediumObserver, domino::ScheduleObserver, domino::DominoTrace,
// and the facade's traffic hooks) and re-checks, per event:
//
//   medium     incremental interference accounting == from-scratch per-node
//              power recompute over the active transmissions; carrier-sense
//              cache consistent with its defining predicate;
//   converter  every strict slot is an independent set; the relative
//              schedule's real entries map back exactly to their strict
//              slot; trigger in-degree <= max_inbound / out-degree <=
//              max_outbound and via/target/rss-floor validity; fake entries
//              only fill uncovered capacity under the data-only conflict
//              rule; batches connect through the shared overlap slot;
//   domino MAC a client transmission fires only after its trigger signature
//              was actually on the air (or an in-band continuation
//              authorized it); per-node slot tags advance strictly
//              monotonically;
//   ROP        one poll's responses occupy pairwise-distinct subchannels;
//              a response's queue report equals the client's queue length
//              at poll time modulo 6-bit saturation; responders belong to
//              the polling AP;
//   traffic    per-flow conservation: a delivered packet was offered and
//              accepted, never rejected at enqueue, and never delivered
//              twice.
//
// The auditor is STRICTLY passive: it consumes no RNG, schedules no events
// and never mutates simulation state, so audit-on results are byte-identical
// to audit-off results (tests/audit_test.cpp asserts this through
// api::serialize_result). When off it costs one null pointer check per seam.
//
// Enabling: set ExperimentConfig::audit.mode explicitly, or export
// DMN_AUDIT=1 (throw on first violation) / DMN_AUDIT=record (accumulate
// into the AuditReport surfaced on ExperimentResult::audit). The env knob
// lets every existing bench and test run audited without code changes.
//
// Trusting the auditor: audit::Mutation enumerates deliberately broken
// variants of the audited layers (a medium that leaks power on TX end, a
// converter that over-assigns triggers, a client that misreports its
// queue, ...) behind test-only hooks. tests/audit_test.cpp compiles each
// mutant and asserts the corresponding invariant trips — proving the
// auditor catches the bugs it claims to. docs/TESTING.md describes how to
// add an invariant together with its mutant.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "domino/controller.h"
#include "mac/mac_common.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"
#include "traffic/packet.h"

namespace dmn::audit {

enum class AuditMode {
  /// Consult the DMN_AUDIT environment variable ("" / unset = off,
  /// "record" = record, anything else truthy = throw).
  kInherit,
  kOff,
  /// Accumulate violations into the AuditReport; never throw.
  kRecord,
  /// Throw AuditViolation at the first violation (loud CI / bench mode).
  kThrow,
};

/// Deliberately broken layer variants for the auditor self-test. kNone in
/// every real experiment; tests/audit_test.cpp runs one mutant per value
/// and asserts the matching invariant trips.
enum class Mutation {
  kNone = 0,
  /// phy::Medium removes only half of a transmission's power row at TX end,
  /// corrupting the incremental interference sums.
  kMediumLeakPower,
  /// ScheduleConverter duplicates a trigger past max_inbound.
  kConverterExtraTrigger,
  /// ScheduleConverter appends a fake entry that conflicts with its slot.
  kConverterConflictingEntry,
  /// DominoNodeBase treats every triggering burst as carrying its code.
  kMacTriggerWithoutSignature,
  /// DominoClientMac delivers a decoded downlink packet twice.
  kMacDoubleDelivery,
  /// DominoClientMac reports queue length + 1 in ROP responses.
  kRopReportOffset,
};

struct AuditConfig {
  AuditMode mode = AuditMode::kInherit;
  /// Test-only: compile one deliberate defect into the stack (see above).
  Mutation mutation = Mutation::kNone;
};

/// The effective mode: an explicit config mode wins; kInherit resolves the
/// DMN_AUDIT environment variable.
AuditMode resolve_mode(const AuditConfig& cfg);

/// One observed invariant violation, with simulation-time context.
struct AuditRecord {
  std::string invariant;  // dotted name, e.g. "converter.trigger-in-degree"
  std::string detail;
  TimeNs sim_time = 0;
};

/// Violation summary surfaced on ExperimentResult::audit. Stored records
/// are capped; counters are exact.
struct AuditReport {
  std::uint64_t checks_run = 0;
  std::uint64_t total_violations = 0;
  std::map<std::string, std::uint64_t> violations_by_invariant;
  /// First kMaxStored violations, in occurrence order.
  std::vector<AuditRecord> records;
  static constexpr std::size_t kMaxStored = 64;

  bool violation_free() const { return total_violations == 0; }
  std::string summary() const;
};

/// Merges per-queue reports (a partitioned run builds one auditor per event
/// queue so every invariant is still checked, race-free, on its own queue)
/// into one summary: counters sum, stored records concatenate in queue
/// order up to kMaxStored.
AuditReport merge_reports(
    const std::vector<std::shared_ptr<const AuditReport>>& parts);

/// Thrown (in kThrow mode) at the first violated invariant.
class AuditViolation : public std::runtime_error {
 public:
  AuditViolation(const std::string& invariant, const std::string& detail,
                 TimeNs sim_time);

  std::string invariant;
  TimeNs sim_time = 0;
};

/// Scheme-independent settings the facade distills from ExperimentConfig
/// (the auditor must not depend on the api layer).
struct AuditSettings {
  // Converter limits (ExperimentConfig::converter).
  int max_inbound = 2;
  int max_outbound = 4;
  double trigger_rss_floor_dbm = -82.0;
  bool insert_fake_links = true;
  /// ROP 6-bit saturation ceiling (RopParams::max_queue_report()).
  unsigned rop_max_report = 63;
  /// Fault injection forges trigger false positives: the trigger-provenance
  /// invariant cannot hold and is skipped.
  bool signature_forging = false;
};

class SimAuditor final : public phy::MediumObserver,
                         public domino::ScheduleObserver {
 public:
  SimAuditor(sim::Simulator& sim, const topo::Topology& topo, AuditMode mode,
             AuditSettings settings);

  // ---- wiring (facade / stacks) -------------------------------------------
  void attach_medium(phy::Medium& medium);
  void attach_graph(const topo::ConflictGraph& graph) { graph_ = &graph; }
  /// The facade's NodeId-indexed MAC table (must outlive the auditor).
  void attach_macs(const std::vector<mac::MacEntity*>& macs) {
    macs_ = &macs;
  }

  // ---- phy::MediumObserver ------------------------------------------------
  void on_medium_tx(const phy::Frame& frame, TimeNs start,
                    TimeNs end) override;
  void on_medium_accounting() override;

  // ---- domino::ScheduleObserver -------------------------------------------
  void on_batch_planned(
      const std::vector<std::vector<topo::LinkId>>& strict,
      const domino::RelativeSchedule& rs,
      const std::vector<domino::SlotEntry>& prev_last,
      const std::vector<topo::NodeId>& rop_aps_needed) override;

  // ---- DominoTrace hooks (chained by the facade) --------------------------
  void on_trigger(std::uint64_t tag, topo::NodeId node, TimeNs t);
  void on_data_tx(std::uint64_t slot, topo::NodeId node, topo::NodeId peer,
                  TimeNs t, bool fake, bool uplink);
  void on_poll(std::uint64_t slot, topo::NodeId ap, TimeNs t);
  /// In-band continuation authorizing `node` to transmit in `slot`.
  void on_continuation(std::uint64_t slot, topo::NodeId node, TimeNs t);

  // ---- traffic hooks (facade) ---------------------------------------------
  /// An application packet was offered to its source MAC.
  void on_offered(const traffic::Packet& p);
  /// The source MAC rejected the offered packet (queue full).
  void on_offer_rejected(traffic::PacketId id, traffic::FlowId flow);
  /// A data packet was delivered at its MAC destination. TCP ACKs are not
  /// routed here (they are reverse-path control, not generated app data).
  void on_delivered(const traffic::Packet& p, topo::NodeId at, TimeNs now);

  /// End-of-run checks; call once after the simulation completed.
  void finalize();

  std::shared_ptr<const AuditReport> report() const { return report_; }

 private:
  void violate(const std::string& invariant, const std::string& detail);
  void check(bool ok, const char* invariant, const std::string& detail);

  void check_medium_sums();
  void check_relative_slot(const domino::RelSlot& slot,
                           const std::vector<topo::LinkId>& strict_slot,
                           bool has_strict);
  void check_boundary(const domino::RelSlot& from,
                      const domino::RelSlot& to);
  bool aps_can_share_rop(topo::NodeId a, topo::NodeId b) const;
  void prune_signature_ledger(TimeNs now);

  sim::Simulator& sim_;
  const topo::Topology& topo_;
  AuditMode mode_;
  AuditSettings settings_;
  std::shared_ptr<AuditReport> report_;

  phy::Medium* medium_ = nullptr;
  const topo::ConflictGraph* graph_ = nullptr;
  const std::vector<mac::MacEntity*>* macs_ = nullptr;

  // Scratch for the from-scratch medium recompute (avoids per-check allocs).
  std::vector<double> scratch_inbound_;
  std::vector<double> scratch_rop_;
  std::vector<std::uint32_t> scratch_txcount_;

  // Batch-connection state across on_batch_planned calls.
  bool have_prev_batch_ = false;
  std::uint64_t prev_batch_last_index_ = 0;
  std::vector<domino::SlotEntry> prev_batch_last_entries_;

  // Signature ledger: recent on-air trigger bursts, for provenance checks.
  struct BurstRecord {
    topo::NodeId src;
    TimeNs end;
    std::vector<std::size_t> codes;
  };
  std::deque<BurstRecord> bursts_;

  // Per-node slot-lattice state.
  struct NodeLattice {
    bool has_last = false;
    std::uint64_t last_data_tag = 0;
    /// Slots this client may transmit in (trigger tag+1 / continuation).
    std::set<std::uint64_t> authorized;
  };
  std::vector<NodeLattice> lattice_;

  // ROP state: responses per (ap, poll tag), and per-client subchannel.
  struct PollGroup {
    std::uint64_t key;  // (ap << 40) | tag
    TimeNs last_seen;
    std::vector<std::pair<topo::NodeId, std::size_t>> responses;
  };
  std::deque<PollGroup> polls_;
  std::unordered_map<topo::NodeId, std::size_t> client_subchannel_;

  // Traffic conservation (per packet id; ids are globally unique).
  struct FlowLedger {
    std::uint64_t generated = 0;
    std::uint64_t delivered = 0;
    std::uint64_t rejected = 0;
  };
  std::map<traffic::FlowId, FlowLedger> flow_ledger_;
  std::unordered_set<traffic::PacketId> offered_ids_;
  std::unordered_set<traffic::PacketId> rejected_ids_;
  std::unordered_set<traffic::PacketId> delivered_ids_;
};

}  // namespace dmn::audit
