// Golden-value regression tests for the hot-path kernels.
//
// The numbers below were captured from the straightforward reference
// implementations (scratch-recompute interference in Medium, per-call
// template construction in Correlator) BEFORE the incremental/banked fast
// paths were introduced. They pin the observable outputs bit-for-bit (to a
// 1e-9 absolute tolerance, far below any physically meaningful delta), so
// any fast-path rewrite that changes results — not just performance — fails
// here. See docs/PERFORMANCE.md for the invariants these encode.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "gold/correlator.h"
#include "gold/gold_code.h"
#include "phy/medium.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace dmn {
namespace {

constexpr double kTol = 1e-9;

// ---- Correlator ----------------------------------------------------------

struct CorrelatorGolden {
  std::size_t scenario;
  std::size_t code;
  double peak_metric;
  double floor_metric;
  std::size_t lag;
  bool detected;
};

// Burst scenarios: senders (codes, amplitude, chip offset, phase), AWGN
// power, RNG seed. Kept tiny but covering: clean single signature, the
// paper's 4-combined burst, two concurrent senders, weak signal in noise,
// and pure noise (no signature present).
struct BurstScenario {
  std::vector<gold::BurstSender> senders;
  double noise;
  std::uint64_t seed;
};

std::vector<BurstScenario> burst_scenarios() {
  return {
      {{{{5}, 1.0, 0, 0.0}}, 0.01, 11},
      {{{{1, 2, 3, 4}, 1.0, 3, 0.7}}, 0.05, 22},
      {{{{10, 11}, 0.8, 2, 1.1}, {{12}, 1.2, 5, -0.4}}, 0.05, 33},
      {{{{7}, 0.05, 1, 0.2}}, 0.5, 44},
      {{}, 1.0, 55},
  };
}

const CorrelatorGolden kCorrelatorGoldens[] = {
    {0, 5, 1.0014015489030439, 0.1029025673878808, 0, true},
    {0, 6, 0.15047975217539913, 0.039489117531554783, 6, false},
    {1, 1, 0.9860170775322552, 0.12359959015697383, 3, true},
    {1, 3, 0.99075699956941765, 0.13059441802762234, 3, true},
    {1, 4, 0.98861150370181583, 0.15732040196793984, 3, true},
    {1, 9, 0.28017929556688903, 0.05572266591524834, 9, false},
    {2, 10, 0.83320196675750235, 0.15099572137341785, 2, true},
    {2, 12, 1.1990064922564008, 0.11142806293100892, 5, true},
    {2, 20, 0.21185977488419766, 0.17179172431821363, 4, false},
    {3, 7, 0.11002708886129392, 0.061081653093920558, 15, false},
    {3, 8, 0.10355980238571495, 0.065406013958209136, 1, false},
    {4, 0, 0.1772680409244709, 0.098385508197176591, 2, false},
    {4, 42, 0.14317535015797886, 0.070138449528122621, 1, false},
};

TEST(Golden, CorrelatorDetect) {
  gold::GoldCodeSet set(7);
  gold::Correlator corr(set);
  const auto scenarios = burst_scenarios();
  std::vector<std::vector<dsp::Cplx>> bursts;
  for (const auto& s : scenarios) {
    Rng rng(s.seed);
    bursts.push_back(gold::synthesize_burst(set, s.senders, s.noise, 16, rng));
  }
  for (const auto& g : kCorrelatorGoldens) {
    const auto r = corr.detect(bursts[g.scenario], g.code);
    EXPECT_NEAR(r.peak_metric, g.peak_metric, kTol)
        << "scenario " << g.scenario << " code " << g.code;
    EXPECT_NEAR(r.floor_metric, g.floor_metric, kTol)
        << "scenario " << g.scenario << " code " << g.code;
    EXPECT_EQ(r.lag, g.lag) << "scenario " << g.scenario << " code " << g.code;
    EXPECT_EQ(r.detected, g.detected)
        << "scenario " << g.scenario << " code " << g.code;
  }
}

// ---- Medium --------------------------------------------------------------

class Recorder : public phy::MediumClient {
 public:
  struct Rx {
    phy::Frame frame;
    phy::RxInfo info;
  };
  std::vector<Rx> heard;
  std::vector<bool> cs_edges;
  void on_frame_rx(const phy::Frame& f, const phy::RxInfo& i) override {
    heard.push_back({f, i});
  }
  void on_cs_change(bool busy) override { cs_edges.push_back(busy); }
};

struct MediumGolden {
  int node;
  int src;
  int type;  // static_cast<int>(FrameType)
  double rss_dbm;
  double min_sinr_db;
  bool decoded;
  bool half_duplex;
};

// Scenario: two AP-client pairs with an interference edge (ap1 destroys
// c0's reception) and a sense edge (ap0 hears ap1). Exercises overlapping
// interference, a late interferer, half-duplex loss, ROP subchannel
// orthogonality, and an external-interference burst edge mid-frame.
const MediumGolden kMediumGoldens[] = {
    {0, 2, 0, -81, 13.000000000000007, false, true},
    {0, 1, 4, -55, 39, true, false},
    {0, 1, 0, -55, 39, false, true},
    {1, 2, 0, -58, -3.0005467099468386, false, false},
    {1, 0, 0, -55, 2.9989092385713336, false, false},
    {1, 0, 0, -55, 39, false, true},
    {2, 0, 0, -81, -26.000546709946835, false, true},
    {2, 3, 1, -55, 25.787615980857446, true, false},
    {2, 1, 4, -58, 36.000000000000007, true, false},
    {2, 3, 4, -55, 39, true, false},
    {2, 1, 0, -58, 22.787615980857446, true, false},
    {2, 0, 0, -81, -23.001090761428664, false, false},
    {3, 2, 0, -55, 38.989104694000389, true, false},
};

TEST(Golden, MediumSinrAndCs) {
  topo::ManualTopologyBuilder b;
  const auto ap0 = b.add_ap();        // 0
  const auto c0 = b.add_client(ap0);  // 1
  const auto ap1 = b.add_ap();        // 2
  b.add_client(ap1);                  // 3
  b.interfere(ap1, c0);
  b.sense(ap0, ap1);
  const auto topo = b.build();
  sim::Simulator sim;
  phy::Medium medium(sim, topo);
  std::vector<Recorder> rec(4);
  for (int i = 0; i < 4; ++i) medium.attach(i, &rec[i]);

  auto frame = [](phy::FrameType t, topo::NodeId src, topo::NodeId dst,
                  TimeNs dur) {
    phy::Frame f;
    f.type = t;
    f.src = src;
    f.dst = dst;
    f.duration = dur;
    return f;
  };
  medium.transmit(frame(phy::FrameType::kData, 0, 1, usec(100)));
  sim.schedule_at(usec(10), [&] {
    medium.transmit(frame(phy::FrameType::kData, 2, 3, usec(50)));
  });
  sim.schedule_at(usec(95), [&] {
    medium.transmit(frame(phy::FrameType::kAck, 3, 2, usec(44)));
  });
  sim.schedule_at(usec(120),
                  [&] { medium.set_external_interference_mw(5e-9); });
  sim.schedule_at(usec(130),
                  [&] { medium.set_external_interference_mw(0.0); });
  sim.schedule_at(usec(200), [&] {
    medium.transmit(frame(phy::FrameType::kRopResponse, 1, 0, usec(16)));
    medium.transmit(frame(phy::FrameType::kRopResponse, 3, 2, usec(16)));
  });
  sim.schedule_at(usec(300), [&] {
    medium.transmit(frame(phy::FrameType::kData, 0, 1, usec(80)));
  });
  sim.schedule_at(usec(340), [&] {
    medium.transmit(frame(phy::FrameType::kData, 1, 0, usec(30)));
  });
  sim.run();

  // Flatten observed receptions in the recorded order per node.
  std::vector<MediumGolden> observed;
  for (int n = 0; n < 4; ++n) {
    for (const auto& rx : rec[n].heard) {
      observed.push_back({n, rx.frame.src, static_cast<int>(rx.frame.type),
                          rx.info.rss_dbm, rx.info.min_sinr_db,
                          rx.info.decoded, rx.info.half_duplex_loss});
    }
  }
  ASSERT_EQ(observed.size(), std::size(kMediumGoldens));
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const auto& got = observed[i];
    const auto& want = kMediumGoldens[i];
    EXPECT_EQ(got.node, want.node) << "row " << i;
    EXPECT_EQ(got.src, want.src) << "row " << i;
    EXPECT_EQ(got.type, want.type) << "row " << i;
    EXPECT_NEAR(got.rss_dbm, want.rss_dbm, kTol) << "row " << i;
    EXPECT_NEAR(got.min_sinr_db, want.min_sinr_db, kTol) << "row " << i;
    EXPECT_EQ(got.decoded, want.decoded) << "row " << i;
    EXPECT_EQ(got.half_duplex, want.half_duplex) << "row " << i;
  }

  // Carrier-sense edge sequences: every node saw busy/idle alternation,
  // three busy episodes each in this scenario.
  for (int n = 0; n < 4; ++n) {
    const std::vector<bool> want = {true, false, true, false, true, false};
    EXPECT_EQ(rec[n].cs_edges, want) << "node " << n;
  }

  EXPECT_EQ(medium.frames_sent(phy::FrameType::kData), 4u);
  EXPECT_EQ(medium.frames_sent(phy::FrameType::kAck), 1u);
  EXPECT_EQ(medium.frames_sent(phy::FrameType::kRopResponse), 2u);
  EXPECT_EQ(medium.frames_sent(phy::FrameType::kPoll), 0u);
}

}  // namespace
}  // namespace dmn
