// Unit tests: RAND greedy scheduler, the schedule converter (§3.3 — fake
// links, trigger budgets, batch connection, ROP insertion), the omniscient
// genie, and CENTAUR's batch machinery.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "centaur/centaur.h"
#include "domino/converter.h"
#include "domino/rand_scheduler.h"
#include "domino/signature_plan.h"
#include "mac/dcf.h"
#include "omni/omniscient.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"
#include "wired/backbone.h"

namespace dmn {
namespace {

/// Figure 7's four AP-client pairs: cells 1&2 interfere, cells 3&4
/// interfere, and the two halves are disjoint — the paper's two-chain
/// example.
topo::Topology fig7_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap1 = b.add_ap();   // 0
  const auto ap2 = b.add_ap();   // 1
  const auto ap3 = b.add_ap();   // 2
  const auto ap4 = b.add_ap();   // 3
  const auto c1 = b.add_client(ap1);  // 4
  const auto c2 = b.add_client(ap2);  // 5
  const auto c3 = b.add_client(ap3);  // 6
  const auto c4 = b.add_client(ap4);  // 7
  b.interfere(ap1, c2).interfere(ap2, c1);  // cells 1-2 conflict
  b.interfere(ap3, c4).interfere(ap4, c3);  // cells 3-4 conflict
  b.sense(ap1, ap2).sense(ap3, ap4);
  b.sense(c1, c2).sense(c3, c4);
  (void)c1; (void)c2; (void)c3; (void)c4;
  return b.build();
}

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest()
      : topo_(fig7_topology()),
        links_(topo_.make_links(true, true)),
        graph_(topo::ConflictGraph::build(topo_, links_)) {}

  std::size_t find(topo::NodeId s, topo::NodeId r) const {
    return static_cast<std::size_t>(graph_.find({s, r}));
  }

  topo::Topology topo_;
  std::vector<topo::Link> links_;
  topo::ConflictGraph graph_;
};

TEST_F(SchedulerTest, SlotIsIndependentAndDemandGated) {
  domino::RandScheduler rand(graph_);
  std::vector<std::size_t> demand(graph_.num_links(), 0);
  demand[find(0, 4)] = 5;  // AP1->C1
  demand[find(1, 5)] = 5;  // AP2->C2 (conflicts with AP1->C1)
  demand[find(2, 6)] = 5;  // AP3->C3
  const auto slot = rand.schedule_slot(demand);
  EXPECT_TRUE(graph_.is_independent(slot));
  for (topo::LinkId l : slot) {
    EXPECT_GT(demand[static_cast<std::size_t>(l)], 0u);
  }
  // AP1->C1 and AP2->C2 cannot both be in; AP3->C3 is independent of both.
  EXPECT_EQ(slot.size(), 2u);
}

TEST_F(SchedulerTest, RotationAlternatesConflictingLinks) {
  domino::RandScheduler rand(graph_);
  std::vector<std::size_t> demand(graph_.num_links(), 0);
  demand[find(0, 4)] = 100;
  demand[find(1, 5)] = 100;
  std::set<topo::LinkId> seen_first;
  for (int i = 0; i < 4; ++i) {
    const auto slot = rand.schedule_slot(demand);
    ASSERT_FALSE(slot.empty());
    seen_first.insert(slot.front());
  }
  EXPECT_EQ(seen_first.size(), 2u) << "fairness rotation must alternate";
}

TEST_F(SchedulerTest, BatchConsumesDemand) {
  domino::RandScheduler rand(graph_);
  std::vector<std::size_t> demand(graph_.num_links(), 0);
  demand[find(0, 4)] = 2;
  const auto batch = rand.schedule_batch(demand, 10);
  int scheduled = 0;
  for (const auto& slot : batch) {
    for (topo::LinkId l : slot) {
      if (static_cast<std::size_t>(l) == find(0, 4)) ++scheduled;
    }
  }
  EXPECT_EQ(scheduled, 2) << "demand of 2 packets -> exactly 2 slots";
}

// ---- Converter ------------------------------------------------------------

class ConverterTest : public SchedulerTest {
 protected:
  ConverterTest() : signatures_(topo_.num_nodes()) {}

  domino::RelativeSchedule convert_simple(
      const std::vector<std::vector<topo::LinkId>>& strict,
      const std::vector<topo::NodeId>& rop = {}) {
    domino::ScheduleConverter conv(topo_, graph_, signatures_);
    return conv.convert(strict, {}, rop, 1, 0);
  }

  domino::SignaturePlan signatures_;
};

TEST_F(ConverterTest, FakeInsertionMakesMaximalCover) {
  const auto rs = convert_simple({{static_cast<topo::LinkId>(find(0, 4))}});
  ASSERT_EQ(rs.slots.size(), 2u);  // overlap + 1
  const auto& slot = rs.slots[1];
  EXPECT_GT(slot.entries.size(), 1u) << "fake links must fill the slot";
  bool has_fake = false;
  std::vector<topo::LinkId> ids;
  for (const auto& e : slot.entries) {
    ids.push_back(e.link);
    has_fake = has_fake || e.fake;
  }
  EXPECT_TRUE(has_fake);
  // All entries pairwise data-conflict-free.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_FALSE(graph_.data_conflicts(ids[i], ids[j]));
    }
  }
}

TEST_F(ConverterTest, FakeInsertionDisabledByKnob) {
  domino::ConverterParams params;
  params.insert_fake_links = false;
  domino::ScheduleConverter conv(topo_, graph_, signatures_, params);
  const auto rs = conv.convert({{static_cast<topo::LinkId>(find(0, 4))}},
                               {}, {}, 1, 0);
  EXPECT_EQ(rs.slots[1].entries.size(), 1u);
}

TEST_F(ConverterTest, TriggerBudgetsRespected) {
  // Alternate the two conflicting pairs over several slots and check the
  // inbound (<=2) / outbound (<=4) budgets on every boundary.
  std::vector<std::vector<topo::LinkId>> strict;
  for (int i = 0; i < 6; ++i) {
    if (i % 2 == 0) {
      strict.push_back({static_cast<topo::LinkId>(find(0, 4)),
                        static_cast<topo::LinkId>(find(2, 6))});
    } else {
      strict.push_back({static_cast<topo::LinkId>(find(1, 5)),
                        static_cast<topo::LinkId>(find(3, 7))});
    }
  }
  const auto rs = convert_simple(strict);
  for (const auto& slot : rs.slots) {
    std::map<topo::NodeId, int> inbound, outbound;
    for (const auto& t : slot.triggers) {
      ++inbound[t.target];
      if (t.via != t.target && !t.continuation) ++outbound[t.via];
    }
    for (const auto& [n, c] : inbound) {
      EXPECT_LE(c, 2) << "inbound budget at node " << n;
    }
    for (const auto& [n, c] : outbound) {
      EXPECT_LE(c, 4) << "outbound budget at node " << n;
    }
  }
}

TEST_F(ConverterTest, FirstBatchFirstSlotSurvivesWithoutTriggers) {
  const auto rs = convert_simple({{static_cast<topo::LinkId>(find(0, 4))}});
  EXPECT_TRUE(rs.slots[0].entries.empty());
  EXPECT_TRUE(rs.slots[0].triggers.empty());
  EXPECT_FALSE(rs.slots[1].entries.empty());
}

TEST_F(ConverterTest, ForcedPollOnEmptyOverlapSlotSurvives) {
  // Single-slot first batch: the greedy ROP pass has no interior boundary
  // to try, so the poll is force-placed on the (empty) overlap slot.
  // Regression: trigger assignment used to clear rop_after/rop_aps along
  // with the empty slot's nonexistent triggers, silently discarding a
  // demanded poll; the polling AP must instead keep it and self-start.
  const auto rs =
      convert_simple({{static_cast<topo::LinkId>(find(0, 4))}}, {2});
  ASSERT_EQ(rs.slots.size(), 2u);
  EXPECT_TRUE(rs.slots[0].entries.empty());
  EXPECT_TRUE(rs.slots[0].triggers.empty());
  EXPECT_TRUE(rs.slots[0].rop_after);
  ASSERT_EQ(rs.slots[0].rop_aps.size(), 1u);
  EXPECT_EQ(rs.slots[0].rop_aps[0], 2);
}

TEST_F(ConverterTest, BatchConnectionCarriesOverlapSlot) {
  domino::ScheduleConverter conv(topo_, graph_, signatures_);
  const auto rs1 = conv.convert({{static_cast<topo::LinkId>(find(0, 4))}},
                                {}, {}, 1, 0);
  const auto& last = rs1.slots.back();
  const auto rs2 = conv.convert({{static_cast<topo::LinkId>(find(1, 5))}},
                                last.entries, {}, 2, last.global_index);
  // Overlap slot repeats the previous batch's last entries and now carries
  // triggers into the new batch.
  ASSERT_EQ(rs2.slots[0].global_index, last.global_index);
  EXPECT_EQ(rs2.slots[0].entries.size(), last.entries.size());
  EXPECT_FALSE(rs2.slots[0].triggers.empty());
}

TEST_F(ConverterTest, RopInsertionSkipsOverlapBoundaryAndShares) {
  std::vector<std::vector<topo::LinkId>> strict(4);
  const auto rs = convert_simple(strict, {0, 1, 2, 3});
  // No poll on the overlap boundary.
  EXPECT_FALSE(rs.slots[0].rop_after);
  // Every requested AP placed somewhere.
  std::set<topo::NodeId> polled;
  for (const auto& slot : rs.slots) {
    if (slot.rop_after) EXPECT_FALSE(slot.rop_aps.empty());
    for (topo::NodeId ap : slot.rop_aps) {
      EXPECT_TRUE(polled.insert(ap).second) << "AP polled twice";
    }
  }
  EXPECT_EQ(polled.size(), 4u);
  // Sharing rule: co-polling APs have no conflicting links.
  domino::ScheduleConverter conv(topo_, graph_, signatures_);
  for (const auto& slot : rs.slots) {
    for (std::size_t i = 0; i < slot.rop_aps.size(); ++i) {
      for (std::size_t j = i + 1; j < slot.rop_aps.size(); ++j) {
        // Cells 1&2 conflict; 3&4 conflict. Valid co-poll sets pair across
        // the halves only.
        const auto a = slot.rop_aps[i];
        const auto b2 = slot.rop_aps[j];
        const bool same_half = (a <= 1 && b2 <= 1) || (a >= 2 && b2 >= 2);
        EXPECT_FALSE(same_half)
            << "conflicting APs " << a << "," << b2 << " share an ROP slot";
      }
    }
  }
}

TEST_F(ConverterTest, ApPlansCoverRolesAndCodes) {
  std::vector<std::vector<topo::LinkId>> strict = {
      {static_cast<topo::LinkId>(find(0, 4)),
       static_cast<topo::LinkId>(find(2, 6))},
      {static_cast<topo::LinkId>(find(4, 0)),
       static_cast<topo::LinkId>(find(6, 2))},
  };
  domino::ScheduleConverter conv(topo_, graph_, signatures_);
  const auto rs = conv.convert(strict, {}, {}, 1, 0);
  const auto plans = conv.make_ap_plans(rs);
  std::map<topo::NodeId, const domino::ApSchedule*> by_ap;
  for (const auto& p : plans) by_ap[p.ap] = &p;
  ASSERT_TRUE(by_ap.count(0));
  bool saw_tx = false, saw_rx = false;
  for (const auto& row : by_ap[0]->slots) {
    if (row.role == domino::ApSlotPlan::Role::kTxData) {
      saw_tx = true;
      EXPECT_EQ(row.peer, 4);
    }
    if (row.role == domino::ApSlotPlan::Role::kRxData) saw_rx = true;
  }
  EXPECT_TRUE(saw_tx);
  EXPECT_TRUE(saw_rx);
  // Every AP plan shares the same rop boundary list (lattice consistency).
  for (const auto& p : plans) {
    EXPECT_EQ(p.rop_boundaries, plans.front().rop_boundaries);
    EXPECT_EQ(p.batch_first_slot, 1u);
  }
}

TEST(SignaturePlanTest, AssignsUniqueCodesAndRejectsOverflow) {
  domino::SignaturePlan plan(10);
  std::set<std::size_t> codes;
  for (topo::NodeId n = 0; n < 10; ++n) {
    EXPECT_TRUE(codes.insert(plan.code_of(n)).second);
    EXPECT_EQ(plan.node_of(plan.code_of(n)), n);
  }
  EXPECT_THROW(domino::SignaturePlan(200), std::invalid_argument);
  EXPECT_EQ(domino::SignaturePlan::start_code(), 127u);
  EXPECT_EQ(domino::SignaturePlan::rop_code(), 128u);
}

// ---- Omniscient genie ------------------------------------------------------

TEST(Omniscient, SaturatedPairNearsSlotRate) {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);
  auto topo = b.build();
  sim::Simulator sim;
  phy::Medium medium(sim, topo);
  const auto links = topo.make_links(true, false);
  auto graph = topo::ConflictGraph::build(topo, links);
  int delivered = 0;
  std::vector<std::unique_ptr<omni::OmniNodeMac>> nodes;
  std::vector<omni::OmniNodeMac*> raw;
  mac::WifiParams omni_params;
  omni_params.queue_capacity = 1000;
  for (const topo::Node& n : topo.nodes()) {
    nodes.push_back(std::make_unique<omni::OmniNodeMac>(
        sim, medium, n.id, omni_params,
        [&](const traffic::Packet&, topo::NodeId, TimeNs) { ++delivered; }));
    raw.push_back(nodes.back().get());
  }
  omni::OmniscientScheduler sched(sim, medium, graph, {}, raw);
  for (int i = 0; i < 300; ++i) {
    traffic::Packet p;
    p.id = static_cast<traffic::PacketId>(i + 1);
    p.flow = 0;
    p.src = ap;
    p.dst = 1;
    nodes[0]->enqueue(p);
  }
  sched.start(0);
  sim.run_until(msec(100));
  // Slot = 384 + 10 us -> ~253 packets/100ms; 300 offered, most delivered.
  EXPECT_GT(delivered, 240);
}

// ---- CENTAUR ---------------------------------------------------------------

TEST(Centaur, BatchBarrierWaitsForSlowestAp) {
  // Figure 13(b): AP3 (here ap_slow) shares the medium with two free APs;
  // the barrier makes everyone wait for it.
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  const auto a2 = b.add_ap();
  b.add_client(a0);  // 3
  b.add_client(a1);  // 4
  b.add_client(a2);  // 5
  // a2 hears both others (defers constantly); a0 and a1 are mutually free.
  b.sense(a0, a2);
  b.sense(a1, a2);
  auto topo = b.build();

  sim::Simulator sim;
  phy::Medium medium(sim, topo);
  std::map<int, int> delivered;
  std::vector<std::unique_ptr<mac::DcfNode>> nodes;
  std::map<topo::NodeId, mac::DcfNode*> aps;
  for (const topo::Node& n : topo.nodes()) {
    nodes.push_back(std::make_unique<mac::DcfNode>(
        sim, medium, n.id, mac::WifiParams{}, Rng(1 + n.id),
        [&](const traffic::Packet& p, topo::NodeId at, TimeNs) {
          if (at == p.dst) ++delivered[p.flow];
        }));
    if (topo.node(n.id).is_ap) aps[n.id] = nodes.back().get();
  }
  const auto dl = topo.make_links(true, false);
  auto graph = topo::ConflictGraph::build(topo, dl);
  wired::Backbone backbone(sim, {}, Rng(77));
  centaur::CentaurController ctrl(sim, backbone, graph, {}, aps);

  traffic::PacketId next = 0;
  auto offer = [&](topo::NodeId src, topo::NodeId dst, int flow, int n) {
    for (int i = 0; i < n; ++i) {
      traffic::Packet p;
      p.id = ++next;
      p.flow = flow;
      p.src = src;
      p.dst = dst;
      nodes[static_cast<std::size_t>(src)]->enqueue(p);
    }
  };
  offer(0, 3, 0, 200);
  offer(1, 4, 1, 200);
  offer(2, 5, 2, 200);
  ctrl.start(usec(100));
  sim.run_until(msec(150));

  // All three links progress (scheduling works)...
  EXPECT_GT(delivered[0], 20);
  EXPECT_GT(delivered[2], 20);
  // ...but the barrier ties the free APs to the deferring one: their
  // throughput cannot run ahead by more than ~one quota per batch.
  EXPECT_LE(delivered[0] - delivered[2], 40);
  EXPECT_GT(ctrl.batches_dispatched(), 3u);
}

TEST(Centaur, ApsHeldUntilRelease) {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);
  auto topo = b.build();
  sim::Simulator sim;
  phy::Medium medium(sim, topo);
  int delivered = 0;
  mac::DcfNode apn(sim, medium, ap, {}, Rng(1),
                   [&](const traffic::Packet&, topo::NodeId, TimeNs) {
                     ++delivered;
                   });
  mac::DcfNode cn(sim, medium, 1, {}, Rng(2),
                  [&](const traffic::Packet& p, topo::NodeId at, TimeNs) {
                    if (at == p.dst) ++delivered;
                  });
  const auto dl = topo.make_links(true, false);
  auto graph = topo::ConflictGraph::build(topo, dl);
  wired::Backbone backbone(sim, {}, Rng(3));
  std::map<topo::NodeId, mac::DcfNode*> aps{{ap, &apn}};
  centaur::CentaurController ctrl(sim, backbone, graph, {}, aps);
  // Not started: the controller's constructor gates the AP.
  traffic::Packet p;
  p.id = 1;
  p.flow = 0;
  p.src = ap;
  p.dst = 1;
  apn.enqueue(p);
  sim.run_until(msec(5));
  EXPECT_EQ(delivered, 0) << "gated AP must hold its queue";
  ctrl.start(sim.now());
  sim.run_until(msec(15));
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace dmn
