// §5 co-existence: DOMINO's NAV protection of the contention-free period.
// An external (non-enterprise) 802.11 DCF contender shares the channel with
// a DOMINO cell: while DOMINO is saturated its NAV keeps the external node
// deferring; when DOMINO idles, the external node gets the channel.

#include <gtest/gtest.h>

#include "api/experiment.h"
#include "mac/dcf.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace dmn {
namespace {

/// One DOMINO cell (AP 0, client 1) plus an external pair (2 -> 3) that
/// hears the cell (carrier sense + NAV coupling) but whose data paths are
/// clean.
topo::Topology coexistence_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);        // 1
  const auto ext_tx = b.add_ap();  // 2: stand-in for an external sender
  b.add_client(ext_tx);    // 3
  b.sense(ap, ext_tx);
  b.sense(1, ext_tx);
  return b.build();
}

TEST(Coexistence, NavHoldsExternalContenderDuringCfp) {
  const auto topo = coexistence_topology();

  // DOMINO saturated on its own cell only (custom flow), external cell has
  // a DCF-driven flow via the DCF scheme... We model the external node
  // directly: run the DOMINO experiment for the cell and attach an
  // external DcfNode to the same medium through the facade's DCF scheme is
  // not possible — so compare the protected vs unprotected NAV knob via
  // the external node's airtime instead, using raw assembly.
  for (const bool protect : {true, false}) {
    sim::Simulator sim;
    phy::Medium medium(sim, topo);

    // External DCF pair, saturated.
    int ext_delivered = 0;
    mac::WifiParams params;
    params.queue_capacity = 4000;
    mac::DcfNode ext_tx(sim, medium, 2, params, Rng(1),
                        [&](const traffic::Packet& p, topo::NodeId at,
                            TimeNs) {
                          if (at == p.dst) ++ext_delivered;
                        });
    mac::DcfNode ext_rx(sim, medium, 3, params, Rng(2),
                        [&](const traffic::Packet& p, topo::NodeId at,
                            TimeNs) {
                          if (at == p.dst) ++ext_delivered;
                        });
    for (int i = 0; i < 3000; ++i) {
      traffic::Packet p;
      p.id = static_cast<traffic::PacketId>(i + 1);
      p.flow = 0;
      p.src = 2;
      p.dst = 3;
      ext_tx.enqueue(p);
    }

    // A hand-driven stand-in for the DOMINO cell's slot stream: data
    // frames with (or without) slot-covering NAV, back to back — the
    // contention-free period.
    domino::DominoTiming timing;
    timing.protect_with_nav = protect;
    std::function<void()> slot = [&] {
      phy::Frame f;
      f.type = phy::FrameType::kData;
      f.src = 0;
      f.dst = 1;
      f.duration = timing.data_air();
      if (timing.protect_with_nav) {
        f.nav = timing.slot_duration() - f.duration;
      }
      medium.transmit(f);
      sim.schedule_in(timing.slot_duration(), slot);
    };
    sim.schedule_at(usec(50), slot);

    sim.run_until(msec(300));

    if (protect) {
      // The gap between a frame's end and the next slot is > DIFS, so an
      // unprotected contender would squeeze in; NAV must prevent that.
      EXPECT_LT(ext_delivered, 20)
          << "NAV must hold the external contender during the CFP";
    } else {
      EXPECT_GT(ext_delivered, 100)
          << "without NAV the external node grabs inter-frame gaps";
    }
  }
}

TEST(Coexistence, ExternalNodeTransmitsWhenDominoIdle) {
  const auto topo = coexistence_topology();
  sim::Simulator sim;
  phy::Medium medium(sim, topo);
  int ext_delivered = 0;
  mac::WifiParams params;
  params.queue_capacity = 4000;
  mac::DcfNode ext_tx(sim, medium, 2, params, Rng(1),
                      [&](const traffic::Packet& p, topo::NodeId at, TimeNs) {
                        if (at == p.dst) ++ext_delivered;
                      });
  mac::DcfNode ext_rx(sim, medium, 3, params, Rng(2),
                      [&](const traffic::Packet& p, topo::NodeId at, TimeNs) {
                        if (at == p.dst) ++ext_delivered;
                      });
  for (int i = 0; i < 500; ++i) {
    traffic::Packet p;
    p.id = static_cast<traffic::PacketId>(i + 1);
    p.flow = 0;
    p.src = 2;
    p.dst = 3;
    ext_tx.enqueue(p);
  }
  // DOMINO silent: the external pair owns the channel (the CoP).
  sim.run_until(msec(300));
  EXPECT_EQ(ext_delivered, 500);
}

TEST(Coexistence, DominoUnaffectedByNavKnobInternally) {
  // Among DOMINO nodes the NAV is irrelevant (they transmit on schedule,
  // not carrier sense): the knob must not change DOMINO's own throughput.
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);
  const auto t = b.build();
  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDomino;
  cfg.duration = sec(1);
  cfg.traffic.saturate_downlink = true;
  const auto r = api::run_experiment(t, cfg);
  EXPECT_GT(r.throughput_mbps(), 7.0);
}

}  // namespace
}  // namespace dmn
