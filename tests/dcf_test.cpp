// Unit tests: the 802.11 DCF state machine — delivery, ACKs, retries,
// backoff fairness, hidden/exposed behaviour, and the CENTAUR gating hooks.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "mac/dcf.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "topo/topology.h"

namespace dmn::mac {
namespace {

struct DcfHarness {
  sim::Simulator sim;
  std::unique_ptr<topo::Topology> topo;
  std::unique_ptr<phy::Medium> medium;
  std::vector<std::unique_ptr<DcfNode>> nodes;
  std::map<traffic::FlowId, int> delivered;
  traffic::PacketId next_id = 0;

  explicit DcfHarness(topo::Topology t) {
    topo = std::make_unique<topo::Topology>(std::move(t));
    medium = std::make_unique<phy::Medium>(sim, *topo);
    WifiParams params;
    params.queue_capacity = 5000;  // tests offer bursts up front
    for (const topo::Node& n : topo->nodes()) {
      nodes.push_back(std::make_unique<DcfNode>(
          sim, *medium, n.id, params, Rng(100 + n.id),
          [this](const traffic::Packet& p, topo::NodeId at, TimeNs) {
            if (at == p.dst) ++delivered[p.flow];
          }));
    }
  }

  traffic::Packet packet(int flow, topo::NodeId src, topo::NodeId dst) {
    traffic::Packet p;
    p.id = ++next_id;
    p.flow = flow;
    p.src = src;
    p.dst = dst;
    p.bytes = 512;
    return p;
  }

  /// Saturates flow `flow` src->dst with `n` packets.
  void offer(int flow, topo::NodeId src, topo::NodeId dst, int n) {
    for (int i = 0; i < n; ++i) {
      nodes[static_cast<std::size_t>(src)]->enqueue(packet(flow, src, dst));
    }
  }
};

topo::Topology one_cell() {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);
  return b.build();
}

topo::Topology two_cells_sensing() {
  topo::ManualTopologyBuilder b;
  const auto ap0 = b.add_ap();
  const auto ap1 = b.add_ap();
  b.add_client(ap0);
  b.add_client(ap1);
  b.sense(ap0, ap1);
  return b.build();
}

topo::Topology hidden_pair() {
  topo::ManualTopologyBuilder b;
  const auto ap0 = b.add_ap();
  const auto ap1 = b.add_ap();
  b.add_client(ap0);        // 2
  const auto c1 = b.add_client(ap1);  // 3
  b.interfere(ap0, c1);     // ap0 invisible to ap1, destroys c1
  return b.build();
}

TEST(Dcf, SinglePacketDelivered) {
  DcfHarness h(one_cell());
  h.offer(0, 0, 1, 1);
  h.sim.run_until(msec(10));
  EXPECT_EQ(h.delivered[0], 1);
  EXPECT_EQ(h.nodes[0]->ack_timeouts(), 0u);
}

TEST(Dcf, SaturatedThroughputNearTheoretical) {
  DcfHarness h(one_cell());
  h.offer(0, 0, 1, 100);
  h.sim.run_until(msec(100));
  // Per packet: DIFS(28) + avg backoff (7.5*9) + data(384) + SIFS(10) +
  // ACK(44) ~ 534us -> ~187 packets/100ms.
  EXPECT_GT(h.delivered[0], 95);
  EXPECT_EQ(h.delivered[0], 100);  // queue drains fully within 100 ms
}

TEST(Dcf, TwoContendersShareFairly) {
  DcfHarness h(two_cells_sensing());
  h.offer(0, 0, 2, 400);
  h.offer(1, 1, 3, 400);
  h.sim.run_until(msec(200));
  const int a = h.delivered[0];
  const int b = h.delivered[1];
  ASSERT_GT(a + b, 250);
  EXPECT_GT(a, (a + b) / 4) << "gross unfairness between equal contenders";
  EXPECT_GT(b, (a + b) / 4);
}

TEST(Dcf, HiddenTerminalCollapsesVictim) {
  DcfHarness h(hidden_pair());
  h.offer(0, 0, 2, 2000);  // ap0 -> c0 (the aggressor, clean receiver)
  h.offer(1, 1, 3, 2000);  // ap1 -> c1 (victim: ap0 corrupts c1)
  h.sim.run_until(msec(500));
  EXPECT_GT(h.delivered[0], 300);
  EXPECT_LT(h.delivered[1], h.delivered[0] / 2)
      << "hidden interference must crush the victim link";
  EXPECT_GT(h.nodes[1]->ack_timeouts(), 50u);
}

TEST(Dcf, ExposedSendersSerialize) {
  // Two senders that hear each other defer to one another even though
  // concurrent transmission would succeed: classic exposed-terminal waste.
  DcfHarness h(two_cells_sensing());
  h.offer(0, 0, 2, 2000);
  h.offer(1, 1, 3, 2000);
  h.sim.run_until(msec(500));
  // Aggregate roughly equals ONE saturated link's rate (they serialize).
  const int total = h.delivered[0] + h.delivered[1];
  EXPECT_LT(total, 1300);  // << 2x a single link's ~940
  EXPECT_GT(total, 700);
}

TEST(Dcf, RetryLimitDropsUndeliverable) {
  // Receiver permanently jammed: packets must be dropped after the retry
  // limit rather than blocking the queue forever.
  topo::ManualTopologyBuilder b;
  const auto ap0 = b.add_ap();
  const auto ap1 = b.add_ap();
  b.add_client(ap0);                 // 2
  const auto c1 = b.add_client(ap1); // 3
  b.interfere(ap0, c1);
  DcfHarness h(b.build());
  // ap0 transmits forever (saturated), c1's reception is dead.
  h.offer(0, 0, 2, 5000);
  h.offer(1, 1, 3, 5);
  h.sim.run_until(msec(300));
  EXPECT_GT(h.nodes[1]->drops(), 0u);
  EXPECT_EQ(h.nodes[1]->queue_size(), 0u) << "queue must drain via drops";
}

TEST(Dcf, DuplicateFilterOnAckLoss) {
  // Force an ACK loss by jamming the AP side briefly; the retransmission
  // must not be delivered twice.
  DcfHarness h(one_cell());
  h.offer(0, 0, 1, 50);
  h.sim.run_until(msec(50));
  EXPECT_EQ(h.delivered[0], 50) << "exactly-once delivery";
}

TEST(Dcf, ServiceGateHoldsQueue) {
  DcfHarness h(one_cell());
  h.nodes[0]->set_service_enabled(false);
  h.offer(0, 0, 1, 5);
  h.sim.run_until(msec(20));
  EXPECT_EQ(h.delivered[0], 0);
  h.nodes[0]->set_service_enabled(true);
  h.sim.run_until(msec(40));
  EXPECT_EQ(h.delivered[0], 5);
}

TEST(Dcf, DestFilterServesOnlyTarget) {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);  // 1
  b.add_client(ap);  // 2
  DcfHarness h(b.build());
  h.nodes[0]->set_dest_filter(2);
  h.offer(0, 0, 1, 3);
  h.offer(1, 0, 2, 3);
  h.sim.run_until(msec(20));
  EXPECT_EQ(h.delivered[0], 0);
  EXPECT_EQ(h.delivered[1], 3);
  EXPECT_EQ(h.nodes[0]->queued_for(1), 3u);
  h.nodes[0]->set_dest_filter(std::nullopt);
  h.sim.run_until(msec(40));
  EXPECT_EQ(h.delivered[0], 3);
}

TEST(Dcf, OutcomeHookReportsCompletions) {
  DcfHarness h(one_cell());
  int outcomes = 0;
  int successes = 0;
  h.nodes[0]->set_outcome_hook([&](const traffic::Packet&, bool ok) {
    ++outcomes;
    successes += ok ? 1 : 0;
  });
  h.offer(0, 0, 1, 4);
  h.sim.run_until(msec(20));
  EXPECT_EQ(outcomes, 4);
  EXPECT_EQ(successes, 4);
}

TEST(Dcf, FixedBackoffAlignsExposedSenders) {
  // CENTAUR's mechanism: same fixed backoff + carrier sensing lets two
  // exposed senders take turns deterministically without collisions.
  DcfHarness h(two_cells_sensing());
  h.nodes[0]->set_fixed_backoff(8);
  h.nodes[1]->set_fixed_backoff(8);
  h.offer(0, 0, 2, 100);
  h.offer(1, 1, 3, 100);
  h.sim.run_until(msec(200));
  EXPECT_EQ(h.delivered[0] + h.delivered[1], 200);
}

}  // namespace
}  // namespace dmn::mac
