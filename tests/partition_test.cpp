// Tests for the partitioned simulation kernel: interference-component
// partitioning (topo/partition.h), the conservative-lookahead event-queue
// protocol (sim/simulator.h), causality and latency-floor guards, and
// byte-stability of experiment results across worker-thread counts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "api/sweep_io.h"
#include "sim/simulator.h"
#include "topo/partition.h"
#include "topo/topology.h"
#include "util/rng.h"
#include "wired/backbone.h"

namespace dmn {
namespace {

// ---- topology fixtures ------------------------------------------------------

/// Two radio-isolated buildings, one AP + `clients` clients each.
topo::Topology two_buildings(std::size_t clients = 2) {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  for (std::size_t i = 0; i < clients; ++i) {
    b.add_client(a0);
    b.add_client(a1);
  }
  return b.build();
}

/// Two cells whose APs can hear each other: a single interference component.
topo::Topology two_cells_coupled() {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.sense(a0, a1);
  return b.build();
}

/// Reference component labelling: BFS over the union of audibility edges
/// and client-AP association edges, components numbered in node-id order of
/// their first (smallest) member — the same canonical order
/// compute_partitions documents.
topo::Partitioning bfs_partitions(const topo::Topology& t) {
  const std::size_t n = t.num_nodes();
  topo::Partitioning out;
  out.assignment.assign(n, UINT32_MAX);
  std::uint32_t next = 0;
  std::vector<topo::NodeId> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (out.assignment[s] != UINT32_MAX) continue;
    const std::uint32_t comp = next++;
    stack.push_back(static_cast<topo::NodeId>(s));
    out.assignment[s] = comp;
    while (!stack.empty()) {
      const topo::NodeId u = stack.back();
      stack.pop_back();
      auto visit = [&](topo::NodeId v) {
        if (out.assignment[static_cast<std::size_t>(v)] == UINT32_MAX) {
          out.assignment[static_cast<std::size_t>(v)] = comp;
          stack.push_back(v);
        }
      };
      for (topo::NodeId v : t.audible_from(u)) visit(v);
      const topo::Node& node = t.node(u);
      if (!node.is_ap && node.ap != topo::kNoNode) visit(node.ap);
      for (std::size_t w = 0; w < n; ++w) {
        const topo::Node& other = t.node(static_cast<topo::NodeId>(w));
        if (!other.is_ap && other.ap == u) {
          visit(static_cast<topo::NodeId>(w));
        }
      }
    }
  }
  out.count = next;
  return out;
}

// ---- partition computation --------------------------------------------------

TEST(Partition, SingleCellIsOnePartition) {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);
  b.add_client(ap);
  const auto t = b.build();
  const auto p = topo::compute_partitions(t);
  EXPECT_EQ(p.count, 1u);
  for (std::uint32_t a : p.assignment) EXPECT_EQ(a, 0u);
}

TEST(Partition, IsolatedBuildingsSplit) {
  const auto t = two_buildings(2);
  const auto p = topo::compute_partitions(t);
  ASSERT_EQ(p.count, 2u);
  // Canonical numbering: partition of the smallest node id is 0.
  EXPECT_EQ(p.assignment[0], 0u);  // AP 0
  EXPECT_EQ(p.assignment[1], 1u);  // AP 1
  for (std::size_t n = 2; n < t.num_nodes(); ++n) {
    EXPECT_EQ(p.assignment[n], p.assignment[static_cast<std::size_t>(
                                   t.node(static_cast<topo::NodeId>(n)).ap)]);
  }
  const auto m0 = p.members_of(0);
  const auto m1 = p.members_of(1);
  EXPECT_EQ(m0.size() + m1.size(), t.num_nodes());
}

TEST(Partition, SenseEdgeMergesBuildings) {
  const auto t = two_cells_coupled();
  EXPECT_EQ(topo::compute_partitions(t).count, 1u);
}

TEST(Partition, BridgingClientMergesBuildings) {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  const auto bridge = b.add_client(a1);
  // The bridge client is audible at the *other* building's AP: one
  // component, even though the APs cannot hear each other.
  b.set_rss(bridge, a0, topo::kRssSense);
  const auto t = b.build();
  EXPECT_EQ(topo::compute_partitions(t).count, 1u);
}

TEST(Partition, PropertyNoAudibleEdgeCrossesAndMatchesBfs) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    // Random multi-building layout: each building is a chain of APs with
    // random clients; buildings are radio-isolated from each other.
    topo::ManualTopologyBuilder b;
    const int buildings = 2 + static_cast<int>(rng.uniform(0.0, 3.0));
    for (int k = 0; k < buildings; ++k) {
      topo::NodeId prev = topo::kNoNode;
      const int aps = 1 + static_cast<int>(rng.uniform(0.0, 2.5));
      for (int a = 0; a < aps; ++a) {
        const auto ap = b.add_ap();
        if (prev != topo::kNoNode) b.sense(prev, ap);
        const int clients = static_cast<int>(rng.uniform(0.0, 2.5));
        for (int c = 0; c < clients; ++c) b.add_client(ap);
        prev = ap;
      }
    }
    const auto t = b.build();
    const auto p = topo::compute_partitions(t);
    const auto ref = bfs_partitions(t);
    EXPECT_EQ(p.count, ref.count);
    EXPECT_EQ(p.assignment, ref.assignment);
    // The defining property: no audible edge crosses a partition boundary.
    for (std::size_t n = 0; n < t.num_nodes(); ++n) {
      for (topo::NodeId v : t.audible_from(static_cast<topo::NodeId>(n))) {
        EXPECT_EQ(p.assignment[n], p.assignment[static_cast<std::size_t>(v)]);
      }
    }
    // members_of round-trips the assignment.
    std::size_t total = 0;
    for (std::uint32_t q = 0; q < p.count; ++q) {
      for (topo::NodeId m : p.members_of(q)) {
        EXPECT_EQ(p.assignment[static_cast<std::size_t>(m)], q);
        ++total;
      }
    }
    EXPECT_EQ(total, t.num_nodes());
  }
}

// ---- kernel guards ----------------------------------------------------------

TEST(Kernel, SchedulingIntoThePastThrows) {
  sim::Simulator sim;
  sim.schedule_at(usec(10), [] {});
  sim.run_until(usec(100));  // clock is now at 100 us
  EXPECT_THROW(sim.post_at(usec(50), [] {}), std::logic_error);
  EXPECT_THROW((void)sim.schedule_at(usec(50), [] {}), std::logic_error);
  // The boundary case (at == now) stays legal.
  sim.post_at(usec(100), [] {});
  sim.run_until(usec(101));
}

TEST(Kernel, CrossPartitionSendBelowLookaheadThrows) {
  sim::Simulator sim;
  sim.configure_partitions({0u, 1u}, 2, usec(20), 1);
  sim::Simulator::Scope scope(sim, 0);
  // Below the lookahead horizon: rejected.
  EXPECT_THROW(sim.post_to_queue(1, usec(10), [] {}), std::logic_error);
  // At the horizon: accepted and delivered.
  bool ran = false;
  sim.post_to_queue(1, usec(20), [&] { ran = true; });
  sim.run_until(usec(50));
  EXPECT_TRUE(ran);
}

TEST(Kernel, NegativeExtraLatencyThrows) {
  sim::Simulator sim;
  wired::Backbone bb(sim, wired::BackboneParams{}, Rng(7));
  bb.set_fault_hook([] { return wired::DeliveryMod{1, -usec(5)}; });
  EXPECT_THROW(bb.send([] {}), std::invalid_argument);
}

TEST(Kernel, BackboneRespectsMinLatencyFloor) {
  sim::Simulator sim;
  wired::BackboneParams params;
  params.mean_latency = usec(30);
  params.sigma_latency = usec(200);  // huge jitter: clamp must engage
  params.min_latency = usec(25);
  wired::Backbone bb(sim, params, Rng(3));
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(bb.sample_latency(), params.min_latency);
  }
}

// ---- thread-count resolution ------------------------------------------------

TEST(Threads, ResolutionOrder) {
  ::unsetenv("DMN_SIM_THREADS");
  api::ExperimentConfig cfg;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 0u);  // unset env, default cfg
  cfg.sim_threads = 4;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 4u);  // explicit cfg wins
  ::setenv("DMN_SIM_THREADS", "2", 1);
  EXPECT_EQ(api::resolve_sim_threads(cfg), 4u);
  cfg.sim_threads = 0;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 2u);  // env fallback
  cfg.sim_threads = -1;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 0u);  // negative forces classic
  ::setenv("DMN_SIM_THREADS", "garbage", 1);
  cfg.sim_threads = 0;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 0u);
  ::unsetenv("DMN_SIM_THREADS");
}

// ---- experiment-level determinism -------------------------------------------

api::ExperimentConfig part_cfg(api::Scheme s, int threads) {
  api::ExperimentConfig cfg;
  cfg.scheme = s;
  cfg.duration = msec(300);
  cfg.traffic.downlink_bps = 5e6;
  cfg.traffic.uplink_bps = 1e6;
  cfg.audit.mode = audit::AuditMode::kOff;
  cfg.sim_threads = threads;
  return cfg;
}

std::string run_bytes(const topo::Topology& t,
                      const api::ExperimentConfig& cfg) {
  return api::serialize_result(api::run_experiment(t, cfg));
}

TEST(Determinism, ByteStableAcrossThreadCounts) {
  const auto t = two_buildings(2);
  for (api::Scheme s : {api::Scheme::kDcf, api::Scheme::kDomino}) {
    const std::string one = run_bytes(t, part_cfg(s, 1));
    const std::string two = run_bytes(t, part_cfg(s, 2));
    const std::string eight = run_bytes(t, part_cfg(s, 8));
    EXPECT_EQ(one, two) << api::to_string(s);
    EXPECT_EQ(one, eight) << api::to_string(s);
  }
}

TEST(Determinism, ByteStableUnderFaultPlan) {
  const auto t = two_buildings(2);
  auto cfg = part_cfg(api::Scheme::kDomino, 1);
  cfg.faults.backbone.drop_rate = 0.05;
  cfg.faults.signature.false_negative_rate = 0.02;
  cfg.faults.clock.max_skew_ppm = 20.0;
  const std::string one = run_bytes(t, cfg);
  cfg.sim_threads = 2;
  const std::string two = run_bytes(t, cfg);
  cfg.sim_threads = 8;
  const std::string eight = run_bytes(t, cfg);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Determinism, AuditPassiveAndViolationFreeWhenPartitioned) {
  const auto t = two_buildings(2);
  const std::string plain = run_bytes(t, part_cfg(api::Scheme::kDomino, 2));
  auto cfg = part_cfg(api::Scheme::kDomino, 2);
  cfg.audit.mode = audit::AuditMode::kRecord;
  const auto r = api::run_experiment(t, cfg);
  EXPECT_EQ(api::serialize_result(r), plain);  // auditors stay passive
  ASSERT_NE(r.audit, nullptr);
  EXPECT_GT(r.audit->checks_run, 100u);
  EXPECT_TRUE(r.audit->violation_free()) << r.audit->summary();
}

TEST(Determinism, SingleComponentFallsBackToClassicKernel) {
  const auto t = two_cells_coupled();
  auto cfg = part_cfg(api::Scheme::kDomino, 4);
  const auto r = api::run_experiment(t, cfg);
  EXPECT_EQ(r.sim_partitions, 1u);  // one component: no partitioning
  cfg.sim_threads = -1;             // force-classic reference
  EXPECT_EQ(api::serialize_result(r), run_bytes(t, cfg));
}

TEST(Partitioned, SmokeBothBuildingsCarryTraffic) {
  const auto t = two_buildings(2);
  const auto r = api::run_experiment(t, part_cfg(api::Scheme::kDomino, 2));
  EXPECT_EQ(r.sim_partitions, 2u);
  EXPECT_GT(r.events_executed, 0u);
  ASSERT_FALSE(r.links.empty());
  // Every downlink flow in both buildings delivered something.
  for (const api::LinkResult& lr : r.links) {
    if (!lr.uplink) EXPECT_GT(lr.delivered, 0u) << "flow " << lr.flow.id;
  }
}

TEST(Partitioned, AggregatedEventBudgetInterrupts) {
  const auto t = two_buildings(2);
  api::Experiment e(t, part_cfg(api::Scheme::kDomino, 2));
  e.set_run_guard(nullptr, 2000);
  EXPECT_THROW((void)e.run(), api::ExperimentInterrupted);
}

// ---- window protocol v2 -----------------------------------------------------

/// A small campus: four radio-isolated buildings, each a two-AP chain with
/// two clients per AP — enough components that the sparse-activation and
/// LPT paths in the scheduler actually engage.
topo::Topology campus4() {
  topo::ManualTopologyBuilder b;
  for (int k = 0; k < 4; ++k) {
    const auto a0 = b.add_ap();
    const auto a1 = b.add_ap();
    b.sense(a0, a1);
    b.add_client(a0);
    b.add_client(a0);
    b.add_client(a1);
    b.add_client(a1);
  }
  return b.build();
}

TEST(Determinism, CampusByteStableAtAllThreadCountsWithFaultsAndAudit) {
  const auto t = campus4();
  for (api::Scheme s : {api::Scheme::kDcf, api::Scheme::kDomino}) {
    auto cfg = part_cfg(s, 1);
    cfg.duration = msec(150);
    cfg.faults.backbone.drop_rate = 0.05;
    cfg.faults.signature.false_negative_rate = 0.02;
    cfg.faults.clock.max_skew_ppm = 20.0;
    cfg.audit.mode = audit::AuditMode::kRecord;
    const auto ref = api::run_experiment(t, cfg);
    EXPECT_EQ(ref.sim_partitions, 4u);
    ASSERT_NE(ref.audit, nullptr);
    EXPECT_TRUE(ref.audit->violation_free()) << ref.audit->summary();
    const std::string one = api::serialize_result(ref);
    for (int threads : {2, 4, 8}) {
      cfg.sim_threads = threads;
      EXPECT_EQ(run_bytes(t, cfg), one)
          << api::to_string(s) << " at " << threads << " threads";
    }
  }
}

TEST(Determinism, AdaptiveWindowsMatchFixedWindowStepping) {
  // DMN_SIM_FIXED_WINDOWS=1 forces the dumb reference schedule: dense
  // [s, s+L) windows, no fast-forward, no elongation. For schemes whose
  // cross-queue interaction is purely message-passing (DCF here), the
  // adaptive scheduler must produce byte-identical results — delivery
  // order is encoded in the destination heap key, so window policy is a
  // performance choice, never a semantic one.
  //
  // DOMINO is deliberately excluded: its controller performs synchronous
  // downlink peeks of AP MAC state at window barriers, and how far a node
  // queue has progressed when a peek at wired-time t runs depends on
  // where the window boundaries fall. Both schedules stay within the
  // documented <= L staleness bound, but the exact peeked values can
  // differ, so fixed-vs-adaptive byte equality is not a contract for
  // peeking controllers. (Thread-count byte-stability — the kernel's real
  // contract — holds for every scheme; see the test above.)
  const auto t = campus4();
  auto cfg = part_cfg(api::Scheme::kDcf, 2);
  cfg.duration = msec(150);
  ::unsetenv("DMN_SIM_FIXED_WINDOWS");
  const std::string adaptive = run_bytes(t, cfg);
  ::setenv("DMN_SIM_FIXED_WINDOWS", "1", 1);
  const std::string fixed = run_bytes(t, cfg);
  ::unsetenv("DMN_SIM_FIXED_WINDOWS");
  EXPECT_EQ(adaptive, fixed);
}

TEST(Kernel, AdaptiveWindowsFastForwardAndElongate) {
  sim::Simulator sim;
  sim.configure_partitions({0u, 1u}, 2, usec(20), 1);
  int ran = 0;
  {
    sim::Simulator::Scope scope(sim, 0);
    sim.post_at(0, [&] { ++ran; });
    sim.post_at(msec(5), [&] { ++ran; });
  }
  {
    sim::Simulator::Scope scope(sim, 1);
    sim.post_at(msec(10), [&] { ++ran; });
  }
  sim.run_until(msec(20));
  EXPECT_EQ(ran, 3);
  EXPECT_EQ(sim.now(), msec(20));
  const sim::KernelStats& ks = sim.kernel_stats();
  // Three isolated events => three windows, each start a fast-forward jump
  // after the first, each window elongated (the minimum is always unique).
  EXPECT_EQ(ks.windows, 3u);
  EXPECT_GE(ks.ff_jumps, 2u);
  EXPECT_GE(ks.elongated_windows, 3u);
  EXPECT_EQ(ks.activations, 3u);
  EXPECT_EQ(ks.activated_max(), 1u);
}

TEST(Kernel, ReconfigureBeforeSchedulingTakesEffect) {
  // configure_partitions() may legally run again before any scheduling;
  // the second call must rebuild everything — partition count, lookahead,
  // node map, worker pool, telemetry — rather than mixing old state (e.g.
  // a pool sized for the previous thread count, or wake counters surviving
  // the stats reset) into the new configuration.
  sim::Simulator sim;
  sim.configure_partitions({0u, 1u}, 2, usec(20), 8);
  sim.configure_partitions({0u, 1u, 2u, 0u}, 3, usec(40), 2);
  EXPECT_EQ(sim.partition_count(), 3u);
  EXPECT_EQ(sim.lookahead(), usec(40));
  EXPECT_EQ(sim.queue_of_node(3), 0u);
  int ran = 0;
  for (std::uint32_t q = 0; q < 3; ++q) {
    sim::Simulator::Scope scope(sim, q);
    sim.post_at(usec(q), [&ran] { ++ran; });
  }
  sim.run_until(msec(1));
  EXPECT_EQ(ran, 3);
  const sim::KernelStats& ks = sim.kernel_stats();
  // All three events fit a single 40 us window starting at 0; the stats
  // must reflect only the post-reconfigure run.
  EXPECT_EQ(ks.windows, 1u);
  EXPECT_EQ(ks.activations, 3u);
  EXPECT_EQ(ks.activation_hist.size(), 4u);
}

TEST(Kernel, CrossPartitionPingPongStressAtEightThreads) {
  // Eight chains hopping between partitions every lookahead: maximal
  // cross-partition traffic over the spin/generation pool handoff. The
  // assertions are exact because the schedule is deterministic; the real
  // payload is running this under TSan (CI runs partition_test with
  // -fsanitize=thread).
  struct Pinger {
    sim::Simulator& sim;
    std::vector<std::uint64_t>& hits;
    std::uint32_t partitions;
    TimeNs until;
    void fire(std::uint32_t q) {
      ++hits[q];
      const TimeNs next = sim.now() + sim.lookahead();
      if (next > until) return;
      const std::uint32_t dst = (q + 1) % partitions;
      sim.post_to_queue(dst, next, [this, dst] { fire(dst); });
    }
  };
  const std::uint32_t partitions = 8;
  const TimeNs until = msec(5);
  sim::Simulator sim;
  std::vector<std::uint32_t> assignment(partitions);
  for (std::uint32_t n = 0; n < partitions; ++n) assignment[n] = n;
  sim.configure_partitions(std::move(assignment), partitions, usec(20), 8);
  std::vector<std::uint64_t> hits(partitions, 0);
  Pinger pinger{sim, hits, partitions, until};
  for (std::uint32_t q = 0; q < partitions; ++q) {
    sim::Simulator::Scope scope(sim, q);
    sim.post_at(0, [&pinger, q] { pinger.fire(q); });
  }
  sim.run_until(until);
  // Each chain fires at 0, L, 2L, ..., until inclusive.
  const std::uint64_t hops_per_chain =
      static_cast<std::uint64_t>(until / usec(20)) + 1;
  std::uint64_t total = 0;
  for (std::uint64_t h : hits) total += h;
  EXPECT_EQ(total, hops_per_chain * partitions);
  EXPECT_EQ(sim.events_executed(), hops_per_chain * partitions);
  const sim::KernelStats& ks = sim.kernel_stats();
  EXPECT_GT(ks.windows, 0u);
  EXPECT_EQ(ks.activated_max(), partitions);
}

}  // namespace
}  // namespace dmn
