// Tests for the partitioned simulation kernel: interference-component
// partitioning (topo/partition.h), the conservative-lookahead event-queue
// protocol (sim/simulator.h), causality and latency-floor guards, and
// byte-stability of experiment results across worker-thread counts.

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "api/sweep_io.h"
#include "sim/simulator.h"
#include "topo/partition.h"
#include "topo/topology.h"
#include "util/rng.h"
#include "wired/backbone.h"

namespace dmn {
namespace {

// ---- topology fixtures ------------------------------------------------------

/// Two radio-isolated buildings, one AP + `clients` clients each.
topo::Topology two_buildings(std::size_t clients = 2) {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  for (std::size_t i = 0; i < clients; ++i) {
    b.add_client(a0);
    b.add_client(a1);
  }
  return b.build();
}

/// Two cells whose APs can hear each other: a single interference component.
topo::Topology two_cells_coupled() {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.sense(a0, a1);
  return b.build();
}

/// Reference component labelling: BFS over the union of audibility edges
/// and client-AP association edges, components numbered in node-id order of
/// their first (smallest) member — the same canonical order
/// compute_partitions documents.
topo::Partitioning bfs_partitions(const topo::Topology& t) {
  const std::size_t n = t.num_nodes();
  topo::Partitioning out;
  out.assignment.assign(n, UINT32_MAX);
  std::uint32_t next = 0;
  std::vector<topo::NodeId> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (out.assignment[s] != UINT32_MAX) continue;
    const std::uint32_t comp = next++;
    stack.push_back(static_cast<topo::NodeId>(s));
    out.assignment[s] = comp;
    while (!stack.empty()) {
      const topo::NodeId u = stack.back();
      stack.pop_back();
      auto visit = [&](topo::NodeId v) {
        if (out.assignment[static_cast<std::size_t>(v)] == UINT32_MAX) {
          out.assignment[static_cast<std::size_t>(v)] = comp;
          stack.push_back(v);
        }
      };
      for (topo::NodeId v : t.audible_from(u)) visit(v);
      const topo::Node& node = t.node(u);
      if (!node.is_ap && node.ap != topo::kNoNode) visit(node.ap);
      for (std::size_t w = 0; w < n; ++w) {
        const topo::Node& other = t.node(static_cast<topo::NodeId>(w));
        if (!other.is_ap && other.ap == u) {
          visit(static_cast<topo::NodeId>(w));
        }
      }
    }
  }
  out.count = next;
  return out;
}

// ---- partition computation --------------------------------------------------

TEST(Partition, SingleCellIsOnePartition) {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);
  b.add_client(ap);
  const auto t = b.build();
  const auto p = topo::compute_partitions(t);
  EXPECT_EQ(p.count, 1u);
  for (std::uint32_t a : p.assignment) EXPECT_EQ(a, 0u);
}

TEST(Partition, IsolatedBuildingsSplit) {
  const auto t = two_buildings(2);
  const auto p = topo::compute_partitions(t);
  ASSERT_EQ(p.count, 2u);
  // Canonical numbering: partition of the smallest node id is 0.
  EXPECT_EQ(p.assignment[0], 0u);  // AP 0
  EXPECT_EQ(p.assignment[1], 1u);  // AP 1
  for (std::size_t n = 2; n < t.num_nodes(); ++n) {
    EXPECT_EQ(p.assignment[n], p.assignment[static_cast<std::size_t>(
                                   t.node(static_cast<topo::NodeId>(n)).ap)]);
  }
  const auto m0 = p.members_of(0);
  const auto m1 = p.members_of(1);
  EXPECT_EQ(m0.size() + m1.size(), t.num_nodes());
}

TEST(Partition, SenseEdgeMergesBuildings) {
  const auto t = two_cells_coupled();
  EXPECT_EQ(topo::compute_partitions(t).count, 1u);
}

TEST(Partition, BridgingClientMergesBuildings) {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  const auto bridge = b.add_client(a1);
  // The bridge client is audible at the *other* building's AP: one
  // component, even though the APs cannot hear each other.
  b.set_rss(bridge, a0, topo::kRssSense);
  const auto t = b.build();
  EXPECT_EQ(topo::compute_partitions(t).count, 1u);
}

TEST(Partition, PropertyNoAudibleEdgeCrossesAndMatchesBfs) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    // Random multi-building layout: each building is a chain of APs with
    // random clients; buildings are radio-isolated from each other.
    topo::ManualTopologyBuilder b;
    const int buildings = 2 + static_cast<int>(rng.uniform(0.0, 3.0));
    for (int k = 0; k < buildings; ++k) {
      topo::NodeId prev = topo::kNoNode;
      const int aps = 1 + static_cast<int>(rng.uniform(0.0, 2.5));
      for (int a = 0; a < aps; ++a) {
        const auto ap = b.add_ap();
        if (prev != topo::kNoNode) b.sense(prev, ap);
        const int clients = static_cast<int>(rng.uniform(0.0, 2.5));
        for (int c = 0; c < clients; ++c) b.add_client(ap);
        prev = ap;
      }
    }
    const auto t = b.build();
    const auto p = topo::compute_partitions(t);
    const auto ref = bfs_partitions(t);
    EXPECT_EQ(p.count, ref.count);
    EXPECT_EQ(p.assignment, ref.assignment);
    // The defining property: no audible edge crosses a partition boundary.
    for (std::size_t n = 0; n < t.num_nodes(); ++n) {
      for (topo::NodeId v : t.audible_from(static_cast<topo::NodeId>(n))) {
        EXPECT_EQ(p.assignment[n], p.assignment[static_cast<std::size_t>(v)]);
      }
    }
    // members_of round-trips the assignment.
    std::size_t total = 0;
    for (std::uint32_t q = 0; q < p.count; ++q) {
      for (topo::NodeId m : p.members_of(q)) {
        EXPECT_EQ(p.assignment[static_cast<std::size_t>(m)], q);
        ++total;
      }
    }
    EXPECT_EQ(total, t.num_nodes());
  }
}

// ---- kernel guards ----------------------------------------------------------

TEST(Kernel, SchedulingIntoThePastThrows) {
  sim::Simulator sim;
  sim.schedule_at(usec(10), [] {});
  sim.run_until(usec(100));  // clock is now at 100 us
  EXPECT_THROW(sim.post_at(usec(50), [] {}), std::logic_error);
  EXPECT_THROW((void)sim.schedule_at(usec(50), [] {}), std::logic_error);
  // The boundary case (at == now) stays legal.
  sim.post_at(usec(100), [] {});
  sim.run_until(usec(101));
}

TEST(Kernel, CrossPartitionSendBelowLookaheadThrows) {
  sim::Simulator sim;
  sim.configure_partitions({0u, 1u}, 2, usec(20), 1);
  sim::Simulator::Scope scope(sim, 0);
  // Below the lookahead horizon: rejected.
  EXPECT_THROW(sim.post_to_queue(1, usec(10), [] {}), std::logic_error);
  // At the horizon: accepted and delivered.
  bool ran = false;
  sim.post_to_queue(1, usec(20), [&] { ran = true; });
  sim.run_until(usec(50));
  EXPECT_TRUE(ran);
}

TEST(Kernel, NegativeExtraLatencyThrows) {
  sim::Simulator sim;
  wired::Backbone bb(sim, wired::BackboneParams{}, Rng(7));
  bb.set_fault_hook([] { return wired::DeliveryMod{1, -usec(5)}; });
  EXPECT_THROW(bb.send([] {}), std::invalid_argument);
}

TEST(Kernel, BackboneRespectsMinLatencyFloor) {
  sim::Simulator sim;
  wired::BackboneParams params;
  params.mean_latency = usec(30);
  params.sigma_latency = usec(200);  // huge jitter: clamp must engage
  params.min_latency = usec(25);
  wired::Backbone bb(sim, params, Rng(3));
  for (int i = 0; i < 200; ++i) {
    EXPECT_GE(bb.sample_latency(), params.min_latency);
  }
}

// ---- thread-count resolution ------------------------------------------------

TEST(Threads, ResolutionOrder) {
  ::unsetenv("DMN_SIM_THREADS");
  api::ExperimentConfig cfg;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 0u);  // unset env, default cfg
  cfg.sim_threads = 4;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 4u);  // explicit cfg wins
  ::setenv("DMN_SIM_THREADS", "2", 1);
  EXPECT_EQ(api::resolve_sim_threads(cfg), 4u);
  cfg.sim_threads = 0;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 2u);  // env fallback
  cfg.sim_threads = -1;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 0u);  // negative forces classic
  ::setenv("DMN_SIM_THREADS", "garbage", 1);
  cfg.sim_threads = 0;
  EXPECT_EQ(api::resolve_sim_threads(cfg), 0u);
  ::unsetenv("DMN_SIM_THREADS");
}

// ---- experiment-level determinism -------------------------------------------

api::ExperimentConfig part_cfg(api::Scheme s, int threads) {
  api::ExperimentConfig cfg;
  cfg.scheme = s;
  cfg.duration = msec(300);
  cfg.traffic.downlink_bps = 5e6;
  cfg.traffic.uplink_bps = 1e6;
  cfg.audit.mode = audit::AuditMode::kOff;
  cfg.sim_threads = threads;
  return cfg;
}

std::string run_bytes(const topo::Topology& t,
                      const api::ExperimentConfig& cfg) {
  return api::serialize_result(api::run_experiment(t, cfg));
}

TEST(Determinism, ByteStableAcrossThreadCounts) {
  const auto t = two_buildings(2);
  for (api::Scheme s : {api::Scheme::kDcf, api::Scheme::kDomino}) {
    const std::string one = run_bytes(t, part_cfg(s, 1));
    const std::string two = run_bytes(t, part_cfg(s, 2));
    const std::string eight = run_bytes(t, part_cfg(s, 8));
    EXPECT_EQ(one, two) << api::to_string(s);
    EXPECT_EQ(one, eight) << api::to_string(s);
  }
}

TEST(Determinism, ByteStableUnderFaultPlan) {
  const auto t = two_buildings(2);
  auto cfg = part_cfg(api::Scheme::kDomino, 1);
  cfg.faults.backbone.drop_rate = 0.05;
  cfg.faults.signature.false_negative_rate = 0.02;
  cfg.faults.clock.max_skew_ppm = 20.0;
  const std::string one = run_bytes(t, cfg);
  cfg.sim_threads = 2;
  const std::string two = run_bytes(t, cfg);
  cfg.sim_threads = 8;
  const std::string eight = run_bytes(t, cfg);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(Determinism, AuditPassiveAndViolationFreeWhenPartitioned) {
  const auto t = two_buildings(2);
  const std::string plain = run_bytes(t, part_cfg(api::Scheme::kDomino, 2));
  auto cfg = part_cfg(api::Scheme::kDomino, 2);
  cfg.audit.mode = audit::AuditMode::kRecord;
  const auto r = api::run_experiment(t, cfg);
  EXPECT_EQ(api::serialize_result(r), plain);  // auditors stay passive
  ASSERT_NE(r.audit, nullptr);
  EXPECT_GT(r.audit->checks_run, 100u);
  EXPECT_TRUE(r.audit->violation_free()) << r.audit->summary();
}

TEST(Determinism, SingleComponentFallsBackToClassicKernel) {
  const auto t = two_cells_coupled();
  auto cfg = part_cfg(api::Scheme::kDomino, 4);
  const auto r = api::run_experiment(t, cfg);
  EXPECT_EQ(r.sim_partitions, 1u);  // one component: no partitioning
  cfg.sim_threads = -1;             // force-classic reference
  EXPECT_EQ(api::serialize_result(r), run_bytes(t, cfg));
}

TEST(Partitioned, SmokeBothBuildingsCarryTraffic) {
  const auto t = two_buildings(2);
  const auto r = api::run_experiment(t, part_cfg(api::Scheme::kDomino, 2));
  EXPECT_EQ(r.sim_partitions, 2u);
  EXPECT_GT(r.events_executed, 0u);
  ASSERT_FALSE(r.links.empty());
  // Every downlink flow in both buildings delivered something.
  for (const api::LinkResult& lr : r.links) {
    if (!lr.uplink) EXPECT_GT(lr.delivered, 0u) << "flow " << lr.flow.id;
  }
}

TEST(Partitioned, AggregatedEventBudgetInterrupts) {
  const auto t = two_buildings(2);
  api::Experiment e(t, part_cfg(api::Scheme::kDomino, 2));
  e.set_run_guard(nullptr, 2000);
  EXPECT_THROW((void)e.run(), api::ExperimentInterrupted);
}

}  // namespace
}  // namespace dmn
