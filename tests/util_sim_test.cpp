// Unit tests: units, RNG, and the discrete-event simulator kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"
#include "util/time.h"
#include "util/units.h"

namespace dmn {
namespace {

TEST(Units, DbmMwRoundTrip) {
  for (double dbm : {-94.0, -55.0, 0.0, 20.0}) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

TEST(Units, KnownValues) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(10.0), 10.0, 1e-9);
  EXPECT_NEAR(dbm_to_mw(-30.0), 1e-3, 1e-12);
  EXPECT_NEAR(db_to_ratio(3.0103), 2.0, 1e-3);
  EXPECT_NEAR(ratio_to_db(100.0), 20.0, 1e-9);
}

TEST(Units, ZeroPowerIsMinusInfinity) {
  EXPECT_TRUE(std::isinf(mw_to_dbm(0.0)));
  EXPECT_LT(mw_to_dbm(0.0), 0.0);
}

TEST(Time, Conversions) {
  EXPECT_EQ(usec(9), 9000);
  EXPECT_EQ(msec(1), 1000000);
  EXPECT_EQ(sec(1), 1000000000);
  EXPECT_DOUBLE_EQ(to_usec(usec(6.35)), 6.35);
  EXPECT_DOUBLE_EQ(to_sec(sec(50)), 50.0);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(7);
  bool lo = false, hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    lo = lo || x == 0;
    hi = hi || x == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NormalMoments) {
  Rng r(9);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(285.0, 22.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 285.0, 1.0);
  EXPECT_NEAR(std::sqrt(var), 22.0, 1.0);
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  EXPECT_FALSE(r.chance(0.0));
  EXPECT_TRUE(r.chance(1.0));
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child stream must not replay the parent stream.
  Rng parent2(5);
  (void)parent2.engine()();  // consumed by fork
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.uniform() == parent.uniform()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.schedule_at(usec(30), [&] { order.push_back(3); });
  sim.schedule_at(usec(10), [&] { order.push_back(1); });
  sim.schedule_at(usec(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoWithinSameTick) {
  sim::Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(usec(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NowAdvances) {
  sim::Simulator sim;
  TimeNs seen = -1;
  sim.schedule_at(usec(42), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, usec(42));
}

TEST(Simulator, CancelPreventsExecution) {
  sim::Simulator sim;
  bool ran = false;
  auto h = sim.schedule_at(usec(10), [&] { ran = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  sim::Simulator sim;
  int count = 0;
  sim.schedule_at(usec(10), [&] { ++count; });
  sim.schedule_at(usec(20), [&] { ++count; });
  sim.schedule_at(usec(30), [&] { ++count; });
  sim.run_until(usec(20));
  EXPECT_EQ(count, 2);  // the 30us event must not run
  EXPECT_EQ(sim.now(), usec(20));
}

TEST(Simulator, EventsScheduleMoreEvents) {
  sim::Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_in(usec(1), chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), usec(4));
}

TEST(Simulator, StopHaltsLoop) {
  sim::Simulator sim;
  int count = 0;
  sim.schedule_at(usec(1), [&] {
    ++count;
    sim.stop();
  });
  sim.schedule_at(usec(2), [&] { ++count; });
  sim.run_until(usec(10));
  EXPECT_EQ(count, 1);
}

TEST(Simulator, HandlePendingLifecycle) {
  sim::Simulator sim;
  auto h = sim.schedule_at(usec(1), [] {});
  EXPECT_TRUE(h.pending());
  sim.run();
  EXPECT_FALSE(h.pending());
}

TEST(Simulator, StaleHandleCannotCancelRecycledState) {
  // Handle state is pooled: after an event runs, its state slot is recycled
  // and the very next schedule_at typically reuses it. A cancel through the
  // old handle must hit the generation check, not the new event.
  sim::Simulator sim;
  bool first = false;
  bool second = false;
  auto h1 = sim.schedule_at(usec(1), [&] { first = true; });
  sim.run_until(usec(2));
  EXPECT_TRUE(first);
  EXPECT_FALSE(h1.pending());
  auto h2 = sim.schedule_at(usec(3), [&] { second = true; });
  sim.cancel(h1);  // stale: must be a no-op
  EXPECT_TRUE(h2.pending());
  sim.run_until(usec(4));
  EXPECT_TRUE(second);
  EXPECT_FALSE(h2.pending());
}

TEST(Simulator, CancelledEntriesAreReapedWithoutCounting) {
  sim::Simulator sim;
  int ran = 0;
  for (int i = 0; i < 100; ++i) {
    auto h = sim.schedule_at(usec(10 + i), [&] { ++ran; });
    if (i % 2 == 0) sim.cancel(h);
  }
  sim.run();
  EXPECT_EQ(ran, 50);
  EXPECT_EQ(sim.events_executed(), 50u);
}

TEST(Simulator, StatePoolSurvivesManyScheduleRunCycles) {
  // Drive many schedule/run/cancel cycles through a single queue so state
  // slots are recycled over and over; handle semantics must hold at every
  // generation, including cancels through long-stale handles.
  sim::Simulator sim;
  sim::EventHandle stale;
  std::uint64_t ran = 0;
  for (int i = 0; i < 1000; ++i) {
    auto h = sim.schedule_at(sim.now() + usec(1), [&] { ++ran; });
    EXPECT_TRUE(h.pending());
    if (i == 0) stale = h;
    if (i > 0) sim.cancel(stale);  // long-stale handle: must stay a no-op
    sim.run_until(sim.now() + usec(1));
    EXPECT_FALSE(h.pending());
  }
  EXPECT_EQ(ran, 1000u);
  EXPECT_EQ(sim.events_executed(), 1000u);
}

}  // namespace
}  // namespace dmn
