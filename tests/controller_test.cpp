// Unit tests for the DOMINO central controller: batch cadence, plan
// dispatch, demand handling from ROP reports and the downlink peek, and
// batch connection across plans.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "domino/controller.h"
#include "domino/signature_plan.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"
#include "wired/backbone.h"

namespace dmn::domino {
namespace {

struct ControllerHarness {
  sim::Simulator sim;
  topo::Topology topo;
  std::vector<topo::Link> links;
  topo::ConflictGraph graph;
  SignaturePlan signatures;
  wired::Backbone backbone;
  DominoParams params;
  std::unique_ptr<DominoController> ctrl;
  std::vector<ApSchedule> dispatched;
  std::map<std::pair<topo::NodeId, topo::NodeId>, std::size_t>
      downlink_backlog;

  static topo::Topology make_topo() {
    topo::ManualTopologyBuilder b;
    const auto a0 = b.add_ap();
    const auto a1 = b.add_ap();
    b.add_client(a0);  // 2
    b.add_client(a1);  // 3
    b.sense(a0, a1);
    return b.build();
  }

  ControllerHarness()
      : topo(make_topo()),
        links(topo.make_links(true, true)),
        graph(topo::ConflictGraph::build(topo, links)),
        signatures(topo.num_nodes()),
        backbone(sim, {}, Rng(4)) {
    params.batch_slots = 6;
    ctrl = std::make_unique<DominoController>(
        sim, backbone, topo, graph, signatures, params, ConverterParams{},
        usec(470), usec(150));
    ctrl->set_dispatch(
        [this](const ApSchedule& plan) { dispatched.push_back(plan); });
    ctrl->set_downlink_peek([this](const topo::Link& l) {
      const auto it = downlink_backlog.find({l.sender, l.receiver});
      return it == downlink_backlog.end() ? std::size_t{0} : it->second;
    });
  }
};

TEST(Controller, DispatchesPlansToEveryActiveAp) {
  ControllerHarness h;
  h.downlink_backlog[{0, 2}] = 5;
  h.downlink_backlog[{1, 3}] = 5;
  h.ctrl->start(0);
  h.sim.run_until(msec(2));
  ASSERT_GE(h.dispatched.size(), 2u);
  bool saw0 = false, saw1 = false;
  for (const auto& p : h.dispatched) {
    saw0 = saw0 || p.ap == 0;
    saw1 = saw1 || p.ap == 1;
    EXPECT_FALSE(p.slots.empty());
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

TEST(Controller, PlansKeepComingOnTimeoutWithoutReports) {
  ControllerHarness h;
  h.ctrl->start(0);
  h.sim.run_until(msec(30));
  // Even with zero demand and no ROP reports, the fallback timer paces
  // batches (fake maximal covers keep the chain alive).
  EXPECT_GE(h.ctrl->batches_planned(), 5u);
}

TEST(Controller, ReportsAccelerateAndFeedUplinkDemand) {
  ControllerHarness h;
  h.ctrl->start(0);
  h.sim.run_until(msec(1));
  const auto before = h.ctrl->batches_planned();
  // Both APs report: client 2 has 7 packets, client 3 none.
  ApReport r0;
  r0.ap = 0;
  r0.clients.push_back({2, 7});
  ApReport r1;
  r1.ap = 1;
  h.ctrl->on_ap_report(r0);
  h.ctrl->on_ap_report(r1);
  EXPECT_GT(h.ctrl->batches_planned(), before)
      << "completing the poll set must trigger the next plan";
  h.sim.run_until(h.sim.now() + msec(2));  // let the dispatches deliver

  // The new batch must schedule the uplink 2->0 (demand came from ROP).
  bool uplink_scheduled = false;
  for (const auto& p : h.dispatched) {
    if (p.ap != 0) continue;
    for (const auto& row : p.slots) {
      if (row.role == ApSlotPlan::Role::kRxData && row.peer == 2 &&
          !row.fake) {
        uplink_scheduled = true;
      }
    }
  }
  EXPECT_TRUE(uplink_scheduled);
}

TEST(Controller, BatchConnectionOverlapSlotIndices) {
  ControllerHarness h;
  h.downlink_backlog[{0, 2}] = 100;
  h.ctrl->start(0);
  h.sim.run_until(msec(10));
  // Consecutive plans for the same AP must overlap by exactly one slot
  // index (batch connection).
  std::vector<const ApSchedule*> ap0;
  for (const auto& p : h.dispatched) {
    if (p.ap == 0 && !p.slots.empty()) ap0.push_back(&p);
  }
  ASSERT_GE(ap0.size(), 2u);
  for (std::size_t i = 1; i < ap0.size(); ++i) {
    const auto prev_last = ap0[i - 1]->slots.back().global_index;
    const auto next_first = ap0[i]->slots.front().global_index;
    EXPECT_LE(next_first, prev_last)
        << "new batch must re-ship the retained overlap slot";
    EXPECT_EQ(ap0[i]->batch_first_slot, prev_last + 1);
  }
}

TEST(Controller, RopBoundariesSharedAcrossPlans) {
  ControllerHarness h;
  h.downlink_backlog[{0, 2}] = 10;
  h.downlink_backlog[{1, 3}] = 10;
  h.ctrl->start(0);
  h.sim.run_until(msec(2));
  // All plans of one batch carry identical ROP boundary lists.
  std::map<std::uint64_t, std::vector<std::uint64_t>> by_batch;
  for (const auto& p : h.dispatched) {
    auto [it, fresh] = by_batch.try_emplace(p.batch_id, p.rop_boundaries);
    if (!fresh) EXPECT_EQ(it->second, p.rop_boundaries);
  }
  // The first batch polls both APs somewhere.
  EXPECT_FALSE(by_batch.begin()->second.empty());
}

}  // namespace
}  // namespace dmn::domino
