// Unit tests: FFT/channel DSP and Gold-code signatures (the §3.2 substrate).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "dsp/channel.h"
#include "dsp/fft.h"
#include "gold/correlator.h"
#include "gold/gold_code.h"
#include "gold/lfsr.h"
#include "util/rng.h"

namespace dmn {
namespace {

using dsp::Cplx;

TEST(Fft, ImpulseIsFlat) {
  std::vector<Cplx> x(64, Cplx(0, 0));
  x[0] = Cplx(1, 0);
  dsp::fft(x);
  for (const Cplx& c : x) {
    EXPECT_NEAR(c.real(), 1.0, 1e-9);
    EXPECT_NEAR(c.imag(), 0.0, 1e-9);
  }
}

TEST(Fft, SingleToneLandsOnItsBin) {
  const std::size_t n = 256;
  std::vector<Cplx> x(n);
  const std::size_t k = 37;
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = 2.0 * M_PI * static_cast<double>(k * i) / n;
    x[i] = Cplx(std::cos(ph), std::sin(ph));
  }
  dsp::fft(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == k) {
      EXPECT_NEAR(std::abs(x[i]), static_cast<double>(n), 1e-6);
    } else {
      EXPECT_NEAR(std::abs(x[i]), 0.0, 1e-6);
    }
  }
}

TEST(Fft, RoundTripIdentity) {
  Rng rng(11);
  std::vector<Cplx> x(128);
  for (Cplx& c : x) c = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto y = dsp::ifft_copy(dsp::fft_copy(x));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - x[i]), 0.0, 1e-9);
  }
}

TEST(Fft, ParsevalHolds) {
  Rng rng(12);
  std::vector<Cplx> x(64);
  for (Cplx& c : x) c = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const double time_power = dsp::mean_power(x) * 64;
  auto f = dsp::fft_copy(x);
  double freq_energy = 0.0;
  for (const Cplx& c : f) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / 64.0, time_power, 1e-6);
}

TEST(Channel, AwgnPowerMatchesRequest) {
  Rng rng(13);
  std::vector<Cplx> x(20000, Cplx(0, 0));
  dsp::add_awgn(x, 0.25, rng);
  EXPECT_NEAR(dsp::mean_power(x), 0.25, 0.01);
}

TEST(Channel, FrequencyOffsetPreservesPower) {
  Rng rng(14);
  std::vector<Cplx> x(256);
  for (Cplx& c : x) c = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const double before = dsp::mean_power(x);
  dsp::apply_frequency_offset(x, 0.3, 256);
  EXPECT_NEAR(dsp::mean_power(x), before, 1e-9);
}

TEST(Channel, ClipBoundsSamples) {
  std::vector<Cplx> x = {Cplx(5, -7), Cplx(-0.1, 0.2)};
  dsp::clip(x, 1.0);
  EXPECT_DOUBLE_EQ(x[0].real(), 1.0);
  EXPECT_DOUBLE_EQ(x[0].imag(), -1.0);
  EXPECT_DOUBLE_EQ(x[1].real(), -0.1);
  EXPECT_DOUBLE_EQ(x[1].imag(), 0.2);
}

TEST(Channel, ScaleToPower) {
  std::vector<Cplx> x = {Cplx(3, 4), Cplx(-3, 4)};
  dsp::scale_to_power(x, 2.0);
  EXPECT_NEAR(dsp::mean_power(x), 2.0, 1e-12);
}

// ---- m-sequences / Gold codes ------------------------------------------

TEST(Lfsr, MSequenceLengthAndBalance) {
  const auto pair = gold::preferred_pair(7);
  const auto seq = gold::m_sequence(7, pair.taps_u);
  EXPECT_EQ(seq.size(), 127u);
  int ones = 0;
  for (int b : seq) ones += b;
  EXPECT_EQ(ones, 64);  // m-sequence balance property: 2^(m-1) ones
}

TEST(Lfsr, NonPrimitivePolynomialRejected) {
  // x^4 + x^2 + 1 is not primitive.
  EXPECT_THROW(gold::m_sequence(4, {4, 2}), std::invalid_argument);
}

TEST(Lfsr, PreferredPairAvailability) {
  EXPECT_TRUE(gold::has_preferred_pair(5));
  EXPECT_TRUE(gold::has_preferred_pair(7));
  EXPECT_TRUE(gold::has_preferred_pair(9));
  EXPECT_FALSE(gold::has_preferred_pair(8));  // 255: no preferred pairs
  EXPECT_THROW(gold::preferred_pair(8), std::invalid_argument);
}

class GoldSetTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldSetTest, SetSizeAndLength) {
  gold::GoldCodeSet set(GetParam());
  const std::size_t n = (std::size_t{1} << GetParam()) - 1;
  EXPECT_EQ(set.length(), n);
  EXPECT_EQ(set.size(), n + 2);  // the paper's 129 for degree 7
}

TEST_P(GoldSetTest, AutocorrelationPeak) {
  gold::GoldCodeSet set(GetParam());
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, set.size() / 2}) {
    EXPECT_EQ(set.xcorr(i, i, 0), static_cast<int>(set.length()));
  }
}

TEST_P(GoldSetTest, CrossCorrelationBounded) {
  gold::GoldCodeSet set(GetParam());
  const int bound = set.t_bound();
  // Spot-check a handful of pairs across all shifts (full check is O(n^3)).
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_LE(set.max_abs_xcorr(i, j), bound)
          << "pair " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, GoldSetTest, ::testing::Values(5, 6, 7));

TEST(GoldSet, PaperParameters) {
  gold::GoldCodeSet set(7);
  EXPECT_EQ(set.size(), 129u);      // "a set of 129 Gold codes"
  EXPECT_EQ(set.length(), 127u);    // "with length 127"
  EXPECT_EQ(set.t_bound(), 17);     // t(7) = 2^4 + 1
  // 6.35 us at 20 MHz BPSK (§3.2).
  EXPECT_NEAR(static_cast<double>(set.duration_ns(20e6)) / 1000.0, 6.35,
              0.01);
}

TEST(Correlator, DetectsCleanSignature) {
  gold::GoldCodeSet set(7);
  gold::Correlator corr(set);
  Rng rng(20);
  std::vector<gold::BurstSender> senders = {
      gold::BurstSender{{5}, 1.0, 0, 0.0}};
  const auto rx = gold::synthesize_burst(set, senders, 0.01, 16, rng);
  EXPECT_TRUE(corr.detect(rx, 5).detected);
  // A code that was not transmitted must not be detected.
  EXPECT_FALSE(corr.detect(rx, 77).detected);
}

TEST(Correlator, DetectsUnderChipOffsetAndPhase) {
  gold::GoldCodeSet set(7);
  gold::Correlator corr(set);
  Rng rng(21);
  std::vector<gold::BurstSender> senders = {
      gold::BurstSender{{9}, 1.0, 3, 1.1}};
  const auto rx = gold::synthesize_burst(set, senders, 0.01, 16, rng);
  const auto r = corr.detect(rx, 9);
  EXPECT_TRUE(r.detected);
  EXPECT_EQ(r.lag, 3u);
}

TEST(Correlator, CombinedSignaturesAllDetected) {
  gold::GoldCodeSet set(7);
  gold::Correlator corr(set);
  Rng rng(22);
  std::vector<gold::BurstSender> senders = {
      gold::BurstSender{{1, 2, 3, 4}, 1.0, 0, 0.0}};
  const auto rx = gold::synthesize_burst(set, senders, 0.01, 16, rng);
  for (std::size_t code : {1u, 2u, 3u, 4u}) {
    EXPECT_TRUE(corr.detect(rx, code).detected) << "code " << code;
  }
}

TEST(Correlator, TwoConcurrentSendersDifferentSignatures) {
  gold::GoldCodeSet set(7);
  gold::Correlator corr(set);
  Rng rng(23);
  std::vector<gold::BurstSender> senders = {
      gold::BurstSender{{10, 11}, 1.0, 0, 0.3},
      gold::BurstSender{{12, 13}, 1.0, 2, 2.1}};
  const auto rx = gold::synthesize_burst(set, senders, 0.01, 16, rng);
  for (std::size_t code : {10u, 11u, 12u, 13u}) {
    EXPECT_TRUE(corr.detect(rx, code).detected) << "code " << code;
  }
}

TEST(Correlator, FalsePositiveRateBelowOnePercent) {
  gold::GoldCodeSet set(7);
  gold::Correlator corr(set);
  Rng rng(24);
  int fp = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<gold::BurstSender> senders = {
        gold::BurstSender{{(t % 60) + 60u}, 1.0, 0, 0.0}};
    const auto rx = gold::synthesize_burst(set, senders, 0.05, 16, rng);
    if (corr.detect(rx, t % 40).detected) ++fp;
  }
  EXPECT_LE(static_cast<double>(fp) / trials, 0.01);
}

}  // namespace
}  // namespace dmn
