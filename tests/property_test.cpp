// Property-style parameterized sweeps over random topologies and seeds:
// invariants that must hold regardless of the draw.

#include <gtest/gtest.h>

#include "api/experiment.h"
#include "domino/rand_scheduler.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"

namespace dmn {
namespace {

// ---- Conflict-graph invariants over random trace draws ---------------------

class ConflictGraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConflictGraphProperty, SymmetricAndAckImpliesSuperset) {
  Rng rng(GetParam());
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 6, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto g = topo::ConflictGraph::build(t, links);
  for (std::size_t i = 0; i < g.num_links(); ++i) {
    for (std::size_t j = 0; j < g.num_links(); ++j) {
      const auto a = static_cast<topo::LinkId>(i);
      const auto b = static_cast<topo::LinkId>(j);
      EXPECT_EQ(g.conflicts(a, b), g.conflicts(b, a));
      // Full rule is a superset of the data-only rule.
      if (g.data_conflicts(a, b)) EXPECT_TRUE(g.conflicts(a, b));
    }
  }
}

TEST_P(ConflictGraphProperty, RandSlotsAlwaysIndependent) {
  Rng rng(GetParam() * 7 + 1);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 6, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto g = topo::ConflictGraph::build(t, links);
  domino::RandScheduler rand(g);
  std::vector<std::size_t> demand(g.num_links());
  for (auto& d : demand) d = rng.uniform_int(0, 5);
  for (int round = 0; round < 20; ++round) {
    const auto slot = rand.schedule_slot(demand);
    EXPECT_TRUE(g.is_independent(slot));
    for (topo::LinkId l : slot) {
      EXPECT_GT(demand[static_cast<std::size_t>(l)], 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictGraphProperty,
                         ::testing::Range(1, 9));

// ---- End-to-end conservation properties ------------------------------------

struct SweepCase {
  api::Scheme scheme;
  std::uint64_t seed;
};

class ConservationProperty
    : public ::testing::TestWithParam<std::tuple<api::Scheme, int>> {};

TEST_P(ConservationProperty, DeliveredNeverExceedsOfferedAndDelayPositive) {
  const auto [scheme, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 4, 2, {}, rng);

  api::ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.duration = msec(400);
  cfg.traffic.downlink_bps = 4e6;
  cfg.traffic.uplink_bps = 2e6;
  const auto r = api::run_experiment(t, cfg);

  for (const auto& l : r.links) {
    // Rate-limited sources: goodput can never exceed the offered rate by
    // more than one packet of rounding.
    const double offered = l.uplink ? 2e6 : 4e6;
    EXPECT_LE(l.throughput_bps, offered * 1.05) << to_string(scheme);
    if (l.delivered > 0) {
      // Delay is at least one frame airtime (384 us at 12 Mbps).
      EXPECT_GE(l.mean_delay_us, 380.0);
    }
  }
  EXPECT_GE(r.jain_fairness, 0.0);
  EXPECT_LE(r.jain_fairness, 1.000001);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationProperty,
    ::testing::Combine(::testing::Values(api::Scheme::kDcf,
                                         api::Scheme::kCentaur,
                                         api::Scheme::kDomino,
                                         api::Scheme::kOmniscient),
                       ::testing::Values(11, 22, 33)));

// ---- DOMINO-vs-DCF dominance on hidden-heavy topologies --------------------

class DominanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DominanceProperty, DominoAtLeastCompetitiveOnSaturatedTmn) {
  Rng rng(GetParam() * 131);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 5, 2, {}, rng);

  api::ExperimentConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  cfg.duration = sec(1);
  cfg.traffic.saturate_downlink = true;

  cfg.scheme = api::Scheme::kDcf;
  const auto dcf = api::run_experiment(t, cfg);
  cfg.scheme = api::Scheme::kDomino;
  const auto dom = api::run_experiment(t, cfg);
  cfg.scheme = api::Scheme::kOmniscient;
  const auto omni = api::run_experiment(t, cfg);

  // DOMINO must stay within a modest factor of DCF at worst (scheduling
  // overhead), and never beat the genie.
  EXPECT_GT(dom.aggregate_throughput_bps,
            0.75 * dcf.aggregate_throughput_bps);
  EXPECT_LE(dom.aggregate_throughput_bps,
            1.02 * omni.aggregate_throughput_bps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dmn
