// Property-style parameterized sweeps over random topologies and seeds:
// invariants that must hold regardless of the draw.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "api/experiment.h"
#include "domino/converter.h"
#include "domino/rand_scheduler.h"
#include "domino/signature_plan.h"
#include "topo/conflict_graph.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"

namespace dmn {
namespace {

// ---- Conflict-graph invariants over random trace draws ---------------------

class ConflictGraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConflictGraphProperty, SymmetricAndAckImpliesSuperset) {
  Rng rng(GetParam());
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 6, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto g = topo::ConflictGraph::build(t, links);
  for (std::size_t i = 0; i < g.num_links(); ++i) {
    for (std::size_t j = 0; j < g.num_links(); ++j) {
      const auto a = static_cast<topo::LinkId>(i);
      const auto b = static_cast<topo::LinkId>(j);
      EXPECT_EQ(g.conflicts(a, b), g.conflicts(b, a));
      // Full rule is a superset of the data-only rule.
      if (g.data_conflicts(a, b)) EXPECT_TRUE(g.conflicts(a, b));
    }
  }
}

TEST_P(ConflictGraphProperty, RandSlotsAlwaysIndependent) {
  Rng rng(GetParam() * 7 + 1);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 6, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto g = topo::ConflictGraph::build(t, links);
  domino::RandScheduler rand(g);
  std::vector<std::size_t> demand(g.num_links());
  for (auto& d : demand) d = rng.uniform_int(0, 5);
  for (int round = 0; round < 20; ++round) {
    const auto slot = rand.schedule_slot(demand);
    EXPECT_TRUE(g.is_independent(slot));
    for (topo::LinkId l : slot) {
      EXPECT_GT(demand[static_cast<std::size_t>(l)], 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictGraphProperty,
                         ::testing::Range(1, 9));

// ---- Schedule-converter invariants over random topologies and batches ------

class ConverterProperty : public ::testing::TestWithParam<int> {};

TEST_P(ConverterProperty, InvariantsHoldAcrossRandomBatches) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 5, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto g = topo::ConflictGraph::build(t, links);
  const domino::SignaturePlan sigs(t.num_nodes());
  domino::RandScheduler sched(g);
  const domino::ConverterParams params;
  domino::ScheduleConverter conv(t, g, sigs, params);

  std::vector<domino::SlotEntry> prev_last;
  std::uint64_t next_index = 0;
  for (std::uint64_t batch = 1; batch <= 6; ++batch) {
    std::vector<std::size_t> demand(g.num_links());
    for (auto& d : demand) d = static_cast<std::size_t>(rng.uniform_int(0, 3));
    const auto strict = sched.schedule_batch(demand, 5);
    if (strict.empty()) continue;
    std::vector<topo::NodeId> rop;
    for (topo::NodeId ap : t.aps()) {
      if (rng.uniform_int(0, 1) == 1) rop.push_back(ap);
    }
    const auto rs = conv.convert(strict, prev_last, rop, batch, next_index);
    ASSERT_EQ(rs.slots.size(), strict.size() + 1);

    // Batch connection: the overlap slot repeats the previous batch's last
    // slot verbatim, and global indices are contiguous from it.
    ASSERT_EQ(rs.slots[0].entries.size(), prev_last.size());
    for (std::size_t i = 0; i < prev_last.size(); ++i) {
      EXPECT_EQ(rs.slots[0].entries[i].link, prev_last[i].link);
      EXPECT_EQ(rs.slots[0].entries[i].fake, prev_last[i].fake);
    }
    for (std::size_t s = 0; s < rs.slots.size(); ++s) {
      EXPECT_EQ(rs.slots[s].global_index, next_index + s);
    }

    for (std::size_t s = 1; s < rs.slots.size(); ++s) {
      const auto& slot = rs.slots[s];
      const auto& strict_slot = strict[s - 1];

      // Real entries map back exactly to the strict slot (multiset).
      std::multiset<topo::LinkId> real, want(strict_slot.begin(),
                                             strict_slot.end());
      for (const auto& e : slot.entries) {
        if (!e.fake) real.insert(e.link);
      }
      EXPECT_EQ(real, want) << "batch " << batch << " slot " << s;

      // Fake entries only fill capacity the strict slot left uncovered,
      // and the whole slot stays independent (fake pairs under the
      // data-only rule, real pairs under the full rule).
      for (std::size_t i = 0; i < slot.entries.size(); ++i) {
        const auto& ei = slot.entries[i];
        if (ei.fake) EXPECT_EQ(want.count(ei.link), 0u);
        for (std::size_t j = i + 1; j < slot.entries.size(); ++j) {
          const auto& ej = slot.entries[j];
          EXPECT_NE(ei.link, ej.link);
          if (ei.fake || ej.fake) {
            EXPECT_FALSE(g.data_conflicts(ei.link, ej.link));
          } else {
            EXPECT_FALSE(g.conflicts(ei.link, ej.link));
          }
        }
      }
    }

    // Trigger budgets at every boundary: in-degree <= max_inbound per
    // target; out-degree <= max_outbound per via (self-continuations and
    // in-band instructed continuations cost no signature budget).
    for (const auto& slot : rs.slots) {
      std::map<topo::NodeId, int> inbound, outbound;
      for (const auto& tr : slot.triggers) {
        ++inbound[tr.target];
        if (!tr.continuation && tr.via != tr.target) ++outbound[tr.via];
      }
      for (const auto& [node, n] : inbound) {
        EXPECT_LE(n, params.max_inbound) << "target " << node;
      }
      for (const auto& [node, n] : outbound) {
        EXPECT_LE(n, params.max_outbound) << "via " << node;
      }
    }

    prev_last = rs.slots.back().entries;
    next_index = rs.slots.back().global_index;
  }
}

TEST_P(ConverterProperty, NoFakeAblationEmitsOnlyRealEntries) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 4, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto g = topo::ConflictGraph::build(t, links);
  const domino::SignaturePlan sigs(t.num_nodes());
  domino::RandScheduler sched(g);
  domino::ConverterParams params;
  params.insert_fake_links = false;
  domino::ScheduleConverter conv(t, g, sigs, params);

  std::vector<std::size_t> demand(g.num_links());
  for (auto& d : demand) d = static_cast<std::size_t>(rng.uniform_int(1, 3));
  const auto strict = sched.schedule_batch(demand, 5);
  ASSERT_FALSE(strict.empty());
  const auto rs = conv.convert(strict, {}, {}, 1, 0);
  for (std::size_t s = 1; s < rs.slots.size(); ++s) {
    std::multiset<topo::LinkId> real, want(strict[s - 1].begin(),
                                           strict[s - 1].end());
    for (const auto& e : rs.slots[s].entries) {
      EXPECT_FALSE(e.fake);
      real.insert(e.link);
    }
    EXPECT_EQ(real, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConverterProperty, ::testing::Range(1, 9));

// ---- End-to-end conservation properties ------------------------------------

struct SweepCase {
  api::Scheme scheme;
  std::uint64_t seed;
};

class ConservationProperty
    : public ::testing::TestWithParam<std::tuple<api::Scheme, int>> {};

TEST_P(ConservationProperty, DeliveredNeverExceedsOfferedAndDelayPositive) {
  const auto [scheme, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 4, 2, {}, rng);

  api::ExperimentConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.duration = msec(400);
  cfg.traffic.downlink_bps = 4e6;
  cfg.traffic.uplink_bps = 2e6;
  const auto r = api::run_experiment(t, cfg);

  for (const auto& l : r.links) {
    // Rate-limited sources: goodput can never exceed the offered rate by
    // more than one packet of rounding.
    const double offered = l.uplink ? 2e6 : 4e6;
    EXPECT_LE(l.throughput_bps, offered * 1.05) << to_string(scheme);
    if (l.delivered > 0) {
      // Delay is at least one frame airtime (384 us at 12 Mbps).
      EXPECT_GE(l.mean_delay_us, 380.0);
    }
  }
  EXPECT_GE(r.jain_fairness, 0.0);
  EXPECT_LE(r.jain_fairness, 1.000001);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConservationProperty,
    ::testing::Combine(::testing::Values(api::Scheme::kDcf,
                                         api::Scheme::kCentaur,
                                         api::Scheme::kDomino,
                                         api::Scheme::kOmniscient),
                       ::testing::Values(11, 22, 33)));

// ---- DOMINO-vs-DCF dominance on hidden-heavy topologies --------------------

class DominanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(DominanceProperty, DominoAtLeastCompetitiveOnSaturatedTmn) {
  Rng rng(GetParam() * 131);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 5, 2, {}, rng);

  api::ExperimentConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  cfg.duration = sec(1);
  cfg.traffic.saturate_downlink = true;

  cfg.scheme = api::Scheme::kDcf;
  const auto dcf = api::run_experiment(t, cfg);
  cfg.scheme = api::Scheme::kDomino;
  const auto dom = api::run_experiment(t, cfg);
  cfg.scheme = api::Scheme::kOmniscient;
  const auto omni = api::run_experiment(t, cfg);

  // DOMINO must stay within a modest factor of DCF at worst (scheduling
  // overhead), and never beat the genie.
  EXPECT_GT(dom.aggregate_throughput_bps,
            0.75 * dcf.aggregate_throughput_bps);
  EXPECT_LE(dom.aggregate_throughput_bps,
            1.02 * omni.aggregate_throughput_bps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceProperty, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dmn
