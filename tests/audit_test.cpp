// Tests for the online invariant auditor (src/audit): passivity
// (byte-identical results), violation-free seed configurations, the
// cross-scheme differential oracle, and the mutant self-test that proves
// each audited invariant actually catches its corresponding bug.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "api/experiment.h"
#include "api/sweep_io.h"
#include "audit/audit.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"

namespace dmn::api {
namespace {

topo::Topology two_cells() {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.sense(a0, a1);
  return b.build();
}

topo::Topology tmn(std::uint64_t seed, std::size_t aps = 4,
                   std::size_t clients = 2) {
  Rng rng(seed);
  const auto trace = topo::synthesize_trace({}, rng);
  return topo::Topology::build_tmn(trace.rss, aps, clients, {}, rng);
}

ExperimentConfig audited_cfg(Scheme s, audit::AuditMode mode) {
  ExperimentConfig cfg;
  cfg.scheme = s;
  cfg.duration = msec(400);
  cfg.traffic.downlink_bps = 5e6;
  cfg.traffic.uplink_bps = 1e6;  // exercises ROP polling + triggers
  cfg.audit.mode = mode;
  return cfg;
}

// ---- mode resolution --------------------------------------------------------

TEST(AuditMode, ExplicitModeWinsOverEnvironment) {
  ::setenv("DMN_AUDIT", "1", 1);
  audit::AuditConfig cfg;
  cfg.mode = audit::AuditMode::kOff;
  EXPECT_EQ(audit::resolve_mode(cfg), audit::AuditMode::kOff);
  cfg.mode = audit::AuditMode::kRecord;
  EXPECT_EQ(audit::resolve_mode(cfg), audit::AuditMode::kRecord);
  ::unsetenv("DMN_AUDIT");
}

TEST(AuditMode, InheritReadsEnvironment) {
  audit::AuditConfig cfg;  // kInherit
  ::unsetenv("DMN_AUDIT");
  EXPECT_EQ(audit::resolve_mode(cfg), audit::AuditMode::kOff);
  ::setenv("DMN_AUDIT", "0", 1);
  EXPECT_EQ(audit::resolve_mode(cfg), audit::AuditMode::kOff);
  ::setenv("DMN_AUDIT", "record", 1);
  EXPECT_EQ(audit::resolve_mode(cfg), audit::AuditMode::kRecord);
  ::setenv("DMN_AUDIT", "1", 1);
  EXPECT_EQ(audit::resolve_mode(cfg), audit::AuditMode::kThrow);
  ::unsetenv("DMN_AUDIT");
}

// ---- violation-free seed configurations -------------------------------------

TEST(Audit, RunsAndReportsChecks) {
  auto cfg = audited_cfg(Scheme::kDomino, audit::AuditMode::kRecord);
  const auto r = run_experiment(tmn(5), cfg);
  ASSERT_NE(r.audit, nullptr);
  EXPECT_GT(r.audit->checks_run, 1000u);
  EXPECT_TRUE(r.audit->violation_free()) << r.audit->summary();
}

TEST(Audit, AllSchemesViolationFree) {
  for (Scheme s : {Scheme::kDcf, Scheme::kCentaur, Scheme::kDomino,
                   Scheme::kOmniscient}) {
    for (std::uint64_t seed : {1u, 7u}) {
      auto cfg = audited_cfg(s, audit::AuditMode::kThrow);
      cfg.seed = seed;
      const auto r = run_experiment(tmn(5), cfg);  // throws on violation
      ASSERT_NE(r.audit, nullptr) << to_string(s);
      EXPECT_TRUE(r.audit->violation_free()) << r.audit->summary();
    }
  }
}

TEST(Audit, TcpDominoViolationFree) {
  auto cfg = audited_cfg(Scheme::kDomino, audit::AuditMode::kThrow);
  cfg.traffic.kind = TrafficKind::kTcp;
  cfg.traffic.uplink_bps = 0.0;
  const auto r = run_experiment(two_cells(), cfg);
  ASSERT_NE(r.audit, nullptr);
  EXPECT_TRUE(r.audit->violation_free()) << r.audit->summary();
}

TEST(Audit, FaultedDominoViolationFree) {
  // Faults perturb the chain but must not break the audited semantics:
  // missed triggers cause recovery, not invariant violations.
  auto cfg = audited_cfg(Scheme::kDomino, audit::AuditMode::kThrow);
  cfg.duration = msec(600);
  cfg.faults.signature.false_negative_rate = 0.02;
  cfg.faults.clock.max_skew_ppm = 20.0;
  cfg.faults.backbone.drop_rate = 0.02;
  const auto r = run_experiment(tmn(5), cfg);
  ASSERT_NE(r.audit, nullptr);
  EXPECT_TRUE(r.audit->violation_free()) << r.audit->summary();
}

TEST(Audit, ForgedTriggersSkipProvenanceButStayViolationFree) {
  // Forged false positives make nodes act on signatures that were never on
  // the air; the provenance invariant is gated off, everything else holds.
  auto cfg = audited_cfg(Scheme::kDomino, audit::AuditMode::kThrow);
  cfg.faults.signature.false_positive_rate = 0.01;
  const auto r = run_experiment(tmn(5), cfg);
  ASSERT_NE(r.audit, nullptr);
  EXPECT_TRUE(r.audit->violation_free()) << r.audit->summary();
}

// ---- passivity: audit-on results byte-identical to audit-off ---------------

TEST(Audit, ResultsByteIdenticalWithAuditOn) {
  for (Scheme s : {Scheme::kDcf, Scheme::kDomino}) {
    auto off = audited_cfg(s, audit::AuditMode::kOff);
    auto on = audited_cfg(s, audit::AuditMode::kThrow);
    const auto r_off = run_experiment(tmn(5), off);
    const auto r_on = run_experiment(tmn(5), on);
    EXPECT_EQ(serialize_result(r_off), serialize_result(r_on))
        << to_string(s);
    EXPECT_EQ(r_off.audit, nullptr);
    ASSERT_NE(r_on.audit, nullptr);
  }
}

// ---- differential oracle ----------------------------------------------------

TEST(Audit, DominoNeverBeatsOmniscient) {
  // The omniscient scheduler is the centralized upper bound DOMINO
  // approximates; on identical topology and traffic draws DOMINO must not
  // exceed it.
  for (std::uint64_t topo_seed : {5u, 11u}) {
    const auto t = tmn(topo_seed);
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      ExperimentConfig cfg;
      cfg.duration = sec(1);
      cfg.traffic.saturate_downlink = true;
      cfg.seed = seed;
      cfg.scheme = Scheme::kDomino;
      const auto domino = run_experiment(t, cfg);
      cfg.scheme = Scheme::kOmniscient;
      const auto omni = run_experiment(t, cfg);
      EXPECT_LE(domino.aggregate_throughput_bps,
                omni.aggregate_throughput_bps * 1.000001)
          << "topo seed " << topo_seed << " seed " << seed;
    }
  }
}

// ---- mutant self-test -------------------------------------------------------

// Runs a deliberately broken stack variant in record mode and returns the
// report; the matching invariant must have tripped.
std::shared_ptr<const audit::AuditReport> run_mutant(audit::Mutation m) {
  auto cfg = audited_cfg(Scheme::kDomino, audit::AuditMode::kRecord);
  cfg.audit.mutation = m;
  const auto r = run_experiment(tmn(5), cfg);
  EXPECT_NE(r.audit, nullptr);
  return r.audit;
}

bool tripped_with_prefix(const audit::AuditReport& rep,
                         const std::string& prefix) {
  for (const auto& [name, count] : rep.violations_by_invariant) {
    if (count > 0 && name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::string tripped_names(const audit::AuditReport& rep) {
  std::string out;
  for (const auto& [name, count] : rep.violations_by_invariant) {
    out += name + "(" + std::to_string(count) + ") ";
  }
  return out.empty() ? "<none>" : out;
}

TEST(AuditMutant, MediumLeakPowerCaught) {
  const auto rep = run_mutant(audit::Mutation::kMediumLeakPower);
  EXPECT_TRUE(tripped_with_prefix(*rep, "medium.")) << tripped_names(*rep);
}

TEST(AuditMutant, ConverterExtraTriggerCaught) {
  const auto rep = run_mutant(audit::Mutation::kConverterExtraTrigger);
  EXPECT_TRUE(tripped_with_prefix(*rep, "converter.trigger-in-degree"))
      << tripped_names(*rep);
}

TEST(AuditMutant, ConverterConflictingEntryCaught) {
  const auto rep = run_mutant(audit::Mutation::kConverterConflictingEntry);
  EXPECT_TRUE(tripped_with_prefix(*rep, "converter.")) << tripped_names(*rep);
}

TEST(AuditMutant, TriggerWithoutSignatureCaught) {
  const auto rep = run_mutant(audit::Mutation::kMacTriggerWithoutSignature);
  EXPECT_TRUE(tripped_with_prefix(*rep, "domino.")) << tripped_names(*rep);
}

TEST(AuditMutant, DoubleDeliveryCaught) {
  const auto rep = run_mutant(audit::Mutation::kMacDoubleDelivery);
  EXPECT_TRUE(tripped_with_prefix(*rep, "traffic.duplicate-delivery"))
      << tripped_names(*rep);
}

TEST(AuditMutant, RopReportOffsetCaught) {
  const auto rep = run_mutant(audit::Mutation::kRopReportOffset);
  EXPECT_TRUE(tripped_with_prefix(*rep, "rop.")) << tripped_names(*rep);
}

TEST(AuditMutant, ThrowModeSurfacesSimTimeContext) {
  auto cfg = audited_cfg(Scheme::kDomino, audit::AuditMode::kThrow);
  cfg.audit.mutation = audit::Mutation::kMacDoubleDelivery;
  try {
    run_experiment(tmn(5), cfg);
    FAIL() << "expected AuditViolation";
  } catch (const audit::AuditViolation& e) {
    EXPECT_EQ(e.invariant, "traffic.duplicate-delivery");
    EXPECT_GT(e.sim_time, 0);
    EXPECT_NE(std::string(e.what()).find("traffic.duplicate-delivery"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dmn::api
