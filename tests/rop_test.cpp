// Unit tests: ROP — Table 1 parameters, the Figure 3 subcarrier map, the
// signal-level OFDM polling PHY (Figures 5/6 behaviours) and the protocol
// pieces (queue-report codec, subchannel allocator, MAC-level link model).

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "api/experiment.h"
#include "rop/params.h"
#include "rop/rop_phy.h"
#include "rop/rop_protocol.h"
#include "rop/subchannel_map.h"
#include "topo/topology.h"
#include "util/rng.h"

namespace dmn::rop {
namespace {

TEST(RopParams, Table1Defaults) {
  RopParams p;
  EXPECT_EQ(p.fft_size, 256u);
  EXPECT_EQ(p.data_per_subchannel, 6u);
  EXPECT_EQ(p.guard_per_subchannel, 3u);
  EXPECT_EQ(p.num_subchannels, 24u);
  EXPECT_EQ(p.cp_samples, 64u);                    // 3.2 us at 20 MHz
  EXPECT_EQ(p.max_queue_report(), 63u);            // 2^6 - 1
  EXPECT_EQ(p.symbol_duration(), usec(16));        // Table 1 symbol time
}

TEST(SubchannelMap, AllBinsDisjointAndDcUnused) {
  RopParams p;
  SubchannelMap map(p);
  std::set<std::size_t> used;
  for (std::size_t sc = 0; sc < p.num_subchannels; ++sc) {
    for (std::size_t b : map.data_bins(sc)) {
      EXPECT_TRUE(used.insert(b).second) << "bin reused: " << b;
      EXPECT_NE(b, 0u) << "DC subcarrier must stay unused";
    }
    for (std::size_t b : map.guard_bins(sc)) {
      EXPECT_TRUE(used.insert(b).second);
      EXPECT_NE(b, 0u);
    }
  }
  // 24 x (6 + 3) bins used; remainder (39) plus DC form the guard band.
  EXPECT_EQ(used.size(), 24u * 9u);
}

TEST(SubchannelMap, EdgeGuardBandMatchesFigure3) {
  RopParams p;
  SubchannelMap map(p);
  std::set<std::size_t> used;
  used.insert(0);  // DC
  for (std::size_t sc = 0; sc < p.num_subchannels; ++sc) {
    for (std::size_t b : map.data_bins(sc)) used.insert(b);
    for (std::size_t b : map.guard_bins(sc)) used.insert(b);
  }
  EXPECT_EQ(p.fft_size - used.size(), 39u);  // "39 subcarriers guard band"
}

TEST(SubchannelMap, SplitsAcrossSpectrumHalves) {
  RopParams p;
  SubchannelMap map(p);
  // Subchannels 0..11 on positive bins, 12..23 on negative (wrapped) bins.
  EXPECT_LT(map.data_bin(0, 0), p.fft_size / 2);
  EXPECT_GT(map.data_bin(12, 0), p.fft_size / 2);
}

TEST(SubchannelMap, AdjacentDistanceEqualsGuardPlusOne) {
  RopParams p;
  SubchannelMap map(p);
  // Neighbouring subchannels on the same side: nearest data bins are
  // separated by guard+1 bins.
  EXPECT_EQ(map.bin_distance(0, 1), p.guard_per_subchannel + 1);
}

TEST(QueueReport, EncodeCapsAt63) {
  RopParams p;
  EXPECT_EQ(encode_queue(0, p).reported, 0u);
  EXPECT_EQ(encode_queue(63, p).reported, 63u);
  const auto r = encode_queue(100, p);
  EXPECT_EQ(r.reported, 63u);
  EXPECT_EQ(r.unreported, 37u);  // "keep track of unreported packets"
}

TEST(QueueReport, SaturatesExactlyAtBoundary) {
  RopParams p;
  // 6 data bits: 63 is the last exactly-representable length; 64 is the
  // first saturated one and must carry its remainder forward.
  EXPECT_EQ(encode_queue(62, p).reported, 62u);
  EXPECT_EQ(encode_queue(62, p).unreported, 0u);
  const auto r = encode_queue(64, p);
  EXPECT_EQ(r.reported, 63u);
  EXPECT_EQ(r.unreported, 1u);
}

// ---- Negative paths: layout and capacity guards ----------------------------

TEST(SubchannelMap, RejectsLayoutExceedingHalfSpectrum) {
  RopParams p;
  p.guard_per_subchannel = 10;  // block = 16; 12 per side * 16 + 1 > 128
  try {
    SubchannelMap map(p);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "SubchannelMap: layout exceeds half spectrum: "
                  "12 subchannels per side x 16 bins + 1 edge guard > "
                  "128 bins"),
              std::string::npos)
        << e.what();
  }
}

TEST(SubchannelMap, AcceptsTightestFittingLayout) {
  RopParams p;
  p.guard_per_subchannel = 4;  // block = 10; 12 * 10 + 1 = 121 <= 128
  SubchannelMap map(p);
  EXPECT_EQ(map.num_subchannels(), 24u);
}

TEST(RopCapacity, DominoRejectsMoreClientsThanSubchannels) {
  // The AP polls all of its clients in one ROP symbol, one subchannel
  // each; a 25th client would silently share a subchannel and collide.
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  for (int i = 0; i < 25; ++i) b.add_client(ap);
  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDomino;
  cfg.duration = msec(10);
  try {
    api::run_experiment(b.build(), cfg);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(
                  "DOMINO: AP " + std::to_string(ap) +
                  " serves 25 clients but ROP polls at most 24 "
                  "subchannels per symbol"),
              std::string::npos)
        << e.what();
  }
}

TEST(RopCapacity, DominoAcceptsExactlyFullSymbol) {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  for (int i = 0; i < 24; ++i) b.add_client(ap);
  (void)ap;
  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDomino;
  cfg.duration = msec(50);
  cfg.traffic.downlink_bps = 1e5;
  EXPECT_NO_THROW(api::run_experiment(b.build(), cfg));
}

TEST(Allocator, SortsByRssForAdjacency) {
  RopParams p;
  SubchannelAllocator alloc(p);
  const std::vector<topo::NodeId> clients = {10, 11, 12};
  const std::vector<double> rss = {-80.0, -50.0, -65.0};
  const auto out = alloc.assign(clients, rss);
  ASSERT_EQ(out.size(), 3u);
  // Strongest client gets subchannel 0; order follows descending RSS.
  EXPECT_EQ(out[0].client, 11);
  EXPECT_EQ(out[1].client, 12);
  EXPECT_EQ(out[2].client, 10);
  EXPECT_EQ(out[0].subchannel, 0u);
}

TEST(Allocator, InsertsGapAboveTolerance) {
  RopParams p;
  SubchannelAllocator alloc(p);
  const std::vector<topo::NodeId> clients = {1, 2};
  const std::vector<double> rss = {-30.0, -75.0};  // 45 dB apart > 38
  const auto out = alloc.assign(clients, rss);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_GE(out[1].subchannel - out[0].subchannel, 2u);  // gap inserted
}

TEST(Allocator, SplitsIntoRoundsBeyond24) {
  RopParams p;
  SubchannelAllocator alloc(p);
  std::vector<topo::NodeId> clients;
  std::vector<double> rss;
  for (int i = 0; i < 30; ++i) {
    clients.push_back(i);
    rss.push_back(-60.0 - i * 0.1);
  }
  const auto out = alloc.assign(clients, rss);
  ASSERT_EQ(out.size(), 30u);
  std::size_t round1 = 0;
  for (const auto& a : out) {
    if (a.round == 1) ++round1;
    EXPECT_LT(a.subchannel, 24u);
  }
  EXPECT_EQ(round1, 6u);  // 30 - 24 overflow into the second poll round
}

TEST(LinkModel, ToleranceGrowsWithSeparationAndSaturates) {
  RopLinkModel model{RopParams{}};
  EXPECT_LT(model.tolerance_db(1), model.tolerance_db(2));
  EXPECT_LT(model.tolerance_db(2), model.tolerance_db(4));
  // Paper's design point: 3 guard subcarriers (distance 4) -> ~38 dB.
  EXPECT_NEAR(model.tolerance_db(4), 38.0, 1.0);
  // Hardware floor caps it.
  EXPECT_EQ(model.tolerance_db(10), model.tolerance_db(20));
}

TEST(LinkModel, SnrGateAtFourDb) {
  RopLinkModel model{RopParams{}};
  // -94 noise floor: -89 dBm is 5 dB SNR (pass), -91 is 3 dB (fail).
  EXPECT_TRUE(model.report_decodes(0, -89.0, {}, -94.0, 0.0));
  EXPECT_FALSE(model.report_decodes(0, -91.0, {}, -94.0, 0.0));
}

TEST(LinkModel, StrongNeighborMasksWeakClient) {
  RopLinkModel model{RopParams{}};
  // Adjacent subchannel 40 dB stronger: beyond the 38 dB tolerance.
  std::vector<RopLinkModel::CoClient> co = {{1, -20.0}};
  EXPECT_FALSE(model.report_decodes(0, -60.0, co, -94.0, 0.0));
  // 30 dB stronger: within tolerance.
  co[0].rss_dbm = -30.0;
  EXPECT_TRUE(model.report_decodes(0, -60.0, co, -94.0, 0.0));
  // Weaker neighbours never mask.
  co[0].rss_dbm = -80.0;
  EXPECT_TRUE(model.report_decodes(0, -60.0, co, -94.0, 0.0));
}

TEST(LinkModel, ExternalInterferenceFoldsIntoSnr) {
  RopLinkModel model{RopParams{}};
  // Strong client, but a jammer at -60 dBm leaves < 4 dB SINR.
  EXPECT_FALSE(model.report_decodes(0, -58.0, {}, -94.0, dbm_to_mw(-60.0)));
}

// ---- Signal-level PHY (the Figures 5/6 behaviours) -----------------------

class RopPhyTest : public ::testing::Test {
 protected:
  RopParams params_;
  RopPhy phy_{params_};
  RopImpairments imp_;
  Rng rng_{99};
};

TEST_F(RopPhyTest, SingleClientRoundTrip) {
  for (unsigned q : {1u, 7u, 42u, 63u}) {
    ClientSignal cs;
    cs.subchannel = 3;
    cs.queue_report = q;
    cs.rss_dbm = -55.0;
    EXPECT_TRUE(phy_.round_trip_ok({&cs, 1}, imp_, rng_)) << "q=" << q;
  }
}

TEST_F(RopPhyTest, AllTwentyFourClientsSimultaneously) {
  std::vector<ClientSignal> clients;
  for (std::size_t sc = 0; sc < 24; ++sc) {
    ClientSignal cs;
    cs.subchannel = sc;
    cs.queue_report = static_cast<unsigned>((sc * 7 + 1) % 64);
    if (cs.queue_report == 0) cs.queue_report = 1;
    cs.rss_dbm = -55.0 - static_cast<double>(sc % 5);
    cs.freq_offset_subcarriers = 0.01;
    cs.timing_offset_samples = sc % 8;
    clients.push_back(cs);
  }
  EXPECT_TRUE(phy_.round_trip_ok(clients, imp_, rng_));
}

TEST_F(RopPhyTest, TimingOffsetWithinCpTolerated) {
  ClientSignal cs;
  cs.subchannel = 5;
  cs.queue_report = 33;
  cs.rss_dbm = -60.0;
  cs.timing_offset_samples = params_.cp_samples - 4;  // near the CP edge
  EXPECT_TRUE(phy_.round_trip_ok({&cs, 1}, imp_, rng_));
}

TEST_F(RopPhyTest, BelowSnrGateSilent) {
  ClientSignal cs;
  cs.subchannel = 5;
  cs.queue_report = 33;
  // Far below the per-bin detection floor (the FFT concentrates a
  // subchannel's power into 6 of 256 bins, so the wideband 4 dB SNR gate
  // corresponds to a much lower total-power floor here).
  cs.rss_dbm = -120.0;
  const auto rx = phy_.synthesize({&cs, 1}, imp_, rng_);
  const auto dec = phy_.decode(rx, imp_);
  EXPECT_FALSE(dec.values[5].has_value());
}

TEST_F(RopPhyTest, EqualPowerAdjacentSubchannelsFigure5a) {
  // Figure 5(a): similar RSS on adjacent subchannels decodes cleanly even
  // though they are neighbours.
  ClientSignal a, b;
  a.subchannel = 2;
  a.queue_report = 63;  // 111111
  a.rss_dbm = -55.0;
  a.freq_offset_subcarriers = 0.01;
  b.subchannel = 3;
  b.queue_report = 62;  // 011111 (paper's pattern with one zero bit)
  b.rss_dbm = -55.5;
  b.freq_offset_subcarriers = -0.01;
  std::vector<ClientSignal> cs = {a, b};
  int ok = 0;
  for (int t = 0; t < 20; ++t) ok += phy_.round_trip_ok(cs, imp_, rng_);
  EXPECT_GE(ok, 19);
}

TEST_F(RopPhyTest, ThirtyDbMismatchNeedsGuard) {
  // Figure 5(b)/(c): 30 dB RSS mismatch corrupts the weak neighbour
  // without guards; the standard 3-guard layout survives it.
  ClientSignal strong, weak;
  strong.subchannel = 2;
  strong.queue_report = 63;
  strong.rss_dbm = -30.0;
  strong.freq_offset_subcarriers = 0.01;  // realistic residual CFO
  weak.subchannel = 3;
  weak.queue_report = 21;  // 010101: zero bits expose leakage corruption
  weak.rss_dbm = -60.0;
  weak.freq_offset_subcarriers = -0.01;
  std::vector<ClientSignal> cs = {strong, weak};

  int ok_guarded = 0;
  for (int t = 0; t < 20; ++t) ok_guarded += phy_.round_trip_ok(cs, imp_, rng_);
  EXPECT_GE(ok_guarded, 18) << "3 guard bins must survive 30 dB";

  // Zero-guard layout: the leakage lands directly on the weak client.
  RopParams p0 = params_;
  p0.guard_per_subchannel = 0;
  RopPhy phy0(p0);
  int ok_unguarded = 0;
  for (int t = 0; t < 20; ++t) {
    ok_unguarded += phy0.round_trip_ok(cs, imp_, rng_);
  }
  EXPECT_LT(ok_unguarded, ok_guarded);
}

TEST_F(RopPhyTest, ExtremeMismatchFailsEvenWithGuards) {
  // Beyond the ~38-42 dB hardware floor even 3 guards cannot help; the
  // allocator's non-adjacent assignment is the paper's answer there.
  ClientSignal strong, weak;
  strong.subchannel = 2;
  strong.queue_report = 63;
  strong.rss_dbm = -20.0;
  strong.freq_offset_subcarriers = 0.01;
  weak.subchannel = 3;
  weak.queue_report = 21;  // zero bits expose leakage corruption
  weak.rss_dbm = -70.0;  // 50 dB apart
  std::vector<ClientSignal> cs = {strong, weak};
  int ok = 0;
  for (int t = 0; t < 20; ++t) ok += phy_.round_trip_ok(cs, imp_, rng_);
  EXPECT_LT(ok, 10);
}

TEST(RopProtocol, ExchangeDurationCoversAllPhases) {
  RopParams p;
  const TimeNs d = rop_exchange_duration(p, usec(84), usec(9));
  EXPECT_GT(d, usec(84) + usec(9) + usec(16));
  EXPECT_LT(d, usec(150));
}

}  // namespace
}  // namespace dmn::rop
