// Chain-resilience tests for the fault-injection subsystem: the strict
// no-op contract, deterministic injection under sweep parallelism, forced
// trigger loss -> bounded self-start recovery with skip-only frontier
// advance, controller outages that the chain outlives, AP power outages,
// and the bounded bookkeeping structures (BoundedIdFilter, tx_attempts).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "api/scheme_stack.h"
#include "api/sweep.h"
#include "domino/domino_mac.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "sim/simulator.h"
#include "topo/topology.h"
#include "wired/backbone.h"

namespace dmn {
namespace {

topo::Topology two_cells() {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.sense(a0, a1);
  return b.build();
}

api::ExperimentConfig domino_config(TimeNs duration = msec(400)) {
  api::ExperimentConfig cfg;
  cfg.scheme = api::Scheme::kDomino;
  cfg.duration = duration;
  cfg.traffic.saturate_downlink = true;
  return cfg;
}

void expect_identical(const api::ExperimentResult& a,
                      const api::ExperimentResult& b) {
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_bps, b.aggregate_throughput_bps);
  EXPECT_DOUBLE_EQ(a.mean_delay_us, b.mean_delay_us);
  EXPECT_DOUBLE_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.ack_timeouts, b.ack_timeouts);
  EXPECT_EQ(a.domino_self_starts, b.domino_self_starts);
  EXPECT_EQ(a.domino_missed_rows, b.domino_missed_rows);
  EXPECT_EQ(a.domino_rows_executed, b.domino_rows_executed);
  EXPECT_EQ(a.domino_retry_drops, b.domino_retry_drops);
  EXPECT_EQ(a.domino_anchor_rejections, b.domino_anchor_rejections);
  EXPECT_EQ(a.domino_forced_trigger_losses, b.domino_forced_trigger_losses);
  EXPECT_EQ(a.fault_backbone_drops, b.fault_backbone_drops);
  EXPECT_EQ(a.fault_backbone_dups, b.fault_backbone_dups);
  EXPECT_EQ(a.fault_backbone_spikes, b.fault_backbone_spikes);
  EXPECT_EQ(a.fault_interference_bursts, b.fault_interference_bursts);
  EXPECT_EQ(a.fault_controller_outage_skips, b.fault_controller_outage_skips);
  ASSERT_EQ(a.domino_recovery_latency_slots.size(),
            b.domino_recovery_latency_slots.size());
  for (std::size_t i = 0; i < a.domino_recovery_latency_slots.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.domino_recovery_latency_slots[i],
                     b.domino_recovery_latency_slots[i]);
  }
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.links[i].throughput_bps, b.links[i].throughput_bps);
    EXPECT_EQ(a.links[i].delivered, b.links[i].delivered);
  }
}

// ---- strict no-op ----------------------------------------------------------

TEST(FaultPlan, DefaultPlanIsInert) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.backbone.any());
  EXPECT_FALSE(plan.controller.any());
  EXPECT_FALSE(plan.interference.any());
  EXPECT_FALSE(plan.signature.any());
  EXPECT_FALSE(plan.clock.any());
}

// Assigning an explicitly default-constructed FaultPlan must be exactly the
// untouched config: no injector, no extra RNG fork, zero fault counters —
// for every registered scheme.
TEST(FaultNoOp, ZeroKnobsReproduceFaultFreeResultsForEveryScheme) {
  for (const std::string& name :
       api::SchemeStackRegistry::instance().names()) {
    api::ExperimentConfig base;
    base.scheme_name = name;
    base.duration = msec(250);
    base.traffic.saturate_downlink = true;
    api::ExperimentConfig zeroed = base;
    zeroed.faults = fault::FaultPlan{};
    const auto a = api::run_experiment(two_cells(), base);
    const auto b = api::run_experiment(two_cells(), zeroed);
    SCOPED_TRACE(name);
    expect_identical(a, b);
    EXPECT_EQ(a.fault_backbone_drops, 0u);
    EXPECT_EQ(a.fault_interference_bursts, 0u);
    EXPECT_EQ(a.domino_forced_trigger_losses, 0u);
    EXPECT_TRUE(a.domino_recovery_latency_slots.empty());
  }
}

// ---- backbone delivery hook ------------------------------------------------

TEST(BackboneFaults, HookControlsCopiesAndLatency) {
  sim::Simulator sim;
  wired::BackboneParams params;
  wired::Backbone bb(sim, params, Rng(7));

  int delivered = 0;
  wired::DeliveryMod next;
  bb.set_fault_hook([&next] { return next; });

  next = wired::DeliveryMod{0, 0};  // drop
  bb.send([&delivered] { ++delivered; });
  sim.run_until(msec(10));
  EXPECT_EQ(delivered, 0);

  next = wired::DeliveryMod{2, 0};  // duplicate
  bb.send([&delivered] { ++delivered; });
  sim.run_until(msec(20));
  EXPECT_EQ(delivered, 2);

  next = wired::DeliveryMod{1, msec(5)};  // latency spike
  TimeNs arrival = 0;
  const TimeNs sent_at = sim.now();
  bb.send([&] { arrival = sim.now(); });
  sim.run_until(msec(40));
  EXPECT_GE(arrival - sent_at, msec(5));
}

TEST(BackboneFaults, DropRateLosesDispatchesButChainSurvives) {
  api::ExperimentConfig cfg = domino_config(msec(800));
  cfg.faults.backbone.drop_rate = 0.05;
  const auto r = api::run_experiment(two_cells(), cfg);
  EXPECT_GT(r.fault_backbone_drops, 0u);
  EXPECT_GT(r.throughput_mbps(), 1.0);
  // Graceful degradation, not collapse: the missed-row total stays a small
  // fraction of the rows the chain did execute.
  EXPECT_GT(r.domino_rows_executed, 0u);
  EXPECT_LT(r.domino_missed_rows, r.domino_rows_executed);
}

// ---- forced trigger loss -> self-start recovery ----------------------------

TEST(SignatureFaults, BlackoutForcesLossThenBoundedSelfStartRecovery) {
  api::ExperimentConfig cfg = domino_config(msec(600));
  cfg.record_timeline = true;
  // Black out AP0's correlator for a stretch mid-run: every burst it would
  // have detected (triggers included) reads as noise.
  cfg.faults.signature.blackouts.push_back(
      fault::SignatureFaults::Blackout{0, {msec(200), msec(30)}});
  const auto r = api::run_experiment(two_cells(), cfg);

  ASSERT_GT(r.domino_forced_trigger_losses, 0u);
  EXPECT_EQ(r.fault_forced_trigger_losses, r.domino_forced_trigger_losses);

  // The AP healed itself: the recovery-latency histogram is non-empty and
  // every episode closed within a few slot durations (the self-start fires
  // two slot durations past the row's expected start at the latest).
  ASSERT_FALSE(r.domino_recovery_latency_slots.empty());
  for (double s : r.domino_recovery_latency_slots) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 6.0) << "recovery took " << s << " slots";
  }

  // Frontier advances by skipping, never by reordering: per AP, executed
  // slot indices are strictly increasing in time.
  ASSERT_TRUE(r.timeline != nullptr);
  std::map<topo::NodeId, std::uint64_t> last_slot;
  for (const auto& tx : r.timeline->transmissions()) {
    if (tx.uplink) continue;  // AP-transmitted rows only
    const auto it = last_slot.find(tx.sender);
    if (it != last_slot.end()) {
      EXPECT_GT(tx.slot, it->second)
          << "AP " << tx.sender << " re-ran or reordered a slot";
    }
    last_slot[tx.sender] = tx.slot;
  }
  EXPECT_GT(r.domino_self_starts, 0u);
}

// ---- controller outage -----------------------------------------------------

TEST(ControllerFaults, ApsKeepExecutingLastPlanThroughOutage) {
  const TimeNs outage_start = msec(200);
  const TimeNs outage_len = msec(12);
  api::ExperimentConfig cfg = domino_config(msec(500));
  cfg.record_timeline = true;
  cfg.faults.controller.outages.push_back({outage_start, outage_len});
  const auto r = api::run_experiment(two_cells(), cfg);

  EXPECT_GT(r.domino_controller_outage_skips, 0u);
  EXPECT_EQ(r.fault_controller_outage_skips, r.domino_controller_outage_skips);

  // The chain outlives its scheduler: transmissions continue inside the
  // outage window (rows from the last received plan)...
  ASSERT_TRUE(r.timeline != nullptr);
  std::size_t during = 0, after = 0;
  for (const auto& tx : r.timeline->transmissions()) {
    if (tx.start >= outage_start && tx.start < outage_start + outage_len) {
      ++during;
    }
    if (tx.start >= outage_start + outage_len) ++after;
  }
  EXPECT_GT(during, 0u) << "chain stalled the moment the controller died";
  // ...and planning resumes when the controller comes back.
  EXPECT_GT(after, 0u);
  EXPECT_GT(r.domino_batches, 0u);
}

// ---- AP power outage -------------------------------------------------------

TEST(ApOutage, DarkApIsSilentThenRejoins) {
  const TimeNs down_at = msec(200);
  const TimeNs down_len = msec(50);
  api::ExperimentConfig cfg = domino_config(msec(600));
  cfg.record_timeline = true;
  cfg.faults.ap_outages.push_back(fault::ApOutage{0, {down_at, down_len}});
  const auto r = api::run_experiment(two_cells(), cfg);

  ASSERT_TRUE(r.timeline != nullptr);
  std::size_t ap0_during = 0, ap0_after = 0, other_during = 0;
  for (const auto& tx : r.timeline->transmissions()) {
    if (tx.uplink) continue;
    const bool in_window =
        tx.start >= down_at && tx.start < down_at + down_len;
    if (tx.sender == 0 && in_window) ++ap0_during;
    if (tx.sender == 0 && tx.start >= down_at + down_len) ++ap0_after;
    if (tx.sender != 0 && in_window) ++other_during;
  }
  EXPECT_EQ(ap0_during, 0u) << "powered-down AP transmitted";
  EXPECT_GT(ap0_after, 0u) << "AP never came back after restart";
  EXPECT_GT(other_during, 0u) << "healthy AP stalled during peer's outage";
}

// ---- interference + clock skew --------------------------------------------

TEST(InterferenceFaults, BurstsAreCountedAndDegradeGracefully) {
  api::ExperimentConfig clean = domino_config(msec(400));
  api::ExperimentConfig noisy = clean;
  noisy.faults.interference.duty = 0.2;
  const auto a = api::run_experiment(two_cells(), clean);
  const auto b = api::run_experiment(two_cells(), noisy);
  EXPECT_GT(b.fault_interference_bursts, 0u);
  EXPECT_GT(b.throughput_mbps(), 0.0);
  EXPECT_LT(b.aggregate_throughput_bps, a.aggregate_throughput_bps);
}

TEST(ClockFaults, SkewedClocksStillConverge) {
  api::ExperimentConfig cfg = domino_config(msec(400));
  cfg.faults.clock.max_skew_ppm = 100.0;
  const auto r = api::run_experiment(two_cells(), cfg);
  EXPECT_GT(r.throughput_mbps(), 1.0);
  EXPECT_GT(r.domino_rows_executed, 0u);
}

// ---- the acceptance scenario ----------------------------------------------

// 5% backbone drop + interference bursts: DOMINO completes with bounded
// missed rows and a non-empty recovery-latency histogram.
TEST(FaultAcceptance, DropPlusInterferenceBoundedDegradation) {
  api::ExperimentConfig cfg = domino_config(msec(800));
  cfg.faults.backbone.drop_rate = 0.05;
  cfg.faults.interference.duty = 0.1;
  cfg.faults.signature.false_negative_rate = 0.02;
  const auto r = api::run_experiment(two_cells(), cfg);

  EXPECT_GT(r.fault_backbone_drops, 0u);
  EXPECT_GT(r.fault_interference_bursts, 0u);
  EXPECT_GT(r.throughput_mbps(), 0.5);
  EXPECT_GT(r.domino_rows_executed, 0u);
  EXPECT_LT(r.domino_missed_rows, r.domino_rows_executed);
  EXPECT_FALSE(r.domino_recovery_latency_slots.empty());
  // Per-AP chain health is populated for every AP.
  EXPECT_EQ(r.ap_chain_health.size(), 2u);
  std::uint64_t health_self_starts = 0;
  for (const auto& h : r.ap_chain_health) {
    health_self_starts += h.self_starts;
  }
  EXPECT_EQ(health_self_starts, r.domino_self_starts);
}

// ---- determinism under parallel sweeps -------------------------------------

// Same seed + same FaultPlan => byte-identical metrics, 1 vs N sweep
// threads, with every fault class active at once.
TEST(FaultDeterminism, SerialAndPooledSweepsIdenticalUnderFaults) {
  api::ExperimentConfig cfg = domino_config(msec(250));
  cfg.faults.backbone.drop_rate = 0.05;
  cfg.faults.backbone.dup_rate = 0.02;
  cfg.faults.backbone.spike_rate = 0.02;
  cfg.faults.interference.duty = 0.1;
  cfg.faults.signature.false_negative_rate = 0.01;
  cfg.faults.signature.false_positive_rate = 0.005;
  cfg.faults.clock.max_skew_ppm = 25.0;
  cfg.faults.controller.outages.push_back({msec(100), msec(10)});

  const auto points = api::seed_sweep(two_cells(), cfg, 1, 8);
  api::SweepRunner serial({1, nullptr});
  api::SweepRunner pooled({4, nullptr});
  const auto a = serial.run(points);
  const auto b = pooled.run(points);
  ASSERT_EQ(a.size(), 8u);
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    expect_identical(a[i], b[i]);
  }
  // The plan actually fired (this is not a vacuous comparison).
  std::uint64_t drops = 0, losses = 0;
  for (const auto& r : a) {
    drops += r.fault_backbone_drops;
    losses += r.domino_forced_trigger_losses;
  }
  EXPECT_GT(drops, 0u);
  EXPECT_GT(losses, 0u);
}

// Re-running the exact same faulted config twice is also bit-identical
// (injector RNG is derived from the seed, never from global state).
TEST(FaultDeterminism, RepeatRunsIdentical) {
  api::ExperimentConfig cfg = domino_config(msec(300));
  cfg.faults.backbone.drop_rate = 0.1;
  cfg.faults.interference.duty = 0.15;
  expect_identical(api::run_experiment(two_cells(), cfg),
                   api::run_experiment(two_cells(), cfg));
}

// ---- bounded bookkeeping ---------------------------------------------------

TEST(BoundedIdFilter, EvictsOldestNeverForgetsNewest) {
  domino::BoundedIdFilter f(4);
  for (traffic::PacketId id = 1; id <= 4; ++id) {
    EXPECT_TRUE(f.insert(id));
  }
  EXPECT_FALSE(f.insert(3));  // duplicate detected
  EXPECT_EQ(f.size(), 4u);
  EXPECT_TRUE(f.insert(5));  // evicts 1, keeps 2..5
  EXPECT_EQ(f.size(), 4u);
  EXPECT_FALSE(f.contains(1));
  EXPECT_TRUE(f.contains(2));
  EXPECT_TRUE(f.contains(5));
  // The evicted id reads as new again (cap is a memory bound, not a
  // correctness guarantee for arbitrarily stale duplicates).
  EXPECT_TRUE(f.insert(1));
  // Unlike cap-then-clear, recent ids survive the eviction that readmitted
  // the stale one.
  EXPECT_TRUE(f.contains(5));
  EXPECT_FALSE(f.insert(5));
}

}  // namespace
}  // namespace dmn
