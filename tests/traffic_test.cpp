// Unit tests: packet queues, UDP sources, flow statistics (Jain), the
// wired backbone and the simplified TCP Reno.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/simulator.h"
#include "traffic/flow_stats.h"
#include "traffic/queue.h"
#include "traffic/tcp_reno.h"
#include "traffic/udp_source.h"
#include "wired/backbone.h"

namespace dmn::traffic {
namespace {

Packet make_packet(PacketId id, topo::NodeId dst = 1) {
  Packet p;
  p.id = id;
  p.flow = 0;
  p.src = 0;
  p.dst = dst;
  return p;
}

TEST(Queue, FifoOrder) {
  PacketQueue q(10);
  q.push(make_packet(1));
  q.push(make_packet(2));
  q.push(make_packet(3));
  EXPECT_EQ(q.pop()->id, 1u);
  EXPECT_EQ(q.pop()->id, 2u);
  EXPECT_EQ(q.pop()->id, 3u);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(Queue, DropTailAtCapacity) {
  PacketQueue q(2);
  EXPECT_TRUE(q.push(make_packet(1)));
  EXPECT_TRUE(q.push(make_packet(2)));
  EXPECT_FALSE(q.push(make_packet(3)));
  EXPECT_EQ(q.dropped(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(Queue, PerDestinationAccess) {
  PacketQueue q(10);
  q.push(make_packet(1, 7));
  q.push(make_packet(2, 8));
  q.push(make_packet(3, 7));
  EXPECT_EQ(q.count_for(7), 2u);
  EXPECT_EQ(q.front_for(8)->id, 2u);
  EXPECT_EQ(q.pop_for(7)->id, 1u);  // first for that destination
  EXPECT_EQ(q.count_for(7), 1u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_FALSE(q.pop_for(99).has_value());
}

TEST(UdpSourceTest, GeneratesAtConfiguredRate) {
  sim::Simulator sim;
  PacketIdGen ids;
  int count = 0;
  UdpSource src(sim, Flow{0, 0, 1}, 1e6, 500, ids, [&](Packet) {
    ++count;
    return true;
  });
  src.start(0);
  sim.run_until(sec(1));
  // 1 Mbps of 500B packets = 250 packets/sec.
  EXPECT_NEAR(count, 250, 2);
}

TEST(UdpSourceTest, StopHalts) {
  sim::Simulator sim;
  PacketIdGen ids;
  int count = 0;
  UdpSource src(sim, Flow{0, 0, 1}, 1e6, 500, ids, [&](Packet) {
    ++count;
    return true;
  });
  src.start(0);
  sim.schedule_at(msec(100), [&] { src.stop(); });
  sim.run_until(sec(1));
  EXPECT_NEAR(count, 25, 2);
}

TEST(UdpSourceTest, ZeroRateDisabled) {
  sim::Simulator sim;
  PacketIdGen ids;
  int count = 0;
  UdpSource src(sim, Flow{0, 0, 1}, 0.0, 500, ids, [&](Packet) {
    ++count;
    return true;
  });
  src.start(0);
  sim.run_until(sec(1));
  EXPECT_EQ(count, 0);
}

TEST(FlowStatsTest, ThroughputAndDelay) {
  FlowStats stats;
  Packet p = make_packet(1);
  p.flow = 3;
  p.bytes = 1000;
  p.enqueued = usec(100);
  stats.record_delivery(p, usec(600));
  p.id = 2;
  p.enqueued = usec(200);
  stats.record_delivery(p, usec(900));
  EXPECT_EQ(stats.delivered(3), 2u);
  EXPECT_DOUBLE_EQ(stats.throughput_bps(3, sec(1)), 16000.0);
  EXPECT_DOUBLE_EQ(stats.mean_delay_us(3), 600.0);  // (500+700)/2
}

TEST(FlowStatsTest, JainIndex) {
  const std::vector<double> fair = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(FlowStats::jain_index(fair), 1.0);
  const std::vector<double> unfair = {10.0, 0.0, 0.0};
  EXPECT_NEAR(FlowStats::jain_index(unfair), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(FlowStats::jain_index({}), 1.0);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(FlowStats::jain_index(zeros), 1.0);
}

TEST(BackboneTest, LatencyDistribution) {
  sim::Simulator sim;
  wired::BackboneParams bp;  // mean 285us sigma 22us
  wired::Backbone bb(sim, bp, Rng(17));
  double sum = 0.0, sq = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const double s = to_usec(bb.sample_latency());
    sum += s;
    sq += s * s;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 285.0, 2.0);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 22.0, 2.0);
}

TEST(BackboneTest, DeliversAfterLatency) {
  sim::Simulator sim;
  wired::Backbone bb(sim, {}, Rng(18));
  TimeNs delivered_at = kTimeNever;
  bb.send([&] { delivered_at = sim.now(); });
  sim.run();
  EXPECT_GT(delivered_at, usec(100));
  EXPECT_LT(delivered_at, usec(500));
}

// ---- TCP Reno --------------------------------------------------------------

/// Loopback harness: sender's segments reach the receiver after `latency`,
/// with an optional per-packet drop pattern.
struct TcpHarness {
  sim::Simulator sim;
  PacketIdGen ids;
  TcpParams params;
  std::vector<Packet> delivered;
  std::function<bool(const Packet&)> drop = [](const Packet&) {
    return false;
  };
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;
  TimeNs latency = msec(2);

  explicit TcpHarness(double app_rate = 0.0) {
    params.app_rate_bps = app_rate;
    Flow flow{0, 0, 1};
    receiver = std::make_unique<TcpReceiver>(
        flow, params, ids,
        [this](Packet ack) {
          sim.schedule_in(latency, [this, ack] { sender->on_ack(ack); });
          return true;
        },
        [this](const Packet& p) { delivered.push_back(p); });
    sender = std::make_unique<TcpSender>(
        sim, flow, params, ids, [this](Packet p) {
          if (drop(p)) return true;  // silently lost in flight
          sim.schedule_in(latency, [this, p] {
            receiver->on_data(p, sim.now());
          });
          return true;
        });
  }
};

TEST(TcpReno, DeliversInOrderWhenClean) {
  TcpHarness h;
  h.sender->start(0);
  h.sim.run_until(msec(500));
  EXPECT_GT(h.delivered.size(), 100u);
  for (std::size_t i = 0; i < h.delivered.size(); ++i) {
    EXPECT_EQ(h.delivered[i].tcp_seq, i);
  }
  EXPECT_EQ(h.sender->retransmits(), 0u);
}

TEST(TcpReno, SlowStartGrowsWindow) {
  TcpHarness h;
  h.sender->start(0);
  h.sim.run_until(msec(30));
  EXPECT_GT(h.sender->cwnd(), h.params.initial_cwnd);
}

TEST(TcpReno, FastRetransmitRecoversSingleLoss) {
  TcpHarness h;
  bool dropped = false;
  h.drop = [&](const Packet& p) {
    if (p.tcp_seq == 20 && !dropped) {
      dropped = true;
      return true;
    }
    return false;
  };
  h.sender->start(0);
  h.sim.run_until(msec(500));
  EXPECT_EQ(h.sender->retransmits(), 1u);
  EXPECT_GT(h.delivered.size(), 100u);
  EXPECT_EQ(h.sender->timeouts(), 0u)
      << "triple-dupack must recover without RTO";
  // Everything ultimately delivered exactly once (arrival order may put
  // the retransmitted segment after its successors).
  std::set<std::uint64_t> seqs;
  for (const auto& p : h.delivered) {
    EXPECT_TRUE(seqs.insert(p.tcp_seq).second) << "duplicate delivery";
  }
  for (std::uint64_t s = 0; s < h.delivered.size(); ++s) {
    EXPECT_TRUE(seqs.count(s)) << "hole at " << s;
  }
}

TEST(TcpReno, LossHalvesWindow) {
  TcpHarness h;
  double cwnd_before = 0.0;
  bool dropped = false;
  h.drop = [&](const Packet& p) {
    if (p.tcp_seq == 40 && !dropped) {
      dropped = true;
      cwnd_before = h.sender->cwnd();
      return true;
    }
    return false;
  };
  h.sender->start(0);
  h.sim.run_until(msec(200));
  ASSERT_TRUE(dropped);
  EXPECT_LT(h.sender->ssthresh(), cwnd_before);
}

TEST(TcpReno, RtoRecoversBurstLoss) {
  TcpHarness h;
  std::set<std::uint64_t> dropped_once;
  h.drop = [&](const Packet& p) {
    // Drop the FIRST transmission of a whole window's worth, forcing a
    // timeout; retransmissions get through.
    if (p.tcp_seq >= 10 && p.tcp_seq < 30 &&
        dropped_once.insert(p.tcp_seq).second) {
      return true;
    }
    return false;
  };
  h.sender->start(0);
  h.sim.run_until(sec(3));
  EXPECT_GT(h.sender->timeouts(), 0u);
  EXPECT_GT(h.delivered.size(), 50u) << "flow must recover after RTO";
  std::set<std::uint64_t> seqs;
  for (const auto& p : h.delivered) {
    EXPECT_TRUE(seqs.insert(p.tcp_seq).second) << "duplicate delivery";
  }
  for (std::uint64_t s = 0; s < h.delivered.size(); ++s) {
    EXPECT_TRUE(seqs.count(s)) << "hole at " << s;
  }
}

TEST(TcpReno, AppLimitedRate) {
  TcpHarness h(1e6);  // 1 Mbps application rate, 512B MSS
  h.sender->start(0);
  h.sim.run_until(sec(1));
  // ~244 packets/s at 1 Mbps; TCP must track the app, not the window.
  EXPECT_NEAR(static_cast<double>(h.delivered.size()), 244.0, 10.0);
}

TEST(TcpReno, AckPacketsAreSmallAndMarked) {
  TcpHarness h;
  Packet seen_ack;
  bool got = false;
  Flow flow{0, 0, 1};
  TcpReceiver rx(
      flow, h.params, h.ids,
      [&](Packet ack) {
        seen_ack = ack;
        got = true;
        return true;
      },
      [](const Packet&) {});
  Packet d = make_packet(5);
  d.tcp_seq = 0;
  rx.on_data(d, usec(10));
  ASSERT_TRUE(got);
  EXPECT_TRUE(seen_ack.tcp_is_ack);
  EXPECT_EQ(seen_ack.tcp_ack_no, 1u);
  EXPECT_EQ(seen_ack.bytes, h.params.ack_bytes);
  EXPECT_EQ(seen_ack.src, 1);
  EXPECT_EQ(seen_ack.dst, 0);
}

TEST(TcpReno, ReceiverReordersOutOfOrder) {
  TcpParams params;
  PacketIdGen ids;
  std::vector<std::uint64_t> acks;
  Flow flow{0, 0, 1};
  TcpReceiver rx(
      flow, params, ids,
      [&](Packet ack) {
        acks.push_back(ack.tcp_ack_no);
        return true;
      },
      [](const Packet&) {});
  Packet p = make_packet(1);
  p.tcp_seq = 1;  // gap: 0 missing
  rx.on_data(p, 0);
  EXPECT_EQ(acks.back(), 0u);  // dup-ack for the hole
  p.tcp_seq = 0;
  rx.on_data(p, 0);
  EXPECT_EQ(acks.back(), 2u);  // cumulative jump over the buffered segment
}

}  // namespace
}  // namespace dmn::traffic
