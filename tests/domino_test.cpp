// Integration tests: the full DOMINO stack (controller + converter + AP and
// client executors over the SINR medium) on small topologies.

#include <gtest/gtest.h>

#include "api/experiment.h"
#include "topo/topology.h"

namespace dmn {
namespace {

topo::Topology one_cell(int clients = 1) {
  topo::ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  for (int i = 0; i < clients; ++i) b.add_client(ap);
  return b.build();
}

topo::Topology fig1_topology() {
  topo::ManualTopologyBuilder b;
  const auto ap1 = b.add_ap();
  const auto ap2 = b.add_ap();
  const auto ap3 = b.add_ap();
  b.add_client(ap1);  // 3
  b.add_client(ap2);  // 4
  b.add_client(ap3);  // 5
  b.sense(ap1, 4);
  b.interfere(ap1, 5);
  b.sense(ap2, 3);
  return b.build();
}

api::ExperimentResult run_domino(const topo::Topology& t,
                                 api::ExperimentConfig cfg) {
  cfg.scheme = api::Scheme::kDomino;
  return api::run_experiment(t, cfg);
}

TEST(DominoE2E, SingleDownlinkSaturated) {
  api::ExperimentConfig cfg;
  cfg.duration = sec(2);
  cfg.traffic.saturate_downlink = true;
  cfg.traffic.downlink_bps = 0;
  const auto r = run_domino(one_cell(), cfg);
  // One link, one slot at a time: ~512B / ~482us (incl. ROP overhead)
  // = ~8.5 Mbps.
  EXPECT_GT(r.throughput_mbps(), 7.0);
  EXPECT_LT(r.throughput_mbps(), 9.5);
  EXPECT_EQ(r.domino_untriggerable, 0u);
}

TEST(DominoE2E, SingleUplinkSaturated) {
  api::ExperimentConfig cfg;
  cfg.duration = sec(2);
  cfg.traffic.downlink_bps = 0;
  cfg.traffic.saturate_uplink = true;
  const auto r = run_domino(one_cell(), cfg);
  // Uplink demand flows exclusively through ROP polling — this exercises
  // the poll -> report -> schedule -> trigger chain end to end.
  EXPECT_GT(r.throughput_mbps(), 6.5);
}

TEST(DominoE2E, BidirectionalCell) {
  api::ExperimentConfig cfg;
  cfg.duration = sec(2);
  cfg.traffic.saturate_downlink = true;
  cfg.traffic.saturate_uplink = true;
  const auto r = run_domino(one_cell(), cfg);
  EXPECT_GT(r.throughput_mbps(), 6.5);
  // Both directions served.
  ASSERT_EQ(r.links.size(), 2u);
  EXPECT_GT(r.links[0].throughput_bps, 1e6);
  EXPECT_GT(r.links[1].throughput_bps, 1e6);
}

TEST(DominoE2E, RateLimitedTrafficIsCarried) {
  api::ExperimentConfig cfg;
  cfg.duration = sec(3);
  cfg.traffic.downlink_bps = 2e6;
  const auto r = run_domino(one_cell(), cfg);
  EXPECT_NEAR(r.throughput_mbps(), 2.0, 0.2);
}

TEST(DominoE2E, TwoIndependentCellsRunConcurrently) {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  api::ExperimentConfig cfg;
  cfg.duration = sec(2);
  cfg.traffic.saturate_downlink = true;
  const auto r = run_domino(b.build(), cfg);
  // Spatial reuse: both cells at near-full slot rate simultaneously.
  EXPECT_GT(r.throughput_mbps(), 14.0);
  EXPECT_GT(r.jain_fairness, 0.95);
}

TEST(DominoE2E, HiddenPairScheduledCleanly) {
  // The hidden pair that cripples DCF must run at fair alternation under
  // DOMINO (the paper's core claim).
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);                    // 2
  const auto c1 = b.add_client(a1);    // 3
  b.interfere(a0, c1);
  const auto t = b.build();

  api::ExperimentConfig cfg;
  cfg.duration = sec(3);
  cfg.traffic.saturate_downlink = true;

  cfg.scheme = api::Scheme::kDcf;
  const auto dcf = api::run_experiment(t, cfg);
  const auto dom = run_domino(t, cfg);

  EXPECT_GT(dom.jain_fairness, 0.9);
  EXPECT_GT(dom.throughput_mbps(), dcf.throughput_mbps());
  // The victim link specifically must be rescued.
  EXPECT_GT(dom.links[1].throughput_bps, 3 * dcf.links[1].throughput_bps);
}

TEST(DominoE2E, Figure1BeatsDcfAndApproachesOmniscient) {
  const auto t = fig1_topology();
  api::ExperimentConfig cfg;
  cfg.duration = sec(4);
  cfg.traffic.custom = {api::FlowSpec{0, 3}, api::FlowSpec{4, 1},
                        api::FlowSpec{2, 5}};

  cfg.scheme = api::Scheme::kDcf;
  const auto dcf = api::run_experiment(t, cfg);
  cfg.scheme = api::Scheme::kOmniscient;
  const auto omni = api::run_experiment(t, cfg);
  const auto dom = run_domino(t, cfg);

  EXPECT_GT(dom.aggregate_throughput_bps,
            1.3 * dcf.aggregate_throughput_bps);
  EXPECT_GT(dom.aggregate_throughput_bps,
            0.6 * omni.aggregate_throughput_bps);
  EXPECT_GT(dom.jain_fairness, dcf.jain_fairness);
}

TEST(DominoE2E, MisalignmentConvergesWithinSlots) {
  // Figure 11's claim: initial wired-jitter misalignment (tens of us)
  // shrinks to a few microseconds within a handful of slots — measured
  // among transmitters that share a collision domain (offsets between
  // mutually deaf chains are physically harmless).
  topo::ManualTopologyBuilder b;
  const auto a1 = b.add_ap();
  const auto a2 = b.add_ap();
  const auto a3 = b.add_ap();
  const auto a4 = b.add_ap();
  b.add_client(a1);  // 4
  b.add_client(a2);  // 5
  b.add_client(a3);  // 6
  b.add_client(a4);  // 7
  b.interfere(a1, 5).interfere(a2, 4);
  b.interfere(a3, 7).interfere(a4, 6);
  b.sense(a1, a2).sense(a3, a4).sense(4, 5).sense(6, 7);
  b.sense(a2, a3);  // weak coupling between the halves
  const auto t = b.build();

  api::ExperimentConfig cfg;
  cfg.duration = msec(400);
  cfg.traffic.saturate_downlink = true;
  cfg.traffic.saturate_uplink = true;
  cfg.record_timeline = true;
  const auto r = run_domino(t, cfg);
  ASSERT_TRUE(r.timeline != nullptr);

  double late = 0.0;
  int n = 0;
  const auto first = r.timeline->first_slot();
  for (std::uint64_t s = first + 20; s < first + 60; ++s) {
    late += api::coupled_misalignment_us(*r.timeline, t, s);
    ++n;
  }
  late /= n;
  EXPECT_LT(late, 30.0) << "coupled chains must stay aligned";
}

TEST(DominoE2E, PollsHappenEveryBatchAndFeedUplink) {
  api::ExperimentConfig cfg;
  cfg.duration = sec(1);
  cfg.traffic.downlink_bps = 0;
  cfg.traffic.saturate_uplink = true;
  cfg.record_timeline = true;
  const auto r = run_domino(one_cell(), cfg);
  ASSERT_TRUE(r.timeline != nullptr);
  EXPECT_GT(r.timeline->polls().size(), 50u)
      << "roughly one poll per batch expected";
}

TEST(DominoE2E, FakePacketsAppearOnIdleLinks) {
  api::ExperimentConfig cfg;
  cfg.duration = msec(500);
  cfg.traffic.saturate_downlink = true;
  cfg.record_timeline = true;
  // Two clients, only one direction loaded: uplink entries surface as
  // fake transmissions keeping the chain alive.
  const auto r = run_domino(one_cell(2), cfg);
  ASSERT_TRUE(r.timeline != nullptr);
  bool saw_fake = false;
  for (const auto& tx : r.timeline->transmissions()) {
    saw_fake = saw_fake || tx.fake;
  }
  EXPECT_TRUE(saw_fake);
}

TEST(DominoE2E, BatchSizeKnobChangesPollingCadence) {
  api::ExperimentConfig cfg;
  cfg.duration = sec(1);
  cfg.traffic.saturate_downlink = true;
  cfg.record_timeline = true;

  cfg.domino.batch_slots = 5;
  const auto fast = run_domino(one_cell(), cfg);
  cfg.domino.batch_slots = 20;
  const auto slow = run_domino(one_cell(), cfg);
  ASSERT_TRUE(fast.timeline && slow.timeline);
  EXPECT_GT(fast.timeline->polls().size(),
            2 * slow.timeline->polls().size() / 2);
  EXPECT_GT(fast.timeline->polls().size(), slow.timeline->polls().size());
}

TEST(DominoE2E, SurvivesDegradedSignatureDetection) {
  // Failure injection: drop signature detection to 70% — the chain must
  // limp (self-starts, kicks) but keep delivering.
  api::ExperimentConfig cfg;
  cfg.duration = sec(2);
  cfg.traffic.saturate_downlink = true;
  for (int i = 1; i <= 4; ++i) cfg.sig_model.p_by_count[i] = 0.7;
  const auto r = run_domino(one_cell(), cfg);
  EXPECT_GT(r.throughput_mbps(), 4.0);
}

TEST(DominoE2E, SurvivesExtremeBackboneJitter) {
  api::ExperimentConfig cfg;
  cfg.duration = sec(2);
  cfg.traffic.saturate_downlink = true;
  cfg.backbone.sigma_latency = usec(200);
  cfg.backbone.mean_latency = usec(600);
  const auto r = run_domino(one_cell(), cfg);
  EXPECT_GT(r.throughput_mbps(), 6.0);
}

TEST(DominoE2E, TcpFlowsDeliverReliably) {
  api::ExperimentConfig cfg;
  cfg.duration = sec(3);
  cfg.traffic.kind = api::TrafficKind::kTcp;
  cfg.traffic.downlink_bps = 10e6;
  const auto r = run_domino(one_cell(), cfg);
  // TCP over DOMINO: ACKs burn whole slots (§4.2.3), so goodput is roughly
  // half the slot rate.
  EXPECT_GT(r.throughput_mbps(), 2.5);
}

}  // namespace
}  // namespace dmn
