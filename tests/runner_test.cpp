// Tests for the crash-safe sweep runner (docs/RUNNER.md): checkpoint
// resume byte-identity after a simulated kill, manifest validation,
// watchdog budgets (wall clock and event count), the retry-with-same-seed
// policy, and the SIGINT drain path.
//
// The kill is simulated by truncating the checkpoint file to the manifest
// plus the first K records: every flush is an atomic whole-file rename, so
// that is exactly the set of states a SIGKILL can leave behind (the
// real-process variant lives in bench/bench_soak.cpp).

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/experiment.h"
#include "api/scheme_stack.h"
#include "api/stacks/dcf_stack.h"
#include "api/sweep.h"
#include "api/sweep_io.h"
#include "topo/topology.h"

namespace dmn::api {
namespace {

topo::Topology two_cells() {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.sense(a0, a1);
  return b.build();
}

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.duration = msec(150);
  cfg.traffic.saturate_downlink = true;
  return cfg;
}

/// RAII scratch checkpoint file, removed on destruction.
struct ScratchFile {
  explicit ScratchFile(std::string p) : path(std::move(p)) {
    std::remove(path.c_str());
  }
  ~ScratchFile() { std::remove(path.c_str()); }
  std::string path;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

/// Truncates the checkpoint to the manifest plus the first `keep` records —
/// the state a kill after `keep` atomic flushes leaves behind.
void truncate_checkpoint(const std::string& path, std::size_t keep) {
  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), keep + 1);
  std::string kept;
  for (std::size_t i = 0; i < keep + 1; ++i) kept += lines[i] + "\n";
  atomic_write_file(path, kept);
}

// ---- checkpoint / resume ---------------------------------------------------

TEST(Runner, CheckpointResumeIsByteIdentical) {
  const auto topo = two_cells();
  const auto points = seed_sweep(topo, base_config(), 1, 8);

  // Uninterrupted reference, no checkpointing.
  SweepRunner ref_runner;
  const std::string reference =
      serialize_report(ref_runner.run_outcomes(points));

  ScratchFile ckpt("runner_test_resume.jsonl");
  {
    SweepOptions opt;
    opt.num_threads = 2;
    opt.checkpoint_path = ckpt.path;
    opt.sweep_name = "resume-test";
    SweepRunner runner(opt);
    const auto full = runner.run_outcomes(points);
    EXPECT_TRUE(full.all_ok());
    EXPECT_EQ(serialize_report(full), reference);
  }
  // Manifest line + one record per point, all parseable JSON.
  const auto lines = read_lines(ckpt.path);
  ASSERT_EQ(lines.size(), points.size() + 1);
  EXPECT_EQ(parse_json(lines[0]).str_or("type", ""), "manifest");
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(parse_json(lines[i]).str_or("type", ""), "point") << i;
  }

  // Kill after 3 completed points, then resume at 1 and at 4 threads.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("resume threads=" + std::to_string(threads));
    truncate_checkpoint(ckpt.path, 3);
    SweepOptions opt;
    opt.num_threads = threads;
    opt.checkpoint_path = ckpt.path;
    opt.sweep_name = "resume-test";
    SweepRunner runner(opt);
    const auto resumed = runner.run_outcomes(points);
    EXPECT_EQ(runner.stats().restored, 3u);
    EXPECT_EQ(runner.stats().ok, points.size());
    EXPECT_EQ(serialize_report(resumed), reference);
    // The resumed run re-persists everything: the file is whole again.
    EXPECT_EQ(read_lines(ckpt.path).size(), points.size() + 1);
  }
}

TEST(Runner, MismatchedManifestStartsFresh) {
  const auto topo = two_cells();
  const auto points = seed_sweep(topo, base_config(), 1, 4);
  ScratchFile ckpt("runner_test_mismatch.jsonl");

  {
    SweepOptions opt;
    opt.num_threads = 1;
    opt.checkpoint_path = ckpt.path;
    SweepRunner runner(opt);
    runner.run_outcomes(points);
  }
  // A different sweep (different seeds -> different sweep hash) must not
  // trust the old records.
  const auto other = seed_sweep(topo, base_config(), 50, 4);
  SweepOptions opt;
  opt.num_threads = 1;
  opt.checkpoint_path = ckpt.path;
  SweepRunner runner(opt);
  const auto report = runner.run_outcomes(other);
  EXPECT_EQ(runner.stats().restored, 0u);
  EXPECT_TRUE(report.all_ok());
}

TEST(Runner, TornCheckpointLineIsIgnored) {
  const auto topo = two_cells();
  const auto points = seed_sweep(topo, base_config(), 1, 4);
  ScratchFile ckpt("runner_test_torn.jsonl");
  {
    SweepOptions opt;
    opt.num_threads = 1;
    opt.checkpoint_path = ckpt.path;
    SweepRunner runner(opt);
    runner.run_outcomes(points);
  }
  // Corrupt the last record by chopping it mid-object.
  auto lines = read_lines(ckpt.path);
  ASSERT_EQ(lines.size(), 5u);
  std::string torn;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) torn += lines[i] + "\n";
  torn += lines.back().substr(0, lines.back().size() / 2);
  atomic_write_file(ckpt.path, torn);

  SweepOptions opt;
  opt.num_threads = 1;
  opt.checkpoint_path = ckpt.path;
  SweepRunner runner(opt);
  const auto report = runner.run_outcomes(points);
  EXPECT_EQ(runner.stats().restored, 3u);  // the torn record recomputed
  EXPECT_TRUE(report.all_ok());
}

// ---- watchdog budgets ------------------------------------------------------

TEST(Runner, EventBudgetProducesTimedOutOutcome) {
  const auto topo = two_cells();
  auto points = seed_sweep(topo, base_config(), 1, 3);

  SweepOptions opt;
  opt.num_threads = 2;
  opt.budget.max_events = 500;  // a 150 ms saturated run needs far more
  SweepRunner runner(opt);
  const auto report = runner.run_outcomes(points);
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const PointOutcome& o = report.outcomes[i];
    EXPECT_EQ(o.status, PointStatus::kTimedOut) << i;
    EXPECT_GT(o.events_executed, 0u) << i;
    EXPECT_GT(o.sim_time_ns, 0) << i;
    EXPECT_LE(o.events_executed, 500u + 1u) << i;
  }
  EXPECT_EQ(runner.stats().timeouts, 3u);
  EXPECT_EQ(runner.stats().ok, 0u);
}

TEST(Runner, WallClockBudgetKillsOnlyTheRunawayPoint) {
  const auto topo = two_cells();
  auto points = seed_sweep(topo, base_config(), 1, 3);
  points[0].config.duration = msec(20);  // finishes well within the budget
  points[2].config.duration = msec(20);
  points[1].config.duration = sec(600);  // cannot finish within the budget

  SweepOptions opt;
  opt.num_threads = 1;  // one slot: the runaway must not poison neighbors
  opt.budget.wall_seconds = 0.25;
  SweepRunner runner(opt);
  const auto report = runner.run_outcomes(points);

  EXPECT_EQ(report.outcomes[0].status, PointStatus::kOk);
  EXPECT_EQ(report.outcomes[2].status, PointStatus::kOk);
  ASSERT_EQ(report.outcomes[1].status, PointStatus::kTimedOut);
  EXPECT_GT(report.outcomes[1].sim_time_ns, 0);
  EXPECT_GT(report.outcomes[1].events_executed, 0u);
  EXPECT_EQ(runner.stats().timeouts, 1u);
  EXPECT_EQ(runner.stats().ok, 2u);
}

// ---- retry policy ----------------------------------------------------------

/// DCF variant whose build() throws on the first N calls (global counter):
/// the deterministic model of an environment flake.
class FlakyStack : public DcfStack {
 public:
  static std::atomic<int> failures_left;
  void build(StackContext& ctx, std::vector<mac::MacEntity*>& macs) override {
    if (failures_left.fetch_sub(1) > 0) {
      throw std::runtime_error("injected one-shot failure");
    }
    DcfStack::build(ctx, macs);
  }
};
std::atomic<int> FlakyStack::failures_left{0};

TEST(Runner, RetryPolicyRecoversOneShotFailure) {
  SchemeStackRegistry::instance().add(
      "FLAKY-TEST", [] { return std::make_unique<FlakyStack>(); });
  const auto topo = two_cells();
  auto points = seed_sweep(topo, base_config(), 1, 1);
  points[0].config.scheme_name = "FLAKY-TEST";

  FlakyStack::failures_left.store(1);
  SweepOptions opt;
  opt.num_threads = 1;
  opt.max_attempts = 2;
  SweepRunner runner(opt);
  const auto report = runner.run_outcomes(points);
  ASSERT_EQ(report.outcomes[0].status, PointStatus::kOk);
  EXPECT_EQ(report.outcomes[0].attempts, 2);
  EXPECT_EQ(runner.stats().retried, 1u);

  // A deterministic failure exhausts the attempts and stays an error,
  // with the exception type and message captured.
  FlakyStack::failures_left.store(1000);
  SweepRunner strict(opt);
  const auto failed = strict.run_outcomes(points);
  ASSERT_EQ(failed.outcomes[0].status, PointStatus::kError);
  EXPECT_EQ(failed.outcomes[0].attempts, 2);
  EXPECT_NE(failed.outcomes[0].error_message.find("injected"),
            std::string::npos);
  EXPECT_NE(failed.outcomes[0].error_type.find("runtime_error"),
            std::string::npos);
  FlakyStack::failures_left.store(0);
}

TEST(Runner, ErrorsAreIsolatedPerPoint) {
  const auto topo = two_cells();
  auto points = seed_sweep(topo, base_config(), 1, 5);
  points[1].config.scheme_name = "NO-SUCH-SCHEME";
  points[3].config.scheme_name = "NO-SUCH-SCHEME";

  SweepOptions opt;
  opt.num_threads = 2;
  SweepRunner runner(opt);
  const auto report = runner.run_outcomes(points);
  EXPECT_EQ(runner.stats().ok, 3u);
  EXPECT_EQ(runner.stats().errors, 2u);
  for (const std::size_t bad : {std::size_t{1}, std::size_t{3}}) {
    EXPECT_EQ(report.outcomes[bad].status, PointStatus::kError);
    EXPECT_NE(report.outcomes[bad].error_message.find("NO-SUCH-SCHEME"),
              std::string::npos);
  }
  for (const std::size_t good :
       {std::size_t{0}, std::size_t{2}, std::size_t{4}}) {
    EXPECT_EQ(report.outcomes[good].status, PointStatus::kOk);
    EXPECT_GT(report.result(good).throughput_mbps(), 0.0);
  }
}

// ---- graceful shutdown -----------------------------------------------------

TEST(Runner, SigintDrainsAndResumeCompletes) {
  const auto topo = two_cells();
  const auto points = seed_sweep(topo, base_config(), 1, 6);

  SweepRunner ref_runner;
  const std::string reference =
      serialize_report(ref_runner.run_outcomes(points));

  ScratchFile ckpt("runner_test_sigint.jsonl");
  {
    SweepOptions opt;
    opt.num_threads = 1;  // deterministic claim order for the interrupt
    opt.checkpoint_path = ckpt.path;
    opt.on_progress = [](std::size_t done, std::size_t) {
      // The handler installed by the checkpointing runner just sets the
      // drain flag, so raising from the progress callback is the in-process
      // equivalent of Ctrl-C mid-sweep.
      if (done == 2) std::raise(SIGINT);
    };
    SweepRunner runner(opt);
    const auto report = runner.run_outcomes(points);
    EXPECT_TRUE(report.interrupted);
    EXPECT_EQ(runner.stats().ok, 2u);
    EXPECT_EQ(runner.stats().skipped, 4u);
  }
  // The drained run left a valid checkpoint; a plain re-run completes the
  // sweep and matches the uninterrupted reference byte for byte.
  SweepOptions opt;
  opt.num_threads = 2;
  opt.checkpoint_path = ckpt.path;
  SweepRunner runner(opt);
  const auto resumed = runner.run_outcomes(points);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(runner.stats().restored, 2u);
  EXPECT_TRUE(resumed.all_ok());
  EXPECT_EQ(serialize_report(resumed), reference);
}

// ---- serialization round-trip ---------------------------------------------

TEST(Runner, OutcomeSerializationRoundTripsExactly) {
  const auto topo = two_cells();
  ExperimentConfig cfg = base_config();
  cfg.scheme = Scheme::kDomino;
  const auto points = seed_sweep(topo, cfg, 7, 1);
  SweepRunner runner({1, nullptr});
  const auto report = runner.run_outcomes(points);
  ASSERT_TRUE(report.ok(0));

  const std::string once = serialize_outcome(report.outcomes[0]);
  const PointOutcome back = deserialize_outcome(parse_json(once));
  EXPECT_EQ(serialize_outcome(back), once);
  EXPECT_EQ(back.status, PointStatus::kOk);
  EXPECT_DOUBLE_EQ(back.result.aggregate_throughput_bps,
                   report.outcomes[0].result.aggregate_throughput_bps);
}

TEST(Runner, PointHashDistinguishesSeedAndTopology) {
  const auto topo = two_cells();
  const auto points = seed_sweep(topo, base_config(), 1, 2);
  EXPECT_NE(hash_point(points[0]), hash_point(points[1]));

  SweepPoint tweaked = points[0];
  tweaked.config.traffic.downlink_bps += 1.0;
  EXPECT_NE(hash_point(points[0]), hash_point(tweaked));

  SweepPoint same = points[0];
  same.label = "different label";  // labels are display-only
  EXPECT_EQ(hash_point(points[0]), hash_point(same));
}

}  // namespace
}  // namespace dmn::api
