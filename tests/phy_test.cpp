// Unit tests: frame airtimes, the SINR medium (interference accumulation,
// carrier sense, half duplex, NAV, ROP orthogonality) and the fitted
// signature detection model.

#include <gtest/gtest.h>

#include <vector>

#include "phy/medium.h"
#include "phy/signature_model.h"
#include "phy/transceiver.h"
#include "topo/topology.h"

namespace dmn::phy {
namespace {

TEST(Airtime, KnownDurations) {
  // 540 B (512 payload + 28 header) at 12 Mbps:
  // ceil((16 + 4320 + 6)/48) = 91 symbols -> 364 + 20 us preamble.
  EXPECT_EQ(frame_airtime(540, 12e6), usec(384));
  // 14 B ACK at 6 Mbps: ceil(134/24) = 6 symbols -> 24 + 20 us.
  EXPECT_EQ(frame_airtime(14, 6e6), usec(44));
}

TEST(Airtime, MonotoneInSizeAndRate) {
  EXPECT_LT(frame_airtime(100, 12e6), frame_airtime(1000, 12e6));
  EXPECT_GT(frame_airtime(512, 6e6), frame_airtime(512, 12e6));
}

/// Records everything it hears.
class Sniffer : public MediumClient {
 public:
  struct Rx {
    Frame frame;
    RxInfo info;
  };
  std::vector<Rx> heard;
  std::vector<bool> cs_edges;

  void on_frame_rx(const Frame& f, const RxInfo& i) override {
    heard.push_back({f, i});
  }
  void on_cs_change(bool busy) override { cs_edges.push_back(busy); }
};

class MediumTest : public ::testing::Test {
 protected:
  MediumTest() {
    topo::ManualTopologyBuilder b;
    ap0_ = b.add_ap();        // 0
    c0_ = b.add_client(ap0_); // 1
    ap1_ = b.add_ap();        // 2
    c1_ = b.add_client(ap1_); // 3
    b.interfere(ap1_, c0_);   // ap1's tx destroys c0's reception
    topo_ = std::make_unique<topo::Topology>(b.build());
    medium_ = std::make_unique<Medium>(sim_, *topo_);
    for (int i = 0; i < 4; ++i) {
      sniffers_.push_back(std::make_unique<Sniffer>());
      medium_->attach(i, sniffers_.back().get());
    }
  }

  Frame data(topo::NodeId src, topo::NodeId dst) {
    Frame f;
    f.type = FrameType::kData;
    f.src = src;
    f.dst = dst;
    f.duration = usec(100);
    f.packet_id = 1;
    return f;
  }

  sim::Simulator sim_;
  topo::NodeId ap0_, c0_, ap1_, c1_;
  std::unique_ptr<topo::Topology> topo_;
  std::unique_ptr<Medium> medium_;
  std::vector<std::unique_ptr<Sniffer>> sniffers_;
};

TEST_F(MediumTest, CleanFrameDecodes) {
  medium_->transmit(data(ap0_, c0_));
  sim_.run();
  ASSERT_EQ(sniffers_[1]->heard.size(), 1u);
  EXPECT_TRUE(sniffers_[1]->heard[0].info.decoded);
  EXPECT_GT(sniffers_[1]->heard[0].info.min_sinr_db, 30.0);
}

TEST_F(MediumTest, ConcurrentInterferenceKillsDecode) {
  medium_->transmit(data(ap0_, c0_));
  sim_.schedule_at(usec(10), [&] { medium_->transmit(data(ap1_, c1_)); });
  sim_.run();
  ASSERT_FALSE(sniffers_[1]->heard.empty());
  EXPECT_FALSE(sniffers_[1]->heard[0].info.decoded)
      << "ap1's overlap must corrupt c0's reception";
  // c1 decodes fine: ap0 is faint at c1.
  bool c1_ok = false;
  for (const auto& rx : sniffers_[3]->heard) {
    if (rx.frame.src == ap1_) c1_ok = rx.info.decoded;
  }
  EXPECT_TRUE(c1_ok);
}

TEST_F(MediumTest, LateInterferenceStillCountsWorstCase) {
  // Interferer appears in the last microseconds of the frame: min-SINR
  // semantics must still fail the frame.
  medium_->transmit(data(ap0_, c0_));
  sim_.schedule_at(usec(95), [&] { medium_->transmit(data(ap1_, c1_)); });
  sim_.run();
  EXPECT_FALSE(sniffers_[1]->heard[0].info.decoded);
}

TEST_F(MediumTest, HalfDuplexLoss) {
  medium_->transmit(data(ap0_, c0_));
  // c0 transmits mid-reception.
  sim_.schedule_at(usec(50), [&] { medium_->transmit(data(c0_, ap0_)); });
  sim_.run();
  ASSERT_FALSE(sniffers_[1]->heard.empty());
  EXPECT_TRUE(sniffers_[1]->heard[0].info.half_duplex_loss);
  EXPECT_FALSE(sniffers_[1]->heard[0].info.decoded);
}

TEST_F(MediumTest, CarrierSenseEdges) {
  medium_->transmit(data(ap0_, c0_));
  sim_.run();
  // c0 saw busy then idle.
  ASSERT_GE(sniffers_[1]->cs_edges.size(), 2u);
  EXPECT_TRUE(sniffers_[1]->cs_edges[0]);
  EXPECT_FALSE(sniffers_[1]->cs_edges.back());
  // c1 (faint from ap0) never sensed anything.
  EXPECT_TRUE(sniffers_[3]->cs_edges.empty());
}

TEST_F(MediumTest, TransmitterSensesOwnTx) {
  EXPECT_FALSE(medium_->carrier_busy(ap0_));
  medium_->transmit(data(ap0_, c0_));
  EXPECT_TRUE(medium_->carrier_busy(ap0_));
  EXPECT_TRUE(medium_->transmitting(ap0_));
  sim_.run();
  EXPECT_FALSE(medium_->carrier_busy(ap0_));
}

TEST_F(MediumTest, NavHoldsVirtualCarrier) {
  Frame f = data(ap0_, c0_);
  f.nav = usec(200);
  medium_->transmit(f);
  sim_.run_until(usec(150));
  EXPECT_FALSE(medium_->carrier_busy(c0_));
  EXPECT_TRUE(medium_->virtual_busy(c0_));
  sim_.run_until(usec(400));
  EXPECT_FALSE(medium_->virtual_busy(c0_));
}

TEST_F(MediumTest, RopResponsesMutuallyOrthogonal) {
  Frame r1;
  r1.type = FrameType::kRopResponse;
  r1.src = c0_;
  r1.dst = ap0_;
  r1.duration = usec(16);
  Frame r2 = r1;
  r2.src = c1_;
  r2.dst = ap1_;
  medium_->transmit(r1);
  medium_->transmit(r2);
  sim_.run();
  // Both decode: subchannel orthogonality excludes them from each other's
  // interference even though c1 would otherwise interfere at ap0... (c1 is
  // faint at ap0 anyway; the key assertion is both decode cleanly).
  bool ok0 = false, ok1 = false;
  for (const auto& rx : sniffers_[0]->heard) {
    if (rx.frame.type == FrameType::kRopResponse) ok0 = rx.info.decoded;
  }
  for (const auto& rx : sniffers_[2]->heard) {
    if (rx.frame.type == FrameType::kRopResponse) ok1 = rx.info.decoded;
  }
  EXPECT_TRUE(ok0);
  EXPECT_TRUE(ok1);
}

TEST_F(MediumTest, FrameCountersTrack) {
  medium_->transmit(data(ap0_, c0_));
  medium_->transmit(data(ap1_, c1_));
  sim_.run();
  EXPECT_EQ(medium_->frames_sent(FrameType::kData), 2u);
  EXPECT_EQ(medium_->frames_sent(FrameType::kAck), 0u);
}

// ---- Signature detection model -------------------------------------------

TEST(SignatureModel, PaperShape) {
  SignatureDetectionModel m;
  // Figure 9: ~100% through 4 combined signatures, declining beyond.
  for (int n = 1; n <= 4; ++n) {
    EXPECT_GE(m.detect_probability(n, 0.0), 0.99) << n;
  }
  EXPECT_LT(m.detect_probability(5, 0.0), 0.99);
  EXPECT_GT(m.detect_probability(5, 0.0), m.detect_probability(6, 0.0));
  EXPECT_GT(m.detect_probability(6, 0.0), m.detect_probability(7, 0.0));
  EXPECT_GT(m.detect_probability(7, 0.0), m.detect_probability(9, 0.0));
}

TEST(SignatureModel, ProcessingGainBelowDecodeThreshold) {
  SignatureDetectionModel m;
  // Signatures survive far below packet-decode SINR...
  EXPECT_GE(m.detect_probability(1, -9.0), 0.99);
  // ...but roll off toward the correlation-gain floor.
  EXPECT_LT(m.detect_probability(1, -18.0), 0.5);
  EXPECT_EQ(m.detect_probability(1, -25.0), 0.0);
}

TEST(SignatureModel, ZeroCountNeverDetects) {
  SignatureDetectionModel m;
  EXPECT_EQ(m.detect_probability(0, 10.0), 0.0);
}

TEST(SignatureModel, FalsePositiveRateSampled) {
  SignatureDetectionModel m;
  Rng rng(55);
  int fp = 0;
  for (int i = 0; i < 20000; ++i) {
    if (m.sample_false_positive(rng)) ++fp;
  }
  EXPECT_NEAR(fp / 20000.0, m.false_positive_rate, 0.003);
  EXPECT_LT(fp / 20000.0, 0.01);  // "below 1% all the time"
}

}  // namespace
}  // namespace dmn::phy
