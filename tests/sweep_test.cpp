// Tests for the scheme-plugin + sweep layer: registry contents, plugin
// registration, the determinism contract (1-thread vs N-thread sweeps are
// bit-identical), and error propagation out of the pool.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/experiment.h"
#include "api/scheme_stack.h"
#include "api/stacks/dcf_stack.h"
#include "api/sweep.h"
#include "topo/topology.h"

namespace dmn::api {
namespace {

topo::Topology two_cells() {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.sense(a0, a1);
  return b.build();
}

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.duration = msec(300);
  cfg.traffic.saturate_downlink = true;
  return cfg;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_bps, b.aggregate_throughput_bps);
  EXPECT_DOUBLE_EQ(a.mean_delay_us, b.mean_delay_us);
  EXPECT_DOUBLE_EQ(a.jain_fairness, b.jain_fairness);
  EXPECT_EQ(a.ack_timeouts, b.ack_timeouts);
  EXPECT_EQ(a.mac_drops, b.mac_drops);
  ASSERT_EQ(a.links.size(), b.links.size());
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.links[i].throughput_bps, b.links[i].throughput_bps);
    EXPECT_DOUBLE_EQ(a.links[i].mean_delay_us, b.links[i].mean_delay_us);
    EXPECT_EQ(a.links[i].delivered, b.links[i].delivered);
  }
}

// ---- registry --------------------------------------------------------------

TEST(SchemeStackRegistry, BuiltinsRegistered) {
  auto& reg = SchemeStackRegistry::instance();
  for (Scheme s : {Scheme::kDcf, Scheme::kCentaur, Scheme::kDomino,
                   Scheme::kOmniscient}) {
    EXPECT_TRUE(reg.contains(to_string(s))) << to_string(s);
  }
  EXPECT_GE(reg.names().size(), 4u);
}

TEST(SchemeStackRegistry, UnknownSchemeThrowsWithKnownNames) {
  auto& reg = SchemeStackRegistry::instance();
  try {
    reg.create("NO-SUCH-SCHEME");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NO-SUCH-SCHEME"), std::string::npos);
    EXPECT_NE(msg.find("DOMINO"), std::string::npos);
  }
}

// Every registered scheme must assemble and run through the stack path.
TEST(SchemeStackRegistry, EveryRegisteredSchemeBuildsAndRuns) {
  for (const std::string& name : SchemeStackRegistry::instance().names()) {
    ExperimentConfig cfg = base_config();
    cfg.scheme_name = name;
    const auto r = run_experiment(two_cells(), cfg);
    EXPECT_GT(r.throughput_mbps(), 1.0) << name;
    EXPECT_EQ(r.links.size(), 2u) << name;
  }
}

// scheme_name and the enum must resolve to the same stack (parity with the
// pre-plugin facade exercised by api_test).
TEST(SchemeStackRegistry, NameAndEnumSelectionAgree) {
  for (Scheme s : {Scheme::kDcf, Scheme::kCentaur, Scheme::kDomino,
                   Scheme::kOmniscient}) {
    ExperimentConfig by_enum = base_config();
    by_enum.scheme = s;
    ExperimentConfig by_name = base_config();
    by_name.scheme_name = to_string(s);
    expect_identical(run_experiment(two_cells(), by_enum),
                     run_experiment(two_cells(), by_name));
  }
}

// A plugged-in scheme (here: a trivially derived DCF variant) runs without
// any facade change — the point of the plugin seam.
TEST(SchemeStackRegistry, CustomStackPlugsIn) {
  class NarrowQueueDcf : public DcfStack {
   public:
    void build(StackContext& ctx,
               std::vector<mac::MacEntity*>& macs) override {
      DcfStack::build(ctx, macs);
    }
  };
  SchemeStackRegistry::instance().add(
      "DCF-TEST-VARIANT", [] { return std::make_unique<NarrowQueueDcf>(); });
  ExperimentConfig cfg = base_config();
  cfg.scheme_name = "DCF-TEST-VARIANT";
  const auto r = run_experiment(two_cells(), cfg);
  EXPECT_GT(r.throughput_mbps(), 1.0);
  // Identical assembly must give identical results to stock DCF.
  ExperimentConfig stock = base_config();
  stock.scheme = Scheme::kDcf;
  expect_identical(run_experiment(two_cells(), stock), r);
}

// ---- sweep runner ----------------------------------------------------------

TEST(SweepRunner, SeedSweepBuilderShapesPoints) {
  const auto points = seed_sweep(two_cells(), base_config(), 100, 5);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_EQ(points.front().config.seed, 100u);
  EXPECT_EQ(points.back().config.seed, 104u);
  EXPECT_EQ(points.front().label, "seed 100");
}

// The acceptance-criterion test: a 16-point seed sweep run serially and on
// a pool produces identical results, for every scheme.
TEST(SweepRunner, ParallelIdenticalToSerial16Seeds) {
  for (Scheme s : {Scheme::kDcf, Scheme::kCentaur, Scheme::kDomino,
                   Scheme::kOmniscient}) {
    ExperimentConfig cfg = base_config();
    cfg.scheme = s;
    cfg.duration = msec(150);
    const auto points = seed_sweep(two_cells(), cfg, 1, 16);

    SweepRunner serial({1, nullptr});
    SweepRunner pooled({4, nullptr});
    const auto a = serial.run(points);
    const auto b = pooled.run(points);
    EXPECT_EQ(serial.stats().threads, 1u);
    EXPECT_EQ(pooled.stats().threads, 4u);
    ASSERT_EQ(a.size(), 16u);
    ASSERT_EQ(b.size(), 16u);
    for (std::size_t i = 0; i < a.size(); ++i) {
      SCOPED_TRACE(std::string(to_string(s)) + " point " +
                   std::to_string(i));
      expect_identical(a[i], b[i]);
    }
  }
}

TEST(SweepRunner, DistinctSeedsGiveDistinctResults) {
  ExperimentConfig cfg = base_config();
  cfg.scheme = Scheme::kDcf;
  const auto results = SweepRunner({2, nullptr})
                           .run(seed_sweep(two_cells(), cfg, 1, 2));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].mean_delay_us, results[1].mean_delay_us);
}

TEST(SweepRunner, ProgressCallbackCoversAllPoints) {
  ExperimentConfig cfg = base_config();
  cfg.duration = msec(50);
  std::vector<std::size_t> seen;
  SweepOptions opts;
  opts.num_threads = 3;
  opts.on_progress = [&seen](std::size_t done, std::size_t total) {
    EXPECT_EQ(total, 6u);
    seen.push_back(done);
  };
  SweepRunner runner(opts);
  const auto results = runner.run(seed_sweep(two_cells(), cfg, 1, 6));
  EXPECT_EQ(results.size(), 6u);
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_GT(runner.stats().wall_seconds, 0.0);
  EXPECT_EQ(runner.stats().points, 6u);
}

// The strict API runs every point (no worker can die mid-pool) and then
// reports the first failure as a typed SweepError naming the point.
TEST(SweepRunner, PointFailureRethrownOnCaller) {
  ExperimentConfig cfg = base_config();
  cfg.duration = msec(50);
  auto points = seed_sweep(two_cells(), cfg, 1, 4);
  points[2].config.scheme_name = "NO-SUCH-SCHEME";
  SweepRunner runner({2, nullptr});
  try {
    runner.run(points);
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    EXPECT_EQ(e.point_index, 2u);
    EXPECT_EQ(e.status, PointStatus::kError);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("point 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("NO-SUCH-SCHEME"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace dmn::api
