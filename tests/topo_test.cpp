// Unit tests: topology, propagation, the synthetic 40-node trace, T(m,n)
// construction, conflict graphs and the hidden/exposed census.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "topo/conflict_graph.h"
#include "topo/node.h"
#include "topo/propagation.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"

namespace dmn::topo {
namespace {

TEST(Node, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Propagation, LogDistanceMonotone) {
  LogDistanceModel m;
  const double near = m.rss_dbm({0, 0}, {0, 10});
  const double far = m.rss_dbm({0, 0}, {0, 100});
  EXPECT_GT(near, far);
  // 10x distance at exponent 3 costs 30 dB.
  EXPECT_NEAR(near - far, 30.0, 1e-9);
}

TEST(Propagation, ClampsBelowOneMetre) {
  LogDistanceModel m;
  EXPECT_DOUBLE_EQ(m.rss_dbm({0, 0}, {0, 0.1}), m.rss_dbm({0, 0}, {0, 1.0}));
}

TEST(RssMapTest, SymmetricStorage) {
  RssMap map(4);
  map.set_rss(1, 3, -62.5);
  EXPECT_DOUBLE_EQ(map.rss(1, 3), -62.5);
  EXPECT_DOUBLE_EQ(map.rss(3, 1), -62.5);
}

TEST(RssMapTest, OutOfRangeThrows) {
  RssMap map(2);
  EXPECT_THROW(map.rss(0, 5), std::out_of_range);
  EXPECT_THROW(map.set_rss(-1, 0, 0.0), std::out_of_range);
}

TEST(TraceSynth, FortyNodesTwoBuildings) {
  Rng rng(1);
  const auto trace = synthesize_trace({}, rng);
  EXPECT_EQ(trace.positions.size(), 40u);
  EXPECT_EQ(trace.rss.size(), 40u);
  // Half the nodes sit in each building (disjoint x ranges).
  int left = 0;
  for (const auto& p : trace.positions) {
    if (p.x <= 60.0) ++left;
  }
  EXPECT_EQ(left, 20);
}

TEST(TraceSynth, CrossBuildingWeakerOnAverage) {
  Rng rng(2);
  const auto trace = synthesize_trace({}, rng);
  double intra = 0.0, inter = 0.0;
  int ni = 0, nx = 0;
  for (int i = 0; i < 40; ++i) {
    for (int j = i + 1; j < 40; ++j) {
      const bool cross = (i < 20) != (j < 20);
      if (cross) {
        inter += trace.rss.rss(i, j);
        ++nx;
      } else {
        intra += trace.rss.rss(i, j);
        ++ni;
      }
    }
  }
  EXPECT_LT(inter / nx, intra / ni - 10.0);
}

TEST(TraceSynth, RssMismatchStatisticNearPaper) {
  // The paper: 0.54% of pairs exceed 38 dB difference. Our synthetic trace
  // must stay in the same regime (well under a few percent).
  Rng rng(3);
  const auto trace = synthesize_trace({}, rng);
  const double frac = rss_mismatch_fraction(trace.rss, 38.0, -80.0);
  EXPECT_LT(frac, 0.05);
}

TEST(TmnBuilder, ShapeAndAssociations) {
  Rng rng(4);
  const auto trace = synthesize_trace({}, rng);
  const Topology t = Topology::build_tmn(trace.rss, 10, 2, {}, rng);
  EXPECT_EQ(t.num_nodes(), 30u);
  EXPECT_EQ(t.aps().size(), 10u);
  for (NodeId ap : t.aps()) {
    const auto cs = t.clients_of(ap);
    EXPECT_EQ(cs.size(), 2u);
    for (NodeId c : cs) {
      EXPECT_TRUE(t.can_communicate(ap, c))
          << "client must be in communication range of its AP";
    }
  }
}

TEST(TmnBuilder, ThrowsWhenTraceTooSmall) {
  Rng rng(5);
  TraceParams small;
  small.num_nodes = 6;
  const auto trace = synthesize_trace(small, rng);
  EXPECT_THROW(Topology::build_tmn(trace.rss, 10, 2, {}, rng),
               std::runtime_error);
}

TEST(RandomNetwork, ClientsInRangeOfTheirAp) {
  Rng rng(6);
  LogDistanceModel model;
  const Topology t = Topology::random_network(20, 3, 800.0, model, {}, rng);
  EXPECT_EQ(t.num_nodes(), 80u);
  for (NodeId c : t.all_clients()) {
    EXPECT_TRUE(t.can_communicate(c, t.node(c).ap));
  }
}

TEST(ManualBuilder, TiersBehave) {
  ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  const auto c = b.add_client(ap);
  const auto ap2 = b.add_ap();
  b.sense(ap, ap2);
  const Topology t = b.build();
  EXPECT_TRUE(t.can_communicate(ap, c));
  EXPECT_TRUE(t.can_sense(ap, ap2));
  EXPECT_FALSE(t.can_communicate(ap, ap2));  // sense tier < assoc threshold
  EXPECT_FALSE(t.can_sense(c, ap2));         // default faint
}

// ---- Conflict graph -------------------------------------------------------

Topology hidden_pair_topology() {
  // Two AP->client links; AP0's signal destroys C1's reception and vice
  // versa is faint: a classic hidden pair.
  ManualTopologyBuilder b;
  const auto ap0 = b.add_ap();
  const auto ap1 = b.add_ap();
  const auto c0 = b.add_client(ap0);
  const auto c1 = b.add_client(ap1);
  (void)c0;
  b.interfere(ap0, c1);
  return b.build();
}

TEST(ConflictGraph, SharedNodeAlwaysConflicts) {
  ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  const auto c = b.add_client(ap);
  const Topology t = b.build();
  const std::vector<Link> links = {{ap, c}, {c, ap}};
  const auto g = ConflictGraph::build(t, links);
  EXPECT_TRUE(g.conflicts(0, 1));
}

TEST(ConflictGraph, HiddenInterferenceConflicts) {
  const Topology t = hidden_pair_topology();
  const auto links = t.make_links(true, false);
  const auto g = ConflictGraph::build(t, links);
  ASSERT_EQ(g.num_links(), 2u);
  EXPECT_TRUE(g.conflicts(0, 1));
}

TEST(ConflictGraph, ExposedPairDoesNotConflict) {
  // Senders hear each other but receivers are clean: schedulable together.
  ManualTopologyBuilder b;
  const auto ap0 = b.add_ap();
  const auto ap1 = b.add_ap();
  b.add_client(ap0);
  b.add_client(ap1);
  b.sense(ap0, ap1);
  const Topology t = b.build();
  const auto links = t.make_links(true, false);
  const auto g = ConflictGraph::build(t, links);
  EXPECT_FALSE(g.conflicts(0, 1));
}

TEST(ConflictGraph, AckPhaseProtected) {
  // Scheduled slots align ACK phases with ACK phases: the protected case
  // is one link's ACK (receiver -> sender) colliding with the OTHER
  // link's concurrent ACK emitter. Here C1's transmissions destroy
  // reception at AP0, so AP0 cannot decode C0's ACK while C1 acks —
  // the full rule must conflict while the data-only rule passes.
  ManualTopologyBuilder b;
  const auto ap0 = b.add_ap();
  const auto ap1 = b.add_ap();
  const auto c0 = b.add_client(ap0);
  const auto c1 = b.add_client(ap1);
  b.interfere(c1, ap0);  // the other RECEIVER's emissions break AP0's rx
  // Asymmetry: link B's data is strong enough to survive AP0's reverse
  // interference (SINR 13 dB), but AP0's ACK reception (-55 signal) is not.
  b.set_rss(ap1, c1, -45.0);
  (void)c0;
  const Topology t = b.build();
  const auto links = t.make_links(true, false);  // AP0->C0, AP1->C1
  const auto g = ConflictGraph::build(t, links);
  EXPECT_TRUE(g.conflicts(0, 1));        // full rule: ACK at AP0 breaks
  EXPECT_FALSE(g.data_conflicts(0, 1));  // data-only rule passes
}

TEST(ConflictGraph, ExtendToMaximalIsMaximalAndIndependent) {
  Rng rng(8);
  const auto trace = synthesize_trace({}, rng);
  const Topology t = Topology::build_tmn(trace.rss, 6, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto g = ConflictGraph::build(t, links);

  std::vector<LinkId> all(g.num_links());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  std::vector<LinkId> set;
  g.extend_to_maximal(set, all);

  // Pairwise data-conflict-free.
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = i + 1; j < set.size(); ++j) {
      EXPECT_FALSE(g.data_conflicts(set[i], set[j]));
    }
  }
  // Maximal: no remaining link fits.
  for (LinkId cand : all) {
    if (std::find(set.begin(), set.end(), cand) != set.end()) continue;
    bool fits = true;
    for (LinkId s : set) {
      if (g.data_conflicts(cand, s)) {
        fits = false;
        break;
      }
    }
    EXPECT_FALSE(fits) << "link " << cand << " should have been added";
  }
}

TEST(Census, CountsHiddenAndExposed) {
  // Build one hidden pair and one exposed pair in a 4-cell network.
  ManualTopologyBuilder b;
  const auto ap0 = b.add_ap();
  const auto ap1 = b.add_ap();
  const auto ap2 = b.add_ap();
  const auto ap3 = b.add_ap();
  b.add_client(ap0);
  const auto c1 = b.add_client(ap1);
  b.add_client(ap2);
  b.add_client(ap3);
  b.interfere(ap0, c1);  // hidden: ap0 unheard by ap1, corrupts c1
  b.sense(ap2, ap3);     // exposed: ap2/ap3 hear each other, links clean
  const Topology t = b.build();
  const auto links = t.make_links(true, false);
  const auto census = classify_pairs(t, links);
  EXPECT_GE(census.hidden, 1u);
  EXPECT_GE(census.exposed, 1u);
  EXPECT_EQ(census.total, 6u);  // C(4,2) node-disjoint link pairs
}

class TmnSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TmnSweep, BuildsRequestedShape) {
  Rng rng(100 + GetParam().first);
  // Denser variant for client-heavy shapes (the paper's T(6,5) needs 36 of
  // 40 nodes associated).
  TraceParams dense;
  dense.building_w = 40.0;
  dense.building_gap = 15.0;
  dense.wall_db = 2.0;
  const auto trace = synthesize_trace(dense, rng);
  const auto [m, n] = GetParam();
  const Topology t = Topology::build_tmn(trace.rss, m, n, {}, rng);
  EXPECT_EQ(t.aps().size(), static_cast<std::size_t>(m));
  EXPECT_EQ(t.all_clients().size(), static_cast<std::size_t>(m * n));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TmnSweep,
                         ::testing::Values(std::pair{4, 2}, std::pair{6, 5},
                                           std::pair{10, 2},
                                           std::pair{12, 1}));

// ---- ingestion validation --------------------------------------------------
// The Topology constructor is the chokepoint every topology source passes
// through; corrupt RSS traces and malformed node tables must be rejected
// there with the offending entry named.

TEST(TopologyValidation, RejectsEmptyNodeList) {
  EXPECT_THROW(Topology({}, RssMap(0), {}), std::invalid_argument);
}

TEST(TopologyValidation, RejectsDuplicateOrMisnumberedIds) {
  std::vector<Node> nodes{Node{0, {}, true, kNoNode},
                          Node{0, {}, false, 0}};  // duplicate id 0
  try {
    Topology(nodes, RssMap(2), {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("index 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("id 0"), std::string::npos) << msg;
  }
}

TEST(TopologyValidation, RejectsClientWithBadApReference) {
  // Client points at a nonexistent node.
  std::vector<Node> missing{Node{0, {}, true, kNoNode},
                            Node{1, {}, false, 7}};
  EXPECT_THROW(Topology(missing, RssMap(2), {}), std::invalid_argument);
  // Client points at another client.
  std::vector<Node> not_ap{Node{0, {}, true, kNoNode},
                           Node{1, {}, false, 0},
                           Node{2, {}, false, 1}};
  try {
    Topology(not_ap, RssMap(3), {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("not an AP"), std::string::npos)
        << e.what();
  }
}

TEST(TopologyValidation, RejectsNanAndPositiveRss) {
  std::vector<Node> nodes{Node{0, {}, true, kNoNode},
                          Node{1, {}, false, 0}};
  for (const double bad :
       {std::numeric_limits<double>::quiet_NaN(), 3.5,
        std::numeric_limits<double>::infinity()}) {
    RssMap rss(2);
    rss.set_rss(0, 1, bad);
    try {
      Topology(nodes, rss, {});
      FAIL() << "expected std::invalid_argument for RSS " << bad;
    } catch (const std::invalid_argument& e) {
      // The offending pair is named.
      EXPECT_NE(std::string(e.what()).find("RSS(0, 1)"), std::string::npos)
          << e.what();
    }
  }
}

TEST(TopologyValidation, AcceptsNegativeInfinityAsNoPath) {
  std::vector<Node> nodes{Node{0, {}, true, kNoNode},
                          Node{1, {}, false, 0}};
  RssMap rss(2);
  rss.set_rss(0, 1, -std::numeric_limits<double>::infinity());
  EXPECT_NO_THROW(Topology(nodes, rss, {}));
}

TEST(TopologyValidation, RejectsMismatchedRssMapSize) {
  std::vector<Node> nodes{Node{0, {}, true, kNoNode}};
  EXPECT_THROW(Topology(nodes, RssMap(3), {}), std::invalid_argument);
}

TEST(TopologyValidation, BuildTmnRejectsZeroShape) {
  Rng rng(1);
  const auto trace = synthesize_trace({}, rng);
  EXPECT_THROW(Topology::build_tmn(trace.rss, 0, 2, {}, rng),
               std::invalid_argument);
  EXPECT_THROW(Topology::build_tmn(trace.rss, 10, 0, {}, rng),
               std::invalid_argument);
}

TEST(TopologyValidation, RandomNetworkRejectsDegenerateArea) {
  Rng rng(1);
  LogDistanceModel model;
  EXPECT_THROW(Topology::random_network(0, 2, 100.0, model, {}, rng),
               std::invalid_argument);
  EXPECT_THROW(Topology::random_network(2, 2, 0.0, model, {}, rng),
               std::invalid_argument);
  EXPECT_THROW(Topology::random_network(2, 2, -5.0, model, {}, rng),
               std::invalid_argument);
}

TEST(TopologyValidation, ManualBuilderRejectsBadEdgeIds) {
  ManualTopologyBuilder b;
  const auto ap = b.add_ap();
  b.add_client(ap);
  b.set_rss(0, 9, -40.0);  // node 9 does not exist
  try {
    b.build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("(0, 9)"), std::string::npos)
        << e.what();
  }
}

TEST(Census, Tmn102HasHiddenAndExposedPairs) {
  // The paper reports 10 hidden and 62 exposed pairs in its T(10,2); our
  // synthetic trace must land in the same qualitative regime.
  Rng rng(42);
  const auto trace = synthesize_trace({}, rng);
  const Topology t = Topology::build_tmn(trace.rss, 10, 2, {}, rng);
  const auto links = t.make_links(true, true);
  const auto census = classify_pairs(t, links);
  EXPECT_GT(census.hidden, 0u);
  EXPECT_GT(census.exposed, 0u);
  EXPECT_GT(census.total, 100u);
}

}  // namespace
}  // namespace dmn::topo
