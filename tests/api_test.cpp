// Tests for the experiment facade: scheme assembly, determinism, custom
// flows, metrics plumbing, and the timeline recorder.

#include <gtest/gtest.h>

#include <sstream>

#include "api/experiment.h"
#include "api/timeline.h"
#include "topo/topology.h"
#include "topo/trace_synth.h"

namespace dmn::api {
namespace {

topo::Topology two_cells() {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  b.add_client(a1);
  b.sense(a0, a1);
  return b.build();
}

class SchemeSmoke : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeSmoke, DeliversSaturatedDownlink) {
  ExperimentConfig cfg;
  cfg.scheme = GetParam();
  cfg.duration = sec(1);
  cfg.traffic.saturate_downlink = true;
  const auto r = run_experiment(two_cells(), cfg);
  EXPECT_GT(r.throughput_mbps(), 3.0) << to_string(GetParam());
  EXPECT_GE(r.jain_fairness, 0.0);
  EXPECT_LE(r.jain_fairness, 1.0);
  EXPECT_EQ(r.links.size(), 2u);
}

TEST_P(SchemeSmoke, DeterministicForFixedSeed) {
  ExperimentConfig cfg;
  cfg.scheme = GetParam();
  cfg.duration = msec(300);
  cfg.traffic.saturate_downlink = true;
  cfg.seed = 1234;
  const auto a = run_experiment(two_cells(), cfg);
  const auto b = run_experiment(two_cells(), cfg);
  EXPECT_DOUBLE_EQ(a.aggregate_throughput_bps, b.aggregate_throughput_bps);
  EXPECT_DOUBLE_EQ(a.mean_delay_us, b.mean_delay_us);
  EXPECT_EQ(a.ack_timeouts, b.ack_timeouts);
}

TEST_P(SchemeSmoke, SeedChangesOutcome) {
  ExperimentConfig cfg;
  cfg.scheme = GetParam();
  cfg.duration = msec(300);
  cfg.traffic.saturate_downlink = true;
  cfg.seed = 1;
  const auto a = run_experiment(two_cells(), cfg);
  cfg.seed = 2;
  const auto b = run_experiment(two_cells(), cfg);
  // Not a strict requirement per scheme, but delays should differ for
  // contention-based schemes; accept equality only for zero variance
  // schemes (omniscient).
  if (GetParam() == Scheme::kDcf) {
    EXPECT_NE(a.mean_delay_us, b.mean_delay_us);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeSmoke,
                         ::testing::Values(Scheme::kDcf, Scheme::kCentaur,
                                           Scheme::kDomino,
                                           Scheme::kOmniscient));

TEST(Experiment, CustomFlowsOnlyThoseCarry) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kDcf;
  cfg.duration = sec(1);
  cfg.traffic.custom = {FlowSpec{0, 2}};  // only AP0 -> its client
  const auto r = run_experiment(two_cells(), cfg);
  ASSERT_EQ(r.links.size(), 1u);
  EXPECT_EQ(r.links[0].flow.src, 0);
  EXPECT_EQ(r.links[0].flow.dst, 2);
  EXPECT_GT(r.links[0].throughput_bps, 1e6);
}

TEST(Experiment, UplinkFlagDerivedFromTopology) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kDcf;
  cfg.duration = msec(300);
  cfg.traffic.custom = {FlowSpec{2, 0}, FlowSpec{0, 2}};
  const auto r = run_experiment(two_cells(), cfg);
  ASSERT_EQ(r.links.size(), 2u);
  EXPECT_TRUE(r.links[0].uplink);
  EXPECT_FALSE(r.links[1].uplink);
}

TEST(Experiment, CensusReported) {
  topo::ManualTopologyBuilder b;
  const auto a0 = b.add_ap();
  const auto a1 = b.add_ap();
  b.add_client(a0);
  const auto c1 = b.add_client(a1);
  b.interfere(a0, c1);
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kDcf;
  cfg.duration = msec(100);
  cfg.traffic.saturate_downlink = true;
  const auto r = run_experiment(b.build(), cfg);
  EXPECT_GE(r.census.hidden, 1u);
}

TEST(Experiment, RateLimitedMatchesOffered) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kDcf;
  cfg.duration = sec(2);
  cfg.traffic.downlink_bps = 1e6;
  const auto r = run_experiment(two_cells(), cfg);
  EXPECT_NEAR(r.throughput_mbps(), 2.0, 0.1);  // 2 flows x 1 Mbps
  EXPECT_LT(r.mean_delay_us, 5000.0);
}

TEST(Experiment, TcpOverDcfConverges) {
  ExperimentConfig cfg;
  cfg.scheme = Scheme::kDcf;
  cfg.duration = sec(3);
  cfg.traffic.kind = TrafficKind::kTcp;
  cfg.traffic.downlink_bps = 10e6;
  const auto r = run_experiment(two_cells(), cfg);
  EXPECT_GT(r.throughput_mbps(), 3.0);
}

TEST(Experiment, SummarizeMentionsKeyNumbers) {
  ExperimentResult r;
  r.aggregate_throughput_bps = 12.5e6;
  r.jain_fairness = 0.93;
  const std::string s = summarize(r);
  EXPECT_NE(s.find("12.50"), std::string::npos);
  EXPECT_NE(s.find("0.930"), std::string::npos);
}

TEST(Experiment, TraceDrivenTmnAllSchemesRun) {
  Rng rng(5);
  const auto trace = topo::synthesize_trace({}, rng);
  const auto t = topo::Topology::build_tmn(trace.rss, 4, 2, {}, rng);
  for (Scheme s : {Scheme::kDcf, Scheme::kCentaur, Scheme::kDomino,
                   Scheme::kOmniscient}) {
    ExperimentConfig cfg;
    cfg.scheme = s;
    cfg.duration = msec(400);
    cfg.traffic.downlink_bps = 5e6;
    const auto r = run_experiment(t, cfg);
    EXPECT_GT(r.throughput_mbps(), 0.5) << to_string(s);
  }
}

// ---- Timeline recorder -----------------------------------------------------

TEST(Timeline, MisalignmentMath) {
  TimelineRecorder rec;
  rec.record_tx(5, 0, 1, usec(100), false, false);
  rec.record_tx(5, 2, 3, usec(117), false, false);
  rec.record_tx(6, 0, 1, usec(600), false, false);
  EXPECT_DOUBLE_EQ(rec.misalignment_us(5), 17.0);
  EXPECT_DOUBLE_EQ(rec.misalignment_us(6), 0.0);
  EXPECT_DOUBLE_EQ(rec.misalignment_us(7), 0.0);  // unknown slot
  EXPECT_EQ(rec.first_slot(), 5u);
  EXPECT_EQ(rec.last_slot(), 6u);
  const auto series = rec.misalignment_series(5, 2);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 17.0);
}

TEST(Timeline, PrintsReadableTimeline) {
  TimelineRecorder rec;
  rec.record_tx(1, 0, 4, usec(10), false, false);
  rec.record_tx(1, 5, 2, usec(11), true, true);
  rec.record_poll(1, 0, usec(500));
  std::ostringstream os;
  rec.print(os, 1, 1);
  const std::string s = os.str();
  EXPECT_NE(s.find("slot 1"), std::string::npos);
  EXPECT_NE(s.find("[fake]"), std::string::npos);
  EXPECT_NE(s.find("ROP poll"), std::string::npos);
}

}  // namespace
}  // namespace dmn::api
